// Online reconfiguration scenario (paper SIV): the LPM controller watches a
// running system through interval counters and re-sizes the live L1's
// concurrency knobs - growing ports/MSHRs under mismatch, handing idle
// parallelism back when the program calms down.
//
//   $ ./online_reconfigure [workload=410.bwaves] [length=150000] [interval=1500]
#include <cstdio>
#include <memory>

#include "lpm.hpp"

int main(int argc, char** argv) {
  using namespace lpm;
  const auto args = util::KvConfig::from_args(argc, argv);
  const std::string name = args.get_or("workload", "410.bwaves");
  const std::uint64_t length = args.get_uint_or("length", 150'000);
  const Cycle interval = args.get_uint_or("interval", 1500);

  trace::WorkloadProfile workload;
  bool found = false;
  for (const auto b : trace::all_spec_benchmarks()) {
    if (trace::spec_name(b) == name) {
      workload = trace::spec_profile(b, length, 3);
      found = true;
    }
  }
  if (!found) {
    std::fprintf(stderr, "unknown workload '%s'\n", name.c_str());
    return 1;
  }

  auto machine = sim::MachineConfig::single_core_default();
  machine.l1.mshr_entries = 16;  // physical head-room for the controller
  trace::SyntheticTrace calib(workload);
  const auto c = sim::measure_cpi_exe(machine, calib);

  const auto run = [&](bool adaptive) {
    std::vector<trace::TraceSourcePtr> traces;
    traces.push_back(std::make_unique<trace::SyntheticTrace>(workload));
    sim::System system(machine, std::move(traces));
    system.l1_cache(0).set_mshr_limit(2);  // start deliberately starved

    core::OnlineLpmConfig cfg;
    cfg.interval_cycles = interval;
    cfg.cpi_exe = c.cpi_exe;
    core::OnlineLpmController controller(cfg);
    while (system.step()) {
      if (adaptive) controller.observe(system, 0);
    }
    if (adaptive) {
      std::printf("interval log (%zu intervals):\n",
                  controller.history().size());
      for (const auto& rec : controller.history()) {
        if (rec.detail.empty()) continue;  // only show actions
        std::printf("  cycle %7llu  LPMR1=%6.2f T1=%5.2f  %-22s %s\n",
                    static_cast<unsigned long long>(rec.at), rec.lpmr1, rec.t1,
                    core::to_string(rec.action), rec.detail.c_str());
      }
      std::printf("grow=%llu release=%llu reconfig cost=%llu cycles\n",
                  static_cast<unsigned long long>(controller.grow_actions()),
                  static_cast<unsigned long long>(controller.release_actions()),
                  static_cast<unsigned long long>(
                      controller.reconfiguration_cost_cycles()));
    }
    return system.collect();
  };

  std::printf("== static (starved: mshr_limit=2, 1 port) ==\n");
  const auto fixed = run(false);
  std::printf("cycles=%llu stall/instr=%.4f\n\n",
              static_cast<unsigned long long>(fixed.cycles),
              fixed.cores[0].stall_per_instr());

  std::printf("== adaptive (online LPM controller) ==\n");
  const auto adaptive = run(true);
  std::printf("cycles=%llu stall/instr=%.4f  (%.2fx faster than static)\n",
              static_cast<unsigned long long>(adaptive.cycles),
              adaptive.cores[0].stall_per_instr(),
              static_cast<double>(fixed.cycles) /
                  static_cast<double>(adaptive.cycles));
  return 0;
}
