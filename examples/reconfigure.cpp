// Case-Study-I scenario: let the LPM algorithm reconfigure the architecture
// for a workload, watching each Fig. 3 decision as it happens.
//
//   $ ./reconfigure [workload=410.bwaves] [delta=10] [length=300000] [threads=0]
//
// threads=N sizes the experiment engine's worker pool (0 = auto: LPM_THREADS
// or the hardware concurrency). With threads>1 the walk speculatively
// simulates likely next configurations while the current one is inspected.
#include <cstdio>

#include "lpm.hpp"
#include "obs/metrics.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace lpm;
  const auto args = util::KvConfig::from_args(argc, argv);
  const std::string name = args.get_or("workload", "410.bwaves");
  const double delta = args.get_double_or("delta", 10.0);
  const std::uint64_t length = args.get_uint_or("length", 300'000);
  const std::uint64_t threads = args.get_uint_or("threads", 0);

  trace::WorkloadProfile workload;
  bool found = false;
  for (const auto b : trace::all_spec_benchmarks()) {
    if (trace::spec_name(b) == name) {
      workload = trace::spec_profile(b, length, 17);
      found = true;
    }
  }
  if (!found) {
    std::fprintf(stderr, "unknown workload '%s'\n", name.c_str());
    return 1;
  }

  exp::ExperimentEngine engine(
      exp::ExperimentEngine::Options::builder()
          .threads(static_cast<unsigned>(threads))
          .build());

  core::DesignSpaceExplorer explorer(
      sim::MachineConfig::single_core_default(), workload,
      core::KnobLevels::standard(), core::ArchKnobs::config_a(), delta,
      &engine);

  core::LpmAlgorithmConfig cfg;
  cfg.delta_percent = delta;
  cfg.max_iterations = 24;
  const core::LpmAlgorithm algorithm(cfg);

  std::printf("Optimizing %s at delta = %.0f%% (design space: %llu configs)\n\n",
              name.c_str(), delta,
              static_cast<unsigned long long>(
                  core::KnobLevels::standard().space_size()));

  const core::LpmOutcome outcome = algorithm.run(explorer);
  for (const auto& step : outcome.steps) {
    std::printf("iter %2d | LPMR1 %6.2f vs T1 %6.2f | LPMR2 %6.2f vs T2 %6.2f"
                " | %-22s | %s\n",
                step.iteration, step.observation.lpmr.lpmr1,
                step.observation.t1, step.observation.lpmr.lpmr2,
                step.observation.t2, core::to_string(step.action),
                step.observation.config_label.c_str());
  }
  std::printf("\n%s after %zu iterations; %zu configurations simulated;\n"
              "%llu reconfiguration ops (%llu cycles); final stall %.4f "
              "cycles/instr (%.1f%% of CPIexe)\n",
              outcome.converged ? "Converged" : "Stopped",
              outcome.steps.size(), explorer.configs_evaluated(),
              static_cast<unsigned long long>(explorer.reconfigurations()),
              static_cast<unsigned long long>(
                  explorer.reconfiguration_cost_cycles()),
              outcome.final_observation.stall_per_instr,
              100.0 * outcome.final_observation.stall_per_instr /
                  outcome.final_observation.cpi_exe);
  std::printf("engine: %u thread(s), %llu simulation(s) executed, "
              "%llu cache hit(s), %.2fs simulation time\n",
              engine.threads(),
              static_cast<unsigned long long>(engine.simulations_executed()),
              static_cast<unsigned long long>(engine.cache_hits()),
              engine.busy_seconds());
  std::printf("%s\n", lpm::obs::summary_line().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const lpm::util::LpmError& e) {
    std::fprintf(stderr, "error[%s]: %s\n",
                 lpm::util::error_code_name(e.code()), e.what());
    return 1;
  }
}
