// Quickstart: build a machine, run a workload, and read the C-AMAT / LPM
// metrics off it - the five-minute tour of the public API.
//
//   $ ./quickstart [workload=403.gcc] [length=100000]
#include <cstdio>
#include <memory>

#include "core/lpm_model.hpp"
#include "sim/system.hpp"
#include "trace/spec_like.hpp"
#include "trace/synthetic.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  using namespace lpm;
  const auto args = util::KvConfig::from_args(argc, argv);
  const std::string name = args.get_or("workload", "403.gcc");
  const std::uint64_t length = args.get_uint_or("length", 100'000);

  // 1. Pick a workload profile (a synthetic SPEC CPU2006 analogue).
  trace::WorkloadProfile workload;
  bool found = false;
  for (const auto b : trace::all_spec_benchmarks()) {
    if (trace::spec_name(b) == name) {
      workload = trace::spec_profile(b, length, /*seed=*/42);
      found = true;
    }
  }
  if (!found) {
    std::fprintf(stderr, "unknown workload '%s'; try 403.gcc, 429.mcf, ...\n",
                 name.c_str());
    return 1;
  }

  // 2. Describe the machine: one out-of-order core, private L1, shared L2,
  //    DRAM - every knob is a plain struct field.
  sim::MachineConfig machine = sim::MachineConfig::single_core_default();
  machine.core.issue_width = 4;
  machine.l1.mshr_entries = 8;

  // 3. Calibrate CPIexe (perfect-cache run), then simulate for real.
  trace::SyntheticTrace calib_trace(workload);
  const sim::CpiExeResult calib = sim::measure_cpi_exe(machine, calib_trace);

  std::vector<trace::TraceSourcePtr> traces;
  traces.push_back(std::make_unique<trace::SyntheticTrace>(workload));
  sim::System system(machine, std::move(traces));
  const sim::SystemResult run = system.run();

  // 4. Read the LPM measurement.
  const auto m = core::AppMeasurement::from_run(run, calib, 0, workload.name);
  const auto lpmr = core::compute_lpmrs(m);

  std::printf("workload            : %s (%llu instructions)\n", name.c_str(),
              static_cast<unsigned long long>(m.instructions));
  std::printf("cycles              : %llu (IPC %.3f, CPIexe %.3f)\n",
              static_cast<unsigned long long>(run.cycles),
              1.0 / m.measured_cpi, m.cpi_exe);
  std::printf("L1 C-AMAT           : %.3f cycles/access (AMAT would say %.3f)\n",
              m.l1.camat(), m.l1.amat());
  std::printf("  H=%.2f C_H=%.2f pMR=%.4f pAMP=%.2f C_M=%.2f\n", m.l1.H(),
              m.l1.CH(), m.l1.pMR(), m.l1.pAMP(), m.l1.CM());
  std::printf("  conventional: MR=%.4f AMP=%.2f C_m=%.2f eta1=%.3f\n", m.mr1,
              m.l1.AMP(), m.l1.Cm(), m.l1.eta1());
  std::printf("layered matching    : LPMR1=%.2f LPMR2=%.2f LPMR3=%.2f\n",
              lpmr.lpmr1, lpmr.lpmr2, lpmr.lpmr3);
  std::printf("data stall          : %.4f cycles/instr (%.1f%% of CPI), "
              "overlap ratio %.3f\n",
              m.measured_stall_per_instr,
              100.0 * m.measured_stall_per_instr / m.measured_cpi,
              m.overlap_ratio);
  std::printf("Eq.7 check          : fmem*C-AMAT1*(1-overlap) = %.4f\n",
              core::stall_eq7(m));
  return 0;
}
