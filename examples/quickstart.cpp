// Quickstart: build a machine, run a workload, and read the C-AMAT / LPM
// metrics off it - the five-minute tour of the public API. Everything here
// comes through the single facade header lpm.hpp: the machine from
// MachineConfig::builder(), the workload from TraceSpec, the run (with its
// calibration and LPM measurement) from lpm::simulate().
//
//   $ ./quickstart [workload=403.gcc] [length=100000]
#include <cstdio>

#include "lpm.hpp"

int main(int argc, char** argv) {
  using namespace lpm;
  const auto args = util::KvConfig::from_args(argc, argv);
  const std::string name = args.get_or("workload", "403.gcc");
  const std::uint64_t length = args.get_uint_or("length", 100'000);

  // 1. Pick a workload (a synthetic SPEC CPU2006 analogue, by name).
  TraceSpec spec;
  try {
    spec = TraceSpec::spec(name, length, /*seed=*/42);
  } catch (const util::ConfigError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  // 2. Describe the machine: one out-of-order core, private L1, shared L2,
  //    DRAM. The builder starts from the single-core default and validates
  //    the finished config at build().
  const sim::MachineConfig machine =
      sim::MachineConfig::builder()
          .with_core([](cpu::CoreConfig& c) { c.issue_width = 4; })
          .with_l1([](mem::CacheConfig& c) { c.mshr_entries = 8; })
          .build();

  // 3. Simulate: calibration (perfect-cache CPIexe run) plus the real run,
  //    served through the shared experiment engine.
  const SimulationReport report = simulate(machine, spec);

  // 4. Read the LPM measurement.
  const core::AppMeasurement& m = report.app();
  const core::LpmrSet& lpmr = report.lpmr;

  std::printf("workload            : %s (%llu instructions)\n", name.c_str(),
              static_cast<unsigned long long>(m.instructions));
  std::printf("cycles              : %llu (IPC %.3f, CPIexe %.3f)\n",
              static_cast<unsigned long long>(report.run.cycles),
              1.0 / m.measured_cpi, m.cpi_exe);
  std::printf("L1 C-AMAT           : %.3f cycles/access (AMAT would say %.3f)\n",
              m.l1.camat(), m.l1.amat());
  std::printf("  H=%.2f C_H=%.2f pMR=%.4f pAMP=%.2f C_M=%.2f\n", m.l1.H(),
              m.l1.CH(), m.l1.pMR(), m.l1.pAMP(), m.l1.CM());
  std::printf("  conventional: MR=%.4f AMP=%.2f C_m=%.2f eta1=%.3f\n", m.mr1,
              m.l1.AMP(), m.l1.Cm(), m.l1.eta1());
  std::printf("layered matching    : LPMR1=%.2f LPMR2=%.2f LPMR3=%.2f\n",
              lpmr.lpmr1, lpmr.lpmr2, lpmr.lpmr3);
  std::printf("data stall          : %.4f cycles/instr (%.1f%% of CPI), "
              "overlap ratio %.3f\n",
              m.measured_stall_per_instr,
              100.0 * m.measured_stall_per_instr / m.measured_cpi,
              m.overlap_ratio);
  std::printf("Eq.7 check          : fmem*C-AMAT1*(1-overlap) = %.4f\n",
              core::stall_eq7(m));
  return 0;
}
