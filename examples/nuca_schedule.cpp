// Case-Study-II scenario: schedule a multiprogrammed mix onto the
// heterogeneous-L1 CMP with NUCA-SA and compare against Random/Round-Robin.
//
//   $ ./nuca_schedule [apps=8] [length=30000]
#include <cstdio>
#include <string>

#include "lpm.hpp"

int main(int argc, char** argv) {
  using namespace lpm;
  const auto args = util::KvConfig::from_args(argc, argv);
  const std::size_t num_apps =
      static_cast<std::size_t>(args.get_uint_or("apps", 8));
  const std::uint64_t length = args.get_uint_or("length", 30'000);

  // Machine: one core per app, four L1 size classes round-robin (Fig. 5
  // style, shrunk to the requested core count).
  auto machine = sim::MachineConfig::nuca16();
  machine.num_cores = static_cast<std::uint32_t>(num_apps);
  machine.l1.num_cores = machine.num_cores;
  machine.l2.num_cores = machine.num_cores;
  const std::uint64_t sizes[4] = {4096, 16384, 32768, 65536};
  machine.l1_size_per_core.clear();
  for (std::size_t c = 0; c < num_apps; ++c) {
    machine.l1_size_per_core.push_back(sizes[(c * 4) / num_apps % 4]);
  }

  const std::vector<std::uint64_t> size_list = {4096, 16384, 32768, 65536};
  sched::Profiler profiler(machine);
  std::vector<sched::AppProfile> apps;
  const auto& catalog = trace::all_spec_benchmarks();
  for (std::size_t i = 0; i < num_apps; ++i) {
    const auto b = catalog[i % catalog.size()];
    apps.push_back(
        profiler.profile(trace::spec_profile(b, length, 61 + i), size_list));
    std::printf("profiled %-16s fmem=%.2f cpi_exe=%.3f\n",
                apps.back().name.c_str(), apps.back().fmem,
                apps.back().cpi_exe);
  }
  std::printf("\n");

  const auto evaluate = [&](sched::Scheduler& s) {
    const auto schedule = s.assign(apps, machine.l1_size_per_core);
    const auto r = sched::evaluate_schedule(machine, apps, schedule, s.name());
    std::printf("%-14s Hsp = %.4f  (co-run %llu cycles)\n", s.name().c_str(),
                r.hsp, static_cast<unsigned long long>(r.co_run_cycles));
    return r;
  };

  sched::RandomScheduler random(99);
  sched::RoundRobinScheduler rr;
  sched::NucaSaScheduler fg(1.0);
  evaluate(random);
  evaluate(rr);
  const auto r = evaluate(fg);

  std::printf("\nNUCA-SA (fg) placement:\n");
  for (std::size_t i = 0; i < apps.size(); ++i) {
    std::printf("  %-16s -> core %zu (%llu KB L1)\n", apps[i].name.c_str(),
                r.schedule[i],
                static_cast<unsigned long long>(
                    machine.l1_size_per_core[r.schedule[i]] / 1024));
  }
  return 0;
}
