// Trace tooling scenario: synthesize a workload, record it to the binary
// trace format, reload it, and verify the replay drives the simulator to an
// identical result - the reproducibility workflow for sharing experiments.
//
//   $ ./trace_tools [workload=429.mcf] [length=50000] [path=/tmp/lpm.trace]
#include <cstdio>

#include <memory>

#include "lpm.hpp"

int main(int argc, char** argv) {
  using namespace lpm;
  const auto args = util::KvConfig::from_args(argc, argv);
  const std::string name = args.get_or("workload", "429.mcf");
  const std::uint64_t length = args.get_uint_or("length", 50'000);
  const std::string path = args.get_or("path", "/tmp/lpm_example.trace");

  trace::WorkloadProfile workload;
  for (const auto b : trace::all_spec_benchmarks()) {
    if (trace::spec_name(b) == name) workload = trace::spec_profile(b, length, 5);
  }
  workload.length = length;

  // Record.
  trace::SyntheticTrace source(workload);
  const std::uint64_t written = trace::record_trace(source, path);
  std::printf("recorded %llu micro-ops of %s to %s\n",
              static_cast<unsigned long long>(written), name.c_str(),
              path.c_str());

  // Replay from memory and from file; results must match bit for bit.
  const auto run_with = [&](trace::TraceSourcePtr t) {
    auto machine = sim::MachineConfig::single_core_default();
    std::vector<trace::TraceSourcePtr> traces;
    traces.push_back(std::move(t));
    sim::System system(machine, std::move(traces));
    return system.run();
  };
  const auto live = run_with(std::make_unique<trace::SyntheticTrace>(workload));
  const auto replay = run_with(std::make_unique<trace::FileTrace>(path, name));

  std::printf("live run   : %llu cycles, %llu L1 misses, %llu DRAM reads\n",
              static_cast<unsigned long long>(live.cycles),
              static_cast<unsigned long long>(live.l1_cache[0].misses),
              static_cast<unsigned long long>(live.dram_stats.reads));
  std::printf("file replay: %llu cycles, %llu L1 misses, %llu DRAM reads\n",
              static_cast<unsigned long long>(replay.cycles),
              static_cast<unsigned long long>(replay.l1_cache[0].misses),
              static_cast<unsigned long long>(replay.dram_stats.reads));
  const bool identical = live.cycles == replay.cycles &&
                         live.l1_cache[0].misses == replay.l1_cache[0].misses &&
                         live.dram_stats.reads == replay.dram_stats.reads;
  std::printf("replay identical: %s\n", identical ? "yes" : "NO (bug!)");
  return identical ? 0 : 1;
}
