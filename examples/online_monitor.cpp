// Online monitoring scenario: attach the C-AMAT analyzer's interval
// snapshots to a running system (the Fig. 4 detecting system in action) and
// print a per-interval dashboard - C-AMAT, APC, pure-miss rate - while a
// phased workload shifts behaviour underneath it.
//
//   $ ./online_monitor [interval=2000] [length=120000]
#include <cstdio>

#include <memory>

#include "lpm.hpp"

int main(int argc, char** argv) {
  using namespace lpm;
  const auto args = util::KvConfig::from_args(argc, argv);
  const Cycle interval = args.get_uint_or("interval", 2000);
  const std::uint64_t length = args.get_uint_or("length", 120'000);

  // A workload with pronounced phases: calm compute, bursty memory.
  const auto workload =
      trace::burst_profile(/*phase_length=*/8000, /*burst_duty=*/0.35, length,
                           /*seed=*/11);

  auto machine = sim::MachineConfig::single_core_default();
  std::vector<trace::TraceSourcePtr> traces;
  traces.push_back(std::make_unique<trace::SyntheticTrace>(workload));
  sim::System system(machine, std::move(traces));

  std::printf("cycle      | accesses  C-AMAT   APC    pMR     C_H   C_m  | "
              "note\n");
  std::printf("-----------+------------------------------------------------+"
              "-----\n");

  double baseline_apc_demand = -1.0;
  while (system.step()) {
    if (system.now() % interval != 0) continue;
    const auto delta = system.l1_analyzer(0).interval_delta();
    if (delta.accesses == 0) continue;
    const double apc_demand =
        static_cast<double>(delta.accesses) / static_cast<double>(interval);
    const char* note = "";
    if (baseline_apc_demand < 0) {
      baseline_apc_demand = apc_demand;
    } else if (apc_demand > 1.5 * baseline_apc_demand) {
      note = "<-- memory burst";
    } else {
      baseline_apc_demand = 0.8 * baseline_apc_demand + 0.2 * apc_demand;
    }
    std::printf("%10llu | %8llu  %6.3f  %5.3f  %6.4f  %5.2f %5.2f | %s\n",
                static_cast<unsigned long long>(system.now()),
                static_cast<unsigned long long>(delta.accesses), delta.camat(),
                delta.apc(), delta.pMR(), delta.CH(), delta.Cm(), note);
  }

  const auto total = system.l1_analyzer(0).metrics();
  std::printf("-----------+------------------------------------------------+"
              "-----\n");
  std::printf("whole run  | %8llu  %6.3f  %5.3f  %6.4f\n",
              static_cast<unsigned long long>(total.accesses), total.camat(),
              total.apc(), total.pMR());
  return 0;
}
