// Diagnosis scenario: measure an application on a machine, let the LPM
// model say what is binding, and quantify the five C-AMAT optimization
// dimensions with what-if analysis - the "which parameter should be
// optimized on demand" workflow, driven entirely through the lpm.hpp
// facade.
//
//   $ ./diagnose [workload=429.mcf] [length=120000] [delta=10]
#include <cstdio>

#include "lpm.hpp"

int main(int argc, char** argv) {
  using namespace lpm;
  const auto args = util::KvConfig::from_args(argc, argv);
  const std::string name = args.get_or("workload", "429.mcf");
  const std::uint64_t length = args.get_uint_or("length", 120'000);
  const double delta = args.get_double_or("delta", 10.0);

  TraceSpec spec;
  try {
    spec = TraceSpec::spec(name, length, /*seed=*/13);
  } catch (const util::ConfigError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  const sim::MachineConfig machine = sim::MachineConfig::builder().build();
  const SimulationReport report = simulate(machine, spec);
  const core::AppMeasurement& m = report.app();

  // The LPM diagnosis.
  core::HardwareContext hw;
  hw.mshr_entries = machine.l1.mshr_entries;
  hw.l1_ports = machine.l1.ports;
  hw.rob_size = machine.core.rob_size;
  hw.issue_width = machine.core.issue_width;
  hw.l1_rejections = report.run.cores[0].l1_rejections;
  hw.l1_mshr_wait_cycles = report.run.l1_cache[0].mshr_full_waits;
  hw.l1_misses = report.run.l1_cache[0].misses;
  const auto diag = core::diagnose(m, hw, delta);

  std::printf("== %s on the default machine (delta = %.0f%%) ==\n\n%s\n",
              name.c_str(), delta, diag.narrative().c_str());

  // The five optimization dimensions, quantified (paper SII).
  const auto sens = camat::sensitivity(m.l1, 2.0);
  std::printf("C-AMAT sensitivity (improvement from a 2x change in each "
              "dimension alone):\n");
  std::printf("  H     -> %5.1f%%      C_H  -> %5.1f%%\n", 100 * sens.h_gain,
              100 * sens.ch_gain);
  std::printf("  pMR   -> %5.1f%%      pAMP -> %5.1f%%      C_M -> %5.1f%%\n",
              100 * sens.pmr_gain, 100 * sens.pamp_gain, 100 * sens.cm_gain);
  std::printf("  most profitable dimension: %s\n\n", sens.best());

  const double stall_now = core::stall_eq7(m);
  const double stall_if = camat::predict_stall_per_instr(
      m.l1, camat::WhatIf::more_miss_concurrency(2.0), m.fmem,
      m.overlap_ratio);
  std::printf("what-if: doubling pure-miss concurrency alone -> stall %.4f "
              "-> %.4f cycles/instr\n",
              stall_now, stall_if);
  return 0;
}
