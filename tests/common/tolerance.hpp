// Shared numeric tolerances for the paper's identities, extracted from the
// per-suite copies so every test (and the fuzz harness's curated cousins)
// agrees on what "within tolerance" means for each equation.
//
// Three regimes:
//  * exact math (closed-form fixtures, counter arithmetic): kExact
//  * measured identities that hold by construction (Eq. 2/3/12): kTightRel,
//    scaled by the magnitude to absorb double rounding
//  * genuine model error (Eq. 4, Eq. 13, CPI decomposition): kModelErrorRel,
//    the empirical bound over the curated SPEC-like workloads — loosening it
//    should be a deliberate, reviewed act
#pragma once

namespace lpm::tol {

/// Closed-form fixtures where the only error is double rounding.
inline constexpr double kExact = 1e-12;

/// Relative slack for identities that hold by construction on a finished
/// run (Eq. 2 decomposition, Eq. 12 == Eq. 7).
inline constexpr double kTightRel = 1e-9;

/// Empirical model-error bound for the approximate equations (Eq. 4
/// recursion, Eq. 13) on the curated SPEC-like workloads.
inline constexpr double kModelErrorRel = 0.35;

/// CPI ~= CPIexe + stall (Eq. 5): busy CPI in a real run differs slightly
/// from the perfect-cache CPIexe.
inline constexpr double kCpiDecompositionRel = 0.30;

/// Eq. 2: C-AMAT parameter decomposition vs the measured 1/APC value.
[[nodiscard]] inline double eq2(double camat) {
  return kTightRel * (1.0 + camat);
}

/// Eq. 7 vs the core's measured stall/instr: exact by the DESIGN.md stall
/// definitions up to edge cycles at the run boundaries.
[[nodiscard]] inline double eq7(double measured_stall) {
  return 1e-6 + 0.002 * measured_stall;
}

/// Eq. 12 is Eq. 7 rewritten through LPMR1; identical up to rounding.
[[nodiscard]] inline double eq12(double eq7_value) {
  return kTightRel + kTightRel * eq7_value;
}

/// Eq. 4 / Eq. 13 model error around a reference value.
[[nodiscard]] inline double model_error(double reference) {
  return kModelErrorRel * reference + 1e-6;
}

}  // namespace lpm::tol
