// Robustness regressions for the experiment engine and sweep journal:
//  * retry_backoff_ms never overflows its shift or wraps, for any attempt
//    count or base (the bug: attempt 65+ shifted past 64 bits — UB — and
//    large bases wrapped to tiny delays);
//  * a sweep journal truncated at *every* byte offset (a crash mid-append)
//    resumes without double-executing or dropping a point;
//  * watchdog cancellation racing natural completion books each job
//    exactly once: executed + failed always equals the number of distinct
//    jobs, under every interleaving.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <unordered_set>
#include <vector>

#include "exp/experiment_engine.hpp"
#include "exp/fault_plan.hpp"
#include "exp/journal.hpp"
#include "sim/system.hpp"
#include "trace/spec_like.hpp"
#include "util/error.hpp"

namespace lpm {
namespace {

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  std::filesystem::remove(path);
  return path;
}

std::vector<exp::SimJob> distinct_jobs(std::size_t count,
                                       std::uint64_t length = 2'000) {
  using trace::SpecBenchmark;
  const auto machine = sim::MachineConfig::single_core_default();
  const auto& all = trace::all_spec_benchmarks();
  std::vector<exp::SimJob> jobs;
  for (std::size_t i = 0; i < count; ++i) {
    jobs.push_back(exp::SimJob::solo(
        machine, trace::spec_profile(all[i % all.size()], length, 11 + i / all.size()),
        /*calibrate=*/false, "rob" + std::to_string(i)));
  }
  return jobs;
}

// ---------------------------------------------------------------- backoff

TEST(RetryBackoff, HugeAttemptCountsNeverOverflowTheShift) {
  // attempt - 1 >= 64 used to shift past the width of uint64_t (UB, and in
  // practice a wrapped, near-zero delay). Every attempt count must clamp
  // to the cap instead.
  for (const unsigned attempt : {64u, 65u, 100u, 10'000u, 4'000'000'000u}) {
    const auto ms =
        exp::ExperimentEngine::retry_backoff_ms(1, 0xfeedULL, attempt, 10);
    EXPECT_LE(ms, exp::kMaxRetryBackoffMs) << "attempt=" << attempt;
    EXPECT_GT(ms, 0u) << "attempt=" << attempt;
  }
}

TEST(RetryBackoff, HugeBasesSaturateInsteadOfWrapping) {
  const std::uint64_t huge = ~0ULL - 3;
  for (unsigned attempt = 1; attempt <= 8; ++attempt) {
    EXPECT_EQ(exp::ExperimentEngine::retry_backoff_ms(1, 2, attempt, huge),
              exp::kMaxRetryBackoffMs);
  }
  // A large-but-representable product also clamps rather than wraps.
  EXPECT_LE(exp::ExperimentEngine::retry_backoff_ms(1, 2, 40, 1'000'000),
            exp::kMaxRetryBackoffMs);
}

TEST(RetryBackoff, MonotoneInAttemptUntilTheExponentClamp) {
  const std::uint64_t base = 5;
  std::uint64_t prev = 0;
  for (unsigned attempt = 1; attempt <= 80; ++attempt) {
    const auto ms =
        exp::ExperimentEngine::retry_backoff_ms(7, 0xabcULL, attempt, base);
    // Jitter is bounded by base, so base<<(k-1) growth dominates: each
    // step is >= the previous one (modulo one jitter width) until the
    // exponent clamps.
    EXPECT_GE(ms + base, prev) << "attempt=" << attempt;
    EXPECT_LE(ms, exp::kMaxRetryBackoffMs);
    if (attempt >= 17) {
      // Exponent clamped: the delay plateaus at base << 16 plus jitter.
      EXPECT_GE(ms, base << 16) << "attempt=" << attempt;
      EXPECT_LE(ms, (base << 16) + base) << "attempt=" << attempt;
    }
    prev = ms;
  }
}

TEST(RetryBackoff, DeterministicPerSeedAndFingerprint) {
  const auto a = exp::ExperimentEngine::retry_backoff_ms(1, 2, 3, 10);
  const auto b = exp::ExperimentEngine::retry_backoff_ms(1, 2, 3, 10);
  EXPECT_EQ(a, b);
  EXPECT_NE(exp::ExperimentEngine::retry_backoff_ms(1, 2, 1, 1'000),
            exp::ExperimentEngine::retry_backoff_ms(2, 2, 1, 1'000));
}

// ------------------------------------------------- torn journal truncation

TEST(SweepJournalTruncation, EveryPrefixResumesExactly) {
  // Build a journal of 5 completed points, then replay a crash at every
  // byte offset of the file. Whatever the cut, reopening must recover
  // exactly the points whose full line survived: no double execution
  // (recovered points are skipped) and no dropped point (complete lines
  // before the tear all load).
  const std::string master = temp_path("rob_journal_master.log");
  std::vector<std::uint64_t> fps;
  {
    auto journal = exp::SweepJournal::open(master);
    for (std::uint64_t i = 1; i <= 5; ++i) {
      const std::uint64_t fp = 0x1000 + i * 7;
      journal->mark_done(fp, "point" + std::to_string(i), 1.5 * i);
      fps.push_back(fp);
    }
  }
  std::string bytes;
  {
    std::ifstream in(master, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_FALSE(bytes.empty());

  const std::string cut = temp_path("rob_journal_cut.log");
  for (std::size_t offset = 0; offset <= bytes.size(); ++offset) {
    {
      std::ofstream out(cut, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(offset));
    }
    // Complete lines in the prefix = newlines seen.
    const std::size_t complete = static_cast<std::size_t>(
        std::count(bytes.begin(), bytes.begin() + offset, '\n'));
    auto journal = exp::SweepJournal::open(cut);
    ASSERT_EQ(journal->size(), complete) << "offset=" << offset;
    for (std::size_t i = 0; i < fps.size(); ++i) {
      EXPECT_EQ(journal->completed(fps[i]), i < complete)
          << "offset=" << offset << " point=" << i;
    }
    // The reopened journal stays appendable mid-history: marking the torn
    // point done again must stick.
    if (complete < fps.size()) {
      journal->mark_done(fps[complete], "healed", 0.0);
      EXPECT_TRUE(journal->completed(fps[complete]));
    }
  }
}

TEST(SweepJournalTruncation, EngineResumeNeverDoubleExecutesOrDrops) {
  // End-to-end: run 4 points under a journal, truncate the journal at a
  // handful of representative offsets (clean end, mid-line, line
  // boundary), and rerun. executed + skipped must always equal the batch,
  // and re-executed points are exactly the non-recovered ones.
  const auto jobs = distinct_jobs(4, 1'000);
  const std::string master = temp_path("rob_resume_master.log");
  {
    auto journal = exp::SweepJournal::open(master);
    exp::ExperimentEngine::Options opts;
    opts.threads = 1;
    opts.cache_enabled = false;
    opts.journal = journal.get();
    exp::ExperimentEngine engine(opts);
    const auto outcomes = engine.run_batch_outcomes(
        jobs, exp::BatchOptions{exp::FailurePolicy::kCollect, true});
    for (const auto& o : outcomes) EXPECT_TRUE(o.ok());
    EXPECT_EQ(engine.simulations_executed(), jobs.size());
  }
  std::string bytes;
  {
    std::ifstream in(master, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  const std::size_t first_line = bytes.find('\n') + 1;
  const std::vector<std::size_t> offsets = {
      0, first_line - 1, first_line, first_line + 3, bytes.size() - 1,
      bytes.size()};

  const std::string cut = temp_path("rob_resume_cut.log");
  for (const std::size_t offset : offsets) {
    {
      std::ofstream out(cut, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(offset));
    }
    const std::size_t recovered = static_cast<std::size_t>(
        std::count(bytes.begin(), bytes.begin() + offset, '\n'));
    auto journal = exp::SweepJournal::open(cut);
    exp::ExperimentEngine::Options opts;
    opts.threads = 1;
    opts.cache_enabled = false;
    opts.journal = journal.get();
    exp::ExperimentEngine engine(opts);
    const auto outcomes = engine.run_batch_outcomes(
        jobs, exp::BatchOptions{exp::FailurePolicy::kCollect, true});
    ASSERT_EQ(outcomes.size(), jobs.size()) << "offset=" << offset;
    std::size_t skipped = 0;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      // No outcome may be lost: each point is either skipped (already
      // journaled) or freshly executed, never neither, never both.
      EXPECT_EQ(outcomes[i].skipped, i < recovered)
          << "offset=" << offset << " job=" << i;
      EXPECT_EQ(outcomes[i].ok(), !outcomes[i].skipped);
      skipped += outcomes[i].skipped ? 1 : 0;
    }
    EXPECT_EQ(engine.simulations_executed() + skipped, jobs.size())
        << "offset=" << offset;
    EXPECT_EQ(engine.journal_skips(), recovered);
    // After the resume, the journal is whole again.
    EXPECT_EQ(journal->size(), jobs.size());
  }
}

// ------------------------------------- watchdog cancellation vs completion

TEST(WatchdogRace, HungJobIsCancelledAndSingleCounted) {
  // One injected hang among real work, retries off: the hung job must come
  // back kTimeout exactly once, everything else succeeds, and the books
  // balance: executed + failed == distinct jobs.
  const auto jobs = distinct_jobs(5);
  exp::ExperimentEngine::Options opts;
  opts.threads = 1;
  opts.cache_enabled = false;
  opts.max_retries = 0;
  opts.job_timeout_ms = 50;
  opts.policy = exp::FailurePolicy::kCollect;
  opts.fault_plan = exp::FaultPlan::parse("hang@3");
  exp::ExperimentEngine engine(opts);

  const auto outcomes = engine.run_batch_outcomes(jobs);
  ASSERT_EQ(outcomes.size(), jobs.size());
  std::size_t ok = 0, timed_out = 0;
  for (const auto& o : outcomes) {
    if (o.ok()) {
      ++ok;
    } else {
      EXPECT_EQ(o.error, util::ErrorCode::kTimeout);
      ++timed_out;
    }
  }
  EXPECT_EQ(ok, jobs.size() - 1);
  EXPECT_EQ(timed_out, 1u);
  EXPECT_EQ(engine.retries_performed(), 0u);
  EXPECT_EQ(engine.simulations_executed(), ok);
  EXPECT_EQ(engine.jobs_failed(), timed_out);
  EXPECT_EQ(engine.simulations_executed() + engine.jobs_failed(), jobs.size());
}

TEST(WatchdogRace, CancellationRacingCompletionIsSingleCounted) {
  // Jobs sized so their natural runtime straddles the watchdog budget:
  // some finish just before the cancel, some just after. Whichever side of
  // the race each job lands on, the outcome is deterministic in shape —
  // success XOR typed timeout — and counted exactly once. Run several
  // rounds on a pooled engine to give the race every chance to bite.
  for (int round = 0; round < 3; ++round) {
    const auto jobs = distinct_jobs(8, 60'000);
    exp::ExperimentEngine::Options opts;
    opts.threads = 4;
    opts.cache_enabled = false;
    opts.max_retries = 0;
    opts.job_timeout_ms = 1 + round;  // ~the natural runtime of one job
    opts.policy = exp::FailurePolicy::kCollect;
    exp::ExperimentEngine engine(opts);

    const auto outcomes = engine.run_batch_outcomes(jobs);
    ASSERT_EQ(outcomes.size(), jobs.size());
    std::size_t ok = 0, timed_out = 0;
    for (const auto& o : outcomes) {
      if (o.ok()) {
        EXPECT_EQ(o.error, util::ErrorCode::kNone);
        ++ok;
      } else {
        // A cancelled job must carry the typed timeout, a message, and no
        // half-built result object.
        EXPECT_EQ(o.error, util::ErrorCode::kTimeout) << o.error_message;
        EXPECT_FALSE(o.error_message.empty());
        EXPECT_EQ(o.result, nullptr);
        ++timed_out;
      }
    }
    EXPECT_EQ(ok + timed_out, jobs.size()) << "round=" << round;
    EXPECT_EQ(engine.simulations_executed(), ok) << "round=" << round;
    EXPECT_EQ(engine.jobs_failed(), timed_out) << "round=" << round;
    EXPECT_EQ(engine.retries_performed(), 0u);
  }
}

}  // namespace
}  // namespace lpm
