// Fault-tolerance guarantees of the experiment engine, exercised through
// deterministic fault injection (exp::FaultPlan): pooled outcomes match
// serial ones job-for-job, retries recover transient failures on a fixed
// schedule, the watchdog cancels hung jobs cooperatively, fail-fast never
// drops an outcome, and a sweep journal resumes a killed sweep without
// re-simulating completed points.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "exp/experiment_engine.hpp"
#include "exp/fault_plan.hpp"
#include "exp/journal.hpp"
#include "sim/system.hpp"
#include "trace/spec_like.hpp"
#include "trace/synthetic.hpp"
#include "util/error.hpp"
#include "util/fingerprint.hpp"

namespace lpm {
namespace {

/// Digest over the counters that drive every downstream consumer; equal
/// digests mean the runs are interchangeable (full bit-identity of the
/// pooled engine is asserted by experiment_engine_test.cpp).
std::uint64_t digest(const exp::SimJobResult& r) {
  util::Fingerprint f;
  f.mix(r.run.completed).mix(r.run.cycles);
  for (const auto& c : r.run.cores) {
    f.mix(c.instructions).mix(c.cycles).mix(c.data_stall_cycles);
  }
  f.mix(r.run.l2.accesses).mix(r.run.l2.misses).mix(r.run.dram.accesses);
  for (const auto& c : r.calib) f.mix(c.instructions).mix(c.cycles);
  return f.value();
}

/// Five distinct short solo points (distinct fingerprints, so a fresh
/// engine assigns them executed-point indices 1..5 in submission order).
std::vector<exp::SimJob> five_jobs() {
  using trace::SpecBenchmark;
  const auto machine = sim::MachineConfig::single_core_default();
  std::vector<exp::SimJob> jobs;
  const SpecBenchmark benchmarks[] = {
      SpecBenchmark::kBwaves, SpecBenchmark::kGcc, SpecBenchmark::kMilc,
      SpecBenchmark::kMcf, SpecBenchmark::kSoplex};
  for (int i = 0; i < 5; ++i) {
    jobs.push_back(exp::SimJob::solo(
        machine, trace::spec_profile(benchmarks[i], 10'000, 7),
        /*calibrate=*/i % 2 == 0, "job" + std::to_string(i)));
  }
  return jobs;
}

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  std::filesystem::remove(path);
  return path;
}

TEST(FaultPlan, ParsesSpecAndRejectsGarbage) {
  const auto plan = exp::FaultPlan::parse("throw@3,hang@7,io@12");
  EXPECT_FALSE(plan.empty());
  EXPECT_EQ(plan.at(3), exp::FaultKind::kThrow);
  EXPECT_EQ(plan.at(7), exp::FaultKind::kHang);
  EXPECT_EQ(plan.at(12), exp::FaultKind::kIo);
  EXPECT_EQ(plan.at(1), std::nullopt);
  EXPECT_TRUE(exp::FaultPlan::parse("").empty());

  EXPECT_THROW((void)exp::FaultPlan::parse("explode@3"), util::ConfigError);
  EXPECT_THROW((void)exp::FaultPlan::parse("throw@zero"), util::ConfigError);
  EXPECT_THROW((void)exp::FaultPlan::parse("throw@0"), util::ConfigError);
  EXPECT_THROW((void)exp::FaultPlan::parse("throw@2,io@2"), util::ConfigError);
}

TEST(FaultInjection, PooledOutcomesIdenticalToSerial) {
  const auto jobs = five_jobs();

  const auto run_with = [&jobs](unsigned threads) {
    exp::ExperimentEngine::Options opts;
    opts.threads = threads;
    opts.fault_plan = exp::FaultPlan::parse("throw@2,io@4");
    exp::ExperimentEngine engine(opts);
    return engine.run_batch_outcomes(
        jobs, exp::BatchOptions{exp::FailurePolicy::kCollect, false});
  };
  const auto serial = run_with(1);
  const auto pooled = run_with(4);
  ASSERT_EQ(serial.size(), jobs.size());
  ASSERT_EQ(pooled.size(), jobs.size());

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(serial[i].ok(), pooled[i].ok()) << "job " << i;
    EXPECT_EQ(serial[i].error, pooled[i].error) << "job " << i;
    EXPECT_EQ(serial[i].error_message, pooled[i].error_message) << "job " << i;
    EXPECT_EQ(serial[i].attempts, pooled[i].attempts) << "job " << i;
    if (serial[i].ok()) {
      EXPECT_EQ(digest(*serial[i].result), digest(*pooled[i].result))
          << "job " << i;
    }
  }
  // The injection sites are exactly the planned executed-point indices.
  EXPECT_EQ(serial[1].error, util::ErrorCode::kSim);
  EXPECT_EQ(serial[3].error, util::ErrorCode::kIo);
  EXPECT_TRUE(serial[0].ok());
  EXPECT_TRUE(serial[2].ok());
  EXPECT_TRUE(serial[4].ok());
  EXPECT_NE(serial[1].error_message.find("job1"), std::string::npos)
      << "failure must carry the job tag: " << serial[1].error_message;
}

TEST(FaultInjection, HangIsCancelledByWatchdogAsTimeout) {
  exp::ExperimentEngine::Options opts;
  opts.threads = 2;
  // Generous budget: the genuine job must finish inside it even under a
  // 10-20x sanitizer slowdown; only the injected hang may trip it. The
  // test's duration is ~one budget (the hang waits for the watchdog).
  opts.job_timeout_ms = 1000;
  opts.fault_plan = exp::FaultPlan::parse("hang@1");
  exp::ExperimentEngine engine(opts);

  const auto jobs = five_jobs();
  const auto outcomes = engine.run_batch_outcomes(
      {jobs[0], jobs[1]}, exp::BatchOptions{exp::FailurePolicy::kCollect, false});
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_FALSE(outcomes[0].ok());
  EXPECT_EQ(outcomes[0].error, util::ErrorCode::kTimeout);
  EXPECT_TRUE(outcomes[1].ok()) << outcomes[1].error_message;
  EXPECT_THROW((void)outcomes[0].value(), util::TimeoutError);
}

TEST(FaultInjection, RetryRecoversTransientFailureDeterministically) {
  exp::ExperimentEngine::Options opts;
  opts.threads = 1;
  opts.max_retries = 1;
  opts.retry_backoff_base_ms = 0;  // keep the test instant
  opts.fault_plan = exp::FaultPlan::parse("throw@1");
  exp::ExperimentEngine engine(opts);

  const auto jobs = five_jobs();
  const auto outcomes = engine.run_batch_outcomes(
      {jobs[0]}, exp::BatchOptions{exp::FailurePolicy::kCollect, false});
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].ok()) << outcomes[0].error_message;
  EXPECT_EQ(outcomes[0].attempts, 2u);
  EXPECT_EQ(engine.retries_performed(), 1u);
  EXPECT_EQ(engine.jobs_failed(), 0u);
  EXPECT_EQ(engine.simulations_executed(), 1u);
}

TEST(FaultInjection, RetryBackoffIsAPureFunction) {
  using Engine = exp::ExperimentEngine;
  const std::uint64_t seed = 0x5eedULL;
  const std::uint64_t fp = 0xabcdef0123ULL;
  EXPECT_EQ(Engine::retry_backoff_ms(seed, fp, 1, 0), 0u);
  const auto first = Engine::retry_backoff_ms(seed, fp, 1, 10);
  EXPECT_EQ(Engine::retry_backoff_ms(seed, fp, 1, 10), first)
      << "same (seed, fingerprint, attempt) must give the same delay";
  EXPECT_GE(first, 10u);
  EXPECT_LE(first, 20u);  // base + jitter in [0, base]
  // Exponential growth: attempt k waits at least base << (k-1).
  EXPECT_GE(Engine::retry_backoff_ms(seed, fp, 3, 10), 40u);
}

TEST(FaultInjection, ConfigErrorsAreNeverRetried) {
  exp::ExperimentEngine::Options opts;
  opts.threads = 1;
  opts.max_retries = 5;
  exp::ExperimentEngine engine(opts);

  exp::SimJob bad;  // no workloads for a 1-core machine
  bad.machine = sim::MachineConfig::single_core_default();
  bad.tag = "bad";
  const auto outcomes = engine.run_batch_outcomes(
      {bad}, exp::BatchOptions{exp::FailurePolicy::kCollect, false});
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].error, util::ErrorCode::kConfig);
  EXPECT_EQ(engine.retries_performed(), 0u);
  EXPECT_THROW((void)outcomes[0].value(), util::ConfigError);
}

TEST(FaultInjection, FailFastCancelsUnstartedJobsButDropsNone) {
  exp::ExperimentEngine::Options opts;
  opts.threads = 1;  // serial: deterministic cancellation boundary
  opts.fault_plan = exp::FaultPlan::parse("throw@1");
  exp::ExperimentEngine engine(opts);

  const auto jobs = five_jobs();
  const auto outcomes = engine.run_batch_outcomes(
      {jobs[0], jobs[1], jobs[2]},
      exp::BatchOptions{exp::FailurePolicy::kFailFast, false});
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_EQ(outcomes[0].error, util::ErrorCode::kSim);
  EXPECT_EQ(outcomes[1].error, util::ErrorCode::kCancelled);
  EXPECT_EQ(outcomes[2].error, util::ErrorCode::kCancelled);
  EXPECT_EQ(engine.simulations_executed(), 0u);
}

TEST(FaultInjection, RunBatchThrowsTypedErrorWithTagAndFingerprint) {
  exp::ExperimentEngine::Options opts;
  opts.threads = 1;
  opts.fault_plan = exp::FaultPlan::parse("io@1");
  exp::ExperimentEngine engine(opts);

  const auto jobs = five_jobs();
  try {
    (void)engine.run_batch({jobs[0]});
    FAIL() << "run_batch must rethrow the injected failure";
  } catch (const util::IoError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("job0"), std::string::npos) << what;
    EXPECT_NE(what.find("fingerprint"), std::string::npos) << what;
  }
}

TEST(FaultInjection, JournalResumesKilledSweepWithoutResimulating) {
  const std::string path = temp_path("lpm_journal_resume.log");
  const auto jobs = five_jobs();
  const std::vector<exp::SimJob> first_half = {jobs[0], jobs[1], jobs[2]};

  {
    auto journal = exp::SweepJournal::open(path);
    exp::ExperimentEngine::Options opts;
    opts.threads = 1;
    opts.journal = journal.get();
    exp::ExperimentEngine engine(opts);
    const auto outcomes = engine.run_batch_outcomes(
        first_half, exp::BatchOptions{exp::FailurePolicy::kCollect, true});
    for (const auto& o : outcomes) EXPECT_TRUE(o.ok());
    EXPECT_EQ(engine.simulations_executed(), 3u);
    EXPECT_EQ(journal->size(), 3u);
  }  // "crash": engine and journal destroyed mid-sweep

  auto journal = exp::SweepJournal::open(path);
  EXPECT_EQ(journal->size(), 3u);
  exp::ExperimentEngine::Options opts;
  opts.threads = 1;
  opts.journal = journal.get();
  exp::ExperimentEngine engine(opts);
  const auto outcomes = engine.run_batch_outcomes(
      jobs, exp::BatchOptions{exp::FailurePolicy::kCollect, true});
  ASSERT_EQ(outcomes.size(), 5u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(outcomes[i].skipped) << "point " << i << " was already done";
    EXPECT_FALSE(outcomes[i].ok());
  }
  EXPECT_TRUE(outcomes[3].ok());
  EXPECT_TRUE(outcomes[4].ok());
  EXPECT_EQ(engine.simulations_executed(), 2u)
      << "only the two new points simulate on resume";
  EXPECT_EQ(engine.journal_skips(), 3u);
  EXPECT_EQ(journal->size(), 5u);

  // The legacy result-object API must never journal-skip.
  exp::ExperimentEngine::Options opts2;
  opts2.threads = 1;
  opts2.journal = journal.get();
  exp::ExperimentEngine engine2(opts2);
  const auto results = engine2.run_batch(first_half);
  ASSERT_EQ(results.size(), 3u);
  for (const auto& r : results) EXPECT_NE(r, nullptr);
  std::filesystem::remove(path);
}

TEST(FaultInjection, JournalHealsTornLastLine) {
  const std::string path = temp_path("lpm_journal_torn.log");
  {
    std::ofstream out(path, std::ios::binary);
    out << "done 00000000deadbeef point-a\n";
    out << "done 0000000012";  // torn mid-append: no newline, short fp
  }
  const auto journal = exp::SweepJournal::open(path);
  EXPECT_EQ(journal->size(), 1u);
  EXPECT_TRUE(journal->completed(0xdeadbeefULL));
  EXPECT_FALSE(journal->completed(0x12ULL));
  std::filesystem::remove(path);
}

TEST(FaultInjection, TrimPartialLastLineCountsBytes) {
  const std::string path = temp_path("lpm_trim.log");
  {
    std::ofstream out(path, std::ios::binary);
    out << "complete line\npartial";
  }
  EXPECT_EQ(exp::trim_partial_last_line(path), 7u);
  EXPECT_EQ(std::filesystem::file_size(path), 14u);
  EXPECT_EQ(exp::trim_partial_last_line(path), 0u) << "clean file untouched";
  EXPECT_EQ(exp::trim_partial_last_line(temp_path("lpm_absent.log")), 0u);
  std::filesystem::remove(path);
}

TEST(FaultInjection, RunGuardCancelsSystemCooperatively) {
  const auto machine = sim::MachineConfig::single_core_default();
  const auto workload =
      trace::spec_profile(trace::SpecBenchmark::kGcc, 10'000, 7);

  sim::RunGuard guard;
  guard.cancel.store(true);
  guard.check_interval = 1;

  std::vector<trace::TraceSourcePtr> traces;
  traces.push_back(std::make_unique<trace::SyntheticTrace>(workload));
  sim::System system(machine, std::move(traces));
  EXPECT_THROW((void)system.run(&guard), util::TimeoutError);

  trace::SyntheticTrace calib_trace(workload);
  EXPECT_THROW((void)sim::measure_cpi_exe(machine, calib_trace, &guard),
               util::TimeoutError);
}

}  // namespace
}  // namespace lpm
