// Torture suite for the engine's bounded lock-free MPMC ring. Every test
// here is a data-race hunt first and a correctness check second: the suite
// runs under TSan in CI (see .github/workflows/ci.yml), so the assertions
// double as ordering witnesses — a missing release/acquire pair shows up as
// a race report even when the sums still happen to add up.
//
// The invariants exercised:
//   * no item is lost or duplicated under any producer/consumer ratio
//     (checksums over disjoint per-producer value ranges);
//   * try_push fails only when the ring is genuinely full, try_pop only
//     when genuinely empty (capacity-1 rendezvous test);
//   * items from one producer are consumed in that producer's order
//     (per-producer FIFO, the property ordered reassembly leans on);
//   * a ring abandoned while full destroys cleanly (shutdown-while-full).
#include "exp/mpmc_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace lpm::exp {
namespace {

TEST(MpmcRing, RejectsNonPowerOfTwoCapacity) {
  EXPECT_THROW(MpmcRing<int>(0), util::ConfigError);
  EXPECT_THROW(MpmcRing<int>(3), util::ConfigError);
  EXPECT_THROW(MpmcRing<int>(12), util::ConfigError);
  EXPECT_NO_THROW(MpmcRing<int>(1));
  EXPECT_NO_THROW(MpmcRing<int>(2));
  EXPECT_NO_THROW(MpmcRing<int>(1024));
}

TEST(MpmcRing, SingleThreadedFifoAndFullEmpty) {
  MpmcRing<int> ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  int out = -1;
  EXPECT_FALSE(ring.try_pop(out)) << "fresh ring must be empty";
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99)) << "5th push into capacity 4 must fail";
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i) << "single-threaded use is strict FIFO";
  }
  EXPECT_FALSE(ring.try_pop(out));
  // Wrap several laps so the sequence arithmetic crosses the mask boundary.
  for (int lap = 0; lap < 10; ++lap) {
    for (int i = 0; i < 3; ++i) EXPECT_TRUE(ring.try_push(lap * 10 + i));
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(ring.try_pop(out));
      EXPECT_EQ(out, lap * 10 + i);
    }
  }
}

/// Runs `producers` pushers and `consumers` poppers over one ring and
/// checks that exactly the pushed multiset comes out. Producer p pushes
/// values p * kPerProducer + i, so per-producer FIFO can be asserted from
/// the consumer side without any extra synchronisation.
void torture(unsigned producers, unsigned consumers, std::size_t capacity,
             std::uint64_t per_producer) {
  MpmcRing<std::uint64_t> ring(capacity);
  const std::uint64_t total = producers * per_producer;
  std::atomic<std::uint64_t> consumed{0};
  std::atomic<std::uint64_t> sum{0};
  std::atomic<bool> fifo_ok{true};

  std::vector<std::thread> threads;
  threads.reserve(producers + consumers);
  for (unsigned c = 0; c < consumers; ++c) {
    threads.emplace_back([&] {
      // Each consumer tracks the last value it saw from every producer;
      // values from one producer must arrive in increasing order even when
      // interleaved with other producers' values.
      std::vector<std::uint64_t> last(producers, 0);
      std::uint64_t value = 0;
      for (;;) {
        if (ring.try_pop(value)) {
          const auto p = static_cast<unsigned>(value / per_producer);
          const std::uint64_t i = value % per_producer;
          if (p < producers) {
            if (last[p] != 0 && i + 1 <= last[p]) fifo_ok.store(false);
            last[p] = i + 1;
          } else {
            fifo_ok.store(false);  // value outside any producer's range
          }
          sum.fetch_add(value, std::memory_order_relaxed);
          if (consumed.fetch_add(1, std::memory_order_acq_rel) + 1 == total) {
            return;
          }
        } else if (consumed.load(std::memory_order_acquire) >= total) {
          return;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (unsigned p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < per_producer; ++i) {
        const std::uint64_t value = p * per_producer + i;
        while (!ring.try_push(value)) std::this_thread::yield();
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(consumed.load(), total);
  EXPECT_EQ(sum.load(), total * (total - 1) / 2)
      << "checksum mismatch: an item was lost or duplicated";
  EXPECT_TRUE(fifo_ok.load()) << "per-producer FIFO violated";
  std::uint64_t leftover = 0;
  EXPECT_FALSE(ring.try_pop(leftover)) << "ring must drain completely";
}

TEST(MpmcRing, TortureProducersOutnumberConsumers) {
  torture(/*producers=*/4, /*consumers=*/1, /*capacity=*/8,
          /*per_producer=*/5000);
}

TEST(MpmcRing, TortureConsumersOutnumberProducers) {
  torture(/*producers=*/1, /*consumers=*/4, /*capacity=*/8,
          /*per_producer=*/20000);
}

TEST(MpmcRing, TortureBalancedSmallRing) {
  torture(/*producers=*/3, /*consumers=*/3, /*capacity=*/2,
          /*per_producer=*/5000);
}

TEST(MpmcRing, TortureCapacityOneRendezvous) {
  // Capacity 1 degenerates the ring into a rendezvous slot: every push must
  // wait for the matching pop. This is the harshest sequence-arithmetic
  // case (mask 0, every ticket hits the same cell).
  torture(/*producers=*/2, /*consumers=*/2, /*capacity=*/1,
          /*per_producer=*/3000);
}

TEST(MpmcRing, AbandonedWhileFullDestroysCleanly) {
  // Items still in flight when the owner walks away must be destroyed by
  // the ring itself — shared_ptr use-counts make leaks visible.
  auto marker = std::make_shared<int>(42);
  {
    MpmcRing<std::shared_ptr<int>> ring(4);
    for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(marker));
    EXPECT_FALSE(ring.try_push(marker));
    EXPECT_EQ(marker.use_count(), 5);
  }
  EXPECT_EQ(marker.use_count(), 1) << "ring destructor must release items";
}

TEST(MpmcRing, SizeApproxTracksOccupancyWhenQuiescent) {
  MpmcRing<int> ring(8);
  EXPECT_EQ(ring.size_approx(), 0u);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(ring.try_push(i));
  EXPECT_EQ(ring.size_approx(), 5u);
  int out = 0;
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(ring.size_approx(), 2u);
}

}  // namespace
}  // namespace lpm::exp
