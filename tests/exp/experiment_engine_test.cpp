// Tier-1 guarantees of the experiment engine: a pooled engine is
// bit-identical to a serial one, and the memo cache returns the very result
// object the original simulation produced.
#include "exp/experiment_engine.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <sstream>
#include <vector>

#include "exp/result_sink.hpp"
#include "trace/spec_like.hpp"
#include "util/error.hpp"
#include "util/fingerprint.hpp"

namespace lpm {
namespace {

void mix_camat(util::Fingerprint& f, const camat::CamatMetrics& m) {
  f.mix(m.accesses)
      .mix(m.hits)
      .mix(m.misses)
      .mix(m.pure_misses)
      .mix(m.active_cycles)
      .mix(m.hit_cycles)
      .mix(m.miss_cycles)
      .mix(m.pure_miss_cycles)
      .mix(m.hit_phase_access_cycles)
      .mix(m.miss_access_cycles)
      .mix(m.pure_access_cycles)
      .mix(m.hit_access_cycles)
      .mix(m.total_miss_latency);
}

void mix_cache_stats(util::Fingerprint& f, const mem::CacheStats& s) {
  f.mix(s.accesses)
      .mix(s.hits)
      .mix(s.misses)
      .mix(s.mshr_coalesced)
      .mix(s.rejected_ports)
      .mix(s.rejected_bank)
      .mix(s.rejected_backlog)
      .mix(s.mshr_full_waits)
      .mix(s.writebacks)
      .mix(s.writeback_hits)
      .mix(s.writeback_forwards)
      .mix(s.fills)
      .mix(s.evictions)
      .mix(s.deferred_fills)
      .mix(s.prefetches_issued)
      .mix(s.prefetch_hits)
      .mix(s.prefetch_coalesced)
      .mix(s.quota_waits);
  for (const auto v : s.core_accesses) f.mix(v);
  for (const auto v : s.core_misses) f.mix(v);
}

/// Digest over every counter a simulation produces; two results with equal
/// digests are bit-identical for all practical purposes.
std::uint64_t digest(const exp::SimJobResult& r) {
  util::Fingerprint f;
  f.mix(r.run.completed).mix(r.run.cycles);
  for (const auto& c : r.run.cores) {
    f.mix(c.instructions)
        .mix(c.mem_ops)
        .mix(c.loads)
        .mix(c.stores)
        .mix(c.cycles)
        .mix(c.commit_cycles)
        .mix(c.mem_active_cycles)
        .mix(c.overlap_cycles)
        .mix(c.data_stall_cycles)
        .mix(c.head_mem_stall_cycles)
        .mix(c.l1_rejections);
  }
  for (const auto& m : r.run.l1) mix_camat(f, m);
  mix_camat(f, r.run.l2);
  mix_camat(f, r.run.dram);
  for (const auto& s : r.run.l1_cache) mix_cache_stats(f, s);
  mix_cache_stats(f, r.run.l2_cache);
  f.mix(r.run.dram_stats.reads)
      .mix(r.run.dram_stats.writes)
      .mix(r.run.dram_stats.row_hits)
      .mix(r.run.dram_stats.row_misses)
      .mix(r.run.dram_stats.row_conflicts)
      .mix(r.run.dram_stats.rejected_full)
      .mix(r.run.dram_stats.busy_cycles)
      .mix(r.run.dram_stats.total_read_latency);
  for (const auto& c : r.calib) {
    f.mix(std::bit_cast<std::uint64_t>(c.cpi_exe))
        .mix(std::bit_cast<std::uint64_t>(c.fmem))
        .mix(c.instructions)
        .mix(c.cycles);
  }
  return f.value();
}

/// A mixed job set: three solo points (two calibrated) and one two-core
/// co-run, all short enough for tier-1.
std::vector<exp::SimJob> test_jobs() {
  using trace::SpecBenchmark;
  std::vector<exp::SimJob> jobs;

  auto solo = sim::MachineConfig::single_core_default();
  jobs.push_back(exp::SimJob::solo(
      solo, trace::spec_profile(SpecBenchmark::kBwaves, 20'000, 7), true, "a"));
  jobs.push_back(exp::SimJob::solo(
      solo, trace::spec_profile(SpecBenchmark::kGcc, 20'000, 7), true, "b"));
  auto big_l1 = solo;
  big_l1.l1.size_bytes *= 2;
  jobs.push_back(exp::SimJob::solo(
      big_l1, trace::spec_profile(SpecBenchmark::kGcc, 20'000, 7), false, "c"));

  exp::SimJob corun;
  corun.machine = solo;
  corun.machine.num_cores = 2;
  corun.machine.l1.num_cores = 2;
  corun.machine.l2.num_cores = 2;
  corun.workloads = {
      trace::spec_profile(SpecBenchmark::kMilc, 20'000, 7),
      trace::spec_profile(SpecBenchmark::kMcf, 20'000, 7),
  };
  corun.workloads[1].addr_base = 1ULL << 30;
  corun.tag = "corun";
  jobs.push_back(corun);
  return jobs;
}

TEST(ExperimentEngine, PooledEngineBitIdenticalToSerial) {
  exp::ExperimentEngine::Options serial_opts;
  serial_opts.threads = 1;
  exp::ExperimentEngine serial(serial_opts);

  exp::ExperimentEngine::Options pooled_opts;
  pooled_opts.threads = 4;
  exp::ExperimentEngine pooled(pooled_opts);
  ASSERT_EQ(pooled.threads(), 4u);

  const auto jobs = test_jobs();
  const auto serial_results = serial.run_batch(jobs);
  const auto pooled_results = pooled.run_batch(jobs);
  ASSERT_EQ(serial_results.size(), jobs.size());
  ASSERT_EQ(pooled_results.size(), jobs.size());

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(serial_results[i]->fingerprint, pooled_results[i]->fingerprint);
    EXPECT_EQ(digest(*serial_results[i]), digest(*pooled_results[i]))
        << "job " << i << " (" << jobs[i].tag
        << ") differs between threads=1 and threads=4";
  }
}

TEST(ExperimentEngine, CacheHitReturnsSameResultObject) {
  exp::ExperimentEngine::Options opts;
  opts.threads = 1;
  exp::ExperimentEngine engine(opts);

  const auto job = test_jobs()[0];
  const auto first = engine.run(job);
  EXPECT_EQ(engine.simulations_executed(), 1u);
  EXPECT_EQ(engine.cache_hits(), 0u);

  const auto second = engine.run(job);
  EXPECT_EQ(second.get(), first.get()) << "cache hit must share the object";
  EXPECT_EQ(engine.simulations_executed(), 1u);
  EXPECT_EQ(engine.cache_hits(), 1u);

  // The tag is not part of the cache key.
  auto retagged = job;
  retagged.tag = "different tag";
  EXPECT_EQ(engine.run(retagged).get(), first.get());
  EXPECT_EQ(engine.cache_hits(), 2u);

  engine.clear_cache();
  EXPECT_EQ(engine.cache_size(), 0u);
  EXPECT_NE(engine.run(job).get(), first.get());
  EXPECT_EQ(engine.simulations_executed(), 2u);
}

TEST(ExperimentEngine, BackendIsPartOfTheCacheKey) {
  // Regression guard for the multi-fidelity seam: an analytic evaluation of
  // a point must never be served a cycle result of the same point (or vice
  // versa). A fake executor stands in for the analytic model so this stays
  // a pure engine test.
  exp::ExperimentEngine::register_backend_executor(
      "fake-analytic", [](const exp::SimJob& job, const sim::RunGuard*) {
        exp::SimJobResult out;
        out.backend = job.backend;
        return out;
      });

  exp::ExperimentEngine::Options opts;
  opts.threads = 1;
  exp::ExperimentEngine engine(opts);

  const auto cycle_job = test_jobs()[0];
  auto tagged = cycle_job;
  tagged.backend = "fake-analytic";
  ASSERT_NE(cycle_job.fingerprint(), tagged.fingerprint())
      << "the backend must feed the job fingerprint";

  const auto cycle_result = engine.run(cycle_job);
  const auto tagged_result = engine.run(tagged);
  EXPECT_NE(cycle_result.get(), tagged_result.get());
  EXPECT_EQ(engine.simulations_executed(), 2u);
  EXPECT_EQ(engine.cache_hits(), 0u);
  EXPECT_EQ(cycle_result->backend, exp::kCycleBackend);
  EXPECT_EQ(tagged_result->backend, "fake-analytic");

  // Each fidelity hits its own entry on re-submission.
  EXPECT_EQ(engine.run(cycle_job).get(), cycle_result.get());
  EXPECT_EQ(engine.run(tagged).get(), tagged_result.get());
  EXPECT_EQ(engine.cache_hits(), 2u);
}

TEST(ExperimentEngine, InBatchDuplicatesSimulateOnce) {
  exp::ExperimentEngine::Options opts;
  opts.threads = 2;
  exp::ExperimentEngine engine(opts);

  const auto job = test_jobs()[0];
  const std::vector<exp::SimJob> batch = {job, job, job};
  const auto results = engine.run_batch(batch);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].get(), results[1].get());
  EXPECT_EQ(results[0].get(), results[2].get());
  EXPECT_EQ(engine.simulations_executed(), 1u);
  EXPECT_EQ(engine.cache_hits(), 2u);
}

TEST(ExperimentEngine, SinkReceivesOneRecordPerSubmission) {
  std::ostringstream csv;
  exp::ResultSink sink(csv, exp::ResultSink::Format::kCsv);

  exp::ExperimentEngine::Options opts;
  opts.threads = 1;
  opts.sink = &sink;
  exp::ExperimentEngine engine(opts);

  const auto job = test_jobs()[0];
  (void)engine.run(job);
  (void)engine.run(job);  // cache hit still produces a record
  EXPECT_EQ(sink.records_written(), 2u);

  const std::string text = csv.str();
  EXPECT_NE(text.find("tag,fingerprint,backend,from_cache"), std::string::npos)
      << "CSV header missing:\n"
      << text;
  // RFC 4180: a plain tag needs no quotes.
  EXPECT_NE(text.find("\na,"), std::string::npos);
}

TEST(ExperimentEngine, RejectsMalformedJobs) {
  exp::ExperimentEngine::Options opts;
  opts.threads = 1;
  exp::ExperimentEngine engine(opts);

  exp::SimJob job;  // no workloads for a 1-core machine
  job.machine = sim::MachineConfig::single_core_default();
  EXPECT_THROW((void)engine.run(job), util::LpmError);
}

}  // namespace
}  // namespace lpm
