// The lock-free engine core behind the Options builder: builder
// validation, affinity-policy parsing and graceful degradation, bit-exact
// determinism across queue capacities (including the capacity-1 rendezvous
// ring), queue metrics accounting, and the submission-order contract of
// the SweepJournal under out-of-order completion.
//
// Everything here must pass on a restricted-cpuset or single-core runner:
// tests that want a real worker pool size themselves off
// hardware_concurrency() instead of assuming it.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "exp/experiment_engine.hpp"
#include "exp/journal.hpp"
#include "trace/spec_like.hpp"
#include "util/error.hpp"
#include "util/fingerprint.hpp"

namespace lpm {
namespace {

/// Distinct near-zero-cost jobs through a registered null backend; the
/// workload seed makes every point unique so nothing dedups or caches.
std::vector<exp::SimJob> null_jobs(unsigned count, const char* backend) {
  std::vector<exp::SimJob> jobs;
  jobs.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    trace::WorkloadProfile w =
        trace::spec_profile(trace::SpecBenchmark::kBwaves, 2000, 17);
    w.seed = 1000 + i;
    exp::SimJob job =
        exp::SimJob::solo(sim::MachineConfig::single_core_default(),
                          std::move(w), /*calibrate=*/false,
                          "conc-" + std::to_string(i));
    job.backend = backend;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

void register_null_backend() {
  exp::ExperimentEngine::register_backend_executor(
      "conc-null", [](const exp::SimJob& job, const sim::RunGuard*) {
        exp::SimJobResult out;
        out.backend = job.backend;
        out.run.completed = true;
        out.run.cycles = job.workloads.front().seed;  // job-identifying
        return out;
      });
}

TEST(OptionsBuilder, ValidatesQueueCapacity) {
  using Options = exp::ExperimentEngine::Options;
  EXPECT_THROW((void)Options::builder().queue_capacity(0).build(),
               util::ConfigError);
  EXPECT_THROW((void)Options::builder().queue_capacity(3).build(),
               util::ConfigError);
  EXPECT_THROW((void)Options::builder().queue_capacity(1000).build(),
               util::ConfigError);
  EXPECT_NO_THROW((void)Options::builder().queue_capacity(1).build());
  EXPECT_NO_THROW((void)Options::builder().queue_capacity(4096).build());
}

TEST(OptionsBuilder, ValidatesThreadCount) {
  using Options = exp::ExperimentEngine::Options;
  EXPECT_THROW((void)Options::builder().threads(257).build(),
               util::ConfigError);
  EXPECT_NO_THROW((void)Options::builder().threads(256).build());
}

TEST(OptionsBuilder, RejectsPinningMoreWorkersThanHardwareThreads) {
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0 || hw >= 256) GTEST_SKIP() << "hardware_concurrency unusable";
  using Options = exp::ExperimentEngine::Options;
  EXPECT_THROW((void)Options::builder()
                   .threads(hw + 1)
                   .affinity(exp::AffinityPolicy::kCompact)
                   .build(),
               util::ConfigError);
  // The same thread count without pinning is fine (oversubscription is the
  // scheduler's problem), and pinning within the hardware budget is fine.
  EXPECT_NO_THROW((void)Options::builder().threads(hw + 1).build());
  EXPECT_NO_THROW((void)Options::builder()
                      .threads(hw)
                      .affinity(exp::AffinityPolicy::kSpread)
                      .build());
}

TEST(OptionsBuilder, CarriesEveryFieldThrough) {
  const auto opts = exp::ExperimentEngine::Options::builder()
                        .threads(2)
                        .cache(false)
                        .max_retries(3)
                        .retry_backoff_base_ms(7)
                        .backoff_seed(99)
                        .job_timeout_ms(1234)
                        .queue_capacity(64)
                        .build();
  EXPECT_EQ(opts.threads, 2u);
  EXPECT_FALSE(opts.cache_enabled);
  EXPECT_EQ(opts.max_retries, 3u);
  EXPECT_EQ(opts.retry_backoff_base_ms, 7u);
  EXPECT_EQ(opts.backoff_seed, 99u);
  EXPECT_EQ(opts.job_timeout_ms, 1234u);
  EXPECT_EQ(opts.queue_capacity, 64u);
  EXPECT_EQ(opts.affinity, exp::AffinityPolicy::kNone);
}

TEST(AffinityPolicy, ParsesAndNames) {
  using exp::AffinityPolicy;
  EXPECT_EQ(exp::parse_affinity_policy("none"), AffinityPolicy::kNone);
  EXPECT_EQ(exp::parse_affinity_policy("compact"), AffinityPolicy::kCompact);
  EXPECT_EQ(exp::parse_affinity_policy("spread"), AffinityPolicy::kSpread);
  EXPECT_FALSE(exp::parse_affinity_policy("COMPACT").has_value());
  EXPECT_FALSE(exp::parse_affinity_policy("").has_value());
  EXPECT_FALSE(exp::parse_affinity_policy("numa").has_value());
  for (const auto p : {AffinityPolicy::kNone, AffinityPolicy::kCompact,
                       AffinityPolicy::kSpread}) {
    EXPECT_EQ(exp::parse_affinity_policy(exp::affinity_policy_name(p)), p);
  }
}

TEST(EngineConcurrency, AffinityDegradesGracefully) {
  // On a single-core or cpuset-restricted runner pinning is skipped or
  // refused; either way the engine must stay fully functional and account
  // for every worker exactly once.
  register_null_backend();
  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned threads = hw >= 2 ? 2 : 1;
  exp::ExperimentEngine engine(exp::ExperimentEngine::Options::builder()
                                   .threads(threads)
                                   .affinity(exp::AffinityPolicy::kCompact)
                                   .cache(false)
                                   .build());
  EXPECT_EQ(engine.affinity(), exp::AffinityPolicy::kCompact);
  const unsigned pool = threads > 1 ? threads : 0;
  EXPECT_LE(engine.workers_pinned() + engine.workers_pin_failed(), pool)
      << "each worker reports at most one pin outcome";

  const auto jobs = null_jobs(32, "conc-null");
  const auto results = engine.run_batch(jobs);
  ASSERT_EQ(results.size(), jobs.size());
  for (unsigned i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(results[i]->run.cycles, 1000 + i) << "job " << i;
  }
}

TEST(EngineConcurrency, DeterministicAcrossQueueCapacities) {
  // The ordered-reassembly contract must hold for any ring shape, down to
  // the capacity-1 rendezvous where every push blocks until a worker pops.
  register_null_backend();
  const auto jobs = null_jobs(64, "conc-null");

  exp::ExperimentEngine serial(exp::ExperimentEngine::Options::builder()
                                   .threads(1)
                                   .cache(false)
                                   .build());
  const auto expected = serial.run_batch(jobs);

  for (const std::size_t capacity : {std::size_t{1}, std::size_t{2},
                                     std::size_t{16}, std::size_t{4096}}) {
    exp::ExperimentEngine pooled(exp::ExperimentEngine::Options::builder()
                                     .threads(4)
                                     .queue_capacity(capacity)
                                     .cache(false)
                                     .build());
    EXPECT_EQ(pooled.queue_capacity(), capacity);
    const auto results = pooled.run_batch(jobs);
    ASSERT_EQ(results.size(), expected.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i]->run.cycles, expected[i]->run.cycles)
          << "capacity " << capacity << ", job " << i;
      EXPECT_EQ(results[i]->fingerprint, expected[i]->fingerprint);
    }
    // Every executed group landed on exactly one worker shard.
    const auto counts = pooled.worker_task_counts();
    ASSERT_EQ(counts.size(), 4u);
    EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), std::uint64_t{0}),
              jobs.size())
        << "capacity " << capacity;
  }
}

TEST(EngineConcurrency, ConcurrentSubmittersShareOnePool) {
  // Several threads each submit their own batch into one engine — the
  // contention pattern the ring exists for. Each submitter must get its
  // own slice back in its own order.
  register_null_backend();
  exp::ExperimentEngine engine(exp::ExperimentEngine::Options::builder()
                                   .threads(4)
                                   .queue_capacity(8)
                                   .cache(false)
                                   .build());
  constexpr unsigned kSubmitters = 4;
  constexpr unsigned kJobsEach = 48;
  std::vector<std::vector<exp::SimJob>> slices(kSubmitters);
  for (unsigned s = 0; s < kSubmitters; ++s) {
    auto jobs = null_jobs(kJobsEach, "conc-null");
    for (auto& j : jobs) j.workloads.front().seed += 10000 * (s + 1);
    slices[s] = std::move(jobs);
  }
  std::vector<int> failures(kSubmitters, 0);
  std::vector<std::thread> threads;
  for (unsigned s = 0; s < kSubmitters; ++s) {
    threads.emplace_back([&, s] {
      const auto results = engine.run_batch(slices[s]);
      for (unsigned i = 0; i < kJobsEach; ++i) {
        if (results[i]->run.cycles != slices[s][i].workloads.front().seed) {
          ++failures[s];
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (unsigned s = 0; s < kSubmitters; ++s) {
    EXPECT_EQ(failures[s], 0) << "submitter " << s << " got foreign results";
  }
  EXPECT_EQ(engine.simulations_executed(), kSubmitters * kJobsEach);
}

TEST(EngineConcurrency, JournalRecordsInSubmissionOrderDespiteOutOfOrderRuns) {
  // Workers finish out of order (later submissions sleep less), but the
  // journal is written from the submitting thread during ordered merge —
  // its done-lines must follow submission order exactly. A crash-resumed
  // sweep depends on this: the journal prefix always matches a prefix of
  // the sink file.
  exp::ExperimentEngine::register_backend_executor(
      "conc-sleeper", [](const exp::SimJob& job, const sim::RunGuard*) {
        const auto seed = job.workloads.front().seed;
        // seeds 1000..1000+n: earlier submissions sleep longest.
        const auto ms = seed < 1016 ? (1016 - seed) : 0;
        std::this_thread::sleep_for(std::chrono::milliseconds(ms));
        exp::SimJobResult out;
        out.backend = job.backend;
        out.run.completed = true;
        out.run.cycles = seed;
        return out;
      });

  const std::string path = "/tmp/lpm_engine_conc_journal.log";
  std::remove(path.c_str());
  const auto jobs = null_jobs(16, "conc-sleeper");
  {
    auto journal = exp::SweepJournal::open(path);
    exp::ExperimentEngine engine(exp::ExperimentEngine::Options::builder()
                                     .threads(4)
                                     .cache(false)
                                     .journal(journal.get())
                                     .build());
    const auto results = engine.run_batch(jobs);
    ASSERT_EQ(results.size(), jobs.size());
    EXPECT_EQ(journal->size(), jobs.size());
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::vector<std::string> fingerprints;
  std::string verb, fp, rest;
  while (in >> verb >> fp && std::getline(in, rest)) {
    ASSERT_EQ(verb, "done");
    fingerprints.push_back(fp);
  }
  ASSERT_EQ(fingerprints.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(fingerprints[i], util::fingerprint_hex(jobs[i].fingerprint()))
        << "journal line " << i << " is not the " << i
        << "th submitted job: done-records must follow submission order";
  }
  std::remove(path.c_str());
}

TEST(EngineConcurrency, QueueMetricsAndTaskCountsStayCoherent) {
  register_null_backend();
  exp::ExperimentEngine engine(exp::ExperimentEngine::Options::builder()
                                   .threads(2)
                                   .queue_capacity(4)
                                   .cache(false)
                                   .build());
  const auto jobs = null_jobs(128, "conc-null");
  (void)engine.run_batch(jobs);
  const auto counts = engine.worker_task_counts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), std::uint64_t{0}),
            jobs.size());
  // A serial engine has no pool and therefore no shards.
  exp::ExperimentEngine serial(
      exp::ExperimentEngine::Options::builder().threads(1).build());
  EXPECT_TRUE(serial.worker_task_counts().empty());
  EXPECT_EQ(serial.workers_pinned(), 0u);
  EXPECT_EQ(serial.workers_pin_failed(), 0u);
}

}  // namespace
}  // namespace lpm
