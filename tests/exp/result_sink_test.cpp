// Crash-safe structured output: RFC 4180 CSV encoding round-trips any tag,
// reopening a sink heals a torn final line without duplicating the header,
// and JSON records escape every control character.
#include "exp/result_sink.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/experiment_engine.hpp"
#include "exp/journal.hpp"
#include "trace/spec_like.hpp"

namespace lpm {
namespace {

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  std::filesystem::remove(path);
  return path;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(CsvField, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(exp::csv_field("plain"), "plain");
  EXPECT_EQ(exp::csv_field(""), "");
  EXPECT_EQ(exp::csv_field("has space"), "has space");
  EXPECT_EQ(exp::csv_field("a,b"), "\"a,b\"");
  EXPECT_EQ(exp::csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(exp::csv_field("two\nlines"), "\"two\nlines\"");
  EXPECT_EQ(exp::csv_field("cr\rhere"), "\"cr\rhere\"");
}

TEST(CsvField, RoundTripsThroughSplit) {
  const std::vector<std::string> fields = {
      "plain", "", "a,b", "say \"hi\"", "two\nlines", "mix,\"of\nall\"",
  };
  std::string record;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) record += ',';
    record += exp::csv_field(fields[i]);
  }
  EXPECT_EQ(exp::split_csv_record(record), fields);
}

TEST(ResultSink, CsvTagWithCommaAndQuoteRoundTrips) {
  std::ostringstream csv;
  exp::ResultSink sink(csv, exp::ResultSink::Format::kCsv);

  exp::ExperimentEngine::Options opts;
  opts.threads = 1;
  opts.sink = &sink;
  exp::ExperimentEngine engine(opts);

  auto job = exp::SimJob::solo(
      sim::MachineConfig::single_core_default(),
      trace::spec_profile(trace::SpecBenchmark::kGcc, 10'000, 7),
      /*calibrate=*/false, "tricky, \"tag\"");
  (void)engine.run(job);

  std::istringstream lines(csv.str());
  std::string header, row;
  ASSERT_TRUE(std::getline(lines, header));
  ASSERT_TRUE(std::getline(lines, row));
  const auto fields = exp::split_csv_record(row);
  ASSERT_FALSE(fields.empty());
  EXPECT_EQ(fields[0], "tricky, \"tag\"") << "row: " << row;
}

TEST(ResultSink, ReopenHealsTornLineAndKeepsSingleHeader) {
  const std::string path = temp_path("lpm_sink_torn.csv");

  exp::ExperimentEngine::Options opts;
  opts.threads = 1;
  exp::ExperimentEngine engine(opts);
  const auto job = exp::SimJob::solo(
      sim::MachineConfig::single_core_default(),
      trace::spec_profile(trace::SpecBenchmark::kGcc, 10'000, 7),
      /*calibrate=*/false, "first");

  {
    auto sink = exp::ResultSink::open(path);
    engine.set_sink(sink.get());
    (void)engine.run(job);
    engine.set_sink(nullptr);
  }
  // Simulate a crash mid-append: a partial record with no newline.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "torn-record,0000";
  }
  {
    auto sink = exp::ResultSink::open(path);
    engine.set_sink(sink.get());
    auto again = job;
    again.tag = "second";
    (void)engine.run(again);  // cache hit still writes a record
    engine.set_sink(nullptr);
  }

  const std::string text = slurp(path);
  EXPECT_EQ(text.find("torn-record"), std::string::npos)
      << "torn line must be truncated away:\n"
      << text;
  std::istringstream lines(text);
  std::string line;
  int headers = 0, rows = 0;
  while (std::getline(lines, line)) {
    if (line.rfind("tag,fingerprint,", 0) == 0) {
      ++headers;
    } else if (!line.empty()) {
      ++rows;
    }
  }
  EXPECT_EQ(headers, 1) << "reopen must not duplicate the header:\n" << text;
  EXPECT_EQ(rows, 2) << text;
  std::filesystem::remove(path);
}

TEST(ResultSink, RecordsWallClockDurationInSinkAndJournal) {
  const std::string csv_path = temp_path("lpm_sink_duration.csv");
  const std::string journal_path = temp_path("lpm_sink_duration.journal");

  const auto job = exp::SimJob::solo(
      sim::MachineConfig::single_core_default(),
      trace::spec_profile(trace::SpecBenchmark::kGcc, 10'000, 7),
      /*calibrate=*/false, "timed");

  {
    auto sink = exp::ResultSink::open(csv_path);
    auto journal = exp::SweepJournal::open(journal_path);
    exp::ExperimentEngine::Options opts;
    opts.threads = 1;
    opts.sink = sink.get();
    opts.journal = journal.get();
    exp::ExperimentEngine engine(opts);
    const auto results = engine.run_batch({job});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_GT(results[0]->duration_ms, 0.0);
  }

  // CSV: trailing duration_ms column, non-negative and parseable.
  std::istringstream lines(slurp(csv_path));
  std::string header, row;
  ASSERT_TRUE(std::getline(lines, header));
  ASSERT_TRUE(std::getline(lines, row));
  const auto header_fields = exp::split_csv_record(header);
  const auto row_fields = exp::split_csv_record(row);
  ASSERT_FALSE(header_fields.empty());
  ASSERT_EQ(row_fields.size(), header_fields.size());
  EXPECT_EQ(header_fields.back(), "duration_ms");
  EXPECT_GE(std::stod(row_fields.back()), 0.0);

  // Journal: `done <hex> <duration_ms> <tag>`, same shape.
  std::istringstream jlines(slurp(journal_path));
  std::string verb, hex, ms, tag;
  ASSERT_TRUE(jlines >> verb >> hex >> ms >> tag);
  EXPECT_EQ(verb, "done");
  EXPECT_EQ(hex.size(), 16u);
  EXPECT_GE(std::stod(ms), 0.0);
  EXPECT_EQ(tag, "timed");

  std::filesystem::remove(csv_path);
  std::filesystem::remove(journal_path);
}

TEST(ResultSink, JsonEscapesControlCharacters) {
  std::ostringstream json;
  exp::ResultSink sink(json, exp::ResultSink::Format::kJsonLines);

  exp::ExperimentEngine::Options opts;
  opts.threads = 1;
  opts.sink = &sink;
  exp::ExperimentEngine engine(opts);

  auto job = exp::SimJob::solo(
      sim::MachineConfig::single_core_default(),
      trace::spec_profile(trace::SpecBenchmark::kGcc, 10'000, 7),
      /*calibrate=*/false, std::string("tab\there\nand\rmore\x01"));
  (void)engine.run(job);

  const std::string text = json.str();
  EXPECT_NE(text.find("\\t"), std::string::npos) << text;
  EXPECT_NE(text.find("\\n"), std::string::npos) << text;
  EXPECT_NE(text.find("\\r"), std::string::npos) << text;
  EXPECT_NE(text.find("\\u0001"), std::string::npos) << text;
  // The record itself stays one physical line (JSON lines format).
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 1);
}

}  // namespace
TEST(ResultRecords, RoundTripThroughCsvAndJsonl) {
  exp::ResultRecord r;
  r.tag = "sweep,one \"quoted\"\nmultiline";
  r.fingerprint = "00c0ffee";
  r.backend = "rdh";
  r.from_cache = true;
  r.completed = true;
  r.cycles = 123456;
  r.cores = 4;
  r.instructions = 654321;
  r.ipc = 1.25;
  r.mr1 = 0.03125;
  r.mr2 = 0.5;
  r.camat1 = 2.5;
  r.camat2 = 8.75;
  r.cpi_exe = 0.375;
  r.duration_ms = 42.125;

  for (const char* ext : {".csv", ".jsonl"}) {
    const std::string path = temp_path(std::string("lpm_records") + ext);
    {
      auto sink = exp::ResultSink::open(path);
      sink->write(r);
      sink->write(r);
    }
    const auto loaded = exp::load_result_records(path);
    ASSERT_EQ(loaded.size(), 2u) << ext;
    for (const auto& back : loaded) {
      EXPECT_EQ(back.tag, r.tag) << ext;
      EXPECT_EQ(back.fingerprint, r.fingerprint) << ext;
      EXPECT_EQ(back.backend, r.backend) << ext;
      EXPECT_EQ(back.from_cache, r.from_cache) << ext;
      EXPECT_EQ(back.completed, r.completed) << ext;
      EXPECT_EQ(back.cycles, r.cycles) << ext;
      EXPECT_EQ(back.cores, r.cores) << ext;
      EXPECT_EQ(back.instructions, r.instructions) << ext;
      EXPECT_DOUBLE_EQ(back.ipc, r.ipc) << ext;
      EXPECT_DOUBLE_EQ(back.mr1, r.mr1) << ext;
      EXPECT_DOUBLE_EQ(back.mr2, r.mr2) << ext;
      EXPECT_DOUBLE_EQ(back.camat1, r.camat1) << ext;
      EXPECT_DOUBLE_EQ(back.camat2, r.camat2) << ext;
      EXPECT_DOUBLE_EQ(back.cpi_exe, r.cpi_exe) << ext;
      EXPECT_DOUBLE_EQ(back.duration_ms, r.duration_ms) << ext;
    }
    std::filesystem::remove(path);
  }
}

TEST(ResultRecords, LegacyDurationSecondsConvertsToMs) {
  // Files written before the duration-unit unification carried seconds.
  const std::string csv_path = temp_path("lpm_legacy.csv");
  {
    std::ofstream out(csv_path);
    out << "tag,fingerprint,from_cache,completed,cycles,cores,instructions,"
           "ipc,mr1,mr2,camat1,camat2,cpi_exe,duration_seconds\n";
    out << "old,abcd,0,1,10,1,20,2.0,0.1,0.2,1.5,4.5,0.5,0.125\n";
  }
  auto loaded = exp::load_result_records(csv_path);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_DOUBLE_EQ(loaded[0].duration_ms, 125.0);
  EXPECT_EQ(loaded[0].cycles, 10u);
  std::filesystem::remove(csv_path);

  const std::string jsonl_path = temp_path("lpm_legacy.jsonl");
  {
    std::ofstream out(jsonl_path);
    out << "{\"tag\":\"old\",\"fingerprint\":\"abcd\",\"from_cache\":false,"
           "\"completed\":true,\"cycles\":10,\"cores\":1,\"instructions\":20,"
           "\"ipc\":2.0,\"mr1\":0.1,\"mr2\":0.2,\"camat1\":1.5,"
           "\"camat2\":4.5,\"cpi_exe\":0.5,\"duration_seconds\":0.125}\n";
  }
  loaded = exp::load_result_records(jsonl_path);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_DOUBLE_EQ(loaded[0].duration_ms, 125.0);
  std::filesystem::remove(jsonl_path);
}

TEST(ResultRecords, LegacyFilesWithoutBackendColumnLoadAsCycle) {
  // Sinks written before multi-fidelity backends have no `backend`
  // column/key; cycle simulation was the only fidelity that existed then.
  const std::string csv_path = temp_path("lpm_legacy_backend.csv");
  {
    std::ofstream out(csv_path);
    out << "tag,fingerprint,from_cache,completed,cycles,cores,instructions,"
           "ipc,mr1,mr2,camat1,camat2,cpi_exe,duration_ms\n";
    out << "old,abcd,0,1,10,1,20,2.0,0.1,0.2,1.5,4.5,0.5,0.25\n";
  }
  auto loaded = exp::load_result_records(csv_path);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].backend, "cycle");
  std::filesystem::remove(csv_path);

  const std::string jsonl_path = temp_path("lpm_legacy_backend.jsonl");
  {
    std::ofstream out(jsonl_path);
    out << "{\"tag\":\"old\",\"fingerprint\":\"abcd\",\"from_cache\":false,"
           "\"completed\":true,\"cycles\":10,\"cores\":1,\"instructions\":20,"
           "\"ipc\":2.0,\"mr1\":0.1,\"mr2\":0.2,\"camat1\":1.5,"
           "\"camat2\":4.5,\"cpi_exe\":0.5,\"duration_ms\":0.25}\n";
  }
  loaded = exp::load_result_records(jsonl_path);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].backend, "cycle");
  std::filesystem::remove(jsonl_path);
}

}  // namespace lpm
