// Crash-safe structured output: RFC 4180 CSV encoding round-trips any tag,
// reopening a sink heals a torn final line without duplicating the header,
// and JSON records escape every control character.
#include "exp/result_sink.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/experiment_engine.hpp"
#include "exp/journal.hpp"
#include "trace/spec_like.hpp"

namespace lpm {
namespace {

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  std::filesystem::remove(path);
  return path;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(CsvField, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(exp::csv_field("plain"), "plain");
  EXPECT_EQ(exp::csv_field(""), "");
  EXPECT_EQ(exp::csv_field("has space"), "has space");
  EXPECT_EQ(exp::csv_field("a,b"), "\"a,b\"");
  EXPECT_EQ(exp::csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(exp::csv_field("two\nlines"), "\"two\nlines\"");
  EXPECT_EQ(exp::csv_field("cr\rhere"), "\"cr\rhere\"");
}

TEST(CsvField, RoundTripsThroughSplit) {
  const std::vector<std::string> fields = {
      "plain", "", "a,b", "say \"hi\"", "two\nlines", "mix,\"of\nall\"",
  };
  std::string record;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) record += ',';
    record += exp::csv_field(fields[i]);
  }
  EXPECT_EQ(exp::split_csv_record(record), fields);
}

TEST(ResultSink, CsvTagWithCommaAndQuoteRoundTrips) {
  std::ostringstream csv;
  exp::ResultSink sink(csv, exp::ResultSink::Format::kCsv);

  exp::ExperimentEngine::Options opts;
  opts.threads = 1;
  opts.sink = &sink;
  exp::ExperimentEngine engine(opts);

  auto job = exp::SimJob::solo(
      sim::MachineConfig::single_core_default(),
      trace::spec_profile(trace::SpecBenchmark::kGcc, 10'000, 7),
      /*calibrate=*/false, "tricky, \"tag\"");
  (void)engine.run(job);

  std::istringstream lines(csv.str());
  std::string header, row;
  ASSERT_TRUE(std::getline(lines, header));
  ASSERT_TRUE(std::getline(lines, row));
  const auto fields = exp::split_csv_record(row);
  ASSERT_FALSE(fields.empty());
  EXPECT_EQ(fields[0], "tricky, \"tag\"") << "row: " << row;
}

TEST(ResultSink, ReopenHealsTornLineAndKeepsSingleHeader) {
  const std::string path = temp_path("lpm_sink_torn.csv");

  exp::ExperimentEngine::Options opts;
  opts.threads = 1;
  exp::ExperimentEngine engine(opts);
  const auto job = exp::SimJob::solo(
      sim::MachineConfig::single_core_default(),
      trace::spec_profile(trace::SpecBenchmark::kGcc, 10'000, 7),
      /*calibrate=*/false, "first");

  {
    auto sink = exp::ResultSink::open(path);
    engine.set_sink(sink.get());
    (void)engine.run(job);
    engine.set_sink(nullptr);
  }
  // Simulate a crash mid-append: a partial record with no newline.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "torn-record,0000";
  }
  {
    auto sink = exp::ResultSink::open(path);
    engine.set_sink(sink.get());
    auto again = job;
    again.tag = "second";
    (void)engine.run(again);  // cache hit still writes a record
    engine.set_sink(nullptr);
  }

  const std::string text = slurp(path);
  EXPECT_EQ(text.find("torn-record"), std::string::npos)
      << "torn line must be truncated away:\n"
      << text;
  std::istringstream lines(text);
  std::string line;
  int headers = 0, rows = 0;
  while (std::getline(lines, line)) {
    if (line.rfind("tag,fingerprint,", 0) == 0) {
      ++headers;
    } else if (!line.empty()) {
      ++rows;
    }
  }
  EXPECT_EQ(headers, 1) << "reopen must not duplicate the header:\n" << text;
  EXPECT_EQ(rows, 2) << text;
  std::filesystem::remove(path);
}

TEST(ResultSink, RecordsWallClockDurationInSinkAndJournal) {
  const std::string csv_path = temp_path("lpm_sink_duration.csv");
  const std::string journal_path = temp_path("lpm_sink_duration.journal");

  const auto job = exp::SimJob::solo(
      sim::MachineConfig::single_core_default(),
      trace::spec_profile(trace::SpecBenchmark::kGcc, 10'000, 7),
      /*calibrate=*/false, "timed");

  {
    auto sink = exp::ResultSink::open(csv_path);
    auto journal = exp::SweepJournal::open(journal_path);
    exp::ExperimentEngine::Options opts;
    opts.threads = 1;
    opts.sink = sink.get();
    opts.journal = journal.get();
    exp::ExperimentEngine engine(opts);
    const auto results = engine.run_batch({job});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_GT(results[0]->duration_seconds, 0.0);
  }

  // CSV: trailing duration_ms column, non-negative and parseable.
  std::istringstream lines(slurp(csv_path));
  std::string header, row;
  ASSERT_TRUE(std::getline(lines, header));
  ASSERT_TRUE(std::getline(lines, row));
  const auto header_fields = exp::split_csv_record(header);
  const auto row_fields = exp::split_csv_record(row);
  ASSERT_FALSE(header_fields.empty());
  ASSERT_EQ(row_fields.size(), header_fields.size());
  EXPECT_EQ(header_fields.back(), "duration_ms");
  EXPECT_GE(std::stod(row_fields.back()), 0.0);

  // Journal: `done <hex> <duration_ms> <tag>`, same shape.
  std::istringstream jlines(slurp(journal_path));
  std::string verb, hex, ms, tag;
  ASSERT_TRUE(jlines >> verb >> hex >> ms >> tag);
  EXPECT_EQ(verb, "done");
  EXPECT_EQ(hex.size(), 16u);
  EXPECT_GE(std::stod(ms), 0.0);
  EXPECT_EQ(tag, "timed");

  std::filesystem::remove(csv_path);
  std::filesystem::remove(journal_path);
}

TEST(ResultSink, JsonEscapesControlCharacters) {
  std::ostringstream json;
  exp::ResultSink sink(json, exp::ResultSink::Format::kJsonLines);

  exp::ExperimentEngine::Options opts;
  opts.threads = 1;
  opts.sink = &sink;
  exp::ExperimentEngine engine(opts);

  auto job = exp::SimJob::solo(
      sim::MachineConfig::single_core_default(),
      trace::spec_profile(trace::SpecBenchmark::kGcc, 10'000, 7),
      /*calibrate=*/false, std::string("tab\there\nand\rmore\x01"));
  (void)engine.run(job);

  const std::string text = json.str();
  EXPECT_NE(text.find("\\t"), std::string::npos) << text;
  EXPECT_NE(text.find("\\n"), std::string::npos) << text;
  EXPECT_NE(text.find("\\r"), std::string::npos) << text;
  EXPECT_NE(text.find("\\u0001"), std::string::npos) << text;
  // The record itself stays one physical line (JSON lines format).
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 1);
}

}  // namespace
}  // namespace lpm
