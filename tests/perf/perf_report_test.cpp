// BENCH_simulator.json schema and the perf-regression gate. The suite runs
// with a tiny workload — wall-clock values are machine noise, but the
// schema (required keys, non-negative values) and the gate arithmetic are
// exact.
#include <gtest/gtest.h>

#include "perf_lib.hpp"
#include "util/error.hpp"
#include "util/flat_json.hpp"

namespace lpm::perf {
namespace {

PerfOptions tiny_options() {
  PerfOptions opts;
  opts.length = 2000;
  opts.sim_configs = 1;
  opts.engine_jobs = 2;
  opts.engine_submitters = 1;
  opts.engine_threads = 1;
  opts.analytic_configs = 4;
  opts.trace_ops = 5000;
  return opts;
}

TEST(PerfReport, EmitsRequiredSchema) {
  const PerfReport report = run_perf_suite(tiny_options());
  const std::string json = to_json(report);
  const util::FlatJson parsed = util::FlatJson::parse(json);

  EXPECT_EQ(parsed.get_string("bench"), "lpm_convergence");
  for (const char* key :
       {"cycles", "instructions", "jobs", "analytic_configs",
        "wall_seconds_simulate", "wall_seconds_engine", "wall_seconds_analytic",
        "sim_cycles_per_sec", "instructions_per_sec", "engine_jobs_per_sec",
        "analytic_configs_per_sec", "trace_ops", "wall_seconds_trace_cold",
        "wall_seconds_trace_warm", "trace_cold_ops_per_sec",
        "trace_warm_ops_per_sec"}) {
    const auto value = parsed.get_number(key);
    ASSERT_TRUE(value.has_value()) << "missing key " << key;
    EXPECT_GE(*value, 0.0) << key;
  }
  // The measured work is real: a run simulates cycles and commits
  // instructions, and the engine executed every job.
  EXPECT_GT(report.cycles, 0u);
  EXPECT_GT(report.instructions, 0u);
  EXPECT_EQ(report.jobs, 2u);
  EXPECT_EQ(report.analytic_configs, 4u);
  EXPECT_GT(report.sim_cycles_per_sec, 0.0);
  EXPECT_GT(report.instructions_per_sec, 0.0);
  EXPECT_GT(report.engine_jobs_per_sec, 0.0);
  EXPECT_GT(report.analytic_configs_per_sec, 0.0);
  // The ingestion phase drained the recorded trace, both passes.
  EXPECT_EQ(report.trace_ops, 5000u);
  EXPECT_GT(report.trace_cold_ops_per_sec, 0.0);
  EXPECT_GT(report.trace_warm_ops_per_sec, 0.0);
}

TEST(PerfReport, JsonRoundTrips) {
  PerfReport r;
  r.bench = "lpm_convergence";
  r.cycles = 123;
  r.instructions = 456;
  r.jobs = 7;
  r.wall_seconds_simulate = 1.5;
  r.wall_seconds_engine = 2.5;
  r.sim_cycles_per_sec = 82.0;
  r.instructions_per_sec = 304.0;
  r.engine_jobs_per_sec = 2.8;
  r.analytic_configs = 64;
  r.wall_seconds_analytic = 0.125;
  r.analytic_configs_per_sec = 512.0;
  r.trace_ops = 4096;
  r.wall_seconds_trace_cold = 0.5;
  r.wall_seconds_trace_warm = 0.25;
  r.trace_cold_ops_per_sec = 8192.0;
  r.trace_warm_ops_per_sec = 16384.0;

  const PerfReport back = parse_report(to_json(r));
  EXPECT_EQ(back.bench, r.bench);
  EXPECT_EQ(back.cycles, r.cycles);
  EXPECT_EQ(back.instructions, r.instructions);
  EXPECT_EQ(back.jobs, r.jobs);
  EXPECT_EQ(back.analytic_configs, r.analytic_configs);
  EXPECT_DOUBLE_EQ(back.sim_cycles_per_sec, r.sim_cycles_per_sec);
  EXPECT_DOUBLE_EQ(back.instructions_per_sec, r.instructions_per_sec);
  EXPECT_DOUBLE_EQ(back.engine_jobs_per_sec, r.engine_jobs_per_sec);
  EXPECT_DOUBLE_EQ(back.analytic_configs_per_sec, r.analytic_configs_per_sec);
  EXPECT_EQ(back.trace_ops, r.trace_ops);
  EXPECT_DOUBLE_EQ(back.trace_cold_ops_per_sec, r.trace_cold_ops_per_sec);
  EXPECT_DOUBLE_EQ(back.trace_warm_ops_per_sec, r.trace_warm_ops_per_sec);
}

TEST(PerfReport, LegacyReportsWithoutAnalyticKeysStillParse) {
  // Baselines written before the analytic-screening phase carry no
  // analytic_* keys; they must load with 0 ("not measured"), and the gate
  // must then skip the analytic metric entirely.
  const std::string legacy =
      "{\"bench\":\"lpm_convergence\",\"cycles\":10,\"instructions\":20,"
      "\"jobs\":2,\"wall_seconds_simulate\":1.0,\"wall_seconds_engine\":1.0,"
      "\"sim_cycles_per_sec\":10.0,\"instructions_per_sec\":20.0,"
      "\"engine_jobs_per_sec\":2.0}";
  const PerfReport baseline = parse_report(legacy);
  EXPECT_EQ(baseline.analytic_configs, 0u);
  EXPECT_DOUBLE_EQ(baseline.analytic_configs_per_sec, 0.0);
  EXPECT_EQ(baseline.trace_ops, 0u);
  EXPECT_DOUBLE_EQ(baseline.trace_cold_ops_per_sec, 0.0);
  EXPECT_DOUBLE_EQ(baseline.trace_warm_ops_per_sec, 0.0);

  PerfReport current = baseline;
  current.analytic_configs_per_sec = 0.0;  // even "no analytic phase" passes
  current.trace_cold_ops_per_sec = 0.0;    // ...and "no ingestion phase"
  current.trace_warm_ops_per_sec = 0.0;
  EXPECT_TRUE(check_against_baseline(current, baseline, 0.30).ok);
}

TEST(PerfReport, ParseRejectsMissingKeys) {
  EXPECT_THROW(parse_report("{\"bench\":\"x\"}"), util::LpmError);
  EXPECT_THROW(parse_report("not json"), util::LpmError);
}

TEST(PerfBaseline, GateFailsOnlyBelowTolerance) {
  PerfReport baseline;
  baseline.sim_cycles_per_sec = 1000.0;
  baseline.instructions_per_sec = 2000.0;
  baseline.engine_jobs_per_sec = 10.0;
  baseline.analytic_configs_per_sec = 500.0;
  baseline.trace_cold_ops_per_sec = 100.0;
  baseline.trace_warm_ops_per_sec = 200.0;

  PerfReport current = baseline;
  EXPECT_TRUE(check_against_baseline(current, baseline, 0.30).ok);

  // The ingestion metrics are gated like the others once the baseline has
  // them.
  current.trace_cold_ops_per_sec = 50.0;  // 50% of baseline
  current.trace_warm_ops_per_sec = 60.0;  // 30% of baseline
  {
    const BaselineCheck failed =
        check_against_baseline(current, baseline, 0.30);
    EXPECT_FALSE(failed.ok);
    ASSERT_EQ(failed.failures.size(), 2u);
    EXPECT_NE(failed.failures[0].find("trace_cold_ops_per_sec"),
              std::string::npos);
    EXPECT_NE(failed.failures[1].find("trace_warm_ops_per_sec"),
              std::string::npos);
  }
  current.trace_cold_ops_per_sec = baseline.trace_cold_ops_per_sec;
  current.trace_warm_ops_per_sec = baseline.trace_warm_ops_per_sec;

  // The analytic metric is gated like the others once the baseline has it.
  current.analytic_configs_per_sec = 340.0;  // 68% of baseline
  {
    const BaselineCheck failed =
        check_against_baseline(current, baseline, 0.30);
    EXPECT_FALSE(failed.ok);
    ASSERT_EQ(failed.failures.size(), 1u);
    EXPECT_NE(failed.failures[0].find("analytic_configs_per_sec"),
              std::string::npos);
  }
  current.analytic_configs_per_sec = baseline.analytic_configs_per_sec;

  // 71% of baseline: inside a 30% tolerance.
  current.sim_cycles_per_sec = 710.0;
  EXPECT_TRUE(check_against_baseline(current, baseline, 0.30).ok);

  // 69% of baseline: regression.
  current.sim_cycles_per_sec = 690.0;
  const BaselineCheck failed = check_against_baseline(current, baseline, 0.30);
  EXPECT_FALSE(failed.ok);
  ASSERT_EQ(failed.failures.size(), 1u);
  EXPECT_NE(failed.failures[0].find("sim_cycles_per_sec"), std::string::npos);

  // Faster than baseline never fails.
  current.sim_cycles_per_sec = 5000.0;
  EXPECT_TRUE(check_against_baseline(current, baseline, 0.30).ok);
}

TEST(PerfBaseline, CommittedBaselineParses) {
  // The committed baseline must stay loadable — CI depends on it.
  const PerfReport baseline = load_report(LPM_PERF_BASELINE_PATH);
  EXPECT_EQ(baseline.bench, "lpm_convergence");
  EXPECT_GT(baseline.sim_cycles_per_sec, 0.0);
  EXPECT_GT(baseline.instructions_per_sec, 0.0);
  EXPECT_GT(baseline.engine_jobs_per_sec, 0.0);
  // The committed baseline carries the analytic and ingestion gates.
  EXPECT_GT(baseline.analytic_configs_per_sec, 0.0);
  EXPECT_GT(baseline.trace_cold_ops_per_sec, 0.0);
  EXPECT_GT(baseline.trace_warm_ops_per_sec, 0.0);
}

}  // namespace
}  // namespace lpm::perf
