// Pins the analytic backends' fidelity envelope. The harness sweeps the
// full 16-profile x 3-L1-size x {rdh, fa} grid at the default trace length
// and the bounds below pin the measured error distribution with headroom:
// a retune of the analytic heuristics that degrades screening fidelity
// fails here instead of drifting silently. The exact aggregate constants
// are the ones published in EXPERIMENTS.md §"Multi-fidelity exploration" —
// this test regenerates them, so the documented table cannot rot.
#include "check/fidelity.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "exp/experiment_engine.hpp"

namespace lpm::check {
namespace {

TEST(RelativeError, FloorsNearZeroDenominators) {
  EXPECT_DOUBLE_EQ(relative_error(2.0, 1.0, 0.01), 1.0);
  EXPECT_DOUBLE_EQ(relative_error(1.0, 2.0, 0.01), 0.5);
  // A tiny measured value is floored: a 1e-4-vs-2e-4 MR disagreement is
  // noise, not a 100% error.
  EXPECT_DOUBLE_EQ(relative_error(2e-4, 1e-4, kMrErrorFloor), 0.01);
  EXPECT_DOUBLE_EQ(relative_error(0.0, 0.0, kMrErrorFloor), 0.0);
}

class FidelityHarnessTest : public ::testing::Test {
 protected:
  // One sweep shared by every assertion: the harness is the expensive part
  // (48 cycle simulations + 96 analytic evaluations).
  static const FidelityReport& report() {
    static const FidelityReport r = [] {
      exp::ExperimentEngine engine(
          exp::ExperimentEngine::Options::builder().threads(4).build());
      FidelityConfig cfg;
      cfg.engine = &engine;
      return run_fidelity_harness(cfg);
    }();
    return r;
  }
};

TEST_F(FidelityHarnessTest, CoversTheFullGrid) {
  const auto& r = report();
  // 16 profiles x 3 L1 sizes x 2 analytic backends.
  ASSERT_EQ(r.points.size(), 96u);
  ASSERT_EQ(r.profiles.size(), 32u);
  for (const auto& p : r.points) {
    EXPECT_TRUE(p.backend == "rdh" || p.backend == "fa") << p.benchmark;
    EXPECT_GT(p.mr1_cycle, 0.0) << p.benchmark;
    EXPECT_GT(p.camat1_cycle, 0.0) << p.benchmark;
    EXPECT_TRUE(std::isfinite(p.mr1_rel_error)) << p.benchmark;
    EXPECT_TRUE(std::isfinite(p.camat1_rel_error)) << p.benchmark;
  }
}

TEST_F(FidelityHarnessTest, ErrorBoundsHold) {
  const auto& r = report();
  // Measured at the defaults (trace_length 20000, seed 1): worst MR1 error
  // 1.49, p50 0.14; worst C-AMAT1 error 0.39, p50 0.17. Pinned with
  // headroom so trace-generator tweaks don't flap the suite, but tight
  // enough that a real fidelity regression (a worst-case doubling, a
  // median drift past ~2x) fails.
  EXPECT_LT(r.worst_mr1_rel_error, 2.0);
  EXPECT_LT(r.p90_mr1_rel_error, 1.3);
  EXPECT_LT(r.p50_mr1_rel_error, 0.30);
  EXPECT_LT(r.worst_camat1_rel_error, 0.60);
  EXPECT_LT(r.p90_camat1_rel_error, 0.55);
  EXPECT_LT(r.p50_camat1_rel_error, 0.30);
}

TEST_F(FidelityHarnessTest, MatchesThePublishedAggregates) {
  const auto& r = report();
  // The EXPERIMENTS.md error table is generated from exactly this run
  // (deterministic in every input), so the aggregates must reproduce to
  // rounding. Update both together when the model is retuned.
  EXPECT_NEAR(r.p50_mr1_rel_error, 0.1421, 5e-4);
  EXPECT_NEAR(r.p90_mr1_rel_error, 0.9692, 5e-4);
  EXPECT_NEAR(r.worst_mr1_rel_error, 1.4867, 5e-4);
  EXPECT_NEAR(r.p50_camat1_rel_error, 0.1718, 5e-4);
  EXPECT_NEAR(r.p90_camat1_rel_error, 0.3785, 5e-4);
  EXPECT_NEAR(r.worst_camat1_rel_error, 0.3912, 5e-4);
}

TEST_F(FidelityHarnessTest, ReportSerializesBothWays) {
  const auto& r = report();
  const std::string json = r.to_json();
  EXPECT_NE(json.find("\"worst_mr1_rel_error\""), std::string::npos);
  EXPECT_NE(json.find("\"points\""), std::string::npos);
  EXPECT_NE(json.find("403.gcc"), std::string::npos);

  const std::string table = r.table();
  EXPECT_NE(table.find("403.gcc"), std::string::npos);
  EXPECT_NE(table.find("rdh"), std::string::npos);
  EXPECT_NE(table.find("fa"), std::string::npos);
}

}  // namespace
}  // namespace lpm::check
