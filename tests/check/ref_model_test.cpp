// Differential equality of the reference model (check::RefSystem) and the
// optimized simulator (sim::System) on curated machines and workloads: the
// two implementations must produce bit-identical SystemResults. Where the
// fuzzer sweeps random machines, these cases pin the named configurations a
// reviewer will reach for first.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "check/diff.hpp"
#include "check/ref_system.hpp"
#include "check/replay.hpp"
#include "sim/machine_config.hpp"
#include "trace/spec_like.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace_source.hpp"

namespace lpm::check {
namespace {

std::vector<trace::MicroOp> spec_ops(trace::SpecBenchmark b, std::uint64_t len,
                                     std::uint64_t seed) {
  trace::SyntheticTrace source(trace::spec_profile(b, len, seed));
  return trace::materialize(source, len);
}

ReplayCase make_case(sim::MachineConfig machine,
                     std::vector<std::vector<trace::MicroOp>> ops) {
  ReplayCase c;
  c.machine = std::move(machine);
  c.ops = std::move(ops);
  return c;
}

void expect_identical(const ReplayCase& c) {
  const sim::SystemResult opt = run_optimized(c);
  const sim::SystemResult ref = run_reference(c);
  EXPECT_EQ(opt, ref) << describe_divergence(opt, ref);
}

TEST(RefModel, SingleCoreDefaultMachineMatches) {
  auto machine = sim::MachineConfig::single_core_default();
  expect_identical(make_case(
      machine, {spec_ops(trace::SpecBenchmark::kMcf, 5000, 11)}));
}

TEST(RefModel, ComputeBoundWorkloadMatches) {
  auto machine = sim::MachineConfig::single_core_default();
  expect_identical(make_case(
      machine, {spec_ops(trace::SpecBenchmark::kGamess, 5000, 12)}));
}

TEST(RefModel, ThreeLevelMachineMatches) {
  auto machine = sim::MachineConfig::three_level_default();
  expect_identical(make_case(
      machine, {spec_ops(trace::SpecBenchmark::kMilc, 5000, 13)}));
}

TEST(RefModel, MultiCoreSharedL2Matches) {
  auto machine = sim::MachineConfig::single_core_default();
  machine.num_cores = 4;
  expect_identical(make_case(
      machine, {spec_ops(trace::SpecBenchmark::kMcf, 3000, 21),
                spec_ops(trace::SpecBenchmark::kBwaves, 3000, 22),
                spec_ops(trace::SpecBenchmark::kGcc, 3000, 23),
                spec_ops(trace::SpecBenchmark::kLibquantum, 3000, 24)}));
}

TEST(RefModel, HeterogeneousL1SizesMatch) {
  auto machine = sim::MachineConfig::single_core_default();
  machine.num_cores = 2;
  machine.l1_size_per_core = {4 * 1024, 64 * 1024};
  expect_identical(make_case(
      machine, {spec_ops(trace::SpecBenchmark::kMcf, 3000, 31),
                spec_ops(trace::SpecBenchmark::kMcf, 3000, 32)}));
}

TEST(RefModel, PrefetcherAndRandomReplacementMatch) {
  // Stresses the stochastic and adaptive paths: random victims must come
  // from the same seeded stream, prefetch accuracy windows must adapt at
  // the same instants.
  auto machine = sim::MachineConfig::single_core_default();
  machine.l1.replacement = mem::ReplacementPolicy::kRandom;
  machine.l1.prefetch_degree = 4;
  machine.l1.prefetch_accuracy_window = 32;
  machine.l2.replacement = mem::ReplacementPolicy::kSrrip;
  expect_identical(make_case(
      machine, {spec_ops(trace::SpecBenchmark::kBwaves, 5000, 41)}));
}

TEST(RefModel, TinyCacheThrashingMatches) {
  // A 4-set direct-mapped L1 with a 1-entry write buffer maximizes the
  // eviction / deferred-fill / MSHR-wait traffic where the optimized
  // fast paths are most aggressive.
  auto machine = sim::MachineConfig::single_core_default();
  machine.l1.size_bytes = 256;
  machine.l1.associativity = 1;
  machine.l1.writeback_capacity = 1;
  machine.l1.mshr_entries = 2;
  machine.l1.mshr_targets = 2;
  expect_identical(make_case(
      machine, {spec_ops(trace::SpecBenchmark::kMcf, 5000, 51)}));
}

TEST(RefModel, StepByStepStateAgrees) {
  // Lockstep stepping: the systems must agree at every cycle, not only at
  // the end (catches transient divergence that happens to cancel out).
  auto machine = sim::MachineConfig::single_core_default();
  const auto ops = spec_ops(trace::SpecBenchmark::kGcc, 1000, 61);
  const ReplayCase c = make_case(machine, {ops});

  sim::System opt(c.machine, c.make_traces());
  RefSystem ref(c.machine, c.make_traces());
  for (int i = 0; i < 200; ++i) {
    const bool opt_stepped = opt.step();
    const bool ref_stepped = ref.step();
    ASSERT_EQ(opt_stepped, ref_stepped) << "at step " << i;
    if (!opt_stepped) break;
  }
  EXPECT_EQ(opt.now(), ref.now());
}

}  // namespace
}  // namespace lpm::check
