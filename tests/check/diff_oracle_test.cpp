// The differential oracle end to end: the acceptance sweep (>= 200 seeded
// fuzz cases with zero divergences and zero property violations), and the
// negative proof — an injected counter bug must be caught, delta-debugged to
// a tiny repro, and survive a replay-file round trip.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "check/diff.hpp"
#include "check/fuzz.hpp"
#include "check/replay.hpp"
#include "trace/lpm2.hpp"
#include "trace/mmap_trace.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace_source.hpp"

namespace lpm::check {
namespace {

TEST(DiffOracle, TwoHundredSeededCasesAgree) {
  // ISSUE acceptance: zero divergences over >= 200 seeded fuzz cases, with
  // the model properties checked on every completed run. Deterministic: the
  // default seed pins the exact machines and traces.
  FuzzConfig cfg;
  cfg.cases = 200;
  cfg.check_properties = true;
  cfg.minimize = false;  // a failure here should fail fast, not minimize
  Fuzzer fuzzer(cfg);

  const FuzzSummary summary = fuzzer.run();
  EXPECT_EQ(summary.cases_run, 200u);
  EXPECT_EQ(summary.divergences, 0u);
  EXPECT_EQ(summary.property_failures, 0u);
  EXPECT_EQ(summary.roundtrip_failures, 0u);
  ASSERT_TRUE(summary.ok())
      << "first failure: seed=" << summary.failures.front().case_seed << " ["
      << summary.failures.front().kind << "] "
      << summary.failures.front().detail;
}

TEST(DiffOracle, GenerateIsDeterministic) {
  Fuzzer a;
  Fuzzer b;
  const ReplayCase ca = a.generate(42);
  const ReplayCase cb = b.generate(42);
  EXPECT_EQ(replay_to_json(ca), replay_to_json(cb));
  EXPECT_EQ(ca.ops, cb.ops);
  // And a different seed really produces a different case.
  const ReplayCase cc = a.generate(43);
  EXPECT_NE(replay_to_json(ca), replay_to_json(cc));
}

TEST(DiffOracle, InjectedCounterBugIsCaughtAndMinimized) {
  // Seed a bug via the fault-injection hook: drop one L1 miss from the
  // optimized result whenever there is one to drop. The oracle must flag
  // the divergence and ddmin must shrink the trace to (near) the smallest
  // op list that still misses in L1 — a handful of ops, not 1500.
  Fuzzer fuzzer;
  const ReplayCase full = fuzzer.generate(7);
  ASSERT_GE(full.ops[0].size(), 100u);

  DiffOptions opts;
  opts.inject_optimized = [](sim::SystemResult& r) {
    if (!r.l1_cache.empty() && r.l1_cache[0].misses > 0) --r.l1_cache[0].misses;
  };
  opts.minimize = true;
  opts.max_trials = 600;
  DiffRunner runner(opts);

  const DiffReport report = runner.run(full);
  ASSERT_TRUE(report.diverged);
  EXPECT_NE(report.divergence.find("misses"), std::string::npos)
      << report.divergence;
  EXPECT_GT(report.trials, 0u);

  // Any trace with a single memory op misses once in a cold L1, so the
  // minimal repro under this injection is tiny.
  std::size_t minimized_ops = 0;
  for (const auto& core_ops : report.minimized.ops) {
    minimized_ops += core_ops.size();
  }
  ASSERT_GT(minimized_ops, 0u);
  EXPECT_LE(minimized_ops, 8u) << "ddmin left " << minimized_ops << " ops";

  // The minimized case still reproduces under the same injection...
  std::string why;
  EXPECT_TRUE(runner.diverges(report.minimized, &why));
  EXPECT_FALSE(why.empty());

  // ...and still reproduces after a save/load round trip, which is the
  // whole point of writing repro artifacts.
  const std::string path = "injected_repro_test.json";
  save_replay(report.minimized, path);
  const ReplayCase reloaded = load_replay(path);
  EXPECT_TRUE(runner.diverges(reloaded));
  std::remove(path.c_str());

  // Without the injection the very same case is clean: the divergence was
  // the seeded bug, not a real optimized-vs-reference disagreement.
  DiffRunner honest;
  EXPECT_FALSE(honest.diverges(full));
}

TEST(DiffOracle, MinimizationBudgetIsRespected) {
  Fuzzer fuzzer;
  const ReplayCase full = fuzzer.generate(11);

  DiffOptions opts;
  opts.inject_optimized = [](sim::SystemResult& r) {
    if (!r.l1_cache.empty() && r.l1_cache[0].misses > 0) --r.l1_cache[0].misses;
  };
  opts.minimize = true;
  opts.max_trials = 10;  // deliberately starved
  DiffRunner runner(opts);

  const DiffReport report = runner.run(full);
  ASSERT_TRUE(report.diverged);
  EXPECT_LE(report.trials, 10u + 2u);  // budget plus the initial comparison
  // Starved or not, whatever is returned must still reproduce.
  EXPECT_TRUE(runner.diverges(report.minimized));
}

TEST(DiffOracle, DescribeDivergenceNamesTheFirstDifferingCounter) {
  Fuzzer fuzzer;
  const ReplayCase c = fuzzer.generate(3);
  sim::SystemResult opt = run_optimized(c);
  sim::SystemResult ref = run_reference(c);
  ASSERT_TRUE(describe_divergence(opt, ref).empty());

  opt.cycles += 1;
  const std::string why = describe_divergence(opt, ref);
  EXPECT_NE(why.find("cycles"), std::string::npos) << why;
}

TEST(DiffOracle, RecordedTraceFeedsBothSimulatorsIdentically) {
  // Round-trip a fuzz case's op lists through the LPM2 on-disk format and
  // feed the replayed case to both simulators: the optimized and reference
  // results must match the live case's bit for bit, and the honest diff of
  // the replayed case must be clean. This is the oracle-level proof that
  // record-once/replay-many changes nothing about what gets simulated.
  Fuzzer fuzzer;
  const ReplayCase live = fuzzer.generate(19);
  ReplayCase replayed = live;  // same machine; ops come back from disk

  for (std::size_t core = 0; core < live.ops.size(); ++core) {
    const std::string path = testing::TempDir() + "/lpm_diff_recorded_" +
                             std::to_string(core) + ".lpm2";
    trace::VectorTrace source("recorded", live.ops[core]);
    trace::record_trace_v2(source, path);
    trace::MmapTrace replay(path, "recorded",
                            trace::MmapTraceOptions{.pipeline = core == 0,
                                                    .chunk_ops = 128});
    replayed.ops[core] = trace::materialize(replay, live.ops[core].size() + 1);
    std::remove(path.c_str());
  }
  ASSERT_EQ(replayed.ops, live.ops);

  const sim::SystemResult opt_live = run_optimized(live);
  const sim::SystemResult opt_replayed = run_optimized(replayed);
  EXPECT_TRUE(describe_divergence(opt_live, opt_replayed).empty());
  const sim::SystemResult ref_live = run_reference(live);
  const sim::SystemResult ref_replayed = run_reference(replayed);
  EXPECT_TRUE(describe_divergence(ref_live, ref_replayed).empty());

  DiffRunner honest;
  EXPECT_FALSE(honest.diverges(replayed));
}

}  // namespace
}  // namespace lpm::check
