// The fuzzer's property checkers themselves: on a real completed run both
// check_metric_identities and check_model_properties must pass, and each
// class of violation they claim to detect must actually be detected when a
// counter or measurement is tampered with.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>

#include "check/fuzz.hpp"
#include "check/replay.hpp"
#include "core/lpm_model.hpp"
#include "sim/machine_config.hpp"
#include "sim/system.hpp"
#include "trace/spec_like.hpp"
#include "trace/synthetic.hpp"

namespace lpm::check {
namespace {

struct CuratedRun {
  sim::SystemResult result;
  core::AppMeasurement m;
};

CuratedRun run_curated(trace::SpecBenchmark b) {
  const auto profile = trace::spec_profile(b, 8000, 17);
  const auto machine = sim::MachineConfig::single_core_default();

  trace::SyntheticTrace calib_trace(profile);
  const sim::CpiExeResult calib = sim::measure_cpi_exe(machine, calib_trace);

  std::vector<trace::TraceSourcePtr> traces;
  traces.push_back(std::make_unique<trace::SyntheticTrace>(profile));
  sim::System sys(machine, std::move(traces));
  CuratedRun out;
  out.result = sys.run();
  out.m = core::AppMeasurement::from_run(out.result, calib, 0,
                                         trace::spec_name(b));
  return out;
}

TEST(Properties, MetricIdentitiesHoldOnRealRuns) {
  for (const auto b : {trace::SpecBenchmark::kMcf, trace::SpecBenchmark::kNamd,
                       trace::SpecBenchmark::kLibquantum}) {
    const CuratedRun run = run_curated(b);
    ASSERT_TRUE(run.result.completed);
    EXPECT_EQ(check_metric_identities(run.result), "")
        << "for " << trace::spec_name(b);
  }
}

TEST(Properties, ModelPropertiesHoldOnRealRuns) {
  for (const auto b : {trace::SpecBenchmark::kMcf, trace::SpecBenchmark::kBwaves,
                       trace::SpecBenchmark::kGamess}) {
    const CuratedRun run = run_curated(b);
    EXPECT_EQ(check_model_properties(run.m), "")
        << "for " << trace::spec_name(b);
  }
}

TEST(Properties, TamperedConservationCounterIsDetected) {
  CuratedRun run = run_curated(trace::SpecBenchmark::kMcf);
  ASSERT_EQ(check_metric_identities(run.result), "");
  run.result.l1[0].hits += 1;  // breaks hits + misses == accesses
  const std::string v = check_metric_identities(run.result);
  EXPECT_NE(v.find("hits + misses != accesses"), std::string::npos) << v;
}

TEST(Properties, TamperedActivePartitionIsDetected) {
  CuratedRun run = run_curated(trace::SpecBenchmark::kMcf);
  run.result.l1[0].active_cycles += 1;
  const std::string v = check_metric_identities(run.result);
  EXPECT_NE(v.find("active_cycles"), std::string::npos) << v;
}

TEST(Properties, TamperedPerCoreAttributionIsDetected) {
  CuratedRun run = run_curated(trace::SpecBenchmark::kMcf);
  ASSERT_FALSE(run.result.l1_cache[0].core_accesses.empty());
  run.result.l1_cache[0].core_accesses[0] += 1;
  const std::string v = check_metric_identities(run.result);
  EXPECT_NE(v.find("per-core accesses"), std::string::npos) << v;
}

TEST(Properties, TamperedStallMeasurementIsDetected) {
  CuratedRun run = run_curated(trace::SpecBenchmark::kMcf);
  ASSERT_EQ(check_model_properties(run.m), "");
  run.m.measured_stall_per_instr += 10.0;  // Eq. 7 can no longer match
  const std::string v = check_model_properties(run.m);
  EXPECT_NE(v.find("Eq.7"), std::string::npos) << v;
}

TEST(Properties, BrokenEtaIsCaughtByTheSanityBand) {
  // The Eq. 13 band is deliberately loose (factor 8) — this proves it still
  // has teeth against an order-of-magnitude bug in the damping factor.
  CuratedRun run = run_curated(trace::SpecBenchmark::kMcf);
  ASSERT_GT(run.m.l1.pure_misses, 0u);
  ASSERT_GE(run.m.l1_misses_total, 50u);
  run.m.l1.pure_miss_cycles *= 100;  // corrupts eta1 and the pMR terms
  const std::string v = check_model_properties(run.m);
  EXPECT_FALSE(v.empty());
}

TEST(Properties, IncompleteRunsSkipCompletionOnlyIdentities) {
  // A run cut off by max_cycles still satisfies the always-true identities;
  // the completion-gated ones (Eq. 2, hit_access_cycles pairing) are
  // skipped rather than reported as violations.
  const auto profile = trace::spec_profile(trace::SpecBenchmark::kMcf, 50000, 17);
  auto machine = sim::MachineConfig::single_core_default();
  machine.max_cycles = 2000;
  std::vector<trace::TraceSourcePtr> traces;
  traces.push_back(std::make_unique<trace::SyntheticTrace>(profile));
  sim::System sys(machine, std::move(traces));
  const sim::SystemResult r = sys.run();
  ASSERT_FALSE(r.completed);
  EXPECT_EQ(check_metric_identities(r), "");
}

TEST(Properties, FromEnvReadsTheKnobs) {
  // The env knobs are the CI interface; prove they override the defaults
  // and that clearing them restores the baked-in seed.
  ::setenv("LPM_CHECK_SEED", "777", 1);
  ::setenv("LPM_CHECK_CASES", "3", 1);
  ::setenv("LPM_CHECK_ARTIFACTS", "some/dir", 1);
  const FuzzConfig cfg = FuzzConfig::from_env();
  EXPECT_EQ(cfg.seed, 777u);
  EXPECT_EQ(cfg.cases, 3u);
  EXPECT_EQ(cfg.artifact_dir, "some/dir");
  ::unsetenv("LPM_CHECK_SEED");
  ::unsetenv("LPM_CHECK_CASES");
  ::unsetenv("LPM_CHECK_ARTIFACTS");
  const FuzzConfig fresh = FuzzConfig::from_env();
  EXPECT_EQ(fresh.seed, FuzzConfig{}.seed);
  EXPECT_TRUE(fresh.artifact_dir.empty());
}

}  // namespace
}  // namespace lpm::check
