// Replay file format: op-string and whole-case round trips must be
// lossless (a repro that mutates in transit is worse than none), and
// malformed input must be rejected with a diagnostic, not misparsed.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "check/fuzz.hpp"
#include "check/replay.hpp"
#include "sim/machine_config.hpp"
#include "util/error.hpp"

namespace lpm::check {
namespace {

TEST(Replay, OpsRoundTrip) {
  std::vector<trace::MicroOp> ops;
  ops.push_back({trace::OpType::kAlu, 0, 0, 0, 3});
  ops.push_back({trace::OpType::kLoad, 0xdeadbeef, 2, 0, 1});
  ops.push_back({trace::OpType::kStore, 0xffff'ffff'ffff'ffc0ULL, 7, 3, 1});
  ops.push_back({trace::OpType::kLoad, 0, 1, 1, 1});

  const std::string text = encode_ops(ops);
  EXPECT_EQ(decode_ops(text), ops);
}

TEST(Replay, EmptyOpsEncodeToEmptyString) {
  EXPECT_EQ(encode_ops({}), "");
  EXPECT_TRUE(decode_ops("").empty());
}

TEST(Replay, CaseRoundTripPreservesMachineAndOps) {
  // A fuzzer-generated case exercises the full key set (random caches,
  // DRAM, core widths); the round trip must reproduce it field for field.
  Fuzzer fuzzer;
  const ReplayCase c = fuzzer.generate(5);

  const std::string text = replay_to_json(c);
  const ReplayCase back = replay_from_json(text);

  EXPECT_EQ(back.ops, c.ops);
  // MachineConfig has no operator==; a second serialization being
  // byte-identical proves every field the format carries survived.
  EXPECT_EQ(replay_to_json(back), text);
}

TEST(Replay, PrivateL2AndHeterogeneousL1Survive) {
  auto machine = sim::MachineConfig::three_level_default();
  ReplayCase c;
  c.machine = machine;
  c.ops.push_back(decode_ops("l40:0:0:1;a0:1:0:2;sbeef00:2:0:1"));

  const std::string text = replay_to_json(c);
  const ReplayCase back = replay_from_json(text);
  EXPECT_TRUE(back.machine.use_private_l2);
  EXPECT_EQ(replay_to_json(back), text);

  auto hetero = sim::MachineConfig::single_core_default();
  hetero.num_cores = 2;
  hetero.l1_size_per_core = {4 * 1024, 64 * 1024};
  ReplayCase h;
  h.machine = hetero;
  h.ops = {decode_ops("l0:0:0:1"), decode_ops("s40:0:0:1")};
  const ReplayCase hback = replay_from_json(replay_to_json(h));
  EXPECT_EQ(hback.machine.l1_size_per_core,
            (std::vector<std::uint64_t>{4 * 1024, 64 * 1024}));
  EXPECT_EQ(hback.ops, h.ops);
}

TEST(Replay, SixtyFourBitValuesSurviveAsStrings) {
  // Seeds and cycle budgets above 2^53 would be mangled by the double-typed
  // JSON number path; the format routes them through strings instead.
  auto machine = sim::MachineConfig::single_core_default();
  machine.max_cycles = 0xfedc'ba98'7654'3210ULL;
  machine.l1.seed = (1ULL << 63) | 12345;
  ReplayCase c;
  c.machine = machine;
  c.ops.push_back(decode_ops("a0:0:0:1"));

  const ReplayCase back = replay_from_json(replay_to_json(c));
  EXPECT_EQ(back.machine.max_cycles, 0xfedc'ba98'7654'3210ULL);
  EXPECT_EQ(back.machine.l1.seed, (1ULL << 63) | 12345);
}

TEST(Replay, MakeTracesReplaysTheOpsVerbatim) {
  ReplayCase c;
  c.machine = sim::MachineConfig::single_core_default();
  c.ops.push_back(decode_ops("l40:0:0:1;a0:1:0:2;s80:0:0:1"));

  auto traces = c.make_traces();
  ASSERT_EQ(traces.size(), 1u);
  std::vector<trace::MicroOp> drained;
  trace::MicroOp op;
  while (traces[0]->next(op)) drained.push_back(op);
  EXPECT_EQ(drained, c.ops[0]);
}

TEST(Replay, RejectsMalformedInput) {
  EXPECT_THROW((void)replay_from_json("not json"), util::LpmError);
  EXPECT_THROW((void)replay_from_json("{\"format\": \"something-else\"}"),
               util::LpmError);
  // Right tag but a required key missing.
  EXPECT_THROW((void)replay_from_json("{\"format\": \"lpm-replay-v1\"}"),
               util::LpmError);
  EXPECT_THROW((void)decode_ops("x40:0:0:1"), util::LpmError);  // bad op type
  EXPECT_THROW((void)decode_ops("l"), util::LpmError);          // truncated
  EXPECT_THROW((void)decode_ops("l40:0"), util::LpmError);      // short token
}

TEST(Replay, SaveLoadRoundTripsThroughDisk) {
  Fuzzer fuzzer;
  const ReplayCase c = fuzzer.generate(9);
  const std::string path = "replay_roundtrip_test.json";
  save_replay(c, path);
  const ReplayCase back = load_replay(path);
  EXPECT_EQ(back.ops, c.ops);
  EXPECT_EQ(replay_to_json(back), replay_to_json(c));
  std::remove(path.c_str());

  EXPECT_THROW((void)load_replay("does-not-exist.json"), util::LpmError);
}

}  // namespace
}  // namespace lpm::check
