// ModelBackend seam + analytic closed forms.
//
// The closed-form tests pin the documented miss-curve semantics of
// src/model/analytic.hpp on an exactly-known reuse profile: the profiling
// pass conserves accesses (leaders + followers == mem_ops, one cold leader
// per distinct block), an infinite cache keeps only compulsory bursts, a
// one-set rdh cache is bit-identical to the fully-associative model, and
// both curves are monotone in capacity. The seam tests pin the factory
// contract and the fidelity tagging of LayerEstimates end to end through
// the facade.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>

#include "exp/experiment_engine.hpp"
#include "lpm.hpp"
#include "model/analytic.hpp"
#include "model/backend.hpp"
#include "sim/machine_config.hpp"
#include "trace/spec_like.hpp"
#include "util/error.hpp"

namespace lpm::model {
namespace {

trace::WorkloadProfile small_workload() {
  auto wl = trace::spec_profile(trace::SpecBenchmark::kGcc, 12000, 5);
  return wl;
}

TEST(ReuseProfileTest, ConservesAccessesAndColdLeaders) {
  const ReuseProfile p = build_reuse_profile(small_workload());
  ASSERT_GT(p.mem_ops, 0u);
  ASSERT_GT(p.distinct_blocks, 0u);

  // The first touch of a block can never coalesce with an earlier access,
  // so it is always a burst leader: one compulsory leader per block.
  EXPECT_EQ(p.cold, p.distinct_blocks);

  // Every memory access is exactly one of: cold leader, reuse leader
  // (suffix[0] spans all tracked distances plus the overflow bucket), or a
  // follower of one of those.
  std::uint64_t total = p.cold + p.suffix[0];
  for (std::size_t c = 0; c < ReuseProfile::kNumBurstClasses; ++c) {
    total += p.cold_followers[c] + p.suffix_followers[c][0];
  }
  EXPECT_EQ(total, p.mem_ops);

  // Covered accesses are a subset, bucket by bucket.
  EXPECT_LE(p.cold_covered, p.cold);
  EXPECT_LE(p.suffix_covered[0], p.suffix[0]);
}

TEST(AnalyticMissCurves, InfiniteCacheKeepsOnlyCompulsoryBursts) {
  const ReuseProfile p = build_reuse_profile(small_workload());
  // Large enough that even the overflow bucket hits (the profile's working
  // set is far below kMaxTrackedDistance blocks, so suffix[max] == 0).
  const auto e = fa_misses(p, ReuseProfile::kMaxTrackedDistance, 0.0);
  const std::uint64_t overflow = p.suffix[ReuseProfile::kMaxTrackedDistance];
  EXPECT_DOUBLE_EQ(e.fills, static_cast<double>(p.cold + overflow));
  // With the widest coalescing window every follower class counts fully,
  // so demand is the compulsory bursts in full.
  double cold_followers = 0.0;
  for (std::size_t c = 0; c < ReuseProfile::kNumBurstClasses; ++c) {
    cold_followers += static_cast<double>(
        p.cold_followers[c] +
        p.suffix_followers[c][ReuseProfile::kMaxTrackedDistance]);
  }
  EXPECT_NEAR(e.demand, static_cast<double>(p.cold + overflow) + cold_followers,
              1e-9);
  EXPECT_LE(e.fills, e.demand + 1e-12);
}

TEST(AnalyticMissCurves, OneSetRdhDegeneratesToFullyAssociative) {
  const ReuseProfile p = build_reuse_profile(small_workload());
  for (const std::uint32_t assoc : {1u, 4u, 64u, 1024u}) {
    const auto fa = fa_misses(p, assoc, 0.3, 16.0);
    const auto rdh = rdh_misses(p, /*sets=*/1, assoc, 0.3, 16.0);
    EXPECT_DOUBLE_EQ(fa.demand, rdh.demand) << "assoc=" << assoc;
    EXPECT_DOUBLE_EQ(fa.fills, rdh.fills) << "assoc=" << assoc;
  }
}

TEST(AnalyticMissCurves, MonotoneInCapacityAndBoundedByDemand) {
  const ReuseProfile p = build_reuse_profile(small_workload());
  double prev_fa = static_cast<double>(p.mem_ops) + 1.0;
  double prev_rdh = prev_fa;
  for (std::uint64_t blocks = 8; blocks <= (1u << 15); blocks *= 2) {
    const auto fa = fa_misses(p, blocks, 0.0);
    const auto rdh = rdh_misses(p, blocks / 8, 8, 0.0);
    EXPECT_LE(fa.fills, fa.demand + 1e-9);
    EXPECT_LE(rdh.fills, rdh.demand + 1e-9);
    EXPECT_LE(fa.demand, static_cast<double>(p.mem_ops) + 1e-9);
    EXPECT_LE(fa.demand, prev_fa + 1e-9) << "blocks=" << blocks;
    EXPECT_LE(rdh.demand, prev_rdh + 1e-9) << "blocks=" << blocks;
    prev_fa = fa.demand;
    prev_rdh = rdh.demand;
    // No rdh-vs-fa ordering is asserted: the undamped binomial correction
    // only adds conflict misses, but the calibrated conflict damping lets
    // rdh dip marginally below fa at small capacities.
  }
}

TEST(AnalyticMissCurves, PrefetchAlphaOnlyRemovesCoveredMisses) {
  const ReuseProfile p = build_reuse_profile(small_workload());
  const auto none = fa_misses(p, 256, 0.0);
  const auto half = fa_misses(p, 256, 0.5);
  const auto full = fa_misses(p, 256, 1.0);
  EXPECT_GE(none.demand, half.demand - 1e-9);
  EXPECT_GE(half.demand, full.demand - 1e-9);
  EXPECT_GE(full.demand, -1e-12);
  EXPECT_GE(full.fills, -1e-12);
}

TEST(BackendFactory, NamesAndUnknownName) {
  const auto& names = backend_names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], exp::kCycleBackend);
  EXPECT_EQ(names[1], kRdhBackend);
  EXPECT_EQ(names[2], kFaBackend);
  EXPECT_THROW((void)make_backend("mystery"), util::ConfigError);
  for (const auto& name : names) {
    const auto b = make_backend(name);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->name(), name);
  }
  EXPECT_EQ(make_backend(exp::kCycleBackend)->fidelity(),
            Fidelity::kCycleAccurate);
  EXPECT_EQ(make_backend(kRdhBackend)->fidelity(), Fidelity::kAnalytic);
  EXPECT_EQ(make_backend(kFaBackend)->fidelity(), Fidelity::kAnalytic);
}

TEST(BackendSeam, EvaluateTagsFidelityAndSatisfiesLayerShape) {
  exp::ExperimentEngine engine(
      exp::ExperimentEngine::Options::builder().threads(2).build());
  const auto machine = sim::MachineConfig::single_core_default();
  const auto spec = TraceSpec::profile(small_workload());

  for (const std::string name : {std::string(exp::kCycleBackend),
                                 std::string(kRdhBackend),
                                 std::string(kFaBackend)}) {
    const auto backend = make_backend(name, &engine);
    const auto est = backend->evaluate(machine, spec);
    EXPECT_EQ(est.backend, name);
    EXPECT_EQ(est.fidelity, name == exp::kCycleBackend
                                ? Fidelity::kCycleAccurate
                                : Fidelity::kAnalytic);
    ASSERT_NE(est.result, nullptr);
    ASSERT_FALSE(est.levels.empty()) << name;
    EXPECT_EQ(est.levels.front().name, "l1");
    EXPECT_EQ(est.levels.back().name, "dram");
    for (const auto& level : est.levels) {
      EXPECT_GE(level.mr, 0.0) << name << "/" << level.name;
      EXPECT_LE(level.mr, 1.0 + 1e-9) << name << "/" << level.name;
      EXPECT_GE(level.camat, 0.0) << name << "/" << level.name;
    }
    // calibrate defaults to true, so the LPM view must be populated.
    ASSERT_FALSE(est.apps.empty()) << name;
    EXPECT_GT(est.app().measured_cpi, 0.0) << name;
    EXPECT_GT(est.lpmr.lpmr1, 0.0) << name;
    EXPECT_GT(est.fingerprint, 0u) << name;
  }
}

TEST(BackendSeam, AnalyticAndCycleAreDistinctCacheEntries) {
  exp::ExperimentEngine engine(
      exp::ExperimentEngine::Options::builder().threads(1).build());
  const auto machine = sim::MachineConfig::single_core_default();
  const auto spec = TraceSpec::profile(small_workload());

  const auto cycle = make_backend(exp::kCycleBackend, &engine);
  const auto rdh = make_backend(kRdhBackend, &engine);
  const auto a = cycle->evaluate(machine, spec);
  const auto b = rdh->evaluate(machine, spec);
  // Same point, different fidelity: the memo cache must keep them apart.
  EXPECT_NE(a.fingerprint, b.fingerprint);

  // Determinism: re-evaluating either backend reproduces the estimate.
  const auto a2 = cycle->evaluate(machine, spec);
  const auto b2 = rdh->evaluate(machine, spec);
  EXPECT_EQ(a.fingerprint, a2.fingerprint);
  EXPECT_DOUBLE_EQ(a.levels[0].mr, a2.levels[0].mr);
  EXPECT_DOUBLE_EQ(b.levels[0].mr, b2.levels[0].mr);
  EXPECT_DOUBLE_EQ(b.app().l1.camat(), b2.app().l1.camat());
}

TEST(BackendSeam, FacadeEstimateRoutesByName) {
  const auto machine = sim::MachineConfig::single_core_default();
  const auto spec = TraceSpec::spec("403.gcc", 12000, 5);
  const auto est = lpm::estimate(machine, spec, kFaBackend);
  EXPECT_EQ(est.backend, kFaBackend);
  EXPECT_EQ(est.fidelity, Fidelity::kAnalytic);
  EXPECT_THROW((void)lpm::estimate(machine, spec, "nope"), util::ConfigError);
}

}  // namespace
}  // namespace lpm::model
