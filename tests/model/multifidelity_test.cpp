// The multi-fidelity contract: screening never changes the answer.
//
// run_two_stage's confirm walk decides from its own measurements only, so
// its outcome must be bit-identical to running the confirm tunable alone;
// run_lpm_walk_screened must land on the same final configuration as a
// cycle-only walk of the same space, for every one of the 16 SPEC-analogue
// profiles; and screen_then_confirm_sweep must rank with the analytic
// backend but decide with the cycle backend.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/design_space.hpp"
#include "core/lpm_algorithm.hpp"
#include "exp/experiment_engine.hpp"
#include "lpm.hpp"
#include "trace/spec_like.hpp"
#include "util/error.hpp"

namespace lpm {
namespace {

/// A deterministic toy tunable: LPMR1 walks down a fixed ladder, one rung
/// per optimize_l1(). Lets the two-stage test compare walks structurally.
class LadderTunable final : public core::LpmTunable {
 public:
  explicit LadderTunable(std::vector<double> ladder)
      : ladder_(std::move(ladder)) {}

  core::LpmObservation measure() override {
    core::LpmObservation obs;
    obs.lpmr.lpmr1 = ladder_[idx_];
    obs.lpmr.lpmr2 = 1.0;
    obs.lpmr.lpmr3 = 1.0;
    obs.t1 = 2.0;
    obs.t2 = 2.0;
    obs.config_label = "rung-" + std::to_string(idx_);
    return obs;
  }
  bool optimize_l1() override {
    if (idx_ + 1 >= ladder_.size()) return false;
    ++idx_;
    return true;
  }
  bool optimize_l2() override { return false; }
  bool reduce_overprovision() override { return false; }

  [[nodiscard]] std::size_t rung() const { return idx_; }

 private:
  std::vector<double> ladder_;
  std::size_t idx_ = 0;
};

TEST(TwoStageWalk, ConfirmOutcomeIsIndependentOfScreen) {
  const std::vector<double> confirm_ladder = {5.0, 3.2, 1.4};
  // A deliberately different (and differently-sized) screening ladder: the
  // screen stage must not leak into the confirm decisions.
  LadderTunable screen({9.0, 6.0, 4.0, 2.5, 1.1});
  LadderTunable confirm(confirm_ladder);

  core::LpmAlgorithmConfig cfg;
  cfg.prefetch_candidates = false;
  const core::LpmAlgorithm algorithm(cfg);
  const auto two_stage = algorithm.run_two_stage(screen, confirm);

  LadderTunable solo(confirm_ladder);
  const auto solo_outcome = algorithm.run(solo);

  EXPECT_TRUE(two_stage.screen.converged);
  EXPECT_TRUE(two_stage.confirm.converged);
  ASSERT_EQ(two_stage.confirm.steps.size(), solo_outcome.steps.size());
  for (std::size_t i = 0; i < solo_outcome.steps.size(); ++i) {
    EXPECT_EQ(two_stage.confirm.steps[i].action, solo_outcome.steps[i].action);
    EXPECT_DOUBLE_EQ(two_stage.confirm.steps[i].observation.lpmr.lpmr1,
                     solo_outcome.steps[i].observation.lpmr.lpmr1);
  }
  EXPECT_EQ(confirm.rung(), solo.rung());
  EXPECT_DOUBLE_EQ(two_stage.confirm.final_observation.lpmr.lpmr1,
                   solo_outcome.final_observation.lpmr.lpmr1);
}

TEST(ScreenedWalk, RejectsCycleAsScreenBackend) {
  const auto base = sim::MachineConfig::single_core_default();
  const auto wl = trace::spec_profile(trace::SpecBenchmark::kBzip2, 2000, 3);
  EXPECT_THROW((void)lpm::run_lpm_walk_screened(
                   base, wl, core::KnobLevels::standard(), core::ArchKnobs{},
                   {}, exp::kCycleBackend),
               util::LpmError);
  EXPECT_THROW((void)lpm::run_lpm_walk_screened(
                   base, wl, core::KnobLevels::standard(), core::ArchKnobs{},
                   {}, "mystery"),
               util::ConfigError);
}

// The acceptance property of the whole seam: on every SPEC-analogue
// profile, the screened walk's final configuration equals what a cycle-only
// walk picks — screening only warms caches and narrows the frontier, it
// never steers.
TEST(ScreenedWalk, MatchesCycleOnlyFinalConfigOnAllProfiles) {
  exp::ExperimentEngine engine(
      exp::ExperimentEngine::Options::builder().threads(4).build());

  const auto base = sim::MachineConfig::single_core_default();
  const auto levels = core::KnobLevels::standard();
  const core::ArchKnobs start;

  core::LpmAlgorithmConfig cfg;
  cfg.delta_percent = core::kCoarseGrainedDelta;

  for (const auto bench : trace::all_spec_benchmarks()) {
    const auto wl = trace::spec_profile(bench, 5000, 3);
    const auto screened = lpm::run_lpm_walk_screened(
        base, wl, levels, start, cfg, model::kRdhBackend, &engine);

    core::DesignSpaceExplorer cycle_only(base, wl, levels, start,
                                         cfg.delta_percent, &engine);
    const auto cycle_outcome = lpm::run_lpm_walk(cycle_only, cfg);

    EXPECT_EQ(screened.final_config, cycle_only.current())
        << trace::spec_name(bench) << ": screened walk picked "
        << screened.final_config.label() << ", cycle-only picked "
        << cycle_only.current().label();
    EXPECT_EQ(screened.confirm.converged, cycle_outcome.converged)
        << trace::spec_name(bench);
    EXPECT_GT(screened.screen_configs, 0u) << trace::spec_name(bench);
    EXPECT_GT(screened.confirm_configs, 0u) << trace::spec_name(bench);
  }
}

TEST(ScreenedSweep, RanksAnalyticallyDecidesCycleAccurately) {
  exp::ExperimentEngine engine(
      exp::ExperimentEngine::Options::builder().threads(4).build());
  const auto base = sim::MachineConfig::single_core_default();
  const auto wl = trace::spec_profile(trace::SpecBenchmark::kBwaves, 5000, 3);

  const std::vector<core::ArchKnobs> candidates = {
      core::ArchKnobs::config_a(), core::ArchKnobs::config_b(),
      core::ArchKnobs::config_c(), core::ArchKnobs::config_d(),
      core::ArchKnobs::config_e()};

  core::SweepOptions opts;
  opts.engine = &engine;
  opts.confirm_top_k = 3;
  const auto sweep = core::screen_then_confirm_sweep(base, wl, candidates, opts);

  ASSERT_EQ(sweep.screened.size(), candidates.size());
  ASSERT_EQ(sweep.confirmed.size(), opts.confirm_top_k);
  EXPECT_EQ(sweep.analytic_evals, candidates.size());
  EXPECT_EQ(sweep.cycle_evals, opts.confirm_top_k);
  for (const auto& r : sweep.screened) EXPECT_EQ(r.backend, model::kRdhBackend);
  for (const auto& r : sweep.confirmed) EXPECT_EQ(r.backend, exp::kCycleBackend);
  EXPECT_EQ(sweep.best, sweep.confirmed.front().knobs);

  // Every confirmed config survived the screen.
  for (const auto& c : sweep.confirmed) {
    bool found = false;
    for (std::size_t i = 0; i < opts.confirm_top_k; ++i) {
      found = found || sweep.screened[i].knobs == c.knobs;
    }
    EXPECT_TRUE(found) << c.knobs.label() << " was not in the screened frontier";
  }

  EXPECT_THROW((void)core::screen_then_confirm_sweep(base, wl, {}, opts),
               util::ConfigError);
}

}  // namespace
}  // namespace lpm
