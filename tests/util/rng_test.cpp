#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace lpm::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(a.next_u64());
  a.reseed(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next_u64(), first[i]);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowOneAlwaysZero) {
  Rng r(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.next_below(1), 0u);
}

TEST(Rng, NextBelowZeroThrows) {
  Rng r(3);
  EXPECT_THROW(r.next_below(0), LpmError);
}

TEST(Rng, NextInInclusiveRange) {
  Rng r(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 20000; ++i) {
    const auto v = r.next_in(10, 13);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 13u);
    saw_lo |= v == 10;
    saw_hi |= v == 13;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextInBadRangeThrows) {
  Rng r(5);
  EXPECT_THROW(r.next_in(4, 3), LpmError);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, NextBoolEdgeProbabilities) {
  Rng r(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.next_bool(0.0));
    EXPECT_TRUE(r.next_bool(1.0));
  }
}

TEST(Rng, NextBoolFrequency) {
  Rng r(13);
  int yes = 0;
  for (int i = 0; i < 50000; ++i) {
    if (r.next_bool(0.3)) ++yes;
  }
  EXPECT_NEAR(yes / 50000.0, 0.3, 0.02);
}

TEST(Rng, GeometricMeanMatchesTheory) {
  Rng r(17);
  const double p = 0.25;
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(r.next_geometric(p));
  }
  // E[failures before success] = (1-p)/p = 3.
  EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(Rng, GeometricPOneIsZero) {
  Rng r(17);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.next_geometric(1.0), 0u);
}

TEST(Rng, GeometricInvalidThrows) {
  Rng r(17);
  EXPECT_THROW(r.next_geometric(0.0), LpmError);
  EXPECT_THROW(r.next_geometric(1.5), LpmError);
}

TEST(Rng, ExponentialMeanMatchesTheory) {
  Rng r(19);
  const double lambda = 2.0;
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += r.next_exponential(lambda);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, NormalMomentsMatchTheory) {
  Rng r(23);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = r.next_normal(5.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(29);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(ZipfSampler, UniformWhenSkewZero) {
  Rng r(31);
  ZipfSampler z(10, 0.0);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[z.sample(r)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

TEST(ZipfSampler, SkewFavorsLowRanks) {
  Rng r(37);
  ZipfSampler z(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) ++counts[z.sample(r)];
  EXPECT_GT(counts[0], counts[9]);
  EXPECT_GT(counts[9], counts[90]);
}

TEST(ZipfSampler, SingleElement) {
  Rng r(41);
  ZipfSampler z(1, 2.0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z.sample(r), 0u);
}

TEST(ZipfSampler, InvalidArgsThrow) {
  EXPECT_THROW(ZipfSampler(0, 1.0), LpmError);
  EXPECT_THROW(ZipfSampler(4, -1.0), LpmError);
}

TEST(DiscreteSampler, MatchesWeights) {
  Rng r(43);
  DiscreteSampler d({1.0, 3.0, 0.0, 6.0});
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[d.sample(r)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(DiscreteSampler, InvalidWeightsThrow) {
  EXPECT_THROW(DiscreteSampler({}), LpmError);
  EXPECT_THROW(DiscreteSampler({0.0, 0.0}), LpmError);
  EXPECT_THROW(DiscreteSampler({1.0, -1.0}), LpmError);
}

}  // namespace
}  // namespace lpm::util
