#include "util/ring_buffer.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace lpm::util {
namespace {

TEST(RingBuffer, PushPopFifoOrder) {
  RingBuffer<int> rb(4);
  rb.push(1);
  rb.push(2);
  rb.push(3);
  EXPECT_EQ(rb.size(), 3u);
  EXPECT_EQ(rb.front(), 1);
  rb.pop();
  EXPECT_EQ(rb.front(), 2);
  rb.pop();
  rb.pop();
  EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, FullAndOverflowThrows) {
  RingBuffer<int> rb(2);
  rb.push(1);
  rb.push(2);
  EXPECT_TRUE(rb.full());
  EXPECT_THROW(rb.push(3), LpmError);
}

TEST(RingBuffer, PopEmptyThrows) {
  RingBuffer<int> rb(2);
  EXPECT_THROW(rb.pop(), LpmError);
  EXPECT_THROW(rb.front(), LpmError);
}

TEST(RingBuffer, SequenceNumbersStableAcrossWrap) {
  RingBuffer<int> rb(3);
  const auto s0 = rb.push(10);
  const auto s1 = rb.push(11);
  rb.pop();  // drop 10
  const auto s2 = rb.push(12);
  const auto s3 = rb.push(13);  // wraps storage
  EXPECT_EQ(rb.at_seq(s1), 11);
  EXPECT_EQ(rb.at_seq(s2), 12);
  EXPECT_EQ(rb.at_seq(s3), 13);
  EXPECT_FALSE(rb.contains_seq(s0));
  EXPECT_THROW(rb.at_seq(s0), LpmError);
}

TEST(RingBuffer, SequenceNumbersMonotonic) {
  RingBuffer<int> rb(2);
  const auto a = rb.push(1);
  rb.pop();
  const auto b = rb.push(2);
  EXPECT_EQ(b, a + 1);
}

TEST(RingBuffer, AtOffsetWalksFromFront) {
  RingBuffer<int> rb(4);
  rb.push(5);
  rb.push(6);
  rb.push(7);
  rb.pop();
  EXPECT_EQ(rb.at_offset(0), 6);
  EXPECT_EQ(rb.at_offset(1), 7);
  EXPECT_THROW(rb.at_offset(2), LpmError);
}

TEST(RingBuffer, ClearAdvancesSequences) {
  RingBuffer<int> rb(3);
  rb.push(1);
  rb.push(2);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  const auto s = rb.push(3);
  EXPECT_EQ(s, 2u);
  EXPECT_EQ(rb.at_seq(s), 3);
}

TEST(RingBuffer, LongChurnKeepsConsistency) {
  RingBuffer<std::size_t> rb(7);
  std::size_t next_val = 0;
  std::size_t expect_front = 0;
  for (int round = 0; round < 1000; ++round) {
    while (!rb.full()) rb.push(next_val++);
    // Pop a varying number.
    const std::size_t pops = 1 + (round % 7);
    for (std::size_t i = 0; i < pops && !rb.empty(); ++i) {
      ASSERT_EQ(rb.front(), expect_front);
      rb.pop();
      ++expect_front;
    }
  }
}

TEST(RingBuffer, ZeroCapacityThrows) {
  EXPECT_THROW(RingBuffer<int>(0), LpmError);
}

}  // namespace
}  // namespace lpm::util
