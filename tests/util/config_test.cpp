#include "util/config.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace lpm::util {
namespace {

TEST(KvConfig, ParsesTextWithCommentsAndBlanks) {
  const auto cfg = KvConfig::from_text(R"(
# a comment
cores = 16
name= bwaves   # trailing comment
ratio =1.5
flag=true
)");
  EXPECT_EQ(cfg.get_uint_or("cores", 0), 16u);
  EXPECT_EQ(cfg.get_or("name", ""), "bwaves");
  EXPECT_DOUBLE_EQ(cfg.get_double_or("ratio", 0.0), 1.5);
  EXPECT_TRUE(cfg.get_bool_or("flag", false));
}

TEST(KvConfig, MalformedLineThrows) {
  EXPECT_THROW(KvConfig::from_text("novalue\n"), LpmError);
  EXPECT_THROW(KvConfig::from_text("=3\n"), LpmError);
}

TEST(KvConfig, DefaultsWhenMissing) {
  const KvConfig cfg;
  EXPECT_EQ(cfg.get_int_or("x", -7), -7);
  EXPECT_EQ(cfg.get_or("y", "dflt"), "dflt");
  EXPECT_FALSE(cfg.get_bool_or("z", false));
  EXPECT_FALSE(cfg.has("x"));
}

TEST(KvConfig, TypeErrorsThrow) {
  auto cfg = KvConfig::from_text("n=abc\nd=1.2.3\nb=maybe\nneg=-1\n");
  EXPECT_THROW(cfg.get_int_or("n", 0), LpmError);
  EXPECT_THROW(cfg.get_double_or("d", 0.0), LpmError);
  EXPECT_THROW(cfg.get_bool_or("b", false), LpmError);
  EXPECT_THROW(cfg.get_uint_or("neg", 0), LpmError);
}

TEST(KvConfig, BooleanSpellings) {
  auto cfg = KvConfig::from_text("a=YES\nb=off\nc=1\nd=False\n");
  EXPECT_TRUE(cfg.get_bool_or("a", false));
  EXPECT_FALSE(cfg.get_bool_or("b", true));
  EXPECT_TRUE(cfg.get_bool_or("c", false));
  EXPECT_FALSE(cfg.get_bool_or("d", true));
}

TEST(KvConfig, FromArgsSplitsPositional) {
  const char* argv[] = {"prog", "runs=3", "positional", "x=y"};
  const auto cfg = KvConfig::from_args(4, argv);
  EXPECT_EQ(cfg.get_uint_or("runs", 0), 3u);
  EXPECT_EQ(cfg.get_or("x", ""), "y");
  ASSERT_EQ(cfg.positional().size(), 1u);
  EXPECT_EQ(cfg.positional()[0], "positional");
}

TEST(KvConfig, UnusedKeysTracksReads) {
  auto cfg = KvConfig::from_text("used=1\nunused=2\n");
  (void)cfg.get_int_or("used", 0);
  const auto unused = cfg.unused_keys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "unused");
}

TEST(KvConfig, MissingFileThrows) {
  EXPECT_THROW(KvConfig::from_file("/nonexistent/path/cfg.txt"), LpmError);
}

TEST(KvConfig, SetOverwrites) {
  KvConfig cfg;
  cfg.set("k", "1");
  cfg.set("k", "2");
  EXPECT_EQ(cfg.get_int_or("k", 0), 2);
}

}  // namespace
}  // namespace lpm::util
