// The experiment engine's result cache is only sound if every field that
// changes simulated behaviour changes the fingerprint. Each test perturbs
// every field of a config struct in turn and asserts the hash moves.
#include "util/fingerprint.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "cpu/core_config.hpp"
#include "mem/cache.hpp"
#include "mem/dram.hpp"
#include "sim/machine_config.hpp"
#include "trace/workload_profile.hpp"

namespace lpm {
namespace {

template <typename Config>
void expect_every_field_matters(
    const Config& base,
    const std::vector<std::pair<std::string, std::function<void(Config&)>>>&
        mutations) {
  const std::uint64_t base_fp = util::fingerprint(base);
  EXPECT_EQ(base_fp, util::fingerprint(base)) << "fingerprint must be stable";
  for (const auto& [field, mutate] : mutations) {
    Config changed = base;
    mutate(changed);
    EXPECT_NE(util::fingerprint(changed), base_fp)
        << "changing field '" << field << "' did not change the fingerprint";
  }
}

TEST(Fingerprint, EveryCoreConfigFieldChangesHash) {
  expect_every_field_matters<cpu::CoreConfig>(
      cpu::CoreConfig{},
      {
          {"name", [](auto& c) { c.name = "other"; }},
          {"id", [](auto& c) { c.id = 7; }},
          {"issue_width", [](auto& c) { c.issue_width += 1; }},
          {"dispatch_width", [](auto& c) { c.dispatch_width += 1; }},
          {"commit_width", [](auto& c) { c.commit_width += 1; }},
          {"iw_size", [](auto& c) { c.iw_size += 1; }},
          {"rob_size", [](auto& c) { c.rob_size += 1; }},
          {"lsq_size", [](auto& c) { c.lsq_size += 1; }},
      });
}

TEST(Fingerprint, EveryCacheConfigFieldChangesHash) {
  expect_every_field_matters<mem::CacheConfig>(
      mem::CacheConfig{},
      {
          {"name", [](auto& c) { c.name = "other"; }},
          {"size_bytes", [](auto& c) { c.size_bytes *= 2; }},
          {"block_bytes", [](auto& c) { c.block_bytes *= 2; }},
          {"associativity", [](auto& c) { c.associativity *= 2; }},
          {"hit_latency", [](auto& c) { c.hit_latency += 1; }},
          {"ports", [](auto& c) { c.ports += 1; }},
          {"banks", [](auto& c) { c.banks += 1; }},
          {"interleave_bytes", [](auto& c) { c.interleave_bytes *= 2; }},
          {"mshr_entries", [](auto& c) { c.mshr_entries += 1; }},
          {"mshr_targets", [](auto& c) { c.mshr_targets += 1; }},
          {"writeback_capacity", [](auto& c) { c.writeback_capacity += 1; }},
          {"prefetch_degree", [](auto& c) { c.prefetch_degree += 1; }},
          {"prefetch_accuracy_window",
           [](auto& c) { c.prefetch_accuracy_window += 1; }},
          {"mshr_quota_per_core", [](auto& c) { c.mshr_quota_per_core += 1; }},
          {"replacement",
           [](auto& c) { c.replacement = mem::ReplacementPolicy::kRandom; }},
          {"num_cores", [](auto& c) { c.num_cores += 1; }},
          {"seed", [](auto& c) { c.seed += 1; }},
      });
}

TEST(Fingerprint, EveryDramConfigFieldChangesHash) {
  expect_every_field_matters<mem::DramConfig>(
      mem::DramConfig{},
      {
          {"name", [](auto& c) { c.name = "other"; }},
          {"banks", [](auto& c) { c.banks += 1; }},
          {"row_bytes", [](auto& c) { c.row_bytes *= 2; }},
          {"interleave_bytes", [](auto& c) { c.interleave_bytes *= 2; }},
          {"t_rcd", [](auto& c) { c.t_rcd += 1; }},
          {"t_cl", [](auto& c) { c.t_cl += 1; }},
          {"t_rp", [](auto& c) { c.t_rp += 1; }},
          {"t_burst", [](auto& c) { c.t_burst += 1; }},
          {"frontend_latency", [](auto& c) { c.frontend_latency += 1; }},
          {"queue_capacity", [](auto& c) { c.queue_capacity += 1; }},
          {"max_issue_per_cycle", [](auto& c) { c.max_issue_per_cycle += 1; }},
          {"starvation_threshold",
           [](auto& c) { c.starvation_threshold += 1; }},
      });
}

TEST(Fingerprint, EveryMachineConfigFieldChangesHash) {
  expect_every_field_matters<sim::MachineConfig>(
      sim::MachineConfig{},
      {
          {"num_cores", [](auto& c) { c.num_cores += 1; }},
          {"core", [](auto& c) { c.core.rob_size += 1; }},
          {"l1", [](auto& c) { c.l1.size_bytes *= 2; }},
          {"l2", [](auto& c) { c.l2.size_bytes *= 2; }},
          {"dram", [](auto& c) { c.dram.banks += 1; }},
          {"use_private_l2", [](auto& c) { c.use_private_l2 = true; }},
          {"private_l2", [](auto& c) { c.private_l2.size_bytes *= 2; }},
          {"l1_size_per_core", [](auto& c) { c.l1_size_per_core = {4096}; }},
          {"max_cycles", [](auto& c) { c.max_cycles += 1; }},
      });
}

TEST(Fingerprint, EveryWorkloadProfileFieldChangesHash) {
  expect_every_field_matters<trace::WorkloadProfile>(
      trace::WorkloadProfile{},
      {
          {"name", [](auto& w) { w.name = "other"; }},
          {"fmem", [](auto& w) { w.fmem += 0.01; }},
          {"store_fraction", [](auto& w) { w.store_fraction += 0.01; }},
          {"alu_latency", [](auto& w) { w.alu_latency += 1; }},
          {"alu_dep_fraction", [](auto& w) { w.alu_dep_fraction += 0.01; }},
          {"working_set_bytes", [](auto& w) { w.working_set_bytes *= 2; }},
          {"zipf_skew", [](auto& w) { w.zipf_skew += 0.01; }},
          {"seq_fraction", [](auto& w) { w.seq_fraction += 0.01; }},
          {"num_streams", [](auto& w) { w.num_streams += 1; }},
          {"stride_bytes", [](auto& w) { w.stride_bytes *= 2; }},
          {"pointer_chase_fraction",
           [](auto& w) { w.pointer_chase_fraction += 0.01; }},
          {"load_use_fraction", [](auto& w) { w.load_use_fraction += 0.01; }},
          {"phase_length", [](auto& w) { w.phase_length += 1; }},
          {"burst_duty", [](auto& w) { w.burst_duty += 0.01; }},
          {"burst_fmem", [](auto& w) { w.burst_fmem += 0.01; }},
          {"burst_seq_fraction", [](auto& w) { w.burst_seq_fraction += 0.01; }},
          {"length", [](auto& w) { w.length += 1; }},
          {"seed", [](auto& w) { w.seed += 1; }},
          {"addr_base", [](auto& w) { w.addr_base += 4096; }},
      });
}

// Distinct struct types with identical field bytes must not collide: the
// version tags separate them.
TEST(Fingerprint, TypeTagsSeparateStructKinds) {
  EXPECT_NE(util::fingerprint(mem::CacheConfig{}),
            util::fingerprint(mem::DramConfig{}));
  EXPECT_NE(util::fingerprint(cpu::CoreConfig{}),
            util::fingerprint(mem::CacheConfig{}));
}

TEST(Fingerprint, HexIsStable16Digit) {
  EXPECT_EQ(util::fingerprint_hex(0), "0000000000000000");
  EXPECT_EQ(util::fingerprint_hex(0xdeadbeefcafef00dULL), "deadbeefcafef00d");
}

}  // namespace
}  // namespace lpm
