#include "util/stats.hpp"

#include <gtest/gtest.h>
#include "common/tolerance.hpp"

#include <cmath>

#include "util/error.hpp"

namespace lpm::util {
namespace {

TEST(StreamingStats, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(StreamingStats, BasicMoments) {
  StreamingStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, tol::kExact);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StreamingStats, MergeEqualsCombined) {
  StreamingStats a;
  StreamingStats b;
  StreamingStats all;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10;
    if (i % 2 == 0) {
      a.add(x);
    } else {
      b.add(x);
    }
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(StreamingStats, MergeWithEmpty) {
  StreamingStats a;
  a.add(1.0);
  StreamingStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(StreamingStats, ResetClears) {
  StreamingStats s;
  s.add(5.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(Histogram, BucketsAndEdges) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);
  h.add(1.999);
  h.add(2.0);
  h.add(9.999);
  h.add(10.0);   // overflow
  h.add(-0.01);  // underflow
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(4), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.underflow(), 1u);
}

TEST(Histogram, WeightedAdd) {
  Histogram h(0.0, 4.0, 4);
  h.add(1.5, 10);
  EXPECT_EQ(h.total(), 10u);
  EXPECT_EQ(h.bucket_count(1), 10u);
}

TEST(Histogram, QuantileInterpolates) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
  EXPECT_LE(h.quantile(0.0), 1.0);
}

TEST(Histogram, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), LpmError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), LpmError);
}

TEST(Histogram, ToStringRendersBars) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  const std::string s = h.to_string(10);
  EXPECT_NE(s.find('#'), std::string::npos);
}

TEST(Ratio, SafeDivision) {
  Ratio r;
  EXPECT_DOUBLE_EQ(r.value(), 0.0);
  r.add(3, 4);
  EXPECT_DOUBLE_EQ(r.value(), 0.75);
  r.add(1, 4);
  EXPECT_DOUBLE_EQ(r.value(), 0.5);
}

TEST(Means, ArithmeticHarmonicGeometric) {
  const std::vector<double> xs = {1.0, 2.0, 4.0};
  EXPECT_NEAR(mean_of(xs), 7.0 / 3.0, tol::kExact);
  EXPECT_NEAR(harmonic_mean_of(xs), 3.0 / (1.0 + 0.5 + 0.25), tol::kExact);
  EXPECT_NEAR(geometric_mean_of(xs), 2.0, tol::kExact);
}

TEST(Means, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(harmonic_mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(harmonic_mean_of({1.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(geometric_mean_of({1.0, -2.0}), 0.0);
}

TEST(RelativeError, Basics) {
  EXPECT_NEAR(relative_error(1.1, 1.0), 0.1, tol::kExact);
  EXPECT_DOUBLE_EQ(relative_error(0.0, 0.0), 0.0);
  EXPECT_GT(relative_error(1.0, 0.0), 1.0);
}

}  // namespace
}  // namespace lpm::util
