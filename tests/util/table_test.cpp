#include "util/table.hpp"

#include <gtest/gtest.h>

namespace lpm::util {
namespace {

TEST(AsciiTable, RendersHeaderAndRows) {
  AsciiTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"bee", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  EXPECT_NE(s.find("+"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(AsciiTable, PadsShortRows) {
  AsciiTable t({"a", "b", "c"});
  t.add_row({"1"});
  const std::string s = t.to_string();
  // Rendering must not crash and must contain the lone cell.
  EXPECT_NE(s.find("1"), std::string::npos);
}

TEST(AsciiTable, FormatHelpers) {
  EXPECT_EQ(AsciiTable::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(AsciiTable::fmt(std::uint64_t{42}), "42");
  EXPECT_EQ(AsciiTable::fmt(0.5, 0), "0");  // rounds to even/away per iostream
}

TEST(AsciiTable, CsvEscapesSpecials) {
  AsciiTable t({"k", "v"});
  t.add_row({"with,comma", "with\"quote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(AsciiTable, CsvHeaderFirst) {
  AsciiTable t({"x", "y"});
  t.add_row({"1", "2"});
  const std::string csv = t.to_csv();
  EXPECT_EQ(csv.substr(0, 4), "x,y\n");
}

}  // namespace
}  // namespace lpm::util
