#include "util/flat_json.hpp"

#include <gtest/gtest.h>

namespace lpm::util {
namespace {

TEST(FlatJson, ParsesEveryValueKind) {
  const auto json = FlatJson::parse(
      R"({"name":"perf","count":42,"rate":-1.5e3,"ok":true,"off":false,"gone":null})");
  EXPECT_EQ(json.size(), 6u);
  EXPECT_EQ(json.get_string("name"), "perf");
  EXPECT_EQ(json.get_number("count"), 42.0);
  EXPECT_EQ(json.get_number("rate"), -1500.0);
  EXPECT_EQ(json.get_bool("ok"), true);
  EXPECT_EQ(json.get_bool("off"), false);
  EXPECT_TRUE(json.has("gone"));
  EXPECT_FALSE(json.get_number("gone").has_value());
}

TEST(FlatJson, TypeMismatchesComeBackEmpty) {
  const auto json = FlatJson::parse(R"({"a":"text","b":1})");
  EXPECT_FALSE(json.get_number("a").has_value());
  EXPECT_FALSE(json.get_string("b").has_value());
  EXPECT_FALSE(json.get_string("missing").has_value());
}

TEST(FlatJson, DecodesEscapes) {
  const auto json = FlatJson::parse(
      "{\"s\":\"a\\\"b\\\\c\\nd\\te\",\"ctrl\":\"\\u0007x\"}");
  EXPECT_EQ(json.get_string("s"), "a\"b\\c\nd\te");
  EXPECT_EQ(json.get_string("ctrl"), "\x07x");
}

TEST(FlatJson, AcceptsWhitespaceAndEmptyObject) {
  EXPECT_EQ(FlatJson::parse("{}").size(), 0u);
  const auto json = FlatJson::parse("  { \"a\" : 1 ,\n \"b\" : 2 }  ");
  EXPECT_EQ(json.get_number("a"), 1.0);
  EXPECT_EQ(json.get_number("b"), 2.0);
}

TEST(FlatJson, RejectsMalformedAndNested) {
  EXPECT_THROW(FlatJson::parse(""), LpmError);
  EXPECT_THROW(FlatJson::parse("plain"), LpmError);
  EXPECT_THROW(FlatJson::parse(R"({"a":1)"), LpmError);
  EXPECT_THROW(FlatJson::parse(R"({"a":{"b":1}})"), LpmError);
  EXPECT_THROW(FlatJson::parse(R"({"a":[1,2]})"), LpmError);
  EXPECT_THROW(FlatJson::parse(R"({"a":bogus})"), LpmError);
}

}  // namespace
}  // namespace lpm::util
