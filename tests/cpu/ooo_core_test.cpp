#include "cpu/ooo_core.hpp"

#include <gtest/gtest.h>
#include "common/tolerance.hpp"

#include <algorithm>
#include <memory>

#include "mem/perfect_memory.hpp"
#include "trace/synthetic.hpp"
#include "util/error.hpp"

namespace lpm::cpu {
namespace {

using trace::MicroOp;
using trace::OpType;

MicroOp alu(std::uint8_t latency = 1, std::uint32_t dep = 0) {
  MicroOp op;
  op.type = OpType::kAlu;
  op.exec_latency = latency;
  op.dep_dist = dep;
  return op;
}

MicroOp load(Addr addr, std::uint32_t dep = 0) {
  MicroOp op;
  op.type = OpType::kLoad;
  op.addr = addr;
  op.dep_dist = dep;
  return op;
}

MicroOp store(Addr addr) {
  MicroOp op;
  op.type = OpType::kStore;
  op.addr = addr;
  return op;
}

struct Harness {
  Harness(CoreConfig cfg, std::vector<MicroOp> ops, std::uint32_t mem_latency = 10,
          std::uint32_t mem_ports = 0)
      : trace("t", std::move(ops)),
        mem(mem_latency, mem_ports),
        core(std::move(cfg), &trace, &mem, 1) {}

  Cycle run(Cycle limit = 100000) {
    Cycle now = 0;
    while (!core.finished() && now < limit) {
      mem.tick(now);
      core.tick(now);
      ++now;
    }
    return now;
  }

  trace::VectorTrace trace;
  mem::PerfectMemory mem;
  OooCore core;
};

CoreConfig wide_core() {
  CoreConfig cfg;
  cfg.issue_width = 4;
  cfg.dispatch_width = 4;
  cfg.commit_width = 4;
  cfg.iw_size = 16;
  cfg.rob_size = 16;
  cfg.lsq_size = 8;
  return cfg;
}

TEST(CoreConfig, ValidationCatchesBadFields) {
  auto cfg = wide_core();
  cfg.issue_width = 0;
  EXPECT_THROW(cfg.validate(), util::LpmError);
  cfg = wide_core();
  cfg.iw_size = 32;
  cfg.rob_size = 16;  // IW > ROB
  EXPECT_THROW(cfg.validate(), util::LpmError);
}

TEST(OooCore, RunsAllInstructionsToCompletion) {
  std::vector<MicroOp> ops;
  for (int i = 0; i < 100; ++i) ops.push_back(alu());
  Harness h(wide_core(), ops);
  h.run();
  EXPECT_TRUE(h.core.finished());
  EXPECT_EQ(h.core.stats().instructions, 100u);
}

TEST(OooCore, IndependentAlusReachIssueWidthIpc) {
  std::vector<MicroOp> ops;
  for (int i = 0; i < 4000; ++i) ops.push_back(alu(1, 0));
  Harness h(wide_core(), ops);
  h.run();
  EXPECT_GT(h.core.stats().ipc(), 3.5);
}

TEST(OooCore, DependentChainSerializes) {
  std::vector<MicroOp> ops;
  for (int i = 0; i < 1000; ++i) ops.push_back(alu(1, i == 0 ? 0 : 1));
  Harness h(wide_core(), ops);
  h.run();
  // A dep-distance-1 chain of unit-latency ALUs cannot exceed IPC 1.
  EXPECT_LE(h.core.stats().ipc(), 1.05);
}

TEST(OooCore, InOrderConfigSerializesMemory) {
  std::vector<MicroOp> ops;
  for (int i = 0; i < 50; ++i) ops.push_back(load(static_cast<Addr>(i) * 64));
  Harness h(CoreConfig::in_order(), ops, 10);
  const Cycle cycles = h.run();
  // Each load takes >= 10 cycles and nothing overlaps.
  EXPECT_GE(cycles, 50u * 10u);
  EXPECT_LE(h.core.stats().overlap_ratio(), 0.05);
}

TEST(OooCore, WideCoreOverlapsIndependentLoads) {
  std::vector<MicroOp> ops;
  for (int i = 0; i < 400; ++i) ops.push_back(load(static_cast<Addr>(i) * 64));
  Harness ooo(wide_core(), ops, 10);
  const Cycle wide_cycles = ooo.run();
  Harness narrow(CoreConfig::in_order(), ops, 10);
  const Cycle narrow_cycles = narrow.run();
  // MLP: the wide core is several times faster on independent misses.
  EXPECT_LT(wide_cycles * 3, narrow_cycles);
}

TEST(OooCore, PointerChaseDefeatsMlp) {
  std::vector<MicroOp> chased;
  std::vector<MicroOp> parallel;
  for (int i = 0; i < 300; ++i) {
    chased.push_back(load(static_cast<Addr>(i) * 64, i == 0 ? 0 : 1));
    parallel.push_back(load(static_cast<Addr>(i) * 64, 0));
  }
  Harness a(wide_core(), chased, 20);
  Harness b(wide_core(), parallel, 20);
  const Cycle serial_cycles = a.run();
  const Cycle overlap_cycles = b.run();
  EXPECT_GT(serial_cycles, overlap_cycles * 3);
}

TEST(OooCore, StoresRetireAtAcceptance) {
  std::vector<MicroOp> ops;
  for (int i = 0; i < 100; ++i) ops.push_back(store(static_cast<Addr>(i) * 64));
  Harness h(wide_core(), ops, 50);
  const Cycle cycles = h.run();
  // If stores blocked commit for their full 50-cycle latency, the run would
  // take >= 100*50/8(lsq) cycles; store-buffer semantics keep it far lower.
  EXPECT_LT(cycles, 100u * 50u / 4u);
  EXPECT_EQ(h.core.stats().stores, 100u);
}

TEST(OooCore, LsqBoundsInFlightMemory) {
  auto cfg = wide_core();
  cfg.lsq_size = 2;
  std::vector<MicroOp> ops;
  for (int i = 0; i < 50; ++i) ops.push_back(load(static_cast<Addr>(i) * 64));
  Harness h(cfg, ops, 30);
  Cycle now = 0;
  std::size_t max_in_flight = 0;
  while (!h.core.finished() && now < 100000) {
    h.mem.tick(now);
    h.core.tick(now);
    max_in_flight = std::max(max_in_flight, h.core.in_flight_mem());
    ++now;
  }
  EXPECT_LE(max_in_flight, 2u);
}

TEST(OooCore, StallPlusOverlapEqualsMemActive) {
  std::vector<MicroOp> ops;
  for (int i = 0; i < 200; ++i) {
    ops.push_back(load(static_cast<Addr>(i) * 128));
    ops.push_back(alu());
    ops.push_back(alu());
  }
  Harness h(wide_core(), ops, 15);
  h.run();
  const auto& s = h.core.stats();
  EXPECT_EQ(s.mem_active_cycles, s.overlap_cycles + s.data_stall_cycles);
  EXPECT_GT(s.mem_active_cycles, 0u);
}

TEST(OooCore, FmemMatchesTraceComposition) {
  std::vector<MicroOp> ops;
  for (int i = 0; i < 300; ++i) {
    ops.push_back(load(static_cast<Addr>(i) * 64));
    ops.push_back(alu());
    ops.push_back(alu());
  }
  Harness h(wide_core(), ops);
  h.run();
  EXPECT_NEAR(h.core.stats().fmem(), 1.0 / 3.0, tol::kTightRel);
}

TEST(OooCore, SecondaryDependenceRespected) {
  // op2 depends (dep_dist2) on the load; with a long memory latency the ALU
  // cannot finish before the load returns.
  std::vector<MicroOp> ops;
  ops.push_back(load(0));
  MicroOp dependent = alu();
  dependent.dep_dist2 = 1;
  ops.push_back(dependent);
  Harness h(wide_core(), ops, 40);
  const Cycle cycles = h.run();
  EXPECT_GE(cycles, 40u);
  EXPECT_TRUE(h.core.finished());
}

TEST(OooCore, RejectionsCountedWhenMemPortsSaturate) {
  std::vector<MicroOp> ops;
  for (int i = 0; i < 200; ++i) ops.push_back(load(static_cast<Addr>(i) * 64));
  Harness h(wide_core(), ops, 5, /*mem_ports=*/1);
  h.run();
  EXPECT_GT(h.core.stats().l1_rejections, 0u);
  EXPECT_EQ(h.core.stats().instructions, 200u);
}

TEST(OooCore, FinishedCoreStopsAccumulatingCycles) {
  std::vector<MicroOp> ops = {alu(), alu()};
  Harness h(wide_core(), ops);
  h.run();
  const auto cycles = h.core.stats().cycles;
  // Extra ticks after completion must not change the stats.
  for (Cycle c = 0; c < 10; ++c) h.core.tick(1000 + c);
  EXPECT_EQ(h.core.stats().cycles, cycles);
}

TEST(OooCore, HeadMemStallTracked) {
  std::vector<MicroOp> ops;
  ops.push_back(load(0, 0));
  MicroOp use = alu();
  use.dep_dist2 = 1;
  ops.push_back(use);
  Harness h(CoreConfig::in_order(), ops, 30);
  h.run();
  EXPECT_GT(h.core.stats().head_mem_stall_cycles, 10u);
}

}  // namespace
}  // namespace lpm::cpu
