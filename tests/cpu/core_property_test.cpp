// Property sweeps over core configurations with randomized programs: the
// core must retire every instruction exactly once, keep its stall/overlap
// partition, respect structural limits, and stay deterministic.
#include <gtest/gtest.h>

#include <algorithm>

#include "cpu/ooo_core.hpp"
#include "mem/perfect_memory.hpp"
#include "trace/synthetic.hpp"
#include "util/rng.hpp"

namespace lpm::cpu {
namespace {

struct CoreShape {
  std::uint32_t issue;
  std::uint32_t rob;
  std::uint32_t lsq;
};

class CoreProperty : public ::testing::TestWithParam<CoreShape> {};

INSTANTIATE_TEST_SUITE_P(Sweep, CoreProperty,
                         ::testing::Values(CoreShape{1, 1, 1},
                                           CoreShape{1, 8, 4},
                                           CoreShape{2, 16, 8},
                                           CoreShape{4, 32, 16},
                                           CoreShape{8, 128, 64},
                                           CoreShape{16, 256, 128}),
                         [](const auto& info) {
                           return "i" + std::to_string(info.param.issue) +
                                  "_r" + std::to_string(info.param.rob) +
                                  "_l" + std::to_string(info.param.lsq);
                         });

CoreConfig shape_config(const CoreShape& s) {
  CoreConfig cfg;
  cfg.issue_width = s.issue;
  cfg.dispatch_width = s.issue;
  cfg.commit_width = s.issue;
  cfg.iw_size = s.rob;
  cfg.rob_size = s.rob;
  cfg.lsq_size = s.lsq;
  return cfg;
}

/// A randomized but reproducible program with gnarly dependence structure.
std::vector<trace::MicroOp> random_program(std::uint64_t seed, int n) {
  util::Rng rng(seed);
  std::vector<trace::MicroOp> ops;
  ops.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    trace::MicroOp op;
    const double roll = rng.next_double();
    if (roll < 0.4) {
      op.type = roll < 0.1 ? trace::OpType::kStore : trace::OpType::kLoad;
      op.addr = rng.next_below(64 * 1024) & ~Addr{7};
    } else {
      op.type = trace::OpType::kAlu;
      op.exec_latency = static_cast<std::uint8_t>(1 + rng.next_below(4));
    }
    if (i > 0 && rng.next_bool(0.5)) {
      op.dep_dist = static_cast<std::uint32_t>(
          1 + rng.next_below(std::min<std::uint64_t>(8, i)));
    }
    if (i > 1 && rng.next_bool(0.3)) {
      op.dep_dist2 = static_cast<std::uint32_t>(
          1 + rng.next_below(std::min<std::uint64_t>(16, i)));
    }
    ops.push_back(op);
  }
  return ops;
}

TEST_P(CoreProperty, RetiresEveryInstructionExactlyOnce) {
  const auto program = random_program(GetParam().rob * 31 + 7, 5000);
  trace::VectorTrace t("fuzz", program);
  mem::PerfectMemory memory(12, 2);
  OooCore core(shape_config(GetParam()), &t, &memory, 1);
  Cycle now = 0;
  while (!core.finished() && now < 400000) {
    memory.tick(now);
    core.tick(now);
    ++now;
  }
  ASSERT_TRUE(core.finished()) << "deadlock or livelock";
  EXPECT_EQ(core.stats().instructions, program.size());
  std::uint64_t mem_ops = 0;
  for (const auto& op : program) {
    if (trace::is_memory(op.type)) ++mem_ops;
  }
  EXPECT_EQ(core.stats().mem_ops, mem_ops);
  EXPECT_EQ(core.in_flight_mem(), 0u);
}

TEST_P(CoreProperty, StallOverlapPartitionHolds) {
  const auto program = random_program(17, 4000);
  trace::VectorTrace t("fuzz", program);
  mem::PerfectMemory memory(20, 1);
  OooCore core(shape_config(GetParam()), &t, &memory, 1);
  Cycle now = 0;
  while (!core.finished() && now < 400000) {
    memory.tick(now);
    core.tick(now);
    ++now;
  }
  ASSERT_TRUE(core.finished());
  const auto& s = core.stats();
  EXPECT_EQ(s.mem_active_cycles, s.overlap_cycles + s.data_stall_cycles);
  EXPECT_LE(s.data_stall_cycles, s.cycles);
  EXPECT_LE(s.head_mem_stall_cycles, s.cycles);
  EXPECT_GE(s.cycles, s.instructions / shape_config(GetParam()).issue_width);
}

TEST_P(CoreProperty, LsqNeverExceeded) {
  const auto program = random_program(23, 3000);
  trace::VectorTrace t("fuzz", program);
  mem::PerfectMemory memory(30, 4);
  OooCore core(shape_config(GetParam()), &t, &memory, 1);
  Cycle now = 0;
  std::size_t peak = 0;
  while (!core.finished() && now < 400000) {
    memory.tick(now);
    core.tick(now);
    peak = std::max(peak, core.in_flight_mem());
    ++now;
  }
  ASSERT_TRUE(core.finished());
  EXPECT_LE(peak, shape_config(GetParam()).lsq_size);
}

TEST_P(CoreProperty, WiderIsNeverSlowerOnIndependentWork) {
  // Pure independent ALU work: cycles must not increase with issue width.
  std::vector<trace::MicroOp> ops(3000);
  for (auto& op : ops) op.type = trace::OpType::kAlu;
  const auto run = [&](const CoreConfig& cfg) {
    trace::VectorTrace t("alu", ops);
    mem::PerfectMemory memory(5);
    OooCore core(cfg, &t, &memory, 1);
    Cycle now = 0;
    while (!core.finished() && now < 100000) {
      memory.tick(now);
      core.tick(now);
      ++now;
    }
    return core.stats().cycles;
  };
  const Cycle mine = run(shape_config(GetParam()));
  const Cycle narrow = run(shape_config(CoreShape{1, 1, 1}));
  EXPECT_LE(mine, narrow);
}

TEST_P(CoreProperty, Determinism) {
  const auto program = random_program(29, 2500);
  const auto run_once = [&] {
    trace::VectorTrace t("fuzz", program);
    mem::PerfectMemory memory(15, 2);
    OooCore core(shape_config(GetParam()), &t, &memory, 1);
    Cycle now = 0;
    while (!core.finished() && now < 400000) {
      memory.tick(now);
      core.tick(now);
      ++now;
    }
    return std::make_pair(core.stats().cycles, core.stats().data_stall_cycles);
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace lpm::cpu
