#include "sched/hsp.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace lpm::sched {
namespace {

TEST(Hsp, PerfectSharingGivesOne) {
  EXPECT_DOUBLE_EQ(harmonic_weighted_speedup({1.0, 2.0, 3.0}, {1.0, 2.0, 3.0}),
                   1.0);
}

TEST(Hsp, UniformSlowdownGivesThatFactor) {
  EXPECT_NEAR(harmonic_weighted_speedup({2.0, 4.0}, {1.0, 2.0}), 0.5, 1e-12);
}

TEST(Hsp, HarmonicMeanPenalizesImbalance) {
  // One program crawling dominates the harmonic mean.
  const double balanced = harmonic_weighted_speedup({1, 1}, {0.8, 0.8});
  const double skewed = harmonic_weighted_speedup({1, 1}, {1.0, 0.6});
  EXPECT_GT(balanced, skewed);
}

TEST(Hsp, MatchesHandComputedExample) {
  // WS = {0.5, 1.0}; Hsp = 2 / (2 + 1) = 2/3.
  EXPECT_NEAR(harmonic_weighted_speedup({2.0, 3.0}, {1.0, 3.0}), 2.0 / 3.0,
              1e-12);
}

TEST(Hsp, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(harmonic_weighted_speedup({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(harmonic_weighted_speedup({1.0}, {0.0}), 0.0);
  EXPECT_DOUBLE_EQ(harmonic_weighted_speedup({0.0}, {1.0}), 0.0);
}

TEST(Hsp, SizeMismatchThrows) {
  EXPECT_THROW(harmonic_weighted_speedup({1.0}, {1.0, 2.0}), util::LpmError);
}

TEST(Hsp, SpeedupAboveOnePossible) {
  // Constructive sharing (e.g. prefetch effects) can exceed 1.
  EXPECT_GT(harmonic_weighted_speedup({1.0}, {1.2}), 1.0);
}

TEST(WeightedSpeedup, SumsPerProgramRatios) {
  EXPECT_DOUBLE_EQ(weighted_speedup({2.0, 4.0}, {1.0, 2.0}), 1.0);
  EXPECT_DOUBLE_EQ(weighted_speedup({1.0, 1.0}, {1.0, 1.0}), 2.0);
  EXPECT_DOUBLE_EQ(weighted_speedup({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(weighted_speedup({1.0}, {0.0}), 0.0);
  EXPECT_THROW(weighted_speedup({1.0}, {1.0, 2.0}), util::LpmError);
}

TEST(MinWeightedSpeedup, ReportsFairnessFloor) {
  EXPECT_DOUBLE_EQ(min_weighted_speedup({1.0, 2.0}, {0.9, 0.5}), 0.25);
  EXPECT_DOUBLE_EQ(min_weighted_speedup({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(min_weighted_speedup({0.0}, {1.0}), 0.0);
  EXPECT_THROW(min_weighted_speedup({1.0}, {}), util::LpmError);
}

TEST(Metrics, HarmonicLiesBelowArithmeticPerProgramMean) {
  const std::vector<double> alone = {1.0, 1.0, 1.0};
  const std::vector<double> shared = {0.9, 0.5, 0.7};
  const double hsp = harmonic_weighted_speedup(alone, shared);
  const double mean_ws = weighted_speedup(alone, shared) / 3.0;
  EXPECT_LE(hsp, mean_ws);
  EXPECT_GE(hsp, min_weighted_speedup(alone, shared));
}

}  // namespace
}  // namespace lpm::sched
