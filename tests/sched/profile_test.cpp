#include "sched/profile.hpp"

#include <gtest/gtest.h>

#include "trace/spec_like.hpp"
#include "util/error.hpp"

namespace lpm::sched {
namespace {

const std::vector<std::uint64_t> kSizes = {4096, 16384, 32768, 65536};

AppProfile profile_of(trace::SpecBenchmark b, std::uint64_t length = 8000) {
  Profiler profiler(sim::MachineConfig::nuca16());
  return profiler.profile(trace::spec_profile(b, length, 31), kSizes);
}

TEST(Profiler, ProducesOnePointPerSize) {
  const auto p = profile_of(trace::SpecBenchmark::kBzip2);
  ASSERT_EQ(p.by_size.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(p.by_size[i].l1_size_bytes, kSizes[i]);
    EXPECT_GT(p.by_size[i].apc1, 0.0);
    EXPECT_GT(p.by_size[i].ipc, 0.0);
  }
  EXPECT_GT(p.cpi_exe, 0.0);
  EXPECT_GT(p.fmem, 0.0);
}

TEST(Profiler, AtSizeLooksUpAndThrowsOnMissing) {
  const auto p = profile_of(trace::SpecBenchmark::kBzip2);
  EXPECT_EQ(p.at_size(16384).l1_size_bytes, 16384u);
  EXPECT_THROW(p.at_size(999), util::LpmError);
}

TEST(Profiler, Bzip2IsInsensitiveToL1Size) {
  // Fig. 6: 4 KB is large enough for 401.bzip2.
  const auto p = profile_of(trace::SpecBenchmark::kBzip2, 12000);
  const double small = p.by_size.front().apc1;
  const double big = p.by_size.back().apc1;
  EXPECT_NEAR(big, small, 0.10 * big);
}

TEST(Profiler, GccGainsFromEveryStep) {
  // Fig. 6: 403.gcc needs 64 KB for optimal APC1.
  const auto p = profile_of(trace::SpecBenchmark::kGcc, 12000);
  EXPECT_GT(p.by_size.back().apc1, p.by_size.front().apc1 * 1.1);
  // Fig. 7: and its L2 demand falls with L1 size.
  EXPECT_LT(p.by_size.back().apc2, p.by_size.front().apc2 * 0.8);
}

TEST(Profiler, MilcL2DemandInsensitiveToL1) {
  // Fig. 7: 433.milc's APC2 barely moves with L1 size.
  const auto p = profile_of(trace::SpecBenchmark::kMilc, 12000);
  const double small = p.by_size.front().apc2;
  const double big = p.by_size.back().apc2;
  EXPECT_NEAR(big, small, 0.25 * small);
}

TEST(Profiler, LargerL1NeverHurtsLpmr1Much) {
  for (const auto b : {trace::SpecBenchmark::kGcc, trace::SpecBenchmark::kGamess,
                       trace::SpecBenchmark::kBzip2}) {
    const auto p = profile_of(b);
    for (std::size_t i = 1; i < p.by_size.size(); ++i) {
      EXPECT_LE(p.by_size[i].lpmr1, p.by_size[i - 1].lpmr1 * 1.15)
          << p.name << " size " << p.by_size[i].l1_size_bytes;
    }
  }
}

TEST(Profiler, EmptySizesThrow) {
  Profiler profiler(sim::MachineConfig::nuca16());
  EXPECT_THROW(profiler.profile(trace::spec_profile(trace::SpecBenchmark::kGcc),
                                {}),
               util::LpmError);
}

}  // namespace
}  // namespace lpm::sched
