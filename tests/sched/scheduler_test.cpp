#include "sched/scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "sched/evaluate.hpp"
#include "trace/spec_like.hpp"
#include "util/error.hpp"

namespace lpm::sched {
namespace {

const std::vector<std::uint64_t> kSizes = {4096, 16384, 32768, 65536};

/// Four contrasting apps on a 4-core heterogeneous machine: one slot per
/// size. Small runs keep the suite fast; the full 16-core experiment lives
/// in bench_fig8.
struct Fixture {
  Fixture() {
    machine = sim::MachineConfig::nuca16();
    machine.num_cores = 4;
    machine.l1_size_per_core = kSizes;
    machine.l1.num_cores = 4;
    machine.l2.num_cores = 4;

    Profiler profiler(machine);
    for (const auto b :
         {trace::SpecBenchmark::kBzip2, trace::SpecBenchmark::kGcc,
          trace::SpecBenchmark::kMilc, trace::SpecBenchmark::kGamess}) {
      apps.push_back(profiler.profile(trace::spec_profile(b, 20000, 41), kSizes));
    }
  }
  sim::MachineConfig machine;
  std::vector<AppProfile> apps;
};

Fixture& fixture() {
  static Fixture f;  // profiling is expensive; share across tests
  return f;
}

bool is_permutation_schedule(const Schedule& s) {
  std::set<std::size_t> seen(s.begin(), s.end());
  return seen.size() == s.size() &&
         *std::max_element(s.begin(), s.end()) == s.size() - 1;
}

TEST(RandomScheduler, ProducesSeededPermutations) {
  auto& f = fixture();
  RandomScheduler a(7);
  RandomScheduler b(7);
  const auto sa = a.assign(f.apps, f.machine.l1_size_per_core);
  const auto sb = b.assign(f.apps, f.machine.l1_size_per_core);
  EXPECT_EQ(sa, sb);
  EXPECT_TRUE(is_permutation_schedule(sa));
}

TEST(RandomScheduler, DifferentSeedsDiffer) {
  auto& f = fixture();
  RandomScheduler a(1);
  RandomScheduler b(2);
  int diffs = 0;
  for (int i = 0; i < 5; ++i) {
    if (a.assign(f.apps, f.machine.l1_size_per_core) !=
        b.assign(f.apps, f.machine.l1_size_per_core)) {
      ++diffs;
    }
  }
  EXPECT_GT(diffs, 0);
}

TEST(RoundRobinScheduler, IdentityMapping) {
  auto& f = fixture();
  RoundRobinScheduler rr;
  const auto s = rr.assign(f.apps, f.machine.l1_size_per_core);
  for (std::size_t i = 0; i < s.size(); ++i) EXPECT_EQ(s[i], i);
}

TEST(NucaSa, SchedulesAreValidPermutations) {
  auto& f = fixture();
  NucaSaScheduler fg(1.0);
  NucaSaScheduler cg(10.0);
  EXPECT_TRUE(is_permutation_schedule(fg.assign(f.apps, f.machine.l1_size_per_core)));
  EXPECT_TRUE(is_permutation_schedule(cg.assign(f.apps, f.machine.l1_size_per_core)));
}

TEST(NucaSa, NamesDistinguishGranularity) {
  EXPECT_EQ(NucaSaScheduler(1.0).name(), "NUCA-SA (fg)");
  EXPECT_EQ(NucaSaScheduler(10.0).name(), "NUCA-SA (cg)");
}

TEST(NucaSa, CacheHungryAppGetsBiggerCacheThanCacheFriendlyApp) {
  auto& f = fixture();
  NucaSaScheduler fg(1.0);
  const auto s = fg.assign(f.apps, f.machine.l1_size_per_core);
  // apps: 0=bzip2 (tiny WS), 1=gcc (wants 64K).
  const auto size_of = [&](std::size_t app) {
    return f.machine.l1_size_per_core[s[app]];
  };
  EXPECT_GE(size_of(1), size_of(0));
}

TEST(NucaSa, PreferredSizeMonotoneInDelta) {
  auto& f = fixture();
  NucaSaScheduler fg(1.0);
  NucaSaScheduler cg(10.0);
  for (const auto& app : f.apps) {
    EXPECT_GE(fg.preferred_size(app), cg.preferred_size(app)) << app.name;
  }
}

TEST(NucaSa, InvalidDeltaThrows) {
  EXPECT_THROW(NucaSaScheduler(0.0), util::LpmError);
}

TEST(Scheduler, MismatchedInputsThrow) {
  auto& f = fixture();
  RoundRobinScheduler rr;
  std::vector<std::uint64_t> three_sizes = {4096, 16384, 32768};
  EXPECT_THROW(rr.assign(f.apps, three_sizes), util::LpmError);
}

TEST(Evaluate, CoRunProducesHspInUnitRange) {
  auto& f = fixture();
  RoundRobinScheduler rr;
  const auto s = rr.assign(f.apps, f.machine.l1_size_per_core);
  const auto r = evaluate_schedule(f.machine, f.apps, s, rr.name());
  EXPECT_GT(r.hsp, 0.0);
  EXPECT_LE(r.hsp, 1.05);  // sharing rarely speeds things up
  ASSERT_EQ(r.ipc_alone.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_GT(r.ipc_shared[i], 0.0);
    EXPECT_LE(r.ipc_shared[i], r.ipc_alone[i] * 1.1);
  }
}

TEST(Evaluate, RejectsNonPermutation) {
  auto& f = fixture();
  Schedule bad = {0, 0, 1, 2};
  EXPECT_THROW(evaluate_schedule(f.machine, f.apps, bad, "bad"),
               util::LpmError);
}

TEST(Evaluate, NucaSaBeatsOrMatchesRandomOnContrastedMix) {
  auto& f = fixture();
  NucaSaScheduler fg(1.0);
  const auto s_fg = fg.assign(f.apps, f.machine.l1_size_per_core);
  const auto r_fg = evaluate_schedule(f.machine, f.apps, s_fg, fg.name());

  // Average a few random placements.
  RandomScheduler rnd(5);
  double sum = 0.0;
  const int kRuns = 3;
  for (int i = 0; i < kRuns; ++i) {
    const auto s = rnd.assign(f.apps, f.machine.l1_size_per_core);
    sum += evaluate_schedule(f.machine, f.apps, s, "Random").hsp;
  }
  // On this tiny 4-app mix the margin is small; the full 16-app experiment
  // (bench_fig8) shows the paper-scale gap. Here we only require NUCA-SA
  // not to lose to random placement.
  EXPECT_GE(r_fg.hsp, (sum / kRuns) * 0.97);
}

}  // namespace
}  // namespace lpm::sched
