// Three-cache-level hierarchy ("the extension to additional cache levels is
// straightforward", paper SIII): L1 -> private L2 -> shared LLC -> DRAM.
#include <gtest/gtest.h>
#include "common/tolerance.hpp"

#include <memory>

#include "camat/metrics.hpp"
#include "core/lpm_model.hpp"
#include "sim/system.hpp"
#include "trace/spec_like.hpp"
#include "trace/synthetic.hpp"

namespace lpm::sim {
namespace {

std::vector<trace::TraceSourcePtr> one_trace(const trace::WorkloadProfile& p) {
  std::vector<trace::TraceSourcePtr> v;
  v.push_back(std::make_unique<trace::SyntheticTrace>(p));
  return v;
}

SystemResult run_three_level(const trace::WorkloadProfile& p,
                             MachineConfig m = MachineConfig::three_level_default()) {
  System sys(m, one_trace(p));
  return sys.run();
}

TEST(ThreeLevel, ConfigValidates) {
  EXPECT_NO_THROW(MachineConfig::three_level_default().validate());
}

TEST(ThreeLevel, RunCompletesAndPopulatesAllLevels) {
  const auto p = trace::spec_profile(trace::SpecBenchmark::kGcc, 20000, 44);
  const auto r = run_three_level(p);
  ASSERT_TRUE(r.completed);
  ASSERT_TRUE(r.has_private_l2());
  ASSERT_EQ(r.l2_private.size(), 1u);
  EXPECT_EQ(r.cores[0].instructions, 20000u);
  EXPECT_GT(r.l2_private[0].accesses, 0u);
}

TEST(ThreeLevel, TrafficFiltersThroughEachLevel) {
  auto p = trace::spec_profile(trace::SpecBenchmark::kSoplex, 30000, 45);
  const auto r = run_three_level(p);
  ASSERT_TRUE(r.completed);
  // Demand traffic shrinks down the hierarchy.
  EXPECT_GT(r.l1_cache[0].accesses, r.l2_private[0].accesses);
  EXPECT_GT(r.l2_private[0].accesses, 0u);
  EXPECT_GE(r.l2_private[0].accesses, r.l2.accesses);
  // Private-L2 demand accesses = L1 fills (demand + prefetch).
  EXPECT_EQ(r.l2_private[0].accesses,
            r.l1_cache[0].misses - r.l1_cache[0].mshr_coalesced +
                r.l1_cache[0].prefetches_issued);
  // LLC demand accesses = private-L2 fills, same law one level down.
  EXPECT_EQ(r.l2.accesses,
            r.l2_private_cache[0].misses - r.l2_private_cache[0].mshr_coalesced +
                r.l2_private_cache[0].prefetches_issued);
}

TEST(ThreeLevel, CamatIdentityHoldsAtEveryLevel) {
  const auto p = trace::spec_profile(trace::SpecBenchmark::kMcf, 20000, 46);
  const auto r = run_three_level(p);
  ASSERT_TRUE(r.completed);
  for (const camat::CamatMetrics* m :
       {&r.l1[0], &r.l2_private[0], &r.l2}) {
    if (m->accesses == 0) continue;
    EXPECT_NEAR(m->camat_eq2(), m->camat(), tol::eq2(m->camat()));
    EXPECT_EQ(m->active_cycles, m->hit_cycles + m->pure_miss_cycles);
  }
}

TEST(ThreeLevel, MeasurementMapsLayersCorrectly) {
  const auto p = trace::spec_profile(trace::SpecBenchmark::kGcc, 20000, 47);
  const auto machine = MachineConfig::three_level_default();
  trace::SyntheticTrace calib(p);
  const auto c = measure_cpi_exe(machine, calib);
  const auto r = run_three_level(p, machine);
  const auto m = core::AppMeasurement::from_run(r, c, 0, p.name);
  EXPECT_TRUE(m.three_cache_levels);
  EXPECT_EQ(m.l2.accesses, r.l2_private[0].accesses);
  EXPECT_EQ(m.l3.accesses, r.l2.accesses);
  EXPECT_EQ(m.mm.accesses, r.dram.accesses);
  EXPECT_DOUBLE_EQ(m.mr2, r.l2_private_cache[0].miss_rate());
  EXPECT_DOUBLE_EQ(m.mr3, r.l2_cache.miss_rate());
}

TEST(ThreeLevel, FourMatchingRatios) {
  const auto p = trace::spec_profile(trace::SpecBenchmark::kSoplex, 25000, 48);
  const auto machine = MachineConfig::three_level_default();
  trace::SyntheticTrace calib(p);
  const auto c = measure_cpi_exe(machine, calib);
  const auto r = run_three_level(p, machine);
  const auto m = core::AppMeasurement::from_run(r, c, 0, p.name);
  const auto lpmr = core::compute_lpmrs(m);
  EXPECT_GT(lpmr.lpmr1, 0.0);
  EXPECT_GT(lpmr.lpmr2, 0.0);
  EXPECT_GT(lpmr.lpmr3, 0.0);
  EXPECT_GT(lpmr.lpmr4, 0.0);  // the new (LLC, MM) ratio
}

TEST(ThreeLevel, TwoLevelMachineHasNoFourthRatio) {
  const auto p = trace::spec_profile(trace::SpecBenchmark::kGcc, 15000, 49);
  const auto machine = MachineConfig::single_core_default();
  trace::SyntheticTrace calib(p);
  const auto c = measure_cpi_exe(machine, calib);
  System sys(machine, one_trace(p));
  const auto r = sys.run();
  const auto m = core::AppMeasurement::from_run(r, c, 0, p.name);
  EXPECT_FALSE(m.three_cache_levels);
  EXPECT_DOUBLE_EQ(core::compute_lpmrs(m).lpmr4, 0.0);
  EXPECT_TRUE(r.l2_private.empty());
}

TEST(ThreeLevel, Eq7StillExact) {
  const auto p = trace::spec_profile(trace::SpecBenchmark::kGamess, 20000, 50);
  const auto machine = MachineConfig::three_level_default();
  trace::SyntheticTrace calib(p);
  const auto c = measure_cpi_exe(machine, calib);
  const auto r = run_three_level(p, machine);
  const auto m = core::AppMeasurement::from_run(r, c, 0, p.name);
  EXPECT_NEAR(core::stall_eq7(m), m.measured_stall_per_instr,
              tol::eq7(m.measured_stall_per_instr));
}

TEST(ThreeLevel, PrivateL2CutsLlcPressure) {
  // Same workload on the two-level and three-level machines: the middle
  // level must absorb traffic that previously reached the shared cache.
  auto p = trace::spec_profile(trace::SpecBenchmark::kGcc, 25000, 51);
  p.working_set_bytes = 192 * 1024;  // beyond L1, inside the private L2

  auto three = MachineConfig::three_level_default();
  const auto r3 = run_three_level(p, three);

  auto two = MachineConfig::single_core_default();
  System sys2(two, one_trace(p));
  const auto r2 = sys2.run();

  ASSERT_TRUE(r2.completed);
  ASSERT_TRUE(r3.completed);
  EXPECT_LT(r3.l2.accesses, r2.l2.accesses / 2);
}

TEST(ThreeLevel, Determinism) {
  const auto p = trace::spec_profile(trace::SpecBenchmark::kMilc, 15000, 52);
  const auto a = run_three_level(p);
  const auto b = run_three_level(p);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.l2_private[0].accesses, b.l2_private[0].accesses);
  EXPECT_EQ(a.dram_stats.reads, b.dram_stats.reads);
}

TEST(ThreeLevel, MultiCoreThreeLevel) {
  auto m = MachineConfig::three_level_default();
  m.num_cores = 4;
  m.l1.num_cores = 4;
  m.l2.num_cores = 4;
  m.private_l2.num_cores = 4;
  std::vector<trace::TraceSourcePtr> traces;
  for (int i = 0; i < 4; ++i) {
    auto p = trace::spec_profile(trace::SpecBenchmark::kHmmer, 8000,
                                 60 + static_cast<std::uint64_t>(i));
    p.addr_base = (static_cast<std::uint64_t>(i) + 1) << 30;
    traces.push_back(std::make_unique<trace::SyntheticTrace>(p));
  }
  System sys(m, std::move(traces));
  const auto r = sys.run();
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.l2_private.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(r.cores[i].instructions, 8000u);
  }
}

}  // namespace
}  // namespace lpm::sim
