// Property tests of the paper's identities on full simulator runs, swept
// across workload profiles (TEST_P): Eq. 2 == Eq. 3 exactly, Eq. 7 exactly
// (by the stall/overlap definitions of DESIGN.md), Eq. 4 within tolerance,
// and the structural inequalities between pure-miss and conventional-miss
// quantities.
#include <gtest/gtest.h>

#include <memory>

#include "camat/metrics.hpp"
#include "common/tolerance.hpp"
#include "core/lpm_model.hpp"
#include "sim/system.hpp"
#include "trace/spec_like.hpp"
#include "trace/synthetic.hpp"
#include "util/stats.hpp"

namespace lpm::sim {
namespace {

struct RunOutputs {
  SystemResult result;
  CpiExeResult calib;
  core::AppMeasurement m;
};

RunOutputs run_workload(trace::SpecBenchmark b, std::uint64_t length = 15000) {
  const auto profile = trace::spec_profile(b, length, 21);
  auto machine = MachineConfig::single_core_default();

  trace::SyntheticTrace calib_trace(profile);
  RunOutputs out;
  out.calib = measure_cpi_exe(machine, calib_trace);

  std::vector<trace::TraceSourcePtr> traces;
  traces.push_back(std::make_unique<trace::SyntheticTrace>(profile));
  System sys(machine, std::move(traces));
  out.result = sys.run();
  out.m = core::AppMeasurement::from_run(out.result, out.calib, 0,
                                         trace::spec_name(b));
  return out;
}

class InvariantsOverWorkloads
    : public ::testing::TestWithParam<trace::SpecBenchmark> {};

INSTANTIATE_TEST_SUITE_P(
    SpecLike, InvariantsOverWorkloads,
    ::testing::Values(trace::SpecBenchmark::kBwaves, trace::SpecBenchmark::kBzip2,
                      trace::SpecBenchmark::kGcc, trace::SpecBenchmark::kMcf,
                      trace::SpecBenchmark::kMilc, trace::SpecBenchmark::kGamess,
                      trace::SpecBenchmark::kSoplex,
                      trace::SpecBenchmark::kLibquantum),
    [](const auto& info) {
      std::string n = trace::spec_name(info.param);
      for (auto& ch : n) {
        if (ch == '.') ch = '_';
      }
      return n;
    });

TEST_P(InvariantsOverWorkloads, RunCompletes) {
  const auto out = run_workload(GetParam());
  EXPECT_TRUE(out.result.completed);
  EXPECT_EQ(out.result.cores[0].instructions, 15000u);
}

TEST_P(InvariantsOverWorkloads, Eq2EqualsApcIdentityAtL1) {
  const auto out = run_workload(GetParam());
  const auto& l1 = out.m.l1;
  ASSERT_GT(l1.accesses, 0u);
  EXPECT_NEAR(l1.camat_eq2(), l1.camat(), tol::eq2(l1.camat()));
}

TEST_P(InvariantsOverWorkloads, Eq2EqualsApcIdentityAtL2) {
  const auto out = run_workload(GetParam());
  const auto& l2 = out.m.l2;
  if (l2.accesses == 0) GTEST_SKIP() << "no L2 traffic";
  EXPECT_NEAR(l2.camat_eq2(), l2.camat(), tol::eq2(l2.camat()));
}

TEST_P(InvariantsOverWorkloads, Eq7StallIdentityExact) {
  // stall/instr = fmem * C-AMAT1 * (1 - overlapRatio): exact because the
  // core's mem-active cycles equal the L1's active cycles and stall/overlap
  // partition them (DESIGN.md §4).
  const auto out = run_workload(GetParam());
  const double predicted = core::stall_eq7(out.m);
  const double measured = out.m.measured_stall_per_instr;
  EXPECT_NEAR(predicted, measured, tol::eq7(measured));
}

TEST_P(InvariantsOverWorkloads, CoreMemActiveMatchesL1ActiveCycles) {
  const auto out = run_workload(GetParam());
  const auto& cs = out.result.cores[0];
  EXPECT_NEAR(static_cast<double>(cs.mem_active_cycles),
              static_cast<double>(out.m.l1.active_cycles),
              0.002 * static_cast<double>(cs.mem_active_cycles) + 2.0);
}

TEST_P(InvariantsOverWorkloads, Eq12EquivalentToEq7) {
  const auto out = run_workload(GetParam());
  // Eq. 12 is Eq. 7 rewritten through LPMR1; they must agree identically.
  EXPECT_NEAR(core::stall_eq12(out.m), core::stall_eq7(out.m),
              tol::eq12(core::stall_eq7(out.m)));
}

TEST_P(InvariantsOverWorkloads, Eq4RecursionHoldsApproximately) {
  const auto out = run_workload(GetParam());
  const auto& l1 = out.m.l1;
  if (l1.pure_misses == 0 || out.m.l2.accesses == 0) {
    GTEST_SKIP() << "no pure misses at L1";
  }
  // C-AMAT2 enters the recursion per L1 *miss* ("all the conventional
  // misses of L1 will occur on L2"): MSHR-coalesced misses share one fill,
  // so the per-fill C-AMAT would overstate the L2 term several-fold.
  const double rhs = camat::camat_recursion_eq4(
      l1.H(), l1.CH(), l1.pMR(), l1.eta1(), out.m.camat2_per_miss());
  const double lhs = l1.camat();
  // The recursion is exact when L2 residency equals L1 outstanding time;
  // queueing and MSHR waits make it approximate in a real hierarchy.
  EXPECT_NEAR(rhs, lhs, tol::model_error(lhs));
}

TEST_P(InvariantsOverWorkloads, Eq13MatchesEq7WithinModelError) {
  const auto out = run_workload(GetParam());
  if (out.m.l1.pure_misses == 0) GTEST_SKIP();
  const double e13 = core::stall_eq13(out.m);
  const double e7 = core::stall_eq7(out.m);
  EXPECT_NEAR(e13, e7, tol::model_error(e7));
}

TEST_P(InvariantsOverWorkloads, PureMissBoundedByMiss) {
  const auto out = run_workload(GetParam());
  const auto& l1 = out.m.l1;
  EXPECT_LE(l1.pure_misses, l1.misses);
  EXPECT_LE(l1.pMR(), l1.MR());
  EXPECT_LE(l1.pure_miss_cycles, l1.miss_cycles);
}

TEST_P(InvariantsOverWorkloads, CamatNeverExceedsAmat) {
  const auto out = run_workload(GetParam());
  EXPECT_LE(out.m.l1.camat(), out.m.l1.amat() + tol::kTightRel);
}

TEST_P(InvariantsOverWorkloads, ActiveCyclesPartitionIntoHitAndPure) {
  const auto out = run_workload(GetParam());
  const auto& l1 = out.m.l1;
  EXPECT_EQ(l1.active_cycles, l1.hit_cycles + l1.pure_miss_cycles);
}

TEST_P(InvariantsOverWorkloads, HitPhaseCyclesEqualAccessesTimesLatency) {
  const auto out = run_workload(GetParam());
  const auto& l1 = out.m.l1;
  // Every demand access spends exactly hit_latency cycles in lookup.
  EXPECT_EQ(l1.hit_phase_access_cycles, l1.accesses * 3);
  EXPECT_DOUBLE_EQ(l1.H(), 3.0);
}

TEST_P(InvariantsOverWorkloads, OverlapRatioWithinUnitInterval) {
  const auto out = run_workload(GetParam());
  EXPECT_GE(out.m.overlap_ratio, 0.0);
  EXPECT_LE(out.m.overlap_ratio, 1.0);
}

TEST_P(InvariantsOverWorkloads, CpiDecomposition) {
  // CPI ~= CPIexe + stall/instr (Eq. 5); approximate because busy CPI in
  // the real run differs slightly from the perfect-cache CPIexe.
  const auto out = run_workload(GetParam());
  const double lhs = out.m.measured_cpi;
  const double rhs = out.m.cpi_exe + out.m.measured_stall_per_instr;
  EXPECT_NEAR(lhs, rhs, tol::kCpiDecompositionRel * lhs);
}

TEST_P(InvariantsOverWorkloads, LpmrsArePositive) {
  const auto out = run_workload(GetParam());
  const auto lpmr = core::compute_lpmrs(out.m);
  EXPECT_GT(lpmr.lpmr1, 0.0);
  EXPECT_GE(lpmr.lpmr2, 0.0);
  EXPECT_GE(lpmr.lpmr3, 0.0);
}

TEST(InvariantsMisc, MorePararallelHardwareReducesStall) {
  const auto profile = trace::spec_profile(trace::SpecBenchmark::kBwaves, 15000, 3);
  auto weak = MachineConfig::single_core_default();
  weak.core.issue_width = 1;
  weak.core.dispatch_width = 1;
  weak.core.commit_width = 1;
  weak.core.iw_size = 8;
  weak.core.rob_size = 8;
  weak.core.lsq_size = 8;
  weak.l1.mshr_entries = 1;

  auto strong = MachineConfig::single_core_default();
  strong.core.issue_width = 8;
  strong.core.dispatch_width = 8;
  strong.core.commit_width = 8;
  strong.core.iw_size = 128;
  strong.core.rob_size = 128;
  strong.core.lsq_size = 64;
  strong.l1.mshr_entries = 16;
  strong.l1.ports = 4;

  std::vector<trace::TraceSourcePtr> t1;
  t1.push_back(std::make_unique<trace::SyntheticTrace>(profile));
  System weak_sys(weak, std::move(t1));
  const auto weak_run = weak_sys.run();

  std::vector<trace::TraceSourcePtr> t2;
  t2.push_back(std::make_unique<trace::SyntheticTrace>(profile));
  System strong_sys(strong, std::move(t2));
  const auto strong_run = strong_sys.run();

  EXPECT_LT(strong_run.cycles, weak_run.cycles);
  EXPECT_LT(strong_run.cores[0].stall_per_instr(),
            weak_run.cores[0].stall_per_instr());
}

}  // namespace
}  // namespace lpm::sim
