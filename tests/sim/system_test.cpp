#include "sim/system.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "trace/spec_like.hpp"
#include "trace/synthetic.hpp"
#include "util/error.hpp"

namespace lpm::sim {
namespace {

std::vector<trace::TraceSourcePtr> one_trace(const trace::WorkloadProfile& p) {
  std::vector<trace::TraceSourcePtr> v;
  v.push_back(std::make_unique<trace::SyntheticTrace>(p));
  return v;
}

trace::WorkloadProfile small_workload(std::uint64_t length = 20000) {
  auto p = trace::spec_profile(trace::SpecBenchmark::kGcc, length, 11);
  return p;
}

TEST(MachineConfig, DefaultsValidate) {
  EXPECT_NO_THROW(MachineConfig::single_core_default().validate());
  EXPECT_NO_THROW(MachineConfig::nuca16().validate());
}

TEST(MachineConfig, Nuca16Topology) {
  const auto m = MachineConfig::nuca16();
  EXPECT_EQ(m.num_cores, 16u);
  ASSERT_EQ(m.l1_size_per_core.size(), 16u);
  EXPECT_EQ(m.l1_size_per_core[0], 4u * 1024);
  EXPECT_EQ(m.l1_size_per_core[4], 16u * 1024);
  EXPECT_EQ(m.l1_size_per_core[8], 32u * 1024);
  EXPECT_EQ(m.l1_size_per_core[15], 64u * 1024);
}

TEST(MachineConfig, MismatchedOverrideThrows) {
  auto m = MachineConfig::single_core_default();
  m.l1_size_per_core = {4096, 8192};
  EXPECT_THROW(m.validate(), util::LpmError);
}

TEST(System, RequiresOneTracePerCore) {
  auto m = MachineConfig::single_core_default();
  std::vector<trace::TraceSourcePtr> none;
  EXPECT_THROW(System(m, std::move(none)), util::LpmError);
}

TEST(System, SingleCoreRunCompletes) {
  auto m = MachineConfig::single_core_default();
  System sys(m, one_trace(small_workload()));
  const SystemResult r = sys.run();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.cores[0].instructions, 20000u);
  EXPECT_GT(r.cycles, 0u);
  EXPECT_GT(r.cores[0].ipc(), 0.0);
}

TEST(System, DeterministicAcrossRuns) {
  auto m = MachineConfig::single_core_default();
  System a(m, one_trace(small_workload()));
  System b(m, one_trace(small_workload()));
  const SystemResult ra = a.run();
  const SystemResult rb = b.run();
  EXPECT_EQ(ra.cycles, rb.cycles);
  EXPECT_EQ(ra.l1[0].accesses, rb.l1[0].accesses);
  EXPECT_EQ(ra.l1[0].misses, rb.l1[0].misses);
  EXPECT_EQ(ra.l2.accesses, rb.l2.accesses);
  EXPECT_EQ(ra.dram_stats.reads, rb.dram_stats.reads);
  EXPECT_EQ(ra.cores[0].data_stall_cycles, rb.cores[0].data_stall_cycles);
}

TEST(System, L1MissesFlowToL2AndDram) {
  auto m = MachineConfig::single_core_default();
  auto p = small_workload();
  p.working_set_bytes = 8 << 20;  // far beyond L1 and L2
  p.zipf_skew = 0.0;
  p.seq_fraction = 0.0;
  System sys(m, one_trace(p));
  const SystemResult r = sys.run();
  EXPECT_GT(r.l1_cache[0].misses, 0u);
  // Every L2 demand access is either an L1 demand fill (one per MSHR
  // allocation: misses minus coalesced) or an L1 prefetch fill.
  EXPECT_EQ(r.l2.accesses, r.l1_cache[0].misses - r.l1_cache[0].mshr_coalesced +
                               r.l1_cache[0].prefetches_issued);
  EXPECT_GT(r.dram_stats.reads, 0u);
}

TEST(System, TinyWorkingSetMostlyHitsInL1) {
  auto m = MachineConfig::single_core_default();
  auto p = small_workload();
  p.working_set_bytes = 2048;  // fits easily in 32 KB L1
  System sys(m, one_trace(p));
  const SystemResult r = sys.run();
  EXPECT_LT(r.mr1(0), 0.05);
}

TEST(System, MultiCoreRunCompletes) {
  auto m = MachineConfig::nuca16();
  m.num_cores = 4;
  m.l1_size_per_core = {4096, 16384, 32768, 65536};
  m.l1.num_cores = 4;
  m.l2.num_cores = 4;
  std::vector<trace::TraceSourcePtr> traces;
  for (int i = 0; i < 4; ++i) {
    auto p = trace::spec_profile(trace::SpecBenchmark::kBzip2, 8000,
                                 static_cast<std::uint64_t>(i) + 1);
    traces.push_back(std::make_unique<trace::SyntheticTrace>(p));
  }
  System sys(m, std::move(traces));
  const SystemResult r = sys.run();
  EXPECT_TRUE(r.completed);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(r.cores[i].instructions, 8000u) << "core " << i;
  }
  // Per-core attribution sums to aggregate L2 accesses.
  std::uint64_t sum = 0;
  for (const auto a : r.l2_cache.core_accesses) sum += a;
  EXPECT_EQ(sum, r.l2_cache.accesses);
}

TEST(System, MaxCyclesGuardReturnsIncomplete) {
  auto m = MachineConfig::single_core_default();
  m.max_cycles = 50;  // far too few
  System sys(m, one_trace(small_workload()));
  const SystemResult r = sys.run();
  EXPECT_FALSE(r.completed);
  EXPECT_LE(r.cycles, 50u);
}

TEST(MeasureCpiExe, PerfectCacheBeatsRealRuns) {
  auto m = MachineConfig::single_core_default();
  trace::SyntheticTrace calib(small_workload());
  const CpiExeResult c = measure_cpi_exe(m, calib);
  EXPECT_GT(c.cpi_exe, 0.0);
  EXPECT_NEAR(c.fmem, 0.40, 0.03);

  System sys(m, one_trace(small_workload()));
  const SystemResult r = sys.run();
  EXPECT_GE(r.cores[0].cpi(), c.cpi_exe);
}

TEST(MeasureCpiExe, TraceIsResetForReuse) {
  auto m = MachineConfig::single_core_default();
  trace::SyntheticTrace t(small_workload());
  (void)measure_cpi_exe(m, t);
  trace::MicroOp op;
  EXPECT_TRUE(t.next(op));  // positioned at the start again
}

}  // namespace
}  // namespace lpm::sim
