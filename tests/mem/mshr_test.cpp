#include "mem/mshr.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace lpm::mem {
namespace {

MshrTarget target(RequestId id) {
  MshrTarget t;
  t.id = id;
  t.kind = AccessKind::kRead;
  return t;
}

TEST(Mshr, AllocateFindRelease) {
  MshrFile f(2, 4);
  EXPECT_TRUE(f.can_allocate());
  const auto idx = f.allocate(0x1000, target(1), 5);
  EXPECT_EQ(f.in_use(), 1u);
  ASSERT_TRUE(f.find(0x1000).has_value());
  EXPECT_EQ(*f.find(0x1000), idx);
  EXPECT_FALSE(f.find(0x2000).has_value());
  const auto targets = f.release(idx);
  ASSERT_EQ(targets.size(), 1u);
  EXPECT_EQ(targets[0].id, 1u);
  EXPECT_EQ(f.in_use(), 0u);
  EXPECT_FALSE(f.find(0x1000).has_value());
}

TEST(Mshr, CoalescingUpToTargetLimit) {
  MshrFile f(1, 3);
  const auto idx = f.allocate(0x40, target(1), 0);
  EXPECT_TRUE(f.can_add_target(idx));
  f.add_target(idx, target(2));
  f.add_target(idx, target(3));
  EXPECT_FALSE(f.can_add_target(idx));
  EXPECT_THROW(f.add_target(idx, target(4)), util::LpmError);
  EXPECT_EQ(f.outstanding_targets(), 3u);
}

TEST(Mshr, ExhaustionBlocksAllocation) {
  MshrFile f(2, 2);
  f.allocate(0x0, target(1), 0);
  f.allocate(0x40, target(2), 0);
  EXPECT_FALSE(f.can_allocate());
  EXPECT_THROW(f.allocate(0x80, target(3), 0), util::LpmError);
}

TEST(Mshr, DuplicateBlockAllocationThrows) {
  MshrFile f(2, 2);
  f.allocate(0x40, target(1), 0);
  EXPECT_THROW(f.allocate(0x40, target(2), 0), util::LpmError);
}

TEST(Mshr, ReleaseRecyclesEntries) {
  MshrFile f(1, 2);
  const auto a = f.allocate(0x0, target(1), 0);
  f.release(a);
  EXPECT_TRUE(f.can_allocate());
  const auto b = f.allocate(0x40, target(2), 1);
  EXPECT_TRUE(f.find(0x40).has_value());
  EXPECT_EQ(f.entry(b).allocated, 1u);
}

TEST(Mshr, ValidEntriesEnumerates) {
  MshrFile f(4, 2);
  f.allocate(0x0, target(1), 0);
  f.allocate(0x40, target(2), 0);
  const auto v = f.valid_entries();
  EXPECT_EQ(v.size(), 2u);
}

TEST(Mshr, IssueFlagPersists) {
  MshrFile f(2, 2);
  const auto idx = f.allocate(0x0, target(1), 0);
  EXPECT_FALSE(f.entry(idx).issued);
  f.entry(idx).issued = true;
  EXPECT_TRUE(f.entry(idx).issued);
  f.release(idx);
  const auto idx2 = f.allocate(0x80, target(2), 1);
  EXPECT_FALSE(f.entry(idx2).issued);  // reset on reallocation
}

TEST(Mshr, InvalidConstructionThrows) {
  EXPECT_THROW(MshrFile(0, 1), util::LpmError);
  EXPECT_THROW(MshrFile(1, 0), util::LpmError);
}

TEST(Mshr, ReleaseInvalidThrows) {
  MshrFile f(2, 2);
  EXPECT_THROW(f.release(0), util::LpmError);
}

}  // namespace
}  // namespace lpm::mem
