#include "mem/cache.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "mem/perfect_memory.hpp"
#include "util/error.hpp"

namespace lpm::mem {
namespace {

/// Collects responses and remembers arrival cycles.
class TestSink final : public ResponseSink {
 public:
  void on_response(const MemResponse& rsp) override {
    responses.push_back(rsp);
    by_id[rsp.id] = rsp;
  }
  [[nodiscard]] bool got(RequestId id) const { return by_id.count(id) > 0; }
  std::vector<MemResponse> responses;
  std::map<RequestId, MemResponse> by_id;
};

struct Harness {
  explicit Harness(CacheConfig cfg, std::uint32_t mem_latency = 20)
      : below(mem_latency), cache(std::move(cfg), &below) {}

  /// Ticks hierarchy bottom-up for one cycle.
  void tick() {
    below.tick(now);
    cache.tick(now);
    ++now;
  }
  void run_until_idle(Cycle limit = 2000) {
    const Cycle end = now + limit;
    while ((cache.busy() || below.busy()) && now < end) tick();
  }
  MemRequest read(RequestId id, Addr addr) {
    MemRequest r;
    r.id = id;
    r.core = 0;
    r.addr = addr;
    r.kind = AccessKind::kRead;
    r.created = now;
    r.reply_to = &sink;
    return r;
  }
  MemRequest write(RequestId id, Addr addr) {
    MemRequest r = read(id, addr);
    r.kind = AccessKind::kWrite;
    return r;
  }

  PerfectMemory below;
  Cache cache;
  TestSink sink;
  Cycle now = 0;
};

CacheConfig small_cache() {
  CacheConfig cfg;
  cfg.name = "L1t";
  cfg.size_bytes = 1024;  // 4 sets x 4 ways x 64B
  cfg.block_bytes = 64;
  cfg.associativity = 4;
  cfg.hit_latency = 2;
  cfg.ports = 2;
  cfg.mshr_entries = 2;
  cfg.mshr_targets = 2;
  return cfg;
}

TEST(CacheConfig, ValidationCatchesBadGeometry) {
  auto cfg = small_cache();
  cfg.block_bytes = 48;  // not a power of two
  EXPECT_THROW(cfg.validate(), util::LpmError);
  cfg = small_cache();
  cfg.size_bytes = 64;  // smaller than one set
  cfg.associativity = 4;
  EXPECT_THROW(cfg.validate(), util::LpmError);
  cfg = small_cache();
  cfg.hit_latency = 0;
  EXPECT_THROW(cfg.validate(), util::LpmError);
  cfg = small_cache();
  cfg.banks = 3;
  EXPECT_THROW(cfg.validate(), util::LpmError);
  cfg = small_cache();
  cfg.interleave_bytes = 32;  // below block size
  EXPECT_THROW(cfg.validate(), util::LpmError);
}

TEST(Cache, ColdMissThenHit) {
  Harness h(small_cache());
  h.tick();
  ASSERT_TRUE(h.cache.try_access(h.read(1, 0x100)));
  h.run_until_idle();
  ASSERT_TRUE(h.sink.got(1));
  EXPECT_EQ(h.cache.stats().misses, 1u);
  EXPECT_TRUE(h.cache.contains_block(0x100));

  const Cycle before = h.now;
  ASSERT_TRUE(h.cache.try_access(h.read(2, 0x100)));
  h.run_until_idle();
  ASSERT_TRUE(h.sink.got(2));
  EXPECT_EQ(h.cache.stats().hits, 1u);
  // Hit completes in exactly hit_latency cycles.
  EXPECT_EQ(h.sink.by_id[2].completed, before + 2 - 1);
}

TEST(Cache, MissLatencyIncludesLowerLevel) {
  Harness h(small_cache(), 20);
  h.tick();
  const Cycle start = h.now - 1;  // accept cycle = last ticked cycle
  ASSERT_TRUE(h.cache.try_access(h.read(1, 0x40)));
  h.run_until_idle();
  ASSERT_TRUE(h.sink.got(1));
  // At least lookup (2) + memory (20).
  EXPECT_GE(h.sink.by_id[1].completed - start, 22u);
}

TEST(Cache, CoalescesSameBlockMisses) {
  Harness h(small_cache());
  h.tick();
  ASSERT_TRUE(h.cache.try_access(h.read(1, 0x200)));
  ASSERT_TRUE(h.cache.try_access(h.read(2, 0x220)));  // same 64B block
  h.run_until_idle();
  EXPECT_TRUE(h.sink.got(1));
  EXPECT_TRUE(h.sink.got(2));
  EXPECT_EQ(h.cache.stats().misses, 2u);
  EXPECT_EQ(h.cache.stats().mshr_coalesced, 1u);
  // Only one fill went below.
  EXPECT_EQ(h.below.accesses(), 1u);
}

TEST(Cache, PortLimitRejectsExcessAccesses) {
  Harness h(small_cache());  // 2 ports
  h.tick();
  EXPECT_TRUE(h.cache.try_access(h.read(1, 0x000)));
  EXPECT_TRUE(h.cache.try_access(h.read(2, 0x400)));
  EXPECT_FALSE(h.cache.try_access(h.read(3, 0x800)));
  EXPECT_EQ(h.cache.stats().rejected_ports, 1u);
  h.tick();  // next cycle frees the ports
  EXPECT_TRUE(h.cache.try_access(h.read(3, 0x800)));
}

TEST(Cache, BankConflictRejects) {
  auto cfg = small_cache();
  cfg.ports = 4;
  cfg.banks = 2;
  cfg.interleave_bytes = 64;
  Harness h(cfg);
  h.tick();
  // 0x000 and 0x080 share bank 0 (64B interleave, 2 banks); per-bank limit
  // is max(1, 4/2) = 2, so a third same-bank access bounces.
  EXPECT_TRUE(h.cache.try_access(h.read(1, 0x000)));
  EXPECT_TRUE(h.cache.try_access(h.read(2, 0x080)));
  EXPECT_FALSE(h.cache.try_access(h.read(3, 0x100)));
  EXPECT_EQ(h.cache.stats().rejected_bank, 1u);
  // A different bank still has room.
  EXPECT_TRUE(h.cache.try_access(h.read(4, 0x040)));
}

TEST(Cache, MshrExhaustionDelaysButCompletes) {
  auto cfg = small_cache();
  cfg.mshr_entries = 1;
  cfg.ports = 4;
  Harness h(cfg, 30);
  h.tick();
  ASSERT_TRUE(h.cache.try_access(h.read(1, 0x000)));
  ASSERT_TRUE(h.cache.try_access(h.read(2, 0x400)));
  ASSERT_TRUE(h.cache.try_access(h.read(3, 0x800)));
  h.run_until_idle();
  EXPECT_TRUE(h.sink.got(1));
  EXPECT_TRUE(h.sink.got(2));
  EXPECT_TRUE(h.sink.got(3));
  EXPECT_GT(h.cache.stats().mshr_full_waits, 0u);
  // Misses were serialized by the single MSHR: 2 and 3 finish much later.
  EXPECT_GT(h.sink.by_id[3].completed, h.sink.by_id[1].completed + 25);
}

TEST(Cache, EvictionKeepsWorkingSetBounded) {
  Harness h(small_cache());  // 4 sets x 4 ways
  h.tick();
  // Walk 8 blocks mapping to set 0 (stride = 4 sets * 64B = 256B).
  RequestId id = 1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(h.cache.try_access(h.read(id++, 0x100u * 0 + 256u * i)));
    h.run_until_idle();
  }
  EXPECT_EQ(h.cache.stats().evictions, 4u);  // 8 fills into 4 ways
  // The most recent block is resident; the first is long gone.
  EXPECT_TRUE(h.cache.contains_block(256u * 7));
  EXPECT_FALSE(h.cache.contains_block(0));
}

TEST(Cache, DirtyEvictionWritesBack) {
  Harness h(small_cache());
  h.tick();
  ASSERT_TRUE(h.cache.try_access(h.write(1, 0x000)));
  h.run_until_idle();
  EXPECT_TRUE(h.cache.block_dirty(0x000));
  const auto mem_accesses_before = h.below.accesses();
  // Evict block 0 by filling set 0 with 4 more blocks.
  RequestId id = 10;
  for (int i = 1; i <= 4; ++i) {
    ASSERT_TRUE(h.cache.try_access(h.read(id++, 256u * i)));
    h.run_until_idle();
  }
  EXPECT_FALSE(h.cache.contains_block(0x000));
  EXPECT_EQ(h.cache.stats().writebacks, 1u);
  // 4 fills + 1 writeback reached the lower level.
  EXPECT_EQ(h.below.accesses() - mem_accesses_before, 5u);
}

TEST(Cache, StoreMissAllocates) {
  Harness h(small_cache());
  h.tick();
  ASSERT_TRUE(h.cache.try_access(h.write(1, 0x300)));
  h.run_until_idle();
  EXPECT_TRUE(h.sink.got(1));
  EXPECT_TRUE(h.cache.contains_block(0x300));
  EXPECT_TRUE(h.cache.block_dirty(0x300));
}

TEST(Cache, WritebackFromAboveHitMarksDirty) {
  Harness h(small_cache());
  h.tick();
  ASSERT_TRUE(h.cache.try_access(h.read(1, 0x140)));
  h.run_until_idle();
  EXPECT_FALSE(h.cache.block_dirty(0x140));
  MemRequest wb;
  wb.id = 99;
  wb.addr = 0x140;
  wb.kind = AccessKind::kWrite;
  wb.reply_to = nullptr;  // fire-and-forget writeback
  ASSERT_TRUE(h.cache.try_access(wb));
  h.run_until_idle();
  EXPECT_TRUE(h.cache.block_dirty(0x140));
  EXPECT_EQ(h.cache.stats().writeback_hits, 1u);
  // Writebacks are not demand accesses.
  EXPECT_EQ(h.cache.stats().accesses, 1u);
}

TEST(Cache, WritebackMissForwardsDownstream) {
  Harness h(small_cache());
  h.tick();
  MemRequest wb;
  wb.id = 99;
  wb.addr = 0x5000;
  wb.kind = AccessKind::kWrite;
  wb.reply_to = nullptr;
  const auto before = h.below.accesses();
  ASSERT_TRUE(h.cache.try_access(wb));
  h.run_until_idle();
  EXPECT_EQ(h.cache.stats().writeback_forwards, 1u);
  EXPECT_EQ(h.below.accesses() - before, 1u);
  EXPECT_FALSE(h.cache.contains_block(0x5000));  // no allocate on wb miss
}

TEST(Cache, PerCoreAttribution) {
  auto cfg = small_cache();
  cfg.num_cores = 2;
  Harness h(cfg);
  h.tick();
  MemRequest r = h.read(1, 0x000);
  r.core = 0;
  ASSERT_TRUE(h.cache.try_access(r));
  h.run_until_idle();
  MemRequest r2 = h.read(2, 0x1000);
  r2.core = 1;
  ASSERT_TRUE(h.cache.try_access(r2));
  h.run_until_idle();
  MemRequest r3 = h.read(3, 0x000);  // hit for core 1
  r3.core = 1;
  ASSERT_TRUE(h.cache.try_access(r3));
  h.run_until_idle();
  EXPECT_EQ(h.cache.stats().core_accesses[0], 1u);
  EXPECT_EQ(h.cache.stats().core_accesses[1], 2u);
  EXPECT_EQ(h.cache.stats().core_misses[0], 1u);
  EXPECT_EQ(h.cache.stats().core_misses[1], 1u);
}

TEST(Cache, MissRateComputation) {
  Harness h(small_cache());
  h.tick();
  ASSERT_TRUE(h.cache.try_access(h.read(1, 0x0)));
  h.run_until_idle();
  ASSERT_TRUE(h.cache.try_access(h.read(2, 0x0)));
  h.run_until_idle();
  ASSERT_TRUE(h.cache.try_access(h.read(3, 0x8)));
  h.run_until_idle();
  ASSERT_TRUE(h.cache.try_access(h.read(4, 0x1000)));
  h.run_until_idle();
  EXPECT_DOUBLE_EQ(h.cache.stats().miss_rate(), 0.5);
}

TEST(Cache, BusyReflectsInFlightWork) {
  Harness h(small_cache());
  h.tick();
  EXPECT_FALSE(h.cache.busy());
  ASSERT_TRUE(h.cache.try_access(h.read(1, 0x40)));
  EXPECT_TRUE(h.cache.busy());
  h.run_until_idle();
  EXPECT_FALSE(h.cache.busy());
}

}  // namespace
}  // namespace lpm::mem
