// Property sweeps over DRAM configurations: randomized request streams must
// be answered exactly once, never faster than the physical minimum, and the
// controller must stay deterministic and starvation-free.
#include <gtest/gtest.h>

#include <map>

#include "mem/dram.hpp"
#include "util/rng.hpp"

namespace lpm::mem {
namespace {

struct DramShape {
  std::uint32_t banks;
  std::uint32_t issue;
  std::uint32_t queue;
};

class DramProperty : public ::testing::TestWithParam<DramShape> {};

INSTANTIATE_TEST_SUITE_P(Sweep, DramProperty,
                         ::testing::Values(DramShape{1, 1, 4},
                                           DramShape{2, 1, 8},
                                           DramShape{8, 2, 32},
                                           DramShape{16, 4, 64},
                                           DramShape{64, 8, 128}),
                         [](const auto& info) {
                           return "b" + std::to_string(info.param.banks) +
                                  "_i" + std::to_string(info.param.issue) +
                                  "_q" + std::to_string(info.param.queue);
                         });

class LatencySink final : public ResponseSink {
 public:
  void on_response(const MemResponse& rsp) override {
    ++count;
    ++per_id[rsp.id];
    completed_at[rsp.id] = rsp.completed;
  }
  std::uint64_t count = 0;
  std::map<RequestId, int> per_id;
  std::map<RequestId, Cycle> completed_at;
};

DramConfig shape_config(const DramShape& s) {
  DramConfig cfg;
  cfg.banks = s.banks;
  cfg.max_issue_per_cycle = s.issue;
  cfg.queue_capacity = s.queue;
  cfg.t_rcd = 10;
  cfg.t_cl = 10;
  cfg.t_rp = 10;
  cfg.t_burst = 4;
  cfg.frontend_latency = 6;
  return cfg;
}

TEST_P(DramProperty, EveryAcceptedReadAnsweredOnceAndNotTooFast) {
  Dram dram(shape_config(GetParam()));
  LatencySink sink;
  util::Rng rng(GetParam().banks * 7 + 1);
  Cycle now = 0;
  RequestId id = 1;
  std::map<RequestId, Cycle> accepted_at;

  for (int c = 0; c < 3000; ++c) {
    dram.tick(now);
    if (rng.next_bool(0.5)) {
      MemRequest r;
      r.id = id;
      r.addr = rng.next_below(1 << 22) & ~Addr{63};
      r.kind = rng.next_bool(0.25) ? AccessKind::kWrite : AccessKind::kRead;
      r.reply_to = r.kind == AccessKind::kRead ? &sink : nullptr;
      if (dram.try_access(r)) {
        if (r.kind == AccessKind::kRead) accepted_at[id] = now;
        ++id;
      }
    }
    ++now;
  }
  Cycle guard = now + 20000;
  while (dram.busy() && now < guard) dram.tick(now++);
  ASSERT_FALSE(dram.busy());

  EXPECT_EQ(sink.count, accepted_at.size());
  const auto& cfg = dram.config();
  const Cycle min_latency = cfg.t_cl + cfg.t_burst + cfg.frontend_latency;
  for (const auto& [rid, t0] : accepted_at) {
    ASSERT_EQ(sink.per_id[rid], 1) << "request " << rid;
    EXPECT_GE(sink.completed_at[rid] - t0, min_latency) << "request " << rid;
  }
}

TEST_P(DramProperty, RowClassificationAccountsForEveryCommand) {
  Dram dram(shape_config(GetParam()));
  LatencySink sink;
  util::Rng rng(5);
  Cycle now = 0;
  RequestId id = 1;
  std::uint64_t accepted = 0;
  for (int c = 0; c < 2000; ++c) {
    dram.tick(now++);
    MemRequest r;
    r.id = id;
    r.addr = rng.next_below(1 << 20) & ~Addr{63};
    r.kind = AccessKind::kRead;
    r.reply_to = &sink;
    if (dram.try_access(r)) {
      ++accepted;
      ++id;
    }
  }
  Cycle guard = now + 50000;
  while (dram.busy() && now < guard) dram.tick(now++);
  const DramStats& s = dram.stats();
  EXPECT_EQ(s.row_hits + s.row_misses + s.row_conflicts, accepted);
  EXPECT_EQ(s.reads, accepted);
  EXPECT_GE(s.total_read_latency,
            accepted * (dram.config().t_cl + dram.config().t_burst));
}

TEST_P(DramProperty, NoStarvationUnderRowHitStream) {
  // FR-FCFS prefers row hits; a continuous same-row stream must not starve
  // a lone conflicting request forever.
  Dram dram(shape_config(GetParam()));
  LatencySink sink;
  Cycle now = 0;
  dram.tick(now++);
  // Seed an open row in bank 0 and keep hammering it.
  RequestId id = 1;
  MemRequest hot;
  hot.addr = 0x0;
  hot.kind = AccessKind::kRead;
  hot.reply_to = &sink;
  // The victim wants a different row in the same bank.
  const Addr victim_addr =
      static_cast<Addr>(dram.config().row_bytes) * dram.config().banks;
  MemRequest victim;
  victim.id = 999999;
  victim.addr = victim_addr;
  victim.kind = AccessKind::kRead;
  victim.reply_to = &sink;
  bool victim_sent = false;
  for (int c = 0; c < 6000; ++c) {
    if (c >= 50 && !victim_sent) {
      victim_sent = dram.try_access(victim);  // keep retrying a full queue
    }
    hot.id = id;
    if (dram.try_access(hot)) ++id;
    dram.tick(now++);
    if (victim_sent && sink.per_id.count(999999)) break;
  }
  EXPECT_TRUE(victim_sent);
  EXPECT_TRUE(sink.per_id.count(999999))
      << "victim request starved behind row hits";
}

TEST_P(DramProperty, Determinism) {
  const auto run_once = [&] {
    Dram dram(shape_config(GetParam()));
    LatencySink sink;
    util::Rng rng(11);
    Cycle now = 0;
    RequestId id = 1;
    for (int c = 0; c < 1000; ++c) {
      dram.tick(now++);
      MemRequest r;
      r.id = id;
      r.addr = rng.next_below(1 << 18) & ~Addr{63};
      r.kind = AccessKind::kRead;
      r.reply_to = &sink;
      if (dram.try_access(r)) ++id;
    }
    Cycle guard = now + 20000;
    while (dram.busy() && now < guard) dram.tick(now++);
    return std::make_tuple(dram.stats().row_hits, dram.stats().row_conflicts,
                           dram.stats().total_read_latency);
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace lpm::mem
