// The AccessProbe contract as promised by probe.hpp and relied on by the
// C-AMAT analyzer (and by check::RefAnalyzer): one activity sample per
// cycle in increasing order, every access resolved exactly once as a hit
// or a miss, every miss eventually closed by on_miss_done.
#include "mem/probe.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "mem/cache.hpp"
#include "mem/perfect_memory.hpp"

namespace lpm::mem {
namespace {

class RecordingProbe final : public AccessProbe {
 public:
  void on_cycle_activity(Cycle cycle, std::uint32_t hit_active) override {
    activity.emplace_back(cycle, hit_active);
  }
  void on_access(RequestId id, Cycle start, bool is_write) override {
    accesses.push_back(id);
    access_start[id] = start;
    writes[id] = is_write;
  }
  void on_hit(RequestId id, Cycle done) override { hits[id] = done; }
  void on_miss(RequestId id, Cycle start) override { miss_start[id] = start; }
  void on_miss_done(RequestId id, Cycle done) override { miss_done[id] = done; }

  std::vector<std::pair<Cycle, std::uint32_t>> activity;
  std::vector<RequestId> accesses;
  std::map<RequestId, Cycle> access_start;
  std::map<RequestId, bool> writes;
  std::map<RequestId, Cycle> hits;
  std::map<RequestId, Cycle> miss_start;
  std::map<RequestId, Cycle> miss_done;
};

class NullSink final : public ResponseSink {
 public:
  void on_response(const MemResponse&) override {}
};

struct Harness {
  Harness() : below(20), cache(config(), &below) {
    cache.set_probe(&probe);
  }

  static CacheConfig config() {
    CacheConfig cfg;
    cfg.name = "L1p";
    cfg.size_bytes = 512;  // 2 sets x 4 ways
    cfg.block_bytes = 64;
    cfg.associativity = 4;
    cfg.hit_latency = 2;
    cfg.ports = 2;
    cfg.mshr_entries = 2;
    cfg.mshr_targets = 2;
    return cfg;
  }

  void tick() {
    below.tick(now);
    cache.tick(now);
    ++now;
  }
  void access(RequestId id, Addr addr, AccessKind kind = AccessKind::kRead) {
    MemRequest r;
    r.id = id;
    r.core = 0;
    r.addr = addr;
    r.kind = kind;
    r.created = now;
    r.reply_to = &sink;
    while (!cache.try_access(r)) tick();
  }
  void drain(Cycle limit = 2000) {
    const Cycle end = now + limit;
    while ((cache.busy() || below.busy()) && now < end) tick();
    cache.finalize(now == 0 ? 0 : now - 1);
  }

  PerfectMemory below;
  Cache cache;
  RecordingProbe probe;
  NullSink sink;
  Cycle now = 0;
};

TEST(ProbeContract, OneActivitySamplePerCycleInOrder) {
  Harness h;
  for (RequestId id = 1; id <= 20; ++id) {
    h.tick();  // tick-then-access, as System drives the hierarchy
    h.access(id, (id % 6) * 64);
  }
  h.drain();

  ASSERT_FALSE(h.probe.activity.empty());
  // Strictly increasing, never duplicated. (The optimized cache may skip
  // samples for provably idle cycles — a zero sample after quiescing — so
  // gaps are allowed, repeats and reordering are not.)
  for (std::size_t i = 1; i < h.probe.activity.size(); ++i) {
    EXPECT_GT(h.probe.activity[i].first, h.probe.activity[i - 1].first)
        << "at sample " << i;
  }
  EXPECT_EQ(h.probe.activity.front().first, 0u);
}

TEST(ProbeContract, EveryAccessResolvesExactlyOnce) {
  Harness h;
  for (RequestId id = 1; id <= 30; ++id) {
    const bool write = id % 5 == 0;
    h.tick();
    h.access(id, (id % 9) * 64, write ? AccessKind::kWrite : AccessKind::kRead);
  }
  h.drain();

  EXPECT_EQ(h.probe.accesses.size(), 30u);
  for (const RequestId id : h.probe.accesses) {
    const bool hit = h.probe.hits.count(id) > 0;
    const bool miss = h.probe.miss_start.count(id) > 0;
    EXPECT_TRUE(hit != miss) << "access " << id
                             << " must resolve as exactly one of hit/miss";
    if (hit) {
      // The lookup occupies the pipeline for hit_latency cycles.
      EXPECT_GE(h.probe.hits[id], h.probe.access_start[id] + 2);
    }
  }
  EXPECT_EQ(h.probe.writes.at(5), true);
  EXPECT_EQ(h.probe.writes.at(1), false);
}

TEST(ProbeContract, EveryMissIsClosed) {
  Harness h;
  // Distinct blocks: all cold misses.
  for (RequestId id = 1; id <= 12; ++id) {
    h.tick();
    h.access(id, id * 64);
  }
  h.drain();

  ASSERT_FALSE(h.probe.miss_start.empty());
  for (const auto& [id, start] : h.probe.miss_start) {
    ASSERT_TRUE(h.probe.miss_done.count(id) > 0) << "miss " << id << " never closed";
    EXPECT_GT(h.probe.miss_done[id], start);
  }
}

TEST(ProbeContract, ActivitySumMatchesHitPhaseCycles) {
  // Each accepted demand access spends exactly hit_latency cycles in the
  // lookup pipeline (hits and misses alike, paper Fig. 1), so the summed
  // per-cycle activity equals accesses x hit_latency once drained.
  Harness h;
  for (RequestId id = 1; id <= 25; ++id) {
    h.tick();
    h.access(id, (id % 7) * 64);
  }
  h.drain();

  std::uint64_t summed = 0;
  for (const auto& [cycle, active] : h.probe.activity) summed += active;
  EXPECT_EQ(summed, h.cache.stats().accesses * 2u);
}

TEST(ProbeContract, NullProbeIsSupported) {
  // set_probe(nullptr) (the default) must be safe: the cache runs without
  // any analyzer attached.
  PerfectMemory below(20);
  Cache cache(Harness::config(), &below);
  NullSink sink;
  Cycle now = 0;
  for (RequestId id = 1; id <= 8; ++id) {
    MemRequest r;
    r.id = id;
    r.addr = id * 64;
    r.core = 0;
    r.reply_to = &sink;
    below.tick(now);
    cache.tick(now);
    ++now;
    (void)cache.try_access(r);
  }
  while ((cache.busy() || below.busy()) && now < 2000) {
    below.tick(now);
    cache.tick(now);
    ++now;
  }
  cache.finalize(now - 1);
  EXPECT_EQ(cache.stats().accesses, 8u);
}

}  // namespace
}  // namespace lpm::mem
