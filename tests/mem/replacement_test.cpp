#include "mem/replacement.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace lpm::mem {
namespace {

TEST(Replacement, LruEvictsLeastRecentlyUsed) {
  ReplacementState st(ReplacementPolicy::kLru, 4);
  util::Rng rng(1);
  st.fill(0, 1);
  st.fill(1, 2);
  st.fill(2, 3);
  st.fill(3, 4);
  st.touch(0, 5);  // way 1 is now LRU
  EXPECT_EQ(st.victim(rng), 1u);
  st.touch(1, 6);
  EXPECT_EQ(st.victim(rng), 2u);
}

TEST(Replacement, FifoIgnoresTouches) {
  ReplacementState st(ReplacementPolicy::kFifo, 4);
  util::Rng rng(1);
  st.fill(0, 1);
  st.fill(1, 2);
  st.fill(2, 3);
  st.fill(3, 4);
  st.touch(0, 99);  // touching must not rescue way 0 under FIFO
  EXPECT_EQ(st.victim(rng), 0u);
  st.fill(0, 5);
  EXPECT_EQ(st.victim(rng), 1u);
}

TEST(Replacement, RandomIsInRangeAndCoversWays) {
  ReplacementState st(ReplacementPolicy::kRandom, 4);
  util::Rng rng(7);
  bool seen[4] = {false, false, false, false};
  for (int i = 0; i < 200; ++i) {
    const auto v = st.victim(rng);
    ASSERT_LT(v, 4u);
    seen[v] = true;
  }
  EXPECT_TRUE(seen[0] && seen[1] && seen[2] && seen[3]);
}

TEST(Replacement, PlruTracksRecency) {
  ReplacementState st(ReplacementPolicy::kPlru, 4);
  util::Rng rng(1);
  st.fill(0, 1);
  st.fill(1, 2);
  st.fill(2, 3);
  st.fill(3, 4);
  // After touching 0 and 1, the victim must come from {2, 3}.
  st.touch(0, 5);
  st.touch(1, 6);
  const auto v = st.victim(rng);
  EXPECT_TRUE(v == 2u || v == 3u);
  // Touch 2 and 3: victim must come from {0, 1}.
  st.touch(2, 7);
  st.touch(3, 8);
  const auto w = st.victim(rng);
  EXPECT_TRUE(w == 0u || w == 1u);
}

TEST(Replacement, PlruNonPow2FallsBackToLru) {
  ReplacementState st(ReplacementPolicy::kPlru, 3);
  util::Rng rng(1);
  st.fill(0, 1);
  st.fill(1, 2);
  st.fill(2, 3);
  st.touch(0, 4);
  EXPECT_EQ(st.victim(rng), 1u);
}

TEST(Replacement, DirectMappedAlwaysWayZero) {
  ReplacementState st(ReplacementPolicy::kLru, 1);
  util::Rng rng(1);
  EXPECT_EQ(st.victim(rng), 0u);
}

TEST(Replacement, BadWayThrows) {
  ReplacementState st(ReplacementPolicy::kLru, 2);
  EXPECT_THROW(st.touch(2, 1), util::LpmError);
  EXPECT_THROW(st.fill(5, 1), util::LpmError);
}

TEST(Replacement, StringRoundTrip) {
  for (const auto p : {ReplacementPolicy::kLru, ReplacementPolicy::kFifo,
                       ReplacementPolicy::kRandom, ReplacementPolicy::kPlru}) {
    EXPECT_EQ(replacement_from_string(to_string(p)), p);
  }
  EXPECT_THROW(replacement_from_string("mru"), util::LpmError);
}

}  // namespace
}  // namespace lpm::mem
