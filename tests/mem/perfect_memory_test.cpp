#include "mem/perfect_memory.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace lpm::mem {
namespace {

class TestSink final : public ResponseSink {
 public:
  void on_response(const MemResponse& rsp) override {
    responses.push_back(rsp);
    by_id[rsp.id] = rsp;
  }
  [[nodiscard]] bool got(RequestId id) const { return by_id.count(id) > 0; }
  std::vector<MemResponse> responses;
  std::map<RequestId, MemResponse> by_id;
};

MemRequest read(RequestId id, Addr addr, ResponseSink* sink, Cycle now = 0) {
  MemRequest r;
  r.id = id;
  r.core = 0;
  r.addr = addr;
  r.kind = AccessKind::kRead;
  r.created = now;
  r.reply_to = sink;
  return r;
}

TEST(PerfectMemory, CompletesAfterFixedLatency) {
  PerfectMemory mem(5);
  TestSink sink;
  mem.tick(0);
  ASSERT_TRUE(mem.try_access(read(1, 0x40, &sink)));
  EXPECT_TRUE(mem.busy());
  for (Cycle c = 1; c <= 4; ++c) {
    mem.tick(c);
    EXPECT_FALSE(sink.got(1)) << "completed early at cycle " << c;
  }
  mem.tick(5);
  ASSERT_TRUE(sink.got(1));
  EXPECT_EQ(sink.by_id[1].completed, 5u);
  EXPECT_EQ(sink.by_id[1].addr, 0x40u);
  EXPECT_FALSE(mem.busy());
}

TEST(PerfectMemory, ZeroLatencyCompletesOnTheNextTick) {
  PerfectMemory mem(0);
  TestSink sink;
  mem.tick(0);
  ASSERT_TRUE(mem.try_access(read(1, 0, &sink)));
  mem.tick(1);  // done_at == 0 <= 1
  EXPECT_TRUE(sink.got(1));
}

TEST(PerfectMemory, PortLimitIsPerCycle) {
  PerfectMemory mem(3, /*ports=*/2);
  TestSink sink;
  mem.tick(0);
  EXPECT_TRUE(mem.try_access(read(1, 0x00, &sink)));
  EXPECT_TRUE(mem.try_access(read(2, 0x40, &sink)));
  EXPECT_FALSE(mem.try_access(read(3, 0x80, &sink)))
      << "third access in one cycle must bounce off the port limit";
  mem.tick(1);  // the counter resets with the new cycle
  EXPECT_TRUE(mem.try_access(read(3, 0x80, &sink)));
  for (Cycle c = 2; c <= 5; ++c) mem.tick(c);
  EXPECT_EQ(sink.responses.size(), 3u);
  EXPECT_EQ(mem.accesses(), 3u);
}

TEST(PerfectMemory, ZeroPortsMeansUnlimited) {
  PerfectMemory mem(1, /*ports=*/0);
  TestSink sink;
  mem.tick(0);
  for (RequestId id = 1; id <= 64; ++id) {
    ASSERT_TRUE(mem.try_access(read(id, id * 64, &sink)));
  }
  mem.tick(1);
  EXPECT_EQ(sink.responses.size(), 64u);
}

TEST(PerfectMemory, FireAndForgetLeavesNothingInFlight) {
  // Writebacks travel with reply_to == nullptr: counted, never replied to.
  PerfectMemory mem(10);
  mem.tick(0);
  ASSERT_TRUE(mem.try_access(read(7, 0x40, nullptr)));
  EXPECT_FALSE(mem.busy());
  EXPECT_EQ(mem.accesses(), 1u);
}

TEST(PerfectMemory, ResponsesArriveInRequestOrder) {
  PerfectMemory mem(4);
  TestSink sink;
  mem.tick(0);
  ASSERT_TRUE(mem.try_access(read(10, 0x000, &sink)));
  mem.tick(1);
  ASSERT_TRUE(mem.try_access(read(11, 0x040, &sink)));
  mem.tick(2);
  ASSERT_TRUE(mem.try_access(read(12, 0x080, &sink)));
  for (Cycle c = 3; c <= 8; ++c) mem.tick(c);
  ASSERT_EQ(sink.responses.size(), 3u);
  EXPECT_EQ(sink.responses[0].id, 10u);
  EXPECT_EQ(sink.responses[1].id, 11u);
  EXPECT_EQ(sink.responses[2].id, 12u);
  EXPECT_EQ(sink.responses[0].completed, 4u);
  EXPECT_EQ(sink.responses[1].completed, 5u);
  EXPECT_EQ(sink.responses[2].completed, 6u);
}

}  // namespace
}  // namespace lpm::mem
