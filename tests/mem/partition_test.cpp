// Memory parallelism partition (per-core MSHR quotas) and SRRIP selective
// replacement - the paper's SVII future-work mechanisms.
#include <gtest/gtest.h>

#include <map>

#include "mem/cache.hpp"
#include "mem/perfect_memory.hpp"

namespace lpm::mem {
namespace {

class TestSink final : public ResponseSink {
 public:
  void on_response(const MemResponse& rsp) override { by_id[rsp.id] = rsp; }
  std::map<RequestId, MemResponse> by_id;
};

struct Harness {
  explicit Harness(CacheConfig cfg, std::uint32_t mem_latency = 50)
      : below(mem_latency), cache(std::move(cfg), &below) {}
  void tick() {
    below.tick(now);
    cache.tick(now);
    ++now;
  }
  void run_until_idle(Cycle limit = 5000) {
    const Cycle end = now + limit;
    while ((cache.busy() || below.busy()) && now < end) tick();
  }
  MemRequest read(RequestId id, Addr addr, CoreId core) {
    MemRequest r;
    r.id = id;
    r.core = core;
    r.addr = addr;
    r.kind = AccessKind::kRead;
    r.reply_to = &sink;
    return r;
  }
  PerfectMemory below;
  Cache cache;
  TestSink sink;
  Cycle now = 0;
};

CacheConfig shared_cache(std::uint32_t quota) {
  CacheConfig cfg;
  cfg.name = "L2q";
  cfg.size_bytes = 64 * 1024;
  cfg.block_bytes = 64;
  cfg.associativity = 8;
  cfg.hit_latency = 4;
  cfg.ports = 4;
  cfg.mshr_entries = 8;
  cfg.mshr_quota_per_core = quota;
  cfg.num_cores = 2;
  return cfg;
}

TEST(MshrQuota, HogCannotMonopolizeEntries) {
  Harness h(shared_cache(/*quota=*/3), /*mem_latency=*/200);
  h.tick();
  // Core 0 floods with 8 distinct-block misses in one burst (4/cycle ports).
  RequestId id = 1;
  for (int i = 0; i < 8; ++i) {
    if (!h.cache.try_access(h.read(id, 0x10000u + 64u * i, 0))) h.tick();
    ++id;
    if (i % 4 == 3) h.tick();
  }
  h.tick();
  // Core 1 arrives late with one miss: a quota-partitioned MSHR file must
  // still have an entry for it promptly (no 200-cycle wait behind the hog).
  const Cycle arrival = h.now;
  ASSERT_TRUE(h.cache.try_access(h.read(100, 0x40000, 1)));
  h.run_until_idle();
  ASSERT_TRUE(h.sink.by_id.count(100));
  const Cycle latency = h.sink.by_id[100].completed - arrival;
  EXPECT_LT(latency, 250u);  // one memory round trip, not two
  EXPECT_GT(h.cache.stats().quota_waits, 0u);
}

TEST(MshrQuota, WithoutQuotaHogDelaysVictim) {
  Harness h(shared_cache(/*quota=*/0), /*mem_latency=*/200);
  h.tick();
  RequestId id = 1;
  for (int i = 0; i < 8; ++i) {
    if (!h.cache.try_access(h.read(id, 0x10000u + 64u * i, 0))) h.tick();
    ++id;
    if (i % 4 == 3) h.tick();
  }
  h.tick();
  const Cycle arrival = h.now;
  ASSERT_TRUE(h.cache.try_access(h.read(100, 0x40000, 1)));
  h.run_until_idle();
  ASSERT_TRUE(h.sink.by_id.count(100));
  // All 8 MSHRs are held by core 0 for ~200 cycles; the victim waits.
  EXPECT_GT(h.sink.by_id[100].completed - arrival, 250u);
  EXPECT_EQ(h.cache.stats().quota_waits, 0u);
}

TEST(MshrQuota, CoalescingAllowedBeyondQuota) {
  Harness h(shared_cache(/*quota=*/1), /*mem_latency=*/100);
  h.tick();
  ASSERT_TRUE(h.cache.try_access(h.read(1, 0x1000, 0)));
  h.tick();
  h.tick();
  h.tick();
  h.tick();
  h.tick();
  // Same-block access from core 0: coalesces even though quota is used up.
  ASSERT_TRUE(h.cache.try_access(h.read(2, 0x1020, 0)));
  h.run_until_idle();
  EXPECT_TRUE(h.sink.by_id.count(1));
  EXPECT_TRUE(h.sink.by_id.count(2));
  EXPECT_EQ(h.cache.stats().mshr_coalesced, 1u);
}

TEST(MshrQuota, CountsPerCore) {
  MshrFile f(4, 2);
  MshrTarget t0;
  t0.id = 1;
  t0.core = 0;
  MshrTarget t1;
  t1.id = 2;
  t1.core = 1;
  f.allocate(0x0, t0, 0);
  f.allocate(0x40, t0, 0);
  f.allocate(0x80, t1, 0);
  EXPECT_EQ(f.in_use_by(0), 2u);
  EXPECT_EQ(f.in_use_by(1), 1u);
  EXPECT_EQ(f.in_use_by(7), 0u);
}

TEST(Srrip, ScanResistance) {
  // A hot line is re-referenced repeatedly; a one-shot scan walks the set.
  // SRRIP must keep the hot line; LRU evicts it.
  const auto run_policy = [](ReplacementPolicy policy) {
    CacheConfig cfg;
    cfg.name = "L1r";
    cfg.size_bytes = 512;  // 2 sets x 4 ways
    cfg.block_bytes = 64;
    cfg.associativity = 4;
    cfg.hit_latency = 1;
    cfg.ports = 1;
    cfg.mshr_entries = 2;
    cfg.replacement = policy;
    Harness h(cfg, /*mem_latency=*/5);
    h.tick();
    RequestId id = 1;
    const Addr hot = 0x0;  // set 0
    const auto access = [&](Addr a) {
      while (!h.cache.try_access(h.read(id, a, 0))) h.tick();
      ++id;
      h.run_until_idle();
    };
    access(hot);
    access(hot);
    access(hot);  // establish reuse
    // Scan: 6 one-shot blocks mapping to set 0 (stride 128 = 2 sets).
    for (int i = 1; i <= 6; ++i) {
      access(hot + 128u * i);
      access(hot);  // hot line stays live between scan steps
    }
    return h.cache.contains_block(hot);
  };
  EXPECT_TRUE(run_policy(ReplacementPolicy::kSrrip));
}

TEST(Srrip, VictimAgesUntilDistant) {
  ReplacementState st(ReplacementPolicy::kSrrip, 4);
  util::Rng rng(1);
  st.fill(0, 1);
  st.fill(1, 2);
  st.fill(2, 3);
  st.fill(3, 4);
  st.touch(0, 5);  // way 0: rrpv 0, others 2
  // Victim must be one of the non-reused ways, never way 0.
  for (int i = 0; i < 4; ++i) {
    EXPECT_NE(st.victim(rng), 0u);
  }
}

TEST(Srrip, StringRoundTrip) {
  EXPECT_EQ(replacement_from_string("srrip"), ReplacementPolicy::kSrrip);
  EXPECT_STREQ(to_string(ReplacementPolicy::kSrrip), "srrip");
}

}  // namespace
}  // namespace lpm::mem
