// Property sweeps (TEST_P) over cache geometry: for any combination of
// associativity / banks / ports / replacement / prefetch / MSHR shape, a
// randomized access pattern must satisfy the conservation invariants and
// the C-AMAT identity.
#include <gtest/gtest.h>
#include "common/tolerance.hpp"

#include <map>
#include <tuple>

#include "camat/analyzer.hpp"
#include "mem/cache.hpp"
#include "mem/perfect_memory.hpp"
#include "util/rng.hpp"

namespace lpm::mem {
namespace {

struct Geometry {
  std::uint32_t associativity;
  std::uint32_t banks;
  std::uint32_t ports;
  ReplacementPolicy policy;
  std::uint32_t mshr_entries;
  std::uint32_t prefetch_degree;
};

class CacheGeometry : public ::testing::TestWithParam<Geometry> {};

std::string geometry_name(const ::testing::TestParamInfo<Geometry>& info) {
  const Geometry& g = info.param;
  return "a" + std::to_string(g.associativity) + "_b" +
         std::to_string(g.banks) + "_p" + std::to_string(g.ports) + "_" +
         to_string(g.policy) + "_m" + std::to_string(g.mshr_entries) + "_pf" +
         std::to_string(g.prefetch_degree);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CacheGeometry,
    ::testing::Values(
        Geometry{1, 1, 1, ReplacementPolicy::kLru, 1, 0},
        Geometry{2, 2, 2, ReplacementPolicy::kFifo, 2, 0},
        Geometry{4, 1, 1, ReplacementPolicy::kLru, 4, 0},
        Geometry{4, 4, 2, ReplacementPolicy::kRandom, 8, 0},
        Geometry{8, 2, 4, ReplacementPolicy::kPlru, 4, 2},
        Geometry{4, 8, 4, ReplacementPolicy::kSrrip, 8, 4},
        Geometry{16, 1, 2, ReplacementPolicy::kLru, 16, 1},
        Geometry{2, 4, 8, ReplacementPolicy::kSrrip, 2, 0}),
    geometry_name);

class CountingSink final : public ResponseSink {
 public:
  void on_response(const MemResponse& rsp) override {
    ++count;
    ++per_id[rsp.id];
  }
  std::uint64_t count = 0;
  std::map<RequestId, int> per_id;
};

TEST_P(CacheGeometry, ConservationUnderRandomTraffic) {
  const Geometry& g = GetParam();
  CacheConfig cfg;
  cfg.name = "prop";
  cfg.size_bytes = 4096;
  cfg.block_bytes = 64;
  cfg.associativity = g.associativity;
  cfg.hit_latency = 2;
  cfg.ports = g.ports;
  cfg.banks = g.banks;
  cfg.mshr_entries = g.mshr_entries;
  cfg.mshr_targets = 4;
  cfg.replacement = g.policy;
  cfg.prefetch_degree = g.prefetch_degree;

  PerfectMemory below(15);
  Cache cache(cfg, &below);
  camat::Analyzer analyzer("prop");
  cache.set_probe(&analyzer);
  CountingSink sink;

  util::Rng rng(static_cast<std::uint64_t>(g.associativity) * 1000 + g.banks);
  Cycle now = 0;
  RequestId id = 1;
  std::uint64_t accepted = 0;

  const auto tick = [&] {
    below.tick(now);
    cache.tick(now);
    ++now;
  };
  tick();
  // 4000 cycles of randomized offered load over a 32 KB footprint.
  for (int c = 0; c < 4000; ++c) {
    const int tries = static_cast<int>(rng.next_below(4));
    for (int t = 0; t < tries; ++t) {
      MemRequest r;
      r.id = id;
      r.core = 0;
      r.addr = rng.next_below(32 * 1024) & ~Addr{7};
      r.kind = rng.next_bool(0.3) ? AccessKind::kWrite : AccessKind::kRead;
      r.reply_to = &sink;
      if (cache.try_access(r)) {
        ++accepted;
        ++id;
      }
    }
    tick();
  }
  // Drain.
  Cycle guard = now + 5000;
  while ((cache.busy() || below.busy()) && now < guard) tick();
  cache.finalize(now - 1);

  ASSERT_FALSE(cache.busy());
  // (1) Every accepted access got exactly one response.
  EXPECT_EQ(sink.count, accepted);
  for (const auto& [rid, n] : sink.per_id) {
    EXPECT_EQ(n, 1) << "request " << rid;
  }
  // (2) Bookkeeping balances.
  const CacheStats& s = cache.stats();
  EXPECT_EQ(s.accesses, accepted);
  EXPECT_EQ(s.hits + s.misses, s.accesses);
  EXPECT_EQ(s.fills, s.misses - s.mshr_coalesced + s.prefetches_issued);
  // (3) The analyzer's C-AMAT identity holds exactly.
  const auto& m = analyzer.metrics();
  EXPECT_EQ(m.accesses, accepted);
  EXPECT_EQ(m.hits + m.misses, m.accesses);
  if (m.accesses > 0) {
    EXPECT_NEAR(m.camat_eq2(), m.camat(), tol::eq2(m.camat()));
  }
  EXPECT_EQ(m.active_cycles, m.hit_cycles + m.pure_miss_cycles);
  EXPECT_LE(m.pure_misses, m.misses);
  EXPECT_EQ(analyzer.outstanding_misses(), 0u);
  // (4) Every access spent exactly hit_latency cycles in lookup.
  EXPECT_EQ(m.hit_phase_access_cycles, m.accesses * cfg.hit_latency);
}

TEST_P(CacheGeometry, DeterministicAcrossRuns) {
  const Geometry& g = GetParam();
  const auto run_once = [&]() -> std::tuple<std::uint64_t, std::uint64_t, Cycle> {
    CacheConfig cfg;
    cfg.name = "det";
    cfg.size_bytes = 2048;
    cfg.block_bytes = 64;
    cfg.associativity = g.associativity;
    cfg.hit_latency = 3;
    cfg.ports = g.ports;
    cfg.banks = g.banks;
    cfg.mshr_entries = g.mshr_entries;
    cfg.replacement = g.policy;
    cfg.prefetch_degree = g.prefetch_degree;
    PerfectMemory below(20);
    Cache cache(cfg, &below);
    CountingSink sink;
    util::Rng rng(99);
    Cycle now = 0;
    RequestId id = 1;
    const auto tick = [&] {
      below.tick(now);
      cache.tick(now);
      ++now;
    };
    tick();
    for (int c = 0; c < 1500; ++c) {
      MemRequest r;
      r.id = id;
      r.addr = rng.next_below(16 * 1024) & ~Addr{7};
      r.kind = AccessKind::kRead;
      r.reply_to = &sink;
      if (cache.try_access(r)) ++id;
      tick();
    }
    Cycle guard = now + 4000;
    while ((cache.busy() || below.busy()) && now < guard) tick();
    return {cache.stats().hits, cache.stats().misses, now};
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace lpm::mem
