#include "mem/dram.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "util/error.hpp"

namespace lpm::mem {
namespace {

class TestSink final : public ResponseSink {
 public:
  void on_response(const MemResponse& rsp) override { by_id[rsp.id] = rsp; }
  [[nodiscard]] bool got(RequestId id) const { return by_id.count(id) > 0; }
  std::map<RequestId, MemResponse> by_id;
};

DramConfig small_dram() {
  DramConfig cfg;
  cfg.banks = 2;
  cfg.row_bytes = 1024;
  cfg.interleave_bytes = 64;
  cfg.t_rcd = 10;
  cfg.t_cl = 10;
  cfg.t_rp = 10;
  cfg.t_burst = 4;
  cfg.frontend_latency = 5;
  cfg.queue_capacity = 8;
  return cfg;
}

struct Harness {
  explicit Harness(DramConfig cfg = small_dram()) : dram(std::move(cfg)) {}
  void tick() { dram.tick(now++); }
  void run_until_idle(Cycle limit = 5000) {
    const Cycle end = now + limit;
    while (dram.busy() && now < end) tick();
  }
  MemRequest read(RequestId id, Addr addr) {
    MemRequest r;
    r.id = id;
    r.addr = addr;
    r.kind = AccessKind::kRead;
    r.reply_to = &sink;
    return r;
  }
  Dram dram;
  TestSink sink;
  Cycle now = 0;
};

TEST(DramConfig, ValidationCatchesBadFields) {
  auto cfg = small_dram();
  cfg.banks = 3;
  EXPECT_THROW(cfg.validate(), util::LpmError);
  cfg = small_dram();
  cfg.row_bytes = 32;  // below interleave
  EXPECT_THROW(cfg.validate(), util::LpmError);
  cfg = small_dram();
  cfg.queue_capacity = 0;
  EXPECT_THROW(cfg.validate(), util::LpmError);
}

TEST(Dram, RowMissLatency) {
  Harness h;
  h.tick();
  const Cycle start = h.now - 1;
  ASSERT_TRUE(h.dram.try_access(h.read(1, 0x0)));
  h.run_until_idle();
  ASSERT_TRUE(h.sink.got(1));
  // Closed bank: tRCD + tCL + tBURST + frontend = 10+10+4+5 = 29.
  EXPECT_EQ(h.sink.by_id[1].completed - start, 29u + 1u);
  EXPECT_EQ(h.dram.stats().row_misses, 1u);
}

TEST(Dram, RowHitIsFaster) {
  Harness h;
  h.tick();
  ASSERT_TRUE(h.dram.try_access(h.read(1, 0x0)));
  h.run_until_idle();
  const Cycle start = h.now;
  // Same row (same bank, within row_bytes*banks stripe).
  ASSERT_TRUE(h.dram.try_access(h.read(2, 0x80)));
  h.run_until_idle();
  ASSERT_TRUE(h.sink.got(2));
  const Cycle hit_latency = h.sink.by_id[2].completed - start;
  // Open row: tCL + tBURST + frontend = 19 (+1 tick alignment slack).
  EXPECT_LE(hit_latency, 21u);
  EXPECT_EQ(h.dram.stats().row_hits, 1u);
}

TEST(Dram, RowConflictIsSlowest) {
  Harness h;
  h.tick();
  ASSERT_TRUE(h.dram.try_access(h.read(1, 0x0)));
  h.run_until_idle();
  const Cycle start = h.now;
  // Same bank (bank 0), different row: addr = row_bytes * banks = 2048.
  ASSERT_TRUE(h.dram.try_access(h.read(2, 2048)));
  h.run_until_idle();
  const Cycle conflict_latency = h.sink.by_id[2].completed - start;
  // tRP + tRCD + tCL + tBURST + frontend = 39 (+ slack).
  EXPECT_GE(conflict_latency, 39u);
  EXPECT_EQ(h.dram.stats().row_conflicts, 1u);
}

TEST(Dram, QueueCapacityBackpressure) {
  auto cfg = small_dram();
  cfg.queue_capacity = 2;
  Harness h(cfg);
  h.tick();
  EXPECT_TRUE(h.dram.try_access(h.read(1, 0x0)));
  EXPECT_TRUE(h.dram.try_access(h.read(2, 0x40)));
  EXPECT_FALSE(h.dram.try_access(h.read(3, 0x80)));
  EXPECT_EQ(h.dram.stats().rejected_full, 1u);
  h.run_until_idle();
  EXPECT_TRUE(h.dram.try_access(h.read(3, 0x80)));
}

TEST(Dram, BanksServeInParallel) {
  auto cfg = small_dram();
  cfg.max_issue_per_cycle = 2;
  Harness h(cfg);
  h.tick();
  // Bank 0 and bank 1 (64B interleave).
  ASSERT_TRUE(h.dram.try_access(h.read(1, 0x0)));
  ASSERT_TRUE(h.dram.try_access(h.read(2, 0x40)));
  h.run_until_idle();
  // Both complete with (nearly) the same latency: parallel banks.
  const auto d = h.sink.by_id[2].completed - h.sink.by_id[1].completed;
  EXPECT_LE(d, 1u);
}

TEST(Dram, SameBankSerializes) {
  Harness h;
  h.tick();
  // Two different rows in bank 0 back to back.
  ASSERT_TRUE(h.dram.try_access(h.read(1, 0x0)));
  ASSERT_TRUE(h.dram.try_access(h.read(2, 2048)));
  h.run_until_idle();
  // The second waits for the first's bank occupancy, then pays a conflict.
  EXPECT_GT(h.sink.by_id[2].completed, h.sink.by_id[1].completed + 20);
}

TEST(Dram, FrFcfsPrefersRowHits) {
  auto cfg = small_dram();
  Harness h(cfg);
  h.tick();
  // Open row 0 in bank 0.
  ASSERT_TRUE(h.dram.try_access(h.read(1, 0x0)));
  h.run_until_idle();
  // Now enqueue a conflict (older) and a row hit (younger) for bank 0 in
  // the same cycle. FR-FCFS serves the row hit first.
  ASSERT_TRUE(h.dram.try_access(h.read(2, 2048)));  // different row
  ASSERT_TRUE(h.dram.try_access(h.read(3, 0x100)));  // row 0 hit
  h.run_until_idle();
  EXPECT_LT(h.sink.by_id[3].completed, h.sink.by_id[2].completed);
}

TEST(Dram, WritesAreFireAndForget) {
  Harness h;
  h.tick();
  MemRequest w;
  w.id = 7;
  w.addr = 0x40;
  w.kind = AccessKind::kWrite;
  w.reply_to = nullptr;
  ASSERT_TRUE(h.dram.try_access(w));
  h.run_until_idle();
  EXPECT_EQ(h.dram.stats().writes, 1u);
  EXPECT_FALSE(h.sink.got(7));
  EXPECT_FALSE(h.dram.busy());
}

TEST(Dram, ReadLatencyStatAccumulates) {
  Harness h;
  h.tick();
  ASSERT_TRUE(h.dram.try_access(h.read(1, 0x0)));
  h.run_until_idle();
  EXPECT_EQ(h.dram.stats().reads, 1u);
  EXPECT_GE(h.dram.stats().total_read_latency, 29u);
}

}  // namespace
}  // namespace lpm::mem
