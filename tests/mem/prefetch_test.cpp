#include <gtest/gtest.h>

#include <map>

#include "mem/cache.hpp"
#include "mem/perfect_memory.hpp"

namespace lpm::mem {
namespace {

class TestSink final : public ResponseSink {
 public:
  void on_response(const MemResponse& rsp) override { by_id[rsp.id] = rsp; }
  std::map<RequestId, MemResponse> by_id;
};

struct Harness {
  explicit Harness(CacheConfig cfg, std::uint32_t mem_latency = 20)
      : below(mem_latency), cache(std::move(cfg), &below) {}
  void tick() {
    below.tick(now);
    cache.tick(now);
    ++now;
  }
  void run_cycles(Cycle n) {
    for (Cycle i = 0; i < n; ++i) tick();
  }
  void run_until_idle(Cycle limit = 3000) {
    const Cycle end = now + limit;
    while ((cache.busy() || below.busy()) && now < end) tick();
  }
  MemRequest read(RequestId id, Addr addr) {
    MemRequest r;
    r.id = id;
    r.core = 0;
    r.addr = addr;
    r.kind = AccessKind::kRead;
    r.reply_to = &sink;
    return r;
  }
  PerfectMemory below;
  Cache cache;
  TestSink sink;
  Cycle now = 0;
};

CacheConfig pf_cache(std::uint32_t degree = 2) {
  CacheConfig cfg;
  cfg.name = "L1pf";
  cfg.size_bytes = 4096;
  cfg.block_bytes = 64;
  cfg.associativity = 4;
  cfg.hit_latency = 2;
  cfg.ports = 2;
  cfg.mshr_entries = 8;
  cfg.prefetch_degree = degree;
  return cfg;
}

TEST(Prefetch, MissTriggersNextLines) {
  Harness h(pf_cache(2));
  h.tick();
  ASSERT_TRUE(h.cache.try_access(h.read(1, 0x1000)));
  h.run_until_idle();
  // Demand block plus the two next lines are resident.
  EXPECT_TRUE(h.cache.contains_block(0x1000));
  EXPECT_TRUE(h.cache.contains_block(0x1040));
  EXPECT_TRUE(h.cache.contains_block(0x1080));
  EXPECT_EQ(h.cache.stats().prefetches_issued, 2u);
}

TEST(Prefetch, DisabledIssuesNothing) {
  Harness h(pf_cache(0));
  h.tick();
  ASSERT_TRUE(h.cache.try_access(h.read(1, 0x1000)));
  h.run_until_idle();
  EXPECT_EQ(h.cache.stats().prefetches_issued, 0u);
  EXPECT_FALSE(h.cache.contains_block(0x1040));
}

TEST(Prefetch, PrefetchedLineHitCountsAndChains) {
  Harness h(pf_cache(2));
  h.tick();
  ASSERT_TRUE(h.cache.try_access(h.read(1, 0x1000)));
  h.run_until_idle();
  // Touch the prefetched line: counts as a prefetch hit and extends the
  // stream.
  ASSERT_TRUE(h.cache.try_access(h.read(2, 0x1040)));
  h.run_until_idle();
  EXPECT_EQ(h.cache.stats().prefetch_hits, 1u);
  EXPECT_TRUE(h.cache.contains_block(0x10c0));  // chained ahead
  // A second touch of the same line is a plain hit.
  ASSERT_TRUE(h.cache.try_access(h.read(3, 0x1040)));
  h.run_until_idle();
  EXPECT_EQ(h.cache.stats().prefetch_hits, 1u);
}

TEST(Prefetch, DemandCoalescesOntoInflightPrefetch) {
  Harness h(pf_cache(2), /*mem_latency=*/60);
  h.tick();
  ASSERT_TRUE(h.cache.try_access(h.read(1, 0x2000)));
  // Give the prefetch time to launch but not to complete.
  h.run_cycles(10);
  ASSERT_TRUE(h.cache.try_access(h.read(2, 0x2040)));
  h.run_until_idle();
  EXPECT_TRUE(h.sink.by_id.count(2));
  EXPECT_EQ(h.cache.stats().prefetch_coalesced, 1u);
}

TEST(Prefetch, ReservesOneMshrForDemand) {
  auto cfg = pf_cache(8);
  cfg.mshr_entries = 4;
  Harness h(cfg, /*mem_latency=*/100);
  h.tick();
  ASSERT_TRUE(h.cache.try_access(h.read(1, 0x0)));
  h.run_cycles(20);
  // At most mshr_entries-1 prefetches can be in flight alongside demand;
  // a new demand miss must still find an entry eventually.
  ASSERT_TRUE(h.cache.try_access(h.read(2, 0x8000)));
  h.run_until_idle();
  EXPECT_TRUE(h.sink.by_id.count(2));
}

TEST(Prefetch, AccuracyThrottleKicksInOnRandomPattern) {
  auto cfg = pf_cache(4);
  cfg.prefetch_accuracy_window = 32;
  Harness h(cfg, /*mem_latency=*/5);
  h.tick();
  // Scattered demand misses whose next-lines are never touched.
  RequestId id = 1;
  util::Rng rng(77);
  for (int i = 0; i < 400; ++i) {
    const Addr addr = rng.next_below(1u << 22) & ~Addr{63};
    if (h.cache.try_access(h.read(id, addr))) ++id;
    h.tick();
  }
  h.run_until_idle();
  const auto& s = h.cache.stats();
  // With degree 4 and ~400 misses, an unthrottled prefetcher would issue
  // roughly 4x the misses; the throttle must cut that far down.
  EXPECT_LT(s.prefetches_issued, s.misses * 2);
  EXPECT_GT(s.prefetches_issued, 0u);
}

TEST(Prefetch, SequentialPatternKeepsFullDegree) {
  auto cfg = pf_cache(4);
  cfg.prefetch_accuracy_window = 32;
  Harness h(cfg, /*mem_latency=*/5);
  h.tick();
  RequestId id = 1;
  std::uint64_t hits_before = 0;
  for (int i = 0; i < 600; ++i) {
    const Addr addr = static_cast<Addr>(i) * 64;
    while (!h.cache.try_access(h.read(id, addr))) h.tick();
    ++id;
    h.tick();
    h.tick();
  }
  h.run_until_idle();
  const auto& s = h.cache.stats();
  hits_before = s.prefetch_hits;
  // A pure stream should be mostly prefetch hits.
  EXPECT_GT(hits_before * 2, s.accesses);
}

}  // namespace
}  // namespace lpm::mem
