#include "camat/analyzer.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace lpm::camat {
namespace {

TEST(Analyzer, SingleHitAccess) {
  Analyzer a;
  a.on_access(1, 0, false);
  a.on_cycle_activity(0, 1);
  a.on_cycle_activity(1, 1);
  a.on_cycle_activity(2, 1);
  a.on_hit(1, 3);
  const auto& m = a.metrics();
  EXPECT_EQ(m.accesses, 1u);
  EXPECT_EQ(m.hits, 1u);
  EXPECT_EQ(m.misses, 0u);
  EXPECT_DOUBLE_EQ(m.H(), 3.0);
  EXPECT_DOUBLE_EQ(m.CH(), 1.0);
  EXPECT_DOUBLE_EQ(m.camat(), 3.0);
  EXPECT_DOUBLE_EQ(m.camat_eq2(), 3.0);
}

TEST(Analyzer, LoneMissIsPure) {
  Analyzer a;
  a.on_access(1, 0, false);
  a.on_cycle_activity(0, 1);  // hit phase, 1 cycle
  a.on_miss(1, 1);
  a.on_cycle_activity(1, 0);  // pure
  a.on_cycle_activity(2, 0);  // pure
  a.on_miss_done(1, 3);
  const auto& m = a.metrics();
  EXPECT_EQ(m.misses, 1u);
  EXPECT_EQ(m.pure_misses, 1u);
  EXPECT_DOUBLE_EQ(m.pMR(), 1.0);
  EXPECT_DOUBLE_EQ(m.pAMP(), 2.0);
  EXPECT_DOUBLE_EQ(m.CM(), 1.0);
  EXPECT_DOUBLE_EQ(m.AMP(), 2.0);
  EXPECT_DOUBLE_EQ(m.camat(), 3.0);  // 1 hit cycle + 2 pure cycles
}

TEST(Analyzer, MissFullyHiddenByHitsIsNotPure) {
  Analyzer a;
  // Access 1 misses, but access 2 keeps hitting the whole time.
  a.on_access(1, 0, false);
  a.on_access(2, 0, false);
  a.on_cycle_activity(0, 2);
  a.on_miss(1, 1);
  a.on_cycle_activity(1, 1);  // 2 still in lookup
  a.on_cycle_activity(2, 1);
  a.on_hit(2, 3);
  a.on_access(3, 3, false);
  a.on_cycle_activity(3, 1);
  a.on_miss_done(1, 4);
  a.on_hit(3, 4);
  const auto& m = a.metrics();
  EXPECT_EQ(m.misses, 1u);
  EXPECT_EQ(m.pure_misses, 0u);
  EXPECT_DOUBLE_EQ(m.pMR(), 0.0);
  EXPECT_EQ(m.pure_miss_cycles, 0u);
  // C-AMAT equals Eq. 2 even with zero pure misses.
  EXPECT_DOUBLE_EQ(m.camat_eq2(), m.camat());
}

TEST(Analyzer, OverlappingMissesShareConcurrency) {
  Analyzer a;
  a.on_access(1, 0, false);
  a.on_access(2, 0, false);
  a.on_cycle_activity(0, 2);
  a.on_miss(1, 1);
  a.on_miss(2, 1);
  a.on_cycle_activity(1, 0);  // pure, 2 outstanding
  a.on_cycle_activity(2, 0);  // pure, 2 outstanding
  a.on_miss_done(1, 3);
  a.on_cycle_activity(3, 0);  // pure, 1 outstanding
  a.on_miss_done(2, 4);
  const auto& m = a.metrics();
  EXPECT_EQ(m.pure_misses, 2u);
  EXPECT_EQ(m.pure_miss_cycles, 3u);
  EXPECT_EQ(m.pure_access_cycles, 5u);  // 2+2+1
  EXPECT_DOUBLE_EQ(m.CM(), 5.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.pAMP(), 2.5);
  EXPECT_DOUBLE_EQ(m.Cm(), 5.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.camat_eq2(), m.camat());
}

TEST(Analyzer, UnknownIdsThrow) {
  Analyzer a;
  EXPECT_THROW(a.on_hit(9, 1), util::LpmError);
  EXPECT_THROW(a.on_miss(9, 1), util::LpmError);
  EXPECT_THROW(a.on_miss_done(9, 1), util::LpmError);
}

TEST(Analyzer, IntervalDeltaSplitsCounters) {
  Analyzer a;
  a.on_access(1, 0, false);
  a.on_cycle_activity(0, 1);
  a.on_hit(1, 1);
  const CamatMetrics first = a.interval_delta();
  EXPECT_EQ(first.accesses, 1u);

  a.on_access(2, 2, false);
  a.on_cycle_activity(2, 1);
  a.on_hit(2, 3);
  a.on_access(3, 4, false);
  a.on_cycle_activity(4, 1);
  a.on_hit(3, 5);
  const CamatMetrics second = a.interval_delta();
  EXPECT_EQ(second.accesses, 2u);
  EXPECT_EQ(a.metrics().accesses, 3u);
}

TEST(Analyzer, ResetCountersClearsEverything) {
  Analyzer a;
  a.on_access(1, 0, false);
  a.on_cycle_activity(0, 1);
  a.on_hit(1, 1);
  a.reset_counters();
  EXPECT_EQ(a.metrics().accesses, 0u);
  EXPECT_EQ(a.metrics().active_cycles, 0u);
  EXPECT_EQ(a.hit_phases(), 0u);
}

TEST(Analyzer, CamatNeverExceedsAmatWithConcurrency) {
  // With any hit/miss overlap, C-AMAT <= AMAT (equality when serial).
  Analyzer a;
  // Two parallel accesses, one misses briefly.
  a.on_access(1, 0, false);
  a.on_access(2, 0, false);
  a.on_cycle_activity(0, 2);
  a.on_cycle_activity(1, 2);
  a.on_hit(1, 2);
  a.on_miss(2, 2);
  a.on_cycle_activity(2, 0);
  a.on_miss_done(2, 3);
  const auto& m = a.metrics();
  EXPECT_LE(m.camat(), m.amat());
}

TEST(Analyzer, HitActivityWithoutAccessesIsIgnoredGracefully) {
  Analyzer a;
  // Cycle with no activity at all: nothing should be counted.
  a.on_cycle_activity(0, 0);
  EXPECT_EQ(a.metrics().active_cycles, 0u);
  EXPECT_EQ(a.metrics().hit_cycles, 0u);
}

}  // namespace
}  // namespace lpm::camat
