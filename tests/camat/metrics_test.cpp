#include "camat/metrics.hpp"

#include <gtest/gtest.h>

namespace lpm::camat {
namespace {

TEST(CamatMetrics, ZeroCountersGiveZeroMetrics) {
  const CamatMetrics m;
  EXPECT_DOUBLE_EQ(m.H(), 0.0);
  EXPECT_DOUBLE_EQ(m.CH(), 0.0);
  EXPECT_DOUBLE_EQ(m.pMR(), 0.0);
  EXPECT_DOUBLE_EQ(m.pAMP(), 0.0);
  EXPECT_DOUBLE_EQ(m.CM(), 0.0);
  EXPECT_DOUBLE_EQ(m.MR(), 0.0);
  EXPECT_DOUBLE_EQ(m.AMP(), 0.0);
  EXPECT_DOUBLE_EQ(m.camat(), 0.0);
  EXPECT_DOUBLE_EQ(m.apc(), 0.0);
  EXPECT_DOUBLE_EQ(m.eta1(), 0.0);
}

TEST(CamatMetrics, HandBuiltCountersProduceExpectedParameters) {
  CamatMetrics m;
  m.accesses = 10;
  m.hits = 8;
  m.misses = 2;
  m.pure_misses = 1;
  m.active_cycles = 20;
  m.hit_cycles = 15;
  m.miss_cycles = 8;
  m.pure_miss_cycles = 5;
  m.hit_phase_access_cycles = 30;  // H = 3
  m.hit_access_cycles = 45;        // CH = 3
  m.miss_access_cycles = 12;       // Cm = 1.5
  m.pure_access_cycles = 5;        // CM = 1, pAMP = 5
  m.total_miss_latency = 40;       // AMP = 20

  EXPECT_DOUBLE_EQ(m.H(), 3.0);
  EXPECT_DOUBLE_EQ(m.CH(), 3.0);
  EXPECT_DOUBLE_EQ(m.pMR(), 0.1);
  EXPECT_DOUBLE_EQ(m.pAMP(), 5.0);
  EXPECT_DOUBLE_EQ(m.CM(), 1.0);
  EXPECT_DOUBLE_EQ(m.MR(), 0.2);
  EXPECT_DOUBLE_EQ(m.AMP(), 20.0);
  EXPECT_DOUBLE_EQ(m.Cm(), 1.5);
  EXPECT_DOUBLE_EQ(m.apc(), 0.5);
  EXPECT_DOUBLE_EQ(m.camat(), 2.0);
  EXPECT_DOUBLE_EQ(m.amat(), 3.0 + 0.2 * 20.0);
  // eta1 = (pAMP/AMP)*(Cm/CM) = (5/20)*(1.5/1)
  EXPECT_DOUBLE_EQ(m.eta1(), 0.375);
}

TEST(CamatMetrics, Eq2MatchesApcIdentityOnConsistentCounters) {
  // When counters come from a real cycle accounting (hit_phase_access_cycles
  // distributed over hit cycles, pure cycles over pure misses), Eq. 2 equals
  // active/accesses exactly. Build such a set: 4 accesses, H=2, one pure miss.
  CamatMetrics m;
  m.accesses = 4;
  m.hits = 3;
  m.misses = 1;
  m.pure_misses = 1;
  m.hit_phase_access_cycles = 8;  // 4 accesses x 2 cycles
  m.hit_cycles = 5;               // wall hit cycles
  m.hit_access_cycles = 8;        // concurrency-weighted
  m.pure_miss_cycles = 3;
  m.pure_access_cycles = 3;       // one miss outstanding alone
  m.miss_cycles = 3;
  m.miss_access_cycles = 3;
  m.total_miss_latency = 3;
  m.active_cycles = 8;            // 5 hit + 3 pure
  EXPECT_DOUBLE_EQ(m.camat_eq2(), m.camat());
}

TEST(ClosedForms, Eq1Eq2Eq4) {
  EXPECT_DOUBLE_EQ(amat_eq1(3.0, 0.4, 2.0), 3.8);
  EXPECT_DOUBLE_EQ(camat_eq2(3.0, 2.5, 0.2, 2.0, 1.0), 1.2 + 0.4);
  EXPECT_DOUBLE_EQ(camat_recursion_eq4(3.0, 2.5, 0.2, 0.5, 10.0), 1.2 + 1.0);
}

TEST(ClosedForms, ZeroConcurrencyGuards) {
  EXPECT_DOUBLE_EQ(camat_eq2(3.0, 0.0, 0.2, 2.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(camat_recursion_eq4(3.0, 0.0, 0.0, 0.0, 5.0), 0.0);
}

TEST(CamatMetrics, MinusGivesIntervalDeltas) {
  CamatMetrics a;
  a.accesses = 100;
  a.active_cycles = 300;
  a.misses = 10;
  CamatMetrics b;
  b.accesses = 40;
  b.active_cycles = 120;
  b.misses = 4;
  const CamatMetrics d = a.minus(b);
  EXPECT_EQ(d.accesses, 60u);
  EXPECT_EQ(d.active_cycles, 180u);
  EXPECT_EQ(d.misses, 6u);
}

TEST(CamatMetrics, SummaryMentionsKeyFields) {
  CamatMetrics m;
  m.accesses = 5;
  m.active_cycles = 8;
  const std::string s = m.summary();
  EXPECT_NE(s.find("C-AMAT"), std::string::npos);
  EXPECT_NE(s.find("accesses=5"), std::string::npos);
}

}  // namespace
}  // namespace lpm::camat
