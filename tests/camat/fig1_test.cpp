// The paper's own worked example (Fig. 1 and §II arithmetic) is the golden
// test of the analyzer: every quoted number must come out exactly.
#include "camat/fig1.hpp"

#include <gtest/gtest.h>

namespace lpm::camat {
namespace {

TEST(Fig1, CamatIs1_6) {
  const CamatMetrics m = fig1_metrics();
  EXPECT_DOUBLE_EQ(m.camat(), 1.6);
}

TEST(Fig1, AmatIs3_8) {
  const CamatMetrics m = fig1_metrics();
  EXPECT_DOUBLE_EQ(m.amat(), 3.8);
}

TEST(Fig1, FiveParameters) {
  const CamatMetrics m = fig1_metrics();
  EXPECT_DOUBLE_EQ(m.H(), 3.0);
  EXPECT_DOUBLE_EQ(m.CH(), 2.5);      // 5/2
  EXPECT_DOUBLE_EQ(m.pMR(), 0.2);     // 1/5
  EXPECT_DOUBLE_EQ(m.pAMP(), 2.0);
  EXPECT_DOUBLE_EQ(m.CM(), 1.0);
}

TEST(Fig1, Eq2EqualsMeasuredCamat) {
  const CamatMetrics m = fig1_metrics();
  EXPECT_DOUBLE_EQ(m.camat_eq2(), m.camat());
}

TEST(Fig1, ConventionalQuantities) {
  const CamatMetrics m = fig1_metrics();
  EXPECT_EQ(m.accesses, 5u);
  EXPECT_EQ(m.hits, 3u);
  EXPECT_EQ(m.misses, 2u);
  EXPECT_EQ(m.pure_misses, 1u);
  EXPECT_DOUBLE_EQ(m.MR(), 0.4);
  EXPECT_DOUBLE_EQ(m.AMP(), 2.0);  // miss latencies 3 and 1
}

TEST(Fig1, ConcurrencyDoublesPerformance) {
  const CamatMetrics m = fig1_metrics();
  // "concurrency has doubled memory performance": AMAT/C-AMAT = 3.8/1.6.
  EXPECT_GT(m.amat() / m.camat(), 2.0);
}

TEST(Fig1, PhaseStructureMatchesFigure) {
  Analyzer a("fig1");
  replay_fig1(a);
  EXPECT_EQ(a.hit_phases(), 4u);        // concurrency runs 2,4,3,1
  EXPECT_EQ(a.pure_miss_phases(), 1u);  // one pure-miss phase of 2 cycles
  EXPECT_EQ(a.outstanding_misses(), 0u);
}

TEST(Fig1, ApcIsReciprocalOfCamat) {
  const CamatMetrics m = fig1_metrics();
  EXPECT_DOUBLE_EQ(m.apc() * m.camat(), 1.0);
}

}  // namespace
}  // namespace lpm::camat
