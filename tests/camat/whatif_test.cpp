#include "camat/whatif.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/error.hpp"

namespace lpm::camat {
namespace {

/// Fig.-1-like measured parameters: H=3, CH=2.5, pMR=0.2, pAMP=2, CM=1.
CamatMetrics measured() {
  CamatMetrics m;
  m.accesses = 5;
  m.hits = 3;
  m.misses = 2;
  m.pure_misses = 1;
  m.active_cycles = 8;
  m.hit_cycles = 6;
  m.pure_miss_cycles = 2;
  m.miss_cycles = 3;
  m.hit_phase_access_cycles = 15;
  m.hit_access_cycles = 15;
  m.pure_access_cycles = 2;
  m.miss_access_cycles = 4;
  m.total_miss_latency = 4;
  return m;
}

TEST(WhatIf, IdentityScalesReproduceEq2) {
  const auto m = measured();
  EXPECT_DOUBLE_EQ(predict_camat(m, WhatIf{}), m.camat_eq2());
}

TEST(WhatIf, DoublingHitConcurrencyHalvesHitTerm) {
  const auto m = measured();
  const double base = m.camat_eq2();           // 1.2 + 0.4 = 1.6
  const double better =
      predict_camat(m, WhatIf::more_hit_concurrency(2.0));
  EXPECT_DOUBLE_EQ(better, 0.6 + 0.4);
  EXPECT_LT(better, base);
}

TEST(WhatIf, DoublingMissConcurrencyHalvesMissTerm) {
  const auto m = measured();
  EXPECT_DOUBLE_EQ(predict_camat(m, WhatIf::more_miss_concurrency(2.0)),
                   1.2 + 0.2);
}

TEST(WhatIf, HalvingPureMissRateHalvesMissTerm) {
  const auto m = measured();
  EXPECT_DOUBLE_EQ(predict_camat(m, WhatIf::fewer_pure_misses(0.5)),
                   1.2 + 0.2);
}

TEST(WhatIf, EveryImprovementDirectionHelps) {
  const auto m = measured();
  const double base = m.camat_eq2();
  EXPECT_LT(predict_camat(m, WhatIf::faster_hits(0.5)), base);
  EXPECT_LT(predict_camat(m, WhatIf::shorter_penalty(0.5)), base);
  EXPECT_LT(predict_camat(m, WhatIf::more_hit_concurrency(1.5)), base);
  EXPECT_LT(predict_camat(m, WhatIf::more_miss_concurrency(1.5)), base);
  EXPECT_LT(predict_camat(m, WhatIf::fewer_pure_misses(0.5)), base);
}

TEST(WhatIf, StallPredictionUsesEq7Shape) {
  const auto m = measured();
  const double stall = predict_stall_per_instr(m, WhatIf{}, 0.4, 0.75);
  EXPECT_DOUBLE_EQ(stall, 0.4 * m.camat_eq2() * 0.25);
}

TEST(WhatIf, InvalidScalesThrow) {
  const auto m = measured();
  WhatIf w;
  w.ch_scale = 0.0;
  EXPECT_THROW(predict_camat(m, w), util::LpmError);
  w = WhatIf{};
  w.pmr_scale = -1.0;
  EXPECT_THROW(predict_camat(m, w), util::LpmError);
}

TEST(Sensitivity, HitDominatedWorkloadPrefersHitDimensions) {
  // Hit term 1.2 dominates miss term 0.4: C_H (or H) should win.
  const auto m = measured();
  const auto r = sensitivity(m, 2.0);
  EXPECT_GT(r.ch_gain, r.cm_gain);
  EXPECT_GT(r.ch_gain, r.pamp_gain);
  const std::string best = r.best();
  EXPECT_TRUE(best == "C_H" || best == "H");
}

TEST(Sensitivity, MissDominatedWorkloadPrefersMissDimensions) {
  auto m = measured();
  m.pure_access_cycles = 40;  // CM = 20
  m.pure_miss_cycles = 2;
  m.pure_misses = 4;          // pAMP = 10, pMR = 0.8 -> miss term 0.4
  m.hit_access_cycles = 150;  // CH = 25 -> hit term 0.12
  const double hit_term = m.H() / m.CH();
  const double miss_term = m.pMR() * m.pAMP() / m.CM();
  ASSERT_GT(miss_term, hit_term);
  const auto r = sensitivity(m, 2.0);
  EXPECT_GT(std::max({r.cm_gain, r.pmr_gain, r.pamp_gain}), r.ch_gain);
}

TEST(Sensitivity, GainsAreNonNegativeAndBounded) {
  const auto m = measured();
  const auto r = sensitivity(m, 2.0);
  for (const double g :
       {r.h_gain, r.ch_gain, r.pmr_gain, r.pamp_gain, r.cm_gain}) {
    EXPECT_GE(g, 0.0);
    EXPECT_LE(g, 1.0);
  }
}

TEST(Sensitivity, FactorMustExceedOne) {
  EXPECT_THROW(sensitivity(measured(), 1.0), util::LpmError);
}

TEST(Sensitivity, EmptyMetricsGiveZeroGains) {
  const CamatMetrics empty;
  const auto r = sensitivity(empty, 2.0);
  EXPECT_DOUBLE_EQ(r.ch_gain, 0.0);
  EXPECT_DOUBLE_EQ(r.cm_gain, 0.0);
}

}  // namespace
}  // namespace lpm::camat
