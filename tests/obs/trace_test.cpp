// TraceSession guarantees: the file is one syntactically valid JSON array
// regardless of how many threads emit, close() is idempotent and final, and
// a null session makes every span free.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace lpm::obs {
namespace {

std::string temp_trace_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Minimal structural JSON check: balanced {}/[] outside strings, array
/// shape. The CI observability job runs `python -m json.tool` on the real
/// artifact; this keeps the guarantee covered in plain ctest too.
bool json_structure_ok(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char ch : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (ch == '\\') {
        escaped = true;
      } else if (ch == '"') {
        in_string = false;
      }
      continue;
    }
    if (ch == '"') in_string = true;
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

TEST(TraceSession, WritesValidJsonArray) {
  const std::string path = temp_trace_path("lpm_trace_test_basic.json");
  {
    TraceSession session(path);
    const auto t0 = session.now_us();
    session.complete_event("span.a", "test", t0, 10, {{"x", 1.5}});
    session.counter_event("counter.b", session.now_us(),
                          {{"v1", 1.0}, {"v2", 2.0}});
    session.instant_event("mark.c", "test", session.now_us());
    EXPECT_EQ(session.events_written(), 3u);
    session.close();
  }
  const std::string body = slurp(path);
  EXPECT_TRUE(json_structure_ok(body)) << body;
  EXPECT_EQ(body.front(), '[');
  EXPECT_NE(body.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(body.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(body.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(body.find("\"span.a\""), std::string::npos);
  std::filesystem::remove(path);
}

TEST(TraceSession, CloseIsIdempotentAndFinal) {
  const std::string path = temp_trace_path("lpm_trace_test_close.json");
  TraceSession session(path);
  session.instant_event("before", "test", session.now_us());
  session.close();
  session.close();  // idempotent
  session.instant_event("after", "test", session.now_us());  // no-op
  EXPECT_EQ(session.events_written(), 1u);
  const std::string body = slurp(path);
  EXPECT_TRUE(json_structure_ok(body)) << body;
  EXPECT_EQ(body.find("after"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(TraceSession, UnwritablePathThrows) {
  EXPECT_THROW(TraceSession("/nonexistent-dir/trace.json"), util::LpmError);
}

TEST(TraceSession, ConcurrentEmittersProduceValidJson) {
  const std::string path = temp_trace_path("lpm_trace_test_mt.json");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  {
    TraceSession session(path);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          ScopedSpan span(&session, "worker.span", "test");
          span.arg("thread", static_cast<double>(t));
          span.arg("i", static_cast<double>(i));
        }
      });
    }
    for (auto& th : threads) th.join();
    session.close();
    EXPECT_EQ(session.events_written(),
              static_cast<std::uint64_t>(kThreads) * kPerThread);
  }
  const std::string body = slurp(path);
  EXPECT_TRUE(json_structure_ok(body));
  // Distinct tids: each worker shows up as its own Perfetto track.
  std::set<std::string> tids;
  for (auto pos = body.find("\"tid\":"); pos != std::string::npos;
       pos = body.find("\"tid\":", pos + 1)) {
    const auto start = pos + 6;
    const auto end = body.find_first_of(",}", start);
    tids.insert(body.substr(start, end - start));
  }
  EXPECT_GE(tids.size(), 2u);
  std::filesystem::remove(path);
}

TEST(TraceSession, EscapesSpecialCharactersInNames) {
  const std::string path = temp_trace_path("lpm_trace_test_escape.json");
  {
    TraceSession session(path);
    session.instant_event("quote\"back\\slash\nnewline", "test",
                          session.now_us());
    session.close();
  }
  const std::string body = slurp(path);
  EXPECT_TRUE(json_structure_ok(body)) << body;
  // Quotes/backslashes gain escapes; control chars flatten to spaces.
  EXPECT_NE(body.find("quote\\\"back\\\\slash newline"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(ScopedSpan, NullSessionIsFree) {
  ScopedSpan span(nullptr, "never.emitted", "test");
  span.arg("ignored", 1.0);
  // Destructor must not crash; nothing to assert beyond surviving.
  SUCCEED();
}

TEST(ObsSpanMacro, CompilesAndIsNoOpWhenTracingOff) {
  // LPM_TRACE is unset under ctest, so global() is null and the macro span
  // must cost (and do) nothing.
  OBS_SPAN("macro.test", "test");
  SUCCEED();
}

TEST(TraceSession, TimestampsAreMonotonic) {
  const std::string path = temp_trace_path("lpm_trace_test_ts.json");
  TraceSession session(path);
  const auto a = session.now_us();
  const auto b = session.now_us();
  EXPECT_LE(a, b);
  session.close();
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace lpm::obs
