// Tier-1 guarantees of the metrics registry: sharded concurrent writes sum
// to exactly the serial total, histogram bucket edges are upper-inclusive,
// and snapshots taken while writers are running are safe (TSan-clean) and
// never overshoot the final total.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace lpm::obs {
namespace {

TEST(MetricsRegistry, CounterAddsAndSnapshots) {
  MetricsRegistry reg;
  auto c = reg.counter("test.counter");
  c.inc();
  c.add(41);
  const auto snap = reg.snapshot();
  ASSERT_TRUE(snap.counters.contains("test.counter"));
  EXPECT_EQ(snap.counters.at("test.counter"), 42u);
  EXPECT_EQ(snap.counter_or_zero("test.counter"), 42u);
  EXPECT_EQ(snap.counter_or_zero("absent"), 0u);
}

TEST(MetricsRegistry, ReRegisteringReturnsSameMetric) {
  MetricsRegistry reg;
  auto a = reg.counter("same.name");
  auto b = reg.counter("same.name");
  a.inc();
  b.inc();
  EXPECT_EQ(reg.snapshot().counters.at("same.name"), 2u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistry, GaugeIsLastWriteWins) {
  MetricsRegistry reg;
  auto g = reg.gauge("test.gauge");
  g.set(1.5);
  g.set(2.5);
  EXPECT_DOUBLE_EQ(reg.snapshot().gauges.at("test.gauge"), 2.5);
}

TEST(MetricsRegistry, ConcurrentIncrementsEqualSerialTotal) {
  MetricsRegistry reg;
  auto c = reg.counter("test.concurrent");
  auto h = reg.histogram("test.concurrent_h", {1.0, 2.0, 4.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        h.observe(static_cast<double>(t % 4));
      }
    });
  }
  for (auto& th : threads) th.join();

  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("test.concurrent"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  const auto& hist = snap.histograms.at("test.concurrent_h");
  EXPECT_EQ(hist.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t bucket_total = 0;
  for (const auto n : hist.counts) bucket_total += n;
  EXPECT_EQ(bucket_total, hist.count);
}

TEST(MetricsRegistry, HistogramBucketEdgesAreUpperInclusive) {
  MetricsRegistry reg;
  auto h = reg.histogram("test.buckets", {1.0, 10.0, 100.0});
  h.observe(0.5);    // <= 1       -> bucket 0
  h.observe(1.0);    // == edge    -> bucket 0 (upper-inclusive)
  h.observe(1.0001); // > 1, <= 10 -> bucket 1
  h.observe(10.0);   //            -> bucket 1
  h.observe(99.0);   //            -> bucket 2
  h.observe(1000.0); // > last     -> overflow bucket 3

  const auto hist = reg.snapshot().histograms.at("test.buckets");
  ASSERT_EQ(hist.bounds.size(), 3u);
  ASSERT_EQ(hist.counts.size(), 4u);
  EXPECT_EQ(hist.counts[0], 2u);
  EXPECT_EQ(hist.counts[1], 2u);
  EXPECT_EQ(hist.counts[2], 1u);
  EXPECT_EQ(hist.counts[3], 1u);
  EXPECT_EQ(hist.count, 6u);
  EXPECT_DOUBLE_EQ(hist.sum, 0.5 + 1.0 + 1.0001 + 10.0 + 99.0 + 1000.0);
  EXPECT_GT(hist.mean(), 0.0);
}

TEST(MetricsRegistry, HistogramRejectsBadBounds) {
  MetricsRegistry reg;
  EXPECT_THROW((void)reg.histogram("bad.empty", {}), util::LpmError);
  EXPECT_THROW((void)reg.histogram("bad.order", {2.0, 1.0}), util::LpmError);
  EXPECT_THROW((void)reg.histogram("bad.dup", {1.0, 1.0}), util::LpmError);
}

// The snapshot-while-writing guarantee: concurrent snapshots observe a
// monotonically growing (never overshooting) total and no data race. Run
// under TSan in CI (the -DLPM_SANITIZE=thread job) this is the proof that
// merge-on-read needs no stop-the-world.
TEST(MetricsRegistry, SnapshotWhileWritingIsSafeAndMonotonic) {
  MetricsRegistry reg;
  auto c = reg.counter("test.racing");
  auto h = reg.histogram("test.racing_h", MetricsRegistry::latency_ms_bounds());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  constexpr std::uint64_t kTotal =
      static_cast<std::uint64_t>(kThreads) * kPerThread;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        h.observe(1.0);
      }
    });
  }

  // Snapshot continuously while the writers run; the loop terminates when a
  // snapshot finally reports the exact total (guaranteed once all writers
  // are done, since snapshots after quiescence are exact).
  std::uint64_t last = 0;
  for (;;) {
    const auto now = reg.snapshot().counter_or_zero("test.racing");
    EXPECT_GE(now, last);
    EXPECT_LE(now, kTotal);
    last = now;
    if (now == kTotal) break;
    std::this_thread::yield();
  }
  for (auto& th : writers) th.join();
  EXPECT_EQ(reg.snapshot().counter_or_zero("test.racing"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsSnapshot, JsonOutputIsStructurallyValid) {
  MetricsRegistry reg;
  reg.counter("a.count").add(3);
  reg.gauge("b.gauge").set(1.25);
  reg.histogram("c.hist", {1.0, 2.0}).observe(1.5);
  std::ostringstream os;
  reg.snapshot().write_json(os);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '{');
  // Balanced braces/brackets — the CI job runs a real JSON parser on the
  // file the atexit hook writes; here we sanity-check the shape.
  int depth = 0;
  for (const char ch : json) {
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"a.count\":3"), std::string::npos);
}

TEST(MetricsSnapshot, TextOutputListsEveryMetric) {
  MetricsRegistry reg;
  reg.counter("z.last").inc();
  reg.counter("a.first").inc();
  std::ostringstream os;
  reg.snapshot().write_text(os);
  const std::string text = os.str();
  const auto a = text.find("a.first");
  const auto z = text.find("z.last");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(z, std::string::npos);
  EXPECT_LT(a, z);  // sorted by name, stable run-to-run
}

TEST(ScopedTimer, ObservesElapsedOnDestruction) {
  MetricsRegistry reg;
  auto h = reg.histogram("test.timer_ms", MetricsRegistry::latency_ms_bounds());
  {
    ScopedTimer timer(h);
    EXPECT_GE(timer.elapsed_ms(), 0.0);
  }
  EXPECT_EQ(reg.snapshot().histograms.at("test.timer_ms").count, 1u);
}

TEST(MetricsRegistry, GlobalIsSingleton) {
  EXPECT_EQ(&MetricsRegistry::global(), &MetricsRegistry::global());
}

TEST(DumpMetrics, WritesJsonFileForJsonPath) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "lpm_obs_dump_test.json")
          .string();
  MetricsRegistry::global().counter("test.dump_marker").inc();
  ASSERT_TRUE(dump_metrics(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("\"test.dump_marker\""), std::string::npos);
  std::filesystem::remove(path);
}

TEST(DumpMetrics, ReturnsFalseOnUnwritablePath) {
  EXPECT_FALSE(dump_metrics("/nonexistent-dir/metrics.json"));
}

}  // namespace
}  // namespace lpm::obs
