// The metric-name catalogue contract: every name documented in
// OBSERVABILITY.md is emitted into the global registry by real
// instrumentation — an engine batch (exp.* and sim.*, including a
// three-level machine for the l2p names) and an LPM walk (lpm.*). A name
// in the doc that no code emits fails here, so the catalogue cannot rot.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/design_space.hpp"
#include "core/lpm_algorithm.hpp"
#include "exp/experiment_engine.hpp"
#include "model/analytic.hpp"
#include "obs/metrics.hpp"
#include "srv/client.hpp"
#include "srv/router.hpp"
#include "srv/server.hpp"
#include "trace/spec_like.hpp"

namespace lpm {
namespace {

/// Minimal tunable that converges on the second iteration, enough to drive
/// every lpm.* metric.
class TwoStepTunable final : public core::LpmTunable {
 public:
  core::LpmObservation measure() override {
    core::LpmObservation obs;
    obs.lpmr.lpmr1 = lpmr1_;
    obs.lpmr.lpmr2 = 1.0;
    obs.lpmr.lpmr3 = 1.0;
    obs.t1 = 2.0;
    obs.t2 = 2.0;
    obs.config_label = "catalogue";
    return obs;
  }
  bool optimize_l1() override {
    lpmr1_ = 1.5;
    return true;
  }
  bool optimize_l2() override { return false; }
  bool reduce_overprovision() override { return false; }

 private:
  double lpmr1_ = 3.0;
};

TEST(MetricCatalogue, DocumentedNamesAreEmitted) {
  // One two-level and one three-level point through the engine: together
  // they touch every sim.cache.* / sim.camat.* level suffix. calibrate=true
  // exercises sim.calibrations.
  exp::ExperimentEngine engine(
      exp::ExperimentEngine::Options::builder().threads(2).build());
  const auto workload =
      trace::spec_profile(trace::SpecBenchmark::kGcc, 20000, 11);

  const auto two_level = sim::MachineConfig::single_core_default();
  const auto three_level = sim::MachineConfig::three_level_default();

  std::vector<exp::SimJob> jobs;
  jobs.push_back(exp::SimJob::solo(two_level, workload, /*calibrate=*/true));
  jobs.push_back(exp::SimJob::solo(three_level, workload, /*calibrate=*/false));
  // Repeat of the first point: exercises the memo cache (exp.jobs.cache_hits).
  jobs.push_back(exp::SimJob::solo(two_level, workload, /*calibrate=*/true));
  // Analytic points (model.backend.*): two distinct rdh configs of one
  // workload — the second is served by the cached reuse profile and
  // calibration — plus one fa config for its evals counter.
  model::register_analytic_executors();
  {
    exp::SimJob rdh =
        exp::SimJob::solo(two_level, workload, /*calibrate=*/false, "rdh-a");
    rdh.backend = model::kRdhBackend;
    jobs.push_back(rdh);
    sim::MachineConfig bigger = two_level;
    bigger.l1.size_bytes *= 2;
    exp::SimJob rdh2 =
        exp::SimJob::solo(bigger, workload, /*calibrate=*/false, "rdh-b");
    rdh2.backend = model::kRdhBackend;
    jobs.push_back(rdh2);
    exp::SimJob fa =
        exp::SimJob::solo(two_level, workload, /*calibrate=*/false, "fa-a");
    fa.backend = model::kFaBackend;
    jobs.push_back(fa);
  }
  const auto results = engine.run_batch(jobs);
  ASSERT_EQ(results.size(), 6u);

  // One screened sweep over a single candidate (lpm.screened_sweeps).
  core::SweepOptions sweep_opts;
  sweep_opts.engine = &engine;
  sweep_opts.confirm_top_k = 1;
  const auto sweep = core::screen_then_confirm_sweep(
      two_level, workload, {core::ArchKnobs{}}, sweep_opts);
  ASSERT_EQ(sweep.confirmed.size(), 1u);

  TwoStepTunable tunable;
  core::LpmAlgorithmConfig cfg;
  cfg.prefetch_candidates = false;
  const core::LpmAlgorithm algorithm(cfg);
  const auto outcome = algorithm.run(tunable);
  ASSERT_TRUE(outcome.converged);

  // A screen + confirm pair of the same toy tunable (lpm.two_stage_walks).
  TwoStepTunable screen_tunable, confirm_tunable;
  const auto two_stage = algorithm.run_two_stage(screen_tunable, confirm_tunable);
  ASSERT_TRUE(two_stage.confirm.converged);

  const auto snap = obs::MetricsRegistry::global().snapshot();

  // Counters: keep in lockstep with the OBSERVABILITY.md catalogue.
  const std::vector<std::string> counters = {
      "exp.jobs.submitted", "exp.jobs.executed", "exp.jobs.cache_hits",
      "exp.jobs.failed", "exp.jobs.retries", "exp.jobs.timeouts",
      "exp.jobs.faults_injected", "exp.jobs.journal_skips",
      "exp.queue.enqueue_spins", "exp.queue.pop_spins", "exp.queue.parks",
      "exp.workers.pinned", "exp.workers.pin_failed",
      "sim.runs", "sim.cycles", "sim.instructions", "sim.calibrations",
      "sim.cache.accesses.l1", "sim.cache.hits.l1", "sim.cache.misses.l1",
      "sim.cache.accesses.l2", "sim.cache.hits.l2", "sim.cache.misses.l2",
      "sim.cache.accesses.l2p", "sim.cache.hits.l2p", "sim.cache.misses.l2p",
      "sim.camat.pure_misses.l1", "sim.camat.pure_misses.l2",
      "sim.camat.pure_misses.l2p", "sim.camat.pure_misses.dram",
      "lpm.walks", "lpm.iterations", "lpm.converged", "lpm.exhausted",
      "lpm.two_stage_walks", "lpm.screened_sweeps",
      "model.backend.evals.cycle", "model.backend.evals.rdh",
      "model.backend.evals.fa", "model.backend.profile_builds",
      "model.backend.profile_cache_hits", "model.backend.calibrations",
      "model.backend.calibration_cache_hits",
  };
  for (const auto& name : counters) {
    EXPECT_TRUE(snap.counters.contains(name)) << "missing counter: " << name;
  }

  const std::vector<std::string> histograms = {
      "exp.job.queue_wait_ms", "exp.job.run_ms", "exp.batch.size",
      "exp.queue.depth", "exp.worker.tasks",
      "sim.camat.hit_concurrency.l1", "sim.camat.hit_concurrency.l2",
      "sim.camat.hit_concurrency.l2p",
      "sim.camat.pure_miss_concurrency.l1",
      "sim.camat.pure_miss_concurrency.l2",
      "lpm.lpmr1", "lpm.lpmr2",
  };
  for (const auto& name : histograms) {
    EXPECT_TRUE(snap.histograms.contains(name))
        << "missing histogram: " << name;
  }

  // Semantic spot checks: the engine really executed and the cache really
  // hit; the sim counters really aggregated a run.
  EXPECT_GE(snap.counter_or_zero("exp.jobs.submitted"), 3u);
  EXPECT_GE(snap.counter_or_zero("exp.jobs.executed"), 2u);
  EXPECT_GE(snap.counter_or_zero("exp.jobs.cache_hits"), 1u);
  EXPECT_GT(snap.counter_or_zero("sim.cycles"), 0u);
  EXPECT_GT(snap.counter_or_zero("sim.instructions"), 0u);
  EXPECT_GT(snap.counter_or_zero("sim.cache.accesses.l1"), 0u);
  EXPECT_GT(snap.counter_or_zero("sim.camat.pure_misses.l1"), 0u);
  EXPECT_GE(snap.counter_or_zero("lpm.walks"), 1u);
  EXPECT_GE(snap.counter_or_zero("lpm.iterations"), 2u);
  EXPECT_GE(snap.counter_or_zero("lpm.converged"), 1u);
  EXPECT_GE(snap.counter_or_zero("lpm.two_stage_walks"), 1u);
  EXPECT_GE(snap.counter_or_zero("lpm.screened_sweeps"), 1u);
  EXPECT_GE(snap.counter_or_zero("model.backend.evals.rdh"), 2u);
  EXPECT_GE(snap.counter_or_zero("model.backend.evals.fa"), 1u);
  EXPECT_GE(snap.counter_or_zero("model.backend.profile_builds"), 1u);
  EXPECT_GE(snap.counter_or_zero("model.backend.profile_cache_hits"), 1u);
  EXPECT_GE(snap.counter_or_zero("model.backend.calibrations"), 1u);
  EXPECT_GE(snap.counter_or_zero("model.backend.calibration_cache_hits"), 1u);
  EXPECT_GT(snap.histograms.at("exp.job.run_ms").count, 0u);
  EXPECT_GT(snap.histograms.at("lpm.lpmr1").count, 0u);
}

TEST(MetricCatalogue, ServerNamesAreEmitted) {
  // Constructing the lpmd server registers every srv.* metric (counters,
  // gauges, histograms are member handles); one job through it makes the
  // core counters move. Keep the name lists in lockstep with the srv.*
  // section of OBSERVABILITY.md.
  srv::Server::Options opts;
  opts.endpoint = testing::TempDir() + "catalogue_lpmd.sock";
  opts.journal_path = testing::TempDir() + "catalogue_lpmd.journal";
  std::remove(opts.journal_path.c_str());
  srv::Server server(std::move(opts));
  server.start();
  srv::Client client(server.options().endpoint, "catalogue");
  client.connect();
  srv::JobSpec spec;
  spec.kind = "simulate";
  spec.workload = "403.gcc";
  spec.length = 2'000;
  ASSERT_TRUE(client.submit("m1", spec));
  bool done = false;
  for (int i = 0; i < 300 && !done; ++i) {
    const auto frame = client.poll(100);
    done = frame && frame->get_string("op").value_or("") == "done";
  }
  ASSERT_TRUE(done);
  server.stop();

  const auto snap = obs::MetricsRegistry::global().snapshot();
  const std::vector<std::string> counters = {
      "srv.connections.accepted", "srv.connections.reaped",
      "srv.frames.received", "srv.frames.sent",
      "srv.jobs.accepted", "srv.jobs.degraded", "srv.jobs.retry_after",
      "srv.jobs.shed", "srv.jobs.completed", "srv.jobs.failed",
      "srv.jobs.deadline_expired", "srv.jobs.recovered",
      "srv.cache.hits", "srv.cache.misses", "srv.cache.evictions",
  };
  for (const auto& name : counters) {
    EXPECT_TRUE(snap.counters.contains(name)) << "missing counter: " << name;
  }
  for (const auto& name : {"srv.queue.depth", "srv.cache.bytes"}) {
    EXPECT_TRUE(snap.gauges.contains(name)) << "missing gauge: " << name;
  }
  for (const auto& name : {"srv.job.queue_wait_ms", "srv.job.service_ms"}) {
    EXPECT_TRUE(snap.histograms.contains(name))
        << "missing histogram: " << name;
  }
  EXPECT_GE(snap.counter_or_zero("srv.connections.accepted"), 1u);
  EXPECT_GE(snap.counter_or_zero("srv.jobs.accepted"), 1u);
  EXPECT_GE(snap.counter_or_zero("srv.jobs.completed"), 1u);
  EXPECT_GE(snap.counter_or_zero("srv.frames.sent"), 2u);  // hello_ok + ack + done
  EXPECT_GT(snap.histograms.at("srv.job.service_ms").count, 0u);
}

TEST(MetricCatalogue, ShardAndTcpNamesAreEmitted) {
  // A TCP shard behind a router: constructing them registers the srv.tcp.*
  // and srv.shard.* names, one routed job makes the routing counters move.
  srv::Server::Options shard_opts;
  shard_opts.endpoint = "tcp:127.0.0.1:0";
  shard_opts.workers = 1;
  srv::Server shard(shard_opts);
  shard.start();

  srv::Router::Options router_opts;
  router_opts.endpoint = "tcp:127.0.0.1:0";
  router_opts.shards.push_back(shard.bound_endpoint());
  srv::Router router(router_opts);
  router.start();

  srv::Client client(router.bound_endpoint(), "catalogue-shard");
  client.connect(10'000);
  srv::JobSpec spec;
  spec.backend = "rdh";  // analytic: instant
  spec.length = 1'000;
  ASSERT_TRUE(client.submit("m1", spec));
  bool done = false;
  for (int i = 0; i < 300 && !done; ++i) {
    const auto frame = client.poll(100);
    done = frame && frame->get_string("op").value_or("") == "done";
  }
  ASSERT_TRUE(done);
  router.stop();
  shard.stop();

  const auto snap = obs::MetricsRegistry::global().snapshot();
  const std::vector<std::string> counters = {
      "srv.tcp.connections.accepted", "srv.shard.jobs.routed",
      "srv.shard.attach.fanout", "srv.shard.upstream.connects",
      "srv.shard.upstream.lost",
  };
  for (const auto& name : counters) {
    EXPECT_TRUE(snap.counters.contains(name)) << "missing counter: " << name;
  }
  for (const auto& name : {"srv.tcp.port", "srv.shard.count"}) {
    EXPECT_TRUE(snap.gauges.contains(name)) << "missing gauge: " << name;
  }
  EXPECT_GE(snap.counter_or_zero("srv.tcp.connections.accepted"), 1u);
  EXPECT_GE(snap.counter_or_zero("srv.shard.jobs.routed"), 1u);
  EXPECT_GE(snap.counter_or_zero("srv.shard.upstream.connects"), 1u);
  EXPECT_EQ(snap.gauges.at("srv.shard.count"), 1.0);
}

}  // namespace
}  // namespace lpm
