#include "core/lpm_algorithm.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"

namespace lpm::core {
namespace {

/// Scripted system: each optimize step improves the LPMRs by fixed factors;
/// reductions worsen LPMR1. Lets the tests drive the algorithm through all
/// four Fig. 3 cases deterministically.
class MockTunable final : public LpmTunable {
 public:
  MockTunable(double lpmr1, double lpmr2, double t1, double t2)
      : lpmr1_(lpmr1), lpmr2_(lpmr2), t1_(t1), t2_(t2) {}

  LpmObservation measure() override {
    ++measurements;
    LpmObservation obs;
    obs.lpmr.lpmr1 = lpmr1_;
    obs.lpmr.lpmr2 = lpmr2_;
    obs.t1 = t1_;
    obs.t2 = t2_;
    obs.config_label = "mock";
    return obs;
  }
  bool optimize_l1() override {
    ++l1_steps;
    if (l1_budget == 0) return false;
    --l1_budget;
    lpmr1_ *= 0.6;
    return true;
  }
  bool optimize_l2() override {
    ++l2_steps;
    if (l2_budget == 0) return false;
    --l2_budget;
    lpmr2_ *= 0.5;
    return true;
  }
  bool reduce_overprovision() override {
    ++reduce_steps;
    if (reduce_budget == 0) return false;
    --reduce_budget;
    lpmr1_ *= 1.5;
    if (lpmr1_ > t1_) lpmr1_ = t1_;  // a careful reducer never violates T1
    return true;
  }

  double lpmr1_;
  double lpmr2_;
  double t1_;
  double t2_;
  int l1_budget = 100;
  int l2_budget = 100;
  int reduce_budget = 100;
  int measurements = 0;
  int l1_steps = 0;
  int l2_steps = 0;
  int reduce_steps = 0;
};

LpmAlgorithmConfig cfg(double delta = 1.0, double margin = 0.5) {
  LpmAlgorithmConfig c;
  c.delta_percent = delta;
  c.margin_fraction = margin;
  c.max_iterations = 64;
  return c;
}

TEST(LpmAlgorithm, ClassifyCaseI) {
  const LpmAlgorithm alg(cfg());
  LpmObservation obs;
  obs.lpmr.lpmr1 = 5.0;
  obs.lpmr.lpmr2 = 5.0;
  obs.t1 = 1.0;
  obs.t2 = 1.0;
  EXPECT_EQ(alg.classify(obs), LpmAction::kOptimizeBoth);
}

TEST(LpmAlgorithm, ClassifyCaseII) {
  const LpmAlgorithm alg(cfg());
  LpmObservation obs;
  obs.lpmr.lpmr1 = 5.0;
  obs.lpmr.lpmr2 = 0.5;
  obs.t1 = 1.0;
  obs.t2 = 1.0;
  EXPECT_EQ(alg.classify(obs), LpmAction::kOptimizeL1);
}

TEST(LpmAlgorithm, ClassifyCaseIIIandIV) {
  const LpmAlgorithm alg(cfg(1.0, 0.5));
  LpmObservation obs;
  obs.lpmr.lpmr2 = 0.1;
  obs.t1 = 1.0;
  obs.t2 = 1.0;
  obs.lpmr.lpmr1 = 0.3;  // 0.3 + 0.5 < 1.0 -> over-provisioned
  EXPECT_EQ(alg.classify(obs), LpmAction::kReduceOverprovision);
  obs.lpmr.lpmr1 = 0.7;  // within [T1-delta, T1]
  EXPECT_EQ(alg.classify(obs), LpmAction::kDone);
  obs.lpmr.lpmr1 = 1.0;  // exactly at T1 is acceptable
  EXPECT_EQ(alg.classify(obs), LpmAction::kDone);
}

TEST(LpmAlgorithm, TrimDisabledSkipsCaseIII) {
  auto c = cfg();
  c.trim_overprovision = false;
  const LpmAlgorithm alg(c);
  LpmObservation obs;
  obs.lpmr.lpmr1 = 0.1;
  obs.lpmr.lpmr2 = 0.1;
  obs.t1 = 1.0;
  obs.t2 = 1.0;
  EXPECT_EQ(alg.classify(obs), LpmAction::kDone);
}

TEST(LpmAlgorithm, ConvergesFromCaseI) {
  MockTunable sys(8.0, 9.0, 1.0, 1.0);
  const LpmAlgorithm alg(cfg());
  const LpmOutcome out = alg.run(sys);
  EXPECT_TRUE(out.converged);
  EXPECT_FALSE(out.exhausted);
  EXPECT_LE(out.final_observation.lpmr.lpmr1, 1.0);
  EXPECT_GT(sys.l1_steps, 0);
  EXPECT_GT(sys.l2_steps, 0);
  EXPECT_EQ(out.steps.back().action, LpmAction::kDone);
}

TEST(LpmAlgorithm, CaseIIOnlyTouchesL1) {
  MockTunable sys(8.0, 0.5, 1.0, 1.0);
  const LpmAlgorithm alg(cfg());
  const LpmOutcome out = alg.run(sys);
  EXPECT_TRUE(out.converged);
  EXPECT_EQ(sys.l2_steps, 0);
  EXPECT_GT(sys.l1_steps, 0);
}

TEST(LpmAlgorithm, OverprovisionTrimmedUntilMargin) {
  // Starts far below threshold: Case III fires until LPMR1 enters
  // [T1-delta, T1].
  MockTunable sys(0.05, 0.1, 1.0, 1.0);
  const LpmAlgorithm alg(cfg(1.0, 0.5));
  const LpmOutcome out = alg.run(sys);
  EXPECT_TRUE(out.converged);
  EXPECT_GT(sys.reduce_steps, 0);
  EXPECT_GE(out.final_observation.lpmr.lpmr1, 0.5);
  EXPECT_LE(out.final_observation.lpmr.lpmr1, 1.0);
}

TEST(LpmAlgorithm, ExhaustionReportedWhenOutOfActions) {
  MockTunable sys(8.0, 0.5, 1.0, 1.0);
  sys.l1_budget = 2;  // not enough to reach the threshold
  const LpmAlgorithm alg(cfg());
  const LpmOutcome out = alg.run(sys);
  EXPECT_FALSE(out.converged);
  EXPECT_TRUE(out.exhausted);
  EXPECT_GT(out.final_observation.lpmr.lpmr1, 1.0);
}

TEST(LpmAlgorithm, ReducerExhaustionCountsAsConverged) {
  // Below threshold but nothing reducible: the config is minimal; Fig. 3
  // ends the loop.
  MockTunable sys(0.05, 0.1, 1.0, 1.0);
  sys.reduce_budget = 0;
  const LpmAlgorithm alg(cfg());
  const LpmOutcome out = alg.run(sys);
  EXPECT_TRUE(out.converged);
}

TEST(LpmAlgorithm, StepsRecordTrajectory) {
  MockTunable sys(4.0, 4.0, 1.0, 1.0);
  const LpmAlgorithm alg(cfg());
  const LpmOutcome out = alg.run(sys);
  ASSERT_GE(out.steps.size(), 2u);
  EXPECT_EQ(out.steps.front().action, LpmAction::kOptimizeBoth);
  for (std::size_t i = 1; i < out.steps.size(); ++i) {
    EXPECT_EQ(out.steps[i].iteration, out.steps[i - 1].iteration + 1);
  }
}

TEST(LpmAlgorithm, MaxIterationsBoundsRun) {
  // Optimizers that report success but never improve: the iteration cap
  // must stop the loop.
  class Stubborn final : public LpmTunable {
   public:
    LpmObservation measure() override {
      LpmObservation obs;
      obs.lpmr.lpmr1 = 10.0;
      obs.lpmr.lpmr2 = 10.0;
      obs.t1 = 1.0;
      obs.t2 = 1.0;
      return obs;
    }
    bool optimize_l1() override { return true; }
    bool optimize_l2() override { return true; }
    bool reduce_overprovision() override { return true; }
  };
  Stubborn sys;
  auto c = cfg();
  c.max_iterations = 7;
  const LpmAlgorithm alg(c);
  const LpmOutcome out = alg.run(sys);
  EXPECT_TRUE(out.exhausted);
  EXPECT_EQ(out.steps.size(), 7u);
}

TEST(LpmAlgorithm, InvalidConfigThrows) {
  auto c = cfg();
  c.delta_percent = 0.0;
  EXPECT_THROW(LpmAlgorithm{c}, util::LpmError);
  c = cfg();
  c.margin_fraction = 1.0;
  EXPECT_THROW(LpmAlgorithm{c}, util::LpmError);
  c = cfg();
  c.max_iterations = 0;
  EXPECT_THROW(LpmAlgorithm{c}, util::LpmError);
}

}  // namespace
}  // namespace lpm::core
