// Edge cases of the Eq. 14/15 thresholds and the Fig. 3 case boundaries:
// exact-equality boundaries, degenerate overlap/eta inputs, the optional
// Case III margin, and the fine-vs-coarse granularity overshoot the fuzzer
// checks statistically but these tests pin analytically.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/tolerance.hpp"
#include "core/lpm_algorithm.hpp"
#include "core/lpm_model.hpp"
#include "util/error.hpp"

namespace lpm::core {
namespace {

/// Same friendly-round-numbers measurement as lpm_model_test.cpp:
/// C-AMAT1 = 2, eta = 0.5, fmem = 0.4, cpi_exe = 0.5, overlap = 0.9.
AppMeasurement synthetic_measurement() {
  AppMeasurement m;
  m.app = "synthetic";
  m.cpi_exe = 0.5;
  m.fmem = 0.4;
  m.overlap_ratio = 0.9;
  m.mr1 = 0.1;
  m.mr2 = 0.5;
  m.measured_stall_per_instr = 0.2;
  m.measured_cpi = 0.7;
  m.instructions = 1000;
  m.l1.accesses = 400;
  m.l1.hits = 360;
  m.l1.misses = 40;
  m.l1.pure_misses = 20;
  m.l1.active_cycles = 800;
  m.l1.hit_cycles = 400;
  m.l1.pure_miss_cycles = 400;
  m.l1.hit_phase_access_cycles = 800;
  m.l1.hit_access_cycles = 800;
  m.l1.pure_access_cycles = 800;
  m.l1.miss_cycles = 500;
  m.l1.miss_access_cycles = 1500;
  m.l1.total_miss_latency = 2400;
  m.l2.accesses = 40;
  m.l2.active_cycles = 1000;
  return m;
}

LpmObservation observe(double lpmr1, double t1, double lpmr2 = 0.0,
                       double t2 = std::numeric_limits<double>::infinity()) {
  LpmObservation obs;
  obs.lpmr.lpmr1 = lpmr1;
  obs.lpmr.lpmr2 = lpmr2;
  obs.t1 = t1;
  obs.t2 = t2;
  return obs;
}

TEST(ThresholdEdge, T1IsExactlyLinearInDelta) {
  for (const double overlap : {0.0, 0.3, 0.9, 0.99}) {
    const double fine = threshold_t1(1.0, overlap);
    EXPECT_DOUBLE_EQ(threshold_t1(10.0, overlap), 10.0 * fine)
        << "overlap=" << overlap;
  }
  EXPECT_DOUBLE_EQ(threshold_t1(1.0, 0.0), 0.01);
  EXPECT_NEAR(threshold_t1(1.0, 0.9), 0.1, tol::kExact);
}

TEST(ThresholdEdge, T1DegenerateOverlapYieldsInfinity) {
  // overlap == 1 means stall fully hidden: no finite LPMR1 can violate the
  // budget, so the threshold saturates rather than dividing by zero.
  EXPECT_TRUE(std::isinf(threshold_t1(1.0, 1.0)));
  EXPECT_TRUE(std::isinf(threshold_t1(10.0, 1.5)));  // >1 likewise
}

TEST(ThresholdEdge, T1RejectsNonPositiveDelta) {
  EXPECT_THROW((void)threshold_t1(0.0, 0.5), util::LpmError);
  EXPECT_THROW((void)threshold_t1(-1.0, 0.5), util::LpmError);
}

TEST(ThresholdEdge, T2MatchesTheClosedForm) {
  const auto m = synthetic_measurement();
  // T2 = (T1 - H1*fmem/(CH1*CPIexe)) / eta with T1 = 0.1, H = 2, CH = 2,
  // so hit_term = 2*0.4/(2*0.5) = 0.8 and T2 = (0.1 - 0.8)/0.5 = -1.4.
  const double t2 = threshold_t2(1.0, m);
  EXPECT_NEAR(t2, -1.4, 1e-12);
}

TEST(ThresholdEdge, T2IsMonotoneInDelta) {
  const auto m = synthetic_measurement();
  const double fine = threshold_t2(kFineGrainedDelta, m);
  const double coarse = threshold_t2(kCoarseGrainedDelta, m);
  EXPECT_GT(coarse, fine);
  // And exactly: T2 grows by (T1_coarse - T1_fine)/eta.
  const double dt1 = threshold_t1(10.0, m.overlap_ratio) -
                     threshold_t1(1.0, m.overlap_ratio);
  EXPECT_NEAR(coarse - fine, dt1 / eta_combined(m), 1e-12);
}

TEST(ThresholdEdge, T2SaturatesWhenEtaVanishes) {
  // eta <= 0 (no pure misses reach L2) makes the L2 layer irrelevant: T2
  // is infinite, so Case I (optimize both) can never trigger.
  auto m = synthetic_measurement();
  m.mr1 = 0.0;
  EXPECT_TRUE(std::isinf(threshold_t2(1.0, m)));

  const LpmAlgorithm alg(LpmAlgorithmConfig{});
  const auto obs = observe(/*lpmr1=*/5.0, /*t1=*/0.1, /*lpmr2=*/1e9,
                           threshold_t2(1.0, m));
  EXPECT_EQ(alg.classify(obs), LpmAction::kOptimizeL1);
}

TEST(ThresholdEdge, ClassifyBoundaryIsMatchedNotOptimize) {
  // Fig. 3 uses strict inequality: LPMR1 == T1 is Case IV (matched), not
  // Case I/II.
  const LpmAlgorithm alg(LpmAlgorithmConfig{});
  EXPECT_EQ(alg.classify(observe(0.1, 0.1)), LpmAction::kDone);
  EXPECT_EQ(alg.classify(observe(std::nextafter(0.1, 1.0), 0.1, 0.0, 0.0)),
            LpmAction::kOptimizeL1);
  EXPECT_EQ(alg.classify(observe(std::nextafter(0.1, 1.0), 0.1, 1.0, 0.5)),
            LpmAction::kOptimizeBoth);
}

TEST(ThresholdEdge, CaseThreeMarginBoundary) {
  // With margin_fraction = 0.5, delta = T1/2: Case III requires
  // LPMR1 + delta < T1, i.e. LPMR1 strictly below T1/2.
  const LpmAlgorithm alg(LpmAlgorithmConfig{});  // margin 0.5, trim on
  const double t1 = 0.2;
  EXPECT_EQ(alg.classify(observe(0.1, t1)), LpmAction::kDone)
      << "LPMR1 + delta == T1 exactly is matched, not over-provisioned";
  EXPECT_EQ(alg.classify(observe(0.09, t1)), LpmAction::kReduceOverprovision);
  EXPECT_EQ(alg.classify(observe(0.0, t1)), LpmAction::kReduceOverprovision);
}

TEST(ThresholdEdge, TrimDisabledTurnsCaseThreeIntoDone) {
  LpmAlgorithmConfig cfg;
  cfg.trim_overprovision = false;
  const LpmAlgorithm alg(cfg);
  EXPECT_EQ(alg.classify(observe(0.0, 0.2)), LpmAction::kDone);
}

TEST(ThresholdEdge, ZeroMarginTrimsEverythingBelowT1) {
  LpmAlgorithmConfig cfg;
  cfg.margin_fraction = 0.0;
  const LpmAlgorithm alg(cfg);
  EXPECT_EQ(alg.classify(observe(std::nextafter(0.2, 0.0), 0.2)),
            LpmAction::kReduceOverprovision);
  EXPECT_EQ(alg.classify(observe(0.2, 0.2)), LpmAction::kDone);
}

TEST(ThresholdEdge, ConfigValidationRejectsDegenerateKnobs) {
  LpmAlgorithmConfig bad;
  bad.delta_percent = 0.0;
  EXPECT_THROW(LpmAlgorithm{bad}, util::LpmError);
  bad = {};
  bad.margin_fraction = 1.0;  // delta == T1 would make Case III unreachable
  EXPECT_THROW(LpmAlgorithm{bad}, util::LpmError);
  bad = {};
  bad.max_iterations = 0;
  EXPECT_THROW(LpmAlgorithm{bad}, util::LpmError);
}

TEST(ThresholdEdge, CoarseGranularityNeverSendsAMatchedRunBack) {
  // The Fig. 3 stability property the fuzzer asserts per case, pinned
  // analytically: T1 grows 10x from 1% to 10%, so an LPMR1 between the two
  // thresholds is Optimize under fine and Done (or trim) under coarse —
  // never the reverse.
  const double overlap = 0.6;
  const double t1_fine = threshold_t1(kFineGrainedDelta, overlap);
  const double t1_coarse = threshold_t1(kCoarseGrainedDelta, overlap);
  const double lpmr1 = 0.5 * (t1_fine + t1_coarse);
  ASSERT_GT(lpmr1, t1_fine);
  ASSERT_LT(lpmr1, t1_coarse);

  const LpmAlgorithm fine(LpmAlgorithmConfig{.delta_percent = kFineGrainedDelta});
  const LpmAlgorithm coarse(
      LpmAlgorithmConfig{.delta_percent = kCoarseGrainedDelta});
  const auto fine_action =
      fine.classify(observe(lpmr1, t1_fine, 0.0, 0.0));
  const auto coarse_action =
      coarse.classify(observe(lpmr1, t1_coarse, 0.0, 0.0));
  EXPECT_EQ(fine_action, LpmAction::kOptimizeL1);
  EXPECT_EQ(coarse_action, LpmAction::kDone);
}

TEST(ThresholdEdge, MeetingTheFineTargetImpliesTheCoarseOne) {
  auto m = synthetic_measurement();
  m.measured_stall_per_instr = 0.004;  // below 1% of cpi_exe = 0.005
  ASSERT_TRUE(meets_stall_target(m, kFineGrainedDelta));
  EXPECT_TRUE(meets_stall_target(m, kCoarseGrainedDelta));
  m.measured_stall_per_instr = 0.03;  // between the 1% and 10% budgets
  EXPECT_FALSE(meets_stall_target(m, kFineGrainedDelta));
  EXPECT_TRUE(meets_stall_target(m, kCoarseGrainedDelta));
}

}  // namespace
}  // namespace lpm::core
