#include "core/online_controller.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "trace/spec_like.hpp"
#include "trace/synthetic.hpp"
#include "util/error.hpp"

namespace lpm::core {
namespace {

struct OnlineRun {
  sim::SystemResult result;
  std::uint64_t grow = 0;
  std::uint64_t release = 0;
  std::vector<OnlineIntervalRecord> history;
};

/// A machine with head-room to reconfigure into: many physical MSHRs, but
/// the runtime knobs start small.
sim::MachineConfig elastic_machine() {
  auto m = sim::MachineConfig::single_core_default();
  m.l1.mshr_entries = 16;  // physical maximum the limit can grow into
  m.l1.ports = 1;
  return m;
}

OnlineRun run_online(const trace::WorkloadProfile& wl, bool enable,
                     std::uint32_t start_mshr_limit, Cycle interval = 1500) {
  auto machine = elastic_machine();
  trace::SyntheticTrace calib(wl);
  const auto c = sim::measure_cpi_exe(machine, calib);

  std::vector<trace::TraceSourcePtr> traces;
  traces.push_back(std::make_unique<trace::SyntheticTrace>(wl));
  sim::System system(machine, std::move(traces));
  system.l1_cache(0).set_mshr_limit(start_mshr_limit);

  OnlineLpmConfig cfg;
  cfg.interval_cycles = interval;
  cfg.delta_percent = kCoarseGrainedDelta;
  cfg.cpi_exe = c.cpi_exe;
  cfg.max_ports = 4;
  OnlineLpmController controller(cfg);

  while (system.step()) {
    if (enable) controller.observe(system, 0);
  }
  OnlineRun out;
  out.result = system.collect();
  out.grow = controller.grow_actions();
  out.release = controller.release_actions();
  out.history = controller.history();
  return out;
}

TEST(OnlineController, ConfigValidation) {
  OnlineLpmConfig cfg;
  cfg.interval_cycles = 0;
  EXPECT_THROW(OnlineLpmController{cfg}, util::LpmError);
  cfg = OnlineLpmConfig{};
  cfg.cpi_exe = 0.0;
  EXPECT_THROW(OnlineLpmController{cfg}, util::LpmError);
  cfg = OnlineLpmConfig{};
  cfg.min_ports = 4;
  cfg.max_ports = 2;
  EXPECT_THROW(OnlineLpmController{cfg}, util::LpmError);
}

TEST(OnlineController, GrowsParallelismForStarvedStreamingWorkload) {
  const auto wl = trace::spec_profile(trace::SpecBenchmark::kBwaves, 120000, 3);
  const auto adaptive = run_online(wl, true, /*start_mshr_limit=*/2);
  EXPECT_GT(adaptive.grow, 0u);
  // The knobs actually moved.
  ASSERT_FALSE(adaptive.history.empty());
  const auto& last = adaptive.history.back();
  EXPECT_TRUE(last.mshr_limit > 2 || last.ports > 1);
}

TEST(OnlineController, AdaptiveBeatsStaticStarvedConfig) {
  const auto wl = trace::spec_profile(trace::SpecBenchmark::kBwaves, 120000, 3);
  const auto fixed = run_online(wl, false, /*start_mshr_limit=*/2);
  const auto adaptive = run_online(wl, true, /*start_mshr_limit=*/2);
  ASSERT_TRUE(fixed.result.completed);
  ASSERT_TRUE(adaptive.result.completed);
  EXPECT_LT(adaptive.result.cycles, fixed.result.cycles);
  EXPECT_LT(adaptive.result.cores[0].stall_per_instr(),
            fixed.result.cores[0].stall_per_instr());
}

TEST(OnlineController, ReleasesIdleParallelismForComputeWorkload) {
  // A compute-bound program with the MSHR limit maxed out: Case III should
  // hand the idle parallelism back.
  const auto wl = trace::spec_profile(trace::SpecBenchmark::kNamd, 100000, 5);
  const auto adaptive = run_online(wl, true, /*start_mshr_limit=*/16);
  EXPECT_GT(adaptive.release, 0u);
  ASSERT_FALSE(adaptive.history.empty());
  EXPECT_LT(adaptive.history.back().mshr_limit, 16u);
}

TEST(OnlineController, ReleaseCostsLittlePerformance) {
  const auto wl = trace::spec_profile(trace::SpecBenchmark::kNamd, 100000, 5);
  const auto fixed = run_online(wl, false, 16);
  const auto adaptive = run_online(wl, true, 16);
  // Giving back idle MSHRs must not slow the program appreciably.
  EXPECT_LT(adaptive.result.cycles,
            static_cast<Cycle>(static_cast<double>(fixed.result.cycles) * 1.05));
}

TEST(OnlineController, HistoryRecordsIntervalMetrics) {
  const auto wl = trace::spec_profile(trace::SpecBenchmark::kGcc, 60000, 7);
  const auto r = run_online(wl, true, 4);
  ASSERT_GT(r.history.size(), 3u);
  for (const auto& rec : r.history) {
    EXPECT_GT(rec.at, 0u);
    EXPECT_GE(rec.lpmr1, 0.0);
    EXPECT_GT(rec.t1, 0.0);
    EXPECT_GE(rec.ports, 1u);
    EXPECT_GE(rec.mshr_limit, 1u);
  }
  // Interval boundaries are strictly increasing.
  for (std::size_t i = 1; i < r.history.size(); ++i) {
    EXPECT_GT(r.history[i].at, r.history[i - 1].at);
  }
}

TEST(OnlineController, ReconfigCostAccounted) {
  const auto wl = trace::spec_profile(trace::SpecBenchmark::kBwaves, 80000, 3);
  auto machine = elastic_machine();
  trace::SyntheticTrace calib(wl);
  const auto c = sim::measure_cpi_exe(machine, calib);
  std::vector<trace::TraceSourcePtr> traces;
  traces.push_back(std::make_unique<trace::SyntheticTrace>(wl));
  sim::System system(machine, std::move(traces));
  system.l1_cache(0).set_mshr_limit(2);
  OnlineLpmConfig cfg;
  cfg.interval_cycles = 1000;
  cfg.cpi_exe = c.cpi_exe;
  OnlineLpmController controller(cfg);
  while (system.step()) controller.observe(system, 0);
  EXPECT_EQ(controller.reconfiguration_cost_cycles(),
            (controller.grow_actions() + controller.release_actions()) * 4);
}

TEST(RuntimeKnobs, CacheSettersClampAndCount) {
  auto machine = elastic_machine();
  std::vector<trace::TraceSourcePtr> traces;
  traces.push_back(std::make_unique<trace::SyntheticTrace>(
      trace::spec_profile(trace::SpecBenchmark::kGcc, 1000, 1)));
  sim::System system(machine, std::move(traces));
  auto& l1 = system.l1_cache(0);
  const auto before = l1.reconfigurations();
  l1.set_mshr_limit(99);  // clamps to the physical 16 == current: no-op
  EXPECT_EQ(l1.mshr_limit(), 16u);
  l1.set_mshr_limit(0);  // clamps to 1: counted
  EXPECT_EQ(l1.mshr_limit(), 1u);
  l1.set_ports(3);  // counted
  EXPECT_EQ(l1.ports(), 3u);
  l1.set_ports(3);  // no-op: not counted
  EXPECT_EQ(l1.reconfigurations(), before + 2);
  EXPECT_THROW(l1.set_ports(0), util::LpmError);
}

}  // namespace
}  // namespace lpm::core
