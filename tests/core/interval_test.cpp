#include "core/interval.hpp"

#include <gtest/gtest.h>

#include "trace/spec_like.hpp"
#include "util/error.hpp"

namespace lpm::core {
namespace {

IntervalStudyConfig fast_cfg(std::uint64_t interval, std::uint64_t cost) {
  IntervalStudyConfig c;
  c.interval_cycles = interval;
  c.processing_cost_cycles = cost;
  return c;
}

TEST(IntervalStudy, RequiresPhasedWorkload) {
  const auto machine = sim::MachineConfig::single_core_default();
  auto flat = trace::spec_profile(trace::SpecBenchmark::kGcc, 5000);
  EXPECT_THROW(run_interval_study(machine, flat, fast_cfg(10, 4)),
               util::LpmError);
}

TEST(IntervalStudy, RequiresSingleCore) {
  const auto machine = sim::MachineConfig::nuca16();
  const auto wl = trace::burst_profile(128, 0.3, 20000);
  EXPECT_THROW(run_interval_study(machine, wl, fast_cfg(10, 4)),
               util::LpmError);
}

TEST(IntervalStudy, FindsBurstsInPhasedWorkload) {
  const auto machine = sim::MachineConfig::single_core_default();
  const auto wl = trace::burst_profile(256, 0.3, 60000);
  const auto r = run_interval_study(machine, wl, fast_cfg(10, 4));
  EXPECT_GT(r.bursts.size(), 5u);
  EXPECT_GT(r.intervals, 0u);
  EXPECT_GT(r.detected_fraction(), 0.5);
  EXPECT_GT(r.timely_fraction(), 0.3);
  EXPECT_LE(r.timely_fraction(), 1.0);
}

TEST(IntervalStudy, TimelyNeverExceedsDetected) {
  const auto machine = sim::MachineConfig::single_core_default();
  const auto wl = trace::burst_profile(256, 0.3, 40000);
  const auto r = run_interval_study(machine, wl, fast_cfg(20, 40));
  EXPECT_LE(r.timely_fraction(), r.detected_fraction() + 1e-12);
}

TEST(IntervalStudy, LargerIntervalsDetectFewerBurstsTimely) {
  const auto machine = sim::MachineConfig::single_core_default();
  const auto wl = trace::burst_profile(192, 0.3, 60000);
  const auto fine = run_interval_study(machine, wl, fast_cfg(10, 4));
  const auto coarse = run_interval_study(machine, wl, fast_cfg(80, 4));
  EXPECT_GE(fine.timely_fraction(), coarse.timely_fraction());
}

TEST(IntervalStudy, HigherProcessingCostReducesTimeliness) {
  const auto machine = sim::MachineConfig::single_core_default();
  const auto wl = trace::burst_profile(192, 0.3, 60000);
  const auto cheap = run_interval_study(machine, wl, fast_cfg(20, 4));
  const auto pricey = run_interval_study(machine, wl, fast_cfg(20, 400));
  EXPECT_GE(cheap.timely_fraction(), pricey.timely_fraction());
}

TEST(IntervalStudy, BurstWindowsAreWellFormed) {
  const auto machine = sim::MachineConfig::single_core_default();
  const auto wl = trace::burst_profile(256, 0.25, 30000);
  const auto r = run_interval_study(machine, wl, fast_cfg(10, 4));
  for (const auto& b : r.bursts) {
    EXPECT_LE(b.begin, b.end);
    EXPECT_LE(b.end, r.total_cycles);
    if (b.timely) EXPECT_TRUE(b.detected);
    if (b.detected) {
      EXPECT_GE(b.detected_at, b.begin);
      EXPECT_LE(b.detected_at, b.end);
    }
  }
}

}  // namespace
}  // namespace lpm::core
