#include "core/design_space.hpp"

#include <gtest/gtest.h>

#include "trace/spec_like.hpp"
#include "util/error.hpp"

namespace lpm::core {
namespace {

trace::WorkloadProfile bwaves(std::uint64_t length = 150000) {
  // Long enough to pass the cold-start sweep and reach the L2-resident
  // steady state where the Table-I knobs matter.
  return trace::spec_profile(trace::SpecBenchmark::kBwaves, length, 17);
}

TEST(ArchKnobs, TableIColumnsMatchPaper) {
  const auto a = ArchKnobs::config_a();
  EXPECT_EQ(a.issue_width, 4u);
  EXPECT_EQ(a.iw_size, 32u);
  EXPECT_EQ(a.rob_size, 32u);
  EXPECT_EQ(a.l1_ports, 1u);
  EXPECT_EQ(a.mshr_entries, 4u);
  EXPECT_EQ(a.l2_interleave, 4u);
  const auto e = ArchKnobs::config_e();
  EXPECT_EQ(e.issue_width, 8u);
  EXPECT_EQ(e.iw_size, 96u);
  EXPECT_EQ(e.rob_size, 96u);
  EXPECT_EQ(e.l1_ports, 4u);
}

TEST(ArchKnobs, ApplySetsAllSixKnobs) {
  const auto base = sim::MachineConfig::single_core_default();
  const auto m = ArchKnobs::config_d().apply(base);
  EXPECT_EQ(m.core.issue_width, 8u);
  EXPECT_EQ(m.core.rob_size, 128u);
  EXPECT_EQ(m.core.iw_size, 128u);
  EXPECT_EQ(m.l1.ports, 4u);
  EXPECT_EQ(m.l1.mshr_entries, 16u);
  EXPECT_EQ(m.l2.banks, 8u);
  EXPECT_NO_THROW(m.validate());
}

TEST(ArchKnobs, CostOrderingMatchesParallelism) {
  EXPECT_LT(ArchKnobs::config_a().hardware_cost(),
            ArchKnobs::config_b().hardware_cost());
  EXPECT_LT(ArchKnobs::config_b().hardware_cost(),
            ArchKnobs::config_c().hardware_cost());
  EXPECT_LT(ArchKnobs::config_c().hardware_cost(),
            ArchKnobs::config_d().hardware_cost());
  // E is the trimmed D.
  EXPECT_LT(ArchKnobs::config_e().hardware_cost(),
            ArchKnobs::config_d().hardware_cost());
}

TEST(KnobLevels, SpaceIsAMillion) {
  const auto levels = KnobLevels::standard();
  EXPECT_EQ(levels.space_size(), 1000000u);
}

TEST(KnobLevels, TableIValuesAreReachable) {
  const auto levels = KnobLevels::standard();
  for (const auto k : {ArchKnobs::config_a(), ArchKnobs::config_b(),
                       ArchKnobs::config_c(), ArchKnobs::config_d(),
                       ArchKnobs::config_e()}) {
    const auto in = [](const std::vector<std::uint32_t>& v, std::uint32_t x) {
      return std::find(v.begin(), v.end(), x) != v.end();
    };
    EXPECT_TRUE(in(levels.issue_width, k.issue_width));
    EXPECT_TRUE(in(levels.iw_size, k.iw_size));
    EXPECT_TRUE(in(levels.rob_size, k.rob_size));
    EXPECT_TRUE(in(levels.l1_ports, k.l1_ports));
    EXPECT_TRUE(in(levels.mshr_entries, k.mshr_entries));
    EXPECT_TRUE(in(levels.l2_interleave, k.l2_interleave));
  }
}

TEST(DesignSpaceExplorer, MeasureIsMemoized) {
  DesignSpaceExplorer ex(sim::MachineConfig::single_core_default(), bwaves(),
                         KnobLevels::standard(), ArchKnobs::config_a());
  (void)ex.measure();
  EXPECT_EQ(ex.configs_evaluated(), 1u);
  (void)ex.measure();  // same config: no new simulation
  EXPECT_EQ(ex.configs_evaluated(), 1u);
}

TEST(DesignSpaceExplorer, OptimizeL1ChangesExactlyOneDiagnosis) {
  DesignSpaceExplorer ex(sim::MachineConfig::single_core_default(), bwaves(),
                         KnobLevels::standard(), ArchKnobs::config_a());
  const ArchKnobs before = ex.current();
  ASSERT_TRUE(ex.optimize_l1());
  const ArchKnobs after = ex.current();
  EXPECT_NE(before, after);
  EXPECT_GE(ex.reconfigurations(), 1u);
  EXPECT_EQ(ex.reconfiguration_cost_cycles(), ex.reconfigurations() * 4);
}

TEST(DesignSpaceExplorer, OptimizeL2StepsInterleaving) {
  DesignSpaceExplorer ex(sim::MachineConfig::single_core_default(), bwaves(),
                         KnobLevels::standard(), ArchKnobs::config_a());
  ASSERT_TRUE(ex.optimize_l2());
  EXPECT_EQ(ex.current().l2_interleave, 8u);
}

TEST(DesignSpaceExplorer, OptimizeL2SaturatesAtMax) {
  auto start = ArchKnobs::config_a();
  start.l2_interleave = 512;  // top level
  DesignSpaceExplorer ex(sim::MachineConfig::single_core_default(), bwaves(),
                         KnobLevels::standard(), start);
  EXPECT_FALSE(ex.optimize_l2());
}

TEST(DesignSpaceExplorer, MoreParallelismLowersLpmr1) {
  DesignSpaceExplorer ex(sim::MachineConfig::single_core_default(), bwaves(),
                         KnobLevels::standard(), ArchKnobs::config_a());
  const double weak = ex.evaluate(ArchKnobs::config_a()).l1.camat();
  const double strong = ex.evaluate(ArchKnobs::config_d()).l1.camat();
  EXPECT_LT(strong, weak);

  const auto lpmr_a =
      compute_lpmrs(ex.evaluate(ArchKnobs::config_a()));
  const auto lpmr_d =
      compute_lpmrs(ex.evaluate(ArchKnobs::config_d()));
  EXPECT_LT(lpmr_d.lpmr1, lpmr_a.lpmr1);
}

TEST(DesignSpaceExplorer, AlgorithmDrivesLpmr1Down) {
  DesignSpaceExplorer ex(sim::MachineConfig::single_core_default(), bwaves(),
                         KnobLevels::standard(), ArchKnobs::config_a(),
                         kCoarseGrainedDelta);
  LpmAlgorithmConfig acfg;
  acfg.delta_percent = kCoarseGrainedDelta;
  acfg.max_iterations = 24;
  acfg.trim_overprovision = false;
  const LpmAlgorithm alg(acfg);
  const LpmOutcome out = alg.run(ex);
  ASSERT_FALSE(out.steps.empty());
  const double first = out.steps.front().observation.lpmr.lpmr1;
  const double last = out.final_observation.lpmr.lpmr1;
  const double first_stall = out.steps.front().observation.stall_per_instr;
  const double last_stall = out.final_observation.stall_per_instr;
  EXPECT_LT(last_stall, first_stall);
  EXPECT_LT(last, first * 1.05);
}

TEST(DesignSpaceExplorer, RejectsMultiCoreBase) {
  auto base = sim::MachineConfig::nuca16();
  EXPECT_THROW(DesignSpaceExplorer(base, bwaves(), KnobLevels::standard(),
                                   ArchKnobs::config_a()),
               util::LpmError);
}

}  // namespace
}  // namespace lpm::core
