#include "core/diagnosis.hpp"

#include <gtest/gtest.h>

namespace lpm::core {
namespace {

/// A mismatched measurement skeleton the tests specialize.
AppMeasurement mismatched() {
  AppMeasurement m;
  m.cpi_exe = 0.25;
  m.fmem = 0.4;
  m.overlap_ratio = 0.5;
  m.mr1 = 0.2;
  m.mr2 = 0.3;
  m.measured_stall_per_instr = 0.5;
  m.measured_cpi = 0.8;
  m.instructions = 100000;
  // L1: C-AMAT = 4 (active 160k / accesses 40k).
  m.l1.accesses = 40000;
  m.l1.hits = 32000;
  m.l1.misses = 8000;
  m.l1.pure_misses = 6000;
  m.l1.active_cycles = 160000;
  m.l1.hit_cycles = 100000;
  m.l1.pure_miss_cycles = 60000;
  m.l1.hit_phase_access_cycles = 120000;
  m.l1.hit_access_cycles = 120000;
  m.l1.pure_access_cycles = 120000;  // CM = 2, pAMP = 20
  m.l1.miss_cycles = 80000;
  m.l1.miss_access_cycles = 160000;  // Cm = 2
  m.l1.total_miss_latency = 160000;  // AMP = 20
  m.l2.accesses = 8000;
  m.l2.active_cycles = 120000;
  m.l1_misses_total = 8000;
  m.l3.accesses = 2000;
  m.l3.active_cycles = 30000;
  m.l2_misses_total = 2000;
  return m;
}

TEST(Diagnosis, MatchedWhenLpmr1UnderThreshold) {
  auto m = mismatched();
  m.overlap_ratio = 0.999;  // T1 explodes
  const auto d = diagnose(m, HardwareContext{}, 10.0);
  EXPECT_EQ(d.primary(), Bottleneck::kMatched);
  EXPECT_TRUE(d.findings.empty());
  EXPECT_NE(d.narrative().find("matched"), std::string::npos);
}

TEST(Diagnosis, PortStarvationRankedWhenRejectionsHigh) {
  const auto m = mismatched();
  HardwareContext hw;
  hw.l1_ports = 1;
  hw.l1_rejections = 30000;  // 0.75 per access
  hw.mshr_entries = 16;      // Cm=2 << 16: no MSHR signal
  const auto d = diagnose(m, hw, 10.0);
  ASSERT_FALSE(d.findings.empty());
  EXPECT_EQ(d.primary(), Bottleneck::kL1Ports);
}

TEST(Diagnosis, MshrSaturationDetected) {
  const auto m = mismatched();  // Cm = 2
  HardwareContext hw;
  hw.mshr_entries = 2;  // Cm presses against the file
  hw.l1_misses = 8000;
  hw.l1_mshr_wait_cycles = 40000;  // 5 wait cycles per miss
  const auto d = diagnose(m, hw, 10.0);
  EXPECT_EQ(d.primary(), Bottleneck::kMshrParallelism);
}

TEST(Diagnosis, WindowBoundWhenMlpUnexposed) {
  const auto m = mismatched();  // Cm = 2, stalled heavily
  HardwareContext hw;
  hw.mshr_entries = 32;  // plenty of MSHRs, none used
  const auto d = diagnose(m, hw, 10.0);
  bool found = false;
  for (const auto& f : d.findings) {
    if (f.what == Bottleneck::kWindow) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Diagnosis, L2LayerFlaggedWhenLpmr2AboveT2) {
  auto m = mismatched();
  // Give the L1 hit path plenty of concurrency so T2 is positive: the
  // remaining budget can only be blown by the L2 term.
  m.l1.hit_access_cycles = 3'000'000;  // C_H = 30
  m.overlap_ratio = 0.9;               // T1 = 1.0
  const auto d = diagnose(m, HardwareContext{}, 10.0);
  // LPMR2 = camat2pm * fmem * mr1 / cpi_exe = 15*0.4*0.2/0.25 = 4.8.
  ASSERT_GT(d.t2, 0.0);
  EXPECT_GT(d.lpmr.lpmr2, d.t2);
  bool found = false;
  for (const auto& f : d.findings) {
    if (f.what == Bottleneck::kL2Layer) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Diagnosis, FallsBackToIssueBandwidth) {
  auto m = mismatched();
  // Remove every structural signal: no hw context, healthy L2/L3.
  m.l2.active_cycles = 100;
  m.l3.active_cycles = 10;
  m.measured_stall_per_instr = 0.01;  // no window signal
  const auto d = diagnose(m, HardwareContext{}, 10.0);
  ASSERT_FALSE(d.findings.empty());
  EXPECT_EQ(d.primary(), Bottleneck::kIssueBandwidth);
}

TEST(Diagnosis, FindingsRankedBySeverity) {
  const auto m = mismatched();
  HardwareContext hw;
  hw.l1_ports = 1;
  hw.l1_rejections = 4000;  // mild: 0.1/access -> severity 1.0
  hw.mshr_entries = 2;
  hw.l1_misses = 8000;
  hw.l1_mshr_wait_cycles = 80000;  // severe: 10 waits/miss
  const auto d = diagnose(m, hw, 10.0);
  ASSERT_GE(d.findings.size(), 2u);
  for (std::size_t i = 1; i < d.findings.size(); ++i) {
    EXPECT_GE(d.findings[i - 1].severity, d.findings[i].severity);
  }
  EXPECT_EQ(d.primary(), Bottleneck::kMshrParallelism);
}

TEST(Diagnosis, NarrativeListsEveryFinding) {
  const auto m = mismatched();
  HardwareContext hw;
  hw.l1_ports = 1;
  hw.l1_rejections = 30000;
  const auto d = diagnose(m, hw, 10.0);
  const std::string text = d.narrative();
  for (const auto& f : d.findings) {
    EXPECT_NE(text.find(to_string(f.what)), std::string::npos);
  }
  EXPECT_NE(text.find("LPMR1"), std::string::npos);
}

TEST(Diagnosis, BottleneckNames) {
  EXPECT_STREQ(to_string(Bottleneck::kMatched), "matched");
  EXPECT_STREQ(to_string(Bottleneck::kL1Ports), "L1-ports");
  EXPECT_STREQ(to_string(Bottleneck::kMemoryLayer), "memory-layer");
}

}  // namespace
}  // namespace lpm::core
