#include "core/lpm_model.hpp"

#include <gtest/gtest.h>
#include "common/tolerance.hpp"

#include <cmath>

#include "util/error.hpp"

namespace lpm::core {
namespace {

/// A hand-built measurement with friendly round numbers.
AppMeasurement synthetic_measurement() {
  AppMeasurement m;
  m.app = "synthetic";
  m.cpi_exe = 0.5;
  m.fmem = 0.4;
  m.overlap_ratio = 0.9;
  m.mr1 = 0.1;
  m.mr2 = 0.5;
  m.measured_stall_per_instr = 0.2;
  m.measured_cpi = 0.7;
  m.instructions = 1000;

  // L1: C-AMAT1 = 2 (active 800 / accesses 400), H=2, CH=2.
  m.l1.accesses = 400;
  m.l1.hits = 360;
  m.l1.misses = 40;
  m.l1.pure_misses = 20;
  m.l1.active_cycles = 800;
  m.l1.hit_cycles = 400;
  m.l1.pure_miss_cycles = 400;
  m.l1.hit_phase_access_cycles = 800;
  m.l1.hit_access_cycles = 800;
  m.l1.pure_access_cycles = 800;   // CM = 2, pAMP = 40
  m.l1.miss_cycles = 500;
  m.l1.miss_access_cycles = 1500;  // Cm = 3
  m.l1.total_miss_latency = 2400;  // AMP = 60

  // L2: C-AMAT2 = 25.
  m.l2.accesses = 40;
  m.l2.active_cycles = 1000;
  // L3: C-AMAT3 = 50.
  m.l3.accesses = 20;
  m.l3.active_cycles = 1000;
  return m;
}

TEST(LpmModel, LpmrFormulas) {
  const auto m = synthetic_measurement();
  const LpmrSet r = compute_lpmrs(m);
  EXPECT_DOUBLE_EQ(r.lpmr1, 2.0 * 0.4 / 0.5);               // Eq. 9
  EXPECT_DOUBLE_EQ(r.lpmr2, 25.0 * 0.4 * 0.1 / 0.5);        // Eq. 10
  EXPECT_DOUBLE_EQ(r.lpmr3, 50.0 * 0.4 * 0.1 * 0.5 / 0.5);  // Eq. 11
}

TEST(LpmModel, LpmrRequiresPositiveCpiExe) {
  auto m = synthetic_measurement();
  m.cpi_exe = 0.0;
  EXPECT_THROW(compute_lpmrs(m), util::LpmError);
}

TEST(LpmModel, EtaCombined) {
  const auto m = synthetic_measurement();
  // eta1 = (pAMP/AMP)*(Cm/CM) = (40/60)*(3/2) = 1; eta = eta1 * pMR/MR
  //      = 1 * (20/400)/(0.1) = 0.5.
  EXPECT_NEAR(m.l1.eta1(), 1.0, tol::kExact);
  EXPECT_NEAR(eta_combined(m), 0.5, tol::kExact);
}

TEST(LpmModel, EtaZeroWhenNoMisses) {
  auto m = synthetic_measurement();
  m.mr1 = 0.0;
  EXPECT_DOUBLE_EQ(eta_combined(m), 0.0);
}

TEST(LpmModel, StallEq7) {
  const auto m = synthetic_measurement();
  EXPECT_DOUBLE_EQ(stall_eq7(m), 0.4 * 2.0 * 0.1);
}

TEST(LpmModel, Eq12MatchesEq7Identically) {
  const auto m = synthetic_measurement();
  EXPECT_NEAR(stall_eq12(m), stall_eq7(m), tol::kExact);
}

TEST(LpmModel, Eq13Structure) {
  const auto m = synthetic_measurement();
  // (H1*fmem/CH1 + CPIexe*eta*LPMR2)*(1-overlap)
  const double expected = (2.0 * 0.4 / 2.0 + 0.5 * 0.5 * 2.0) * 0.1;
  EXPECT_NEAR(stall_eq13(m), expected, tol::kExact);
}

TEST(LpmModel, ThresholdT1) {
  EXPECT_DOUBLE_EQ(threshold_t1(1.0, 0.9), 0.1);   // 1% / 0.1
  EXPECT_DOUBLE_EQ(threshold_t1(10.0, 0.9), 1.0);
  EXPECT_DOUBLE_EQ(threshold_t1(10.0, 0.0), 0.1);
  EXPECT_TRUE(std::isinf(threshold_t1(1.0, 1.0)));
  EXPECT_THROW(threshold_t1(0.0, 0.5), util::LpmError);
}

TEST(LpmModel, ThresholdT2ConsistentWithEq13) {
  // At LPMR2 == T2, Eq. 13 yields exactly delta% * CPIexe.
  const auto m = synthetic_measurement();
  const double delta = 25.0;
  const double t2 = threshold_t2(delta, m);
  ASSERT_TRUE(std::isfinite(t2));
  auto probe = m;
  // stall(LPMR2=t2) = (H*fmem/CH + cpi*eta*t2)*(1-ov)
  const double stall_at_t2 =
      (m.l1.H() * m.fmem / m.l1.CH() + m.cpi_exe * eta_combined(m) * t2) *
      (1.0 - m.overlap_ratio);
  EXPECT_NEAR(stall_at_t2, delta / 100.0 * m.cpi_exe, 1e-9);
  (void)probe;
}

TEST(LpmModel, ThresholdT2InfiniteWhenEtaZero) {
  auto m = synthetic_measurement();
  m.mr1 = 0.0;
  EXPECT_TRUE(std::isinf(threshold_t2(1.0, m)));
}

TEST(LpmModel, MeetsStallTarget) {
  auto m = synthetic_measurement();
  m.measured_stall_per_instr = 0.004;  // vs 1% * 0.5 = 0.005
  EXPECT_TRUE(meets_stall_target(m, 1.0));
  m.measured_stall_per_instr = 0.006;
  EXPECT_FALSE(meets_stall_target(m, 1.0));
  EXPECT_TRUE(meets_stall_target(m, 10.0));
}

TEST(LpmModel, FromRunChecksCoreIndex) {
  sim::SystemResult run;
  sim::CpiExeResult calib;
  EXPECT_THROW(AppMeasurement::from_run(run, calib, 0), util::LpmError);
}

}  // namespace
}  // namespace lpm::core
