// The public facade (src/lpm.hpp): TraceSpec construction and expansion,
// simulate() through the shared experiment engine (including its memo-cache
// determinism), and run_lpm_walk() over a toy tunable. External consumers
// see nothing below this header, so this suite is their contract.
#include "lpm.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>

namespace lpm {
namespace {

sim::MachineConfig small_machine() {
  auto m = sim::MachineConfig::single_core_default();
  m.max_cycles = 2'000'000;
  return m;
}

TEST(Facade, TraceSpecByNameAndUnknownName) {
  const TraceSpec spec = TraceSpec::spec("429.mcf", 4000, 3);
  ASSERT_EQ(spec.workloads.size(), 1u);
  EXPECT_EQ(spec.workloads[0].name, "429.mcf");
  EXPECT_TRUE(spec.calibrate);
  EXPECT_THROW((void)TraceSpec::spec("999.nope"), util::ConfigError);
}

TEST(Facade, TraceSpecExpansionRules) {
  const TraceSpec one = TraceSpec::spec("403.gcc", 2000, 3);
  EXPECT_EQ(one.expand(1).size(), 1u);
  const auto four = one.expand(4);  // single entry replicates
  ASSERT_EQ(four.size(), 4u);
  EXPECT_EQ(four[3].name, "403.gcc");

  TraceSpec two = TraceSpec::profiles(
      {one.workloads[0], TraceSpec::spec("429.mcf", 2000, 3).workloads[0]});
  EXPECT_EQ(two.expand(2).size(), 2u);
  EXPECT_THROW((void)two.expand(3), util::LpmError);  // 2 != 3 and != 1

  const TraceSpec empty;
  EXPECT_THROW((void)empty.expand(1), util::LpmError);
}

TEST(Facade, SimulateProducesARunAndMeasurements) {
  const auto report =
      simulate(small_machine(), TraceSpec::spec("429.mcf", 5000, 3));
  EXPECT_TRUE(report.run.completed);
  ASSERT_EQ(report.calib.size(), 1u);
  ASSERT_EQ(report.apps.size(), 1u);
  EXPECT_GT(report.calib[0].cpi_exe, 0.0);
  EXPECT_EQ(report.app().app, "429.mcf");
  EXPECT_GT(report.app().instructions, 0u);
  EXPECT_GT(report.lpmr.lpmr1, 0.0) << "mcf must show an L1 mismatch";
}

TEST(Facade, SimulateWithoutCalibrationSkipsTheModel) {
  TraceSpec spec = TraceSpec::spec("445.gobmk", 4000, 5);
  spec.calibrate = false;
  const auto report = simulate(small_machine(), spec);
  EXPECT_TRUE(report.run.completed);
  EXPECT_TRUE(report.calib.empty());
  EXPECT_TRUE(report.apps.empty());
  EXPECT_EQ(report.lpmr.lpmr1, 0.0);
  EXPECT_THROW((void)report.app(), util::LpmError);
}

TEST(Facade, SimulateIsDeterministicAcrossCalls) {
  // Second call is typically served from the engine's memo cache; either
  // way the facade promises bit-identical reports for equal inputs.
  const auto machine = small_machine();
  const TraceSpec spec = TraceSpec::spec("462.libquantum", 5000, 9);
  const auto a = simulate(machine, spec);
  const auto b = simulate(machine, spec);
  EXPECT_EQ(a.run, b.run);
  ASSERT_EQ(a.apps.size(), b.apps.size());
  EXPECT_EQ(a.lpmr, b.lpmr);
  EXPECT_DOUBLE_EQ(a.app().cpi_exe, b.app().cpi_exe);
  EXPECT_DOUBLE_EQ(a.app().measured_stall_per_instr,
                   b.app().measured_stall_per_instr);
}

TEST(Facade, SimulateMulticoreReplicatesTheWorkload) {
  auto machine = small_machine();
  machine.num_cores = 2;
  const auto report =
      simulate(machine, TraceSpec::spec("401.bzip2", 3000, 3));
  EXPECT_TRUE(report.run.completed);
  ASSERT_EQ(report.apps.size(), 2u);
  EXPECT_EQ(report.run.cores.size(), 2u);
  EXPECT_EQ(report.app(0).app, report.app(1).app);
}

/// A tunable whose LPMR1 drops by a fixed step per optimization: the walk
/// must terminate in Case IV after a predictable number of iterations.
class ToyTunable final : public core::LpmTunable {
 public:
  core::LpmObservation measure() override {
    core::LpmObservation obs;
    obs.lpmr.lpmr1 = lpmr1_;
    obs.lpmr.lpmr2 = 0.0;
    obs.t1 = 0.5;
    obs.t2 = 1.0;
    obs.config_label = "toy(" + std::to_string(steps_) + ")";
    return obs;
  }
  bool optimize_l1() override {
    ++steps_;
    lpmr1_ -= 0.3;
    return true;
  }
  bool optimize_l2() override { return false; }
  bool reduce_overprovision() override { return false; }

  int steps_ = 0;
  double lpmr1_ = 1.2;
};

TEST(Facade, EngineOptionsBuildARealEngine) {
  // The facade's EngineOptions is the public way to size an engine; it
  // must round-trip through the exp builder, validation included.
  EngineOptions opts;
  opts.threads = 2;
  opts.queue_capacity = 16;
  opts.affinity = AffinityPolicy::kNone;
  opts.cache_enabled = true;
  const auto engine = make_engine(opts);
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->threads(), 2u);
  EXPECT_EQ(engine->queue_capacity(), 16u);
  EXPECT_EQ(engine->affinity(), AffinityPolicy::kNone);
  // Defaults build too.
  EXPECT_NE(make_engine(), nullptr);
}

TEST(Facade, MakeEngineValidatesOptions) {
  EngineOptions bad_ring;
  bad_ring.queue_capacity = 6;  // not a power of two
  EXPECT_THROW((void)make_engine(bad_ring), util::ConfigError);

  const unsigned hw = std::thread::hardware_concurrency();
  if (hw > 0 && hw < 256) {
    EngineOptions overpinned;
    overpinned.threads = hw + 1;
    overpinned.affinity = AffinityPolicy::kCompact;
    EXPECT_THROW((void)make_engine(overpinned), util::ConfigError);
  }
}

TEST(Facade, MadeEngineIsDeterministicAndCaches) {
  EngineOptions opts;
  opts.threads = 2;
  const auto pooled = make_engine(opts);
  opts.threads = 1;
  const auto serial = make_engine(opts);

  exp::SimJob job;
  job.machine = small_machine();
  job.workloads = {trace::spec_profile(trace::SpecBenchmark::kMcf, 5000, 3)};
  job.tag = "facade-engine";

  const auto a = pooled->run(job);
  const auto b = serial->run(job);
  EXPECT_EQ(a->run, b->run) << "pooled and serial engines must agree";
  EXPECT_EQ(pooled->run(job).get(), a.get()) << "second run is a cache hit";
  EXPECT_EQ(pooled->cache_hits(), 1u);
}

TEST(Facade, LpmWalkConvergesOnAToyTunable) {
  ToyTunable toy;
  core::LpmAlgorithmConfig cfg;
  cfg.trim_overprovision = false;  // land in Case IV, not Case III
  const auto outcome = run_lpm_walk(toy, cfg);
  EXPECT_TRUE(outcome.converged);
  EXPECT_FALSE(outcome.exhausted);
  // 1.2 -> 0.9 -> 0.6 -> 0.3 <= T1: three optimization steps.
  EXPECT_EQ(toy.steps_, 3);
  EXPECT_NEAR(outcome.final_observation.lpmr.lpmr1, 0.3, 1e-12);
  ASSERT_FALSE(outcome.steps.empty());
  EXPECT_EQ(outcome.steps.back().action, core::LpmAction::kDone);
}

}  // namespace
}  // namespace lpm
