// Shard router: fingerprint placement, resubmit idempotency through the
// router, attach fan-out after a router restart (route table lost), a
// single synthesized unknown_job when no shard owns a key, and recovery
// after a shard restart.
#include "srv/router.hpp"

#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "srv/client.hpp"
#include "srv/job_spec.hpp"
#include "srv/server.hpp"
#include "util/error.hpp"

namespace lpm::srv {
namespace {

using Clock = std::chrono::steady_clock;

/// Two in-process shards on unix sockets (stable across restarts, unlike
/// ephemeral TCP ports) fronted by one router on ephemeral TCP.
struct Topology {
  Server::Options shard_opts(const std::string& tag, int index) {
    Server::Options opts;
    opts.endpoint =
        testing::TempDir() + "router_" + tag + std::to_string(index) + ".sock";
    opts.journal_path = testing::TempDir() + "router_" + tag +
                        std::to_string(index) + ".journal";
    std::remove(opts.endpoint.c_str());
    std::remove(opts.journal_path.c_str());
    opts.workers = 1;
    return opts;
  }

  explicit Topology(const std::string& tag) {
    for (int i = 0; i < 2; ++i) {
      shards.push_back(std::make_unique<Server>(shard_opts(tag, i)));
      shards.back()->start();
    }
    Router::Options opts;
    opts.endpoint = "tcp:127.0.0.1:0";
    for (const auto& shard : shards) {
      opts.shards.push_back(shard->options().endpoint);
    }
    router = std::make_unique<Router>(opts);
    router->start();
  }

  std::vector<std::unique_ptr<Server>> shards;
  std::unique_ptr<Router> router;
};

JobSpec quick_spec(std::uint64_t seed) {
  JobSpec spec;
  spec.backend = "rdh";  // analytic: instant
  spec.length = 1000;
  spec.seed = seed;
  return spec;
}

/// Polls until `id`'s terminal frame or the deadline; returns the op.
/// Only for a single outstanding id — frames for other ids are discarded.
std::string wait_terminal(Client& client, const std::string& id,
                          int budget_ms = 20'000) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(budget_ms);
  while (Clock::now() < deadline) {
    const auto frame = client.poll(200);
    if (!frame) continue;
    if (frame->get_string("id").value_or("") != id) continue;
    const std::string op = frame->get_string("op").value_or("");
    if (op == "done" || op == "error") return op;
  }
  return "";
}

/// Polls one stream collecting the terminal op for every id in `ids` —
/// terminals from different shards interleave in any order, so waiting
/// per-id would drop the others' frames.
std::map<std::string, std::string> wait_terminals(
    Client& client, const std::vector<std::string>& ids,
    int budget_ms = 30'000) {
  std::map<std::string, std::string> terminal;
  const auto deadline = Clock::now() + std::chrono::milliseconds(budget_ms);
  while (terminal.size() < ids.size() && Clock::now() < deadline) {
    const auto frame = client.poll(200);
    if (!frame) continue;
    const std::string op = frame->get_string("op").value_or("");
    if (op != "done" && op != "error") continue;
    terminal[frame->get_string("id").value_or("")] = op;
  }
  return terminal;
}

TEST(Router, SpreadsJobsAcrossShardsByFingerprint) {
  Topology topo("spread");
  Client client(topo.router->bound_endpoint(), "t1");
  client.connect(10'000);

  // Pick seeds whose fingerprints land on both shards, so the test really
  // exercises placement (not just one lucky backend).
  bool saw_shard[2] = {false, false};
  std::vector<std::string> ids;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    JobSpec spec = quick_spec(seed);
    saw_shard[spec.shard_fingerprint() % 2] = true;
    const std::string id = "j" + std::to_string(seed);
    ids.push_back(id);
    ASSERT_TRUE(client.submit(id, spec));
  }
  ASSERT_TRUE(saw_shard[0] && saw_shard[1])
      << "seed set degenerate: widen it so both shards receive jobs";

  const auto terminal = wait_terminals(client, ids);
  for (const std::string& id : ids) {
    auto it = terminal.find(id);
    EXPECT_TRUE(it != terminal.end() && it->second == "done") << id;
  }
  // Terminal frames evict learned routes, so after every job is done the
  // table is empty again — the router does not leak one entry per job
  // ever submitted.
  EXPECT_EQ(topo.router->route_count(), 0u);
}

TEST(Router, SecondHelloRejectedWithoutCrash) {
  Topology topo("rehello");

  // Hand-rolled wire session: Client never re-hellos, but a misbehaving
  // peer can — the router must refuse (a redial would move-assign over a
  // live, joinable pump thread: std::terminate) and drop the session.
  Fd fd = connect_endpoint(Endpoint::parse(topo.router->bound_endpoint()));
  JsonWriter hello;
  hello.str("op", "hello").str("client", "t1").num_u64("proto", 1);
  const std::string frame = hello.finish();
  ASSERT_EQ(write_frame(fd, frame, 2'000), IoStatus::kOk);
  std::string reply;
  ASSERT_EQ(read_frame(fd, reply, 10'000), IoStatus::kOk);
  ASSERT_EQ(util::FlatJson::parse(reply).get_string("op").value_or(""),
            "hello_ok");

  ASSERT_EQ(write_frame(fd, frame, 2'000), IoStatus::kOk);
  ASSERT_EQ(read_frame(fd, reply, 10'000), IoStatus::kOk);
  const util::FlatJson refusal = util::FlatJson::parse(reply);
  EXPECT_EQ(refusal.get_string("op").value_or(""), "error");
  EXPECT_EQ(refusal.get_string("code").value_or(""), "config");

  // The router must survive the offender and keep serving fresh sessions.
  Client client(topo.router->bound_endpoint(), "t2");
  client.connect(10'000);
  ASSERT_TRUE(client.submit("j1", quick_spec(1)));
  EXPECT_EQ(wait_terminal(client, "j1"), "done");
}

TEST(Router, ResubmitReplaysRecordedFramesOnce) {
  Topology topo("resub");
  Client client(topo.router->bound_endpoint(), "t1");
  client.connect(10'000);

  ASSERT_TRUE(client.submit("j1", quick_spec(1)));
  ASSERT_EQ(wait_terminal(client, "j1"), "done");

  // Resubmit of a completed key after a reconnect (the loadgen's lost-ack
  // path): the owning shard replays its recorded frames — exactly one more
  // done, never a second execution or a duplicate. On the *same* live
  // connection the replay is suppressed (the client already has the
  // frames); reconnecting is what licenses it.
  client.disconnect();
  client.connect(10'000);
  ASSERT_TRUE(client.submit("j1", quick_spec(1)));
  ASSERT_EQ(wait_terminal(client, "j1"), "done");
  int extra_terminals = 0;
  const auto quiet = Clock::now() + std::chrono::milliseconds(500);
  while (Clock::now() < quiet) {
    const auto frame = client.poll(100);
    if (frame && frame->get_string("op").value_or("") == "done") {
      ++extra_terminals;
    }
  }
  EXPECT_EQ(extra_terminals, 0) << "replay delivered a duplicate terminal";
}

TEST(Router, AttachAfterRouterRestartFansOutToOwner) {
  Topology topo("restart");
  {
    Client client(topo.router->bound_endpoint(), "t1");
    client.connect(10'000);
    ASSERT_TRUE(client.submit("j1", quick_spec(3)));
    ASSERT_EQ(wait_terminal(client, "j1"), "done");
  }

  // New router, same shards: the learned route table is gone, so attach
  // must find the owner by fan-out — and suppress the non-owner's
  // unknown_job, which would otherwise license an unsafe resubmit.
  topo.router->stop();
  Router::Options opts;
  opts.endpoint = "tcp:127.0.0.1:0";
  for (const auto& shard : topo.shards) {
    opts.shards.push_back(shard->options().endpoint);
  }
  Router fresh(opts);
  fresh.start();

  Client again(fresh.bound_endpoint(), "t1");
  again.connect(10'000);
  ASSERT_TRUE(again.attach("j1"));
  bool done = false;
  bool unknown = false;
  const auto deadline = Clock::now() + std::chrono::seconds(10);
  while (Clock::now() < deadline && !done) {
    const auto frame = again.poll(200);
    if (!frame) continue;
    const std::string op = frame->get_string("op").value_or("");
    if (op == "done") done = true;
    if (op == "error" &&
        frame->get_string("code").value_or("") == "unknown_job") {
      unknown = true;
    }
  }
  EXPECT_TRUE(done) << "owner shard's replay never arrived through fan-out";
  EXPECT_FALSE(unknown) << "non-owner unknown_job leaked through the router";
  fresh.stop();
}

TEST(Router, UnknownKeyYieldsExactlyOneUnknownJob) {
  Topology topo("unknown");
  Client client(topo.router->bound_endpoint(), "t1");
  client.connect(10'000);

  ASSERT_TRUE(client.attach("never-submitted"));
  int unknowns = 0;
  const auto deadline = Clock::now() + std::chrono::seconds(5);
  while (Clock::now() < deadline) {
    const auto frame = client.poll(200);
    if (!frame) continue;
    if (frame->get_string("op").value_or("") == "error" &&
        frame->get_string("code").value_or("") == "unknown_job") {
      ++unknowns;
    }
  }
  EXPECT_EQ(unknowns, 1)
      << "fan-out must collapse N shard unknown_jobs into exactly one";
}

TEST(Router, ClientRecoversAfterShardRestart) {
  Topology topo("failover");
  Client client(topo.router->bound_endpoint(), "t1");
  client.connect(10'000);

  ASSERT_TRUE(client.submit("j1", quick_spec(5)));
  ASSERT_EQ(wait_terminal(client, "j1"), "done");

  // Restart one shard on its endpoint + journal. The router kills the
  // session (upstream lost); the client reconnects through the router and
  // attach replays the done job from the surviving journal.
  const Server::Options opts = topo.shards[0]->options();
  topo.shards[0]->stop();
  topo.shards[0] = std::make_unique<Server>(opts);
  topo.shards[0]->start();

  const auto deadline = Clock::now() + std::chrono::seconds(15);
  bool replayed = false;
  while (Clock::now() < deadline && !replayed) {
    if (!client.connected()) {
      try {
        client.connect(10'000);
      } catch (const util::IoError&) {
        break;
      }
      ASSERT_TRUE(client.attach("j1"));
    }
    const auto frame = client.poll(200);
    if (frame && frame->get_string("op").value_or("") == "done") {
      replayed = true;
    }
    if (!frame && client.connected()) {
      // Session may still be the pre-restart one; poke it so the dead
      // upstream surfaces as a disconnect.
      (void)client.attach("j1");
    }
  }
  EXPECT_TRUE(replayed);
}

}  // namespace
}  // namespace lpm::srv
