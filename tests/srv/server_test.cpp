// End-to-end server tests over a real Unix-domain socket: submit/stream/
// attach, idempotent resubmit, backpressure, degradation, deadlines, and
// journal-backed crash recovery (simulated by stopping one Server and
// starting another on the same journal).
#include "srv/server.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "srv/client.hpp"
#include "srv/job_journal.hpp"
#include "util/error.hpp"
#include "util/flat_json.hpp"

namespace lpm::srv {
namespace {

using std::chrono::milliseconds;

class ServerTest : public testing::Test {
 protected:
  Server::Options base_options(const std::string& tag) {
    Server::Options opts;
    opts.endpoint = testing::TempDir() + "lpmd_" + tag + ".sock";
    opts.journal_path = testing::TempDir() + "lpmd_" + tag + ".journal";
    std::remove(opts.endpoint.c_str());
    std::remove(opts.journal_path.c_str());
    opts.workers = 2;
    opts.queue_max = 64;
    opts.per_client_max = 32;
    opts.degrade_watermark = 64;  // degradation off unless a test opts in
    opts.idle_timeout_ms = 60'000;
    return opts;
  }

  JobSpec quick_spec() {
    JobSpec spec;
    spec.kind = "simulate";
    spec.workload = "403.gcc";
    spec.length = 2'000;
    return spec;
  }

  /// Polls until a frame for `id` with op in `terminal_ops` arrives;
  /// returns every frame for `id` seen on the way (acks included).
  std::vector<util::FlatJson> drain_until_terminal(Client& client,
                                                   const std::string& id) {
    std::vector<util::FlatJson> frames;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (std::chrono::steady_clock::now() < deadline) {
      auto frame = client.poll(200);
      if (!frame) continue;
      if (frame->get_string("id").value_or("") != id) continue;
      const std::string op = frame->get_string("op").value_or("");
      frames.push_back(std::move(*frame));
      if (op == "done" || op == "error") return frames;
    }
    ADD_FAILURE() << "no terminal frame for " << id << " within budget";
    // Sentinel so callers can still .back() without crashing the binary.
    frames.push_back(util::FlatJson::parse(R"({"op":"drain_timeout"})"));
    return frames;
  }
};

TEST_F(ServerTest, SecondHelloRejected) {
  Server server(base_options("rehello"));
  server.start();

  // Hand-rolled wire session: Client never re-hellos, but the protocol
  // says exactly one hello per connection (the shard router depends on
  // it), so the server must refuse a second one and close.
  Fd fd = connect_endpoint(Endpoint::parse(server.options().endpoint));
  JsonWriter hello;
  hello.str("op", "hello").str("client", "t1").num_u64("proto", 1);
  const std::string frame = hello.finish();
  ASSERT_EQ(write_frame(fd, frame, 2'000), IoStatus::kOk);
  std::string reply;
  ASSERT_EQ(read_frame(fd, reply, 5'000), IoStatus::kOk);
  ASSERT_EQ(util::FlatJson::parse(reply).get_string("op").value_or(""),
            "hello_ok");

  ASSERT_EQ(write_frame(fd, frame, 2'000), IoStatus::kOk);
  ASSERT_EQ(read_frame(fd, reply, 5'000), IoStatus::kOk);
  const util::FlatJson refusal = util::FlatJson::parse(reply);
  EXPECT_EQ(refusal.get_string("op").value_or(""), "error");
  EXPECT_EQ(refusal.get_string("code").value_or(""), "config");
  server.stop();
}

TEST_F(ServerTest, SimulateStreamsDoneFrame) {
  Server server(base_options("simulate"));
  server.start();
  Client client(server.options().endpoint, "t1");
  client.connect();
  EXPECT_EQ(client.server_recovered(), 0u);
  ASSERT_TRUE(client.submit("j1", quick_spec()));
  const auto frames = drain_until_terminal(client, "j1");
  ASSERT_FALSE(frames.empty());
  const auto& done = frames.back();
  EXPECT_EQ(done.get_string("op").value_or(""), "done");
  EXPECT_EQ(done.get_string("backend").value_or(""), "cycle");
  EXPECT_GT(done.get_number("cycles").value_or(0.0), 0.0);
  EXPECT_GT(done.get_number("ipc").value_or(0.0), 0.0);
  EXPECT_FALSE(done.get_bool("degraded").value_or(true));
  server.stop();
}

TEST_F(ServerTest, SweepStreamsPointsThenDone) {
  Server server(base_options("sweep"));
  server.start();
  Client client(server.options().endpoint, "t1");
  client.connect();
  auto spec = quick_spec();
  spec.kind = "sweep";
  spec.sweep_knob = "l1_kb";
  spec.sweep_values = "16,64";
  ASSERT_TRUE(client.submit("s1", spec));
  const auto frames = drain_until_terminal(client, "s1");
  std::size_t points = 0;
  for (const auto& f : frames) {
    if (f.get_string("op").value_or("") == "point") ++points;
  }
  EXPECT_EQ(points, 2u);
  const auto& done = frames.back();
  EXPECT_EQ(done.get_string("op").value_or(""), "done");
  EXPECT_EQ(done.get_number("points").value_or(0.0), 2.0);
  EXPECT_EQ(done.get_number("points_ok").value_or(0.0), 2.0);
  server.stop();
}

TEST_F(ServerTest, AnalyticBackendRuns) {
  Server server(base_options("analytic"));
  server.start();
  Client client(server.options().endpoint, "t1");
  client.connect();
  auto spec = quick_spec();
  spec.backend = "rdh";
  ASSERT_TRUE(client.submit("r1", spec));
  const auto frames = drain_until_terminal(client, "r1");
  const auto& done = frames.back();
  EXPECT_EQ(done.get_string("op").value_or(""), "done");
  EXPECT_EQ(done.get_string("backend").value_or(""), "rdh");
  server.stop();
}

TEST_F(ServerTest, InvalidSpecGetsTypedError) {
  Server server(base_options("badspec"));
  server.start();
  Client client(server.options().endpoint, "t1");
  client.connect();
  auto spec = quick_spec();
  spec.workload = "not-a-benchmark";
  ASSERT_TRUE(client.submit("bad1", spec));
  const auto frames = drain_until_terminal(client, "bad1");
  const auto& err = frames.back();
  EXPECT_EQ(err.get_string("op").value_or(""), "error");
  EXPECT_FALSE(err.get_string("code").value_or("").empty());
  server.stop();
}

TEST_F(ServerTest, ResubmitOfCompletedJobReplaysWithoutReexecution) {
  Server server(base_options("resubmit"));
  server.start();
  double first_cycles = 0.0;
  {
    Client client(server.options().endpoint, "t1");
    client.connect();
    ASSERT_TRUE(client.submit("j1", quick_spec()));
    const auto first = drain_until_terminal(client, "j1");
    ASSERT_EQ(first.back().get_string("op").value_or(""), "done");
    first_cycles = first.back().get_number("cycles").value_or(-1.0);
    client.disconnect();
  }
  const auto completed_before =
      obs::MetricsRegistry::global().snapshot().counter_or_zero(
          "srv.jobs.completed");
  // A client that lost the result reconnects and resubmits the same id:
  // the server must replay the recorded terminal frame, not run the job
  // again. (On the original live connection the delivery token withholds
  // the replay — the first push is already in the ordered stream.)
  Client again(server.options().endpoint, "t1");
  again.connect();
  ASSERT_TRUE(again.submit("j1", quick_spec()));
  const auto replay = drain_until_terminal(again, "j1");
  ASSERT_EQ(replay.back().get_string("op").value_or(""), "done");
  EXPECT_EQ(replay.back().get_number("cycles").value_or(-2.0), first_cycles);
  EXPECT_EQ(obs::MetricsRegistry::global().snapshot().counter_or_zero(
                "srv.jobs.completed"),
            completed_before);
  server.stop();
}

TEST_F(ServerTest, AttachUnknownJobIsTypedError) {
  Server server(base_options("attach_unknown"));
  server.start();
  Client client(server.options().endpoint, "t1");
  client.connect();
  ASSERT_TRUE(client.attach("ghost"));
  const auto frames = drain_until_terminal(client, "ghost");
  EXPECT_EQ(frames.back().get_string("op").value_or(""), "error");
  EXPECT_EQ(frames.back().get_string("code").value_or(""), "unknown_job");
  server.stop();
}

TEST_F(ServerTest, AttachAfterReconnectReplaysDoneJob) {
  Server server(base_options("attach_replay"));
  server.start();
  std::string cycles;
  {
    Client client(server.options().endpoint, "t1");
    client.connect();
    ASSERT_TRUE(client.submit("j1", quick_spec()));
    const auto frames = drain_until_terminal(client, "j1");
    ASSERT_EQ(frames.back().get_string("op").value_or(""), "done");
    client.disconnect();
  }
  Client again(server.options().endpoint, "t1");
  again.connect();
  ASSERT_TRUE(again.attach("j1"));
  const auto frames = drain_until_terminal(again, "j1");
  EXPECT_EQ(frames.back().get_string("op").value_or(""), "done");
  server.stop();
}

TEST_F(ServerTest, PerClientBackpressureGivesRetryAfter) {
  auto opts = base_options("backpressure");
  opts.workers = 1;
  opts.per_client_max = 1;
  opts.retry_after_ms = 77;
  Server server(std::move(opts));
  server.start();
  Client client(server.options().endpoint, "greedy");
  client.connect();
  // Saturate the per-client budget with a slower job, then submit more.
  auto slow = quick_spec();
  slow.length = 200'000;
  ASSERT_TRUE(client.submit("slow1", slow));
  ASSERT_TRUE(client.submit("slow2", slow));
  ASSERT_TRUE(client.submit("slow3", slow));
  bool saw_retry_after = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline && !saw_retry_after) {
    const auto frame = client.poll(200);
    if (!frame) continue;
    if (frame->get_string("op").value_or("") == "retry_after") {
      saw_retry_after = true;
      EXPECT_EQ(frame->get_number("retry_after_ms").value_or(0.0), 77.0);
    }
  }
  EXPECT_TRUE(saw_retry_after);
  server.stop();
}

TEST_F(ServerTest, SaturationDegradesEligibleJobs) {
  auto opts = base_options("degrade");
  opts.workers = 1;
  opts.degrade_watermark = 0;  // every eligible job degrades
  opts.degrade_backend = "rdh";
  Server server(std::move(opts));
  server.start();
  Client client(server.options().endpoint, "t1");
  client.connect();
  ASSERT_TRUE(client.submit("d1", quick_spec()));
  const auto frames = drain_until_terminal(client, "d1");
  bool acked_degraded = false;
  for (const auto& f : frames) {
    if (f.get_string("op").value_or("") == "ack" &&
        f.get_bool("degraded").value_or(false)) {
      acked_degraded = true;
    }
  }
  EXPECT_TRUE(acked_degraded);
  const auto& done = frames.back();
  EXPECT_EQ(done.get_string("op").value_or(""), "done");
  // The response is tagged with the fidelity it actually ran at.
  EXPECT_TRUE(done.get_bool("degraded").value_or(false));
  EXPECT_EQ(done.get_string("backend").value_or(""), "rdh");
  server.stop();
}

TEST_F(ServerTest, DegradationRespectsDegradeOkFalse) {
  auto opts = base_options("no_degrade");
  opts.degrade_watermark = 0;
  Server server(std::move(opts));
  server.start();
  Client client(server.options().endpoint, "t1");
  client.connect();
  auto spec = quick_spec();
  spec.degrade_ok = false;
  ASSERT_TRUE(client.submit("f1", spec));
  const auto frames = drain_until_terminal(client, "f1");
  const auto& done = frames.back();
  EXPECT_EQ(done.get_string("op").value_or(""), "done");
  EXPECT_FALSE(done.get_bool("degraded").value_or(true));
  EXPECT_EQ(done.get_string("backend").value_or(""), "cycle");
  server.stop();
}

TEST_F(ServerTest, ExpiredDeadlineIsTypedTimeout) {
  auto opts = base_options("deadline");
  opts.workers = 1;
  Server server(std::move(opts));
  server.start();
  Client client(server.options().endpoint, "t1");
  client.connect();
  // Park the single worker on a long job, then queue a job whose deadline
  // lapses while it waits.
  auto slow = quick_spec();
  slow.length = 500'000;
  ASSERT_TRUE(client.submit("slow", slow));
  auto doomed = quick_spec();
  doomed.deadline_ms = 1;
  ASSERT_TRUE(client.submit("doomed", doomed));
  const auto frames = drain_until_terminal(client, "doomed");
  const auto& err = frames.back();
  EXPECT_EQ(err.get_string("op").value_or(""), "error");
  EXPECT_EQ(err.get_string("code").value_or(""), "timeout");
  server.stop();
}

TEST_F(ServerTest, RestartRerunsPendingAndServesDoneFromJournal) {
  auto opts = base_options("restart");
  const std::string socket = opts.endpoint;
  const std::string journal = opts.journal_path;

  // Incarnation 1: complete one job normally.
  {
    Server server(opts);
    server.start();
    Client client(socket, "t1");
    client.connect();
    ASSERT_TRUE(client.submit("finished", quick_spec()));
    ASSERT_EQ(drain_until_terminal(client, "finished")
                  .back()
                  .get_string("op")
                  .value_or(""),
              "done");
    server.stop();
  }
  // Simulate a crash mid-job: append the accept record a dying daemon
  // would have left (accepted, journaled, never finished).
  {
    auto crashed = JobJournal::open(journal);
    JsonWriter spec_json;
    quick_spec().encode(spec_json);
    crashed->record_accept("t1/pending", false, spec_json.finish());
  }

  // Incarnation 2 on the same journal: the pending job reruns to
  // completion; the finished job replays from its recorded frames.
  Server server(opts);
  server.start();
  EXPECT_EQ(server.recovered_pending(), 1u);
  Client client(socket, "t1");
  client.connect();
  EXPECT_EQ(client.server_recovered(), 1u);
  ASSERT_TRUE(client.attach("pending"));
  EXPECT_EQ(drain_until_terminal(client, "pending")
                .back()
                .get_string("op")
                .value_or(""),
            "done");
  ASSERT_TRUE(client.attach("finished"));
  EXPECT_EQ(drain_until_terminal(client, "finished")
                .back()
                .get_string("op")
                .value_or(""),
            "done");
  server.stop();
}

TEST_F(ServerTest, HelloRejectsBadNames) {
  Server server(base_options("badname"));
  server.start();
  EXPECT_THROW(Client(server.options().endpoint, "bad name!"),
               util::LpmError);
  server.stop();
}

TEST_F(ServerTest, PingAndStatsRoundTrip) {
  Server server(base_options("ping"));
  server.start();
  Client client(server.options().endpoint, "t1");
  client.connect();
  ASSERT_TRUE(client.ping());
  auto pong = client.poll(3'000);
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(pong->get_string("op").value_or(""), "pong");
  ASSERT_TRUE(client.request_stats());
  auto stats = client.poll(3'000);
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->get_string("op").value_or(""), "stats");
  server.stop();
}

TEST_F(ServerTest, StopIsPromptAndIdempotent) {
  Server server(base_options("stop"));
  server.start();
  Client client(server.options().endpoint, "t1");
  client.connect();
  const auto start = std::chrono::steady_clock::now();
  server.stop();
  server.stop();
  EXPECT_LT(std::chrono::steady_clock::now() - start, std::chrono::seconds(10));
}

}  // namespace
}  // namespace lpm::srv
