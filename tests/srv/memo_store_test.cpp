// MemoStore: LRU byte-budgeted cache of rendered result fragments.
#include "srv/memo_store.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace lpm::srv {
namespace {

// entry_bytes() = body.size() + 64; budgets below are chosen around that.

TEST(MemoStore, MissThenHit) {
  MemoStore store(1 << 20);
  EXPECT_FALSE(store.get(1).has_value());
  store.put(1, "\"ipc\":2.0");
  const auto hit = store.get(1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "\"ipc\":2.0");
  EXPECT_EQ(store.size(), 1u);
}

TEST(MemoStore, EvictsLeastRecentlyUsed) {
  // Room for exactly two 64-byte-overhead empty-ish entries.
  MemoStore store(2 * (64 + 4));
  store.put(1, "aaaa");
  store.put(2, "bbbb");
  ASSERT_TRUE(store.get(1).has_value());  // 1 is now most recent
  store.put(3, "cccc");                   // evicts 2, the LRU entry
  EXPECT_TRUE(store.get(1).has_value());
  EXPECT_FALSE(store.get(2).has_value());
  EXPECT_TRUE(store.get(3).has_value());
  EXPECT_EQ(store.size(), 2u);
}

TEST(MemoStore, RePutRefreshesInsteadOfDuplicating) {
  MemoStore store(1 << 20);
  store.put(7, "old");
  store.put(7, "old");
  EXPECT_EQ(store.size(), 1u);
  const auto before = store.bytes();
  store.put(7, "old");
  EXPECT_EQ(store.bytes(), before);
}

TEST(MemoStore, OversizedFragmentIsNotStored) {
  MemoStore store(128);
  store.put(9, std::string(4'096, 'x'));
  EXPECT_FALSE(store.get(9).has_value());
  EXPECT_EQ(store.bytes(), 0u);
}

TEST(MemoStore, ZeroBudgetDisables) {
  MemoStore store(0);
  store.put(1, "x");
  EXPECT_FALSE(store.get(1).has_value());
  EXPECT_EQ(store.size(), 0u);
}

TEST(MemoStore, BytesTrackEvictions) {
  MemoStore store(3 * (64 + 8));
  for (std::uint64_t fp = 0; fp < 100; ++fp) {
    store.put(fp, "12345678");
  }
  EXPECT_LE(store.bytes(), store.budget());
  EXPECT_EQ(store.size(), 3u);
  // The three survivors are the three most recent fingerprints.
  EXPECT_TRUE(store.get(99).has_value());
  EXPECT_TRUE(store.get(98).has_value());
  EXPECT_TRUE(store.get(97).has_value());
  EXPECT_FALSE(store.get(96).has_value());
}

TEST(MemoStore, ConcurrentMixedTrafficIsSafe) {
  MemoStore store(8 * 1024);
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&store, t] {
      for (std::uint64_t i = 0; i < 500; ++i) {
        const std::uint64_t fp = (t * 131) + i % 64;
        if (i % 3 == 0) {
          store.put(fp, "body-" + std::to_string(fp));
        } else if (const auto hit = store.get(fp)) {
          EXPECT_EQ(*hit, "body-" + std::to_string(fp));
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_LE(store.bytes(), store.budget());
}

}  // namespace
}  // namespace lpm::srv
