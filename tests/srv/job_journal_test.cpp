// JobJournal: the crash-recovery log behind lpmd's exactly-once contract.
// Every test reopens the journal the way a restarted daemon would.
#include "srv/job_journal.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace lpm::srv {
namespace {

std::string temp_journal(const std::string& name) {
  const std::string path = testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

const RecoveredJob* find(const std::vector<RecoveredJob>& jobs,
                         const std::string& key) {
  for (const auto& j : jobs) {
    if (j.key == key) return &j;
  }
  return nullptr;
}

TEST(JobJournal, FreshJournalRecoversNothing) {
  auto j = JobJournal::open(temp_journal("jj_fresh.log"));
  EXPECT_TRUE(j->recovered().empty());
  EXPECT_FALSE(j->is_done("a/1"));
  EXPECT_TRUE(j->completed_frames("a/1").empty());
}

TEST(JobJournal, DoneJobReplaysFramesAfterReopen) {
  const std::string path = temp_journal("jj_done.log");
  {
    auto j = JobJournal::open(path);
    j->record_accept("a/1", false, R"({"job_kind":"simulate"})");
    j->record_result("a/1", R"({"op":"done","id":"1"})");
    j->record_done("a/1");
    EXPECT_TRUE(j->is_done("a/1"));
  }
  auto j = JobJournal::open(path);
  const auto* job = find(j->recovered(), "a/1");
  ASSERT_NE(job, nullptr);
  EXPECT_TRUE(job->done);
  ASSERT_EQ(job->frames.size(), 1u);
  EXPECT_EQ(job->frames[0], R"({"op":"done","id":"1"})");
  EXPECT_TRUE(j->is_done("a/1"));
  EXPECT_EQ(j->completed_frames("a/1").size(), 1u);
}

TEST(JobJournal, CrashBeforeDoneReplaysTheJobNotItsFrames) {
  const std::string path = temp_journal("jj_pending.log");
  {
    auto j = JobJournal::open(path);
    j->record_accept("a/1", true, R"({"job_kind":"simulate"})");
    // Crash mid-delivery: result recorded, done never written.
    j->record_result("a/1", R"({"op":"done","id":"1"})");
  }
  auto j = JobJournal::open(path);
  const auto* job = find(j->recovered(), "a/1");
  ASSERT_NE(job, nullptr);
  EXPECT_FALSE(job->done);
  EXPECT_TRUE(job->degraded);
  // Partial frames are dropped: the rerun regenerates them, so keeping
  // them could only ever produce a double delivery.
  EXPECT_TRUE(job->frames.empty());
  EXPECT_FALSE(j->is_done("a/1"));
  EXPECT_TRUE(j->completed_frames("a/1").empty());
}

TEST(JobJournal, MultipleJobsKeepSeparateLifecycles) {
  const std::string path = temp_journal("jj_multi.log");
  {
    auto j = JobJournal::open(path);
    j->record_accept("a/1", false, "{}");
    j->record_accept("b/1", false, "{}");
    j->record_result("b/1", R"({"op":"point","seq":1})");
    j->record_result("b/1", R"({"op":"done"})");
    j->record_done("b/1");
  }
  auto j = JobJournal::open(path);
  ASSERT_EQ(j->recovered().size(), 2u);
  EXPECT_FALSE(find(j->recovered(), "a/1")->done);
  const auto* b = find(j->recovered(), "b/1");
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(b->done);
  EXPECT_EQ(b->frames.size(), 2u);
}

TEST(JobJournal, OutOfOrderCompletionKeepsPerKeyFrameOrder) {
  // lpmd's workers finish jobs in any order, so records for different
  // keys interleave arbitrarily in the file. The exactly-once contract
  // only needs per-key ordering (accept < results < done, results in
  // append order); this pins that recovery is grouped by key and never
  // leans on cross-job file order. Here jobs complete in the reverse of
  // their admission order with their frames fully interleaved.
  const std::string path = temp_journal("jj_ooo.log");
  {
    auto j = JobJournal::open(path);
    j->record_accept("a/1", false, "{}");
    j->record_accept("b/1", false, "{}");
    j->record_accept("c/1", false, "{}");
    j->record_result("c/1", R"({"op":"point","seq":1})");
    j->record_result("b/1", R"({"op":"point","seq":1})");
    j->record_result("c/1", R"({"op":"done"})");
    j->record_done("c/1");
    j->record_result("a/1", R"({"op":"done"})");
    j->record_result("b/1", R"({"op":"done"})");
    j->record_done("b/1");
    j->record_done("a/1");
  }
  auto j = JobJournal::open(path);
  ASSERT_EQ(j->recovered().size(), 3u);
  for (const char* key : {"a/1", "b/1", "c/1"}) {
    const auto* job = find(j->recovered(), key);
    ASSERT_NE(job, nullptr) << key;
    EXPECT_TRUE(job->done) << key;
    EXPECT_TRUE(j->is_done(key)) << key;
  }
  const auto b_frames = j->completed_frames("b/1");
  ASSERT_EQ(b_frames.size(), 2u);
  EXPECT_EQ(b_frames[0], R"({"op":"point","seq":1})");
  EXPECT_EQ(b_frames[1], R"({"op":"done"})");
  EXPECT_EQ(j->completed_frames("a/1").size(), 1u);
  EXPECT_EQ(j->completed_frames("c/1").size(), 2u);
}

TEST(JobJournal, TornTailIsHealed) {
  const std::string path = temp_journal("jj_torn.log");
  {
    auto j = JobJournal::open(path);
    j->record_accept("a/1", false, "{}");
    j->record_result("a/1", R"({"op":"done"})");
    j->record_done("a/1");
  }
  // Crash mid-append: a partial line with no newline at the tail.
  {
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out << "accept b/1 0 {\"job_ki";
  }
  auto j = JobJournal::open(path);
  ASSERT_EQ(j->recovered().size(), 1u);
  EXPECT_EQ(j->recovered()[0].key, "a/1");
  EXPECT_TRUE(j->is_done("a/1"));
}

TEST(JobJournal, ResultForUnknownKeyIsIgnored) {
  const std::string path = temp_journal("jj_orphan.log");
  {
    std::ofstream out(path, std::ios::binary);
    out << "result ghost/1 {\"op\":\"done\"}\n";
    out << "done ghost/1\n";
    out << "accept a/1 0 {}\n";
  }
  auto j = JobJournal::open(path);
  // Orphan records (no accept) carry no recoverable job.
  EXPECT_EQ(j->recovered().size(), 1u);
  EXPECT_EQ(j->recovered()[0].key, "a/1");
  EXPECT_FALSE(j->is_done("ghost/1"));
}

TEST(JobJournal, ReopenCompactsDeadBytes) {
  const std::string path = temp_journal("jj_compact.log");
  {
    auto j = JobJournal::open(path);
    for (int i = 0; i < 50; ++i) {
      const std::string key = "a/" + std::to_string(i);
      j->record_accept(key, false, "{}");
      j->record_result(key, R"({"op":"done"})");
      j->record_done(key);
    }
  }
  const auto before = slurp(path).size();
  // Reopen twice: size must stabilize (compaction is idempotent), and the
  // compacted file keeps completed frames for attach replay.
  (void)JobJournal::open(path);
  const auto once = slurp(path).size();
  auto j = JobJournal::open(path);
  EXPECT_EQ(slurp(path).size(), once);
  EXPECT_LE(once, before);
  EXPECT_TRUE(j->is_done("a/49"));
  EXPECT_EQ(j->completed_frames("a/49").size(), 1u);
}

TEST(JobJournal, RecordsSurviveAcrossThreeIncarnations) {
  const std::string path = temp_journal("jj_generations.log");
  {
    auto j = JobJournal::open(path);
    j->record_accept("a/1", false, "{}");
    j->record_result("a/1", R"({"op":"done","gen":1})");
    j->record_done("a/1");
  }
  {
    auto j = JobJournal::open(path);
    j->record_accept("a/2", false, "{}");
    // dies pending
  }
  auto j = JobJournal::open(path);
  EXPECT_TRUE(j->is_done("a/1"));
  ASSERT_EQ(j->completed_frames("a/1").size(), 1u);
  EXPECT_EQ(j->completed_frames("a/1")[0], R"({"op":"done","gen":1})");
  const auto* pending = find(j->recovered(), "a/2");
  ASSERT_NE(pending, nullptr);
  EXPECT_FALSE(pending->done);
}

}  // namespace
}  // namespace lpm::srv
