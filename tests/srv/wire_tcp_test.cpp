// TCP transport under adversarial conditions: Endpoint parsing, framing
// split at every byte boundary, an oversized length prefix rejected before
// allocation, a slow-loris client reaped by the server's idle deadline,
// and ephemeral-port resolution.
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "srv/client.hpp"
#include "srv/server.hpp"
#include "srv/wire.hpp"
#include "util/error.hpp"

namespace lpm::srv {
namespace {

TEST(Endpoint, ParsesAllThreeSpellings) {
  const Endpoint unix_ep = Endpoint::parse("unix:/tmp/x.sock");
  EXPECT_EQ(unix_ep.kind, Endpoint::Kind::kUnix);
  EXPECT_EQ(unix_ep.path, "/tmp/x.sock");
  EXPECT_EQ(unix_ep.to_string(), "unix:/tmp/x.sock");

  const Endpoint bare = Endpoint::parse("/tmp/y.sock");
  EXPECT_EQ(bare.kind, Endpoint::Kind::kUnix);
  EXPECT_EQ(bare.path, "/tmp/y.sock");

  const Endpoint tcp = Endpoint::parse("tcp:127.0.0.1:7800");
  EXPECT_EQ(tcp.kind, Endpoint::Kind::kTcp);
  EXPECT_EQ(tcp.host, "127.0.0.1");
  EXPECT_EQ(tcp.port, 7800);
  EXPECT_EQ(tcp.to_string(), "tcp:127.0.0.1:7800");
}

TEST(Endpoint, Ipv6HostSplitsOnLastColon) {
  const Endpoint tcp = Endpoint::parse("tcp:::1:7800");
  EXPECT_EQ(tcp.host, "::1");
  EXPECT_EQ(tcp.port, 7800);
}

TEST(Endpoint, RejectsMalformedSpellings) {
  EXPECT_THROW(Endpoint::parse(""), util::ConfigError);
  EXPECT_THROW(Endpoint::parse("tcp:nohost"), util::ConfigError);
  EXPECT_THROW(Endpoint::parse("tcp:host:"), util::ConfigError);
  EXPECT_THROW(Endpoint::parse("tcp:host:notaport"), util::ConfigError);
  EXPECT_THROW(Endpoint::parse("tcp:host:70000"), util::ConfigError);
}

/// A loopback listener on an ephemeral port plus a connected client fd.
struct TcpPair {
  Fd listener;
  Fd client;
  Fd server;
};

TcpPair make_tcp_pair() {
  TcpPair pair;
  Endpoint ep = Endpoint::parse("tcp:127.0.0.1:0");
  pair.listener = listen_endpoint(ep);
  ep.port = bound_tcp_port(pair.listener);
  EXPECT_NE(ep.port, 0);
  pair.client = connect_endpoint(ep);
  auto accepted = accept_socket(pair.listener, 2'000);
  EXPECT_TRUE(accepted.has_value());
  pair.server = std::move(*accepted);
  return pair;
}

TEST(WireTcp, FrameRoundTripOverLoopback) {
  TcpPair pair = make_tcp_pair();
  const std::string payload = R"({"op":"ping","id":"tcp"})";
  ASSERT_EQ(write_frame(pair.client, payload, 2'000), IoStatus::kOk);
  std::string out;
  ASSERT_EQ(read_frame(pair.server, out, 2'000), IoStatus::kOk);
  EXPECT_EQ(out, payload);
}

TEST(WireTcp, EphemeralPortResolvesAndAcceptsAgain) {
  Endpoint ep = Endpoint::parse("tcp:127.0.0.1:0");
  Fd listener = listen_endpoint(ep);
  const std::uint16_t port = bound_tcp_port(listener);
  ASSERT_NE(port, 0);
  // Two sequential connections through the resolved port both succeed.
  for (int i = 0; i < 2; ++i) {
    Endpoint dial = Endpoint::parse("tcp:127.0.0.1:" + std::to_string(port));
    Fd c = connect_endpoint(dial);
    auto accepted = accept_socket(listener, 2'000);
    ASSERT_TRUE(accepted.has_value());
  }
}

// The reader must reassemble a frame no matter where the peer's writes
// split it — including inside the 4-byte length prefix. Drive every split
// point of a small frame through a raw TCP socket.
TEST(WireTcp, ReaderSurvivesSplitAtEveryByteBoundary) {
  const std::string payload = R"({"op":"ack","id":"split"})";
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  std::string raw;
  raw.push_back(static_cast<char>((len >> 24) & 0xff));
  raw.push_back(static_cast<char>((len >> 16) & 0xff));
  raw.push_back(static_cast<char>((len >> 8) & 0xff));
  raw.push_back(static_cast<char>(len & 0xff));
  raw += payload;

  for (std::size_t split = 1; split < raw.size(); ++split) {
    TcpPair pair = make_tcp_pair();
    std::thread writer([&] {
      // Two raw sends with a pause between them; TCP_NODELAY keeps each
      // as its own segment so the reader really sees a partial frame.
      ASSERT_EQ(::send(pair.client.get(), raw.data(), split, MSG_NOSIGNAL),
                static_cast<ssize_t>(split));
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      ASSERT_EQ(::send(pair.client.get(), raw.data() + split,
                       raw.size() - split, MSG_NOSIGNAL),
                static_cast<ssize_t>(raw.size() - split));
    });
    std::string out;
    ASSERT_EQ(read_frame(pair.server, out, 5'000), IoStatus::kOk)
        << "split at byte " << split;
    EXPECT_EQ(out, payload) << "split at byte " << split;
    writer.join();
  }
}

// A hostile length prefix over the cap must close the connection before
// any payload allocation — and promptly, not after a read timeout.
TEST(WireTcp, OversizedPrefixRejectedBeforeAllocation) {
  TcpPair pair = make_tcp_pair();
  const std::uint32_t huge = kMaxFramePayload + 1;
  unsigned char prefix[4] = {
      static_cast<unsigned char>((huge >> 24) & 0xff),
      static_cast<unsigned char>((huge >> 16) & 0xff),
      static_cast<unsigned char>((huge >> 8) & 0xff),
      static_cast<unsigned char>(huge & 0xff)};
  ASSERT_EQ(::send(pair.client.get(), prefix, sizeof(prefix), MSG_NOSIGNAL),
            static_cast<ssize_t>(sizeof(prefix)));
  const auto started = std::chrono::steady_clock::now();
  std::string out;
  EXPECT_EQ(read_frame(pair.server, out, 30'000), IoStatus::kClosed);
  EXPECT_LT(std::chrono::steady_clock::now() - started,
            std::chrono::seconds(5))
      << "oversized prefix should be rejected immediately, not via timeout";
}

// A slow-loris client — connected over TCP, dribbling no complete frame —
// must be reaped by the server's idle deadline, not allowed to pin a
// reader thread forever.
TEST(WireTcp, SlowLorisClientIsReapedByIdleDeadline) {
  Server::Options opts;
  opts.endpoint = "tcp:127.0.0.1:0";
  opts.workers = 1;
  opts.idle_timeout_ms = 300;
  Server server(opts);
  server.start();

  Fd loris = connect_endpoint(Endpoint::parse(server.bound_endpoint()));
  // One byte of a would-be length prefix, then silence.
  const char crumb = 0;
  ASSERT_EQ(::send(loris.get(), &crumb, 1, MSG_NOSIGNAL), 1);

  // The server shuts the connection down once the idle budget lapses: our
  // next read sees EOF rather than hanging.
  std::string out;
  const IoStatus status = read_frame(loris, out, 10'000);
  EXPECT_EQ(status, IoStatus::kClosed);

  // And an honest client still gets service afterwards.
  Client client(server.bound_endpoint(), "after-loris");
  client.connect(5'000);
  EXPECT_TRUE(client.ping());
  const auto pong = client.poll(3'000);
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(pong->get_string("op").value_or(""), "pong");
  server.stop();
}

// End-to-end sanity: the whole job protocol runs unchanged over TCP.
TEST(WireTcp, ServerServesJobsOverTcp) {
  Server::Options opts;
  opts.endpoint = "tcp:127.0.0.1:0";
  opts.workers = 1;
  Server server(opts);
  server.start();
  ASSERT_NE(server.bound_endpoint().find("tcp:127.0.0.1:"), std::string::npos);

  Client client(server.bound_endpoint(), "tcp1");
  client.connect(5'000);
  EXPECT_EQ(client.server_proto(), kProtocolVersion);
  JobSpec spec;
  spec.backend = "rdh";
  spec.length = 1000;
  ASSERT_TRUE(client.submit("j1", spec));
  bool done = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (!done && std::chrono::steady_clock::now() < deadline) {
    const auto frame = client.poll(500);
    if (!frame) continue;
    if (frame->get_string("op").value_or("") == "done") done = true;
    ASSERT_NE(frame->get_string("op").value_or(""), "error");
  }
  EXPECT_TRUE(done);
  server.stop();
}

}  // namespace
}  // namespace lpm::srv
