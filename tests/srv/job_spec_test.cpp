// JobSpec: the server's job vocabulary. Validation rejects everything the
// executor could choke on, encode/decode round-trips every field, and
// expand() produces the exact engine jobs a sweep needs.
#include "srv/job_spec.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/flat_json.hpp"

namespace lpm::srv {
namespace {

JobSpec valid_spec() {
  JobSpec spec;
  spec.kind = "simulate";
  spec.workload = "403.gcc";
  spec.length = 5'000;
  return spec;
}

TEST(JobSpec, DefaultsValidate) { EXPECT_NO_THROW(valid_spec().validate()); }

TEST(JobSpec, RejectsUnknownKind) {
  auto spec = valid_spec();
  spec.kind = "explode";
  EXPECT_THROW(spec.validate(), util::ConfigError);
}

TEST(JobSpec, RejectsUnknownMachine) {
  auto spec = valid_spec();
  spec.machine = "pdp11";
  EXPECT_THROW(spec.validate(), util::ConfigError);
}

TEST(JobSpec, BackendVocabularyIsStatic) {
  // Clients validate without an engine in the process, so the backend
  // check must not depend on process-local executor registration.
  for (const char* name : {"cycle", "rdh", "fa"}) {
    auto spec = valid_spec();
    spec.backend = name;
    EXPECT_NO_THROW(spec.validate()) << name;
  }
  auto spec = valid_spec();
  spec.backend = "quantum";
  EXPECT_THROW(spec.validate(), util::ConfigError);
}

TEST(JobSpec, RejectsOversizedLength) {
  auto spec = valid_spec();
  spec.length = 10'000'001;
  EXPECT_THROW(spec.validate(), util::ConfigError);
}

TEST(JobSpec, SweepNeedsKnobAndValues) {
  auto spec = valid_spec();
  spec.kind = "sweep";
  EXPECT_THROW(spec.validate(), util::ConfigError);
  spec.sweep_knob = "l1_kb";
  spec.sweep_values = "16,32,64";
  EXPECT_NO_THROW(spec.validate());
  spec.sweep_values = "16,,64";
  EXPECT_THROW(spec.validate(), util::ConfigError);
  spec.sweep_values = "16,zero";
  EXPECT_THROW(spec.validate(), util::ConfigError);
}

TEST(JobSpec, SweepKeysAreSweepOnly) {
  auto spec = valid_spec();
  spec.sweep_knob = "l1_kb";
  EXPECT_THROW(spec.validate(), util::ConfigError);
}

TEST(JobSpec, SweepPointCapEnforced) {
  auto spec = valid_spec();
  spec.kind = "sweep";
  spec.sweep_knob = "mshr";
  std::string values;
  for (std::size_t i = 0; i <= kMaxSweepPoints; ++i) {
    if (!values.empty()) values += ',';
    values += std::to_string(i + 1);
  }
  spec.sweep_values = values;
  EXPECT_THROW(spec.validate(), util::ConfigError);
}

TEST(JobSpec, WalkIsCycleOnly) {
  auto spec = valid_spec();
  spec.kind = "walk";
  spec.backend = "rdh";
  EXPECT_THROW(spec.validate(), util::ConfigError);
}

TEST(JobSpec, DegradeEligibility) {
  auto spec = valid_spec();
  EXPECT_TRUE(spec.degrade_eligible());
  spec.degrade_ok = false;
  EXPECT_FALSE(spec.degrade_eligible());
  spec.degrade_ok = true;
  spec.backend = "rdh";  // already analytic: nothing to degrade to
  EXPECT_FALSE(spec.degrade_eligible());
  spec.backend = "cycle";
  spec.kind = "walk";  // walks verify at cycle fidelity by contract
  EXPECT_FALSE(spec.degrade_eligible());
}

TEST(JobSpec, EncodeDecodeRoundTrip) {
  JobSpec spec;
  spec.kind = "sweep";
  spec.workload = "429.mcf";
  spec.length = 42'000;
  spec.seed = 7;
  spec.machine = "three_level";
  spec.l1_kb = 16;
  spec.l1_assoc = 4;
  spec.l2_kb = 512;
  spec.mshr = 8;
  spec.cores = 2;
  spec.backend = "rdh";
  spec.calibrate = false;
  spec.degrade_ok = false;
  spec.deadline_ms = 1'500;
  spec.sweep_knob = "l2_kb";
  spec.sweep_values = "256,512";

  JsonWriter out;
  spec.encode(out);
  const JobSpec back = JobSpec::decode(util::FlatJson::parse(out.finish()));
  EXPECT_EQ(back.kind, spec.kind);
  EXPECT_EQ(back.workload, spec.workload);
  EXPECT_EQ(back.length, spec.length);
  EXPECT_EQ(back.seed, spec.seed);
  EXPECT_EQ(back.machine, spec.machine);
  EXPECT_EQ(back.l1_kb, spec.l1_kb);
  EXPECT_EQ(back.l1_assoc, spec.l1_assoc);
  EXPECT_EQ(back.l2_kb, spec.l2_kb);
  EXPECT_EQ(back.mshr, spec.mshr);
  EXPECT_EQ(back.cores, spec.cores);
  EXPECT_EQ(back.backend, spec.backend);
  EXPECT_EQ(back.calibrate, spec.calibrate);
  EXPECT_EQ(back.degrade_ok, spec.degrade_ok);
  EXPECT_EQ(back.deadline_ms, spec.deadline_ms);
  EXPECT_EQ(back.sweep_knob, spec.sweep_knob);
  EXPECT_EQ(back.sweep_values, spec.sweep_values);
}

TEST(JobSpec, DecodeRejectsNegativeNumbers) {
  EXPECT_THROW(JobSpec::decode(util::FlatJson::parse(R"({"job_length":-5})")),
               util::ConfigError);
  EXPECT_THROW(JobSpec::decode(util::FlatJson::parse(R"({"job_seed":1.5})")),
               util::ConfigError);
}

TEST(JobSpec, MachineOverridesApply) {
  auto spec = valid_spec();
  spec.l1_kb = 16;
  spec.l1_assoc = 2;
  spec.mshr = 4;
  spec.l2_kb = 128;
  const auto cfg = spec.machine_config();
  EXPECT_EQ(cfg.l1.size_bytes, 16u * 1024);
  EXPECT_EQ(cfg.l1.associativity, 2u);
  EXPECT_EQ(cfg.l1.mshr_entries, 4u);
  EXPECT_EQ(cfg.l2.size_bytes, 128u * 1024);
}

TEST(JobSpec, ExpandSimulateIsOneJob) {
  const auto jobs = valid_spec().expand("c1/j1");
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].tag, "c1/j1");
  EXPECT_EQ(jobs[0].backend, "cycle");
}

TEST(JobSpec, ExpandSweepTagsEveryPoint) {
  auto spec = valid_spec();
  spec.kind = "sweep";
  spec.sweep_knob = "l1_kb";
  spec.sweep_values = "16,32,64";
  const auto jobs = spec.expand("c1/j2");
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_EQ(jobs[0].tag, "c1/j2/l1_kb=16");
  EXPECT_EQ(jobs[2].tag, "c1/j2/l1_kb=64");
  EXPECT_EQ(jobs[0].machine.l1.size_bytes, 16u * 1024);
  EXPECT_EQ(jobs[2].machine.l1.size_bytes, 64u * 1024);
  // Fingerprints differ per point: the memo cache must not conflate them.
  EXPECT_NE(jobs[0].fingerprint(), jobs[1].fingerprint());
}

TEST(JobSpec, ExpandWalkThrows) {
  auto spec = valid_spec();
  spec.kind = "walk";
  EXPECT_THROW(spec.expand("c1/j3"), util::ConfigError);
}

}  // namespace
}  // namespace lpm::srv
