// Framing layer: length-prefixed frames over non-blocking sockets survive
// partial writes, enforce the payload cap, and time out instead of
// blocking forever; JsonWriter emits parseable flat JSON.
#include "srv/wire.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>

#include <string>
#include <thread>

#include "util/error.hpp"
#include "util/flat_json.hpp"

namespace lpm::srv {
namespace {

/// A connected non-blocking socketpair wrapped in Fd owners.
std::pair<Fd, Fd> make_pair_fds() {
  int fds[2] = {-1, -1};
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0, fds), 0);
  return {Fd(fds[0]), Fd(fds[1])};
}

TEST(Wire, FrameRoundTrip) {
  auto [a, b] = make_pair_fds();
  const std::string payload = R"({"op":"ping","id":"x"})";
  ASSERT_EQ(write_frame(a, payload, 1'000), IoStatus::kOk);
  std::string out;
  ASSERT_EQ(read_frame(b, out, 1'000), IoStatus::kOk);
  EXPECT_EQ(out, payload);
}

TEST(Wire, EmptyFrameRoundTrip) {
  auto [a, b] = make_pair_fds();
  ASSERT_EQ(write_frame(a, "", 1'000), IoStatus::kOk);
  std::string out = "stale";
  ASSERT_EQ(read_frame(b, out, 1'000), IoStatus::kOk);
  EXPECT_EQ(out, "");
}

TEST(Wire, ManyFramesKeepOrder) {
  auto [a, b] = make_pair_fds();
  // A concurrent reader: per-send skb overhead fills a unix socket's send
  // buffer after only a few dozen tiny frames, so writing all 64 up front
  // would block on POLLOUT with nobody draining.
  std::thread writer([&a] {
    for (int i = 0; i < 64; ++i) {
      EXPECT_EQ(write_frame(a, "frame-" + std::to_string(i), 5'000),
                IoStatus::kOk);
    }
  });
  std::string out;
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(read_frame(b, out, 5'000), IoStatus::kOk);
    EXPECT_EQ(out, "frame-" + std::to_string(i));
  }
  writer.join();
}

TEST(Wire, ReadTimesOutWithoutData) {
  auto [a, b] = make_pair_fds();
  std::string out;
  EXPECT_EQ(read_frame(b, out, 50), IoStatus::kTimeout);
}

TEST(Wire, ReadSeesPeerClose) {
  auto [a, b] = make_pair_fds();
  a = Fd();  // close the writer
  std::string out;
  EXPECT_EQ(read_frame(b, out, 1'000), IoStatus::kClosed);
}

TEST(Wire, OversizedPrefixClosesConnection) {
  auto [a, b] = make_pair_fds();
  // Hand-roll a prefix claiming kMaxFramePayload + 1 bytes.
  const std::uint32_t len = kMaxFramePayload + 1;
  const char prefix[4] = {static_cast<char>((len >> 24) & 0xff),
                          static_cast<char>((len >> 16) & 0xff),
                          static_cast<char>((len >> 8) & 0xff),
                          static_cast<char>(len & 0xff)};
  ASSERT_EQ(::send(a.get(), prefix, sizeof(prefix), MSG_NOSIGNAL), 4);
  std::string out;
  EXPECT_EQ(read_frame(b, out, 1'000), IoStatus::kClosed);
}

TEST(Wire, LargeFrameSurvivesPartialWrites) {
  auto [a, b] = make_pair_fds();
  // Well past any socket buffer: forces write_all/read-loop round trips.
  const std::string payload(512 * 1024, 'x');
  std::thread writer(
      [&a, &payload] { EXPECT_EQ(write_frame(a, payload, 5'000), IoStatus::kOk); });
  std::string out;
  EXPECT_EQ(read_frame(b, out, 5'000), IoStatus::kOk);
  writer.join();
  EXPECT_EQ(out.size(), payload.size());
  EXPECT_EQ(out, payload);
}

TEST(Wire, ListenerAcceptRoundTrip) {
  const std::string path = testing::TempDir() + "wire_listener.sock";
  ::unlink(path.c_str());
  Fd listener = listen_unix(path);
  Fd client = connect_unix(path);
  auto accepted = accept_socket(listener, 1'000);
  ASSERT_TRUE(accepted.has_value());
  ASSERT_EQ(write_frame(client, "hi", 1'000), IoStatus::kOk);
  std::string out;
  EXPECT_EQ(read_frame(*accepted, out, 1'000), IoStatus::kOk);
  EXPECT_EQ(out, "hi");
  ::unlink(path.c_str());
}

TEST(Wire, AcceptTimesOutIdle) {
  const std::string path = testing::TempDir() + "wire_idle.sock";
  ::unlink(path.c_str());
  Fd listener = listen_unix(path);
  EXPECT_FALSE(accept_socket(listener, 50).has_value());
  ::unlink(path.c_str());
}

TEST(Wire, AcceptReturnsPromptlyAfterShutdown) {
  // Regression: a shut-down listener polls readable-with-POLLHUP while
  // accept(2) keeps returning EAGAIN; without a deadline check the accept
  // loop spins forever and Server::stop() never joins the listener thread.
  const std::string path = testing::TempDir() + "wire_shutdown.sock";
  ::unlink(path.c_str());
  Fd listener = listen_unix(path);
  listener.shutdown_both();
  const auto start = std::chrono::steady_clock::now();
  try {
    // Either outcome is fine — timeout (nullopt) or a closed-listener
    // throw — as long as the call returns promptly.
    (void)accept_socket(listener, 100);
  } catch (const util::IoError&) {
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::seconds(2));
  ::unlink(path.c_str());
}

TEST(Wire, JsonWriterProducesFlatJson) {
  JsonWriter out;
  out.str("op", "done")
      .num("ipc", 1.25)
      .num_u64("cycles", 123456789012345ull)
      .boolean("degraded", true)
      .str("msg", "quote\" slash\\ newline\n tab\t");
  const util::FlatJson parsed = util::FlatJson::parse(out.finish());
  EXPECT_EQ(parsed.get_string("op").value_or(""), "done");
  EXPECT_DOUBLE_EQ(parsed.get_number("ipc").value_or(0.0), 1.25);
  EXPECT_DOUBLE_EQ(parsed.get_number("cycles").value_or(0.0),
                   123456789012345.0);
  EXPECT_TRUE(parsed.get_bool("degraded").value_or(false));
  EXPECT_EQ(parsed.get_string("msg").value_or(""),
            "quote\" slash\\ newline\n tab\t");
}

TEST(Wire, JsonWriterRawBodySplicesFragment) {
  JsonWriter inner;
  inner.str("backend", "cycle").num("ipc", 2.0);
  JsonWriter outer;
  outer.str("op", "done").raw_body(inner.body());
  const util::FlatJson parsed = util::FlatJson::parse(outer.finish());
  EXPECT_EQ(parsed.get_string("op").value_or(""), "done");
  EXPECT_EQ(parsed.get_string("backend").value_or(""), "cycle");
  EXPECT_DOUBLE_EQ(parsed.get_number("ipc").value_or(0.0), 2.0);
}

}  // namespace
}  // namespace lpm::srv
