// AdmissionQueue: the three defence rings and round-robin dispatch.
#include "srv/admission.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

namespace lpm::srv {
namespace {

using std::chrono::milliseconds;

QueuedJob make_job(const std::string& client, const std::string& id,
                   bool degrade_ok = true, const std::string& backend = "cycle") {
  QueuedJob job;
  job.client = client;
  job.id = id;
  job.key = client + "/" + id;
  job.spec.kind = "simulate";
  job.spec.workload = "403.gcc";
  job.spec.length = 1'000;
  job.spec.backend = backend;
  job.spec.degrade_ok = degrade_ok;
  job.deadline = std::chrono::steady_clock::time_point::max();
  job.accepted_at = std::chrono::steady_clock::now();
  return job;
}

AdmissionQueue::Options small_opts() {
  AdmissionQueue::Options opts;
  opts.queue_max = 4;
  opts.per_client_max = 2;
  opts.degrade_watermark = 4;  // == queue_max: ring 2 disabled
  opts.retry_after_ms = 123;
  return opts;
}

TEST(Admission, AcceptsAndPops) {
  AdmissionQueue q(small_opts());
  EXPECT_EQ(q.offer(make_job("a", "1")), AdmissionVerdict::kAccept);
  EXPECT_EQ(q.depth(), 1u);
  const auto job = q.pop(milliseconds(100));
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(job->key, "a/1");
  EXPECT_EQ(q.depth(), 0u);
}

TEST(Admission, PerClientRingRetriesGreedyClient) {
  AdmissionQueue q(small_opts());
  EXPECT_EQ(q.offer(make_job("a", "1")), AdmissionVerdict::kAccept);
  EXPECT_EQ(q.offer(make_job("a", "2")), AdmissionVerdict::kAccept);
  // Third job from the same client bounces with the retry hint...
  EXPECT_EQ(q.offer(make_job("a", "3")), AdmissionVerdict::kRetryAfter);
  EXPECT_EQ(q.retry_after_hint_ms(), 123u);
  // ...while another client still gets in.
  EXPECT_EQ(q.offer(make_job("b", "1")), AdmissionVerdict::kAccept);
  EXPECT_EQ(q.pending_for("a"), 2u);
  EXPECT_EQ(q.pending_for("b"), 1u);
}

TEST(Admission, HardBoundSheds) {
  auto opts = small_opts();
  opts.per_client_max = 10;  // out of the way
  AdmissionQueue q(opts);
  for (int i = 0; i < 4; ++i) {
    // Built incrementally: GCC 12's -Wrestrict misfires on
    // "literal" + std::to_string(...).
    std::string name = "c";
    name += std::to_string(i);
    EXPECT_EQ(q.offer(make_job(name, "1")), AdmissionVerdict::kAccept);
  }
  EXPECT_EQ(q.offer(make_job("c9", "1")), AdmissionVerdict::kShed);
  EXPECT_EQ(q.depth(), 4u);
}

TEST(Admission, DegradeRingRewritesBackend) {
  AdmissionQueue::Options opts;
  opts.queue_max = 8;
  opts.per_client_max = 8;
  opts.degrade_watermark = 1;
  opts.degrade_backend = "fa";
  AdmissionQueue q(opts);
  EXPECT_EQ(q.offer(make_job("a", "1")), AdmissionVerdict::kAccept);
  // Depth is now at the watermark: eligible jobs degrade...
  EXPECT_EQ(q.offer(make_job("a", "2")), AdmissionVerdict::kDegrade);
  // ...jobs the client pinned to full fidelity do not...
  EXPECT_EQ(q.offer(make_job("a", "3", /*degrade_ok=*/false)),
            AdmissionVerdict::kAccept);
  // ...and analytic jobs have nothing to degrade to.
  EXPECT_EQ(q.offer(make_job("a", "4", true, "rdh")), AdmissionVerdict::kAccept);

  for (int i = 0; i < 4; ++i) {
    const auto job = q.pop(milliseconds(100));
    ASSERT_TRUE(job.has_value());
    if (job->id == "2") {
      EXPECT_TRUE(job->degraded);
      EXPECT_EQ(job->spec.backend, "fa");
    } else {
      EXPECT_FALSE(job->degraded);
    }
  }
}

TEST(Admission, PopIsRoundRobinAcrossClients) {
  AdmissionQueue::Options opts;
  opts.queue_max = 64;
  opts.per_client_max = 64;
  opts.degrade_watermark = 64;
  AdmissionQueue q(opts);
  // One burst client and two light clients; arrival order is a/1..a/4
  // before anyone else.
  for (int i = 1; i <= 4; ++i) {
    ASSERT_EQ(q.offer(make_job("a", std::to_string(i))),
              AdmissionVerdict::kAccept);
  }
  ASSERT_EQ(q.offer(make_job("b", "1")), AdmissionVerdict::kAccept);
  ASSERT_EQ(q.offer(make_job("c", "1")), AdmissionVerdict::kAccept);

  std::vector<std::string> order;
  for (int i = 0; i < 6; ++i) {
    const auto job = q.pop(milliseconds(100));
    ASSERT_TRUE(job.has_value());
    order.push_back(job->key);
  }
  // b/1 and c/1 must both be served before the burst client's third job:
  // round-robin, not FIFO.
  const auto pos = [&order](const std::string& key) {
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (order[i] == key) return i;
    }
    return order.size();
  };
  EXPECT_LT(pos("b/1"), pos("a/3"));
  EXPECT_LT(pos("c/1"), pos("a/3"));
  // Per-client FIFO is preserved.
  EXPECT_LT(pos("a/1"), pos("a/2"));
  EXPECT_LT(pos("a/2"), pos("a/3"));
}

TEST(Admission, RequeueBypassesRings) {
  auto opts = small_opts();
  opts.queue_max = 1;
  opts.degrade_watermark = 1;  // must stay <= queue_max
  AdmissionQueue q(opts);
  ASSERT_EQ(q.offer(make_job("a", "1")), AdmissionVerdict::kAccept);
  // Queue is full, but a recovered job must never be re-lost.
  q.requeue(make_job("a", "recovered"));
  EXPECT_EQ(q.depth(), 2u);
}

TEST(Admission, OnAdmitRunsBeforeJobIsPoppable) {
  // The journal hook must see the job (with ring-2 rewrites applied)
  // before any popper can: lpmd's exactly-once argument depends on it.
  AdmissionQueue::Options opts;
  opts.queue_max = 8;
  opts.per_client_max = 8;
  opts.degrade_watermark = 0;  // degrade immediately
  opts.degrade_backend = "rdh";
  AdmissionQueue q(opts);

  bool saw = false;
  const auto verdict = q.offer(
      make_job("a", "1"), [&saw, &q](const QueuedJob& job, AdmissionVerdict v) {
        saw = true;
        EXPECT_EQ(v, AdmissionVerdict::kDegrade);
        EXPECT_EQ(job.spec.backend, "rdh");
        EXPECT_TRUE(job.degraded);
        // Not poppable yet: the lock is held, depth not yet visible as a
        // poppable entry. (depth() would deadlock here; observing the
        // callback firing at all, before offer returns, is the contract.)
      });
  EXPECT_EQ(verdict, AdmissionVerdict::kDegrade);
  EXPECT_TRUE(saw);
  const auto job = q.pop(milliseconds(100));
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(job->spec.backend, "rdh");
}

TEST(Admission, RefusedJobsSkipOnAdmit) {
  // Fill the whole (tiny) queue from one client, then shed a second
  // client's job: the journal hook must not see refused work.
  auto opts = small_opts();
  opts.queue_max = 1;
  opts.degrade_watermark = 1;  // must stay <= queue_max
  AdmissionQueue q(opts);
  ASSERT_EQ(q.offer(make_job("a", "1")), AdmissionVerdict::kAccept);
  bool saw = false;
  EXPECT_EQ(q.offer(make_job("b", "1"),
                    [&saw](const QueuedJob&, AdmissionVerdict) { saw = true; }),
            AdmissionVerdict::kShed);
  EXPECT_FALSE(saw);
}

TEST(Admission, PopTimesOutEmpty) {
  AdmissionQueue q(small_opts());
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(q.pop(milliseconds(60)).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - start, milliseconds(50));
}

TEST(Admission, CloseWakesBlockedPopper) {
  AdmissionQueue q(small_opts());
  std::thread popper([&q] {
    // Generous wait: close() must cut it short.
    EXPECT_FALSE(q.pop(milliseconds(10'000)).has_value());
  });
  std::this_thread::sleep_for(milliseconds(50));
  q.close();
  popper.join();
}

TEST(Admission, CloseDrainsQueuedWork) {
  AdmissionQueue q(small_opts());
  ASSERT_EQ(q.offer(make_job("a", "1")), AdmissionVerdict::kAccept);
  q.close();
  // Already-admitted work still pops after close...
  EXPECT_TRUE(q.pop(milliseconds(100)).has_value());
  // ...then pop reports drained.
  EXPECT_FALSE(q.pop(milliseconds(100)).has_value());
}

}  // namespace
}  // namespace lpm::srv
