// Locks docs/PROTOCOL.md to the protocol the code actually speaks, in
// both directions (the OBSERVABILITY.md catalogue-test pattern):
//
//   * every op in wire.cpp's request_ops()/response_ops() has a matching
//     "#### `<op>` — request|response" section in the doc, and every such
//     section names an op the code still dispatches;
//   * every `job_*` key JobSpec::encode() can emit is documented, and the
//     doc mentions no `job_*` key the codec dropped;
//   * every protocol error code appears in the doc, and the doc's version
//     and frame-cap literals match wire.hpp's constants;
//   * a live server answers each request op with a response op from
//     response_ops() — the lists describe reality, not intent.
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "srv/client.hpp"
#include "srv/job_spec.hpp"
#include "srv/server.hpp"
#include "srv/wire.hpp"
#include "util/flat_json.hpp"

namespace lpm::srv {
namespace {

std::string read_doc() {
  std::ifstream in(LPM_PROTOCOL_MD);
  EXPECT_TRUE(in.good()) << "cannot open " << LPM_PROTOCOL_MD;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Ops from "#### `<op>` — request" / "— response" headings.
std::set<std::string> doc_ops(const std::string& doc, const std::string& kind) {
  // The em dash is three UTF-8 bytes; regex treats them as plain chars.
  const std::regex heading("#### `([a-z_]+)` — " + kind);
  std::set<std::string> ops;
  for (auto it = std::sregex_iterator(doc.begin(), doc.end(), heading);
       it != std::sregex_iterator(); ++it) {
    ops.insert((*it)[1].str());
  }
  return ops;
}

/// Every distinct backticked `job_*` token in the doc.
std::set<std::string> doc_job_keys(const std::string& doc) {
  const std::regex token("`(job_[a-z0-9_]+)`");
  std::set<std::string> keys;
  for (auto it = std::sregex_iterator(doc.begin(), doc.end(), token);
       it != std::sregex_iterator(); ++it) {
    keys.insert((*it)[1].str());
  }
  return keys;
}

TEST(ProtocolDoc, RequestOpsMatchDocSections) {
  const std::string doc = read_doc();
  const std::set<std::string> documented = doc_ops(doc, "request");
  const std::set<std::string> coded(request_ops().begin(), request_ops().end());
  EXPECT_EQ(coded, documented)
      << "request op vocabulary drifted between src/srv/wire.cpp and "
         "docs/PROTOCOL.md";
}

TEST(ProtocolDoc, ResponseOpsMatchDocSections) {
  const std::string doc = read_doc();
  const std::set<std::string> documented = doc_ops(doc, "response");
  const std::set<std::string> coded(response_ops().begin(),
                                    response_ops().end());
  EXPECT_EQ(coded, documented)
      << "response op vocabulary drifted between src/srv/wire.cpp and "
         "docs/PROTOCOL.md";
}

TEST(ProtocolDoc, JobSpecKeysMatchDoc) {
  // A spec with every optional field set emits the complete key set.
  JobSpec spec;
  spec.kind = "sweep";
  spec.l1_kb = 16;
  spec.l1_assoc = 2;
  spec.l2_kb = 256;
  spec.mshr = 8;
  spec.cores = 2;
  spec.deadline_ms = 1000;
  spec.trace_file = "/tmp/trace.lpm2";
  spec.sweep_knob = "l1_kb";
  spec.sweep_values = "16,32";
  JsonWriter out;
  spec.encode(out);
  const util::FlatJson frame = util::FlatJson::parse(out.finish());

  std::set<std::string> coded;
  for (const std::string& key : frame.keys()) {
    if (key.rfind("job_", 0) == 0) coded.insert(key);
  }
  ASSERT_GE(coded.size(), 16u) << "encode() emitted fewer keys than expected "
                                  "— update this test's fully-populated spec";
  EXPECT_EQ(coded, doc_job_keys(read_doc()))
      << "job_* field vocabulary drifted between src/srv/job_spec.cpp and "
         "docs/PROTOCOL.md";
}

TEST(ProtocolDoc, ErrorCodesAreDocumented) {
  const std::string doc = read_doc();
  for (const std::string& code : protocol_error_codes()) {
    EXPECT_NE(doc.find("`" + code + "`"), std::string::npos)
        << "error code '" << code << "' missing from docs/PROTOCOL.md";
  }
}

TEST(ProtocolDoc, VersionAndFrameCapLiteralsMatch) {
  const std::string doc = read_doc();
  EXPECT_NE(doc.find("Protocol version: " + std::to_string(kProtocolVersion)),
            std::string::npos)
      << "docs/PROTOCOL.md must state 'Protocol version: "
      << kProtocolVersion << "'";
  EXPECT_NE(doc.find(std::to_string(kMaxFramePayload)), std::string::npos)
      << "docs/PROTOCOL.md must state the frame cap ("
      << kMaxFramePayload << ")";
}

// The op lists must describe a live server, not a stale table: drive one
// frame of every request op and require an answer from response_ops().
TEST(ProtocolDoc, LiveServerAnswersEveryRequestOpFromResponseOps) {
  Server::Options opts;
  opts.endpoint = testing::TempDir() + "protocol_doc.sock";
  opts.workers = 1;
  Server server(opts);
  server.start();

  const std::set<std::string> responses(response_ops().begin(),
                                        response_ops().end());
  Client client(opts.endpoint, "doc");
  client.connect(5'000);  // hello -> hello_ok exercised inside

  JobSpec spec;
  spec.backend = "rdh";  // analytic: instant
  spec.length = 1000;
  ASSERT_TRUE(client.submit("j1", spec));
  ASSERT_TRUE(client.attach("nonexistent"));  // -> error (unknown_job)
  ASSERT_TRUE(client.ping());                 // -> pong
  ASSERT_TRUE(client.request_stats());        // -> stats

  std::set<std::string> seen;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  // submit yields ack then done; the others one frame each.
  while (seen.size() < 5 && std::chrono::steady_clock::now() < deadline) {
    const auto frame = client.poll(500);
    if (!frame) continue;
    const std::string op = frame->get_string("op").value_or("");
    EXPECT_TRUE(responses.contains(op))
        << "server answered with op '" << op << "' not in response_ops()";
    seen.insert(op);
  }
  EXPECT_TRUE(seen.contains("ack"));
  EXPECT_TRUE(seen.contains("done"));
  EXPECT_TRUE(seen.contains("error"));
  EXPECT_TRUE(seen.contains("pong"));
  EXPECT_TRUE(seen.contains("stats"));

  ASSERT_TRUE(client.request_shutdown());
  const auto bye = client.poll(3'000);
  ASSERT_TRUE(bye.has_value());
  EXPECT_EQ(bye->get_string("op").value_or(""), "shutdown_ok");
  server.stop();
}

}  // namespace
}  // namespace lpm::srv
