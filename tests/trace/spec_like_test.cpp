#include "trace/spec_like.hpp"

#include <gtest/gtest.h>

#include <set>

namespace lpm::trace {
namespace {

TEST(SpecLike, CatalogHasSixteenDistinctBenchmarks) {
  const auto& all = all_spec_benchmarks();
  EXPECT_EQ(all.size(), 16u);
  std::set<std::string> names;
  for (const auto b : all) names.insert(spec_name(b));
  EXPECT_EQ(names.size(), 16u);
}

TEST(SpecLike, AllProfilesValidate) {
  for (const auto b : all_spec_benchmarks()) {
    EXPECT_NO_THROW(spec_profile(b).validate()) << spec_name(b);
  }
}

TEST(SpecLike, ProfileNamesMatchBenchmarkNames) {
  for (const auto b : all_spec_benchmarks()) {
    EXPECT_EQ(spec_profile(b).name, spec_name(b));
  }
}

TEST(SpecLike, LengthAndSeedPropagate) {
  const auto p = spec_profile(SpecBenchmark::kGcc, 12345, 99);
  EXPECT_EQ(p.length, 12345u);
  EXPECT_EQ(p.seed, 99u);
}

TEST(SpecLike, QualitativeCharacterisations) {
  // bzip2's hot set fits a 4 KB L1; gcc needs much more.
  EXPECT_LE(spec_profile(SpecBenchmark::kBzip2).working_set_bytes, 4u * 1024);
  EXPECT_GT(spec_profile(SpecBenchmark::kGcc).working_set_bytes, 32u * 1024);
  // mcf chases pointers; bwaves streams.
  EXPECT_GT(spec_profile(SpecBenchmark::kMcf).pointer_chase_fraction, 0.5);
  EXPECT_GT(spec_profile(SpecBenchmark::kBwaves).seq_fraction, 0.7);
  EXPECT_GE(spec_profile(SpecBenchmark::kBwaves).num_streams, 4u);
  // milc's footprint dwarfs any L1.
  EXPECT_GT(spec_profile(SpecBenchmark::kMilc).working_set_bytes, 1u << 23);
  // compute-bound codes have low fmem.
  EXPECT_LT(spec_profile(SpecBenchmark::kNamd).fmem, 0.3);
  EXPECT_LT(spec_profile(SpecBenchmark::kGromacs).fmem, 0.3);
}

TEST(SpecLike, MakeTraceProducesWorkingSource) {
  const auto p = spec_profile(SpecBenchmark::kBwaves, 1000);
  auto t = make_trace(p);
  ASSERT_NE(t, nullptr);
  MicroOp op;
  std::uint64_t n = 0;
  while (t->next(op)) ++n;
  EXPECT_EQ(n, 1000u);
  EXPECT_EQ(t->name(), "410.bwaves");
}

TEST(SpecLike, BurstProfileHasPhases) {
  const auto p = burst_profile(64, 0.3);
  EXPECT_EQ(p.phase_length, 64u);
  EXPECT_DOUBLE_EQ(p.burst_duty, 0.3);
  EXPECT_GT(p.burst_fmem, p.fmem);
  EXPECT_NO_THROW(p.validate());
}

TEST(SpecLike, DifferentSeedsGiveDifferentStreams) {
  auto t1 = make_trace(spec_profile(SpecBenchmark::kSoplex, 1000, 1));
  auto t2 = make_trace(spec_profile(SpecBenchmark::kSoplex, 1000, 2));
  MicroOp a;
  MicroOp b;
  int diffs = 0;
  for (int i = 0; i < 1000; ++i) {
    if (!t1->next(a) || !t2->next(b)) break;
    if (a.type != b.type || a.addr != b.addr) ++diffs;
  }
  EXPECT_GT(diffs, 100);
}

}  // namespace
}  // namespace lpm::trace
