// The fill() contract: the concatenation of batched chunks must be
// byte-identical to the stream repeated next() calls produce — batching is
// purely a throughput change. Covered per source (synthetic incl. burst
// phases, vector, file, mmap in both delivery modes) and end-to-end: a
// System fed through a next()-only proxy produces the exact SystemResult of
// the batched path, and a System replaying a recorded LPM2 file produces
// the exact SystemResult of the live synthetic stream on all 16 profiles.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "sim/system.hpp"
#include "trace/lpm2.hpp"
#include "trace/mmap_trace.hpp"
#include "trace/spec_like.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace_file.hpp"
#include "trace/trace_source.hpp"

namespace lpm::trace {
namespace {

std::vector<MicroOp> drain_with_next(TraceSource& src) {
  std::vector<MicroOp> ops;
  MicroOp op;
  while (src.next(op)) ops.push_back(op);
  return ops;
}

std::vector<MicroOp> drain_with_fill(TraceSource& src, std::size_t chunk) {
  std::vector<MicroOp> ops;
  std::vector<MicroOp> buf(chunk);
  while (true) {
    const std::size_t got = src.fill(buf.data(), chunk);
    ops.insert(ops.end(), buf.begin(),
               buf.begin() + static_cast<std::ptrdiff_t>(got));
    if (got < chunk) break;
  }
  return ops;
}

void expect_same_stream(const std::vector<MicroOp>& a,
                        const std::vector<MicroOp>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].type, b[i].type) << "op " << i;
    ASSERT_EQ(a[i].addr, b[i].addr) << "op " << i;
    ASSERT_EQ(a[i].dep_dist, b[i].dep_dist) << "op " << i;
    ASSERT_EQ(a[i].dep_dist2, b[i].dep_dist2) << "op " << i;
    ASSERT_EQ(a[i].exec_latency, b[i].exec_latency) << "op " << i;
  }
}

void expect_fill_matches_next(const WorkloadProfile& profile) {
  // Chunk sizes around and away from the core's batch size, including a
  // non-divisor of the trace length and single-op batches.
  for (const std::size_t chunk : {1ul, 7ul, 256ul, 1000ul}) {
    SyntheticTrace by_next(profile);
    SyntheticTrace by_fill(profile);
    expect_same_stream(drain_with_next(by_next),
                       drain_with_fill(by_fill, chunk));
  }
}

TEST(FillDeterminism, SyntheticMatchesNext) {
  expect_fill_matches_next(spec_profile(SpecBenchmark::kBwaves, 5000, 17));
  expect_fill_matches_next(spec_profile(SpecBenchmark::kMcf, 5000, 3));
}

TEST(FillDeterminism, BurstProfileMatchesNext) {
  // Phase boundaries exercise the mid-stream profile switches.
  expect_fill_matches_next(burst_profile(500, 0.5, 6000, 7));
}

TEST(FillDeterminism, VectorTraceMatchesNext) {
  SyntheticTrace gen(spec_profile(SpecBenchmark::kGcc, 3000, 5));
  std::vector<MicroOp> ops;
  MicroOp op;
  while (gen.next(op)) ops.push_back(op);

  for (const std::size_t chunk : {1ul, 64ul, 4096ul}) {
    VectorTrace by_next("v", ops);
    VectorTrace by_fill("v", ops);
    expect_same_stream(drain_with_next(by_next),
                       drain_with_fill(by_fill, chunk));
  }
}

TEST(FillDeterminism, FileTraceMatchesNext) {
  const std::string path = testing::TempDir() + "/lpm_fill_determinism.bin";
  SyntheticTrace gen(spec_profile(SpecBenchmark::kSoplex, 3000, 11));
  record_trace(gen, path);

  FileTrace by_next(path);
  FileTrace by_fill(path);
  expect_same_stream(drain_with_next(by_next), drain_with_fill(by_fill, 100));
  std::remove(path.c_str());
}

/// Forwards next()/reset() only, hiding the wrapped source's fill()
/// override so the base class's next()-loop fallback runs — i.e. the
/// unbatched path a pre-fill() TraceSource would take.
class NextOnlyProxy final : public TraceSource {
 public:
  explicit NextOnlyProxy(TraceSourcePtr inner) : inner_(std::move(inner)) {}
  bool next(MicroOp& op) override { return inner_->next(op); }
  void reset() override { inner_->reset(); }
  [[nodiscard]] std::string name() const override { return inner_->name(); }

 private:
  TraceSourcePtr inner_;
};

/// Runs one source through a single-core default System.
sim::SystemResult run_system(TraceSourcePtr src) {
  std::vector<TraceSourcePtr> traces;
  traces.push_back(std::move(src));
  sim::System sys(sim::MachineConfig::single_core_default(), std::move(traces));
  return sys.run();
}

/// Field-wise identity of the counters a divergence would surface in (the
/// structs carry no operator==; this mirrors the differential oracle's
/// counter set for a single-core run).
void expect_same_system_result(const sim::SystemResult& a,
                               const sim::SystemResult& b) {
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.cycles, b.cycles);
  ASSERT_EQ(a.cores.size(), b.cores.size());
  EXPECT_EQ(a.cores[0].instructions, b.cores[0].instructions);
  EXPECT_EQ(a.cores[0].mem_ops, b.cores[0].mem_ops);
  EXPECT_EQ(a.cores[0].data_stall_cycles, b.cores[0].data_stall_cycles);
  EXPECT_EQ(a.cores[0].overlap_cycles, b.cores[0].overlap_cycles);
  ASSERT_EQ(a.l1_cache.size(), b.l1_cache.size());
  EXPECT_EQ(a.l1_cache[0].accesses, b.l1_cache[0].accesses);
  EXPECT_EQ(a.l1_cache[0].misses, b.l1_cache[0].misses);
  EXPECT_EQ(a.l2_cache.accesses, b.l2_cache.accesses);
  EXPECT_EQ(a.l2_cache.misses, b.l2_cache.misses);
  EXPECT_EQ(a.dram_stats.reads, b.dram_stats.reads);
  EXPECT_EQ(a.l1[0].pure_miss_cycles, b.l1[0].pure_miss_cycles);
  EXPECT_EQ(a.l2.pure_miss_cycles, b.l2.pure_miss_cycles);
}

TEST(FillDeterminism, SystemResultIdenticalBatchedVsUnbatched) {
  const auto profile = spec_profile(SpecBenchmark::kBwaves, 20000, 17);
  const sim::SystemResult a =
      run_system(std::make_unique<SyntheticTrace>(profile));
  const sim::SystemResult b = run_system(std::make_unique<NextOnlyProxy>(
      std::make_unique<SyntheticTrace>(profile)));
  expect_same_system_result(a, b);
}

// --- recorded LPM2 replay: the mmap path joins the determinism net ----------

/// One recorded LPM2 file per fixture run, shared by the mmap tests below.
class Lpm2Determinism : public testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "/lpm_fill_determinism.lpm2";
    profile_ = spec_profile(SpecBenchmark::kGcc, 5000, 23);
    SyntheticTrace gen(profile_);
    record_trace_v2(gen, path_);
    SyntheticTrace live(profile_);
    expected_ = drain_with_next(live);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  [[nodiscard]] MmapTraceOptions mode(bool pipeline) const {
    // A chunk much smaller than the trace so the pipelined drain cycles
    // both slots many times instead of finishing in one handoff.
    return MmapTraceOptions{.pipeline = pipeline, .chunk_ops = 512};
  }

  std::string path_;
  WorkloadProfile profile_;
  std::vector<MicroOp> expected_;
};

TEST_F(Lpm2Determinism, MmapMatchesSyntheticAtEveryChunkSize) {
  for (const bool pipeline : {false, true}) {
    // Chunk sizes below, straddling, and far above the pipeline slot size —
    // including single-op pulls and a non-divisor of the trace length.
    for (const std::size_t chunk : {1ul, 7ul, 64ul, 4096ul}) {
      MmapTrace by_fill(path_, "by-fill", mode(pipeline));
      expect_same_stream(expected_, drain_with_fill(by_fill, chunk));
    }
    MmapTrace by_next(path_, "by-next", mode(pipeline));
    expect_same_stream(expected_, drain_with_next(by_next));
  }
}

TEST_F(Lpm2Determinism, MidStreamResetReplaysTheIdenticalStream) {
  for (const bool pipeline : {false, true}) {
    MmapTrace src(path_, "reset", mode(pipeline));
    // Consume a prefix that ends mid-chunk, then rewind: the full replay
    // must match the untouched stream exactly.
    std::vector<MicroOp> prefix(expected_.size() / 3 + 5);
    ASSERT_EQ(src.fill(prefix.data(), prefix.size()), prefix.size());
    src.reset();
    expect_same_stream(expected_, drain_with_fill(src, 100));
    // And a reset after full exhaustion replays again too.
    src.reset();
    expect_same_stream(expected_, drain_with_next(src));
  }
}

TEST_F(Lpm2Determinism, V1ResidentAndV2StreamingReplayIdentically) {
  const std::string v1_path = testing::TempDir() + "/lpm_fill_determinism.lpmt";
  SyntheticTrace gen(profile_);
  record_trace(gen, v1_path);

  FileTrace resident(v1_path);
  expect_same_stream(expected_, drain_with_fill(resident, 64));
  MmapTrace streaming(path_, "v2", mode(true));
  expect_same_stream(expected_, drain_with_fill(streaming, 64));
  std::remove(v1_path.c_str());
}

TEST(FillDeterminism, MmapReplayMatchesLiveSyntheticOnAllSpecProfiles) {
  // The record → mmap-replay → simulate path must be bit-identical to
  // simulating the live generator, for every profile in the catalog.
  // Alternate delivery modes across profiles so both are load-bearing.
  const std::string path = testing::TempDir() + "/lpm_fill_det_profiles.lpm2";
  std::size_t i = 0;
  for (const SpecBenchmark bench : all_spec_benchmarks()) {
    const auto profile = spec_profile(bench, 4000, 29 + i);
    {
      SyntheticTrace gen(profile);
      record_trace_v2(gen, path);
    }
    const sim::SystemResult live =
        run_system(std::make_unique<SyntheticTrace>(profile));
    const sim::SystemResult replay = run_system(std::make_unique<MmapTrace>(
        path, spec_name(bench),
        MmapTraceOptions{.pipeline = (i % 2 == 0), .chunk_ops = 512}));
    SCOPED_TRACE(spec_name(bench));
    expect_same_system_result(live, replay);
    ++i;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lpm::trace
