// The LPM2 on-disk format's safety net: every truncation (at every byte
// offset) and every single-bit flip of the header, the checksum, and the
// record payload must surface as a typed util::IoError — never UB, an OOM,
// or a silently short MicroOp stream. Plus the units underneath: the
// streaming content checksum, the record codec, open_trace() dispatch and
// its env knobs, the file-backed profile/fingerprint identity, and the
// materialize() fill-contract enforcement.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "trace/lpm2.hpp"
#include "trace/mmap_trace.hpp"
#include "trace/spec_like.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace_file.hpp"
#include "trace/trace_source.hpp"
#include "util/checksum.hpp"
#include "util/error.hpp"
#include "util/fingerprint.hpp"

namespace lpm::trace {
namespace {

// --- helpers ----------------------------------------------------------------

std::string temp_path(const std::string& leaf) {
  return testing::TempDir() + "/" + leaf;
}

std::vector<unsigned char> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const unsigned char* data,
                std::size_t size) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(data), static_cast<std::streamsize>(size));
  ASSERT_TRUE(out.good()) << path;
}

/// A small deterministic op list that exercises every record field,
/// including the extremes the codec must carry losslessly.
std::vector<MicroOp> sample_ops(std::size_t n) {
  std::vector<MicroOp> ops;
  ops.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    MicroOp op;
    op.type = static_cast<OpType>(i % 3);
    op.addr = (i == 1) ? ~0ull : i * 0x9e3779b9ull;
    op.dep_dist = static_cast<std::uint32_t>(i % 9);
    op.dep_dist2 = (i == 2) ? ~0u : static_cast<std::uint32_t>(i % 4);
    op.exec_latency = static_cast<std::uint8_t>(1 + i % 7);
    ops.push_back(op);
  }
  return ops;
}

/// Full drain through MmapTrace with a tiny chunk so the pipelined mode
/// cycles both slots several times. Throws whatever the source throws.
std::vector<MicroOp> drain_mmap(const std::string& path, bool pipeline) {
  MmapTrace src(path, "torture", MmapTraceOptions{.pipeline = pipeline,
                                                  .chunk_ops = 8});
  std::vector<MicroOp> ops;
  std::vector<MicroOp> buf(5);
  for (;;) {
    const std::size_t got = src.fill(buf.data(), buf.size());
    ops.insert(ops.end(), buf.begin(),
               buf.begin() + static_cast<std::ptrdiff_t>(got));
    if (got < buf.size()) break;
  }
  return ops;
}

/// The torture contract: `fn` must raise util::IoError — any other outcome
/// (no exception = a silently short/garbage stream, or an untyped/wrong
/// exception) is the bug this net exists to catch.
testing::AssertionResult raises_io_error(const std::function<void()>& fn) {
  try {
    fn();
    return testing::AssertionFailure() << "completed without an error";
  } catch (const util::IoError&) {
    return testing::AssertionSuccess();
  } catch (const std::exception& e) {
    return testing::AssertionFailure() << "raised a non-IoError: " << e.what();
  }
}

/// Asserts that a mutated file fails typed everywhere it can be consumed:
/// the offline verifier and a full replay drain in both delivery modes.
testing::AssertionResult fails_everywhere_typed(const std::string& path) {
  if (auto r = raises_io_error([&] { (void)verify_trace(path); }); !r) {
    return testing::AssertionFailure() << "verify_trace: " << r.message();
  }
  if (auto r = raises_io_error([&] { (void)drain_mmap(path, false); }); !r) {
    return testing::AssertionFailure() << "direct drain: " << r.message();
  }
  if (auto r = raises_io_error([&] { (void)drain_mmap(path, true); }); !r) {
    return testing::AssertionFailure() << "pipelined drain: " << r.message();
  }
  return testing::AssertionSuccess();
}

// --- Checksum64 -------------------------------------------------------------

TEST(Checksum64, IncrementalMatchesOneShot) {
  std::vector<unsigned char> data(257);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<unsigned char>(i * 31 + 7);
  }
  util::Checksum64 whole;
  whole.update(data.data(), data.size());

  // Every split point, including ones that land mid-word and force the
  // tail buffer to carry bytes across updates.
  for (const std::size_t cut : {0ul, 1ul, 7ul, 8ul, 9ul, 63ul, 256ul, 257ul}) {
    util::Checksum64 split;
    split.update(data.data(), cut);
    split.update(data.data() + cut, data.size() - cut);
    EXPECT_EQ(split.digest(), whole.digest()) << "cut at " << cut;
  }
}

TEST(Checksum64, DigestIsNonDestructiveAndNeverZero) {
  util::Checksum64 empty;
  EXPECT_NE(empty.digest(), 0u);
  EXPECT_EQ(empty.digest(), empty.digest());

  util::Checksum64 c;
  const unsigned char byte = 0;
  c.update(&byte, 1);
  const std::uint64_t first = c.digest();
  EXPECT_NE(first, 0u);
  // digest() must not consume state: more input still lands on top.
  c.update(&byte, 1);
  EXPECT_NE(c.digest(), first);
}

TEST(Checksum64, DistinguishesContentOrderAndLength) {
  const unsigned char a[] = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  const unsigned char b[] = {1, 2, 3, 4, 5, 6, 7, 9, 8};
  util::Checksum64 ca;
  util::Checksum64 cb;
  util::Checksum64 cshort;
  ca.update(a, sizeof(a));
  cb.update(b, sizeof(b));
  cshort.update(a, sizeof(a) - 1);
  EXPECT_NE(ca.digest(), cb.digest());
  EXPECT_NE(ca.digest(), cshort.digest());
}

// --- record codec -----------------------------------------------------------

TEST(Lpm2Codec, RoundTripsEveryField) {
  for (const MicroOp& op : sample_ops(16)) {
    unsigned char buf[kLpm2RecordBytes];
    encode_record(op, buf);
    EXPECT_EQ(decode_record(buf), op);
  }
}

TEST(Lpm2Codec, RejectsInvalidTypeByte) {
  unsigned char buf[kLpm2RecordBytes] = {};
  encode_record(MicroOp{}, buf);
  buf[0] = static_cast<unsigned char>(OpType::kStore) + 1;
  EXPECT_THROW((void)decode_record(buf), util::IoError);
  buf[0] = 0xff;
  EXPECT_THROW((void)decode_record(buf), util::IoError);
}

// --- format round trip ------------------------------------------------------

TEST(Lpm2Format, RecordInspectVerifyAgree) {
  const std::string path = temp_path("lpm2_roundtrip.lpm2");
  const std::vector<MicroOp> ops = sample_ops(100);
  VectorTrace src("sample", ops);
  const std::uint64_t recorded = record_trace_v2(src, path);
  EXPECT_NE(recorded, 0u);

  const TraceFileInfo inspected = inspect_trace(path);
  EXPECT_EQ(inspected.version, kLpm2Version);
  EXPECT_EQ(inspected.count, ops.size());
  EXPECT_EQ(inspected.checksum, recorded);
  EXPECT_EQ(inspected.file_bytes,
            kLpm2HeaderBytes + ops.size() * kLpm2RecordBytes);

  const TraceFileInfo verified = verify_trace(path);
  EXPECT_EQ(verified.checksum, recorded);

  // And the replayed stream is the recorded stream, both delivery modes.
  EXPECT_EQ(drain_mmap(path, false), ops);
  EXPECT_EQ(drain_mmap(path, true), ops);
  std::remove(path.c_str());
}

TEST(Lpm2Format, V1AndV2RecordingsShareTheContentChecksum) {
  // The two formats carry the same record layout, so the same stream must
  // hash identically — that is what lets fingerprints key on content alone.
  const std::string v1 = temp_path("lpm2_same_v1.lpmt");
  const std::string v2 = temp_path("lpm2_same_v2.lpm2");
  const auto profile = spec_profile(SpecBenchmark::kGcc, 2000, 9);
  {
    SyntheticTrace gen(profile);
    record_trace(gen, v1);
  }
  SyntheticTrace gen(profile);
  const std::uint64_t recorded = record_trace_v2(gen, v2);

  const TraceFileInfo i1 = inspect_trace(v1);
  const TraceFileInfo i2 = inspect_trace(v2);
  EXPECT_EQ(i1.version, 1u);
  EXPECT_EQ(i2.version, 2u);
  EXPECT_EQ(i1.count, i2.count);
  EXPECT_EQ(i1.checksum, recorded);
  EXPECT_EQ(i2.checksum, recorded);
  std::remove(v1.c_str());
  std::remove(v2.c_str());
}

TEST(Lpm2Format, EmptyRecordingVerifiesButProfileRejectsIt) {
  const std::string path = temp_path("lpm2_empty.lpm2");
  const std::vector<MicroOp> none;
  VectorTrace src("empty", none);
  record_trace_v2(src, path);

  EXPECT_EQ(verify_trace(path).count, 0u);
  EXPECT_TRUE(drain_mmap(path, false).empty());
  // Nothing to simulate: the profile constructor refuses it loudly.
  EXPECT_THROW((void)trace_file_profile(path), util::ConfigError);
  std::remove(path.c_str());
}

// --- corruption torture -----------------------------------------------------

class Lpm2Torture : public testing::Test {
 protected:
  void SetUp() override {
    path_ = temp_path("lpm2_torture.lpm2");
    mutant_ = temp_path("lpm2_torture_mutant.lpm2");
    ops_ = sample_ops(24);
    VectorTrace src("torture", ops_);
    record_trace_v2(src, path_);
    bytes_ = read_file(path_);
    ASSERT_EQ(bytes_.size(), kLpm2HeaderBytes + ops_.size() * kLpm2RecordBytes);
    // Control: the unmutated file is clean everywhere — without this, the
    // EXPECT_THROWs below could pass vacuously against a broken writer.
    ASSERT_EQ(verify_trace(path_).count, ops_.size());
    ASSERT_EQ(drain_mmap(path_, false), ops_);
    ASSERT_EQ(drain_mmap(path_, true), ops_);
  }

  void TearDown() override {
    std::remove(path_.c_str());
    std::remove(mutant_.c_str());
  }

  std::string path_;
  std::string mutant_;
  std::vector<MicroOp> ops_;
  std::vector<unsigned char> bytes_;
};

TEST_F(Lpm2Torture, TruncationAtEveryByteOffsetIsTypedIoError) {
  // A valid file's size is exactly header + count * record_bytes, so every
  // prefix — empty file, partial header, partial record, and even an exact
  // record boundary — must be rejected at open, before any decode.
  for (std::size_t len = 0; len < bytes_.size(); ++len) {
    write_file(mutant_, bytes_.data(), len);
    EXPECT_TRUE(raises_io_error([&] { (void)inspect_trace(mutant_); }))
        << "inspect_trace at length " << len;
    EXPECT_TRUE(raises_io_error([&] { (void)verify_trace(mutant_); }))
        << "verify_trace at length " << len;
    EXPECT_TRUE(raises_io_error([&] { MmapTrace t(mutant_); }))
        << "MmapTrace at length " << len;
    EXPECT_TRUE(raises_io_error([&] { (void)open_trace(mutant_); }))
        << "open_trace at length " << len;
  }
  // ...and so must a file with bytes appended past the declared count.
  std::vector<unsigned char> grown = bytes_;
  grown.push_back(0);
  write_file(mutant_, grown.data(), grown.size());
  EXPECT_TRUE(raises_io_error([&] { (void)inspect_trace(mutant_); }));
}

TEST_F(Lpm2Torture, EveryHeaderBitFlipIsTypedIoError) {
  // Magic, version, count, record size, and reserved flips die at parse
  // time; checksum flips survive the open and must instead fail the
  // verifier and both replay drains at end-of-stream.
  for (std::size_t offset = 0; offset < kLpm2HeaderBytes; ++offset) {
    for (unsigned bit = 0; bit < 8; ++bit) {
      std::vector<unsigned char> mutated = bytes_;
      mutated[offset] ^= static_cast<unsigned char>(1u << bit);
      write_file(mutant_, mutated.data(), mutated.size());
      EXPECT_TRUE(fails_everywhere_typed(mutant_))
          << "header offset " << offset << " bit " << bit;
    }
  }
}

TEST_F(Lpm2Torture, EveryRecordBitFlipIsTypedIoError) {
  // A type-byte flip may produce an out-of-range type (caught at decode) or
  // a different valid op; every other byte silently changes the payload. In
  // all cases the content checksum no longer matches the header, so the
  // verifier and both full drains must raise — a replay that "succeeds"
  // with different ops would poison every consumer downstream.
  for (std::size_t offset = kLpm2HeaderBytes; offset < bytes_.size(); ++offset) {
    for (unsigned bit = 0; bit < 8; ++bit) {
      std::vector<unsigned char> mutated = bytes_;
      mutated[offset] ^= static_cast<unsigned char>(1u << bit);
      write_file(mutant_, mutated.data(), mutated.size());
      EXPECT_TRUE(fails_everywhere_typed(mutant_))
          << "record offset " << offset << " bit " << bit;
    }
  }
}

TEST_F(Lpm2Torture, CorruptionFailureIsStickyUntilReset) {
  // Flip one checksum byte: the file opens (the header parses) but the
  // drain must fail at end-of-stream, stay failed on further calls, and —
  // because replay is deterministic — fail the same way again after reset().
  std::vector<unsigned char> mutated = bytes_;
  mutated[16] ^= 0x01;
  write_file(mutant_, mutated.data(), mutated.size());

  for (const bool pipeline : {false, true}) {
    MmapTrace src(mutant_, "sticky",
                  MmapTraceOptions{.pipeline = pipeline, .chunk_ops = 8});
    std::vector<MicroOp> buf(ops_.size() + 1);
    EXPECT_THROW((void)src.fill(buf.data(), buf.size()), util::IoError)
        << "pipeline=" << pipeline;
    MicroOp op;
    EXPECT_THROW((void)src.next(op), util::IoError) << "sticky";
    src.reset();
    EXPECT_THROW((void)src.fill(buf.data(), buf.size()), util::IoError)
        << "after reset";
  }
}

// --- MmapTrace behavior at the edges ----------------------------------------

TEST(MmapTraceEdges, ZeroFillAndExactExhaustion) {
  const std::string path = temp_path("lpm2_edges.lpm2");
  const std::vector<MicroOp> ops = sample_ops(10);
  VectorTrace src("edges", ops);
  record_trace_v2(src, path);

  for (const bool pipeline : {false, true}) {
    MmapTrace t(path, "edges", MmapTraceOptions{.pipeline = pipeline,
                                                .chunk_ops = 4});
    std::vector<MicroOp> buf(ops.size());
    EXPECT_EQ(t.fill(buf.data(), 0), 0u);
    // An exact-size request drains everything; the next call reports EOF.
    ASSERT_EQ(t.fill(buf.data(), buf.size()), ops.size());
    EXPECT_EQ(buf, ops);
    EXPECT_EQ(t.fill(buf.data(), buf.size()), 0u);
    MicroOp op;
    EXPECT_FALSE(t.next(op));
  }
  std::remove(path.c_str());
}

// --- open_trace dispatch + env knobs ----------------------------------------

/// Sets an environment variable for the enclosing scope, restoring the
/// previous state on destruction so tests cannot leak knobs at each other.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_ = true;
      old_ = old;
    }
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  const char* name_;
  bool had_ = false;
  std::string old_;
};

class OpenTraceDispatch : public testing::Test {
 protected:
  void SetUp() override {
    v1_ = temp_path("open_dispatch.lpmt");
    v2_ = temp_path("open_dispatch.lpm2");
    const auto profile = spec_profile(SpecBenchmark::kMcf, 300, 5);
    {
      SyntheticTrace gen(profile);
      record_trace(gen, v1_);
    }
    SyntheticTrace gen(profile);
    record_trace_v2(gen, v2_);
  }
  void TearDown() override {
    std::remove(v1_.c_str());
    std::remove(v2_.c_str());
  }

  std::string v1_;
  std::string v2_;
};

TEST_F(OpenTraceDispatch, SniffsMagicAndRejectsGarbage) {
  const TraceSourcePtr legacy = open_trace(v1_);
  EXPECT_NE(dynamic_cast<FileTrace*>(legacy.get()), nullptr);

  const TraceSourcePtr streaming = open_trace(v2_);
  auto* mmap = dynamic_cast<MmapTrace*>(streaming.get());
  ASSERT_NE(mmap, nullptr);
  // 300 records is far below the 8 MiB auto threshold: direct mode.
  EXPECT_FALSE(mmap->pipelined());

  EXPECT_THROW((void)open_trace(temp_path("open_dispatch_missing.lpm2")),
               util::IoError);
  const std::string junk = temp_path("open_dispatch_junk.bin");
  const unsigned char garbage[] = {'J', 'U', 'N', 'K', 0, 0, 0, 0};
  write_file(junk, garbage, sizeof(garbage));
  EXPECT_THROW((void)open_trace(junk), util::IoError);
  std::remove(junk.c_str());
}

TEST_F(OpenTraceDispatch, ExplicitOptionsBeatTheAutoThreshold) {
  OpenTraceOptions on;
  on.pipeline = OpenTraceOptions::Pipeline::kOn;
  const TraceSourcePtr forced = open_trace(v2_, "", on);
  auto* forced_mmap = dynamic_cast<MmapTrace*>(forced.get());
  ASSERT_NE(forced_mmap, nullptr);
  EXPECT_TRUE(forced_mmap->pipelined());

  // A one-byte threshold makes auto mode pick the pipeline for any file.
  OpenTraceOptions tiny;
  tiny.pipeline_threshold_bytes = 1;
  const TraceSourcePtr autod = open_trace(v2_, "", tiny);
  auto* autod_mmap = dynamic_cast<MmapTrace*>(autod.get());
  ASSERT_NE(autod_mmap, nullptr);
  EXPECT_TRUE(autod_mmap->pipelined());
}

TEST_F(OpenTraceDispatch, EnvKnobsSteerTheAutoMode) {
  {
    ScopedEnv env("LPM_TRACE_PIPELINE", "on");
    const TraceSourcePtr t = open_trace(v2_);
    auto* mmap = dynamic_cast<MmapTrace*>(t.get());
    ASSERT_NE(mmap, nullptr);
    EXPECT_TRUE(mmap->pipelined());
  }
  {
    ScopedEnv env("LPM_TRACE_PIPELINE", "off");
    ScopedEnv thr("LPM_TRACE_PIPELINE_THRESHOLD", "1");  // would auto-engage
    const TraceSourcePtr t = open_trace(v2_);
    auto* mmap = dynamic_cast<MmapTrace*>(t.get());
    ASSERT_NE(mmap, nullptr);
    EXPECT_FALSE(mmap->pipelined());
  }
  {
    ScopedEnv env("LPM_TRACE_PIPELINE_THRESHOLD", "1");
    const TraceSourcePtr t = open_trace(v2_);
    auto* mmap = dynamic_cast<MmapTrace*>(t.get());
    ASSERT_NE(mmap, nullptr);
    EXPECT_TRUE(mmap->pipelined());
  }
  {
    // Malformed knobs warn and fall back instead of throwing or misreading.
    ScopedEnv env("LPM_TRACE_PIPELINE", "sideways");
    ScopedEnv chunk("LPM_TRACE_CHUNK_OPS", "not-a-number");
    const TraceSourcePtr t = open_trace(v2_);
    ASSERT_NE(t, nullptr);
    std::vector<MicroOp> got;
    MicroOp op;
    while (t->next(op)) got.push_back(op);
    EXPECT_EQ(got.size(), 300u);
  }
}

// --- materialize(): the fill() contract is enforced, not trusted ------------

/// Claims more ops than were requested — the "scribbled past the buffer"
/// bug materialize() must refuse to propagate. (It writes only the legal
/// region; the lie is in the return value.)
class OverReportingSource final : public TraceSource {
 public:
  bool next(MicroOp&) override { return false; }
  std::size_t fill(MicroOp* dst, std::size_t n) override {
    for (std::size_t i = 0; i < n; ++i) dst[i] = MicroOp{};
    return n + 1;
  }
  void reset() override {}
  [[nodiscard]] std::string name() const override { return "over-reporter"; }
};

/// Returns one op per call forever — a short count that never reaches zero.
/// Under the fill() contract a short count means EOF, so materialize() must
/// stop after the first one instead of spinning on the source.
class DribblingSource final : public TraceSource {
 public:
  bool next(MicroOp& op) override {
    op = MicroOp{};
    return true;
  }
  std::size_t fill(MicroOp* dst, std::size_t n) override {
    ++calls_;
    if (n == 0) return 0;
    dst[0] = MicroOp{};
    return 1;
  }
  void reset() override {}
  [[nodiscard]] std::string name() const override { return "dribbler"; }
  [[nodiscard]] std::size_t calls() const { return calls_; }

 private:
  std::size_t calls_ = 0;
};

TEST(Materialize, OverReportingSourceThrowsSimError) {
  OverReportingSource src;
  EXPECT_THROW((void)materialize(src, 64), util::SimError);
}

TEST(Materialize, ShortReturningSourceTerminatesAfterOneCall) {
  DribblingSource src;
  const std::vector<MicroOp> ops = materialize(src, 1000);
  EXPECT_EQ(ops.size(), 1u);
  EXPECT_EQ(src.calls(), 1u);
}

TEST(Materialize, ExhaustedSourceYieldsEmpty) {
  const std::vector<MicroOp> empty_ops;
  VectorTrace src("empty", empty_ops);
  EXPECT_TRUE(materialize(src, 100).empty());
}

// --- file-backed profiles + fingerprint identity ----------------------------

TEST(FileBackedProfile, ProbesTheHeaderAndValidates) {
  const std::string path = temp_path("profile_probe.lpm2");
  SyntheticTrace gen(spec_profile(SpecBenchmark::kSoplex, 400, 21));
  const std::uint64_t recorded = record_trace_v2(gen, path);

  const WorkloadProfile wl = trace_file_profile(path);
  EXPECT_TRUE(wl.file_backed());
  EXPECT_EQ(wl.trace_path, path);
  EXPECT_EQ(wl.trace_checksum, recorded);
  EXPECT_EQ(wl.length, 400u);
  EXPECT_EQ(wl.name, "profile_probe.lpm2");  // basename default
  wl.validate();

  // A file-backed profile cannot drive the synthetic generator.
  EXPECT_THROW(SyntheticTrace reject(wl), util::ConfigError);
  std::remove(path.c_str());
}

TEST(FileBackedProfile, FingerprintKeysOnContentNotPath) {
  // The same stream recorded at two paths — and in the two formats — must
  // fingerprint identically (memo caches key on what the bytes replay, not
  // where they sit); a different stream must not.
  const std::string a = temp_path("fp_a.lpm2");
  const std::string b = temp_path("fp_b.lpmt");
  const std::string c = temp_path("fp_c.lpm2");
  const auto profile = spec_profile(SpecBenchmark::kLeslie3d, 600, 13);
  {
    SyntheticTrace gen(profile);
    record_trace_v2(gen, a);
  }
  {
    SyntheticTrace gen(profile);
    record_trace(gen, b);  // v1 resident format, same stream
  }
  {
    SyntheticTrace gen(spec_profile(SpecBenchmark::kLeslie3d, 600, 14));
    record_trace_v2(gen, c);
  }
  const std::uint64_t fa = util::fingerprint(trace_file_profile(a, "same"));
  const std::uint64_t fb = util::fingerprint(trace_file_profile(b, "same"));
  const std::uint64_t fc = util::fingerprint(trace_file_profile(c, "same"));
  EXPECT_EQ(fa, fb);
  EXPECT_NE(fa, fc);
  std::remove(a.c_str());
  std::remove(b.c_str());
  std::remove(c.c_str());
}

TEST(FileBackedProfile, MakeTraceReplaysAndGuardsAgainstFileChanges) {
  const std::string path = temp_path("make_trace_guard.lpm2");
  const auto profile = spec_profile(SpecBenchmark::kMilc, 500, 3);
  std::vector<MicroOp> expected;
  {
    SyntheticTrace gen(profile);
    MicroOp op;
    while (gen.next(op)) expected.push_back(op);
  }
  {
    SyntheticTrace gen(profile);
    record_trace_v2(gen, path);
  }
  const WorkloadProfile wl = trace_file_profile(path);

  const TraceSourcePtr replay = make_trace(wl);
  EXPECT_EQ(materialize(*replay, expected.size() + 1), expected);

  // Overwrite the file with a different recording: the profile's checksum
  // no longer matches what is on disk, so make_trace must refuse — this is
  // the guard that keeps checksum-keyed memo caches honest.
  SyntheticTrace other(spec_profile(SpecBenchmark::kMilc, 500, 4));
  record_trace_v2(other, path);
  EXPECT_THROW((void)make_trace(wl), util::IoError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lpm::trace
