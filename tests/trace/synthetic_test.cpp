#include "trace/synthetic.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"

namespace lpm::trace {
namespace {

WorkloadProfile small_profile() {
  WorkloadProfile p;
  p.name = "test";
  p.fmem = 0.4;
  p.working_set_bytes = 64 * 1024;
  p.length = 20000;
  p.seed = 5;
  return p;
}

TEST(SyntheticTrace, EmitsExactlyLengthOps) {
  SyntheticTrace t(small_profile());
  MicroOp op;
  std::uint64_t n = 0;
  while (t.next(op)) ++n;
  EXPECT_EQ(n, small_profile().length);
  EXPECT_FALSE(t.next(op));  // stays exhausted
}

TEST(SyntheticTrace, ResetReplaysIdenticalStream) {
  SyntheticTrace t(small_profile());
  std::vector<MicroOp> first;
  MicroOp op;
  while (t.next(op)) first.push_back(op);
  t.reset();
  std::size_t i = 0;
  while (t.next(op)) {
    ASSERT_LT(i, first.size());
    EXPECT_EQ(op.type, first[i].type);
    EXPECT_EQ(op.addr, first[i].addr);
    EXPECT_EQ(op.dep_dist, first[i].dep_dist);
    EXPECT_EQ(op.dep_dist2, first[i].dep_dist2);
    ++i;
  }
  EXPECT_EQ(i, first.size());
}

TEST(SyntheticTrace, FmemMatchesProfile) {
  auto p = small_profile();
  p.fmem = 0.35;
  p.length = 50000;
  SyntheticTrace t(p);
  MicroOp op;
  std::uint64_t mem = 0;
  std::uint64_t total = 0;
  while (t.next(op)) {
    ++total;
    if (is_memory(op.type)) ++mem;
  }
  EXPECT_NEAR(static_cast<double>(mem) / total, 0.35, 0.01);
}

TEST(SyntheticTrace, StoreFractionRespected) {
  auto p = small_profile();
  p.store_fraction = 0.25;
  p.length = 50000;
  SyntheticTrace t(p);
  MicroOp op;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  while (t.next(op)) {
    if (op.type == OpType::kLoad) ++loads;
    if (op.type == OpType::kStore) ++stores;
  }
  EXPECT_NEAR(static_cast<double>(stores) / (loads + stores), 0.25, 0.02);
}

TEST(SyntheticTrace, AddressesStayInWorkingSet) {
  auto p = small_profile();
  p.working_set_bytes = 4096;
  SyntheticTrace t(p);
  MicroOp op;
  while (t.next(op)) {
    if (is_memory(op.type)) {
      EXPECT_LT(op.addr, p.working_set_bytes);
    }
  }
}

TEST(SyntheticTrace, PointerChaseCreatesLoadDeps) {
  auto p = small_profile();
  p.pointer_chase_fraction = 1.0;
  p.seq_fraction = 0.0;
  p.store_fraction = 0.0;
  p.length = 5000;
  SyntheticTrace t(p);
  MicroOp op;
  std::uint64_t idx = 0;
  std::uint64_t last_load = ~std::uint64_t{0};
  std::uint64_t chained = 0;
  std::uint64_t loads_after_first = 0;
  while (t.next(op)) {
    if (op.type == OpType::kLoad) {
      if (last_load != ~std::uint64_t{0}) {
        ++loads_after_first;
        if (op.dep_dist == idx - last_load) ++chained;
      }
      last_load = idx;
    }
    ++idx;
  }
  EXPECT_GT(loads_after_first, 0u);
  EXPECT_EQ(chained, loads_after_first);  // every load chains to the previous
}

TEST(SyntheticTrace, NoPointerChaseMeansIndependentLoads) {
  auto p = small_profile();
  p.pointer_chase_fraction = 0.0;
  p.load_use_fraction = 0.0;
  SyntheticTrace t(p);
  MicroOp op;
  while (t.next(op)) {
    if (op.type == OpType::kLoad) EXPECT_EQ(op.dep_dist, 0u);
  }
}

TEST(SyntheticTrace, SequentialStreamsAdvanceByStride) {
  auto p = small_profile();
  p.seq_fraction = 1.0;
  p.num_streams = 1;
  p.stride_bytes = 64;
  p.fmem = 1.0;
  p.store_fraction = 0.0;
  p.length = 100;
  SyntheticTrace t(p);
  MicroOp op;
  Addr prev = 0;
  bool first = true;
  while (t.next(op)) {
    if (!first) {
      const Addr expect = (prev + 64) % p.working_set_bytes;
      EXPECT_EQ(op.addr, expect);
    }
    prev = op.addr;
    first = false;
  }
}

TEST(SyntheticTrace, BurstPhaseGroundTruthIsDeterministic) {
  auto p = small_profile();
  p.phase_length = 100;
  p.burst_duty = 0.4;
  int bursts = 0;
  for (std::uint64_t ph = 0; ph < 200; ++ph) {
    const bool a = SyntheticTrace::is_burst_phase(p, ph);
    const bool b = SyntheticTrace::is_burst_phase(p, ph);
    EXPECT_EQ(a, b);
    if (a) ++bursts;
  }
  EXPECT_NEAR(bursts / 200.0, 0.4, 0.12);
}

TEST(SyntheticTrace, NoPhasesMeansNoBursts) {
  auto p = small_profile();
  p.phase_length = 0;
  EXPECT_FALSE(SyntheticTrace::is_burst_phase(p, 0));
  EXPECT_FALSE(SyntheticTrace::is_burst_phase(p, 5));
}

TEST(SyntheticTrace, BurstPhasesAreMoreMemoryIntense) {
  auto p = small_profile();
  p.fmem = 0.1;
  p.phase_length = 500;
  p.burst_duty = 0.5;
  p.burst_fmem = 0.9;
  p.length = 100000;
  SyntheticTrace t(p);
  MicroOp op;
  std::uint64_t idx = 0;
  std::uint64_t burst_mem = 0, burst_total = 0, calm_mem = 0, calm_total = 0;
  while (t.next(op)) {
    const bool burst = SyntheticTrace::is_burst_phase(p, idx / p.phase_length);
    if (burst) {
      ++burst_total;
      if (is_memory(op.type)) ++burst_mem;
    } else {
      ++calm_total;
      if (is_memory(op.type)) ++calm_mem;
    }
    ++idx;
  }
  ASSERT_GT(burst_total, 0u);
  ASSERT_GT(calm_total, 0u);
  EXPECT_GT(static_cast<double>(burst_mem) / burst_total, 0.8);
  EXPECT_LT(static_cast<double>(calm_mem) / calm_total, 0.2);
}

TEST(WorkloadProfile, ValidationCatchesBadFields) {
  auto p = small_profile();
  p.fmem = 1.5;
  EXPECT_THROW(p.validate(), util::LpmError);
  p = small_profile();
  p.working_set_bytes = 8;
  EXPECT_THROW(p.validate(), util::LpmError);
  p = small_profile();
  p.num_streams = 0;
  EXPECT_THROW(p.validate(), util::LpmError);
  p = small_profile();
  p.length = 0;
  EXPECT_THROW(p.validate(), util::LpmError);
  p = small_profile();
  p.zipf_skew = -0.1;
  EXPECT_THROW(p.validate(), util::LpmError);
}

TEST(VectorTrace, ReplaysAndResets) {
  std::vector<MicroOp> ops(3);
  ops[0].type = OpType::kAlu;
  ops[1].type = OpType::kLoad;
  ops[1].addr = 64;
  ops[2].type = OpType::kStore;
  VectorTrace t("vec", ops);
  MicroOp op;
  EXPECT_TRUE(t.next(op));
  EXPECT_EQ(op.type, OpType::kAlu);
  EXPECT_TRUE(t.next(op));
  EXPECT_EQ(op.addr, 64u);
  EXPECT_TRUE(t.next(op));
  EXPECT_FALSE(t.next(op));
  t.reset();
  EXPECT_TRUE(t.next(op));
  EXPECT_EQ(t.name(), "vec");
}

}  // namespace
}  // namespace lpm::trace
