#include "trace/trace_file.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "trace/spec_like.hpp"
#include "trace/synthetic.hpp"
#include "util/error.hpp"

namespace lpm::trace {
namespace {

std::string temp_path(const std::string& tag) {
  return testing::TempDir() + "/lpm_trace_" + tag + ".bin";
}

TEST(TraceFile, RoundTripPreservesEveryField) {
  const auto path = temp_path("roundtrip");
  auto profile = spec_profile(SpecBenchmark::kMcf, 2000, 3);
  SyntheticTrace src(profile);
  const std::uint64_t written = record_trace(src, path);
  EXPECT_EQ(written, 2000u);

  src.reset();
  const auto loaded = load_trace(path);
  ASSERT_EQ(loaded.size(), 2000u);
  MicroOp op;
  std::size_t i = 0;
  while (src.next(op)) {
    ASSERT_LT(i, loaded.size());
    EXPECT_EQ(loaded[i].type, op.type);
    EXPECT_EQ(loaded[i].addr, op.addr);
    EXPECT_EQ(loaded[i].dep_dist, op.dep_dist);
    EXPECT_EQ(loaded[i].dep_dist2, op.dep_dist2);
    EXPECT_EQ(loaded[i].exec_latency, op.exec_latency);
    ++i;
  }
  std::remove(path.c_str());
}

TEST(TraceFile, FileTraceReplaysAndResets) {
  const auto path = temp_path("filetrace");
  auto profile = spec_profile(SpecBenchmark::kHmmer, 500, 9);
  SyntheticTrace src(profile);
  record_trace(src, path);

  FileTrace ft(path, "hmmer-file");
  EXPECT_EQ(ft.size(), 500u);
  EXPECT_EQ(ft.name(), "hmmer-file");
  MicroOp op;
  std::uint64_t n = 0;
  while (ft.next(op)) ++n;
  EXPECT_EQ(n, 500u);
  ft.reset();
  EXPECT_TRUE(ft.next(op));
  std::remove(path.c_str());
}

TEST(TraceFile, MissingFileThrows) {
  EXPECT_THROW(load_trace("/nonexistent/trace.bin"), util::LpmError);
}

TEST(TraceFile, BadMagicThrows) {
  const auto path = temp_path("badmagic");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOPE garbage";
  }
  EXPECT_THROW(load_trace(path), util::LpmError);
  std::remove(path.c_str());
}

TEST(TraceFile, TruncatedFileThrows) {
  const auto path = temp_path("trunc");
  auto profile = spec_profile(SpecBenchmark::kSjeng, 100, 1);
  SyntheticTrace src(profile);
  record_trace(src, path);
  // Chop off the tail.
  {
    std::ifstream in(path, std::ios::binary);
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size() / 2));
  }
  EXPECT_THROW(load_trace(path), util::LpmError);
  std::remove(path.c_str());
}

TEST(TraceFile, CorruptCountFailsTypedBeforeAllocation) {
  const auto path = temp_path("bigcount");
  auto profile = spec_profile(SpecBenchmark::kGcc, 10, 1);
  SyntheticTrace src(profile);
  record_trace(src, path);
  // Overwrite the u64 count at offset 8 with a ludicrous value. The loader
  // must compare it against the bytes actually present and throw a typed
  // IoError — not reserve() petabytes and die on allocation.
  {
    std::fstream out(path, std::ios::binary | std::ios::in | std::ios::out);
    out.seekp(8);
    const unsigned char huge[8] = {0xff, 0xff, 0xff, 0xff,
                                   0xff, 0xff, 0xff, 0x7f};
    out.write(reinterpret_cast<const char*>(huge), sizeof(huge));
  }
  EXPECT_THROW(load_trace(path), util::IoError);
  std::remove(path.c_str());
}

TEST(TraceFile, EmptyTraceIsValid) {
  const auto path = temp_path("empty");
  VectorTrace empty("none", {});
  EXPECT_EQ(record_trace(empty, path), 0u);
  EXPECT_TRUE(load_trace(path).empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lpm::trace
