// Fidelity-report driver for CI and local calibration: runs the analytic
// backends ("rdh", "fa") against the cycle simulator over the 16 SPEC
// analogue profiles and an L1-size sweep, prints the per-profile error
// table, and writes the full report as JSON (the CI artifact).
//
//   $ ./lpm_fidelity_report [out=fidelity.json] [trace_len=20000] [seed=1]
//
// Exit status: 0 = report produced, 2 = usage/config error. The driver
// itself enforces no error bound — tests/check/fidelity_test.cpp pins the
// committed bounds; this tool is for measuring, not gating.
#include <cstdio>
#include <fstream>

#include "check/fidelity.hpp"
#include "util/config.hpp"
#include "util/error.hpp"

int main(int argc, char** argv) {
  using namespace lpm;
  try {
    const auto args = util::KvConfig::from_args(argc, argv);
    check::FidelityConfig cfg;
    cfg.trace_length = args.get_uint_or("trace_len", cfg.trace_length);
    cfg.seed = args.get_uint_or("seed", cfg.seed);
    const std::string out = args.get_or("out", "");

    const check::FidelityReport report = check::run_fidelity_harness(cfg);

    std::printf("%s\n", report.table().c_str());
    std::printf(
        "MR1 rel error:     p50=%.4f p90=%.4f worst=%.4f\n"
        "C-AMAT1 rel error: p50=%.4f p90=%.4f worst=%.4f\n",
        report.p50_mr1_rel_error, report.p90_mr1_rel_error,
        report.worst_mr1_rel_error, report.p50_camat1_rel_error,
        report.p90_camat1_rel_error, report.worst_camat1_rel_error);

    if (!out.empty()) {
      std::ofstream os(out);
      util::require(os.good(), "cannot open output file: " + out);
      os << report.to_json();
      std::printf("wrote %s\n", out.c_str());
    }
    return 0;
  } catch (const util::LpmError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
