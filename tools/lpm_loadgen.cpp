// lpm_loadgen — soak/chaos harness for lpmd.
//
//   $ ./lpm_loadgen spawn=./tools/lpmd socket=/tmp/lpmd-soak.sock
//       journal=/tmp/lpmd-soak.journal clients=8 jobs=2000
//       kill_after=600 kills=1 fault_spec="throw@5,io@40"
//       job_timeout_ms=2000 length=4000 [metrics=soak-metrics.json]
//   $ ./lpm_loadgen spawn=./tools/lpmd shards=2 port_base=17870 ...
//   (one command line each; wrapped here for width)
//
// Spawns the server (fault injection via $LPM_FAULT_SPEC in its
// environment), hammers it with `jobs` mixed jobs (simulate at several
// fidelities and machine shapes, sweeps, optionally walks) from `clients`
// concurrent client threads, SIGKILLs the server after `kill_after`
// terminal results and restarts it on the same journal (`kills` times),
// then verifies the exactly-once contract:
//
// With `shards=N` (N > 0) the harness instead builds a full TCP shard
// topology: N backend lpmd processes on ports port_base..port_base+N-1
// (journal `<journal>.<i>`, metrics snapshot `<metrics base>.shard<i>`),
// one router on port_base+N, and every client speaks TCP to the router.
// The chaos controller SIGKILLs *shards* round-robin and restarts each on
// its own journal; the invariants checked are identical — sharding must
// not weaken exactly-once.
//
//   * every job reached EXACTLY one terminal frame (done or error) —
//     zero lost;
//   * no job's terminal frame was delivered twice — zero duplicated;
//   * refusals were typed protocol responses (retry_after / overload), all
//     of which were eventually resolved by resubmission.
//
// Clients never give up on a job: a dead connection triggers reconnect +
// attach for submitted-but-unresolved ids and resubmit for unacked ones
// (an `unknown_job` error downgrades an attach to a resubmit — the server
// died before journaling the accept, which the protocol treats as "never
// happened"; the ack is the client's durability receipt).
//
// Exit status: 0 = all invariants held, 1 = invariant violation (lost or
// duplicated results), 2 = usage error, 3 = harness failure (server
// unreachable/unspawnable).
#include <sys/types.h>
#include <sys/wait.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "srv/client.hpp"
#include "srv/server.hpp"
#include "util/config.hpp"
#include "util/error.hpp"

namespace {

using namespace lpm;
using Clock = std::chrono::steady_clock;

struct HarnessConfig {
  std::string spawn;  ///< path to the lpmd binary ("" = external server)
  std::string socket = "/tmp/lpmd-soak.sock";
  std::string journal = "/tmp/lpmd-soak.journal";
  std::string fault_spec;
  std::string metrics;  ///< $LPM_METRICS for the server (exit snapshot)
  unsigned clients = 8;
  std::size_t jobs = 2000;
  std::size_t kill_after = 0;  ///< terminal results before the first SIGKILL
  unsigned kills = 1;
  std::uint64_t length = 4000;
  std::uint64_t job_timeout_ms = 2000;
  unsigned workers = 4;
  std::size_t queue_max = 512;
  std::size_t per_client_max = 24;
  std::size_t degrade_watermark = 64;
  std::size_t walk_every = 0;  ///< every Nth job is a walk (0 = none)
  std::uint64_t budget_ms = 600'000;  ///< whole-run wall budget
  unsigned shards = 0;  ///< 0 = single server on `socket`; N = TCP topology
  std::uint16_t port_base = 17'870;
};

/// "soak.json" + ".shard0" -> "soak.shard0.json" (tag lands before the
/// extension so artifact globs keep matching).
std::string metrics_with_tag(const std::string& path, const std::string& tag) {
  if (path.empty()) return path;
  const std::size_t dot = path.rfind('.');
  if (dot == std::string::npos || path.find('/', dot) != std::string::npos) {
    return path + tag;
  }
  return path.substr(0, dot) + tag + path.substr(dot);
}

/// Per-job bookkeeping on the client side.
enum class JobState { kUnsubmitted, kSubmitted, kAcked, kTerminal };

struct JobSlot {
  std::string id;
  srv::JobSpec spec;
  JobState state = JobState::kUnsubmitted;
  int terminal_frames = 0;  ///< must end at exactly 1
  bool degraded = false;
  bool failed = false;
  Clock::time_point not_before = Clock::time_point::min();  ///< backoff gate
};

/// The mixed-job catalogue: deterministic per global job index so reruns
/// produce the same load shape.
srv::JobSpec make_spec(const HarnessConfig& cfg, std::size_t index) {
  static const char* kWorkloads[] = {"403.gcc",   "401.bzip2", "429.mcf",
                                     "410.bwaves", "456.hmmer", "462.libquantum",
                                     "444.namd",  "450.soplex"};
  srv::JobSpec spec;
  spec.workload = kWorkloads[index % (sizeof(kWorkloads) / sizeof(char*))];
  spec.length = cfg.length;
  spec.seed = 1 + index % 3;
  spec.calibrate = index % 2 == 0;
  if (cfg.walk_every != 0 && index % cfg.walk_every == cfg.walk_every - 1) {
    spec.kind = "walk";
    spec.length = std::min<std::uint64_t>(cfg.length, 2000);
    return spec;
  }
  if (index % 7 == 3) {
    spec.kind = "sweep";
    spec.sweep_knob = "l1_kb";
    spec.sweep_values = "16,32,64";
  } else {
    spec.kind = "simulate";
    // A few explicit analytic jobs ride along with the cycle majority, so
    // fidelity tagging is exercised from both directions.
    if (index % 11 == 5) spec.backend = "rdh";
    if (index % 13 == 7) spec.backend = "fa";
    spec.l1_kb = (index % 3 == 0) ? 16 : 0;
    spec.mshr = (index % 5 == 0) ? 8 : 0;
  }
  return spec;
}

/// What one spawned lpmd process serves: a shard (endpoint + journal) or,
/// with `shards_csv` set, the router in front of them.
struct ProcSpec {
  std::string endpoint;
  std::string journal;  ///< empty for the router (it holds no state)
  std::string metrics;  ///< $LPM_METRICS exit-snapshot path
  std::string shards_csv;  ///< non-empty = run as router over these
};

/// Owns one spawned lpmd process: start, SIGKILL, restart, clean stop.
class ServerProcess {
 public:
  ServerProcess(const HarnessConfig& cfg, ProcSpec spec)
      : cfg_(cfg), spec_(std::move(spec)) {}

  void start() {
    if (cfg_.spawn.empty()) return;
    pid_ = ::fork();
    if (pid_ < 0) throw util::IoError("loadgen: fork failed");
    if (pid_ == 0) {
      ::setenv("LPMD_ENDPOINT", spec_.endpoint.c_str(), 1);
      ::setenv("LPMD_JOURNAL", spec_.journal.c_str(), 1);
      ::setenv("LPMD_WORKERS", std::to_string(cfg_.workers).c_str(), 1);
      ::setenv("LPMD_QUEUE_MAX", std::to_string(cfg_.queue_max).c_str(), 1);
      ::setenv("LPMD_PER_CLIENT_MAX",
               std::to_string(cfg_.per_client_max).c_str(), 1);
      ::setenv("LPMD_DEGRADE_WATERMARK",
               std::to_string(cfg_.degrade_watermark).c_str(), 1);
      ::setenv("LPMD_JOB_TIMEOUT_MS",
               std::to_string(cfg_.job_timeout_ms).c_str(), 1);
      if (!cfg_.fault_spec.empty() && spec_.shards_csv.empty()) {
        ::setenv("LPM_FAULT_SPEC", cfg_.fault_spec.c_str(), 1);
      }
      if (!spec_.metrics.empty()) {
        ::setenv("LPM_METRICS", spec_.metrics.c_str(), 1);
      }
      if (spec_.shards_csv.empty()) {
        ::execl(cfg_.spawn.c_str(), cfg_.spawn.c_str(),
                static_cast<char*>(nullptr));
      } else {
        const std::string arg = "shards=" + spec_.shards_csv;
        ::execl(cfg_.spawn.c_str(), cfg_.spawn.c_str(), arg.c_str(),
                static_cast<char*>(nullptr));
      }
      std::fprintf(stderr, "loadgen: execl(%s): %s\n", cfg_.spawn.c_str(),
                   std::strerror(errno));
      ::_exit(127);
    }
  }

  /// SIGKILL — no warning, no cleanup; exactly the crash the journal must
  /// survive.
  void kill_hard() {
    if (pid_ <= 0) return;
    ::kill(pid_, SIGKILL);
    int status = 0;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
  }

  /// Asks this incarnation to stop via the protocol (so its atexit metrics
  /// snapshot is written) and reaps it. Through a router the shutdown is
  /// broadcast, so calling this on the router stops the shards too.
  void shutdown_clean() {
    if (pid_ <= 0) return;
    try {
      srv::Client control(spec_.endpoint, "loadgen-control");
      control.connect(3'000);
      control.request_shutdown();
      (void)control.poll(2'000);
    } catch (const util::LpmError&) {
      ::kill(pid_, SIGTERM);
    }
    int status = 0;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
  }

  /// Waits (bounded) for a process someone else asked to stop — the shards
  /// after a router-broadcast shutdown. SIGTERM fallback on expiry.
  void reap(std::uint64_t budget_ms) {
    if (pid_ <= 0) return;
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(budget_ms);
    int status = 0;
    while (Clock::now() < deadline) {
      if (::waitpid(pid_, &status, WNOHANG) == pid_) {
        pid_ = -1;
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ::kill(pid_, SIGTERM);
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
  }

  [[nodiscard]] bool managed() const { return !cfg_.spawn.empty(); }
  [[nodiscard]] const ProcSpec& spec() const { return spec_; }

 private:
  const HarnessConfig& cfg_;
  ProcSpec spec_;
  pid_t pid_ = -1;
};

struct ClientStats {
  std::size_t retry_after = 0;
  std::size_t overload = 0;
  std::size_t degraded = 0;
  std::size_t failed = 0;
  std::size_t reconnects = 0;
  std::size_t duplicates = 0;
};

std::atomic<std::size_t> g_terminal_total{0};
std::atomic<bool> g_abort{false};

/// One client thread: owns jobs [first, first+count), drives them all to
/// terminal state through every fault the harness throws at the server.
void client_main(const HarnessConfig& cfg, std::string endpoint,
                 unsigned client_index, std::size_t first, std::size_t count,
                 ClientStats* stats) {
  std::string name = "c";
  name += std::to_string(client_index);
  std::vector<JobSlot> slots(count);
  for (std::size_t i = 0; i < count; ++i) {
    slots[i].id = "j";
    slots[i].id += std::to_string(first + i);
    slots[i].spec = make_spec(cfg, first + i);
  }

  srv::Client client(std::move(endpoint), name);
  const auto deadline = Clock::now() + std::chrono::milliseconds(cfg.budget_ms);
  // In-flight window below the server's per-client cap so steady-state
  // traffic flows; retry_after still fires during restarts when the
  // recovered backlog eats the budget.
  const std::size_t window = cfg.per_client_max > 4 ? cfg.per_client_max - 4
                                                    : cfg.per_client_max;

  auto find_slot = [&](const std::string& id) -> JobSlot* {
    for (JobSlot& s : slots) {
      if (s.id == id) return &s;
    }
    return nullptr;
  };

  std::size_t terminal = 0;
  bool just_connected = false;
  while (terminal < count && Clock::now() < deadline &&
         !g_abort.load(std::memory_order_relaxed)) {
    if (!client.connected()) {
      try {
        client.connect(30'000);
      } catch (const util::IoError&) {
        g_abort.store(true);
        return;
      }
      ++stats->reconnects;
      just_connected = true;
    }
    if (just_connected) {
      // Reconcile: ask about everything in flight. Unacked submissions are
      // resubmitted outright (no ack = no durability receipt); acked ones
      // are attached (the server owes us their frames).
      just_connected = false;
      for (JobSlot& s : slots) {
        if (s.state == JobState::kAcked) {
          if (!client.attach(s.id)) break;
        } else if (s.state == JobState::kSubmitted) {
          s.state = JobState::kUnsubmitted;
          s.not_before = Clock::time_point::min();
        }
      }
      if (!client.connected()) continue;
    }

    // Top up the submission window.
    std::size_t in_flight = 0;
    for (const JobSlot& s : slots) {
      if (s.state == JobState::kSubmitted || s.state == JobState::kAcked) {
        ++in_flight;
      }
    }
    const Clock::time_point now = Clock::now();
    for (JobSlot& s : slots) {
      if (in_flight >= window) break;
      if (s.state != JobState::kUnsubmitted || now < s.not_before) continue;
      if (!client.submit(s.id, s.spec)) break;
      s.state = JobState::kSubmitted;
      ++in_flight;
    }
    if (!client.connected()) continue;

    const auto frame = client.poll(200);
    if (!frame) continue;
    const std::string op = frame->get_string("op").value_or("");
    const std::string id = frame->get_string("id").value_or("");
    JobSlot* slot = find_slot(id);
    if (slot == nullptr) continue;

    if (op == "ack") {
      if (slot->state == JobState::kSubmitted) slot->state = JobState::kAcked;
      continue;
    }
    if (op == "retry_after") {
      ++stats->retry_after;
      slot->state = JobState::kUnsubmitted;
      slot->not_before =
          Clock::now() + std::chrono::milliseconds(static_cast<std::int64_t>(
                             frame->get_number("retry_after_ms").value_or(200)));
      continue;
    }
    if (op == "point") {
      if (frame->get_bool("degraded").value_or(false)) slot->degraded = true;
      continue;
    }
    if (op == "error") {
      const std::string code = frame->get_string("code").value_or("");
      if (code == "overload") {
        ++stats->overload;
        slot->state = JobState::kUnsubmitted;
        slot->not_before =
            Clock::now() +
            std::chrono::milliseconds(static_cast<std::int64_t>(
                frame->get_number("retry_after_ms").value_or(200)));
        continue;
      }
      if (code == "unknown_job") {
        // The accept never became durable; resubmit from scratch.
        slot->state = JobState::kUnsubmitted;
        slot->not_before = Clock::time_point::min();
        continue;
      }
      // Typed job failure (sim/io/timeout/...): a valid terminal outcome.
      slot->failed = true;
      ++stats->failed;
    }
    if (op == "done" || op == "error") {
      ++slot->terminal_frames;
      if (slot->terminal_frames > 1) {
        ++stats->duplicates;
        continue;  // counted once already
      }
      if (frame->get_bool("degraded").value_or(false) || slot->degraded) {
        slot->degraded = true;
        ++stats->degraded;
      }
      slot->state = JobState::kTerminal;
      ++terminal;
      g_terminal_total.fetch_add(1, std::memory_order_relaxed);
    }
  }

  if (terminal < count) g_abort.store(true);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const auto args = util::KvConfig::from_args(argc, argv);
    HarnessConfig cfg;
    cfg.spawn = args.get_or("spawn", cfg.spawn);
    cfg.socket = args.get_or("socket", cfg.socket);
    cfg.journal = args.get_or("journal", cfg.journal);
    cfg.fault_spec = args.get_or("fault_spec", cfg.fault_spec);
    cfg.metrics = args.get_or("metrics", cfg.metrics);
    cfg.clients = static_cast<unsigned>(args.get_uint_or("clients", cfg.clients));
    cfg.jobs = args.get_uint_or("jobs", cfg.jobs);
    cfg.kill_after = args.get_uint_or("kill_after", cfg.kill_after);
    cfg.kills = static_cast<unsigned>(args.get_uint_or("kills", cfg.kills));
    cfg.length = args.get_uint_or("length", cfg.length);
    cfg.job_timeout_ms = args.get_uint_or("job_timeout_ms", cfg.job_timeout_ms);
    cfg.workers = static_cast<unsigned>(args.get_uint_or("workers", cfg.workers));
    cfg.queue_max = args.get_uint_or("queue_max", cfg.queue_max);
    cfg.per_client_max =
        args.get_uint_or("per_client_max", cfg.per_client_max);
    cfg.degrade_watermark =
        args.get_uint_or("degrade_watermark", cfg.degrade_watermark);
    cfg.walk_every = args.get_uint_or("walk_every", cfg.walk_every);
    cfg.budget_ms = args.get_uint_or("budget_ms", cfg.budget_ms);
    cfg.shards = static_cast<unsigned>(args.get_uint_or("shards", cfg.shards));
    cfg.port_base = static_cast<std::uint16_t>(
        args.get_uint_or("port_base", cfg.port_base));
    util::require(cfg.clients > 0 && cfg.jobs > 0,
                  "loadgen: clients and jobs must be positive");
    util::require(cfg.shards == 0 || !cfg.spawn.empty(),
                  "loadgen: shards= needs spawn= (the harness owns the fleet)");

    const bool fresh = args.get_bool_or("fresh_journal", true);

    // Build the process fleet: either one server on the unix socket, or N
    // TCP shards plus a router (clients then talk to the router only).
    std::vector<std::unique_ptr<ServerProcess>> shard_procs;
    std::unique_ptr<ServerProcess> front;  // what clients dial + clean-stop
    std::string client_endpoint;
    if (cfg.shards == 0) {
      if (fresh) ::unlink(cfg.journal.c_str());
      client_endpoint = cfg.socket;
      front = std::make_unique<ServerProcess>(
          cfg, ProcSpec{cfg.socket, cfg.journal, cfg.metrics, ""});
      front->start();
    } else {
      std::string shards_csv;
      for (unsigned i = 0; i < cfg.shards; ++i) {
        ProcSpec spec;
        spec.endpoint =
            "tcp:127.0.0.1:" + std::to_string(cfg.port_base + i);
        spec.journal = cfg.journal + "." + std::to_string(i);
        spec.metrics =
            metrics_with_tag(cfg.metrics, ".shard" + std::to_string(i));
        if (fresh) ::unlink(spec.journal.c_str());
        if (!shards_csv.empty()) shards_csv += ",";
        shards_csv += spec.endpoint;
        shard_procs.push_back(
            std::make_unique<ServerProcess>(cfg, std::move(spec)));
        shard_procs.back()->start();
      }
      ProcSpec router;
      router.endpoint =
          "tcp:127.0.0.1:" + std::to_string(cfg.port_base + cfg.shards);
      router.metrics = metrics_with_tag(cfg.metrics, ".router");
      router.shards_csv = shards_csv;
      client_endpoint = router.endpoint;
      front = std::make_unique<ServerProcess>(cfg, std::move(router));
      front->start();
    }

    std::printf(
        "loadgen: %zu jobs across %u clients -> %s (shards=%u, faults='%s', "
        "kill_after=%zu x%u)\n",
        cfg.jobs, cfg.clients, client_endpoint.c_str(), cfg.shards,
        cfg.fault_spec.c_str(), cfg.kill_after, cfg.kills);

    std::vector<ClientStats> stats(cfg.clients);
    std::vector<std::thread> threads;
    const std::size_t per_client = (cfg.jobs + cfg.clients - 1) / cfg.clients;
    for (unsigned c = 0; c < cfg.clients; ++c) {
      const std::size_t first = c * per_client;
      if (first >= cfg.jobs) break;
      const std::size_t count = std::min(per_client, cfg.jobs - first);
      threads.emplace_back(client_main, std::cref(cfg), client_endpoint, c,
                           first, count, &stats[c]);
    }

    // Chaos controller: SIGKILL + restart at each kill threshold. With
    // shards, the victims rotate through the backends (the router stays up;
    // its sessions die with the shard and the clients reconcile through it).
    unsigned kills_done = 0;
    while (front->managed() && cfg.kill_after != 0 && kills_done < cfg.kills) {
      if (g_abort.load(std::memory_order_relaxed)) break;
      const std::size_t done = g_terminal_total.load(std::memory_order_relaxed);
      if (done >= cfg.kill_after * (kills_done + 1)) {
        ServerProcess* victim =
            shard_procs.empty()
                ? front.get()
                : shard_procs[kills_done % shard_procs.size()].get();
        std::printf("loadgen: SIGKILL %s at %zu terminal results; restarting\n",
                    victim->spec().endpoint.c_str(), done);
        std::fflush(stdout);
        victim->kill_hard();
        victim->start();
        ++kills_done;
      } else {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    }

    for (std::thread& t : threads) t.join();

    // Aggregate + verdicts.
    ClientStats total;
    for (const ClientStats& s : stats) {
      total.retry_after += s.retry_after;
      total.overload += s.overload;
      total.degraded += s.degraded;
      total.failed += s.failed;
      total.reconnects += s.reconnects;
      total.duplicates += s.duplicates;
    }
    const std::size_t terminal =
        g_terminal_total.load(std::memory_order_relaxed);
    const bool lost = terminal != cfg.jobs;
    const bool aborted = g_abort.load(std::memory_order_relaxed);

    std::printf(
        "loadgen: terminal=%zu/%zu duplicates=%zu retry_after=%zu "
        "overload=%zu degraded=%zu failed=%zu reconnects=%zu kills=%u\n",
        terminal, cfg.jobs, total.duplicates, total.retry_after,
        total.overload, total.degraded, total.failed, total.reconnects,
        kills_done);

    // Clean stop so every process writes its metrics snapshot: through the
    // router the shutdown broadcasts to all shards, which we then reap.
    front->shutdown_clean();
    for (auto& shard : shard_procs) shard->reap(5'000);

    if (aborted || lost || total.duplicates != 0) {
      std::fprintf(stderr,
                   "loadgen: INVARIANT VIOLATION (lost=%s duplicates=%zu "
                   "aborted=%s)\n",
                   lost ? "yes" : "no", total.duplicates,
                   aborted ? "yes" : "no");
      return 1;
    }
    std::printf("loadgen: exactly-once invariants held\n");
    return 0;
  } catch (const util::IoError& e) {
    std::fprintf(stderr, "loadgen: io error: %s\n", e.what());
    return 3;
  } catch (const util::LpmError& e) {
    std::fprintf(stderr, "loadgen: %s\n", e.what());
    return 2;
  }
}
