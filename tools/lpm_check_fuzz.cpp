// Property-fuzz driver for CI and local soak runs: random machines +
// synthetic traces through the differential oracle and the model-identity
// checks (see src/check/fuzz.hpp).
//
//   $ LPM_CHECK_SEED=7 LPM_CHECK_CASES=500 ./lpm_check_fuzz [artifacts=DIR]
//   $ ./lpm_check_fuzz cases=50 seed=123 trace_len=800 artifacts=/tmp/repros
//   $ ./lpm_check_fuzz cases=200 roundtrip=false   # skip the LPM2 round trip
//
// Command-line keys override the LPM_CHECK_* environment knobs. Minimized
// repros for any divergence are written to the artifact directory as
// lpm-repro-<seed>.json (replayable with lpm_replay). Exit status: 0 = all
// cases clean, 1 = at least one failure, 2 = usage error.
#include <cstdio>

#include "check/fuzz.hpp"
#include "util/config.hpp"
#include "util/error.hpp"

int main(int argc, char** argv) {
  using namespace lpm;
  try {
    const auto args = util::KvConfig::from_args(argc, argv);
    check::FuzzConfig cfg = check::FuzzConfig::from_env();
    cfg.seed = args.get_uint_or("seed", cfg.seed);
    cfg.cases = args.get_uint_or("cases", cfg.cases);
    cfg.trace_len = args.get_uint_or("trace_len", cfg.trace_len);
    cfg.artifact_dir = args.get_or("artifacts", cfg.artifact_dir);
    cfg.minimize = args.get_bool_or("minimize", cfg.minimize);
    cfg.check_properties = args.get_bool_or("properties", cfg.check_properties);
    cfg.check_trace_roundtrip =
        args.get_bool_or("roundtrip", cfg.check_trace_roundtrip);

    std::printf("fuzz: %llu case(s) from seed %llu, %llu ops/core%s%s\n",
                static_cast<unsigned long long>(cfg.cases),
                static_cast<unsigned long long>(cfg.seed),
                static_cast<unsigned long long>(cfg.trace_len),
                cfg.artifact_dir.empty() ? "" : ", artifacts -> ",
                cfg.artifact_dir.c_str());

    check::Fuzzer fuzzer(cfg);
    const check::FuzzSummary summary = fuzzer.run();

    for (const auto& f : summary.failures) {
      std::printf("FAIL seed=%llu [%s] %s%s%s\n",
                  static_cast<unsigned long long>(f.case_seed), f.kind.c_str(),
                  f.detail.c_str(),
                  f.replay_path.empty() ? "" : " repro=",
                  f.replay_path.c_str());
    }
    std::printf(
        "fuzz summary: %llu cases, %llu divergences, %llu property failures, "
        "%llu trace-roundtrip failures (%llu simulator pairs)\n",
        static_cast<unsigned long long>(summary.cases_run),
        static_cast<unsigned long long>(summary.divergences),
        static_cast<unsigned long long>(summary.property_failures),
        static_cast<unsigned long long>(summary.roundtrip_failures),
        static_cast<unsigned long long>(summary.simulator_pairs));
    return summary.ok() ? 0 : 1;
  } catch (const util::LpmError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
