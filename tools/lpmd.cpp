// lpmd — the LPM job server daemon.
//
//   $ ./lpmd [socket=/tmp/lpmd.sock] [journal=] [workers=2] [queue_max=256]
//            [per_client_max=32] [degrade_watermark=128] [job_timeout_ms=0]
//
// Configuration layering: defaults < LPMD_* environment < key=value args
// (the env knobs are what CI and the soak harness drive; see
// EXPERIMENTS.md). Runs in the foreground until SIGINT/SIGTERM or a client
// shutdown frame; exit status 0 = clean stop, 2 = config error, 3 = I/O
// error (socket/journal unusable).
//
// Crash recovery is the point: kill -9 this process mid-load and restart
// it on the same journal — accepted-but-unfinished jobs rerun, finished
// jobs answer attach from the journal, and no job is lost or delivered
// twice (tools/lpm_loadgen.cpp asserts exactly that).
#include <atomic>
#include <csignal>
#include <cstdio>

#include "srv/server.hpp"
#include "util/config.hpp"
#include "util/error.hpp"

namespace {

std::atomic<lpm::srv::Server*> g_server{nullptr};

void handle_signal(int) {
  // async-signal-safe: just flag the serve loop down via stop-requested.
  lpm::srv::Server* server = g_server.load();
  if (server != nullptr) server->request_stop();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lpm;
  try {
    const auto args = util::KvConfig::from_args(argc, argv);
    srv::Server::Options opts = srv::Server::Options::from_env();
    opts.socket_path = args.get_or("socket", opts.socket_path);
    opts.journal_path = args.get_or("journal", opts.journal_path);
    opts.workers =
        static_cast<unsigned>(args.get_uint_or("workers", opts.workers));
    opts.queue_max = args.get_uint_or("queue_max", opts.queue_max);
    opts.per_client_max =
        args.get_uint_or("per_client_max", opts.per_client_max);
    opts.degrade_watermark =
        args.get_uint_or("degrade_watermark", opts.degrade_watermark);
    opts.degrade_backend = args.get_or("degrade_backend", opts.degrade_backend);
    opts.job_timeout_ms = args.get_uint_or("job_timeout_ms", opts.job_timeout_ms);
    opts.max_retries =
        static_cast<unsigned>(args.get_uint_or("max_retries", opts.max_retries));
    opts.idle_timeout_ms =
        args.get_uint_or("idle_timeout_ms", opts.idle_timeout_ms);

    srv::Server server(opts);
    g_server.store(&server);
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);

    server.start();
    std::printf("lpmd: listening on %s (workers=%u queue_max=%zu journal=%s)\n",
                opts.socket_path.c_str(), opts.workers, opts.queue_max,
                opts.journal_path.empty() ? "off" : opts.journal_path.c_str());
    std::fflush(stdout);
    server.serve();
    g_server.store(nullptr);
    std::printf("lpmd: stopped\n");
    return 0;
  } catch (const util::IoError& e) {
    std::fprintf(stderr, "lpmd: io error: %s\n", e.what());
    return 3;
  } catch (const util::LpmError& e) {
    std::fprintf(stderr, "lpmd: %s\n", e.what());
    return 2;
  }
}
