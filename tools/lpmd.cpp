// lpmd — the LPM job server daemon, and (with shards=) the shard router.
//
//   $ ./lpmd [endpoint=/tmp/lpmd.sock] [journal=] [workers=2]
//            [queue_max=256] [per_client_max=32] [degrade_watermark=128]
//            [job_timeout_ms=0]
//   $ ./lpmd endpoint=tcp:127.0.0.1:7800 \
//            shards=tcp:127.0.0.1:7801,tcp:127.0.0.1:7802
//
// `endpoint` takes any wire::Endpoint spelling ("unix:<path>",
// "tcp:<host>:<port>", bare unix path); `socket=` is the legacy alias.
// With `shards=` the process runs as a srv::Router in front of the listed
// backend lpmd endpoints instead of serving jobs itself (see
// docs/OPERATIONS.md for the full topology recipe).
//
// Configuration layering: defaults < LPMD_* environment < key=value args
// (the env knobs are what CI and the soak harness drive; see
// docs/OPERATIONS.md). Runs in the foreground until SIGINT/SIGTERM or a
// client shutdown frame; exit status 0 = clean stop, 2 = config error,
// 3 = I/O error (socket/journal unusable).
//
// Crash recovery is the point: kill -9 this process mid-load and restart
// it on the same journal — accepted-but-unfinished jobs rerun, finished
// jobs answer attach from the journal, and no job is lost or delivered
// twice (tools/lpm_loadgen.cpp asserts exactly that, now across shards).
#include <atomic>
#include <csignal>
#include <cstdio>
#include <string>
#include <vector>

#include "srv/router.hpp"
#include "srv/server.hpp"
#include "util/config.hpp"
#include "util/error.hpp"

namespace {

std::atomic<lpm::srv::Server*> g_server{nullptr};
std::atomic<lpm::srv::Router*> g_router{nullptr};

void handle_signal(int) {
  // async-signal-safe: just flag the serve loop down via stop-requested.
  lpm::srv::Server* server = g_server.load();
  if (server != nullptr) server->request_stop();
  lpm::srv::Router* router = g_router.load();
  if (router != nullptr) router->request_stop();
}

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    std::size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    if (comma > pos) out.push_back(csv.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return out;
}

int run_router(const lpm::util::KvConfig& args, const std::string& endpoint,
               const std::string& shards_csv) {
  using namespace lpm;
  srv::Router::Options opts;
  opts.endpoint = endpoint;
  opts.shards = split_list(shards_csv);
  opts.upstream_connect_budget_ms = args.get_uint_or(
      "upstream_connect_budget_ms", opts.upstream_connect_budget_ms);
  opts.idle_timeout_ms =
      args.get_uint_or("idle_timeout_ms", opts.idle_timeout_ms);

  srv::Router router(opts);
  g_router.store(&router);
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  router.start();
  std::printf("lpmd: routing %s across %zu shard(s)\n",
              router.bound_endpoint().c_str(), opts.shards.size());
  std::fflush(stdout);
  router.serve();
  g_router.store(nullptr);
  std::printf("lpmd: router stopped\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lpm;
  try {
    const auto args = util::KvConfig::from_args(argc, argv);
    srv::Server::Options opts = srv::Server::Options::from_env();
    opts.endpoint = args.get_or("socket", opts.endpoint);  // legacy alias
    opts.endpoint = args.get_or("endpoint", opts.endpoint);

    const std::string shards = args.get_or("shards", "");
    if (!shards.empty()) return run_router(args, opts.endpoint, shards);

    opts.journal_path = args.get_or("journal", opts.journal_path);
    opts.workers =
        static_cast<unsigned>(args.get_uint_or("workers", opts.workers));
    opts.queue_max = args.get_uint_or("queue_max", opts.queue_max);
    opts.per_client_max =
        args.get_uint_or("per_client_max", opts.per_client_max);
    opts.degrade_watermark =
        args.get_uint_or("degrade_watermark", opts.degrade_watermark);
    opts.degrade_backend = args.get_or("degrade_backend", opts.degrade_backend);
    opts.job_timeout_ms = args.get_uint_or("job_timeout_ms", opts.job_timeout_ms);
    opts.max_retries =
        static_cast<unsigned>(args.get_uint_or("max_retries", opts.max_retries));
    opts.idle_timeout_ms =
        args.get_uint_or("idle_timeout_ms", opts.idle_timeout_ms);

    srv::Server server(opts);
    g_server.store(&server);
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);

    server.start();
    std::printf("lpmd: listening on %s (workers=%u queue_max=%zu journal=%s)\n",
                server.bound_endpoint().c_str(), opts.workers, opts.queue_max,
                opts.journal_path.empty() ? "off" : opts.journal_path.c_str());
    std::fflush(stdout);
    server.serve();
    g_server.store(nullptr);
    std::printf("lpmd: stopped\n");
    return 0;
  } catch (const util::IoError& e) {
    std::fprintf(stderr, "lpmd: io error: %s\n", e.what());
    return 3;
  } catch (const util::LpmError& e) {
    std::fprintf(stderr, "lpmd: %s\n", e.what());
    return 2;
  }
}
