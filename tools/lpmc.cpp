// lpmc — command-line client for lpmd.
//
//   $ ./lpmc cmd=simulate [endpoint=/tmp/lpmd.sock] [name=lpmc] [id=job1]
//            [workload=403.gcc] [length=20000] [seed=1] [machine=default]
//            [l1_kb=0] [l1_assoc=0] [l2_kb=0] [mshr=0] [cores=0]
//            [backend=cycle] [calibrate=1] [degrade_ok=1] [deadline_ms=0]
//            [trace_file=/path/to.lpm2]   # replay a recorded trace instead
//                                         # of the synthetic workload=
//   $ ./lpmc cmd=sweep sweep_knob=l1_kb sweep_values=16,32,64 ...
//   $ ./lpmc cmd=walk workload=410.bwaves length=10000
//   $ ./lpmc cmd=attach id=job1         # pick up results after a restart
//   $ ./lpmc cmd=ping | cmd=stats | cmd=shutdown
//
// `endpoint` accepts any wire::Endpoint spelling ("unix:<path>",
// "tcp:<host>:<port>", bare unix path) and may be a comma-separated list:
// connect() fails over through the list, which is how you point lpmc at a
// set of shards or at a router plus a fallback. `socket=` is the legacy
// single-path alias.
//
// Submits one job, then prints every frame the server streams back (one
// JSON object per line) until the job's terminal frame (done/error)
// arrives. Honors the backpressure protocol: retry_after and overload
// responses are retried after the server's hint, so a saturated server
// slows lpmc down instead of failing it.
//
// Exit status: 0 = terminal done frame, 1 = terminal error frame,
// 2 = usage/config error, 3 = cannot reach the server.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "srv/client.hpp"
#include "util/config.hpp"
#include "util/error.hpp"

int main(int argc, char** argv) {
  using namespace lpm;
  try {
    const auto args = util::KvConfig::from_args(argc, argv);
    const std::string cmd = args.get_or("cmd", "simulate");
    std::string endpoint_csv = args.get_or("socket", "/tmp/lpmd.sock");
    endpoint_csv = args.get_or("endpoint", endpoint_csv);
    const std::string name = args.get_or("name", "lpmc");
    const std::string id = args.get_or("id", "job1");

    std::vector<std::string> endpoints;
    for (std::size_t pos = 0; pos <= endpoint_csv.size();) {
      std::size_t comma = endpoint_csv.find(',', pos);
      if (comma == std::string::npos) comma = endpoint_csv.size();
      if (comma > pos) endpoints.push_back(endpoint_csv.substr(pos, comma - pos));
      pos = comma + 1;
    }

    srv::Client client(endpoints, name);
    client.connect(args.get_uint_or("connect_budget_ms", 5'000));

    if (cmd == "ping" || cmd == "stats" || cmd == "shutdown") {
      if (cmd == "ping") client.ping();
      if (cmd == "stats") client.request_stats();
      if (cmd == "shutdown") client.request_shutdown();
      const auto reply = client.poll(3'000);
      if (!reply) {
        std::fprintf(stderr, "lpmc: no reply\n");
        return 3;
      }
      std::printf("op=%s queue_depth=%.0f\n",
                  reply->get_string("op").value_or("?").c_str(),
                  reply->get_number("queue_depth").value_or(0.0));
      return 0;
    }

    srv::JobSpec spec;
    if (cmd == "attach") {
      client.attach(id);
    } else {
      spec.kind = cmd;
      spec.workload = args.get_or("workload", spec.workload);
      spec.trace_file = args.get_or("trace_file", spec.trace_file);
      spec.length = args.get_uint_or("length", 20'000);
      spec.seed = args.get_uint_or("seed", spec.seed);
      spec.machine = args.get_or("machine", spec.machine);
      spec.l1_kb = args.get_uint_or("l1_kb", 0);
      spec.l1_assoc = static_cast<std::uint32_t>(args.get_uint_or("l1_assoc", 0));
      spec.l2_kb = args.get_uint_or("l2_kb", 0);
      spec.mshr = static_cast<std::uint32_t>(args.get_uint_or("mshr", 0));
      spec.cores = static_cast<std::uint32_t>(args.get_uint_or("cores", 0));
      spec.backend = args.get_or("backend", spec.backend);
      spec.calibrate = args.get_bool_or("calibrate", spec.calibrate);
      spec.degrade_ok = args.get_bool_or("degrade_ok", spec.degrade_ok);
      spec.deadline_ms = args.get_uint_or("deadline_ms", 0);
      spec.sweep_knob = args.get_or("sweep_knob", "");
      spec.sweep_values = args.get_or("sweep_values", "");
      spec.validate();
      client.submit(id, spec);
    }

    // Drain frames until this job's terminal frame. Backpressure responses
    // reschedule the submit after the server's hint.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(
                              args.get_uint_or("wait_budget_ms", 600'000));
    while (std::chrono::steady_clock::now() < deadline) {
      const auto frame = client.poll(1'000);
      if (!frame) {
        if (!client.connected()) {
          std::fprintf(stderr, "lpmc: server closed the connection\n");
          return 3;
        }
        continue;
      }
      const std::string op = frame->get_string("op").value_or("");
      const std::string frame_id = frame->get_string("id").value_or("");
      if (frame_id != id && op != "pong") continue;

      if (op == "retry_after" ||
          (op == "error" &&
           frame->get_string("code").value_or("") == "overload")) {
        const auto hint_ms = static_cast<std::uint64_t>(
            frame->get_number("retry_after_ms").value_or(200.0));
        std::fprintf(stderr, "lpmc: backpressure (%s); retrying in %llu ms\n",
                     op.c_str(), static_cast<unsigned long long>(hint_ms));
        std::this_thread::sleep_for(std::chrono::milliseconds(hint_ms));
        client.submit(id, spec);
        continue;
      }
      if (op == "ack") {
        std::fprintf(stderr, "lpmc: %s (degraded=%s)\n",
                     frame->get_string("status").value_or("?").c_str(),
                     frame->get_bool("degraded").value_or(false) ? "yes"
                                                                 : "no");
        continue;
      }
      if (op == "point") {
        std::printf("point seq=%.0f/%.0f ipc=%.4f cycles=%.0f degraded=%s\n",
                    frame->get_number("seq").value_or(0.0),
                    frame->get_number("of").value_or(0.0),
                    frame->get_number("ipc").value_or(0.0),
                    frame->get_number("cycles").value_or(0.0),
                    frame->get_bool("degraded").value_or(false) ? "yes" : "no");
        continue;
      }
      if (op == "done") {
        if (frame->has("final_config")) {
          std::printf("done final=%s converged=%s\n",
                      frame->get_string("final_config").value_or("?").c_str(),
                      frame->get_bool("converged").value_or(false) ? "yes"
                                                                   : "no");
        } else if (frame->has("points")) {
          std::printf("done points=%.0f ok=%.0f\n",
                      frame->get_number("points").value_or(0.0),
                      frame->get_number("points_ok").value_or(0.0));
        } else {
          std::printf(
              "done backend=%s ipc=%.4f cycles=%.0f mr1=%.4f degraded=%s\n",
              frame->get_string("backend").value_or("?").c_str(),
              frame->get_number("ipc").value_or(0.0),
              frame->get_number("cycles").value_or(0.0),
              frame->get_number("mr1").value_or(0.0),
              frame->get_bool("degraded").value_or(false) ? "yes" : "no");
        }
        return 0;
      }
      if (op == "error") {
        std::fprintf(stderr, "lpmc: job failed: %s: %s\n",
                     frame->get_string("code").value_or("?").c_str(),
                     frame->get_string("message").value_or("").c_str());
        return 1;
      }
    }
    std::fprintf(stderr, "lpmc: timed out waiting for results\n");
    return 3;
  } catch (const util::IoError& e) {
    std::fprintf(stderr, "lpmc: io error: %s\n", e.what());
    return 3;
  } catch (const util::LpmError& e) {
    std::fprintf(stderr, "lpmc: %s\n", e.what());
    return 2;
  }
}
