// Re-executes a replay file (the differential harness's exchange format)
// against both the optimized simulator and the reference model and reports
// whether they still diverge — the debugging companion to a fuzzer-written
// minimized repro.
//
//   $ ./lpm_replay replay=/path/to/lpm-repro-123.json [minimize=0] [out=FILE]
//
// Exit status: 0 = simulators agree, 1 = divergence, 2 = usage/IO error.
// With minimize=1 (default) a divergent trace is delta-debugged further and
// the minimal case is written to `out` (default: <replay>.min.json).
#include <cstdio>

#include "check/diff.hpp"
#include "check/replay.hpp"
#include "util/config.hpp"
#include "util/error.hpp"

int main(int argc, char** argv) {
  using namespace lpm;
  try {
    const auto args = util::KvConfig::from_args(argc, argv);
    std::string path = args.get_or("replay", "");
    if (path.empty() && !args.positional().empty()) path = args.positional().front();
    if (path.empty()) {
      std::fprintf(stderr,
                   "usage: lpm_replay replay=FILE [minimize=0|1] [out=FILE]\n");
      return 2;
    }
    const bool minimize = args.get_bool_or("minimize", true);
    const std::string out = args.get_or("out", path + ".min.json");

    const check::ReplayCase c = check::load_replay(path);
    std::size_t total_ops = 0;
    for (const auto& ops : c.ops) total_ops += ops.size();
    std::printf("replay: %s (%u core(s), %zu micro-ops)\n", path.c_str(),
                c.machine.num_cores, total_ops);

    check::DiffRunner runner(
        check::DiffOptions{{}, minimize, /*max_trials=*/600});
    const check::DiffReport report = runner.run(c);
    if (!report.diverged) {
      std::printf("OK: optimized and reference results are identical\n");
      return 0;
    }
    std::printf("DIVERGENCE: %s\n", report.divergence.c_str());
    if (minimize) {
      std::size_t min_ops = 0;
      for (const auto& ops : report.minimized.ops) min_ops += ops.size();
      check::save_replay(report.minimized, out);
      std::printf(
          "minimized to %zu micro-ops in %llu simulator pairs -> %s\n",
          min_ops, static_cast<unsigned long long>(report.trials), out.c_str());
    }
    return 1;
  } catch (const util::LpmError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
