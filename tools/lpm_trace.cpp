// Trace-file workbench for the LPM2 streaming format (see DESIGN.md and the
// header comments in src/trace/lpm2.hpp).
//
//   $ lpm_trace record workload=403.gcc out=gcc.lpm2 [length=N] [seed=S] [v1=0|1]
//   $ lpm_trace convert replay=lpm-repro-7.json out=case.lpm2 [core=0]
//   $ lpm_trace info file=gcc.lpm2
//   $ lpm_trace verify file=gcc.lpm2
//
// record  — generate one of the 16 synthetic SPEC analogue profiles and
//           stream it to disk (LPM2 by default; v1=1 writes legacy LPMT).
// convert — lift one core's micro-op stream out of an lpm-replay-v1 JSON
//           repro (the differential harness's exchange format) into LPM2,
//           so a divergence case can be replayed through the mmap path.
// info    — print the validated header (version, count, checksum, bytes).
// verify  — full scan: header, record type bytes, content checksum.
//
// Exit status: 0 = ok, 1 = verification failed / corrupt file, 2 = usage.
#include <cstdio>

#include "check/replay.hpp"
#include "lpm.hpp"
#include "util/config.hpp"

namespace {

void print_info(const char* path, const lpm::trace::TraceFileInfo& info) {
  std::printf("%s: LPM v%u, %llu ops, checksum %016llx, %llu bytes\n", path,
              info.version, static_cast<unsigned long long>(info.count),
              static_cast<unsigned long long>(info.checksum),
              static_cast<unsigned long long>(info.file_bytes));
}

int usage() {
  std::fprintf(
      stderr,
      "usage: lpm_trace record workload=NAME out=FILE [length=N] [seed=S] [v1=0|1]\n"
      "       lpm_trace convert replay=FILE out=FILE [core=0]\n"
      "       lpm_trace info file=FILE\n"
      "       lpm_trace verify file=FILE\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lpm;
  try {
    const auto args = util::KvConfig::from_args(argc, argv);
    if (args.positional().empty()) return usage();
    const std::string cmd = args.positional().front();

    if (cmd == "record") {
      const std::string workload = args.get_or("workload", "");
      const std::string out = args.get_or("out", "");
      if (workload.empty() || out.empty()) return usage();
      const std::uint64_t length = args.get_uint_or("length", 100'000);
      const std::uint64_t seed = args.get_uint_or("seed", 1);
      // Route through TraceSpec so the name vocabulary ("403.gcc", ...)
      // and its unknown-name error stay identical to lpm::simulate's.
      const TraceSpec spec = TraceSpec::spec(workload, length, seed);
      trace::SyntheticTrace source(spec.workloads.front());
      if (args.get_bool_or("v1", false)) {
        const std::uint64_t count = trace::record_trace(source, out);
        std::printf("recorded %s: %llu ops (LPMT v1) -> %s\n", workload.c_str(),
                    static_cast<unsigned long long>(count), out.c_str());
      } else {
        const std::uint64_t checksum = trace::record_trace_v2(source, out);
        std::printf("recorded %s: checksum %016llx -> %s\n", workload.c_str(),
                    static_cast<unsigned long long>(checksum), out.c_str());
      }
      print_info(out.c_str(), trace::inspect_trace(out));
      return 0;
    }

    if (cmd == "convert") {
      const std::string replay = args.get_or("replay", "");
      const std::string out = args.get_or("out", "");
      if (replay.empty() || out.empty()) return usage();
      const auto core = static_cast<std::size_t>(args.get_uint_or("core", 0));
      const check::ReplayCase c = check::load_replay(replay);
      if (core >= c.ops.size()) {
        std::fprintf(stderr, "error: replay has %zu core(s); core=%zu is out of range\n",
                     c.ops.size(), core);
        return 2;
      }
      trace::VectorTrace source("replay:" + replay, c.ops[core]);
      const std::uint64_t checksum = trace::record_trace_v2(source, out);
      std::printf("converted core %zu of %s: %zu ops, checksum %016llx -> %s\n",
                  core, replay.c_str(), c.ops[core].size(),
                  static_cast<unsigned long long>(checksum), out.c_str());
      return 0;
    }

    if (cmd == "info" || cmd == "verify") {
      std::string file = args.get_or("file", "");
      if (file.empty() && args.positional().size() > 1) file = args.positional()[1];
      if (file.empty()) return usage();
      if (cmd == "info") {
        print_info(file.c_str(), trace::inspect_trace(file));
        return 0;
      }
      try {
        print_info(file.c_str(), trace::verify_trace(file));
        std::printf("verify: ok\n");
        return 0;
      } catch (const util::IoError& e) {
        std::fprintf(stderr, "verify FAILED: %s\n", e.what());
        return 1;
      }
    }

    return usage();
  } catch (const util::LpmError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
