// Microbenchmarks (google-benchmark): the C-AMAT analyzer is meant to be a
// set of lightweight counters (paper Fig. 4); these benches quantify its
// per-cycle cost and the simulator's end-to-end throughput.
#include <benchmark/benchmark.h>

#include <memory>

#include "camat/analyzer.hpp"
#include "sim/system.hpp"
#include "trace/spec_like.hpp"
#include "trace/synthetic.hpp"

namespace {

using namespace lpm;

void BM_AnalyzerCycleActivity(benchmark::State& state) {
  camat::Analyzer a("bench");
  // A steady mix: four accesses in flight, one outstanding miss.
  a.on_access(1, 0, false);
  a.on_miss(1, 1);
  Cycle cycle = 2;
  for (auto _ : state) {
    a.on_cycle_activity(cycle++, 4);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AnalyzerCycleActivity);

void BM_AnalyzerMissLifecycle(benchmark::State& state) {
  camat::Analyzer a("bench");
  Cycle cycle = 0;
  RequestId id = 1;
  for (auto _ : state) {
    a.on_access(id, cycle, false);
    a.on_miss(id, cycle + 3);
    a.on_cycle_activity(cycle + 4, 0);
    a.on_miss_done(id, cycle + 20);
    ++id;
    cycle += 5;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AnalyzerMissLifecycle);

void BM_SystemThroughput(benchmark::State& state) {
  const auto workload = trace::spec_profile(
      trace::SpecBenchmark::kGcc, static_cast<std::uint64_t>(state.range(0)), 3);
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    auto machine = sim::MachineConfig::single_core_default();
    std::vector<trace::TraceSourcePtr> traces;
    traces.push_back(std::make_unique<trace::SyntheticTrace>(workload));
    sim::System system(machine, std::move(traces));
    const auto r = system.run();
    benchmark::DoNotOptimize(r.cycles);
    instructions += r.cores[0].instructions;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(instructions));
  state.SetLabel("simulated instructions/s");
}
BENCHMARK(BM_SystemThroughput)->Arg(20000)->Unit(benchmark::kMillisecond);

void BM_TraceGeneration(benchmark::State& state) {
  const auto workload =
      trace::spec_profile(trace::SpecBenchmark::kBwaves, 1u << 20, 5);
  trace::SyntheticTrace t(workload);
  trace::MicroOp op;
  std::uint64_t n = 0;
  for (auto _ : state) {
    if (!t.next(op)) t.reset();
    benchmark::DoNotOptimize(op.addr);
    ++n;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TraceGeneration);

}  // namespace

BENCHMARK_MAIN();
