// Ablation: per-knob sensitivity of LPMR1 and stall time. Starting from
// configuration A, each Table-I knob is raised alone to its config-D level;
// this shows which dimension of parallelism the workload actually needs -
// exactly the diagnosis the LPM model automates.
#include <cstdio>

#include "common.hpp"
#include "core/design_space.hpp"
#include "trace/spec_like.hpp"
#include "util/table.hpp"

static int run_bench(const lpm::benchx::BenchOptions& opt) {
  using namespace lpm;
  util::print_banner("bench_ablation_knobs",
                       "Per-knob sensitivity around Table I (ablation)");
  std::printf("model backend: %s\n", opt.backend.c_str());

  const auto base = sim::MachineConfig::single_core_default();
  const auto workload =
      trace::spec_profile(trace::SpecBenchmark::kBwaves, 400'000, 17);
  core::DesignSpaceExplorer ex(base, workload, core::KnobLevels::standard(),
                               core::ArchKnobs::config_a(),
                               core::kFineGrainedDelta, /*engine=*/nullptr,
                               opt.backend);

  struct Variant {
    const char* name;
    core::ArchKnobs knobs;
  };
  const auto a = core::ArchKnobs::config_a();
  std::vector<Variant> variants = {{"A (baseline)", a}};
  {
    auto k = a;
    k.issue_width = 8;
    variants.push_back({"A + issue width 8", k});
  }
  {
    auto k = a;
    k.iw_size = 128;
    k.rob_size = 128;
    variants.push_back({"A + IW/ROB 128", k});
  }
  {
    auto k = a;
    k.l1_ports = 4;
    variants.push_back({"A + L1 ports 4", k});
  }
  {
    auto k = a;
    k.mshr_entries = 16;
    variants.push_back({"A + MSHR 16", k});
  }
  {
    auto k = a;
    k.l2_interleave = 8;
    variants.push_back({"A + L2 interleave 8", k});
  }
  variants.push_back({"D (all together)", core::ArchKnobs::config_d()});

  util::AsciiTable t({"variant", "LPMR1", "LPMR2", "stall/instr", "CPI",
                      "C_H1", "C_m1"});
  double base_stall = 0.0;
  for (const auto& v : variants) {
    const auto& m = ex.evaluate(v.knobs);
    const auto lpmr = core::compute_lpmrs(m);
    if (v.knobs == a) base_stall = m.measured_stall_per_instr;
    t.add_row({v.name, util::fmt(lpmr.lpmr1, 2), util::fmt(lpmr.lpmr2, 2),
               util::fmt(m.measured_stall_per_instr, 4) + " (" +
                   util::fmt(100 * m.measured_stall_per_instr /
                                   (base_stall > 0 ? base_stall : 1.0), 0) +
                   "% of A)",
               util::fmt(m.measured_cpi, 3), util::fmt(m.l1.CH(), 2),
               util::fmt(m.l1.Cm(), 2)});
    std::printf("evaluated %s\n", v.name);
  }
  std::printf("\n%s\n", t.to_string().c_str());
  std::printf("Reading: no single knob recovers D's matching - the paper's\n"
              "point that the knobs must move together, guided by the model.\n");
  return 0;
}

int main(int argc, char** argv) {
  return lpm::benchx::guarded_main(argc, argv, &run_bench);
}
