// Ablation of the paper's SVII future-work mechanism "selective cache
// replacement": replacement policies under a program that mixes a hot,
// heavily reused set with periodic long scans. LRU lets every scan flush
// the hot set; SRRIP's re-reference predictions keep it resident.
#include <cstdio>
#include <memory>

#include "common.hpp"
#include "sim/system.hpp"
#include "trace/synthetic.hpp"
#include "util/table.hpp"

namespace {

using namespace lpm;

trace::WorkloadProfile scan_reuse_workload() {
  trace::WorkloadProfile p;
  p.name = "scan+reuse";
  p.fmem = 0.40;
  p.working_set_bytes = 2 << 20;  // scans sweep 2 MB...
  p.zipf_skew = 1.2;              // ...but reuse concentrates on a hot set
  p.seq_fraction = 0.0;           // calm phases: pure hot-set reuse
  p.num_streams = 1;
  p.stride_bytes = 64;            // scan bursts walk whole blocks
  p.phase_length = 800;
  p.burst_duty = 0.30;
  p.burst_fmem = 0.50;
  p.burst_seq_fraction = 1.0;     // burst phases: pure scanning
  p.length = 250'000;
  p.seed = 33;
  return p;
}

}  // namespace

static int run_bench(const lpm::benchx::BenchOptions& opt) {
  util::print_banner("bench_ablation_replacement",
                       "SVII future work: selective cache replacement "
                       "(scan-resistant policies)");
  std::printf("model backend: %s (note: the analytic backends assume LRU — "
              "their rows do not differentiate policies)\n",
              opt.backend.c_str());

  util::AsciiTable t({"L1 policy", "IPC", "L1 miss rate", "L1 C-AMAT",
                      "data stall/instr", "cycles"});
  for (const auto policy :
       {mem::ReplacementPolicy::kLru, mem::ReplacementPolicy::kFifo,
        mem::ReplacementPolicy::kRandom, mem::ReplacementPolicy::kPlru,
        mem::ReplacementPolicy::kSrrip}) {
    auto machine = sim::MachineConfig::single_core_default();
    machine.l1.replacement = policy;
    machine.l1.prefetch_degree = 0;  // isolate the replacement effect
    const auto r =
        benchx::run_solo(machine, scan_reuse_workload(), nullptr, opt.backend);
    t.add_row({mem::to_string(policy), util::fmt(1.0 / r.m.measured_cpi, 3),
               util::fmt(r.m.mr1, 4), util::fmt(r.m.l1.camat(), 3),
               util::fmt(r.m.measured_stall_per_instr, 4),
               std::to_string(r.run.cycles)});
    std::printf("evaluated %s\n", mem::to_string(policy));
  }
  std::printf("\n%s\n", t.to_string().c_str());
  std::printf("Reading: the scan-resistant policy (srrip) retains the hot\n"
              "set across scans - lower miss rate and C-AMAT than recency-\n"
              "based policies, which a locality-only model cannot explain\n"
              "but the C-AMAT/LPM counters surface directly.\n");
  return 0;
}

int main(int argc, char** argv) {
  return lpm::benchx::guarded_main(argc, argv, &run_bench);
}
