// Shared helpers for the reproduction benches: every bench prints the same
// rows/series the paper reports, with a header pointing at the paper
// artefact it regenerates.
#pragma once

#include <string>

#include "core/lpm_model.hpp"
#include "sim/system.hpp"
#include "trace/workload_profile.hpp"
#include "util/table.hpp"

namespace lpm::benchx {

struct WorkloadRun {
  core::AppMeasurement m;
  sim::SystemResult run;
  sim::CpiExeResult calib;
};

/// Runs `workload` solo on `machine` (plus a perfect-cache calibration) and
/// gathers the LPM measurement.
WorkloadRun run_solo(const sim::MachineConfig& machine,
                     const trace::WorkloadProfile& workload);

/// Prints the standard bench banner.
void print_banner(const std::string& bench, const std::string& artefact,
                  const std::string& notes = "");

/// Formats a double with `precision` decimals.
std::string fmt(double v, int precision = 3);

}  // namespace lpm::benchx
