// Shared helpers for the reproduction benches: every bench prints the same
// rows/series the paper reports, with a header pointing at the paper
// artefact it regenerates. Banner/number formatting lives in util/table
// (util::print_banner, util::fmt); simulations run through the experiment
// engine (exp::ExperimentEngine), which the helpers here wrap.
#pragma once

#include <string>

#include "core/lpm_model.hpp"
#include "exp/experiment_engine.hpp"
#include "sim/system.hpp"
#include "trace/workload_profile.hpp"
#include "util/table.hpp"

namespace lpm::benchx {

struct WorkloadRun {
  core::AppMeasurement m;
  sim::SystemResult run;
  sim::CpiExeResult calib;
};

/// Shared bench command line. Every arg is `key=value`, with any number of
/// leading dashes tolerated, so `--backend=rdh` and `backend=rdh` are the
/// same flag. Unknown backend names throw util::ConfigError listing the
/// choices; selecting an analytic backend registers its engine executors.
struct BenchOptions {
  /// Model backend evaluating the bench's points ("cycle", "rdh", "fa").
  std::string backend = exp::kCycleBackend;

  [[nodiscard]] static BenchOptions from_args(int argc,
                                              const char* const* argv);
};

/// Runs `workload` solo on `machine` (plus a perfect-cache calibration) and
/// gathers the LPM measurement. Executes through the experiment engine
/// (`engine` = nullptr uses the process-wide shared one), so repeated
/// (machine, workload) points are cache-served. `backend` picks the model
/// evaluating the point — the analytic backends synthesize the same
/// counter blocks the simulator measures, so every downstream table works
/// unchanged at either fidelity.
WorkloadRun run_solo(const sim::MachineConfig& machine,
                     const trace::WorkloadProfile& workload,
                     exp::ExperimentEngine* engine = nullptr,
                     const std::string& backend = exp::kCycleBackend);

/// Prints the engine's execution summary (threads, simulations, cache hits,
/// achieved parallel speedup) — benches call this after their sweeps.
void print_engine_summary(const exp::ExperimentEngine& engine,
                          double wall_seconds);

/// Runs a bench body under the standard failure boundary: util::LpmError
/// becomes a one-line `error[<code>]: <what>` diagnostic on stderr and a
/// non-zero exit instead of std::terminate. Every bench main is
/// `return benchx::guarded_main(&run_bench);`.
int guarded_main(int (*body)());

/// Same boundary for benches that take the shared flags: parses argv into
/// BenchOptions (arg errors go through the same diagnostic path) and calls
/// the body with them.
int guarded_main(int argc, const char* const* argv,
                 int (*body)(const BenchOptions&));

}  // namespace lpm::benchx
