// Regenerates Fig. 8: harmonic weighted speedup (Hsp) of Random,
// Round-Robin, NUCA-SA (cg) and NUCA-SA (fg) scheduling of sixteen
// SPEC-CPU2006-like programs on the Fig. 5 heterogeneous-L1 16-core CMP.
//
// Expected shape (paper): Random 0.7986 < Round Robin 0.8192 <
// NUCA-SA (cg) 0.8742 < NUCA-SA (fg) 0.9106; fg beats Random by ~12.3% and
// Round Robin by ~11.2%. The assignment space holds 16!/(4!)^4 = 63,063,000
// placements; NUCA-SA finds its schedule in polynomial time from the
// profiles alone.
#include <cstdio>
#include <memory>

#include "common.hpp"
#include "sched/evaluate.hpp"
#include "sched/scheduler.hpp"
#include "trace/spec_like.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

static int run_bench() {
  using namespace lpm;
  util::print_banner("bench_fig8_hsp_scheduling",
                       "Fig. 8 (Hsp of scheduling schemes on the NUCA CMP)",
                       "Also uses Fig. 5 (the 4x4 heterogeneous-L1 topology).");

  const auto machine = sim::MachineConfig::nuca16();
  const std::vector<std::uint64_t> sizes = {4096, 16384, 32768, 65536};
  constexpr std::uint64_t kLength = 40'000;

  // Profile all sixteen applications over the four L1 sizes — one engine
  // batch covering the whole 16 x 4 grid.
  sched::Profiler profiler(machine);
  std::vector<trace::WorkloadProfile> workloads;
  for (const auto b : trace::all_spec_benchmarks())
    workloads.push_back(trace::spec_profile(b, kLength, 53));
  const std::vector<sched::AppProfile> apps =
      profiler.profile_many(workloads, sizes);
  std::printf("profiled %zu applications over %zu L1 sizes\n\n", apps.size(),
              sizes.size());

  util::AsciiTable t({"scheduler", "Hsp (paper)", "Hsp (measured)",
                      "vs Random", "WS (throughput)", "min WS (fairness)",
                      "co-run cycles"});

  // Random: average several seeded placements (the paper's baseline).
  double random_hsp = 0.0;
  double random_ws = 0.0;
  double random_min = 0.0;
  Cycle random_cycles = 0;
  {
    sched::RandomScheduler rnd(1234);
    constexpr int kSamples = 5;
    std::vector<sched::ScheduleCandidate> candidates;
    for (int i = 0; i < kSamples; ++i)
      candidates.push_back(
          {rnd.assign(apps, machine.l1_size_per_core), "Random"});
    // The five seeded placements co-run as one engine batch.
    const auto results = sched::evaluate_schedules(machine, apps, candidates);
    for (int i = 0; i < kSamples; ++i) {
      const auto& r = results[i];
      random_hsp += r.hsp;
      random_ws += r.ws;
      random_min += r.min_ws;
      random_cycles += r.co_run_cycles;
      std::printf("random placement %d: Hsp=%.4f\n", i, r.hsp);
    }
    random_hsp /= kSamples;
    random_ws /= kSamples;
    random_min /= kSamples;
    random_cycles /= kSamples;
  }
  t.add_row({"Random", "0.7986", util::fmt(random_hsp, 4), "-",
             util::fmt(random_ws, 2), util::fmt(random_min, 3),
             std::to_string(random_cycles)});

  const auto report = [&](sched::Scheduler& s, const char* paper) {
    const auto schedule = s.assign(apps, machine.l1_size_per_core);
    const auto r = sched::evaluate_schedule(machine, apps, schedule, s.name());
    const double vs = 100.0 * (r.hsp / random_hsp - 1.0);
    t.add_row({s.name(), paper, util::fmt(r.hsp, 4),
               util::fmt(vs, 2) + "%", util::fmt(r.ws, 2),
               util::fmt(r.min_ws, 3), std::to_string(r.co_run_cycles)});
    return r;
  };

  sched::RoundRobinScheduler rr;
  report(rr, "0.8192");
  sched::NucaSaScheduler cg(core::kCoarseGrainedDelta);
  report(cg, "0.8742");
  sched::NucaSaScheduler fg(core::kFineGrainedDelta);
  const auto r_fg = report(fg, "0.9106");

  std::printf("\n%s\n", t.to_string().c_str());

  std::printf("NUCA-SA (fg) placement (app -> L1 size):\n");
  for (std::size_t i = 0; i < apps.size(); ++i) {
    std::printf("  %-16s -> core %2zu (%2llu KB)\n", apps[i].name.c_str(),
                r_fg.schedule[i],
                static_cast<unsigned long long>(
                    machine.l1_size_per_core[r_fg.schedule[i]] / 1024));
  }
  std::printf("\nAssignment space: 63,063,000 placements; profiles used: %zu\n",
              apps.size() * sizes.size());
  return 0;
}

int main() { return lpm::benchx::guarded_main(&run_bench); }
