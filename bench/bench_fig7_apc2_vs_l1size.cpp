// Regenerates Fig. 7: APC2 (shared-L2 bandwidth demand) of the applications
// running on cores with different private L1 sizes.
//
// Expected shape (paper): 401.bzip2 stable; 403.gcc decreases at every step;
// 429.mcf drops to its final value at the first size increase; 433.milc
// barely moves; 416.gamess' demand falls noticeably with a larger L1.
#include <cstdio>

#include "common.hpp"
#include "sched/profile.hpp"
#include "trace/spec_like.hpp"
#include "util/table.hpp"

static int run_bench() {
  using namespace lpm;
  util::print_banner("bench_fig7_apc2_vs_l1size",
                       "Fig. 7 (APC2 vs private L1 data cache size)");

  const std::vector<std::uint64_t> sizes = {4096, 16384, 32768, 65536};
  sched::Profiler profiler(sim::MachineConfig::nuca16());

  util::AsciiTable t({"application", "4 KB", "16 KB", "32 KB", "64 KB",
                      "reduction 4K->64K"});
  for (const auto b : trace::all_spec_benchmarks()) {
    const auto profile =
        profiler.profile(trace::spec_profile(b, 60'000, 29), sizes);
    std::vector<std::string> row = {profile.name};
    for (const auto& p : profile.by_size) row.push_back(util::fmt(p.apc2, 4));
    const double small = profile.by_size.front().apc2;
    const double big = profile.by_size.back().apc2;
    row.push_back(small > 0 ? util::fmt(100.0 * (1.0 - big / small), 1) + "%"
                            : "-");
    t.add_row(row);
    std::printf("profiled %s\n", profile.name.c_str());
  }
  std::printf("\n%s\n", t.to_string().c_str());
  std::printf("Shape check (paper): bzip2 stable, gcc falls each step, mcf\n"
              "drops at the first increase, milc insensitive.\n");
  return 0;
}

int main() { return lpm::benchx::guarded_main(&run_bench); }
