// Regenerates the §V interval-size study: the fraction of burst data-access
// patterns that are "perceived and processed timely" as a function of the
// measurement interval and of the optimization cost (hardware
// reconfiguration: 4 cycles; software scheduling: 40 cycles).
//
// Expected shape (paper): 10-cycle intervals catch 96% of bursts, 20-cycle
// 89%; the software approach at 40-cycle intervals catches 73%. Timeliness
// decreases with the interval size and with the processing cost.
#include <cstdio>

#include "common.hpp"
#include "core/interval.hpp"
#include "trace/spec_like.hpp"
#include "util/table.hpp"

static int run_bench() {
  using namespace lpm;
  util::print_banner("bench_interval_sensitivity",
                       "Section V interval-size study (96% / 89% / 73%)");

  auto machine = sim::MachineConfig::single_core_default();
  machine.l1.ports = 2;  // let burst demand actually spike above baseline
  // Short phases: a burst lasts a few tens of cycles, so the interval size
  // genuinely races the burst (the paper's 10/20/40-cycle regime).
  const auto workload = trace::burst_profile(/*phase_length=*/32,
                                             /*burst_duty=*/0.25,
                                             /*length=*/250'000, /*seed=*/7);

  struct Point {
    const char* approach;
    std::uint64_t interval;
    std::uint64_t cost;
    const char* paper;
  };
  const Point points[] = {
      {"hardware reconfiguration", 10, 4, "96%"},
      {"hardware reconfiguration", 20, 4, "89%"},
      {"software scheduling", 40, 40, "73%"},
  };

  util::AsciiTable t({"approach", "interval (cycles)", "cost (cycles)",
                      "paper", "timely (measured)", "detected", "bursts"});
  for (const Point& p : points) {
    core::IntervalStudyConfig cfg;
    cfg.interval_cycles = p.interval;
    cfg.processing_cost_cycles = p.cost;
    cfg.demand_threshold_factor = 2.0;
    const auto r = core::run_interval_study(machine, workload, cfg);
    t.add_row({p.approach, std::to_string(p.interval), std::to_string(p.cost),
               p.paper, util::fmt(100.0 * r.timely_fraction(), 1) + "%",
               util::fmt(100.0 * r.detected_fraction(), 1) + "%",
               std::to_string(r.bursts.size())});
  }
  std::printf("%s\n", t.to_string().c_str());

  // Extension: the full sensitivity curve.
  std::printf("Sensitivity sweep (cost = 4 cycles):\n");
  util::AsciiTable sweep({"interval", "timely", "detected", "intervals flagged"});
  for (const std::uint64_t interval : {5u, 10u, 20u, 40u, 80u, 160u}) {
    core::IntervalStudyConfig cfg;
    cfg.interval_cycles = interval;
    cfg.processing_cost_cycles = 4;
    cfg.demand_threshold_factor = 2.0;
    const auto r = core::run_interval_study(machine, workload, cfg);
    sweep.add_row({std::to_string(interval),
                   util::fmt(100.0 * r.timely_fraction(), 1) + "%",
                   util::fmt(100.0 * r.detected_fraction(), 1) + "%",
                   std::to_string(r.flagged_intervals)});
  }
  std::printf("%s\n", sweep.to_string().c_str());
  std::printf("Shape check: timeliness decreases with interval size; the\n"
              "40-cycle software point trails the 10-cycle hardware point.\n");
  return 0;
}

int main() { return lpm::benchx::guarded_main(&run_bench); }
