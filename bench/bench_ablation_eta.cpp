// Ablation of eta (Eq. 13's concurrency-and-locality damping factor):
// "once eta is close to zero, the impact of layered performance mismatch
// will be small". The bench reports eta and the L2 term's share of the
// predicted stall across workloads with very different hit/miss overlap.
#include <cstdio>

#include "common.hpp"
#include "trace/spec_like.hpp"
#include "util/table.hpp"

static int run_bench(const lpm::benchx::BenchOptions& opt) {
  using namespace lpm;
  util::print_banner("bench_ablation_eta",
                       "Section III eta analysis (Eq. 13 damping)");
  std::printf("model backend: %s\n", opt.backend.c_str());

  const auto machine = sim::MachineConfig::single_core_default();
  util::AsciiTable t({"application", "eta1", "pMR/MR", "eta", "LPMR2",
                      "eta*LPMR2 share of stall", "stall/instr"});

  for (const auto b : trace::all_spec_benchmarks()) {
    const auto wl = trace::spec_profile(b, 120'000, 23);
    const auto r = benchx::run_solo(machine, wl, nullptr, opt.backend);
    const double eta = core::eta_combined(r.m);
    const auto lpmr = core::compute_lpmrs(r.m);
    const double hit_term = r.m.l1.CH() > 0
                                ? r.m.l1.H() * r.m.fmem / r.m.l1.CH()
                                : 0.0;
    const double l2_term = r.m.cpi_exe * eta * lpmr.lpmr2;
    const double share =
        hit_term + l2_term > 0 ? l2_term / (hit_term + l2_term) : 0.0;
    t.add_row({wl.name, util::fmt(r.m.l1.eta1(), 3),
               util::fmt(r.m.mr1 > 0 ? r.m.l1.pMR() / r.m.mr1 : 0.0, 3),
               util::fmt(eta, 3), util::fmt(lpmr.lpmr2, 2),
               util::fmt(100 * share, 1) + "%",
               util::fmt(r.m.measured_stall_per_instr, 4)});
    std::printf("measured %s\n", wl.name.c_str());
  }
  std::printf("\n%s\n", t.to_string().c_str());
  std::printf("Shape check: cache-friendly codes (hmmer, namd, bzip2) show\n"
              "eta near zero - L2 mismatch barely matters to them - while\n"
              "miss-dominated codes (mcf, milc) carry large eta*LPMR2 terms.\n");
  return 0;
}

int main(int argc, char** argv) {
  return lpm::benchx::guarded_main(argc, argv, &run_bench);
}
