// Regenerates Fig. 6: APC1 of the applications running on cores with
// different L1 data cache sizes (4/16/32/64 KB).
//
// Expected shape (paper): 401.bzip2 is flat (4 KB suffices); 403.gcc rises
// with every step up to 64 KB; 433.milc is insensitive; 416.gamess improves
// markedly. APC here is accesses delivered per elapsed cycle (the figures'
// usage; see sched/profile.hpp).
#include <chrono>
#include <cstdio>

#include "common.hpp"
#include "exp/experiment_engine.hpp"
#include "sched/profile.hpp"
#include "trace/spec_like.hpp"
#include "util/table.hpp"

static int run_bench() {
  using namespace lpm;
  util::print_banner("bench_fig6_apc1_vs_l1size",
                       "Fig. 6 (APC1 vs private L1 data cache size)");

  const std::vector<std::uint64_t> sizes = {4096, 16384, 32768, 65536};
  exp::ExperimentEngine& engine = exp::ExperimentEngine::shared();
  sched::Profiler profiler(sim::MachineConfig::nuca16(), &engine);

  // The whole (application x L1 size) grid is one engine batch, so the
  // sweep parallelises across every point rather than per application.
  std::vector<trace::WorkloadProfile> workloads;
  for (const auto b : trace::all_spec_benchmarks())
    workloads.push_back(trace::spec_profile(b, 60'000, 29));
  const auto start = std::chrono::steady_clock::now();
  const auto profiles = profiler.profile_many(workloads, sizes);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  util::AsciiTable t({"application", "4 KB", "16 KB", "32 KB", "64 KB",
                      "gain 4K->64K"});
  for (const auto& profile : profiles) {
    std::vector<std::string> row = {profile.name};
    for (const auto& p : profile.by_size) row.push_back(util::fmt(p.apc1, 3));
    const double gain =
        profile.by_size.back().apc1 / profile.by_size.front().apc1;
    row.push_back(util::fmt(gain, 2) + "x");
    t.add_row(row);
  }
  std::printf("%s\n", t.to_string().c_str());
  benchx::print_engine_summary(engine, wall);
  std::printf("Shape check (paper): bzip2 ~flat, gcc keeps gaining to 64 KB,\n"
              "milc insensitive, gamess improves noticeably.\n");
  return 0;
}

int main() { return lpm::benchx::guarded_main(&run_bench); }
