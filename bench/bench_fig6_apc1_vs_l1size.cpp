// Regenerates Fig. 6: APC1 of the applications running on cores with
// different L1 data cache sizes (4/16/32/64 KB).
//
// Expected shape (paper): 401.bzip2 is flat (4 KB suffices); 403.gcc rises
// with every step up to 64 KB; 433.milc is insensitive; 416.gamess improves
// markedly. APC here is accesses delivered per elapsed cycle (the figures'
// usage; see sched/profile.hpp).
#include <cstdio>

#include "common.hpp"
#include "sched/profile.hpp"
#include "trace/spec_like.hpp"
#include "util/table.hpp"

int main() {
  using namespace lpm;
  benchx::print_banner("bench_fig6_apc1_vs_l1size",
                       "Fig. 6 (APC1 vs private L1 data cache size)");

  const std::vector<std::uint64_t> sizes = {4096, 16384, 32768, 65536};
  sched::Profiler profiler(sim::MachineConfig::nuca16());

  util::AsciiTable t({"application", "4 KB", "16 KB", "32 KB", "64 KB",
                      "gain 4K->64K"});
  for (const auto b : trace::all_spec_benchmarks()) {
    const auto profile =
        profiler.profile(trace::spec_profile(b, 60'000, 29), sizes);
    std::vector<std::string> row = {profile.name};
    for (const auto& p : profile.by_size) row.push_back(benchx::fmt(p.apc1, 3));
    const double gain =
        profile.by_size.back().apc1 / profile.by_size.front().apc1;
    row.push_back(benchx::fmt(gain, 2) + "x");
    t.add_row(row);
    std::printf("profiled %s\n", profile.name.c_str());
  }
  std::printf("\n%s\n", t.to_string().c_str());
  std::printf("Shape check (paper): bzip2 ~flat, gcc keeps gaining to 64 KB,\n"
              "milc insensitive, gamess improves noticeably.\n");
  return 0;
}
