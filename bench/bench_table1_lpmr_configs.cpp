// Regenerates Table I: LPMRs under configurations with incremental
// parallelism (A..E) for the 410.bwaves-like workload, plus the LPM
// algorithm's walk through the design space (Case Study I).
//
// Expected shape (paper): LPMR1 falls monotonically A -> D (8.1 -> 1.2);
// E is the over-provision-trimmed D (1.4) with lower hardware cost. Our
// substrate is a different machine, so absolute values differ; the bench
// prints paper values next to measured ones.
#include <chrono>
#include <cstdio>

#include "common.hpp"
#include "core/design_space.hpp"
#include "core/lpm_algorithm.hpp"
#include "exp/experiment_engine.hpp"
#include "trace/spec_like.hpp"
#include "util/table.hpp"

namespace {
double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}
}  // namespace

static int run_bench() {
  using namespace lpm;
  util::print_banner("bench_table1_lpmr_configs",
                       "Table I (LPMRs under configurations A-E) + Case Study I");

  const auto workload =
      trace::spec_profile(trace::SpecBenchmark::kBwaves, 1'000'000, 17);
  const auto base = sim::MachineConfig::single_core_default();
  exp::ExperimentEngine& engine = exp::ExperimentEngine::shared();
  const auto wall_start = std::chrono::steady_clock::now();

  core::DesignSpaceExplorer explorer(base, workload, core::KnobLevels::standard(),
                                     core::ArchKnobs::config_a(),
                                     core::kCoarseGrainedDelta, &engine);

  struct Column {
    const char* name;
    core::ArchKnobs knobs;
    double paper_lpmr1, paper_lpmr2, paper_lpmr3;
  };
  const Column columns[] = {
      {"A", core::ArchKnobs::config_a(), 8.1, 9.6, 6.4},
      {"B", core::ArchKnobs::config_b(), 6.2, 9.3, 8.1},
      {"C", core::ArchKnobs::config_c(), 2.1, 3.1, 5.8},
      {"D", core::ArchKnobs::config_d(), 1.2, 1.6, 2.3},
      {"E", core::ArchKnobs::config_e(), 1.4, 1.9, 2.6},
  };

  util::AsciiTable t({"configuration", "A", "B", "C", "D", "E"});
  std::vector<std::string> rows[12];
  const char* labels[12] = {
      "pipeline issue width", "IW size",          "ROB size",
      "L1 cache port number", "MSHR numbers",     "L2 cache interleaving",
      "LPMR1 (paper)",        "LPMR1 (measured)", "LPMR2 (paper | measured)",
      "LPMR3 (paper | measured)", "stall/instr (cycles)", "stall / CPIexe"};
  for (int i = 0; i < 12; ++i) rows[i].push_back(labels[i]);

  // All five Table I points are submitted as one engine batch: on a
  // multi-core host they simulate concurrently.
  std::vector<core::ArchKnobs> batch;
  for (const Column& c : columns) batch.push_back(c.knobs);
  const auto sweep_start = std::chrono::steady_clock::now();
  explorer.evaluate_batch(batch);
  const double sweep_seconds = seconds_since(sweep_start);

  for (const Column& c : columns) {
    const core::AppMeasurement& m = explorer.evaluate(c.knobs);
    const core::LpmrSet lpmr = core::compute_lpmrs(m);
    rows[0].push_back(std::to_string(c.knobs.issue_width));
    rows[1].push_back(std::to_string(c.knobs.iw_size));
    rows[2].push_back(std::to_string(c.knobs.rob_size));
    rows[3].push_back(std::to_string(c.knobs.l1_ports));
    rows[4].push_back(std::to_string(c.knobs.mshr_entries));
    rows[5].push_back(std::to_string(c.knobs.l2_interleave));
    rows[6].push_back(util::fmt(c.paper_lpmr1, 1));
    rows[7].push_back(util::fmt(lpmr.lpmr1, 2));
    rows[8].push_back(util::fmt(c.paper_lpmr2, 1) + " | " +
                      util::fmt(lpmr.lpmr2, 2));
    rows[9].push_back(util::fmt(c.paper_lpmr3, 1) + " | " +
                      util::fmt(lpmr.lpmr3, 2));
    rows[10].push_back(util::fmt(m.measured_stall_per_instr, 4));
    rows[11].push_back(util::fmt(m.measured_stall_per_instr / m.cpi_exe, 3));
  }
  for (auto& row : rows) t.add_row(row);
  std::printf("%s\n", t.to_string().c_str());
  std::printf("A-E sweep (one batch of %zu configurations): %.2fs\n\n",
              batch.size(), sweep_seconds);

  std::printf("Shape check: LPMR1 decreases A->D; E (trimmed D) costs %.0f vs\n"
              "%.0f hardware units while staying close to D's matching.\n\n",
              core::ArchKnobs::config_e().hardware_cost(),
              core::ArchKnobs::config_d().hardware_cost());

  // --- Case Study I: the LPM algorithm walks the space from A. ---
  std::printf("LPM algorithm walk (coarse-grained, from configuration A):\n");
  core::LpmAlgorithmConfig acfg;
  acfg.delta_percent = core::kCoarseGrainedDelta;
  acfg.max_iterations = 20;
  acfg.trim_overprovision = true;
  const core::LpmAlgorithm algorithm(acfg);
  const core::LpmOutcome outcome = algorithm.run(explorer);

  util::AsciiTable walk({"iter", "action", "LPMR1", "T1", "LPMR2", "T2",
                         "stall/CPIexe", "configuration"});
  for (const auto& step : outcome.steps) {
    walk.add_row({std::to_string(step.iteration), core::to_string(step.action),
                  util::fmt(step.observation.lpmr.lpmr1, 2),
                  util::fmt(step.observation.t1, 2),
                  util::fmt(step.observation.lpmr.lpmr2, 2),
                  util::fmt(step.observation.t2, 2),
                  util::fmt(step.observation.stall_per_instr /
                                  step.observation.cpi_exe, 3),
                  step.observation.config_label});
  }
  std::printf("%s\n", walk.to_string().c_str());
  std::printf(
      "converged=%s exhausted=%s | configurations simulated: %zu of %llu\n"
      "(the LPM algorithm explores a vanishing fraction of the 10^6 space)\n"
      "reconfiguration operations: %llu (cost %llu cycles at 4 cycles each)\n",
      outcome.converged ? "yes" : "no", outcome.exhausted ? "yes" : "no",
      explorer.configs_evaluated(),
      static_cast<unsigned long long>(core::KnobLevels::standard().space_size()),
      static_cast<unsigned long long>(explorer.reconfigurations()),
      static_cast<unsigned long long>(explorer.reconfiguration_cost_cycles()));

  // --- Cache demonstration: a fresh explorer re-sweeps A-E through the
  // same engine; every point is served from the result cache. ---
  core::DesignSpaceExplorer rerun(base, workload, core::KnobLevels::standard(),
                                  core::ArchKnobs::config_a(),
                                  core::kCoarseGrainedDelta, &engine);
  const std::uint64_t hits_before = engine.cache_hits();
  const auto rerun_start = std::chrono::steady_clock::now();
  rerun.evaluate_batch(batch);
  const double rerun_seconds = seconds_since(rerun_start);
  std::printf(
      "\nre-sweep A-E with a fresh explorer: %.4fs (%llu of %zu points served "
      "from the engine cache)\n",
      rerun_seconds,
      static_cast<unsigned long long>(engine.cache_hits() - hits_before),
      batch.size());
  benchx::print_engine_summary(engine, seconds_since(wall_start));
  return 0;
}

int main() { return lpm::benchx::guarded_main(&run_bench); }
