// Ablation: convergence behaviour of the LPM algorithm (Fig. 3) at both
// granularities, including Case III (over-provision trimming). Compares the
// LPM-guided walk against a brute-force sweep of the same budget to show
// the guidance is doing work.
#include <cstdio>

#include "common.hpp"
#include "core/design_space.hpp"
#include "core/lpm_algorithm.hpp"
#include "trace/spec_like.hpp"
#include "util/table.hpp"

static int run_bench(const lpm::benchx::BenchOptions& opt) {
  using namespace lpm;
  util::print_banner("bench_lpm_convergence",
                       "Fig. 3 algorithm dynamics (ablation)");
  std::printf("model backend: %s\n", opt.backend.c_str());

  const auto base = sim::MachineConfig::single_core_default();
  const auto workload =
      trace::spec_profile(trace::SpecBenchmark::kBwaves, 400'000, 17);

  util::AsciiTable t({"granularity", "start", "iterations", "converged",
                      "final LPMR1", "final stall/CPIexe", "configs simulated",
                      "final configuration"});

  for (const double delta :
       {core::kCoarseGrainedDelta, core::kFineGrainedDelta}) {
    core::DesignSpaceExplorer ex(base, workload, core::KnobLevels::standard(),
                                 core::ArchKnobs::config_a(), delta,
                                 /*engine=*/nullptr, opt.backend);
    core::LpmAlgorithmConfig acfg;
    acfg.delta_percent = delta;
    acfg.max_iterations = 24;
    acfg.trim_overprovision = true;
    const auto outcome = core::LpmAlgorithm(acfg).run(ex);
    t.add_row({delta <= 1.0 ? "fine (1%)" : "coarse (10%)", "A",
               std::to_string(outcome.steps.size()),
               outcome.converged ? "yes" : "no (exhausted)",
               util::fmt(outcome.final_observation.lpmr.lpmr1, 2),
               util::fmt(outcome.final_observation.stall_per_instr /
                               outcome.final_observation.cpi_exe, 3),
               std::to_string(ex.configs_evaluated()),
               outcome.final_observation.config_label});
  }

  // Case III coverage: start from an over-provisioned configuration.
  {
    core::ArchKnobs fat;
    fat.issue_width = 8;
    fat.iw_size = 256;
    fat.rob_size = 256;
    fat.l1_ports = 8;
    fat.mshr_entries = 64;
    fat.l2_interleave = 16;
    core::DesignSpaceExplorer ex(base, workload, core::KnobLevels::standard(),
                                 fat, core::kCoarseGrainedDelta,
                                 /*engine=*/nullptr, opt.backend);
    core::LpmAlgorithmConfig acfg;
    acfg.delta_percent = core::kCoarseGrainedDelta;
    acfg.max_iterations = 24;
    acfg.trim_overprovision = true;
    acfg.margin_fraction = 0.5;
    const auto outcome = core::LpmAlgorithm(acfg).run(ex);
    t.add_row({"coarse, trim (Case III)", "overprovisioned",
               std::to_string(outcome.steps.size()),
               outcome.converged ? "yes" : "no (exhausted)",
               util::fmt(outcome.final_observation.lpmr.lpmr1, 2),
               util::fmt(outcome.final_observation.stall_per_instr /
                               outcome.final_observation.cpi_exe, 3),
               std::to_string(ex.configs_evaluated()),
               outcome.final_observation.config_label});
    std::printf("Case III start cost %.0f units -> final cost %.0f units\n",
                fat.hardware_cost(), ex.current().hardware_cost());
  }
  std::printf("\n%s\n", t.to_string().c_str());
  return 0;
}

int main(int argc, char** argv) {
  return lpm::benchx::guarded_main(argc, argv, &run_bench);
}
