// Regenerates the §I / §IV data-stall claims: unoptimized systems spend a
// large fraction of execution time stalled on data ("50% to 70% of the
// total application execution time"), and LPM-guided optimization reduces
// the stall dramatically (fine-grained target: 1% of CPIexe; coarse: 10%).
#include <cstdio>

#include "common.hpp"
#include "core/design_space.hpp"
#include "core/lpm_algorithm.hpp"
#include "trace/spec_like.hpp"
#include "util/table.hpp"

static int run_bench() {
  using namespace lpm;
  util::print_banner(
      "bench_stall_reduction",
      "Section I/IV stall-time claims (50-70% unoptimized; LPM reduction)");

  const auto base = sim::MachineConfig::single_core_default();

  // (1) Unoptimized stall share across the workload mix on configuration A.
  std::printf("Data stall share of execution time, configuration A "
              "(unoptimized):\n");
  util::AsciiTable t({"application", "CPI", "CPIexe", "stall/instr",
                      "stall share of time", "stall/CPIexe"});
  const trace::SpecBenchmark mix[] = {
      trace::SpecBenchmark::kBwaves,     trace::SpecBenchmark::kMcf,
      trace::SpecBenchmark::kMilc,       trace::SpecBenchmark::kSoplex,
      trace::SpecBenchmark::kLibquantum, trace::SpecBenchmark::kLeslie3d,
      trace::SpecBenchmark::kGcc,        trace::SpecBenchmark::kZeusmp,
  };
  const auto config_a_machine = core::ArchKnobs::config_a().apply(base);
  for (const auto b : mix) {
    const auto wl = trace::spec_profile(b, 200'000, 19);
    const auto r = benchx::run_solo(config_a_machine, wl);
    t.add_row({wl.name, util::fmt(r.m.measured_cpi, 3),
               util::fmt(r.m.cpi_exe, 3),
               util::fmt(r.m.measured_stall_per_instr, 3),
               util::fmt(100.0 * r.m.measured_stall_per_instr /
                               r.m.measured_cpi, 1) + "%",
               util::fmt(r.m.measured_stall_per_instr / r.m.cpi_exe, 2)});
  }
  std::printf("%s\n", t.to_string().c_str());

  // (2) LPM-guided reduction for the Table-I workload.
  std::printf("LPM-guided optimization of 410.bwaves (coarse-grained run):\n");
  const auto workload =
      trace::spec_profile(trace::SpecBenchmark::kBwaves, 600'000, 17);
  core::DesignSpaceExplorer explorer(base, workload, core::KnobLevels::standard(),
                                     core::ArchKnobs::config_a(),
                                     core::kCoarseGrainedDelta);
  const auto before = explorer.measure();

  core::LpmAlgorithmConfig acfg;
  acfg.delta_percent = core::kCoarseGrainedDelta;
  acfg.max_iterations = 24;
  acfg.trim_overprovision = false;
  const auto outcome = core::LpmAlgorithm(acfg).run(explorer);
  const auto after = outcome.final_observation;

  util::AsciiTable r({"", "before (config A)", "after LPM", "change"});
  r.add_row({"stall/instr (cycles)", util::fmt(before.stall_per_instr, 4),
             util::fmt(after.stall_per_instr, 4),
             util::fmt(before.stall_per_instr / after.stall_per_instr, 2) +
                 "x lower"});
  r.add_row({"stall / CPIexe",
             util::fmt(before.stall_per_instr / before.cpi_exe, 3),
             util::fmt(after.stall_per_instr / after.cpi_exe, 3), ""});
  r.add_row({"LPMR1", util::fmt(before.lpmr.lpmr1, 2),
             util::fmt(after.lpmr.lpmr1, 2), ""});
  r.add_row({"configuration", before.config_label, after.config_label, ""});
  std::printf("%s\n", r.to_string().c_str());
  std::printf("Configurations simulated: %zu (of 10^6); reconfig ops: %llu\n",
              explorer.configs_evaluated(),
              static_cast<unsigned long long>(explorer.reconfigurations()));
  return 0;
}

int main() { return lpm::benchx::guarded_main(&run_bench); }
