// Ablation of the paper's SVII future-work mechanism "memory parallelism
// partition": per-core MSHR quotas at the shared LLC. A miss-flooding
// program can otherwise monopolize the LLC's concurrency (its C_M), starving
// co-runners; partitioning trades a little hog throughput for victim
// latency and fairness - measured here with Hsp and the per-app weighted
// speedups.
#include <cstdio>
#include <memory>

#include "common.hpp"
#include "sched/hsp.hpp"
#include "sim/system.hpp"
#include "trace/spec_like.hpp"
#include "trace/synthetic.hpp"
#include "util/table.hpp"

namespace {

using namespace lpm;

struct CoRun {
  std::vector<double> ipc;
  Cycle cycles = 0;
  std::uint64_t quota_waits = 0;
};

CoRun co_run(const sim::MachineConfig& machine,
             const std::vector<trace::WorkloadProfile>& apps) {
  std::vector<trace::TraceSourcePtr> traces;
  for (std::size_t i = 0; i < apps.size(); ++i) {
    trace::WorkloadProfile wl = apps[i];
    wl.addr_base = (static_cast<std::uint64_t>(i) + 1) << 30;
    traces.push_back(std::make_unique<trace::SyntheticTrace>(wl));
  }
  sim::System system(machine, std::move(traces));
  const auto r = system.run();
  CoRun out;
  for (const auto& c : r.cores) out.ipc.push_back(c.ipc());
  out.cycles = r.cycles;
  out.quota_waits = r.l2_cache.quota_waits;
  return out;
}

}  // namespace

static int run_bench(const lpm::benchx::BenchOptions& opt) {
  util::print_banner("bench_ablation_partition",
                       "SVII future work: memory parallelism partition "
                       "(per-core LLC MSHR quotas)");
  std::printf("model backend: %s (solo baselines; co-runs are always "
              "cycle-accurate)\n",
              opt.backend.c_str());

  // Four cores: one DRAM-flooding streamer (the hog) and three moderate
  // programs. The LLC has few MSHRs so its concurrency is contended.
  auto machine = sim::MachineConfig::nuca16();
  machine.num_cores = 4;
  machine.l1_size_per_core = {32768, 32768, 32768, 32768};
  machine.l1.num_cores = 4;
  machine.l2.num_cores = 4;
  machine.l2.mshr_entries = 12;
  machine.l2.ports = 2;

  std::vector<trace::WorkloadProfile> apps = {
      trace::spec_profile(trace::SpecBenchmark::kLibquantum, 60'000, 71),  // hog
      trace::spec_profile(trace::SpecBenchmark::kGcc, 60'000, 72),
      trace::spec_profile(trace::SpecBenchmark::kGamess, 60'000, 73),
      trace::spec_profile(trace::SpecBenchmark::kPerlbench, 60'000, 74),
  };

  // Solo baselines (same machine, one core active).
  std::vector<double> ipc_alone;
  for (std::size_t i = 0; i < apps.size(); ++i) {
    auto solo = machine;
    solo.num_cores = 1;
    solo.l1_size_per_core = {machine.l1_size_per_core[i]};
    solo.l1.num_cores = 1;
    solo.l2.num_cores = 1;
    const auto r = benchx::run_solo(solo, apps[i], nullptr, opt.backend);
    ipc_alone.push_back(1.0 / r.m.measured_cpi);
  }

  util::AsciiTable t({"LLC MSHR policy", "Hsp", "hog WS", "min victim WS",
                      "quota waits", "co-run cycles"});
  for (const std::uint32_t quota : {0u, 8u, 6u, 4u, 3u}) {
    auto m = machine;
    m.l2.mshr_quota_per_core = quota;
    const CoRun r = co_run(m, apps);
    std::vector<double> ws(apps.size());
    for (std::size_t i = 0; i < apps.size(); ++i) ws[i] = r.ipc[i] / ipc_alone[i];
    double min_victim = 1e9;
    for (std::size_t i = 1; i < ws.size(); ++i) min_victim = std::min(min_victim, ws[i]);
    t.add_row({quota == 0 ? "shared (no quota)" : "quota " + std::to_string(quota),
               util::fmt(sched::harmonic_weighted_speedup(ipc_alone, r.ipc), 4),
               util::fmt(ws[0], 3), util::fmt(min_victim, 3),
               std::to_string(r.quota_waits), std::to_string(r.cycles)});
    std::printf("evaluated quota=%u\n", quota);
  }
  std::printf("\n%s\n", t.to_string().c_str());
  std::printf("Reading: moderate quotas raise the victims' weighted speedup\n"
              "(fairness) at a small cost to the hog; tiny quotas hurt all.\n");
  return 0;
}

int main(int argc, char** argv) {
  return lpm::benchx::guarded_main(argc, argv, &run_bench);
}
