#include "common.hpp"

#include <cstdio>
#include <memory>

#include "trace/synthetic.hpp"
#include "util/error.hpp"

namespace lpm::benchx {

WorkloadRun run_solo(const sim::MachineConfig& machine,
                     const trace::WorkloadProfile& workload) {
  WorkloadRun out;
  trace::SyntheticTrace calib_trace(workload);
  out.calib = sim::measure_cpi_exe(machine, calib_trace);

  std::vector<trace::TraceSourcePtr> traces;
  traces.push_back(std::make_unique<trace::SyntheticTrace>(workload));
  sim::System system(machine, std::move(traces));
  out.run = system.run();
  util::require(out.run.completed, "bench run hit max_cycles");
  out.m = core::AppMeasurement::from_run(out.run, out.calib, 0, workload.name);
  return out;
}

void print_banner(const std::string& bench, const std::string& artefact,
                  const std::string& notes) {
  std::printf("==============================================================\n");
  std::printf("%s\n", bench.c_str());
  std::printf("Reproduces: %s\n", artefact.c_str());
  std::printf("Paper: LPM: Concurrency-driven Layered Performance Matching, ICPP'15\n");
  if (!notes.empty()) std::printf("%s\n", notes.c_str());
  std::printf("==============================================================\n");
}

std::string fmt(double v, int precision) {
  return util::AsciiTable::fmt(v, precision);
}

}  // namespace lpm::benchx
