#include "common.hpp"

#include <cstdio>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace lpm::benchx {

WorkloadRun run_solo(const sim::MachineConfig& machine,
                     const trace::WorkloadProfile& workload,
                     exp::ExperimentEngine* engine) {
  exp::ExperimentEngine& eng =
      engine != nullptr ? *engine : exp::ExperimentEngine::shared();
  const exp::SimResultPtr result =
      eng.run(exp::SimJob::solo(machine, workload, /*calibrate=*/true));
  util::require(result->run.completed, "bench run hit max_cycles");

  WorkloadRun out;
  out.run = result->run;
  out.calib = result->calib.at(0);
  out.m = core::AppMeasurement::from_run(out.run, out.calib, 0, workload.name);
  return out;
}

int guarded_main(int (*body)()) {
  try {
    return body();
  } catch (const util::LpmError& e) {
    std::fprintf(stderr, "error[%s]: %s\n", util::error_code_name(e.code()),
                 e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error[%s]: %s\n",
                 util::error_code_name(util::ErrorCode::kGeneric), e.what());
    return 1;
  }
}

void print_engine_summary(const exp::ExperimentEngine& engine,
                          double wall_seconds) {
  const double busy = engine.busy_seconds();
  std::printf(
      "engine: %u thread(s) | %llu simulation(s) executed, %llu cache hit(s) "
      "| sim time %.2fs in %.2fs wall (%.2fx parallel speedup)\n",
      engine.threads(),
      static_cast<unsigned long long>(engine.simulations_executed()),
      static_cast<unsigned long long>(engine.cache_hits()), busy, wall_seconds,
      wall_seconds > 0 ? busy / wall_seconds : 0.0);
  std::printf("%s\n", obs::summary_line().c_str());
}

}  // namespace lpm::benchx
