#include "common.hpp"

#include <algorithm>
#include <cstdio>
#include <string>

#include "model/analytic.hpp"
#include "model/backend.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace lpm::benchx {

BenchOptions BenchOptions::from_args(int argc, const char* const* argv) {
  BenchOptions opt;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    while (!arg.empty() && arg.front() == '-') arg.erase(arg.begin());
    const auto eq = arg.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = arg.substr(0, eq);
    const std::string value = arg.substr(eq + 1);
    if (key == "backend") {
      opt.backend = value;
    } else {
      util::require(false, "unknown bench flag '" + std::string(argv[i]) +
                               "' (supported: --backend={cycle,rdh,fa})");
    }
  }
  const auto& names = model::backend_names();
  util::require(
      std::find(names.begin(), names.end(), opt.backend) != names.end(),
      "unknown --backend '" + opt.backend + "' (choices: cycle, rdh, fa)");
  if (opt.backend != exp::kCycleBackend) model::register_analytic_executors();
  return opt;
}

WorkloadRun run_solo(const sim::MachineConfig& machine,
                     const trace::WorkloadProfile& workload,
                     exp::ExperimentEngine* engine,
                     const std::string& backend) {
  exp::ExperimentEngine& eng =
      engine != nullptr ? *engine : exp::ExperimentEngine::shared();
  exp::SimJob job = exp::SimJob::solo(machine, workload, /*calibrate=*/true);
  job.backend = backend;
  const exp::SimResultPtr result = eng.run(job);
  util::require(result->run.completed, "bench run hit max_cycles");

  WorkloadRun out;
  out.run = result->run;
  out.calib = result->calib.at(0);
  out.m = core::AppMeasurement::from_run(out.run, out.calib, 0, workload.name);
  return out;
}

namespace {

template <typename Body>
int guarded(Body&& body) {
  try {
    return body();
  } catch (const util::LpmError& e) {
    std::fprintf(stderr, "error[%s]: %s\n", util::error_code_name(e.code()),
                 e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error[%s]: %s\n",
                 util::error_code_name(util::ErrorCode::kGeneric), e.what());
    return 1;
  }
}

}  // namespace

int guarded_main(int (*body)()) { return guarded(body); }

int guarded_main(int argc, const char* const* argv,
                 int (*body)(const BenchOptions&)) {
  return guarded([&] { return body(BenchOptions::from_args(argc, argv)); });
}

void print_engine_summary(const exp::ExperimentEngine& engine,
                          double wall_seconds) {
  const double busy = engine.busy_seconds();
  std::printf(
      "engine: %u thread(s) | %llu simulation(s) executed, %llu cache hit(s) "
      "| sim time %.2fs in %.2fs wall (%.2fx parallel speedup)\n",
      engine.threads(),
      static_cast<unsigned long long>(engine.simulations_executed()),
      static_cast<unsigned long long>(engine.cache_hits()), busy, wall_seconds,
      wall_seconds > 0 ? busy / wall_seconds : 0.0);
  std::printf("%s\n", obs::summary_line().c_str());
}

}  // namespace lpm::benchx
