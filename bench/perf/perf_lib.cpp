#include "perf_lib.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>

#include "exp/experiment_engine.hpp"
#include "model/analytic.hpp"
#include "model/backend.hpp"
#include "sim/machine_config.hpp"
#include "sim/system.hpp"
#include "trace/lpm2.hpp"
#include "trace/mmap_trace.hpp"
#include "trace/spec_like.hpp"
#include "trace/synthetic.hpp"
#include "util/error.hpp"
#include "util/flat_json.hpp"
#include "util/table.hpp"

namespace lpm::perf {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return 1e-9 * static_cast<double>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        Clock::now() - start)
                        .count());
}

/// The machine variants of the System::run phase: the default machine plus
/// the L1-size neighbours the LPM walk visits first.
std::vector<sim::MachineConfig> sim_phase_machines(unsigned count) {
  std::vector<sim::MachineConfig> machines;
  const std::uint64_t l1_sizes[] = {32 * 1024, 16 * 1024, 64 * 1024,
                                    8 * 1024, 128 * 1024};
  for (unsigned i = 0; i < count; ++i) {
    sim::MachineConfig m = sim::MachineConfig::single_core_default();
    m.l1.size_bytes = l1_sizes[i % (sizeof(l1_sizes) / sizeof(l1_sizes[0]))];
    machines.push_back(std::move(m));
  }
  return machines;
}

/// Best-effort page-cache eviction so the cold pass actually pays the
/// read-in. fsync first (dirty pages cannot be dropped), then advise
/// DONTNEED. Both are advisory; on a runner where they do nothing the cold
/// number degrades to a warm one, which only makes the gate easier.
void evict_page_cache(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return;
  (void)::fsync(fd);
  (void)::posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
  ::close(fd);
}

/// Drains `source` to exhaustion in simulator-sized chunks, returning the
/// op count. The end-of-stream checksum verification happens inside —
/// deliberately part of the timed ingestion cost.
std::uint64_t drain_all(trace::TraceSource& source) {
  static thread_local std::vector<trace::MicroOp> chunk(1u << 14);
  std::uint64_t total = 0;
  for (;;) {
    const std::size_t got = source.fill(chunk.data(), chunk.size());
    total += got;
    if (got < chunk.size()) return total;
  }
}

}  // namespace

PerfReport run_perf_suite(const PerfOptions& opts) {
  util::require(opts.sim_configs >= 1, "PerfOptions: sim_configs must be >= 1");
  util::require(opts.engine_jobs >= 1, "PerfOptions: engine_jobs must be >= 1");
  util::require(opts.engine_submitters >= 1,
                "PerfOptions: engine_submitters must be >= 1");

  PerfReport report;
  const trace::WorkloadProfile workload =
      trace::spec_profile(trace::SpecBenchmark::kBwaves, opts.length, 17);

  // Phase 1: serial System::run throughput (the per-configuration cost the
  // LPM walk pays at every step).
  {
    const auto machines = sim_phase_machines(opts.sim_configs);
    const auto start = Clock::now();
    for (const auto& machine : machines) {
      std::vector<trace::TraceSourcePtr> traces;
      traces.push_back(std::make_unique<trace::SyntheticTrace>(workload));
      sim::System system(machine, std::move(traces));
      const sim::SystemResult run = system.run();
      report.cycles += run.cycles;
      for (const auto& core : run.cores) report.instructions += core.instructions;
    }
    report.wall_seconds_simulate = seconds_since(start);
  }

  // Phase 2: engine saturating sweep. Many distinct near-zero-cost jobs
  // (the registered null backend) pushed from several submitter threads
  // into one worker pool — all contention lands on the engine's job queue
  // and outcome bookkeeping, which is exactly what engine_jobs_per_sec
  // gates. Jobs are pre-built outside the timed region.
  {
    exp::ExperimentEngine::register_backend_executor(
        kNullBackend, [](const exp::SimJob&, const sim::RunGuard*) {
          exp::SimJobResult out;
          out.run.completed = true;
          out.run.cycles = 1;
          return out;
        });
    const unsigned hw = std::thread::hardware_concurrency();
    const unsigned pool_threads = opts.engine_threads > 0
                                      ? opts.engine_threads
                                      : std::max(hw == 0 ? 1u : hw, 4u);
    exp::ExperimentEngine engine(exp::ExperimentEngine::Options::builder()
                                     .threads(pool_threads)
                                     .cache(false)
                                     .build());

    const unsigned submitters = opts.engine_submitters;
    std::vector<std::vector<exp::SimJob>> slices(submitters);
    for (unsigned i = 0; i < opts.engine_jobs; ++i) {
      trace::WorkloadProfile w = workload;
      w.seed = 100 + i;  // distinct points, same (tiny) cost
      exp::SimJob job = exp::SimJob::solo(
          sim::MachineConfig::single_core_default(), std::move(w),
          /*calibrate=*/false, "perf-saturate");
      job.backend = kNullBackend;
      slices[i % submitters].push_back(std::move(job));
    }

    std::atomic<std::uint64_t> executed{0};
    const auto start = Clock::now();
    if (submitters == 1) {
      executed += engine.run_batch(slices[0]).size();
    } else {
      std::vector<std::thread> threads;
      threads.reserve(submitters);
      for (unsigned s = 0; s < submitters; ++s) {
        threads.emplace_back([&engine, &executed, &slices, s] {
          executed += engine.run_batch(slices[s]).size();
        });
      }
      for (auto& t : threads) t.join();
    }
    report.wall_seconds_engine = seconds_since(start);
    report.jobs = executed.load();
  }

  // Phase 3: analytic screening throughput. Distinct configurations through
  // the "rdh" backend, with the workload's one-off reuse profile and
  // CPIexe calibration warmed first — exactly the steady state of a
  // multi-fidelity sweep, where both are paid once and every configuration
  // afterwards is closed-form.
  if (opts.analytic_configs >= 1) {
    model::register_analytic_executors();
    exp::ExperimentEngine engine(exp::ExperimentEngine::Options::builder()
                                     .threads(opts.engine_threads)
                                     .cache(false)
                                     .build());

    std::vector<exp::SimJob> jobs;
    for (unsigned i = 0; i < opts.analytic_configs; ++i) {
      sim::MachineConfig m = sim::MachineConfig::single_core_default();
      m.l1.size_bytes = (4u * 1024u) << (i % 8);  // 4K .. 512K
      m.l1.mshr_entries = 4u << (i / 8 % 4);      // 4, 8, 16, 32
      m.l2.size_bytes <<= (i / 32 % 2);
      exp::SimJob job =
          exp::SimJob::solo(std::move(m), workload, /*calibrate=*/true,
                            "perf-analytic");
      job.backend = model::kRdhBackend;
      jobs.push_back(std::move(job));
    }
    (void)engine.run(jobs.front());  // warm profile + calibration

    const auto start = Clock::now();
    const auto results = engine.run_batch(jobs);
    report.wall_seconds_analytic = seconds_since(start);
    report.analytic_configs = results.size();
  }

  // Phase 4: trace ingestion through the LPM2 mmap path. Cold: evict the
  // file from the page cache, then drain with the pipelined decoder (page-in
  // overlaps decode — the configuration open_trace auto-selects for cold
  // files). Warm: a fresh direct-mode source over the now-hot file, decoding
  // in place with no thread. Both passes drain to exhaustion, so checksum
  // verification is inside the timed region.
  if (opts.trace_ops >= 1 || !opts.trace_file.empty()) {
    std::string path = opts.trace_file;
    std::string temp_path;
    if (path.empty()) {
      trace::WorkloadProfile w = workload;
      w.length = opts.trace_ops;
      trace::SyntheticTrace source(w);
      temp_path = (std::filesystem::temp_directory_path() /
                   ("lpm-perf-ingest-" + std::to_string(::getpid()) + ".lpm2"))
                      .string();
      trace::record_trace_v2(source, temp_path);
      path = temp_path;
    }
    evict_page_cache(path);
    {
      trace::MmapTrace cold(path, "perf-ingest-cold", {.pipeline = true});
      const auto start = Clock::now();
      report.trace_ops = drain_all(cold);
      report.wall_seconds_trace_cold = seconds_since(start);
    }
    {
      trace::MmapTrace warm(path, "perf-ingest-warm", {.pipeline = false});
      const auto start = Clock::now();
      (void)drain_all(warm);
      report.wall_seconds_trace_warm = seconds_since(start);
    }
    if (!temp_path.empty()) std::remove(temp_path.c_str());
  }

  const auto rate = [](double amount, double wall) {
    return wall > 0.0 ? amount / wall : 0.0;
  };
  report.sim_cycles_per_sec =
      rate(static_cast<double>(report.cycles), report.wall_seconds_simulate);
  report.instructions_per_sec = rate(static_cast<double>(report.instructions),
                                     report.wall_seconds_simulate);
  report.engine_jobs_per_sec =
      rate(static_cast<double>(report.jobs), report.wall_seconds_engine);
  report.analytic_configs_per_sec =
      rate(static_cast<double>(report.analytic_configs),
           report.wall_seconds_analytic);
  report.trace_cold_ops_per_sec = rate(static_cast<double>(report.trace_ops),
                                       report.wall_seconds_trace_cold);
  report.trace_warm_ops_per_sec = rate(static_cast<double>(report.trace_ops),
                                       report.wall_seconds_trace_warm);
  return report;
}

std::string to_json(const PerfReport& r) {
  std::ostringstream os;
  os << "{\"bench\":\"" << r.bench << "\""
     << ",\"cycles\":" << r.cycles << ",\"instructions\":" << r.instructions
     << ",\"jobs\":" << r.jobs
     << ",\"analytic_configs\":" << r.analytic_configs
     << ",\"wall_seconds_simulate\":" << util::fmt(r.wall_seconds_simulate, 6)
     << ",\"wall_seconds_engine\":" << util::fmt(r.wall_seconds_engine, 6)
     << ",\"wall_seconds_analytic\":" << util::fmt(r.wall_seconds_analytic, 6)
     << ",\"sim_cycles_per_sec\":" << util::fmt(r.sim_cycles_per_sec, 1)
     << ",\"instructions_per_sec\":" << util::fmt(r.instructions_per_sec, 1)
     << ",\"engine_jobs_per_sec\":" << util::fmt(r.engine_jobs_per_sec, 3)
     << ",\"analytic_configs_per_sec\":"
     << util::fmt(r.analytic_configs_per_sec, 1)
     << ",\"trace_ops\":" << r.trace_ops
     << ",\"wall_seconds_trace_cold\":" << util::fmt(r.wall_seconds_trace_cold, 6)
     << ",\"wall_seconds_trace_warm\":" << util::fmt(r.wall_seconds_trace_warm, 6)
     << ",\"trace_cold_ops_per_sec\":" << util::fmt(r.trace_cold_ops_per_sec, 1)
     << ",\"trace_warm_ops_per_sec\":" << util::fmt(r.trace_warm_ops_per_sec, 1)
     << "}\n";
  return os.str();
}

PerfReport parse_report(const std::string& json_text) {
  const util::FlatJson json = util::FlatJson::parse(json_text);
  PerfReport r;
  const auto need = [&json](const std::string& key) {
    const auto v = json.get_number(key);
    if (!v.has_value()) {
      throw util::LpmError("PerfReport: missing or non-numeric key '" + key +
                           "'");
    }
    return *v;
  };
  r.bench = json.get_string("bench").value_or("");
  if (r.bench.empty()) throw util::LpmError("PerfReport: missing key 'bench'");
  r.cycles = static_cast<std::uint64_t>(need("cycles"));
  r.instructions = static_cast<std::uint64_t>(need("instructions"));
  r.jobs = static_cast<std::uint64_t>(need("jobs"));
  r.wall_seconds_simulate = need("wall_seconds_simulate");
  r.wall_seconds_engine = need("wall_seconds_engine");
  r.sim_cycles_per_sec = need("sim_cycles_per_sec");
  r.instructions_per_sec = need("instructions_per_sec");
  r.engine_jobs_per_sec = need("engine_jobs_per_sec");
  // Optional — absent in reports/baselines written before the analytic
  // screening phase; 0 means "not measured" and is never gated.
  r.analytic_configs = static_cast<std::uint64_t>(
      json.get_number("analytic_configs").value_or(0.0));
  r.wall_seconds_analytic =
      json.get_number("wall_seconds_analytic").value_or(0.0);
  r.analytic_configs_per_sec =
      json.get_number("analytic_configs_per_sec").value_or(0.0);
  // Optional — absent before the trace-ingestion phase; 0 = not measured.
  r.trace_ops =
      static_cast<std::uint64_t>(json.get_number("trace_ops").value_or(0.0));
  r.wall_seconds_trace_cold =
      json.get_number("wall_seconds_trace_cold").value_or(0.0);
  r.wall_seconds_trace_warm =
      json.get_number("wall_seconds_trace_warm").value_or(0.0);
  r.trace_cold_ops_per_sec =
      json.get_number("trace_cold_ops_per_sec").value_or(0.0);
  r.trace_warm_ops_per_sec =
      json.get_number("trace_warm_ops_per_sec").value_or(0.0);
  return r;
}

PerfReport load_report(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    throw util::IoError("perf: cannot open '" + path + "'");
  }
  std::ostringstream text;
  text << in.rdbuf();
  return parse_report(text.str());
}

BaselineCheck check_against_baseline(const PerfReport& current,
                                     const PerfReport& baseline,
                                     double tolerance) {
  util::require(tolerance >= 0.0 && tolerance < 1.0,
                "perf: tolerance must be in [0, 1)");
  BaselineCheck check;
  const auto gate = [&](const char* metric, double now, double base) {
    const double floor = base * (1.0 - tolerance);
    if (now < floor) {
      std::ostringstream os;
      os << metric << " regressed: " << util::fmt(now, 1) << " < floor "
         << util::fmt(floor, 1) << " (baseline " << util::fmt(base, 1)
         << ", tolerance " << util::fmt(100.0 * tolerance, 0) << "%)";
      check.failures.push_back(os.str());
      check.ok = false;
    }
  };
  gate("sim_cycles_per_sec", current.sim_cycles_per_sec,
       baseline.sim_cycles_per_sec);
  gate("instructions_per_sec", current.instructions_per_sec,
       baseline.instructions_per_sec);
  gate("engine_jobs_per_sec", current.engine_jobs_per_sec,
       baseline.engine_jobs_per_sec);
  if (baseline.analytic_configs_per_sec > 0.0) {
    gate("analytic_configs_per_sec", current.analytic_configs_per_sec,
         baseline.analytic_configs_per_sec);
  }
  if (baseline.trace_cold_ops_per_sec > 0.0) {
    gate("trace_cold_ops_per_sec", current.trace_cold_ops_per_sec,
         baseline.trace_cold_ops_per_sec);
  }
  if (baseline.trace_warm_ops_per_sec > 0.0) {
    gate("trace_warm_ops_per_sec", current.trace_warm_ops_per_sec,
         baseline.trace_warm_ops_per_sec);
  }
  return check;
}

}  // namespace lpm::perf
