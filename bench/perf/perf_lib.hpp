// The perf-regression harness behind BENCH_simulator.json.
//
// Three throughput numbers summarize the simulator (see EXPERIMENTS.md
// "Performance tracking"):
//
//   * sim_cycles_per_sec    — simulated cycles per wall-clock second of a
//     serial System::run over the bench_lpm_convergence workload
//     (410.bwaves on the default machine plus L1 variants — the same mix
//     the LPM walk evaluates). The repo's core scaling metric: every LPMR
//     evaluation re-runs this loop.
//   * instructions_per_sec  — committed instructions per second of the
//     same runs.
//   * engine_jobs_per_sec   — distinct jobs per second through an
//     ExperimentEngine worker pool under a *saturating sweep*: many
//     near-zero-cost jobs (a registered null backend) submitted from
//     several threads at once, so the number measures the engine itself —
//     queue handoff, dispatch, dedup, ordered outcome reassembly — not the
//     simulator. This is the submit-side-contention gate for the lock-free
//     MPMC job ring (see DESIGN.md §7); before the ring landed, the same
//     sweep through the mutex+condvar queue is the "locked baseline"
//     recorded in EXPERIMENTS.md.
//   * analytic_configs_per_sec — distinct machine configurations per second
//     through the "rdh" analytic backend after its one-off profiling pass,
//     i.e. the screening rate of a multi-fidelity sweep. The headline claim
//     this gate protects: analytic screening stays orders of magnitude
//     faster than cycle simulation.
//   * trace_cold_ops_per_sec / trace_warm_ops_per_sec — recorded-trace
//     ingestion rate through the LPM2 mmap path (src/trace/mmap_trace.hpp):
//     cold is a full drain after evicting the file from the page cache with
//     the pipelined decoder engaged, warm a direct in-place decode of the
//     now-hot file. Record-once/replay-many is only a win while replay
//     stays far above the simulator's op consumption rate; these gates
//     keep it that way.
//
// run_perf_suite() measures, to_json()/parse_report() round-trip the flat
// JSON report, and check_against_baseline() implements the CI gate: a
// metric regresses when it falls below baseline * (1 - tolerance). Faster
// is never a failure — baselines are raised intentionally (see
// EXPERIMENTS.md), not by CI.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lpm::perf {

/// Backend name the saturating sweep registers: a constant-result executor
/// whose cost is a function call, so engine_jobs_per_sec isolates the
/// engine's own per-job overhead. Registered process-wide on first use of
/// run_perf_suite; harmless to other phases (nothing else submits it).
inline constexpr const char* kNullBackend = "perf-null";

struct PerfOptions {
  /// Micro-ops per workload replay. The default matches
  /// bench_lpm_convergence's trace length; tests shrink it.
  std::uint64_t length = 400'000;
  /// Simulated machine variants in the System::run phase (>= 1).
  unsigned sim_configs = 3;
  /// Distinct jobs in the engine saturating-sweep phase (>= 1). Each is
  /// near-free to execute, so the phase times queue + dispatch + outcome
  /// bookkeeping per job.
  unsigned engine_jobs = 8192;
  /// Concurrent submitter threads in the saturating sweep (>= 1); each
  /// submits an equal slice of `engine_jobs` as its own batch.
  unsigned engine_submitters = 4;
  /// Worker threads for the engine phases. 0 = max(hardware, 4): the
  /// sweep must exercise a real pool (and real contention) even on a
  /// single-core CI runner.
  unsigned engine_threads = 0;
  /// Distinct configurations in the analytic-screening phase.
  unsigned analytic_configs = 64;
  /// Micro-ops in the trace-ingestion phase (0 disables the phase). When
  /// `trace_file` is empty the phase records this many ops of the bench
  /// workload to a temporary LPM2 file first.
  std::uint64_t trace_ops = 2'000'000;
  /// Pre-recorded trace to ingest instead of recording a temporary one
  /// (the CI smoke job points this at an lpm_trace-recorded profile).
  std::string trace_file;
};

struct PerfReport {
  std::string bench = "lpm_convergence";
  std::uint64_t cycles = 0;        ///< simulated cycles, System::run phase
  std::uint64_t instructions = 0;  ///< committed instructions, same phase
  std::uint64_t jobs = 0;          ///< jobs executed, engine phase
  std::uint64_t analytic_configs = 0;  ///< configs evaluated, analytic phase
  std::uint64_t trace_ops = 0;  ///< ops ingested per pass, trace phase
  double wall_seconds_simulate = 0.0;
  double wall_seconds_engine = 0.0;
  double wall_seconds_analytic = 0.0;
  double wall_seconds_trace_cold = 0.0;
  double wall_seconds_trace_warm = 0.0;
  double sim_cycles_per_sec = 0.0;
  double instructions_per_sec = 0.0;
  double engine_jobs_per_sec = 0.0;
  double analytic_configs_per_sec = 0.0;
  /// Cold pass: pages evicted (posix_fadvise DONTNEED), pipelined decode —
  /// read-ahead + decode overlap is what this number sells.
  double trace_cold_ops_per_sec = 0.0;
  /// Warm pass: same source after reset(), page cache hot, direct decode.
  double trace_warm_ops_per_sec = 0.0;
};

/// Runs both measurement phases. Deterministic in its simulated work;
/// wall-clock numbers are machine-dependent by nature.
[[nodiscard]] PerfReport run_perf_suite(const PerfOptions& opts = {});

/// The flat-JSON BENCH_simulator.json encoding of a report.
[[nodiscard]] std::string to_json(const PerfReport& report);

/// Inverse of to_json (also reads committed baselines). Throws
/// util::LpmError on malformed input or missing required keys.
[[nodiscard]] PerfReport parse_report(const std::string& json_text);

/// Reads and parses a report/baseline file. Throws util::IoError /
/// util::LpmError.
[[nodiscard]] PerfReport load_report(const std::string& path);

struct BaselineCheck {
  bool ok = true;
  /// One human-readable line per regressed metric.
  std::vector<std::string> failures;
};

/// Compares the throughput metrics against a baseline: metric m fails when
/// m < baseline.m * (1 - tolerance). tolerance 0.30 absorbs CI-runner
/// noise; exceeding the baseline never fails. analytic_configs_per_sec is
/// gated only when the baseline carries it (> 0), so baselines written
/// before the analytic phase keep working.
[[nodiscard]] BaselineCheck check_against_baseline(const PerfReport& current,
                                                   const PerfReport& baseline,
                                                   double tolerance);

}  // namespace lpm::perf
