// Emits BENCH_simulator.json (the simulator's throughput trajectory) and
// optionally gates against a committed baseline — the CI perf-smoke entry
// point. See EXPERIMENTS.md "Performance tracking".
//
//   $ ./perf_simulator [out=BENCH_simulator.json] [baseline=...] \
//                      [tolerance=0.30] [length=400000] [jobs=8192] \
//                      [submitters=4] [threads=0] [analytic=64] \
//                      [trace_ops=2000000] [trace_file=...]
#include <cstdio>
#include <fstream>

#include "perf_lib.hpp"
#include "util/config.hpp"
#include "util/error.hpp"

int main(int argc, char** argv) {
  using namespace lpm;
  try {
    const auto args = util::KvConfig::from_args(argc, argv);
    const std::string out_path = args.get_or("out", "BENCH_simulator.json");
    const std::string baseline_path = args.get_or("baseline", "");
    const double tolerance = args.get_double_or("tolerance", 0.30);

    perf::PerfOptions opts;
    opts.length = args.get_uint_or("length", opts.length);
    opts.engine_jobs =
        static_cast<unsigned>(args.get_uint_or("jobs", opts.engine_jobs));
    opts.engine_submitters = static_cast<unsigned>(
        args.get_uint_or("submitters", opts.engine_submitters));
    opts.engine_threads =
        static_cast<unsigned>(args.get_uint_or("threads", opts.engine_threads));
    opts.analytic_configs = static_cast<unsigned>(
        args.get_uint_or("analytic", opts.analytic_configs));
    opts.trace_ops = args.get_uint_or("trace_ops", opts.trace_ops);
    opts.trace_file = args.get_or("trace_file", "");

    const perf::PerfReport report = perf::run_perf_suite(opts);
    const std::string json = perf::to_json(report);

    std::ofstream out(out_path);
    if (!out.is_open()) {
      throw util::IoError("perf: cannot write '" + out_path + "'");
    }
    out << json;
    out.close();

    std::printf("wrote %s\n%s", out_path.c_str(), json.c_str());
    std::printf("sim cycles/sec      : %.3e\n", report.sim_cycles_per_sec);
    std::printf("instructions/sec    : %.3e\n", report.instructions_per_sec);
    std::printf("engine jobs/sec     : %.3f\n", report.engine_jobs_per_sec);
    std::printf("analytic configs/sec: %.1f\n", report.analytic_configs_per_sec);
    std::printf("trace cold ops/sec  : %.3e\n", report.trace_cold_ops_per_sec);
    std::printf("trace warm ops/sec  : %.3e\n", report.trace_warm_ops_per_sec);

    if (!baseline_path.empty()) {
      const perf::PerfReport baseline = perf::load_report(baseline_path);
      const perf::BaselineCheck check =
          perf::check_against_baseline(report, baseline, tolerance);
      if (!check.ok) {
        for (const auto& failure : check.failures) {
          std::fprintf(stderr, "PERF REGRESSION: %s\n", failure.c_str());
        }
        return 1;
      }
      std::printf("baseline check      : OK (>= %.0f%% of %s)\n",
                  100.0 * (1.0 - tolerance), baseline_path.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "perf_simulator: %s\n", e.what());
    return 2;
  }
}
