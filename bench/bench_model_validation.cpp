// Validates the paper's analytical identities on full simulator runs:
//   Eq. 2 == Eq. 3 (C-AMAT parameter decomposition vs APC) - exact;
//   Eq. 7 (stall = fmem * C-AMAT1 * (1 - overlapRatio)) - exact;
//   Eq. 12 (stall through LPMR1) - identical to Eq. 7;
//   Eq. 4 (layered recursion) and Eq. 13 (stall through LPMR2) -
//     approximate in a real hierarchy (queueing/MSHR waits);
//   Eq. 5 (CPI decomposition) - approximate (busy CPI vs CPIexe).
#include <cstdio>

#include "camat/metrics.hpp"
#include "common.hpp"
#include "trace/spec_like.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

static int run_bench() {
  using namespace lpm;
  util::print_banner("bench_model_validation",
                       "Eqs. 2/3/4/5/7/12/13 (model-vs-measured errors)");

  const auto machine = sim::MachineConfig::single_core_default();
  util::AsciiTable t({"application", "Eq2-Eq3 err", "Eq7 err", "Eq12 err",
                      "Eq4 err", "Eq13 err", "Eq5 err"});
  util::StreamingStats e4;
  util::StreamingStats e13;

  for (const auto b : trace::all_spec_benchmarks()) {
    const auto wl = trace::spec_profile(b, 120'000, 23);
    const auto r = benchx::run_solo(machine, wl);
    const auto& l1 = r.m.l1;

    const double eq23 = util::relative_error(l1.camat_eq2(), l1.camat());
    const double eq7 =
        util::relative_error(core::stall_eq7(r.m), r.m.measured_stall_per_instr);
    const double eq12 =
        util::relative_error(core::stall_eq12(r.m), core::stall_eq7(r.m));
    const double eq4 = util::relative_error(
        camat::camat_recursion_eq4(l1.H(), l1.CH(), l1.pMR(), l1.eta1(),
                                   r.m.camat2_per_miss()),
        l1.camat());
    const double eq13 =
        util::relative_error(core::stall_eq13(r.m), core::stall_eq7(r.m));
    const double eq5 = util::relative_error(
        r.m.cpi_exe + r.m.measured_stall_per_instr, r.m.measured_cpi);
    e4.add(eq4);
    e13.add(eq13);

    t.add_row({wl.name, util::fmt(100 * eq23, 4) + "%",
               util::fmt(100 * eq7, 4) + "%", util::fmt(100 * eq12, 4) + "%",
               util::fmt(100 * eq4, 1) + "%", util::fmt(100 * eq13, 1) + "%",
               util::fmt(100 * eq5, 1) + "%"});
    std::printf("validated %s\n", wl.name.c_str());
  }
  std::printf("\n%s\n", t.to_string().c_str());
  std::printf(
      "Eq2/3, Eq7 and Eq12 are identities of the measurement definitions\n"
      "(errors ~0). Eq4/Eq13 are models: mean error %.1f%% / %.1f%% (max\n"
      "%.1f%% / %.1f%%), driven by MSHR waits and L2 queueing that the\n"
      "closed forms abstract away.\n",
      100 * e4.mean(), 100 * e13.mean(), 100 * e4.max(), 100 * e13.max());
  return 0;
}

int main() { return lpm::benchx::guarded_main(&run_bench); }
