// Regenerates Fig. 1 and the §II worked example: the five-access timeline,
// the analyzer's phase accounting, and every quoted number (C-AMAT = 1.6,
// AMAT = 3.8, C_H = 5/2, C_M = 1, pAMP = 2, pMR = 1/5).
#include <cstdio>

#include "camat/fig1.hpp"
#include "common.hpp"
#include "util/table.hpp"

static int run_bench() {
  using namespace lpm;
  util::print_banner("bench_fig1_camat_demo",
                       "Fig. 1 + the Section II worked example");

  camat::Analyzer analyzer("fig1");
  const camat::CamatMetrics m = camat::replay_fig1(analyzer);

  std::printf(
      "Timeline (5 accesses, 3-cycle hit phases; A3/A4 miss):\n"
      "  cycle:       1  2  3  4  5  6  7  8\n"
      "  A1 [hit]     H  H  H\n"
      "  A2 [hit]     H  H  H\n"
      "  A3 [miss]          H  H  H  m  P  P   (P = pure miss cycle)\n"
      "  A4 [miss]          H  H  H  m          (hidden by A5's hits)\n"
      "  A5 [hit]              H  H  H\n\n");

  util::AsciiTable t({"quantity", "paper", "measured"});
  t.add_row({"C-AMAT (cycles/access)", "1.6", util::fmt(m.camat(), 3)});
  t.add_row({"AMAT (cycles/access)", "3.8", util::fmt(m.amat(), 3)});
  t.add_row({"H", "3", util::fmt(m.H(), 3)});
  t.add_row({"C_H", "2.5 (5/2)", util::fmt(m.CH(), 3)});
  t.add_row({"pMR", "0.2 (1/5)", util::fmt(m.pMR(), 3)});
  t.add_row({"pAMP", "2", util::fmt(m.pAMP(), 3)});
  t.add_row({"C_M", "1", util::fmt(m.CM(), 3)});
  t.add_row({"MR", "0.4", util::fmt(m.MR(), 3)});
  t.add_row({"AMP", "2", util::fmt(m.AMP(), 3)});
  t.add_row({"hit phases (conc 2,4,3,1)", "4",
             std::to_string(analyzer.hit_phases())});
  t.add_row({"pure miss phases", "1", std::to_string(analyzer.pure_miss_phases())});
  t.add_row({"Eq.2 == Eq.3 (C-AMAT identity)", "exact",
             util::fmt(m.camat_eq2(), 6) + " vs " + util::fmt(m.camat(), 6)});
  std::printf("%s\n", t.to_string().c_str());

  std::printf("Concurrency gain (AMAT / C-AMAT): %.3fx -- \"concurrency has\n"
              "doubled memory performance\" in the paper's example.\n",
              m.amat() / m.camat());
  return 0;
}

int main() { return lpm::benchx::guarded_main(&run_bench); }
