file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_hsp_scheduling.dir/bench_fig8_hsp_scheduling.cpp.o"
  "CMakeFiles/bench_fig8_hsp_scheduling.dir/bench_fig8_hsp_scheduling.cpp.o.d"
  "bench_fig8_hsp_scheduling"
  "bench_fig8_hsp_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_hsp_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
