# Empty compiler generated dependencies file for bench_fig8_hsp_scheduling.
# This may be replaced when dependencies are built.
