# Empty dependencies file for bench_table1_lpmr_configs.
# This may be replaced when dependencies are built.
