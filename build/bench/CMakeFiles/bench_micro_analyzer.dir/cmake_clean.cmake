file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_analyzer.dir/bench_micro_analyzer.cpp.o"
  "CMakeFiles/bench_micro_analyzer.dir/bench_micro_analyzer.cpp.o.d"
  "bench_micro_analyzer"
  "bench_micro_analyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
