# Empty compiler generated dependencies file for bench_stall_reduction.
# This may be replaced when dependencies are built.
