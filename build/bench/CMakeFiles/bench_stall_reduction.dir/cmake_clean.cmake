file(REMOVE_RECURSE
  "CMakeFiles/bench_stall_reduction.dir/bench_stall_reduction.cpp.o"
  "CMakeFiles/bench_stall_reduction.dir/bench_stall_reduction.cpp.o.d"
  "bench_stall_reduction"
  "bench_stall_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stall_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
