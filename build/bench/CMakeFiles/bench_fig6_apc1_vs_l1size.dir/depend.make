# Empty dependencies file for bench_fig6_apc1_vs_l1size.
# This may be replaced when dependencies are built.
