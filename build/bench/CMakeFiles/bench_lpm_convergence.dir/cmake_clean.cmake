file(REMOVE_RECURSE
  "CMakeFiles/bench_lpm_convergence.dir/bench_lpm_convergence.cpp.o"
  "CMakeFiles/bench_lpm_convergence.dir/bench_lpm_convergence.cpp.o.d"
  "bench_lpm_convergence"
  "bench_lpm_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lpm_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
