# Empty compiler generated dependencies file for bench_lpm_convergence.
# This may be replaced when dependencies are built.
