# Empty compiler generated dependencies file for bench_fig7_apc2_vs_l1size.
# This may be replaced when dependencies are built.
