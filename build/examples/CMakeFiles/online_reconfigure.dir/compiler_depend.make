# Empty compiler generated dependencies file for online_reconfigure.
# This may be replaced when dependencies are built.
