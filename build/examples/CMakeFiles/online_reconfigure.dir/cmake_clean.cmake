file(REMOVE_RECURSE
  "CMakeFiles/online_reconfigure.dir/online_reconfigure.cpp.o"
  "CMakeFiles/online_reconfigure.dir/online_reconfigure.cpp.o.d"
  "online_reconfigure"
  "online_reconfigure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_reconfigure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
