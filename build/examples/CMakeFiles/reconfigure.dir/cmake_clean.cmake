file(REMOVE_RECURSE
  "CMakeFiles/reconfigure.dir/reconfigure.cpp.o"
  "CMakeFiles/reconfigure.dir/reconfigure.cpp.o.d"
  "reconfigure"
  "reconfigure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reconfigure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
