# Empty compiler generated dependencies file for nuca_schedule.
# This may be replaced when dependencies are built.
