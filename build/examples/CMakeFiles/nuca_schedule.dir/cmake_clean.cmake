file(REMOVE_RECURSE
  "CMakeFiles/nuca_schedule.dir/nuca_schedule.cpp.o"
  "CMakeFiles/nuca_schedule.dir/nuca_schedule.cpp.o.d"
  "nuca_schedule"
  "nuca_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nuca_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
