file(REMOVE_RECURSE
  "liblpm_trace.a"
)
