# Empty dependencies file for lpm_trace.
# This may be replaced when dependencies are built.
