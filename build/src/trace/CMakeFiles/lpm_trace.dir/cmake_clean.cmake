file(REMOVE_RECURSE
  "CMakeFiles/lpm_trace.dir/spec_like.cpp.o"
  "CMakeFiles/lpm_trace.dir/spec_like.cpp.o.d"
  "CMakeFiles/lpm_trace.dir/synthetic.cpp.o"
  "CMakeFiles/lpm_trace.dir/synthetic.cpp.o.d"
  "CMakeFiles/lpm_trace.dir/trace_file.cpp.o"
  "CMakeFiles/lpm_trace.dir/trace_file.cpp.o.d"
  "liblpm_trace.a"
  "liblpm_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lpm_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
