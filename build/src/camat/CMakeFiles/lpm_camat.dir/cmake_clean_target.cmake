file(REMOVE_RECURSE
  "liblpm_camat.a"
)
