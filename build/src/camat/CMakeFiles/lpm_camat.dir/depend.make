# Empty dependencies file for lpm_camat.
# This may be replaced when dependencies are built.
