
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/camat/analyzer.cpp" "src/camat/CMakeFiles/lpm_camat.dir/analyzer.cpp.o" "gcc" "src/camat/CMakeFiles/lpm_camat.dir/analyzer.cpp.o.d"
  "/root/repo/src/camat/fig1.cpp" "src/camat/CMakeFiles/lpm_camat.dir/fig1.cpp.o" "gcc" "src/camat/CMakeFiles/lpm_camat.dir/fig1.cpp.o.d"
  "/root/repo/src/camat/metrics.cpp" "src/camat/CMakeFiles/lpm_camat.dir/metrics.cpp.o" "gcc" "src/camat/CMakeFiles/lpm_camat.dir/metrics.cpp.o.d"
  "/root/repo/src/camat/whatif.cpp" "src/camat/CMakeFiles/lpm_camat.dir/whatif.cpp.o" "gcc" "src/camat/CMakeFiles/lpm_camat.dir/whatif.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/lpm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lpm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
