file(REMOVE_RECURSE
  "CMakeFiles/lpm_camat.dir/analyzer.cpp.o"
  "CMakeFiles/lpm_camat.dir/analyzer.cpp.o.d"
  "CMakeFiles/lpm_camat.dir/fig1.cpp.o"
  "CMakeFiles/lpm_camat.dir/fig1.cpp.o.d"
  "CMakeFiles/lpm_camat.dir/metrics.cpp.o"
  "CMakeFiles/lpm_camat.dir/metrics.cpp.o.d"
  "CMakeFiles/lpm_camat.dir/whatif.cpp.o"
  "CMakeFiles/lpm_camat.dir/whatif.cpp.o.d"
  "liblpm_camat.a"
  "liblpm_camat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lpm_camat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
