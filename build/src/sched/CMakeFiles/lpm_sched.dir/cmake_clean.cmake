file(REMOVE_RECURSE
  "CMakeFiles/lpm_sched.dir/evaluate.cpp.o"
  "CMakeFiles/lpm_sched.dir/evaluate.cpp.o.d"
  "CMakeFiles/lpm_sched.dir/hsp.cpp.o"
  "CMakeFiles/lpm_sched.dir/hsp.cpp.o.d"
  "CMakeFiles/lpm_sched.dir/profile.cpp.o"
  "CMakeFiles/lpm_sched.dir/profile.cpp.o.d"
  "CMakeFiles/lpm_sched.dir/scheduler.cpp.o"
  "CMakeFiles/lpm_sched.dir/scheduler.cpp.o.d"
  "liblpm_sched.a"
  "liblpm_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lpm_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
