file(REMOVE_RECURSE
  "liblpm_sched.a"
)
