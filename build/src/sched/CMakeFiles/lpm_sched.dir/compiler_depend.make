# Empty compiler generated dependencies file for lpm_sched.
# This may be replaced when dependencies are built.
