
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/evaluate.cpp" "src/sched/CMakeFiles/lpm_sched.dir/evaluate.cpp.o" "gcc" "src/sched/CMakeFiles/lpm_sched.dir/evaluate.cpp.o.d"
  "/root/repo/src/sched/hsp.cpp" "src/sched/CMakeFiles/lpm_sched.dir/hsp.cpp.o" "gcc" "src/sched/CMakeFiles/lpm_sched.dir/hsp.cpp.o.d"
  "/root/repo/src/sched/profile.cpp" "src/sched/CMakeFiles/lpm_sched.dir/profile.cpp.o" "gcc" "src/sched/CMakeFiles/lpm_sched.dir/profile.cpp.o.d"
  "/root/repo/src/sched/scheduler.cpp" "src/sched/CMakeFiles/lpm_sched.dir/scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/lpm_sched.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lpm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lpm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/lpm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lpm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/lpm_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/camat/CMakeFiles/lpm_camat.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/lpm_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
