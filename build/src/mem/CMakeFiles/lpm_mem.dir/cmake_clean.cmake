file(REMOVE_RECURSE
  "CMakeFiles/lpm_mem.dir/cache.cpp.o"
  "CMakeFiles/lpm_mem.dir/cache.cpp.o.d"
  "CMakeFiles/lpm_mem.dir/dram.cpp.o"
  "CMakeFiles/lpm_mem.dir/dram.cpp.o.d"
  "CMakeFiles/lpm_mem.dir/mshr.cpp.o"
  "CMakeFiles/lpm_mem.dir/mshr.cpp.o.d"
  "CMakeFiles/lpm_mem.dir/replacement.cpp.o"
  "CMakeFiles/lpm_mem.dir/replacement.cpp.o.d"
  "liblpm_mem.a"
  "liblpm_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lpm_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
