file(REMOVE_RECURSE
  "liblpm_mem.a"
)
