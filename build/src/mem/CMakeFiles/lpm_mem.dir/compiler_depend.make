# Empty compiler generated dependencies file for lpm_mem.
# This may be replaced when dependencies are built.
