file(REMOVE_RECURSE
  "liblpm_core.a"
)
