# Empty dependencies file for lpm_core.
# This may be replaced when dependencies are built.
