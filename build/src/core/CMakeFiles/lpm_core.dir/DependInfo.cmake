
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/design_space.cpp" "src/core/CMakeFiles/lpm_core.dir/design_space.cpp.o" "gcc" "src/core/CMakeFiles/lpm_core.dir/design_space.cpp.o.d"
  "/root/repo/src/core/diagnosis.cpp" "src/core/CMakeFiles/lpm_core.dir/diagnosis.cpp.o" "gcc" "src/core/CMakeFiles/lpm_core.dir/diagnosis.cpp.o.d"
  "/root/repo/src/core/interval.cpp" "src/core/CMakeFiles/lpm_core.dir/interval.cpp.o" "gcc" "src/core/CMakeFiles/lpm_core.dir/interval.cpp.o.d"
  "/root/repo/src/core/lpm_algorithm.cpp" "src/core/CMakeFiles/lpm_core.dir/lpm_algorithm.cpp.o" "gcc" "src/core/CMakeFiles/lpm_core.dir/lpm_algorithm.cpp.o.d"
  "/root/repo/src/core/lpm_model.cpp" "src/core/CMakeFiles/lpm_core.dir/lpm_model.cpp.o" "gcc" "src/core/CMakeFiles/lpm_core.dir/lpm_model.cpp.o.d"
  "/root/repo/src/core/online_controller.cpp" "src/core/CMakeFiles/lpm_core.dir/online_controller.cpp.o" "gcc" "src/core/CMakeFiles/lpm_core.dir/online_controller.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/lpm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/camat/CMakeFiles/lpm_camat.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/lpm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lpm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/lpm_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/lpm_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
