file(REMOVE_RECURSE
  "CMakeFiles/lpm_core.dir/design_space.cpp.o"
  "CMakeFiles/lpm_core.dir/design_space.cpp.o.d"
  "CMakeFiles/lpm_core.dir/diagnosis.cpp.o"
  "CMakeFiles/lpm_core.dir/diagnosis.cpp.o.d"
  "CMakeFiles/lpm_core.dir/interval.cpp.o"
  "CMakeFiles/lpm_core.dir/interval.cpp.o.d"
  "CMakeFiles/lpm_core.dir/lpm_algorithm.cpp.o"
  "CMakeFiles/lpm_core.dir/lpm_algorithm.cpp.o.d"
  "CMakeFiles/lpm_core.dir/lpm_model.cpp.o"
  "CMakeFiles/lpm_core.dir/lpm_model.cpp.o.d"
  "CMakeFiles/lpm_core.dir/online_controller.cpp.o"
  "CMakeFiles/lpm_core.dir/online_controller.cpp.o.d"
  "liblpm_core.a"
  "liblpm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lpm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
