# Empty compiler generated dependencies file for lpm_cpu.
# This may be replaced when dependencies are built.
