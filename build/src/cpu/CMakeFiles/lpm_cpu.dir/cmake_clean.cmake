file(REMOVE_RECURSE
  "CMakeFiles/lpm_cpu.dir/ooo_core.cpp.o"
  "CMakeFiles/lpm_cpu.dir/ooo_core.cpp.o.d"
  "liblpm_cpu.a"
  "liblpm_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lpm_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
