file(REMOVE_RECURSE
  "liblpm_cpu.a"
)
