# Empty dependencies file for lpm_sim.
# This may be replaced when dependencies are built.
