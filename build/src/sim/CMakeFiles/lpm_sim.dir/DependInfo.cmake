
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/machine_config.cpp" "src/sim/CMakeFiles/lpm_sim.dir/machine_config.cpp.o" "gcc" "src/sim/CMakeFiles/lpm_sim.dir/machine_config.cpp.o.d"
  "/root/repo/src/sim/system.cpp" "src/sim/CMakeFiles/lpm_sim.dir/system.cpp.o" "gcc" "src/sim/CMakeFiles/lpm_sim.dir/system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cpu/CMakeFiles/lpm_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/lpm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/camat/CMakeFiles/lpm_camat.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/lpm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lpm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
