file(REMOVE_RECURSE
  "liblpm_sim.a"
)
