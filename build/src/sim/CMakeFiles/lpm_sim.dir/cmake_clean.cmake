file(REMOVE_RECURSE
  "CMakeFiles/lpm_sim.dir/machine_config.cpp.o"
  "CMakeFiles/lpm_sim.dir/machine_config.cpp.o.d"
  "CMakeFiles/lpm_sim.dir/system.cpp.o"
  "CMakeFiles/lpm_sim.dir/system.cpp.o.d"
  "liblpm_sim.a"
  "liblpm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lpm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
