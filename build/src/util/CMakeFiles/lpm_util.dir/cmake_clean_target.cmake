file(REMOVE_RECURSE
  "liblpm_util.a"
)
