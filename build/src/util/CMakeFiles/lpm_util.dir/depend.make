# Empty dependencies file for lpm_util.
# This may be replaced when dependencies are built.
