file(REMOVE_RECURSE
  "CMakeFiles/lpm_util.dir/config.cpp.o"
  "CMakeFiles/lpm_util.dir/config.cpp.o.d"
  "CMakeFiles/lpm_util.dir/log.cpp.o"
  "CMakeFiles/lpm_util.dir/log.cpp.o.d"
  "CMakeFiles/lpm_util.dir/rng.cpp.o"
  "CMakeFiles/lpm_util.dir/rng.cpp.o.d"
  "CMakeFiles/lpm_util.dir/stats.cpp.o"
  "CMakeFiles/lpm_util.dir/stats.cpp.o.d"
  "CMakeFiles/lpm_util.dir/table.cpp.o"
  "CMakeFiles/lpm_util.dir/table.cpp.o.d"
  "liblpm_util.a"
  "liblpm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lpm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
