file(REMOVE_RECURSE
  "CMakeFiles/test_mem.dir/mem/cache_property_test.cpp.o"
  "CMakeFiles/test_mem.dir/mem/cache_property_test.cpp.o.d"
  "CMakeFiles/test_mem.dir/mem/cache_test.cpp.o"
  "CMakeFiles/test_mem.dir/mem/cache_test.cpp.o.d"
  "CMakeFiles/test_mem.dir/mem/dram_property_test.cpp.o"
  "CMakeFiles/test_mem.dir/mem/dram_property_test.cpp.o.d"
  "CMakeFiles/test_mem.dir/mem/dram_test.cpp.o"
  "CMakeFiles/test_mem.dir/mem/dram_test.cpp.o.d"
  "CMakeFiles/test_mem.dir/mem/mshr_test.cpp.o"
  "CMakeFiles/test_mem.dir/mem/mshr_test.cpp.o.d"
  "CMakeFiles/test_mem.dir/mem/partition_test.cpp.o"
  "CMakeFiles/test_mem.dir/mem/partition_test.cpp.o.d"
  "CMakeFiles/test_mem.dir/mem/prefetch_test.cpp.o"
  "CMakeFiles/test_mem.dir/mem/prefetch_test.cpp.o.d"
  "CMakeFiles/test_mem.dir/mem/replacement_test.cpp.o"
  "CMakeFiles/test_mem.dir/mem/replacement_test.cpp.o.d"
  "test_mem"
  "test_mem.pdb"
  "test_mem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
