file(REMOVE_RECURSE
  "CMakeFiles/test_camat.dir/camat/analyzer_test.cpp.o"
  "CMakeFiles/test_camat.dir/camat/analyzer_test.cpp.o.d"
  "CMakeFiles/test_camat.dir/camat/fig1_test.cpp.o"
  "CMakeFiles/test_camat.dir/camat/fig1_test.cpp.o.d"
  "CMakeFiles/test_camat.dir/camat/metrics_test.cpp.o"
  "CMakeFiles/test_camat.dir/camat/metrics_test.cpp.o.d"
  "CMakeFiles/test_camat.dir/camat/whatif_test.cpp.o"
  "CMakeFiles/test_camat.dir/camat/whatif_test.cpp.o.d"
  "test_camat"
  "test_camat.pdb"
  "test_camat[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_camat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
