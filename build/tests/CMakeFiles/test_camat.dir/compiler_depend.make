# Empty compiler generated dependencies file for test_camat.
# This may be replaced when dependencies are built.
