
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/design_space_test.cpp" "tests/CMakeFiles/test_core.dir/core/design_space_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/design_space_test.cpp.o.d"
  "/root/repo/tests/core/diagnosis_test.cpp" "tests/CMakeFiles/test_core.dir/core/diagnosis_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/diagnosis_test.cpp.o.d"
  "/root/repo/tests/core/interval_test.cpp" "tests/CMakeFiles/test_core.dir/core/interval_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/interval_test.cpp.o.d"
  "/root/repo/tests/core/lpm_algorithm_test.cpp" "tests/CMakeFiles/test_core.dir/core/lpm_algorithm_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/lpm_algorithm_test.cpp.o.d"
  "/root/repo/tests/core/lpm_model_test.cpp" "tests/CMakeFiles/test_core.dir/core/lpm_model_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/lpm_model_test.cpp.o.d"
  "/root/repo/tests/core/online_controller_test.cpp" "tests/CMakeFiles/test_core.dir/core/online_controller_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/online_controller_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/lpm_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lpm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lpm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/camat/CMakeFiles/lpm_camat.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/lpm_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/lpm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/lpm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lpm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
