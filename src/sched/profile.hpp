// Per-application profiling across L1 sizes (Case Study II, Figs. 6-7).
//
// Each application runs solo on a single-core machine whose private L1 is
// swept over the NUCA sizes; the profiler records APC1/APC2, LPMR1/LPMR2
// and IPC for every size. NUCA-SA consumes these profiles; the Fig. 6/7
// benches print them.
#pragma once

#include <string>
#include <vector>

#include "core/lpm_model.hpp"
#include "exp/experiment_engine.hpp"
#include "sim/machine_config.hpp"
#include "trace/workload_profile.hpp"

namespace lpm::sched {

struct SizePoint {
  std::uint64_t l1_size_bytes = 0;
  /// APC here follows the figures' usage: accesses delivered per *elapsed*
  /// cycle, i.e. layer throughput seen by the program. (The strict
  /// per-active-cycle APC of Eq. 3 remains available as
  /// measurement.lX.apc().)
  double apc1 = 0.0;   ///< Fig. 6 series: L1 accesses per cycle
  double apc2 = 0.0;   ///< Fig. 7 series: L2 accesses per cycle (bandwidth demand)
  double ipc = 0.0;    ///< solo IPC on this L1 size
  double lpmr1 = 0.0;
  double lpmr2 = 0.0;
  core::AppMeasurement measurement;
};

struct AppProfile {
  std::string name;
  trace::WorkloadProfile workload;
  double cpi_exe = 1.0;
  double fmem = 0.0;
  std::vector<SizePoint> by_size;  ///< ascending L1 size

  [[nodiscard]] const SizePoint& at_size(std::uint64_t l1_size_bytes) const;
};

class Profiler {
 public:
  /// `machine` supplies the core / L2 / DRAM configuration (Fig. 5 CMP);
  /// profiling runs use its single-core equivalent so solo IPC matches the
  /// resources one core sees. `engine` = nullptr uses the shared engine.
  explicit Profiler(sim::MachineConfig machine,
                    exp::ExperimentEngine* engine = nullptr);

  /// Profiles one application over the given ascending L1 sizes (one
  /// engine batch: the size sweep simulates concurrently).
  [[nodiscard]] AppProfile profile(const trace::WorkloadProfile& workload,
                                   const std::vector<std::uint64_t>& l1_sizes) const;

  /// Profiles many applications in a single engine batch covering every
  /// (application, L1 size) point — the Fig. 6/7/8 sweep shape.
  [[nodiscard]] std::vector<AppProfile> profile_many(
      const std::vector<trace::WorkloadProfile>& workloads,
      const std::vector<std::uint64_t>& l1_sizes) const;

 private:
  sim::MachineConfig machine_;
  exp::ExperimentEngine* engine_;  ///< non-owning; nullptr = shared engine
};

}  // namespace lpm::sched
