// Schedulers for the heterogeneous-L1 CMP (Case Study II).
//
// A schedule assigns each of N applications to one of N cores. Random and
// Round-Robin are the baselines the paper compares against; NUCA-SA is the
// LPM-guided two-fold scheduler: first satisfy each application's LPMR1
// (pick the smallest L1 that matches its request rate), then break ties to
// minimize shared-L2 demand (APC2), in polynomial time over an assignment
// space of 16!/(4!)^4 = 63,063,000 placements.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sched/profile.hpp"
#include "util/rng.hpp"

namespace lpm::sched {

/// schedule[i] = core index running application i.
using Schedule = std::vector<std::size_t>;

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  /// `core_l1_sizes[c]` is the private L1 size of core c.
  [[nodiscard]] virtual Schedule assign(
      const std::vector<AppProfile>& apps,
      const std::vector<std::uint64_t>& core_l1_sizes) = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Uniform random permutation (seeded, reproducible).
class RandomScheduler final : public Scheduler {
 public:
  explicit RandomScheduler(std::uint64_t seed) : rng_(seed) {}
  Schedule assign(const std::vector<AppProfile>& apps,
                  const std::vector<std::uint64_t>& core_l1_sizes) override;
  [[nodiscard]] std::string name() const override { return "Random"; }

 private:
  util::Rng rng_;
};

/// Application i runs on core i.
class RoundRobinScheduler final : public Scheduler {
 public:
  Schedule assign(const std::vector<AppProfile>& apps,
                  const std::vector<std::uint64_t>& core_l1_sizes) override;
  [[nodiscard]] std::string name() const override { return "Round Robin"; }
};

/// The LPM-guided NUCA-aware scheduler (NUCA-SA). `delta_percent` selects
/// fine-grained (1%) or coarse-grained (10%) matching.
class NucaSaScheduler final : public Scheduler {
 public:
  explicit NucaSaScheduler(double delta_percent);
  Schedule assign(const std::vector<AppProfile>& apps,
                  const std::vector<std::uint64_t>& core_l1_sizes) override;
  [[nodiscard]] std::string name() const override;

  /// Step 1 of the two-fold policy: the smallest profiled L1 size that
  /// matches the app's LPMR1 demand under this delta (exposed for tests).
  [[nodiscard]] std::uint64_t preferred_size(const AppProfile& app) const;

 private:
  double delta_percent_;
};

}  // namespace lpm::sched
