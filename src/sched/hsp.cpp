#include "sched/hsp.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace lpm::sched {

double harmonic_weighted_speedup(const std::vector<double>& ipc_alone,
                                 const std::vector<double>& ipc_shared) {
  util::require(ipc_alone.size() == ipc_shared.size(),
                "harmonic_weighted_speedup: size mismatch");
  if (ipc_alone.empty()) return 0.0;
  double denom = 0.0;
  for (std::size_t i = 0; i < ipc_alone.size(); ++i) {
    if (ipc_alone[i] <= 0.0 || ipc_shared[i] <= 0.0) return 0.0;
    denom += ipc_alone[i] / ipc_shared[i];
  }
  return static_cast<double>(ipc_alone.size()) / denom;
}

double weighted_speedup(const std::vector<double>& ipc_alone,
                        const std::vector<double>& ipc_shared) {
  util::require(ipc_alone.size() == ipc_shared.size(),
                "weighted_speedup: size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < ipc_alone.size(); ++i) {
    if (ipc_alone[i] <= 0.0 || ipc_shared[i] <= 0.0) return 0.0;
    sum += ipc_shared[i] / ipc_alone[i];
  }
  return sum;
}

double min_weighted_speedup(const std::vector<double>& ipc_alone,
                            const std::vector<double>& ipc_shared) {
  util::require(ipc_alone.size() == ipc_shared.size(),
                "min_weighted_speedup: size mismatch");
  if (ipc_alone.empty()) return 0.0;
  double lo = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < ipc_alone.size(); ++i) {
    if (ipc_alone[i] <= 0.0 || ipc_shared[i] <= 0.0) return 0.0;
    lo = std::min(lo, ipc_shared[i] / ipc_alone[i]);
  }
  return lo;
}

}  // namespace lpm::sched
