#include "sched/profile.hpp"

#include <memory>

#include "sim/system.hpp"
#include "trace/synthetic.hpp"
#include "util/error.hpp"

namespace lpm::sched {

const SizePoint& AppProfile::at_size(std::uint64_t l1_size_bytes) const {
  for (const auto& p : by_size) {
    if (p.l1_size_bytes == l1_size_bytes) return p;
  }
  throw util::LpmError(name + ": no profile point for L1 size " +
                       std::to_string(l1_size_bytes));
}

Profiler::Profiler(sim::MachineConfig machine) : machine_(std::move(machine)) {
  machine_.num_cores = 1;
  machine_.l1_size_per_core.clear();
  machine_.l1.num_cores = 1;
  machine_.l2.num_cores = 1;
  machine_.validate();
}

AppProfile Profiler::profile(const trace::WorkloadProfile& workload,
                             const std::vector<std::uint64_t>& l1_sizes) const {
  util::require(!l1_sizes.empty(), "Profiler: need at least one L1 size");

  AppProfile out;
  out.name = workload.name;
  out.workload = workload;

  // CPIexe does not depend on the L1 size; calibrate once.
  trace::SyntheticTrace calib_trace(workload);
  const sim::CpiExeResult calib = sim::measure_cpi_exe(machine_, calib_trace);
  out.cpi_exe = calib.cpi_exe;
  out.fmem = calib.fmem;

  for (const std::uint64_t size : l1_sizes) {
    sim::MachineConfig m = machine_;
    m.l1.size_bytes = size;

    std::vector<trace::TraceSourcePtr> traces;
    traces.push_back(std::make_unique<trace::SyntheticTrace>(workload));
    sim::System system(m, std::move(traces));
    const sim::SystemResult run = system.run();
    util::require(run.completed, out.name + ": profiling run hit max_cycles");

    SizePoint p;
    p.l1_size_bytes = size;
    p.measurement = core::AppMeasurement::from_run(run, calib, 0, workload.name);
    const auto cycles = static_cast<double>(run.cycles);
    p.apc1 = cycles > 0 ? static_cast<double>(p.measurement.l1.accesses) / cycles : 0.0;
    p.apc2 = cycles > 0 ? static_cast<double>(p.measurement.l2.accesses) / cycles : 0.0;
    p.ipc = run.cores[0].ipc();
    const core::LpmrSet lpmr = core::compute_lpmrs(p.measurement);
    p.lpmr1 = lpmr.lpmr1;
    p.lpmr2 = lpmr.lpmr2;
    out.by_size.push_back(p);
  }
  return out;
}

}  // namespace lpm::sched
