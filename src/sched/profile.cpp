#include "sched/profile.hpp"

#include "sim/system.hpp"
#include "util/error.hpp"

namespace lpm::sched {

const SizePoint& AppProfile::at_size(std::uint64_t l1_size_bytes) const {
  for (const auto& p : by_size) {
    if (p.l1_size_bytes == l1_size_bytes) return p;
  }
  throw util::LpmError(name + ": no profile point for L1 size " +
                       std::to_string(l1_size_bytes));
}

Profiler::Profiler(sim::MachineConfig machine, exp::ExperimentEngine* engine)
    : machine_(std::move(machine)), engine_(engine) {
  machine_.num_cores = 1;
  machine_.l1_size_per_core.clear();
  machine_.l1.num_cores = 1;
  machine_.l2.num_cores = 1;
  machine_.validate();
}

AppProfile Profiler::profile(const trace::WorkloadProfile& workload,
                             const std::vector<std::uint64_t>& l1_sizes) const {
  return profile_many({workload}, l1_sizes).front();
}

std::vector<AppProfile> Profiler::profile_many(
    const std::vector<trace::WorkloadProfile>& workloads,
    const std::vector<std::uint64_t>& l1_sizes) const {
  util::require(!l1_sizes.empty(), "Profiler: need at least one L1 size");
  exp::ExperimentEngine& engine =
      engine_ != nullptr ? *engine_ : exp::ExperimentEngine::shared();

  // One batch covering the whole (application, L1 size) grid. CPIexe does
  // not depend on the L1 size (perfect cache), so only the first size of
  // each application carries the calibration.
  std::vector<exp::SimJob> jobs;
  jobs.reserve(workloads.size() * l1_sizes.size());
  for (const auto& workload : workloads) {
    for (std::size_t s = 0; s < l1_sizes.size(); ++s) {
      sim::MachineConfig m = machine_;
      m.l1.size_bytes = l1_sizes[s];
      jobs.push_back(exp::SimJob::solo(
          std::move(m), workload, /*calibrate=*/s == 0,
          workload.name + " | L1=" + std::to_string(l1_sizes[s] / 1024) + "KB"));
    }
  }
  const auto results = engine.run_batch(jobs);

  std::vector<AppProfile> out;
  out.reserve(workloads.size());
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    const trace::WorkloadProfile& workload = workloads[w];
    AppProfile profile;
    profile.name = workload.name;
    profile.workload = workload;

    const sim::CpiExeResult calib =
        results[w * l1_sizes.size()]->calib.at(0);
    profile.cpi_exe = calib.cpi_exe;
    profile.fmem = calib.fmem;

    for (std::size_t s = 0; s < l1_sizes.size(); ++s) {
      const sim::SystemResult& run = results[w * l1_sizes.size() + s]->run;
      util::require(run.completed,
                    profile.name + ": profiling run hit max_cycles");

      SizePoint p;
      p.l1_size_bytes = l1_sizes[s];
      p.measurement =
          core::AppMeasurement::from_run(run, calib, 0, workload.name);
      const auto cycles = static_cast<double>(run.cycles);
      p.apc1 =
          cycles > 0 ? static_cast<double>(p.measurement.l1.accesses) / cycles : 0.0;
      p.apc2 =
          cycles > 0 ? static_cast<double>(p.measurement.l2.accesses) / cycles : 0.0;
      p.ipc = run.cores[0].ipc();
      const core::LpmrSet lpmr = core::compute_lpmrs(p.measurement);
      p.lpmr1 = lpmr.lpmr1;
      p.lpmr2 = lpmr.lpmr2;
      profile.by_size.push_back(p);
    }
    out.push_back(std::move(profile));
  }
  return out;
}

}  // namespace lpm::sched
