#include "sched/scheduler.hpp"

#include <algorithm>
#include <map>

#include "core/lpm_model.hpp"
#include "util/error.hpp"

namespace lpm::sched {

namespace {

void check_inputs(const std::vector<AppProfile>& apps,
                  const std::vector<std::uint64_t>& core_l1_sizes) {
  util::require(!apps.empty(), "scheduler: no applications");
  util::require(apps.size() == core_l1_sizes.size(),
                "scheduler: need exactly one core per application");
}

}  // namespace

Schedule RandomScheduler::assign(const std::vector<AppProfile>& apps,
                                 const std::vector<std::uint64_t>& core_l1_sizes) {
  check_inputs(apps, core_l1_sizes);
  Schedule s(apps.size());
  for (std::size_t i = 0; i < s.size(); ++i) s[i] = i;
  // Fisher-Yates with the seeded stream.
  for (std::size_t i = s.size(); i > 1; --i) {
    const std::size_t j = rng_.next_below(i);
    std::swap(s[i - 1], s[j]);
  }
  return s;
}

Schedule RoundRobinScheduler::assign(const std::vector<AppProfile>& apps,
                                     const std::vector<std::uint64_t>& core_l1_sizes) {
  check_inputs(apps, core_l1_sizes);
  Schedule s(apps.size());
  for (std::size_t i = 0; i < s.size(); ++i) s[i] = i;
  return s;
}

NucaSaScheduler::NucaSaScheduler(double delta_percent)
    : delta_percent_(delta_percent) {
  util::require(delta_percent > 0.0, "NucaSaScheduler: delta must be positive");
}

std::string NucaSaScheduler::name() const {
  return delta_percent_ <= core::kFineGrainedDelta ? "NUCA-SA (fg)"
                                                   : "NUCA-SA (cg)";
}

std::uint64_t NucaSaScheduler::preferred_size(const AppProfile& app) const {
  util::require(!app.by_size.empty(), app.name + ": empty profile");
  // Step 1a: smallest size whose LPMR1 already matches the request rate
  // (Eq. 14 threshold at this delta).
  for (const SizePoint& p : app.by_size) {
    const double t1 =
        core::threshold_t1(delta_percent_, p.measurement.overlap_ratio);
    if (p.lpmr1 <= t1) return p.l1_size_bytes;
  }
  // Step 1b: no size matches the threshold outright - relax to "within
  // delta% of the best achievable LPMR1": fine-grained matching (1%)
  // demands nearly the full benefit, coarse-grained (10%) settles earlier
  // with a smaller cache. Insensitive programs land on the smallest size
  // either way and do not hoard capacity.
  const double best = app.by_size.back().lpmr1;
  const double tolerance = 1.0 + delta_percent_ / 100.0;
  for (const SizePoint& p : app.by_size) {
    if (p.lpmr1 <= best * tolerance) return p.l1_size_bytes;
  }
  return app.by_size.back().l1_size_bytes;
}

Schedule NucaSaScheduler::assign(const std::vector<AppProfile>& apps,
                                 const std::vector<std::uint64_t>& core_l1_sizes) {
  check_inputs(apps, core_l1_sizes);

  // Free cores per L1 size, smallest size first.
  std::map<std::uint64_t, std::vector<std::size_t>> free_cores;
  for (std::size_t c = 0; c < core_l1_sizes.size(); ++c) {
    free_cores[core_l1_sizes[c]].push_back(c);
  }

  struct Want {
    std::size_t app = 0;
    std::uint64_t preferred = 0;
    double benefit = 0.0;  ///< LPMR1 improvement from smallest to preferred
  };
  std::vector<Want> wants;
  wants.reserve(apps.size());
  for (std::size_t i = 0; i < apps.size(); ++i) {
    Want w;
    w.app = i;
    w.preferred = preferred_size(apps[i]);
    w.benefit = apps[i].by_size.front().lpmr1 -
                apps[i].at_size(w.preferred).lpmr1;
    wants.push_back(w);
  }
  // Applications with the most to gain choose first.
  std::stable_sort(wants.begin(), wants.end(),
                   [](const Want& a, const Want& b) { return a.benefit > b.benefit; });

  Schedule schedule(apps.size(), static_cast<std::size_t>(-1));
  for (const Want& w : wants) {
    const AppProfile& app = apps[w.app];
    // Candidate sizes still having a free core, ranked by the two-fold
    // rule: (1) sizes matching the app's LPMR1 demand come first; among
    // those, minimize shared-L2 pressure (APC2, 5% tolerance), then take
    // the smallest sufficient cache; (2) if nothing matches, chase the
    // lowest LPMR1 (the closest-to-matching large cache).
    std::vector<std::uint64_t> candidates;
    for (const auto& [size, cores] : free_cores) {
      if (!cores.empty()) candidates.push_back(size);
    }
    util::require(!candidates.empty(), "NUCA-SA: ran out of cores");
    const auto meets = [&](const SizePoint& p) {
      return p.lpmr1 <=
             core::threshold_t1(delta_percent_, p.measurement.overlap_ratio);
    };
    std::stable_sort(candidates.begin(), candidates.end(),
                     [&](std::uint64_t a, std::uint64_t b) {
                       const SizePoint& pa = app.at_size(a);
                       const SizePoint& pb = app.at_size(b);
                       const bool ma = meets(pa);
                       const bool mb = meets(pb);
                       if (ma != mb) return ma;
                       if (ma) {  // both sufficient: least L2 pressure, then smallest
                         const double lo = std::min(pa.apc2, pb.apc2);
                         if (std::abs(pa.apc2 - pb.apc2) > 0.05 * lo) {
                           return pa.apc2 < pb.apc2;
                         }
                         return a < b;
                       }
                       return pa.lpmr1 < pb.lpmr1;  // neither: best effort
                     });
    const std::uint64_t chosen = candidates.front();
    auto& cores = free_cores[chosen];
    schedule[w.app] = cores.front();
    cores.erase(cores.begin());
  }
  return schedule;
}

}  // namespace lpm::sched
