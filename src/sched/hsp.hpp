// Harmonic Weighted Speedup (Luo, Gummaraju & Franklin, ISPASS'01), the
// throughput/fairness metric of Case Study II (Fig. 8).
#pragma once

#include <vector>

namespace lpm::sched {

/// Hsp = N / sum_i (IPC_alone_i / IPC_shared_i). Equals the harmonic mean
/// of the per-program weighted speedups; 1.0 means no slowdown from
/// sharing. Returns 0 for empty or degenerate inputs.
[[nodiscard]] double harmonic_weighted_speedup(const std::vector<double>& ipc_alone,
                                               const std::vector<double>& ipc_shared);

/// System throughput: sum_i (IPC_shared_i / IPC_alone_i) — the classic
/// weighted speedup (Snavely & Tullsen). N means no slowdown.
[[nodiscard]] double weighted_speedup(const std::vector<double>& ipc_alone,
                                      const std::vector<double>& ipc_shared);

/// Fairness floor: min_i (IPC_shared_i / IPC_alone_i). Returns 0 for empty
/// or degenerate inputs.
[[nodiscard]] double min_weighted_speedup(const std::vector<double>& ipc_alone,
                                          const std::vector<double>& ipc_shared);

}  // namespace lpm::sched
