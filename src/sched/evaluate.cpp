#include "sched/evaluate.hpp"

#include "sched/hsp.hpp"
#include "util/error.hpp"

namespace lpm::sched {

namespace {

/// Builds the engine job for one co-run: traces[core] = the workload of the
/// app placed on that core. Each app gets a disjoint slice of the physical
/// address space (its own pages).
exp::SimJob make_corun_job(const sim::MachineConfig& machine,
                           const std::vector<AppProfile>& apps,
                           const ScheduleCandidate& candidate) {
  const Schedule& schedule = candidate.schedule;
  util::require(apps.size() == schedule.size(), "evaluate_schedule: size mismatch");
  util::require(machine.num_cores == apps.size(),
                "evaluate_schedule: machine must have one core per app");
  // The schedule must be a permutation.
  std::vector<bool> used(apps.size(), false);
  for (const std::size_t c : schedule) {
    util::require(c < apps.size(), "evaluate_schedule: core index out of range");
    util::require(!used[c], "evaluate_schedule: core assigned twice");
    used[c] = true;
  }

  exp::SimJob job;
  job.machine = machine;
  job.workloads.resize(apps.size());
  for (std::size_t app = 0; app < apps.size(); ++app) {
    trace::WorkloadProfile wl = apps[app].workload;
    wl.addr_base = (static_cast<std::uint64_t>(app) + 1) << 30;
    job.workloads[schedule[app]] = std::move(wl);
  }
  job.tag = candidate.scheduler;
  return job;
}

EvalResult to_eval_result(const sim::MachineConfig& machine,
                          const std::vector<AppProfile>& apps,
                          const ScheduleCandidate& candidate,
                          const sim::SystemResult& run) {
  util::require(run.completed, "evaluate_schedule: co-run hit max_cycles");
  EvalResult out;
  out.scheduler = candidate.scheduler;
  out.schedule = candidate.schedule;
  out.co_run_cycles = run.cycles;
  for (std::size_t app = 0; app < apps.size(); ++app) {
    const std::size_t c = candidate.schedule[app];
    const std::uint64_t l1_size = machine.l1_size_per_core.empty()
                                      ? machine.l1.size_bytes
                                      : machine.l1_size_per_core[c];
    out.ipc_alone.push_back(apps[app].at_size(l1_size).ipc);
    out.ipc_shared.push_back(run.cores[c].ipc());
  }
  out.hsp = harmonic_weighted_speedup(out.ipc_alone, out.ipc_shared);
  out.ws = weighted_speedup(out.ipc_alone, out.ipc_shared);
  out.min_ws = min_weighted_speedup(out.ipc_alone, out.ipc_shared);
  return out;
}

}  // namespace

std::vector<EvalResult> evaluate_schedules(
    const sim::MachineConfig& machine, const std::vector<AppProfile>& apps,
    const std::vector<ScheduleCandidate>& candidates,
    exp::ExperimentEngine* engine) {
  exp::ExperimentEngine& eng =
      engine != nullptr ? *engine : exp::ExperimentEngine::shared();

  std::vector<exp::SimJob> jobs;
  jobs.reserve(candidates.size());
  for (const ScheduleCandidate& c : candidates) {
    jobs.push_back(make_corun_job(machine, apps, c));
  }
  // Explicitly fail-fast: the Fig. 8 ranking compares every candidate, so
  // a missing co-run would silently bias the winner. The first failed
  // candidate's typed error is rethrown tagged with its scheduler name.
  const auto outcomes = eng.run_batch_outcomes(
      jobs, exp::BatchOptions{exp::FailurePolicy::kFailFast,
                              /*consult_journal=*/false});

  std::vector<EvalResult> out;
  out.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (!outcomes[i].ok()) {
      util::throw_error(
          outcomes[i].error,
          "evaluate_schedules: candidate '" + candidates[i].scheduler +
              "' (#" + std::to_string(i) + ") failed: " +
              outcomes[i].error_message);
    }
    out.push_back(
        to_eval_result(machine, apps, candidates[i], outcomes[i].result->run));
  }
  return out;
}

EvalResult evaluate_schedule(const sim::MachineConfig& machine,
                             const std::vector<AppProfile>& apps,
                             const Schedule& schedule, std::string scheduler_name,
                             exp::ExperimentEngine* engine) {
  return evaluate_schedules(machine, apps,
                            {{schedule, std::move(scheduler_name)}}, engine)
      .front();
}

}  // namespace lpm::sched
