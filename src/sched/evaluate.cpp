#include "sched/evaluate.hpp"

#include <memory>

#include "sched/hsp.hpp"
#include "trace/synthetic.hpp"
#include "util/error.hpp"

namespace lpm::sched {

EvalResult evaluate_schedule(const sim::MachineConfig& machine,
                             const std::vector<AppProfile>& apps,
                             const Schedule& schedule,
                             std::string scheduler_name) {
  util::require(apps.size() == schedule.size(), "evaluate_schedule: size mismatch");
  util::require(machine.num_cores == apps.size(),
                "evaluate_schedule: machine must have one core per app");
  // The schedule must be a permutation.
  std::vector<bool> used(apps.size(), false);
  for (const std::size_t c : schedule) {
    util::require(c < apps.size(), "evaluate_schedule: core index out of range");
    util::require(!used[c], "evaluate_schedule: core assigned twice");
    used[c] = true;
  }

  // traces[core] = the workload of the app placed on that core. Each app
  // gets a disjoint slice of the physical address space (its own pages).
  std::vector<trace::TraceSourcePtr> traces(apps.size());
  for (std::size_t app = 0; app < apps.size(); ++app) {
    trace::WorkloadProfile wl = apps[app].workload;
    wl.addr_base = (static_cast<std::uint64_t>(app) + 1) << 30;
    traces[schedule[app]] = std::make_unique<trace::SyntheticTrace>(wl);
  }

  sim::System system(machine, std::move(traces));
  const sim::SystemResult run = system.run();
  util::require(run.completed, "evaluate_schedule: co-run hit max_cycles");

  EvalResult out;
  out.scheduler = std::move(scheduler_name);
  out.schedule = schedule;
  out.co_run_cycles = run.cycles;
  for (std::size_t app = 0; app < apps.size(); ++app) {
    const std::size_t c = schedule[app];
    const std::uint64_t l1_size = machine.l1_size_per_core.empty()
                                      ? machine.l1.size_bytes
                                      : machine.l1_size_per_core[c];
    out.ipc_alone.push_back(apps[app].at_size(l1_size).ipc);
    out.ipc_shared.push_back(run.cores[c].ipc());
  }
  out.hsp = harmonic_weighted_speedup(out.ipc_alone, out.ipc_shared);
  out.ws = weighted_speedup(out.ipc_alone, out.ipc_shared);
  out.min_ws = min_weighted_speedup(out.ipc_alone, out.ipc_shared);
  return out;
}

}  // namespace lpm::sched
