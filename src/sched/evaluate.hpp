// Co-run evaluation of a schedule on the NUCA CMP (Fig. 8).
#pragma once

#include <string>
#include <vector>

#include "sched/profile.hpp"
#include "sched/scheduler.hpp"
#include "sim/system.hpp"

namespace lpm::sched {

struct EvalResult {
  std::string scheduler;
  Schedule schedule;
  double hsp = 0.0;          ///< harmonic weighted speedup (Fig. 8's metric)
  double ws = 0.0;           ///< classic weighted speedup (throughput)
  double min_ws = 0.0;       ///< fairness floor
  std::vector<double> ipc_alone;   ///< per app, solo on its assigned core
  std::vector<double> ipc_shared;  ///< per app, in the co-run
  Cycle co_run_cycles = 0;
};

/// Runs all applications simultaneously under `schedule` on `machine`
/// (which must have one core per app) and computes the harmonic weighted
/// speedup against each app's solo IPC at its assigned core's L1 size
/// (taken from the profiles; the profiler used the same machine).
[[nodiscard]] EvalResult evaluate_schedule(const sim::MachineConfig& machine,
                                           const std::vector<AppProfile>& apps,
                                           const Schedule& schedule,
                                           std::string scheduler_name);

}  // namespace lpm::sched
