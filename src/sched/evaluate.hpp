// Co-run evaluation of schedules on the NUCA CMP (Fig. 8). Co-runs execute
// through the experiment engine: independent candidate schedules simulate
// concurrently and repeated placements are cache-served.
#pragma once

#include <string>
#include <vector>

#include "exp/experiment_engine.hpp"
#include "sched/profile.hpp"
#include "sched/scheduler.hpp"
#include "sim/system.hpp"

namespace lpm::sched {

struct EvalResult {
  std::string scheduler;
  Schedule schedule;
  double hsp = 0.0;          ///< harmonic weighted speedup (Fig. 8's metric)
  double ws = 0.0;           ///< classic weighted speedup (throughput)
  double min_ws = 0.0;       ///< fairness floor
  std::vector<double> ipc_alone;   ///< per app, solo on its assigned core
  std::vector<double> ipc_shared;  ///< per app, in the co-run
  Cycle co_run_cycles = 0;
};

/// One candidate placement to evaluate, with the scheduler name carried
/// into the result (and the engine's structured output).
struct ScheduleCandidate {
  Schedule schedule;
  std::string scheduler;
};

/// Runs all applications simultaneously under `schedule` on `machine`
/// (which must have one core per app) and computes the harmonic weighted
/// speedup against each app's solo IPC at its assigned core's L1 size
/// (taken from the profiles; the profiler used the same machine).
/// `engine` = nullptr uses the process-wide shared engine.
[[nodiscard]] EvalResult evaluate_schedule(const sim::MachineConfig& machine,
                                           const std::vector<AppProfile>& apps,
                                           const Schedule& schedule,
                                           std::string scheduler_name,
                                           exp::ExperimentEngine* engine = nullptr);

/// Evaluates many candidate placements as one engine batch (the co-runs
/// are independent System instances); results come back in input order.
/// Explicitly fail-fast (exp::FailurePolicy::kFailFast): the ranking needs
/// every candidate, so the first failure is rethrown as its typed error,
/// tagged with the failing candidate's scheduler name.
[[nodiscard]] std::vector<EvalResult> evaluate_schedules(
    const sim::MachineConfig& machine, const std::vector<AppProfile>& apps,
    const std::vector<ScheduleCandidate>& candidates,
    exp::ExperimentEngine* engine = nullptr);

}  // namespace lpm::sched
