// Job journal: lpmd's crash-recovery log.
//
// Three record kinds, one per line, appended in job-lifecycle order and
// flushed at every append (the same discipline — and the same torn-tail
// healing — as exp::SweepJournal):
//
//   accept <job-key> <degraded> <spec-json>     admitted, not yet finished
//   result <job-key> <frame-json>               one terminal/stream frame
//   done <job-key>                              all frames recorded
//
// `job-key` is "client/id" (both components use a restricted charset with
// no whitespace, enforced at the protocol layer, so the line format stays
// space-delimited). The JSON payloads are single-line by construction
// (JsonWriter never emits newlines), so one record is always one line.
//
// The ordering is the exactly-once contract:
//   execute → append result frames → append done → deliver to the client.
// A crash before `done` replays the job from its accept record (clients
// see the result once, from the rerun); a crash after `done` serves the
// recorded frames to a reattaching client without re-executing. At no
// interleaving can a job be both re-executed and double-delivered, because
// clients only attach ids they have not yet received a terminal frame for.
//
// recover() heals the torn tail, loads everything, and *compacts*: the
// file is rewritten keeping only completed jobs' frames (attach replay
// needs them) and pending jobs' accept records, so the journal does not
// accrete dead bytes across restarts.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace lpm::srv {

/// One journaled job as recover() reports it.
struct RecoveredJob {
  std::string key;        ///< "client/id"
  std::string spec_json;  ///< the admitted spec (post-degradation) frame
  bool degraded = false;
  bool done = false;
  /// Terminal/stream frames recorded so far (complete iff done).
  std::vector<std::string> frames;
};

class JobJournal {
 public:
  /// Opens `path`, healing and compacting any previous incarnation.
  /// Throws util::IoError when the path is unwritable.
  [[nodiscard]] static std::unique_ptr<JobJournal> open(const std::string& path);

  /// Jobs the previous incarnation accepted: pending ones (done == false,
  /// to re-enqueue) and completed ones (done == true, to serve attach).
  [[nodiscard]] const std::vector<RecoveredJob>& recovered() const {
    return recovered_;
  }

  /// Appends an accept record (admitted job, post-degradation spec).
  void record_accept(const std::string& key, bool degraded,
                     const std::string& spec_json);
  /// Appends one result frame for `key`.
  void record_result(const std::string& key, const std::string& frame_json);
  /// Marks `key` fully recorded; safe to deliver after this returns.
  void record_done(const std::string& key);

  /// The recorded frames for a completed job, or empty when unknown /
  /// unfinished. Serves client reattach after a restart.
  [[nodiscard]] std::vector<std::string> completed_frames(
      const std::string& key) const;
  [[nodiscard]] bool is_done(const std::string& key) const;

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  explicit JobJournal(std::string path);
  void append_line(const std::string& line);

  std::string path_;
  mutable std::mutex mutex_;
  std::ofstream out_;
  std::vector<RecoveredJob> recovered_;
  /// Completed jobs (recovered + this incarnation) and their frames, for
  /// attach replay; pending jobs are not tracked here (the server owns
  /// their live state).
  std::unordered_map<std::string, std::vector<std::string>> completed_;
  /// Frames recorded for not-yet-done jobs this incarnation; promoted to
  /// completed_ by record_done.
  std::unordered_map<std::string, std::vector<std::string>> pending_frames_;
};

}  // namespace lpm::srv
