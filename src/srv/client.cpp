#include "srv/client.hpp"

#include <chrono>
#include <thread>

#include "srv/server.hpp"  // valid_name
#include "util/error.hpp"

namespace lpm::srv {

namespace {
using Clock = std::chrono::steady_clock;
}

Client::Client(std::string endpoint, std::string name)
    : Client(std::vector<std::string>{std::move(endpoint)}, std::move(name)) {}

Client::Client(std::vector<std::string> endpoints, std::string name)
    : endpoints_(std::move(endpoints)), name_(std::move(name)) {
  util::require(!endpoints_.empty(), "Client: endpoint list must be non-empty");
  util::require(valid_name(name_), "Client: name must be [A-Za-z0-9._-]{1,64}");
  for (const std::string& ep : endpoints_) {
    (void)Endpoint::parse(ep);  // fail fast on a typo, not at connect()
  }
}

void Client::connect(std::uint64_t budget_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(budget_ms);
  for (;;) {
    try {
      fd_ = connect_endpoint(Endpoint::parse(endpoints_[cursor_]));
      JsonWriter hello;
      hello.str("op", "hello").str("client", name_).num_u64("proto",
                                                            kProtocolVersion);
      if (write_frame(fd_, hello.finish(), 1'000) == IoStatus::kOk) {
        std::string payload;
        if (read_frame(fd_, payload, 2'000) == IoStatus::kOk) {
          const util::FlatJson frame = util::FlatJson::parse(payload);
          const std::string op = frame.get_string("op").value_or("");
          if (op == "hello_ok") {
            recovered_ = static_cast<std::uint64_t>(
                frame.get_number("recovered").value_or(0.0));
            server_proto_ = static_cast<int>(
                frame.get_number("proto").value_or(1.0));
            return;
          }
          if (frame.get_string("code").value_or("") == "unsupported_proto") {
            // Retrying cannot help — this build speaks the wrong protocol.
            fd_ = Fd();
            throw util::ConfigError(
                "Client: server at '" + endpoints_[cursor_] +
                "' refused protocol " + std::to_string(kProtocolVersion));
          }
        }
      }
      fd_ = Fd();
    } catch (const util::IoError&) {
      fd_ = Fd();  // endpoint absent or mid-restart; try the next one
    }
    rotate();
    if (Clock::now() >= deadline) {
      throw util::IoError("Client: cannot reach lpmd at any of " +
                          std::to_string(endpoints_.size()) +
                          " endpoint(s) (first: '" + endpoints_[0] +
                          "') within " + std::to_string(budget_ms) + " ms");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

void Client::disconnect() { fd_ = Fd(); }

bool Client::send(const std::string& payload) {
  if (!fd_.valid()) return false;
  if (write_frame(fd_, payload, 2'000) != IoStatus::kOk) {
    disconnect();
    return false;
  }
  return true;
}

bool Client::submit(const std::string& id, const JobSpec& spec) {
  JsonWriter out;
  out.str("op", "submit").str("id", id);
  spec.encode(out);
  return send(out.finish());
}

bool Client::attach(const std::string& id) {
  JsonWriter out;
  out.str("op", "attach").str("id", id);
  return send(out.finish());
}

bool Client::ping() {
  JsonWriter out;
  out.str("op", "ping");
  return send(out.finish());
}

bool Client::request_stats() {
  JsonWriter out;
  out.str("op", "stats");
  return send(out.finish());
}

bool Client::request_shutdown() {
  JsonWriter out;
  out.str("op", "shutdown");
  return send(out.finish());
}

std::optional<util::FlatJson> Client::poll(int timeout_ms) {
  if (!fd_.valid()) return std::nullopt;
  std::string payload;
  const IoStatus status = read_frame(fd_, payload, timeout_ms);
  if (status == IoStatus::kTimeout) return std::nullopt;
  if (status == IoStatus::kClosed) {
    disconnect();
    return std::nullopt;
  }
  return util::FlatJson::parse(payload);
}

}  // namespace lpm::srv
