#include "srv/client.hpp"

#include <chrono>
#include <thread>

#include "srv/server.hpp"  // valid_name
#include "util/error.hpp"

namespace lpm::srv {

namespace {
using Clock = std::chrono::steady_clock;
}

Client::Client(std::string socket_path, std::string name)
    : socket_path_(std::move(socket_path)), name_(std::move(name)) {
  util::require(valid_name(name_), "Client: name must be [A-Za-z0-9._-]{1,64}");
}

void Client::connect(std::uint64_t budget_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(budget_ms);
  for (;;) {
    try {
      fd_ = connect_unix(socket_path_);
      JsonWriter hello;
      hello.str("op", "hello").str("client", name_).num_u64("proto",
                                                            kProtocolVersion);
      if (write_frame(fd_, hello.finish(), 1'000) == IoStatus::kOk) {
        std::string payload;
        if (read_frame(fd_, payload, 2'000) == IoStatus::kOk) {
          const util::FlatJson frame = util::FlatJson::parse(payload);
          if (frame.get_string("op").value_or("") == "hello_ok") {
            recovered_ = static_cast<std::uint64_t>(
                frame.get_number("recovered").value_or(0.0));
            return;
          }
        }
      }
      fd_ = Fd();
    } catch (const util::IoError&) {
      fd_ = Fd();  // server absent or mid-restart; retry below
    }
    if (Clock::now() >= deadline) {
      throw util::IoError("Client: cannot reach lpmd at '" + socket_path_ +
                          "' within " + std::to_string(budget_ms) + " ms");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

void Client::disconnect() { fd_ = Fd(); }

bool Client::send(const std::string& payload) {
  if (!fd_.valid()) return false;
  if (write_frame(fd_, payload, 2'000) != IoStatus::kOk) {
    disconnect();
    return false;
  }
  return true;
}

bool Client::submit(const std::string& id, const JobSpec& spec) {
  JsonWriter out;
  out.str("op", "submit").str("id", id);
  spec.encode(out);
  return send(out.finish());
}

bool Client::attach(const std::string& id) {
  JsonWriter out;
  out.str("op", "attach").str("id", id);
  return send(out.finish());
}

bool Client::ping() {
  JsonWriter out;
  out.str("op", "ping");
  return send(out.finish());
}

bool Client::request_stats() {
  JsonWriter out;
  out.str("op", "stats");
  return send(out.finish());
}

bool Client::request_shutdown() {
  JsonWriter out;
  out.str("op", "shutdown");
  return send(out.finish());
}

std::optional<util::FlatJson> Client::poll(int timeout_ms) {
  if (!fd_.valid()) return std::nullopt;
  std::string payload;
  const IoStatus status = read_frame(fd_, payload, timeout_ms);
  if (status == IoStatus::kTimeout) return std::nullopt;
  if (status == IoStatus::kClosed) {
    disconnect();
    return std::nullopt;
  }
  return util::FlatJson::parse(payload);
}

}  // namespace lpm::srv
