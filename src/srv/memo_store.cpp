#include "srv/memo_store.hpp"

namespace lpm::srv {

MemoStore::MemoStore(std::uint64_t byte_budget)
    : byte_budget_(byte_budget),
      hits_(obs::MetricsRegistry::global().counter("srv.cache.hits")),
      misses_(obs::MetricsRegistry::global().counter("srv.cache.misses")),
      evictions_(obs::MetricsRegistry::global().counter("srv.cache.evictions")),
      bytes_gauge_(obs::MetricsRegistry::global().gauge("srv.cache.bytes")) {
  bytes_gauge_.set(0.0);
}

std::optional<std::string> MemoStore::get(std::uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(fingerprint);
  if (it == index_.end()) {
    misses_.inc();
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  hits_.inc();
  return it->second->body;
}

void MemoStore::put(std::uint64_t fingerprint, std::string body) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(fingerprint);
  if (it != index_.end()) {
    // Deterministic results mean a re-put carries the same bytes; just
    // refresh recency rather than re-accounting.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  Entry entry{fingerprint, std::move(body)};
  const std::uint64_t incoming = entry_bytes(entry);
  if (incoming > byte_budget_) return;  // would evict everything for one key
  evict_until_fits_locked(incoming);
  lru_.push_front(std::move(entry));
  index_[fingerprint] = lru_.begin();
  bytes_ += incoming;
  bytes_gauge_.set(static_cast<double>(bytes_));
}

std::size_t MemoStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

std::uint64_t MemoStore::bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

void MemoStore::evict_until_fits_locked(std::uint64_t incoming) {
  while (!lru_.empty() && bytes_ + incoming > byte_budget_) {
    const Entry& victim = lru_.back();
    bytes_ -= entry_bytes(victim);
    index_.erase(victim.fingerprint);
    lru_.pop_back();
    evictions_.inc();
  }
  bytes_gauge_.set(static_cast<double>(bytes_));
}

}  // namespace lpm::srv
