// JobSpec: the wire-side description of one lpmd job. Deliberately a
// constrained, flat vocabulary (spec-analogue workload by name, a base
// machine plus scalar overrides) rather than a full MachineConfig codec:
// every field maps 1:1 onto a flat JSON key, so the whole protocol stays
// inside util::FlatJson, and the admission layer can reason about a job
// (fidelity, degradability, expansion size) without touching the simulator.
//
// Three kinds:
//   simulate — one experiment point; expands to exactly one SimJob.
//   sweep    — one knob swept over an explicit value list; expands to one
//              SimJob per value (bounded by kMaxSweepPoints). Results are
//              streamed back one frame per point.
//   walk     — a screened LPM walk over the Case Study I design space
//              (handled by the server directly, not via expand()).
//
// Degradation: a job is *degrade-eligible* when it asks for cycle fidelity
// and its client allowed downgrades (degrade_ok, the default). Under
// saturation the server rewrites the backend to its configured analytic
// fidelity and tags the response, so clients always know what they got.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/experiment_engine.hpp"
#include "sim/machine_config.hpp"
#include "srv/wire.hpp"
#include "util/flat_json.hpp"

namespace lpm::srv {

/// Most points one sweep job may expand to; larger lists are a config
/// error at admission (keeps one job's queue occupancy bounded).
inline constexpr std::size_t kMaxSweepPoints = 64;

struct JobSpec {
  std::string kind = "simulate";  ///< simulate | sweep | walk

  // --- workload (a SPEC CPU2006 analogue from trace::spec_like) ---
  std::string workload = "403.gcc";
  std::uint64_t length = 100'000;  ///< micro-ops per trace replay
  std::uint64_t seed = 1;
  /// Server-local path of a recorded trace file (LPM2/LPMT). When set, the
  /// job replays that file and workload/length/seed are ignored; the
  /// engine-side cache key folds in the file's *content checksum*, not this
  /// path. Simulate/sweep only — walks screen across synthetic lengths.
  std::string trace_file;

  // --- machine: a named base plus scalar overrides (0 = keep base) ---
  std::string machine = "default";  ///< default | three_level | nuca16
  std::uint64_t l1_kb = 0;
  std::uint32_t l1_assoc = 0;
  std::uint64_t l2_kb = 0;
  std::uint32_t mshr = 0;   ///< L1 MSHR entries
  std::uint32_t cores = 0;  ///< replicates the workload on every core

  std::string backend = exp::kCycleBackend;  ///< cycle | rdh | fa
  bool calibrate = true;
  /// May the server answer at analytic fidelity under saturation?
  bool degrade_ok = true;
  /// Accept-to-completion budget; expires in the queue as a typed timeout
  /// (execution time is separately bounded by the engine watchdog). 0 = none.
  std::uint64_t deadline_ms = 0;

  // --- sweep only ---
  std::string sweep_knob;    ///< l1_kb | l2_kb | mshr
  std::string sweep_values;  ///< comma-separated list, e.g. "16,32,64"

  /// Shape checks (known kind/machine/backend names, sweep list bounds,
  /// length sane). Workload-name resolution happens in machine_config() /
  /// expand(), which throw util::ConfigError for unknown analogues.
  void validate() const;

  /// True when the server may rewrite this job to an analytic backend.
  [[nodiscard]] bool degrade_eligible() const;

  /// Serializes into flat `job_*`-prefixed keys on `out`.
  void encode(JsonWriter& out) const;
  /// Inverse of encode(); unknown keys are ignored, missing keys default.
  [[nodiscard]] static JobSpec decode(const util::FlatJson& json);

  /// Stable 64-bit fingerprint of the canonical encode() form — the shard
  /// key srv::Router hashes to pick a backend. Two specs that encode
  /// identically always land on the same shard, so the per-shard journal
  /// and memo caches (both fingerprint-keyed) never overlap across shards.
  [[nodiscard]] std::uint64_t shard_fingerprint() const;

  /// The machine this spec describes (base + overrides), validated.
  [[nodiscard]] sim::MachineConfig machine_config() const;

  /// The engine jobs this spec expands to: one for simulate, one per sweep
  /// value for sweep. Throws util::ConfigError for walk (the server runs
  /// walks through the LPM algorithm, not the raw engine).
  [[nodiscard]] std::vector<exp::SimJob> expand(const std::string& tag) const;
};

}  // namespace lpm::srv
