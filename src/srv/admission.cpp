#include "srv/admission.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace lpm::srv {

const char* to_string(AdmissionVerdict verdict) {
  switch (verdict) {
    case AdmissionVerdict::kAccept: return "accept";
    case AdmissionVerdict::kDegrade: return "degrade";
    case AdmissionVerdict::kRetryAfter: return "retry_after";
    case AdmissionVerdict::kShed: return "shed";
  }
  return "?";
}

AdmissionQueue::AdmissionQueue(Options opts)
    : opts_(std::move(opts)),
      accepted_(obs::MetricsRegistry::global().counter("srv.jobs.accepted")),
      degraded_(obs::MetricsRegistry::global().counter("srv.jobs.degraded")),
      retry_after_(
          obs::MetricsRegistry::global().counter("srv.jobs.retry_after")),
      shed_(obs::MetricsRegistry::global().counter("srv.jobs.shed")),
      depth_gauge_(obs::MetricsRegistry::global().gauge("srv.queue.depth")) {
  util::require(opts_.queue_max > 0, "AdmissionQueue: queue_max must be > 0");
  util::require(opts_.per_client_max > 0,
                "AdmissionQueue: per_client_max must be > 0");
  util::require(opts_.degrade_watermark <= opts_.queue_max,
                "AdmissionQueue: degrade_watermark must be <= queue_max");
  depth_gauge_.set(0.0);
}

AdmissionVerdict AdmissionQueue::offer(QueuedJob&& job,
                                       const OnAdmit& on_admit) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& client_queue = queues_[job.client];
  // Ring 1: fairness. The client's own backlog is the first limit so the
  // global rings below are only ever filled by a *diverse* load.
  if (client_queue.size() >= opts_.per_client_max) {
    retry_after_.inc();
    return AdmissionVerdict::kRetryAfter;
  }
  // Ring 3: hard bound.
  if (depth_ >= opts_.queue_max) {
    shed_.inc();
    return AdmissionVerdict::kShed;
  }
  // Ring 2: fidelity degradation between the watermark and the bound.
  AdmissionVerdict verdict = AdmissionVerdict::kAccept;
  if (depth_ >= opts_.degrade_watermark && job.spec.degrade_eligible()) {
    job.spec.backend = opts_.degrade_backend;
    job.degraded = true;
    verdict = AdmissionVerdict::kDegrade;
    degraded_.inc();
  }
  accepted_.inc();
  if (on_admit) on_admit(job, verdict);
  if (client_queue.empty() &&
      std::find(order_.begin(), order_.end(), job.client) == order_.end()) {
    order_.push_back(job.client);
  }
  client_queue.push_back(std::move(job));
  ++depth_;
  set_depth_gauge_locked();
  cv_.notify_one();
  return verdict;
}

void AdmissionQueue::requeue(QueuedJob&& job) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& client_queue = queues_[job.client];
  if (client_queue.empty() &&
      std::find(order_.begin(), order_.end(), job.client) == order_.end()) {
    order_.push_back(job.client);
  }
  client_queue.push_back(std::move(job));
  ++depth_;
  set_depth_gauge_locked();
  cv_.notify_one();
}

std::optional<QueuedJob> AdmissionQueue::pop(std::chrono::milliseconds wait) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait_for(lock, wait, [&] { return depth_ > 0 || closed_; });
  if (depth_ == 0) return std::nullopt;
  // Rotate the cursor to the next client with pending work; drop clients
  // whose deques have drained. depth_ > 0 guarantees a non-empty deque
  // exists, and every pass either returns it or shrinks order_.
  while (!order_.empty()) {
    if (cursor_ >= order_.size()) cursor_ = 0;
    auto it = queues_.find(order_[cursor_]);
    if (it == queues_.end() || it->second.empty()) {
      if (it != queues_.end()) queues_.erase(it);
      order_.erase(order_.begin() + static_cast<std::ptrdiff_t>(cursor_));
      continue;  // the same cursor index now points at the next client
    }
    QueuedJob job = std::move(it->second.front());
    it->second.pop_front();
    ++cursor_;
    --depth_;
    set_depth_gauge_locked();
    return job;
  }
  return std::nullopt;
}

void AdmissionQueue::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  closed_ = true;
  cv_.notify_all();
}

std::size_t AdmissionQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return depth_;
}

std::size_t AdmissionQueue::pending_for(const std::string& client) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = queues_.find(client);
  return it == queues_.end() ? 0 : it->second.size();
}

void AdmissionQueue::set_depth_gauge_locked() {
  depth_gauge_.set(static_cast<double>(depth_));
}

}  // namespace lpm::srv
