#include "srv/wire.hpp"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdlib>

#include "util/error.hpp"

namespace lpm::srv {

namespace {

using Clock = std::chrono::steady_clock;

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw util::IoError(std::string("fcntl(O_NONBLOCK): ") +
                        std::strerror(errno));
  }
}

/// Remaining milliseconds before `deadline` (>= 0), for poll().
int remaining_ms(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - Clock::now())
                        .count();
  return left < 0 ? 0 : static_cast<int>(left);
}

/// Polls `fd` for `events` until the deadline. kOk when ready, kTimeout
/// when the deadline passed, kClosed on hangup/error revents.
IoStatus poll_for(int fd, short events, Clock::time_point deadline) {
  for (;;) {
    struct pollfd pfd{};
    pfd.fd = fd;
    pfd.events = events;
    const int wait = remaining_ms(deadline);
    const int rc = ::poll(&pfd, 1, wait);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw util::IoError(std::string("poll: ") + std::strerror(errno));
    }
    if (rc == 0) return IoStatus::kTimeout;
    if ((pfd.revents & (POLLERR | POLLNVAL)) != 0) return IoStatus::kClosed;
    // POLLHUP with readable data still delivers the data first; let the
    // read observe EOF itself.
    return IoStatus::kOk;
  }
}

IoStatus write_all(const Fd& fd, const char* data, std::size_t len,
                   Clock::time_point deadline) {
  std::size_t sent = 0;
  while (sent < len) {
    const IoStatus ready = poll_for(fd.get(), POLLOUT, deadline);
    if (ready != IoStatus::kOk) return ready;
    const ssize_t n =
        ::send(fd.get(), data + sent, len - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      continue;
    }
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      return IoStatus::kClosed;
    }
    throw util::IoError(std::string("send: ") + std::strerror(errno));
  }
  return IoStatus::kOk;
}

IoStatus read_all(const Fd& fd, char* data, std::size_t len,
                  Clock::time_point deadline) {
  std::size_t got = 0;
  while (got < len) {
    const IoStatus ready = poll_for(fd.get(), POLLIN, deadline);
    if (ready != IoStatus::kOk) return ready;
    const ssize_t n = ::recv(fd.get(), data + got, len - got, 0);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) return IoStatus::kClosed;
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
    if (errno == ECONNRESET) return IoStatus::kClosed;
    throw util::IoError(std::string("recv: ") + std::strerror(errno));
  }
  return IoStatus::kOk;
}

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw util::ConfigError("socket path too long (" +
                            std::to_string(path.size()) + " bytes): " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

void set_nodelay(int fd) {
  // Frames are small and request/response latency matters more than
  // packing efficiency; harmless no-op on non-TCP sockets.
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// getaddrinfo wrapper owning the result list.
struct AddrList {
  addrinfo* head = nullptr;
  AddrList() = default;
  AddrList(AddrList&& other) noexcept : head(other.head) {
    other.head = nullptr;
  }
  AddrList(const AddrList&) = delete;
  AddrList& operator=(const AddrList&) = delete;
  AddrList& operator=(AddrList&&) = delete;
  ~AddrList() {
    if (head != nullptr) ::freeaddrinfo(head);
  }
};

AddrList resolve_tcp(const std::string& host, std::uint16_t port,
                     bool passive) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV | (passive ? AI_PASSIVE : 0);
  AddrList list;
  const std::string service = std::to_string(port);
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                               service.c_str(), &hints, &list.head);
  if (rc != 0) {
    throw util::IoError("resolve '" + host + ":" + service +
                        "': " + ::gai_strerror(rc));
  }
  return list;
}

}  // namespace

Fd::~Fd() {
  if (fd_ >= 0) ::close(fd_);
}

Fd& Fd::operator=(Fd&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.release();
  }
  return *this;
}

int Fd::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void Fd::shutdown_both() const {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

const char* to_string(IoStatus status) {
  switch (status) {
    case IoStatus::kOk: return "ok";
    case IoStatus::kTimeout: return "timeout";
    case IoStatus::kClosed: return "closed";
  }
  return "?";
}

Endpoint Endpoint::parse(const std::string& text) {
  Endpoint ep;
  if (text.rfind("unix:", 0) == 0) {
    ep.kind = Kind::kUnix;
    ep.path = text.substr(5);
    if (ep.path.empty()) throw util::ConfigError("endpoint 'unix:' lacks a path");
    return ep;
  }
  if (text.rfind("tcp:", 0) == 0) {
    ep.kind = Kind::kTcp;
    const std::string rest = text.substr(4);
    // Split at the LAST colon so IPv6 literals ("::1:7070") keep working.
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 == rest.size()) {
      throw util::ConfigError("endpoint '" + text +
                              "' (want tcp:<host>:<port>)");
    }
    ep.host = rest.substr(0, colon);
    const std::string port_str = rest.substr(colon + 1);
    char* end = nullptr;
    const unsigned long port = std::strtoul(port_str.c_str(), &end, 10);
    if (end == port_str.c_str() || *end != '\0' || port > 65535) {
      throw util::ConfigError("endpoint '" + text + "': bad port '" +
                              port_str + "'");
    }
    ep.port = static_cast<std::uint16_t>(port);
    return ep;
  }
  // No scheme: the historical unix-path spelling.
  if (text.empty()) throw util::ConfigError("endpoint is empty");
  ep.kind = Kind::kUnix;
  ep.path = text;
  return ep;
}

std::string Endpoint::to_string() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

Fd listen_endpoint(const Endpoint& endpoint) {
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    return listen_unix(endpoint.path);
  }
  const AddrList list = resolve_tcp(endpoint.host, endpoint.port,
                                    /*passive=*/true);
  std::string last_error = "no usable address";
  for (const addrinfo* ai = list.head; ai != nullptr; ai = ai->ai_next) {
    Fd fd(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!fd.valid()) {
      last_error = std::string("socket: ") + std::strerror(errno);
      continue;
    }
    const int one = 1;
    (void)::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd.get(), ai->ai_addr, ai->ai_addrlen) < 0) {
      last_error = std::string("bind: ") + std::strerror(errno);
      continue;
    }
    if (::listen(fd.get(), 64) < 0) {
      last_error = std::string("listen: ") + std::strerror(errno);
      continue;
    }
    set_nonblocking(fd.get());
    return fd;
  }
  throw util::IoError("listen '" + endpoint.to_string() + "': " + last_error);
}

Fd connect_endpoint(const Endpoint& endpoint) {
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    return connect_unix(endpoint.path);
  }
  const AddrList list = resolve_tcp(endpoint.host, endpoint.port,
                                    /*passive=*/false);
  std::string last_error = "no usable address";
  for (const addrinfo* ai = list.head; ai != nullptr; ai = ai->ai_next) {
    Fd fd(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!fd.valid()) {
      last_error = std::string("socket: ") + std::strerror(errno);
      continue;
    }
    if (::connect(fd.get(), ai->ai_addr, ai->ai_addrlen) < 0) {
      last_error = std::string("connect: ") + std::strerror(errno);
      continue;
    }
    set_nodelay(fd.get());
    set_nonblocking(fd.get());
    return fd;
  }
  throw util::IoError("connect '" + endpoint.to_string() + "': " + last_error);
}

std::uint16_t bound_tcp_port(const Fd& listener) {
  sockaddr_storage addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(listener.get(), reinterpret_cast<sockaddr*>(&addr),
                    &len) < 0) {
    throw util::IoError(std::string("getsockname: ") + std::strerror(errno));
  }
  if (addr.ss_family == AF_INET) {
    return ntohs(reinterpret_cast<const sockaddr_in*>(&addr)->sin_port);
  }
  if (addr.ss_family == AF_INET6) {
    return ntohs(reinterpret_cast<const sockaddr_in6*>(&addr)->sin6_port);
  }
  throw util::IoError("bound_tcp_port: listener is not a TCP socket");
}

Fd listen_unix(const std::string& path) {
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) {
    throw util::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const sockaddr_un addr = make_addr(path);
  ::unlink(path.c_str());  // a stale socket file would make bind fail
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    throw util::IoError("bind '" + path + "': " + std::strerror(errno));
  }
  if (::listen(fd.get(), 64) < 0) {
    throw util::IoError("listen '" + path + "': " + std::strerror(errno));
  }
  set_nonblocking(fd.get());
  return fd;
}

Fd connect_unix(const std::string& path) {
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) {
    throw util::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const sockaddr_un addr = make_addr(path);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    throw util::IoError("connect '" + path + "': " + std::strerror(errno));
  }
  set_nonblocking(fd.get());
  return fd;
}

std::optional<Fd> accept_socket(const Fd& listener, int timeout_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const IoStatus ready = poll_for(listener.get(), POLLIN, deadline);
    if (ready == IoStatus::kTimeout) return std::nullopt;
    if (ready == IoStatus::kClosed) {
      throw util::IoError("accept: listener socket closed");
    }
    const int client = ::accept(listener.get(), nullptr, nullptr);
    if (client >= 0) {
      Fd fd(client);
      set_nodelay(fd.get());
      set_nonblocking(fd.get());
      return fd;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
        errno == ECONNABORTED) {
      // Raced another accept or the peer gave up; poll again. A shut-down
      // listener polls POLLHUP (which poll_for reports as ready) yet accepts
      // EAGAIN forever, so the deadline — not readiness — must end the loop.
      if (Clock::now() >= deadline) return std::nullopt;
      continue;
    }
    throw util::IoError(std::string("accept: ") + std::strerror(errno));
  }
}

IoStatus write_frame(const Fd& fd, const std::string& payload,
                     int timeout_ms) {
  util::require(payload.size() <= kMaxFramePayload,
                "write_frame: payload exceeds kMaxFramePayload");
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  char prefix[4] = {static_cast<char>((len >> 24) & 0xff),
                    static_cast<char>((len >> 16) & 0xff),
                    static_cast<char>((len >> 8) & 0xff),
                    static_cast<char>(len & 0xff)};
  // Prefix and payload go as two sends on one deadline; interleaving with
  // another writer is prevented by the caller's per-connection mutex.
  const IoStatus head = write_all(fd, prefix, sizeof(prefix), deadline);
  if (head != IoStatus::kOk) return head;
  return write_all(fd, payload.data(), payload.size(), deadline);
}

IoStatus read_frame(const Fd& fd, std::string& payload, int timeout_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  char prefix[4] = {};
  const IoStatus head = read_all(fd, prefix, sizeof(prefix), deadline);
  if (head != IoStatus::kOk) return head;
  const std::uint32_t len =
      (static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[0])) << 24) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[1])) << 16) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[2])) << 8) |
      static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[3]));
  if (len > kMaxFramePayload) {
    // Protocol violation: there is no way to resynchronize a length-framed
    // stream after a bogus prefix, so the connection is done.
    fd.shutdown_both();
    return IoStatus::kClosed;
  }
  payload.resize(len);
  if (len == 0) return IoStatus::kOk;
  return read_all(fd, payload.data(), len, deadline);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::key(const std::string& k) {
  if (!body_.empty()) body_ += ',';
  body_ += '"';
  body_ += json_escape(k);
  body_ += "\":";
}

JsonWriter& JsonWriter::str(const std::string& k, const std::string& value) {
  key(k);
  body_ += '"';
  body_ += json_escape(value);
  body_ += '"';
  return *this;
}

JsonWriter& JsonWriter::num(const std::string& k, double value) {
  key(k);
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  body_ += buf;
  return *this;
}

JsonWriter& JsonWriter::num_u64(const std::string& k, std::uint64_t value) {
  key(k);
  body_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::boolean(const std::string& k, bool value) {
  key(k);
  body_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::raw_body(const std::string& fragment) {
  if (fragment.empty()) return *this;
  if (!body_.empty()) body_ += ',';
  body_ += fragment;
  return *this;
}

std::string JsonWriter::finish() const { return "{" + body_ + "}"; }

const std::vector<std::string>& request_ops() {
  static const std::vector<std::string> ops = {
      "hello", "submit", "attach", "ping", "stats", "shutdown",
  };
  return ops;
}

const std::vector<std::string>& response_ops() {
  static const std::vector<std::string> ops = {
      "hello_ok", "ack", "retry_after", "point",
      "done",     "error", "pong",      "stats",
      "shutdown_ok",
  };
  return ops;
}

const std::vector<std::string>& protocol_error_codes() {
  static const std::vector<std::string> codes = {
      // Typed job failures (util::ErrorCode names as error_code_name spells
      // them) that reach terminal error frames.
      "error", "config", "sim", "io", "timeout", "cancelled",
      // Protocol-level refusals.
      "overload", "unknown_job", "unsupported_proto",
  };
  return codes;
}

}  // namespace lpm::srv
