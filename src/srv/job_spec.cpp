#include "srv/job_spec.hpp"

#include <algorithm>
#include <cstdlib>

#include "model/backend.hpp"
#include "model/trace_spec.hpp"
#include "util/error.hpp"
#include "util/fingerprint.hpp"

namespace lpm::srv {

namespace {

bool known_kind(const std::string& kind) {
  return kind == "simulate" || kind == "sweep" || kind == "walk";
}

bool known_machine(const std::string& machine) {
  return machine == "default" || machine == "three_level" ||
         machine == "nuca16";
}

bool known_sweep_knob(const std::string& knob) {
  return knob == "l1_kb" || knob == "l2_kb" || knob == "mshr";
}

/// Parses "16,32,64" into values; throws util::ConfigError on junk.
std::vector<std::uint64_t> parse_values(const std::string& list) {
  std::vector<std::uint64_t> out;
  std::size_t pos = 0;
  while (pos < list.size()) {
    std::size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
    const std::string item = list.substr(pos, comma - pos);
    if (item.empty()) {
      throw util::ConfigError("sweep_values: empty entry in '" + list + "'");
    }
    char* end = nullptr;
    const unsigned long long v = std::strtoull(item.c_str(), &end, 10);
    if (end == item.c_str() || *end != '\0' || v == 0) {
      throw util::ConfigError("sweep_values: bad entry '" + item + "'");
    }
    out.push_back(static_cast<std::uint64_t>(v));
    pos = comma + 1;
  }
  if (out.empty()) throw util::ConfigError("sweep_values: empty list");
  return out;
}

/// Reads an unsigned number key, rejecting negatives and fractions (the
/// protocol carries counts and sizes only).
std::uint64_t get_u64(const util::FlatJson& json, const std::string& key,
                      std::uint64_t fallback) {
  const auto v = json.get_number(key);
  if (!v) return fallback;
  if (*v < 0 || *v != static_cast<double>(static_cast<std::uint64_t>(*v))) {
    throw util::ConfigError("frame key '" + key +
                            "' must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(*v);
}

}  // namespace

void JobSpec::validate() const {
  if (!known_kind(kind)) {
    throw util::ConfigError("job kind '" + kind +
                            "' (want simulate | sweep | walk)");
  }
  if (!known_machine(machine)) {
    throw util::ConfigError("job machine '" + machine +
                            "' (want default | three_level | nuca16)");
  }
  // Validate against the static vocabulary, not process-local executor
  // registration: lpmc/loadgen validate client-side without an engine, and
  // the server registers the analytic executors in its constructor.
  const auto& names = model::backend_names();
  if (std::find(names.begin(), names.end(), backend) == names.end()) {
    throw util::ConfigError("job backend '" + backend + "' (want cycle | rdh | fa)");
  }
  if (workload.empty()) throw util::ConfigError("job workload is empty");
  if (length == 0) throw util::ConfigError("job length must be positive");
  if (length > 10'000'000) {
    throw util::ConfigError("job length " + std::to_string(length) +
                            " exceeds the 10M micro-op server cap");
  }
  if (kind == "sweep") {
    if (!known_sweep_knob(sweep_knob)) {
      throw util::ConfigError("sweep_knob '" + sweep_knob +
                              "' (want l1_kb | l2_kb | mshr)");
    }
    const auto values = parse_values(sweep_values);
    if (values.size() > kMaxSweepPoints) {
      throw util::ConfigError(
          "sweep_values has " + std::to_string(values.size()) +
          " points; the server caps one job at " +
          std::to_string(kMaxSweepPoints));
    }
  } else if (!sweep_knob.empty() || !sweep_values.empty()) {
    throw util::ConfigError("sweep_knob/sweep_values are sweep-only keys");
  }
  if (kind == "walk" && backend != exp::kCycleBackend) {
    // The walk screens with an analytic backend internally; its verified
    // steps are cycle-fidelity by construction.
    throw util::ConfigError("walk jobs always verify at cycle fidelity");
  }
  if (!trace_file.empty() && kind == "walk") {
    // A walk re-simulates the workload at many lengths during screening;
    // a recorded file has exactly one. Shape-check only — the file itself
    // is probed server-side in expand() (clients validate without it).
    throw util::ConfigError("job_trace_file is simulate/sweep-only");
  }
}

bool JobSpec::degrade_eligible() const {
  return degrade_ok && backend == exp::kCycleBackend &&
         (kind == "simulate" || kind == "sweep");
}

void JobSpec::encode(JsonWriter& out) const {
  out.str("job_kind", kind)
      .str("job_workload", workload)
      .num_u64("job_length", length)
      .num_u64("job_seed", seed)
      .str("job_machine", machine)
      .str("job_backend", backend)
      .boolean("job_calibrate", calibrate)
      .boolean("job_degrade_ok", degrade_ok);
  // Zero-valued overrides mean "keep the base machine"; omitting them keeps
  // frames small and makes the defaulting rule visible on the wire.
  if (l1_kb != 0) out.num_u64("job_l1_kb", l1_kb);
  if (l1_assoc != 0) out.num_u64("job_l1_assoc", l1_assoc);
  if (l2_kb != 0) out.num_u64("job_l2_kb", l2_kb);
  if (mshr != 0) out.num_u64("job_mshr", mshr);
  if (cores != 0) out.num_u64("job_cores", cores);
  if (deadline_ms != 0) out.num_u64("job_deadline_ms", deadline_ms);
  if (!trace_file.empty()) out.str("job_trace_file", trace_file);
  if (kind == "sweep") {
    out.str("job_sweep_knob", sweep_knob).str("job_sweep_values", sweep_values);
  }
}

JobSpec JobSpec::decode(const util::FlatJson& json) {
  JobSpec spec;
  spec.kind = json.get_string("job_kind").value_or(spec.kind);
  spec.workload = json.get_string("job_workload").value_or(spec.workload);
  spec.length = get_u64(json, "job_length", spec.length);
  spec.seed = get_u64(json, "job_seed", spec.seed);
  spec.machine = json.get_string("job_machine").value_or(spec.machine);
  spec.backend = json.get_string("job_backend").value_or(spec.backend);
  spec.calibrate = json.get_bool("job_calibrate").value_or(spec.calibrate);
  spec.degrade_ok = json.get_bool("job_degrade_ok").value_or(spec.degrade_ok);
  spec.l1_kb = get_u64(json, "job_l1_kb", 0);
  spec.l1_assoc = static_cast<std::uint32_t>(get_u64(json, "job_l1_assoc", 0));
  spec.l2_kb = get_u64(json, "job_l2_kb", 0);
  spec.mshr = static_cast<std::uint32_t>(get_u64(json, "job_mshr", 0));
  spec.cores = static_cast<std::uint32_t>(get_u64(json, "job_cores", 0));
  spec.deadline_ms = get_u64(json, "job_deadline_ms", 0);
  spec.trace_file = json.get_string("job_trace_file").value_or("");
  spec.sweep_knob = json.get_string("job_sweep_knob").value_or("");
  spec.sweep_values = json.get_string("job_sweep_values").value_or("");
  return spec;
}

std::uint64_t JobSpec::shard_fingerprint() const {
  // Hash the canonical wire encoding rather than the fields directly: any
  // field that matters to the wire matters to placement, and the two can
  // never drift apart.
  JsonWriter out;
  encode(out);
  util::Fingerprint fp;
  fp.mix(out.body());
  return fp.value();
}

sim::MachineConfig JobSpec::machine_config() const {
  sim::MachineConfig base = sim::MachineConfig::single_core_default();
  if (machine == "three_level") base = sim::MachineConfig::three_level_default();
  if (machine == "nuca16") base = sim::MachineConfig::nuca16();
  auto b = sim::MachineConfig::builder(std::move(base));
  if (cores != 0) b.cores(cores);
  if (l1_kb != 0 || l1_assoc != 0 || mshr != 0) {
    b.with_l1([&](mem::CacheConfig& c) {
      if (l1_kb != 0) c.size_bytes = l1_kb * 1024;
      if (l1_assoc != 0) c.associativity = l1_assoc;
      if (mshr != 0) c.mshr_entries = mshr;
    });
  }
  if (l2_kb != 0) {
    b.with_l2([&](mem::CacheConfig& c) { c.size_bytes = l2_kb * 1024; });
  }
  return b.build();
}

std::vector<exp::SimJob> JobSpec::expand(const std::string& tag) const {
  validate();
  if (kind == "walk") {
    throw util::ConfigError("walk jobs do not expand to raw engine jobs");
  }
  const sim::MachineConfig cfg = machine_config();
  model::TraceSpec trace;
  if (!trace_file.empty()) {
    // Probed here, server-side: the header supplies count and content
    // checksum, and the same 10M cap that bounds synthetic lengths bounds
    // recorded replays (per-core queue occupancy is what the cap protects).
    trace = model::TraceSpec::trace_file(trace_file);
    const std::uint64_t count = trace.workloads.front().length;
    if (count > 10'000'000) {
      throw util::ConfigError("job trace_file holds " + std::to_string(count) +
                              " ops; the server caps one job at 10M");
    }
  } else {
    trace = model::TraceSpec::spec(workload, length, seed);
  }

  auto make_job = [&](sim::MachineConfig machine_cfg,
                      const std::string& job_tag) {
    exp::SimJob job;
    job.machine = std::move(machine_cfg);
    job.workloads = trace.expand(job.machine.num_cores);
    job.calibrate = calibrate;
    job.tag = job_tag;
    job.backend = backend;
    job.validate();
    return job;
  };

  if (kind == "simulate") return {make_job(cfg, tag)};

  std::vector<exp::SimJob> jobs;
  for (const std::uint64_t v : parse_values(sweep_values)) {
    auto b = sim::MachineConfig::builder(cfg);
    if (sweep_knob == "l1_kb") {
      b.with_l1([&](mem::CacheConfig& c) { c.size_bytes = v * 1024; });
    } else if (sweep_knob == "l2_kb") {
      b.with_l2([&](mem::CacheConfig& c) { c.size_bytes = v * 1024; });
    } else {
      b.with_l1([&](mem::CacheConfig& c) {
        c.mshr_entries = static_cast<std::uint32_t>(v);
      });
    }
    jobs.push_back(
        make_job(b.build(), tag + "/" + sweep_knob + "=" + std::to_string(v)));
  }
  return jobs;
}

}  // namespace lpm::srv
