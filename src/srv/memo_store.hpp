// MemoStore: the server-side memo cache fronting the engine.
//
// The lpmd server runs its engine with the engine's own memo cache
// disabled, because that cache holds shared_ptr<SimJobResult> objects and
// never evicts — fine for one sweep's working set, wrong for a long-lived
// daemon serving arbitrary clients. The server instead memoizes the
// *rendered* result: the flat-JSON body fragment that would be spliced into
// a result frame, keyed by the same engine fingerprint (which already
// covers machine + workloads + calibrate + backend, so degraded jobs can
// never alias their full-fidelity twins).
//
// Storing the rendered fragment makes a hit allocation-cheap (one splice
// into the response frame, no re-rendering) and makes the byte budget
// honest: the accounted size is exactly what the cache keeps alive.
//
// Eviction is LRU under a byte budget. Both lookup and insert are O(1);
// everything is guarded by one mutex (entries are small and the critical
// sections are pointer shuffles, so a single lock outperforms anything
// fancier at server scale).
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "obs/metrics.hpp"

namespace lpm::srv {

class MemoStore {
 public:
  /// `byte_budget` bounds the sum of stored fragment sizes (+ key
  /// overhead). 0 disables memoization entirely (every get misses).
  explicit MemoStore(std::uint64_t byte_budget);

  /// The cached body fragment for `fingerprint`, refreshing its recency.
  [[nodiscard]] std::optional<std::string> get(std::uint64_t fingerprint);

  /// Inserts (or refreshes) a fragment, evicting LRU entries until the
  /// budget holds. A fragment larger than the whole budget is not stored.
  void put(std::uint64_t fingerprint, std::string body);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t bytes() const;
  [[nodiscard]] std::uint64_t budget() const { return byte_budget_; }

 private:
  struct Entry {
    std::uint64_t fingerprint = 0;
    std::string body;
  };

  /// Accounted footprint of one entry (fragment + key + list/map overhead
  /// approximation, so the budget tracks real memory, not just payload).
  [[nodiscard]] static std::uint64_t entry_bytes(const Entry& e) {
    return e.body.size() + 64;
  }

  void evict_until_fits_locked(std::uint64_t incoming);

  const std::uint64_t byte_budget_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  ///< front = most recent
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  std::uint64_t bytes_ = 0;

  obs::MetricsRegistry::Counter hits_;
  obs::MetricsRegistry::Counter misses_;
  obs::MetricsRegistry::Counter evictions_;
  obs::MetricsRegistry::Gauge bytes_gauge_;
};

}  // namespace lpm::srv
