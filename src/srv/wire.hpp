// Wire layer of the lpmd job server: length-prefixed flat-JSON frames over
// Unix-domain stream sockets.
//
// A frame is a 4-byte big-endian payload length followed by that many bytes
// of UTF-8 text holding exactly one flat JSON object (the shape
// util::FlatJson parses — no nesting needed anywhere in the protocol).
// Frames are capped at kMaxFramePayload so a misbehaving peer can never
// make the server buffer unboundedly; an oversized length prefix is a
// protocol error, not an allocation.
//
// All socket I/O is non-blocking + poll with an overall per-frame deadline,
// so a slow or stalled peer costs the calling thread at most `timeout_ms`
// before it reports kTimeout and the connection can be reaped. EOF and
// ECONNRESET surface as kClosed; genuinely unexpected errno values throw
// util::IoError. Writes use MSG_NOSIGNAL: a vanished peer is a return
// value, never a SIGPIPE.
//
// Thread safety: Fd is a move-only owner; frame functions are free
// functions safe on distinct fds concurrently. Two threads writing one fd
// must serialize externally (srv::Connection holds the mutex).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace lpm::srv {

/// Protocol revision spoken by this build; `hello` frames carry it.
inline constexpr int kProtocolVersion = 1;

/// Upper bound on one frame's payload (1 MiB). Large enough for any result
/// stream frame, small enough that a hostile length prefix is harmless.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 20;

/// Move-only owner of a file descriptor (socket). close() on destruction.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd();
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(other.release()) {}
  Fd& operator=(Fd&& other) noexcept;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int get() const { return fd_; }
  /// Gives up ownership without closing.
  int release();
  /// Half-closes both directions so a thread blocked in poll() on this fd
  /// wakes up; the descriptor itself stays open until destruction (safe to
  /// call while another thread is polling).
  void shutdown_both() const;

 private:
  int fd_ = -1;
};

/// Outcome of one frame read/write (never throws for peer-caused trouble).
enum class IoStatus {
  kOk,
  kTimeout,  ///< deadline expired before the frame completed
  kClosed,   ///< orderly EOF or connection reset by peer
};

[[nodiscard]] const char* to_string(IoStatus status);

/// Binds and listens on a Unix-domain socket at `path` (an existing socket
/// file is unlinked first). Throws util::IoError on failure.
[[nodiscard]] Fd listen_unix(const std::string& path);

/// Connects to the Unix-domain socket at `path`. Throws util::IoError when
/// the socket is absent or refuses.
[[nodiscard]] Fd connect_unix(const std::string& path);

/// Waits up to `timeout_ms` for a pending connection and accepts it.
/// Returns an empty optional on timeout. Throws util::IoError on listener
/// breakage.
[[nodiscard]] std::optional<Fd> accept_unix(const Fd& listener, int timeout_ms);

/// Sends one frame (length prefix + payload) within `timeout_ms`. Payloads
/// over kMaxFramePayload throw util::ConfigError (caller bug, not peer).
[[nodiscard]] IoStatus write_frame(const Fd& fd, const std::string& payload,
                                   int timeout_ms);

/// Receives one frame within `timeout_ms` into `payload`. A peer
/// announcing more than kMaxFramePayload bytes is treated as kClosed after
/// the connection is shut down (protocol violation).
[[nodiscard]] IoStatus read_frame(const Fd& fd, std::string& payload,
                                  int timeout_ms);

/// Builder for one flat JSON object, the only payload shape the protocol
/// uses. Key order is insertion order; values are escaped the same way the
/// ResultSink JSON-lines writer escapes (every control character covered).
class JsonWriter {
 public:
  JsonWriter& str(const std::string& key, const std::string& value);
  JsonWriter& num(const std::string& key, double value);
  JsonWriter& num_u64(const std::string& key, std::uint64_t value);
  JsonWriter& boolean(const std::string& key, bool value);
  /// Splices a pre-rendered `"key":value[,...]` body fragment (produced by
  /// another writer's body()) into this object verbatim.
  JsonWriter& raw_body(const std::string& fragment);

  /// The comma-joined `"key":value` body without braces — storable and
  /// spliceable into another frame via raw_body().
  [[nodiscard]] const std::string& body() const { return body_; }
  /// The complete `{...}` object.
  [[nodiscard]] std::string finish() const;

 private:
  void key(const std::string& k);
  std::string body_;
};

/// JSON string escaping used by JsonWriter (exposed for tests).
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace lpm::srv
