// Wire layer of the lpmd job server: length-prefixed flat-JSON frames over
// stream sockets — Unix-domain or TCP, selected by an Endpoint string
// ("unix:<path>", "tcp:<host>:<port>", or a bare path meaning unix).
//
// A frame is a 4-byte big-endian payload length followed by that many bytes
// of UTF-8 text holding exactly one flat JSON object (the shape
// util::FlatJson parses — no nesting needed anywhere in the protocol).
// Frames are capped at kMaxFramePayload so a misbehaving peer can never
// make the server buffer unboundedly; an oversized length prefix is a
// protocol error detected before any allocation, not an allocation.
//
// The byte stream is transport-agnostic: the same framing, deadlines, and
// payload cap apply on both transports. TCP listeners set SO_REUSEADDR (a
// crashed shard must rebind its port immediately) and connections set
// TCP_NODELAY (frames are small and latency-sensitive; Nagle would batch
// acks behind results). docs/PROTOCOL.md is the authoritative wire spec,
// locked to this header by tests/srv/protocol_doc_test.
//
// All socket I/O is non-blocking + poll with an overall per-frame deadline,
// so a slow or stalled peer costs the calling thread at most `timeout_ms`
// before it reports kTimeout and the connection can be reaped. EOF and
// ECONNRESET surface as kClosed; genuinely unexpected errno values throw
// util::IoError. Writes use MSG_NOSIGNAL: a vanished peer is a return
// value, never a SIGPIPE.
//
// Thread safety: Fd is a move-only owner; frame functions are free
// functions safe on distinct fds concurrently. Two threads writing one fd
// must serialize externally (srv::Connection holds the mutex).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace lpm::srv {

/// Protocol revision spoken by this build; `hello` frames carry it. A
/// server refuses a hello announcing a *newer* proto with a typed
/// `unsupported_proto` error (older or absent means 1 and is accepted), so
/// a client always learns the mismatch instead of tripping over missing
/// fields mid-stream.
inline constexpr int kProtocolVersion = 1;

/// Upper bound on one frame's payload (1 MiB). Large enough for any result
/// stream frame, small enough that a hostile length prefix is harmless.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 20;

/// Move-only owner of a file descriptor (socket). close() on destruction.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd();
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(other.release()) {}
  Fd& operator=(Fd&& other) noexcept;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int get() const { return fd_; }
  /// Gives up ownership without closing.
  int release();
  /// Half-closes both directions so a thread blocked in poll() on this fd
  /// wakes up; the descriptor itself stays open until destruction (safe to
  /// call while another thread is polling).
  void shutdown_both() const;

 private:
  int fd_ = -1;
};

/// Outcome of one frame read/write (never throws for peer-caused trouble).
enum class IoStatus {
  kOk,
  kTimeout,  ///< deadline expired before the frame completed
  kClosed,   ///< orderly EOF or connection reset by peer
};

[[nodiscard]] const char* to_string(IoStatus status);

/// A parsed transport address. Three accepted spellings:
///   "unix:<path>"       Unix-domain stream socket at <path>
///   "tcp:<host>:<port>" TCP (IPv4/IPv6 via getaddrinfo; numeric port)
///   "<path>"            bare string without a scheme: unix path (the
///                       pre-TCP spelling every existing script uses)
/// A TCP listen port of 0 asks the kernel for an ephemeral port; read the
/// real one back with bound_tcp_port() (Server does this for you).
struct Endpoint {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;         ///< unix only
  std::string host;         ///< tcp only
  std::uint16_t port = 0;   ///< tcp only; 0 = ephemeral (listen only)

  /// Parses one of the spellings above. Throws util::ConfigError on a
  /// malformed tcp host:port.
  [[nodiscard]] static Endpoint parse(const std::string& text);
  /// Canonical form ("unix:<path>" or "tcp:<host>:<port>").
  [[nodiscard]] std::string to_string() const;
};

/// Binds and listens on `endpoint`. For unix, an existing socket file is
/// unlinked first; for tcp, SO_REUSEADDR is set so a restarted server can
/// rebind immediately. Throws util::IoError on failure.
[[nodiscard]] Fd listen_endpoint(const Endpoint& endpoint);

/// Connects to `endpoint`. Throws util::IoError when absent or refusing.
[[nodiscard]] Fd connect_endpoint(const Endpoint& endpoint);

/// Binds and listens on a Unix-domain socket at `path` (an existing socket
/// file is unlinked first). Throws util::IoError on failure.
[[nodiscard]] Fd listen_unix(const std::string& path);

/// Connects to the Unix-domain socket at `path`. Throws util::IoError when
/// the socket is absent or refuses.
[[nodiscard]] Fd connect_unix(const std::string& path);

/// The port a TCP listener actually bound — resolves an ephemeral ":0"
/// request. Throws util::IoError when `listener` is not a bound socket.
[[nodiscard]] std::uint16_t bound_tcp_port(const Fd& listener);

/// Waits up to `timeout_ms` for a pending connection and accepts it (any
/// transport). Returns an empty optional on timeout. Throws util::IoError
/// on listener breakage.
[[nodiscard]] std::optional<Fd> accept_socket(const Fd& listener,
                                              int timeout_ms);

/// Sends one frame (length prefix + payload) within `timeout_ms`. Payloads
/// over kMaxFramePayload throw util::ConfigError (caller bug, not peer).
[[nodiscard]] IoStatus write_frame(const Fd& fd, const std::string& payload,
                                   int timeout_ms);

/// Receives one frame within `timeout_ms` into `payload`. A peer
/// announcing more than kMaxFramePayload bytes is treated as kClosed after
/// the connection is shut down (protocol violation).
[[nodiscard]] IoStatus read_frame(const Fd& fd, std::string& payload,
                                  int timeout_ms);

/// Builder for one flat JSON object, the only payload shape the protocol
/// uses. Key order is insertion order; values are escaped the same way the
/// ResultSink JSON-lines writer escapes (every control character covered).
class JsonWriter {
 public:
  JsonWriter& str(const std::string& key, const std::string& value);
  JsonWriter& num(const std::string& key, double value);
  JsonWriter& num_u64(const std::string& key, std::uint64_t value);
  JsonWriter& boolean(const std::string& key, bool value);
  /// Splices a pre-rendered `"key":value[,...]` body fragment (produced by
  /// another writer's body()) into this object verbatim.
  JsonWriter& raw_body(const std::string& fragment);

  /// The comma-joined `"key":value` body without braces — storable and
  /// spliceable into another frame via raw_body().
  [[nodiscard]] const std::string& body() const { return body_; }
  /// The complete `{...}` object.
  [[nodiscard]] std::string finish() const;

 private:
  void key(const std::string& k);
  std::string body_;
};

/// JSON string escaping used by JsonWriter (exposed for tests).
[[nodiscard]] std::string json_escape(const std::string& s);

// --- Protocol vocabulary -------------------------------------------------
// The authoritative op and error-code lists. Server::handle_frame and
// Router::handle_frame dispatch over exactly these names, and
// tests/srv/protocol_doc_test locks them to docs/PROTOCOL.md in both
// directions: an op added to the code without a doc section — or a doc
// section for an op the code dropped — fails the test.

/// Ops a client may send (request frames).
[[nodiscard]] const std::vector<std::string>& request_ops();
/// Ops a server/router may send back (response and stream frames).
[[nodiscard]] const std::vector<std::string>& response_ops();
/// Every value the `code` field of an `error` frame can carry: the typed
/// job-failure codes (util::ErrorCode names) plus the protocol-level ones.
[[nodiscard]] const std::vector<std::string>& protocol_error_codes();

}  // namespace lpm::srv
