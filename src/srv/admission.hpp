// Admission control for lpmd: one bounded queue, three defence rings.
//
// Every submitted job passes offer(), which decides atomically (queue lock
// held) which ring it lands in:
//
//  1. *Fairness backpressure* — a client with per_client_max jobs already
//     pending gets kRetryAfter with a retry hint. One greedy client can
//     therefore never starve the others no matter how fast it submits; the
//     server never buffers on its behalf (the client holds its own jobs).
//  2. *Graceful degradation* — once global depth reaches degrade_watermark,
//     degrade-eligible jobs (cycle fidelity, client allowed it) are
//     rewritten to the analytic degrade backend before queueing. They run
//     ~1000x faster at reduced fidelity, draining the queue instead of
//     growing it; the result frame is tagged `degraded:true` so the client
//     always knows which fidelity it got.
//  3. *Load shedding* — at queue_max the job is refused outright with a
//     typed overload error (kShed). Bounded queue, bounded memory: the
//     server's backlog can never grow without limit.
//
// Dispatch (pop()) is round-robin across clients, not FIFO across the
// global arrival order: each client keeps its own FIFO deque and a cursor
// rotates over clients with pending work, so a burst from one client
// interleaves fairly with everyone else's jobs.
//
// Crash recovery uses requeue(), which bypasses the rings: a journaled job
// was already admitted once, and re-losing it to a full queue would break
// the exactly-once guarantee the journal exists to provide.
#pragma once

#include <chrono>
#include <cstdint>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "srv/job_spec.hpp"

namespace lpm::srv {

/// One admitted job as it sits in the queue. `key` is the globally unique
/// "client/id" job key (journal identity); `degraded` records ring 2.
struct QueuedJob {
  std::string client;
  std::string id;
  std::string key;  ///< client + "/" + id
  JobSpec spec;
  bool degraded = false;
  /// Wall deadline derived from spec.deadline_ms at admission; time_point
  /// max() when the job has none. Checked by the executor at pop.
  std::chrono::steady_clock::time_point deadline;
  std::chrono::steady_clock::time_point accepted_at;
};

enum class AdmissionVerdict {
  kAccept,      ///< queued as submitted
  kDegrade,     ///< queued with the backend rewritten to analytic fidelity
  kRetryAfter,  ///< client over its pending budget; resubmit after the hint
  kShed,        ///< queue full; typed overload error
};

[[nodiscard]] const char* to_string(AdmissionVerdict verdict);

class AdmissionQueue {
 public:
  struct Options {
    std::size_t queue_max = 256;
    std::size_t per_client_max = 32;
    /// Depth at which ring 2 starts rewriting eligible jobs. Must be
    /// <= queue_max (equal disables degradation).
    std::size_t degrade_watermark = 128;
    /// Analytic backend degraded jobs run at.
    std::string degrade_backend = "rdh";
    /// Hint carried by kRetryAfter responses.
    std::uint64_t retry_after_ms = 200;
  };

  explicit AdmissionQueue(Options opts);

  /// Invoked under the queue lock after a job passes the rings (its
  /// degradation already applied) but before it becomes poppable. lpmd
  /// journals the accept record here: nothing can execute a job whose
  /// acceptance is not yet durable, which the exactly-once recovery
  /// argument depends on. Must not call back into the queue.
  using OnAdmit = std::function<void(const QueuedJob&, AdmissionVerdict)>;

  /// Admits (or refuses) one job; on kAccept/kDegrade the job is queued
  /// (moved from). Thread-safe; the verdict and the queue mutation are one
  /// atomic step, so two racing offers can never both claim the last slot.
  AdmissionVerdict offer(QueuedJob&& job, const OnAdmit& on_admit = nullptr);

  /// Re-enqueues a recovered job unconditionally (see header comment).
  void requeue(QueuedJob&& job);

  /// Round-robin pop across clients; blocks up to `wait` for work. Empty
  /// optional on timeout or when the queue is closed and drained.
  [[nodiscard]] std::optional<QueuedJob> pop(std::chrono::milliseconds wait);

  /// Wakes all poppers; pop() drains what is queued, then returns empty.
  void close();

  [[nodiscard]] std::size_t depth() const;
  [[nodiscard]] std::size_t pending_for(const std::string& client) const;
  [[nodiscard]] const Options& options() const { return opts_; }
  [[nodiscard]] std::uint64_t retry_after_hint_ms() const {
    return opts_.retry_after_ms;
  }

 private:
  void set_depth_gauge_locked();

  const Options opts_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool closed_ = false;
  std::size_t depth_ = 0;
  /// Per-client FIFO deques plus a rotation order; `cursor_` indexes the
  /// next client to serve in `order_`.
  std::unordered_map<std::string, std::deque<QueuedJob>> queues_;
  std::vector<std::string> order_;
  std::size_t cursor_ = 0;

  obs::MetricsRegistry::Counter accepted_;
  obs::MetricsRegistry::Counter degraded_;
  obs::MetricsRegistry::Counter retry_after_;
  obs::MetricsRegistry::Counter shed_;
  obs::MetricsRegistry::Gauge depth_gauge_;
};

}  // namespace lpm::srv
