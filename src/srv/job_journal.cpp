#include "srv/job_journal.hpp"

#include <filesystem>
#include <map>

#include "exp/journal.hpp"  // trim_partial_last_line
#include "util/error.hpp"
#include "util/log.hpp"

namespace lpm::srv {

namespace {

/// Splits "verb key rest..." (rest may contain spaces — it is JSON).
/// Returns false for lines that do not have at least verb + key.
bool split_record(const std::string& line, std::string& verb, std::string& key,
                  std::string& rest) {
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos || sp1 == 0) return false;
  verb = line.substr(0, sp1);
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) {
    key = line.substr(sp1 + 1);
    rest.clear();
  } else {
    key = line.substr(sp1 + 1, sp2 - sp1 - 1);
    rest = line.substr(sp2 + 1);
  }
  return !key.empty();
}

}  // namespace

JobJournal::JobJournal(std::string path) : path_(std::move(path)) {}

std::unique_ptr<JobJournal> JobJournal::open(const std::string& path) {
  auto journal = std::unique_ptr<JobJournal>(new JobJournal(path));

  // Load phase: heal the torn tail, then replay records in file order.
  // A std::map keyed by key keeps recovery deterministic (journal replay
  // order on restart is sorted, not arrival-order, which is fine — the
  // admission queue re-interleaves per client anyway).
  std::map<std::string, RecoveredJob> jobs;
  if (std::filesystem::exists(path)) {
    const std::uintmax_t trimmed = exp::trim_partial_last_line(path);
    if (trimmed > 0) {
      util::log_warn() << "job journal '" << path << "': dropped " << trimmed
                       << " byte(s) of torn final line";
    }
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      std::string verb;
      std::string key;
      std::string rest;
      if (!split_record(line, verb, key, rest)) continue;  // damaged: skip
      if (verb == "accept") {
        RecoveredJob job;
        job.key = key;
        // rest = "<degraded> <spec-json>"
        const std::size_t sp = rest.find(' ');
        if (sp == std::string::npos) continue;
        job.degraded = rest.substr(0, sp) == "1";
        job.spec_json = rest.substr(sp + 1);
        jobs[key] = std::move(job);
      } else if (verb == "result") {
        const auto it = jobs.find(key);
        if (it != jobs.end() && !rest.empty()) {
          it->second.frames.push_back(rest);
        }
      } else if (verb == "done") {
        const auto it = jobs.find(key);
        if (it != jobs.end()) it->second.done = true;
      }
    }
  }

  for (auto& [key, job] : jobs) {
    if (job.done) {
      journal->completed_[key] = job.frames;
    } else {
      // Partial result frames of an unfinished job are rerun leftovers;
      // the replay will regenerate them, so they are dropped here.
      job.frames.clear();
    }
    journal->recovered_.push_back(std::move(job));
  }

  // Compact phase: rewrite through a temp file + rename so a crash during
  // compaction leaves either the old journal or the new one, never a
  // half-written file that parses wrong.
  const std::string tmp = path + ".compact";
  {
    std::ofstream out(tmp, std::ios::out | std::ios::trunc);
    if (!out.is_open()) {
      throw util::IoError("JobJournal: cannot write '" + tmp + "'");
    }
    for (const RecoveredJob& job : journal->recovered_) {
      out << "accept " << job.key << ' ' << (job.degraded ? '1' : '0') << ' '
          << job.spec_json << '\n';
      if (job.done) {
        for (const std::string& frame : job.frames) {
          out << "result " << job.key << ' ' << frame << '\n';
        }
        out << "done " << job.key << '\n';
      }
    }
    out.flush();
    if (!out) throw util::IoError("JobJournal: compaction write failed");
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw util::IoError("JobJournal: rename '" + tmp + "' -> '" + path +
                        "': " + ec.message());
  }

  journal->out_.open(path, std::ios::out | std::ios::app);
  if (!journal->out_.is_open()) {
    throw util::IoError("JobJournal: cannot open '" + path + "' for append");
  }
  return journal;
}

void JobJournal::record_accept(const std::string& key, bool degraded,
                               const std::string& spec_json) {
  std::lock_guard<std::mutex> lock(mutex_);
  append_line("accept " + key + ' ' + (degraded ? "1" : "0") + ' ' + spec_json);
}

void JobJournal::record_result(const std::string& key,
                               const std::string& frame_json) {
  std::lock_guard<std::mutex> lock(mutex_);
  append_line("result " + key + ' ' + frame_json);
  pending_frames_[key].push_back(frame_json);
}

void JobJournal::record_done(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  append_line("done " + key);
  const auto it = pending_frames_.find(key);
  if (it != pending_frames_.end()) {
    completed_[key] = std::move(it->second);
    pending_frames_.erase(it);
  } else {
    completed_[key];  // done with zero frames: still answer attach
  }
}

std::vector<std::string> JobJournal::completed_frames(
    const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = completed_.find(key);
  return it == completed_.end() ? std::vector<std::string>{} : it->second;
}

bool JobJournal::is_done(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return completed_.contains(key);
}

void JobJournal::append_line(const std::string& line) {
  out_ << line << '\n';
  out_.flush();
  if (!out_) {
    throw util::IoError("JobJournal: append to '" + path_ + "' failed");
  }
}

}  // namespace lpm::srv
