// lpmd server: a crash-safe LPM job daemon over a Unix-domain or TCP
// socket (one listen endpoint per process; see wire::Endpoint). Several
// lpmd processes on distinct endpoints + journals form the shards behind
// srv::Router (router.hpp), which splits jobs by spec fingerprint.
//
// Threads:
//   * one listener thread accepts connections and reaps idle/dead ones;
//   * one reader thread per connection parses request frames and answers
//     admission verdicts inline (submit/attach/ping/stats/shutdown);
//   * `workers` executor threads pop admitted jobs round-robin-fairly from
//     the AdmissionQueue and run them on one shared ExperimentEngine.
//
// The engine is configured serial (threads = 1): a serial engine executes
// each job inline on the calling thread, and run_batch_outcomes() is safe
// to call concurrently, so the executor threads *are* the worker pool —
// no double-layered queueing, and the engine watchdog still bounds every
// execution. The engine's own memo cache is disabled; the server's
// MemoStore (LRU, byte-budgeted) is the only cache, shared across clients.
//
// Exactly-once delivery (with a journal configured):
//   execute → journal result frames → journal done → deliver frames.
// Submit is idempotent per job key ("client/id"): resubmitting a completed
// key replays its recorded frames, resubmitting an in-flight key acks
// `pending`, so a client that lost an ack can always retry safely. On
// restart, jobs journaled accept-but-not-done are re-enqueued and rerun;
// completed jobs answer `attach` from their recorded frames without
// re-executing. See job_journal.hpp for why no interleaving of crash and
// delivery can double-execute or drop a job.
//
// Overload behaviour is the AdmissionQueue's three rings (fairness
// retry_after, fidelity degradation, typed overload shed); see
// admission.hpp. Every response that refuses work carries a machine-
// readable reason, never a dropped connection.
//
// Protocol (flat JSON frames; the authoritative spec with every field is
// docs/PROTOCOL.md, locked to the code by tests/srv/protocol_doc_test):
//   -> {"op":"hello","client":<name>,"proto":1}
//   <- {"op":"hello_ok","proto":1,"recovered":<n>}
//    | {"op":"error","code":"unsupported_proto",...}   (proto too new)
//   -> {"op":"submit","id":<id>, "job_*": ...}      (see job_spec.hpp)
//   <- {"op":"ack","id","status":"queued"|"pending","degraded":b}
//    | {"op":"retry_after","id","retry_after_ms":n}
//    | {"op":"error","id","code":"overload"|...,"message"}
//    | recorded frames (resubmit of a completed key)
//   -> {"op":"attach","id"}
//   <- recorded frames | {"op":"ack","id","status":"pending"}
//    | {"op":"error","id","code":"unknown_job"}
//   -> {"op":"ping"} <- {"op":"pong"}
//   -> {"op":"stats"} <- {"op":"stats",...}
//   -> {"op":"shutdown"} <- {"op":"shutdown_ok"}   (then the server stops)
// Result frames: zero or more {"op":"point","id","seq","of",...} (sweep
// points) followed by exactly one terminal frame per job key:
// {"op":"done","id",...} or {"op":"error","id","code","message"}.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "exp/experiment_engine.hpp"
#include "obs/metrics.hpp"
#include "srv/admission.hpp"
#include "srv/job_journal.hpp"
#include "srv/memo_store.hpp"
#include "srv/wire.hpp"

namespace lpm::srv {

/// Client/job-id charset rule: [A-Za-z0-9._-]+, at most 64 chars. Keeps
/// job keys single-token in journal lines and safe in engine tags.
[[nodiscard]] bool valid_name(const std::string& name);

class Server {
 public:
  struct Options {
    /// Listen address: "unix:<path>", "tcp:<host>:<port>", or a bare unix
    /// path (see wire::Endpoint). "tcp:127.0.0.1:0" binds an ephemeral
    /// port — read it back with bound_endpoint() after start().
    std::string endpoint = "/tmp/lpmd.sock";
    /// Crash-recovery journal; empty disables (jobs die with the process).
    std::string journal_path;
    unsigned workers = 2;
    std::size_t queue_max = 256;
    std::size_t per_client_max = 32;
    std::size_t degrade_watermark = 128;
    std::string degrade_backend = "rdh";
    std::uint64_t retry_after_ms = 200;
    std::uint64_t memo_bytes = 8u << 20;
    /// Engine watchdog budget per job execution (0 = none).
    std::uint64_t job_timeout_ms = 0;
    unsigned max_retries = 1;
    /// A connection with no complete frame for this long is reaped.
    std::uint64_t idle_timeout_ms = 30'000;
    /// Per-frame write budget; a client draining slower than this is
    /// reaped rather than allowed to pin a sender.
    int io_timeout_ms = 5'000;

    /// Reads the LPMD_* environment knobs over these defaults (see
    /// docs/OPERATIONS.md): LPMD_ENDPOINT (LPMD_SOCKET is the legacy
    /// alias), LPMD_JOURNAL, LPMD_WORKERS, LPMD_QUEUE_MAX,
    /// LPMD_PER_CLIENT_MAX, LPMD_DEGRADE_WATERMARK, LPMD_DEGRADE_BACKEND,
    /// LPMD_RETRY_AFTER_MS, LPMD_MEMO_BYTES, LPMD_JOB_TIMEOUT_MS,
    /// LPMD_MAX_RETRIES, LPMD_IDLE_TIMEOUT_MS.
    [[nodiscard]] static Options from_env();
  };

  explicit Server(Options opts);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket, recovers the journal, starts listener + executors.
  void start();
  /// Blocks until stop() (or a client shutdown frame). start() implied.
  void serve();
  /// Idempotent; wakes and joins every thread, closes every connection.
  void stop();
  /// Asks serve() to wind down without blocking; async-signal-safe (one
  /// relaxed store), which is why lpmd's signal handlers use it instead of
  /// stop().
  void request_stop() {
    stop_requested_.store(true, std::memory_order_relaxed);
  }

  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const Options& options() const { return opts_; }
  /// The canonical endpoint the listener actually bound — for TCP this
  /// resolves an ephemeral ":0" port request. Valid after start().
  [[nodiscard]] const std::string& bound_endpoint() const {
    return bound_endpoint_;
  }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.depth(); }
  /// Jobs re-enqueued from the journal at start().
  [[nodiscard]] std::size_t recovered_pending() const {
    return recovered_pending_;
  }

 private:
  enum class JobPhase { kQueued, kRunning, kDone };

  struct Connection;

  struct JobState {
    JobPhase phase = JobPhase::kQueued;
    bool degraded = false;
    /// All frames of a done job, in delivery order (points then terminal).
    std::vector<std::string> frames;
    /// The connection the frames were (or are being) delivered on. Guards
    /// the push/attach race: a completion push and a concurrent attach or
    /// resubmit replay on the *same live connection* must not both send the
    /// frames — the client would count a duplicated result. A different
    /// (re)connection always gets a replay, and a failed push clears the
    /// token so the client's next attach replays. Guarded by jobs_mutex_.
    std::weak_ptr<Connection> delivered_conn;
  };

  struct Connection {
    Fd fd;
    std::string client;  ///< empty until hello
    std::mutex write_mutex;
    std::atomic<std::chrono::steady_clock::rep> last_activity{0};
    std::atomic<bool> dead{false};
  };
  using ConnPtr = std::shared_ptr<Connection>;

  void listener_loop();
  void reader_loop(ConnPtr conn);
  void executor_loop();

  /// Dispatches one request frame; returns false to close the connection.
  bool handle_frame(const ConnPtr& conn, const std::string& payload);
  void handle_submit(const ConnPtr& conn, const util::FlatJson& frame);
  void handle_attach(const ConnPtr& conn, const util::FlatJson& frame);

  /// Runs one admitted job to its recorded frames (execution, rendering,
  /// journaling) and delivers them. Never throws.
  void execute_job(QueuedJob job);
  /// Renders one engine outcome into a body fragment via the MemoStore.
  std::string outcome_fragment(const exp::SimJob& job,
                               const exp::SimJobOutcome& outcome);
  /// Journals frames + done for `key`, stores them, then delivers.
  /// `failed` picks which completion counter the job lands in.
  void finish_job(const std::string& key, const std::string& client,
                  std::vector<std::string> frames, bool failed);

  /// Sends a frame on a connection (write-mutex held inside); marks the
  /// connection dead on timeout/close so the reaper collects it.
  void send_frame(const ConnPtr& conn, const std::string& payload);
  /// Replays a done job's frames to `conn` unless that very connection is
  /// already receiving them from the completion push. Caller must NOT hold
  /// jobs_mutex_.
  void replay_done_job(const ConnPtr& conn, const std::string& key);

  void reap_idle_connections();

  Options opts_;
  AdmissionQueue queue_;
  MemoStore memo_;
  std::unique_ptr<exp::ExperimentEngine> engine_;
  std::unique_ptr<JobJournal> journal_;
  std::size_t recovered_pending_ = 0;

  Endpoint listen_endpoint_;
  std::string bound_endpoint_;
  Fd listener_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::thread listener_thread_;
  std::vector<std::thread> executors_;

  std::mutex conns_mutex_;
  /// Reader threads paired with their connections; pruned by the listener.
  std::vector<std::pair<std::thread, ConnPtr>> readers_;
  /// Latest live connection per hello'd client name.
  std::unordered_map<std::string, ConnPtr> clients_;

  std::mutex jobs_mutex_;
  std::unordered_map<std::string, JobState> jobs_;

  obs::MetricsRegistry::Counter conns_accepted_;
  obs::MetricsRegistry::Counter tcp_conns_accepted_;
  obs::MetricsRegistry::Counter conns_reaped_;
  obs::MetricsRegistry::Counter frames_received_;
  obs::MetricsRegistry::Counter frames_sent_;
  obs::MetricsRegistry::Counter jobs_completed_;
  obs::MetricsRegistry::Counter jobs_failed_;
  obs::MetricsRegistry::Counter jobs_deadline_expired_;
  obs::MetricsRegistry::Counter jobs_recovered_;
  obs::MetricsRegistry::Gauge tcp_port_;
  obs::MetricsRegistry::Histogram queue_wait_ms_;
  obs::MetricsRegistry::Histogram service_ms_;
};

}  // namespace lpm::srv
