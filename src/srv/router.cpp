#include "srv/router.hpp"

#include <unistd.h>

#include "srv/job_spec.hpp"
#include "srv/server.hpp"  // valid_name
#include "util/error.hpp"
#include "util/log.hpp"

namespace lpm::srv {

namespace {

using Clock = std::chrono::steady_clock;

Clock::rep now_rep() { return Clock::now().time_since_epoch().count(); }

std::string error_frame(const std::string& id, const std::string& code,
                        const std::string& message) {
  JsonWriter out;
  out.str("op", "error").str("id", id).str("code", code).str("message",
                                                             message);
  return out.finish();
}

}  // namespace

Router::Router(Options opts)
    : opts_(std::move(opts)),
      shard_count_(obs::MetricsRegistry::global().gauge("srv.shard.count")),
      jobs_routed_(
          obs::MetricsRegistry::global().counter("srv.shard.jobs.routed")),
      attach_fanouts_(
          obs::MetricsRegistry::global().counter("srv.shard.attach.fanout")),
      upstream_connects_(obs::MetricsRegistry::global().counter(
          "srv.shard.upstream.connects")),
      upstream_lost_(obs::MetricsRegistry::global().counter(
          "srv.shard.upstream.lost")) {
  util::require(!opts_.shards.empty(), "Router: shard list must be non-empty");
  for (const std::string& ep : opts_.shards) {
    (void)Endpoint::parse(ep);  // fail fast on a typo, not at first hello
  }
}

Router::~Router() { stop(); }

void Router::start() {
  if (running_.exchange(true)) return;
  stop_requested_.store(false);
  listen_endpoint_ = Endpoint::parse(opts_.endpoint);
  listener_ = listen_endpoint(listen_endpoint_);
  if (listen_endpoint_.kind == Endpoint::Kind::kTcp) {
    listen_endpoint_.port = bound_tcp_port(listener_);
  }
  bound_endpoint_ = listen_endpoint_.to_string();
  shard_count_.set(static_cast<double>(opts_.shards.size()));
  listener_thread_ = std::thread([this] { listener_loop(); });
}

void Router::serve() {
  start();
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  stop();
}

void Router::stop() {
  if (!running_.exchange(false)) return;
  stop_requested_.store(true);
  listener_.shutdown_both();
  if (listener_thread_.joinable()) listener_thread_.join();
  std::vector<std::pair<std::thread, SessionPtr>> sessions;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    for (auto& [thread, session] : sessions_) kill_session(session);
    sessions.swap(sessions_);
  }
  for (auto& [thread, session] : sessions) {
    if (thread.joinable()) thread.join();
  }
  if (listen_endpoint_.kind == Endpoint::Kind::kUnix &&
      !listen_endpoint_.path.empty()) {
    ::unlink(listen_endpoint_.path.c_str());
  }
}

std::size_t Router::route_count() const {
  std::lock_guard<std::mutex> lock(routes_mutex_);
  return routes_.size();
}

void Router::listener_loop() {
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    std::optional<Fd> accepted;
    try {
      accepted = accept_socket(listener_, 100);
    } catch (const util::IoError&) {
      break;  // listener shut down under us (stop())
    }
    if (accepted) {
      auto session = std::make_shared<Session>();
      session->fd = std::move(*accepted);
      session->last_activity.store(now_rep(), std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(sessions_mutex_);
      sessions_.emplace_back(
          std::thread([this, session] { session_loop(session); }), session);
    }
    reap_idle_sessions();
  }
}

void Router::session_loop(SessionPtr session) {
  std::string payload;
  while (!stop_requested_.load(std::memory_order_relaxed) &&
         !session->dead.load(std::memory_order_relaxed)) {
    const IoStatus status = read_frame(session->fd, payload, 500);
    if (status == IoStatus::kClosed) break;
    if (status == IoStatus::kTimeout) continue;  // the reaper handles idle
    session->last_activity.store(now_rep(), std::memory_order_relaxed);
    bool keep = false;
    try {
      keep = handle_frame(session, payload);
    } catch (const std::exception& e) {
      util::log_warn() << "router: dropping session after handler error: "
                       << e.what();
    }
    if (!keep) break;
  }
  kill_session(session);
  // The reader owns the pump joins: pumps never join themselves, they only
  // mark the session dead and wake us via the fd shutdowns above.
  for (Upstream& up : session->upstreams) {
    if (up.pump.joinable()) up.pump.join();
  }
}

void Router::reap_idle_sessions() {
  const auto idle_budget = std::chrono::milliseconds(opts_.idle_timeout_ms);
  std::vector<std::thread> finished;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    for (auto& [thread, session] : sessions_) {
      if (session->dead.load(std::memory_order_relaxed)) continue;
      const auto last = Clock::time_point(Clock::duration(
          session->last_activity.load(std::memory_order_relaxed)));
      if (Clock::now() - last > idle_budget) kill_session(session);
    }
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      if (it->second->dead.load(std::memory_order_relaxed) &&
          it->first.joinable()) {
        finished.push_back(std::move(it->first));
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (std::thread& t : finished) t.join();
}

void Router::kill_session(const SessionPtr& session) {
  session->dead.store(true, std::memory_order_relaxed);
  session->fd.shutdown_both();
  // handle_hello installs upstreams under this mutex and re-checks `dead`
  // inside it, so either we see the installed fds here or the handshake
  // sees the kill and aborts — never a concurrent resize/iteration.
  std::lock_guard<std::mutex> lock(session->upstreams_mutex);
  for (Upstream& up : session->upstreams) up.fd.shutdown_both();
}

bool Router::handle_frame(const SessionPtr& session,
                          const std::string& payload) {
  util::FlatJson frame;
  try {
    frame = util::FlatJson::parse(payload);
  } catch (const util::LpmError& e) {
    send_down(session, error_frame("", "config",
                                   std::string("bad frame: ") + e.what()));
    return true;
  }
  const std::string op = frame.get_string("op").value_or("");

  if (op == "hello") return handle_hello(session, frame);

  if (session->client.empty()) {
    send_down(session, error_frame("", "config", "hello required first"));
    return false;
  }

  if (op == "submit") {
    handle_submit(session, frame, payload);
    return true;
  }
  if (op == "attach") {
    handle_attach(session, frame, payload);
    return true;
  }
  if (op == "ping") {
    JsonWriter out;
    out.str("op", "pong");
    send_down(session, out.finish());
    return true;
  }
  if (op == "stats") {
    JsonWriter out;
    out.str("op", "stats")
        .boolean("router", true)
        .num_u64("shards", opts_.shards.size())
        .num_u64("routes", route_count());
    send_down(session, out.finish());
    return true;
  }
  if (op == "shutdown") {
    // Broadcast so every shard winds down (and flushes its own metrics
    // snapshot) before the router acknowledges and stops itself.
    for (std::size_t i = 0; i < session->upstreams.size(); ++i) {
      JsonWriter out;
      out.str("op", "shutdown");
      (void)write_frame(session->upstreams[i].fd, out.finish(),
                        opts_.io_timeout_ms);
    }
    JsonWriter out;
    out.str("op", "shutdown_ok");
    send_down(session, out.finish());
    stop_requested_.store(true, std::memory_order_relaxed);
    return false;
  }
  send_down(session, error_frame("", "config", "unknown op '" + op + "'"));
  return true;
}

bool Router::handle_hello(const SessionPtr& session,
                          const util::FlatJson& frame) {
  if (!session->client.empty()) {
    // A second hello would redial every shard and move-assign over live
    // pump threads (std::terminate on a joinable thread) — refuse it
    // before touching upstreams and end the session.
    send_down(session, error_frame("", "config",
                                   "hello: session already established"));
    return false;
  }
  const double proto = frame.get_number("proto").value_or(1);
  if (proto > kProtocolVersion) {
    send_down(session,
              error_frame("", "unsupported_proto",
                          "router speaks proto " +
                              std::to_string(kProtocolVersion) +
                              "; client announced a newer one"));
    return false;
  }
  const std::string client = frame.get_string("client").value_or("");
  if (!valid_name(client)) {
    send_down(session, error_frame("", "config",
                                   "hello: client name must be "
                                   "[A-Za-z0-9._-]{1,64}"));
    return false;
  }
  session->client = client;

  // Dial every shard with the client's own name (shard-side job keys are
  // "client/id"), retrying through the budget so a shard mid-restart does
  // not fail the whole session. Connections land in a local vector first:
  // the idle reaper or stop() may kill_session() mid-handshake, and
  // `session->upstreams` must only be touched under its mutex.
  std::uint64_t recovered = 0;
  std::vector<Fd> dialed(opts_.shards.size());
  for (std::size_t i = 0; i < opts_.shards.size(); ++i) {
    const auto deadline = Clock::now() + std::chrono::milliseconds(
                                             opts_.upstream_connect_budget_ms);
    bool connected = false;
    while (!connected && !stop_requested_.load(std::memory_order_relaxed) &&
           !session->dead.load(std::memory_order_relaxed)) {
      try {
        Fd fd = connect_endpoint(Endpoint::parse(opts_.shards[i]));
        JsonWriter hello;
        hello.str("op", "hello").str("client", client).num_u64(
            "proto", kProtocolVersion);
        if (write_frame(fd, hello.finish(), 1'000) == IoStatus::kOk) {
          std::string reply;
          if (read_frame(fd, reply, 2'000) == IoStatus::kOk) {
            const util::FlatJson ok = util::FlatJson::parse(reply);
            if (ok.get_string("op").value_or("") == "hello_ok") {
              recovered += static_cast<std::uint64_t>(
                  ok.get_number("recovered").value_or(0.0));
              dialed[i] = std::move(fd);
              connected = true;
            }
          }
        }
      } catch (const util::IoError&) {
        // shard absent or mid-restart; retry below
      }
      if (!connected) {
        if (Clock::now() >= deadline) {
          send_down(session,
                    error_frame("", "io",
                                "shard " + std::to_string(i) + " at '" +
                                    opts_.shards[i] + "' is unreachable"));
          return false;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    }
    if (!connected) return false;  // stop requested / session killed mid-dial
    upstream_connects_.inc();
  }

  {
    std::lock_guard<std::mutex> lock(session->upstreams_mutex);
    if (session->dead.load(std::memory_order_relaxed)) {
      return false;  // reaped mid-handshake; `dialed` closes on unwind
    }
    session->upstreams.resize(dialed.size());
    for (std::size_t i = 0; i < dialed.size(); ++i) {
      session->upstreams[i].fd = std::move(dialed[i]);
    }
    for (std::size_t i = 0; i < session->upstreams.size(); ++i) {
      session->upstreams[i].pump =
          std::thread([this, session, i] { pump_loop(session, i); });
    }
  }

  JsonWriter out;
  out.str("op", "hello_ok")
      .num_u64("proto", kProtocolVersion)
      .num_u64("recovered", recovered);
  send_down(session, out.finish());
  return true;
}

void Router::handle_submit(const SessionPtr& session,
                           const util::FlatJson& frame,
                           const std::string& payload) {
  const std::string id = frame.get_string("id").value_or("");
  if (!valid_name(id)) {
    send_down(session, error_frame(id, "config",
                                   "submit: id must be [A-Za-z0-9._-]{1,64}"));
    return;
  }
  const std::string key = session->client + "/" + id;
  std::size_t shard = 0;
  {
    std::lock_guard<std::mutex> lock(routes_mutex_);
    const auto it = routes_.find(key);
    if (it != routes_.end()) {
      // A resubmit must reach the shard that first accepted the key, even
      // if the spec changed — the shard's idempotency rule owns the id.
      shard = it->second;
    } else {
      try {
        shard = static_cast<std::size_t>(
            JobSpec::decode(frame).shard_fingerprint() % opts_.shards.size());
      } catch (const util::LpmError& e) {
        send_down(session,
                  error_frame(id, error_code_name(e.code()), e.what()));
        return;
      }
      routes_[key] = shard;
    }
  }
  jobs_routed_.inc();
  send_up(session, shard, payload);
}

void Router::handle_attach(const SessionPtr& session,
                           const util::FlatJson& frame,
                           const std::string& payload) {
  const std::string id = frame.get_string("id").value_or("");
  const std::string key = session->client + "/" + id;
  std::size_t shard = 0;
  bool have_route = false;
  {
    std::lock_guard<std::mutex> lock(routes_mutex_);
    const auto it = routes_.find(key);
    if (it != routes_.end()) {
      shard = it->second;
      have_route = true;
    }
  }
  if (have_route) {
    send_up(session, shard, payload);
    return;
  }
  // No learned route (router restarted, or the id never existed): ask every
  // shard, swallow non-owner unknown_jobs (see header comment).
  attach_fanouts_.inc();
  {
    std::lock_guard<std::mutex> lock(session->fanout_mutex);
    // A repeated attach for an id whose fan-out is still pending keeps
    // the existing state — the replied[] bitmap makes duplicate shard
    // replies idempotent, so resetting it would double-count them.
    const auto it = session->fanout_pending.find(id);
    if (it == session->fanout_pending.end()) {
      Fanout fan;
      fan.replied.assign(session->upstreams.size(), false);
      fan.remaining = session->upstreams.size();
      session->fanout_pending.emplace(id, std::move(fan));
    }
  }
  for (std::size_t i = 0; i < session->upstreams.size(); ++i) {
    send_up(session, i, payload);
  }
}

void Router::pump_loop(SessionPtr session, std::size_t shard) {
  std::string payload;
  while (!stop_requested_.load(std::memory_order_relaxed) &&
         !session->dead.load(std::memory_order_relaxed)) {
    const IoStatus status =
        read_frame(session->upstreams[shard].fd, payload, 500);
    if (status == IoStatus::kTimeout) continue;
    if (status == IoStatus::kClosed) {
      // Shard gone (SIGKILL or shutdown). Kill the session; the client's
      // reconnect redials every shard and reconciles via attach/resubmit.
      if (!session->dead.load(std::memory_order_relaxed) &&
          !stop_requested_.load(std::memory_order_relaxed)) {
        upstream_lost_.inc();
      }
      kill_session(session);
      return;
    }

    std::string id;
    bool forward = true;
    try {
      const util::FlatJson frame = util::FlatJson::parse(payload);
      id = frame.get_string("id").value_or("");
      const std::string op = frame.get_string("op").value_or("");
      const bool is_error = op == "error";
      const bool is_unknown =
          is_error && frame.get_string("code").value_or("") == "unknown_job";
      if (!id.empty()) {
        std::lock_guard<std::mutex> lock(session->fanout_mutex);
        const auto it = session->fanout_pending.find(id);
        if (it != session->fanout_pending.end()) {
          Fanout& fan = it->second;
          if (shard < fan.replied.size() && !fan.replied[shard]) {
            fan.replied[shard] = true;
            --fan.remaining;
          }
          if (is_unknown) {
            // Forward unknown_job only when every shard has disowned the
            // key — a premature one would license an unsafe resubmit —
            // and never once an owner has answered, even when that answer
            // raced ahead of a slower shard's verdict (the entry lives
            // until all N shards have replied precisely for this case).
            forward = !fan.answered && fan.remaining == 0;
          } else {
            fan.answered = true;
          }
          if (fan.remaining == 0) session->fanout_pending.erase(it);
        }
      }
      if (!id.empty() && forward) {
        const std::string key = session->client + "/" + id;
        std::lock_guard<std::mutex> lock(routes_mutex_);
        if (op == "done" || is_error) {
          // Terminal frame: evict the route so the table stays bounded by
          // in-flight jobs, not jobs ever routed. Placement for a later
          // resubmit of the key is re-derived from the spec fingerprint.
          routes_.erase(key);
        } else {
          // Any substantive answer pins the key to this shard for later
          // attaches (cheap, and it repopulates the table after a
          // restart).
          routes_[key] = shard;
        }
      }
    } catch (const util::LpmError&) {
      // Unparseable shard frame: forward verbatim, the client will complain.
    }
    if (forward) {
      session->last_activity.store(now_rep(), std::memory_order_relaxed);
      send_down(session, payload);
    }
  }
}

void Router::send_down(const SessionPtr& session, const std::string& payload) {
  if (session->dead.load(std::memory_order_relaxed)) return;
  IoStatus status = IoStatus::kClosed;
  {
    std::lock_guard<std::mutex> lock(session->write_mutex);
    status = write_frame(session->fd, payload, opts_.io_timeout_ms);
  }
  if (status != IoStatus::kOk) kill_session(session);
}

void Router::send_up(const SessionPtr& session, std::size_t shard,
                     const std::string& payload) {
  if (session->dead.load(std::memory_order_relaxed)) return;
  if (write_frame(session->upstreams[shard].fd, payload,
                  opts_.io_timeout_ms) != IoStatus::kOk) {
    kill_session(session);
  }
}

}  // namespace lpm::srv
