// srv::Router: the front process of a sharded lpmd deployment. It speaks
// the same wire protocol as Server on its downstream side (clients cannot
// tell a router from a plain lpmd) and fans work out to N backend lpmd
// shards, each with its own journal and memo store.
//
// Placement: a submit is routed by JobSpec::shard_fingerprint() % N —
// journal and memo already key on fingerprints, so shards never overlap
// and a router restart re-derives the same placement from the spec alone.
// The chosen shard is also remembered per job key ("client/id") so an
// idempotent *resubmit* — which may legally carry a different spec for the
// same id — still lands on the shard that first accepted the key, keeping
// the single-server resubmit semantics (job_journal.hpp) intact. Routes
// are evicted when the job's terminal frame passes through, so the table
// is bounded by in-flight jobs; resubmits after the terminal re-derive
// the same placement from the (idempotent) spec's fingerprint.
//
// Attach carries no spec, so after a router restart the route table is
// gone. An attach with no learned route fans out to every shard: the owner
// replays its recorded frames (forwarded verbatim), and the router
// swallows the other shards' unknown_job errors, synthesizing a single
// unknown_job only when *all* N shards disown the key. This matters for
// exactly-once: a client treats unknown_job as "safe to resubmit", so a
// premature unknown_job from a non-owner could double-run a job that is
// terminal on its owner.
//
// Per downstream session the router holds one upstream connection to every
// shard, hello'd with the *client's* name (shard-side job keys must be
// "client/id"). Each upstream has a pump thread forwarding result frames
// downstream verbatim. When a shard connection drops (SIGKILL mid-job),
// the router kills the whole downstream session: the client reconnects,
// the new session redials every shard with the connect budget (covering
// the restart window), and the client's attach/resubmit discipline
// reconciles against the shard's journal — the same recovery path PR 7
// proved for one process.
//
// Ops answered locally: ping (pong), stats (router-level: shard count,
// learned routes), shutdown (broadcast to every shard so each writes its
// metrics snapshot, then the router stops). hello is answered after all
// upstreams are up, with `recovered` summed across shards.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "srv/wire.hpp"
#include "util/flat_json.hpp"

namespace lpm::srv {

class Router {
 public:
  struct Options {
    /// Downstream listen address (wire::Endpoint spelling). ":0" binds an
    /// ephemeral port — read it back with bound_endpoint() after start().
    std::string endpoint = "tcp:127.0.0.1:0";
    /// Backend lpmd endpoints, one per shard; order defines shard indices
    /// and must be stable across router restarts (placement depends on it).
    std::vector<std::string> shards;
    /// Per-shard dial budget when a session opens — sized to cover a shard
    /// restart (connect retries every 50 ms until it lapses).
    std::uint64_t upstream_connect_budget_ms = 15'000;
    int io_timeout_ms = 5'000;
    /// A downstream session with no frame in either direction for this
    /// long is reaped.
    std::uint64_t idle_timeout_ms = 30'000;
  };

  explicit Router(Options opts);
  ~Router();
  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  void start();
  /// Blocks until stop() (or a client shutdown frame). start() implied.
  void serve();
  void stop();
  /// Async-signal-safe stop request (one relaxed store), like Server's.
  void request_stop() {
    stop_requested_.store(true, std::memory_order_relaxed);
  }

  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const Options& options() const { return opts_; }
  /// The endpoint the listener actually bound (ephemeral port resolved).
  [[nodiscard]] const std::string& bound_endpoint() const {
    return bound_endpoint_;
  }
  /// Learned job-key routes. Bounded by in-flight jobs: an entry is made
  /// at submit (or an attach answer) and evicted when the job's terminal
  /// frame is forwarded — placement is re-derivable from the spec
  /// fingerprint, so a post-terminal resubmit still finds its shard.
  [[nodiscard]] std::size_t route_count() const;

 private:
  struct Upstream {
    Fd fd;
    std::thread pump;
  };

  /// One attach fan-out in flight: which shards have answered (in any
  /// form), how many are still silent, and whether an owner produced a
  /// substantive answer. The entry lives until *every* shard has replied
  /// so a slow non-owner's unknown_job is suppressed even after the
  /// owner's answer has already been forwarded.
  struct Fanout {
    std::vector<bool> replied;  ///< indexed by shard
    std::size_t remaining = 0;
    bool answered = false;
  };

  struct Session {
    Fd fd;  ///< downstream (client-facing)
    std::string client;  ///< empty until hello
    std::mutex write_mutex;  ///< serializes downstream writes (N pumps)
    std::atomic<std::chrono::steady_clock::rep> last_activity{0};
    std::atomic<bool> dead{false};
    /// Guards the *structure* of `upstreams` (resize + fd install during
    /// hello) against kill_session's iteration — the idle reaper or
    /// stop() can kill a session mid-handshake. After hello the vector
    /// is never resized, so pumps read their own slot without the lock.
    std::mutex upstreams_mutex;
    /// One connection per shard, opened during hello; indices match
    /// Options::shards.
    std::vector<Upstream> upstreams;
    /// Attach fan-outs awaiting verdicts: job id -> per-shard reply
    /// state. Guarded by fanout_mutex.
    std::mutex fanout_mutex;
    std::unordered_map<std::string, Fanout> fanout_pending;
  };
  using SessionPtr = std::shared_ptr<Session>;

  void listener_loop();
  void session_loop(SessionPtr session);
  void pump_loop(SessionPtr session, std::size_t shard);
  void reap_idle_sessions();

  /// Dispatches one downstream frame; returns false to end the session.
  bool handle_frame(const SessionPtr& session, const std::string& payload);
  bool handle_hello(const SessionPtr& session, const util::FlatJson& frame);
  void handle_submit(const SessionPtr& session, const util::FlatJson& frame,
                     const std::string& payload);
  void handle_attach(const SessionPtr& session, const util::FlatJson& frame,
                     const std::string& payload);

  /// Sends a frame downstream (write mutex held inside); marks the session
  /// dead on timeout/close.
  void send_down(const SessionPtr& session, const std::string& payload);
  /// Sends a frame to one shard; a failed upstream write kills the session
  /// (the client reconnects and reconciles).
  void send_up(const SessionPtr& session, std::size_t shard,
               const std::string& payload);
  /// Ends a session: marks it dead and shuts down every fd so its reader
  /// and pump threads wake.
  void kill_session(const SessionPtr& session);

  Options opts_;
  Endpoint listen_endpoint_;
  std::string bound_endpoint_;
  Fd listener_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::thread listener_thread_;

  std::mutex sessions_mutex_;
  std::vector<std::pair<std::thread, SessionPtr>> sessions_;

  /// Job key ("client/id") -> shard index, learned at submit and from
  /// attach fan-out answers, evicted at the terminal frame. Router-global
  /// so it survives reconnects.
  mutable std::mutex routes_mutex_;
  std::unordered_map<std::string, std::size_t> routes_;

  obs::MetricsRegistry::Gauge shard_count_;
  obs::MetricsRegistry::Counter jobs_routed_;
  obs::MetricsRegistry::Counter attach_fanouts_;
  obs::MetricsRegistry::Counter upstream_connects_;
  obs::MetricsRegistry::Counter upstream_lost_;
};

}  // namespace lpm::srv
