// Client side of the lpmd protocol: connection management + frame
// plumbing for the lpmc CLI and the lpm_loadgen soak harness.
//
// The protocol is asynchronous — after `submit`, result frames for any of
// the client's jobs may arrive interleaved with acks for new submissions —
// so the API is deliberately event-shaped: senders fire one frame, and
// poll() returns whatever frame arrives next. Callers keep their own
// job-state maps (see tools/lpm_loadgen.cpp for the full
// resubmit/attach/dedup discipline).
//
// connect() retries until the socket accepts or the budget lapses, which
// is what makes kill-and-restart recovery exercisable from the outside:
// the harness SIGKILLs the server, restarts it, and every client simply
// reconnects, re-hellos, and attaches the ids it has not yet seen a
// terminal frame for.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "srv/job_spec.hpp"
#include "srv/wire.hpp"
#include "util/flat_json.hpp"

namespace lpm::srv {

class Client {
 public:
  /// `name` identifies this client to the server (job keys are
  /// "<name>/<id>"); must satisfy valid_name().
  Client(std::string socket_path, std::string name);

  /// Connects and completes the hello exchange, retrying a refused or
  /// absent socket until `budget_ms` lapses (the server may be mid-restart).
  /// Throws util::IoError when the budget runs out.
  void connect(std::uint64_t budget_ms = 5'000);
  /// True between a successful connect() and a peer-closed poll()/send.
  [[nodiscard]] bool connected() const { return fd_.valid(); }
  void disconnect();

  /// `recovered` count reported by the server's hello_ok on last connect.
  [[nodiscard]] std::uint64_t server_recovered() const { return recovered_; }

  /// Fire-and-forget senders; responses arrive via poll(). They return
  /// false (after dropping the connection) when the peer is gone.
  bool submit(const std::string& id, const JobSpec& spec);
  bool attach(const std::string& id);
  bool ping();
  bool request_stats();
  bool request_shutdown();

  /// The next frame from the server within `timeout_ms`, parsed. Empty on
  /// timeout; empty + connected()==false when the peer closed.
  [[nodiscard]] std::optional<util::FlatJson> poll(int timeout_ms);

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  bool send(const std::string& payload);

  std::string socket_path_;
  std::string name_;
  Fd fd_;
  std::uint64_t recovered_ = 0;
};

}  // namespace lpm::srv
