// Client side of the lpmd protocol: connection management + frame
// plumbing for the lpmc CLI and the lpm_loadgen soak harness.
//
// The protocol is asynchronous — after `submit`, result frames for any of
// the client's jobs may arrive interleaved with acks for new submissions —
// so the API is deliberately event-shaped: senders fire one frame, and
// poll() returns whatever frame arrives next. Callers keep their own
// job-state maps (see tools/lpm_loadgen.cpp for the full
// resubmit/attach/dedup discipline).
//
// A client holds a *list* of endpoints (unix or tcp; see wire::Endpoint).
// connect() tries them round-robin starting at a sticky cursor and retries
// until one accepts or the budget lapses, which is what makes
// kill-and-restart recovery exercisable from the outside: the harness
// SIGKILLs a server, restarts it, and every client simply reconnects,
// re-hellos, and attaches the ids it has not yet seen a terminal frame
// for. Job-bearing traffic (submit/attach) should stay on one endpoint —
// behind a Router the router owns placement; against raw shards the
// caller must pin keys itself. Shard-agnostic ops (ping/stats) may call
// rotate() between connects to spread load across the list.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "srv/job_spec.hpp"
#include "srv/wire.hpp"
#include "util/flat_json.hpp"

namespace lpm::srv {

class Client {
 public:
  /// `name` identifies this client to the server (job keys are
  /// "<name>/<id>"); must satisfy valid_name(). `endpoint` is one
  /// wire::Endpoint spelling ("unix:...", "tcp:host:port", bare path).
  Client(std::string endpoint, std::string name);
  /// Failover form: connect() walks `endpoints` round-robin from the
  /// current cursor until one accepts. The list must be non-empty.
  Client(std::vector<std::string> endpoints, std::string name);

  /// Connects and completes the hello exchange, retrying refused or
  /// absent endpoints until `budget_ms` lapses (a server may be
  /// mid-restart). Each failed attempt advances to the next endpoint in
  /// the list. Throws util::IoError when the budget runs out, and
  /// util::ConfigError when the server refuses our protocol version.
  void connect(std::uint64_t budget_ms = 5'000);
  /// True between a successful connect() and a peer-closed poll()/send.
  [[nodiscard]] bool connected() const { return fd_.valid(); }
  void disconnect();

  /// Advances the endpoint cursor so the next connect() starts at a
  /// different endpoint — client-side load balancing for shard-agnostic
  /// ops (ping/stats) against a list of raw shards.
  void rotate() { cursor_ = (cursor_ + 1) % endpoints_.size(); }

  /// The endpoint the current (or last) connection used.
  [[nodiscard]] const std::string& endpoint() const {
    return endpoints_[cursor_];
  }
  [[nodiscard]] const std::vector<std::string>& endpoints() const {
    return endpoints_;
  }

  /// `recovered` count reported by the server's hello_ok on last connect.
  [[nodiscard]] std::uint64_t server_recovered() const { return recovered_; }
  /// Protocol version announced by the server's hello_ok on last connect.
  [[nodiscard]] int server_proto() const { return server_proto_; }

  /// Fire-and-forget senders; responses arrive via poll(). They return
  /// false (after dropping the connection) when the peer is gone.
  bool submit(const std::string& id, const JobSpec& spec);
  bool attach(const std::string& id);
  bool ping();
  bool request_stats();
  bool request_shutdown();

  /// The next frame from the server within `timeout_ms`, parsed. Empty on
  /// timeout; empty + connected()==false when the peer closed.
  [[nodiscard]] std::optional<util::FlatJson> poll(int timeout_ms);

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  bool send(const std::string& payload);

  std::vector<std::string> endpoints_;
  std::size_t cursor_ = 0;  ///< endpoint the next connect() tries first
  std::string name_;
  Fd fd_;
  std::uint64_t recovered_ = 0;
  int server_proto_ = 0;
};

}  // namespace lpm::srv
