#include "srv/server.hpp"

#include <cstdlib>
#include <unistd.h>

#include "core/design_space.hpp"
#include "exp/result_sink.hpp"
#include "lpm.hpp"
#include "model/backend.hpp"
#include "util/error.hpp"
#include "util/fingerprint.hpp"
#include "util/log.hpp"

namespace lpm::srv {

namespace {

using Clock = std::chrono::steady_clock;

std::string env_str(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v != nullptr && *v != '\0') ? std::string(v) : fallback;
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v || *end != '\0') {
    throw util::ConfigError(std::string("$") + name + ": bad number '" + v +
                            "'");
  }
  return static_cast<std::uint64_t>(parsed);
}

Clock::rep now_rep() { return Clock::now().time_since_epoch().count(); }

double ms_since(Clock::time_point start) {
  return 1e-6 *
         static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                  start)
                 .count());
}

/// A terminal error frame for `id`.
std::string error_frame(const std::string& id, const std::string& code,
                        const std::string& message) {
  JsonWriter out;
  out.str("op", "error").str("id", id).str("code", code).str("message",
                                                             message);
  return out.finish();
}

/// The spec JSON line journaled with an accept record.
std::string spec_json_line(const JobSpec& spec) {
  JsonWriter out;
  spec.encode(out);
  return out.finish();
}

}  // namespace

bool valid_name(const std::string& name) {
  if (name.empty() || name.size() > 64) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

Server::Options Server::Options::from_env() {
  Options opts;
  opts.endpoint = env_str("LPMD_SOCKET", opts.endpoint);
  opts.endpoint = env_str("LPMD_ENDPOINT", opts.endpoint);
  opts.journal_path = env_str("LPMD_JOURNAL", opts.journal_path);
  opts.workers =
      static_cast<unsigned>(env_u64("LPMD_WORKERS", opts.workers));
  opts.queue_max =
      static_cast<std::size_t>(env_u64("LPMD_QUEUE_MAX", opts.queue_max));
  opts.per_client_max = static_cast<std::size_t>(
      env_u64("LPMD_PER_CLIENT_MAX", opts.per_client_max));
  opts.degrade_watermark = static_cast<std::size_t>(
      env_u64("LPMD_DEGRADE_WATERMARK", opts.degrade_watermark));
  opts.degrade_backend = env_str("LPMD_DEGRADE_BACKEND", opts.degrade_backend);
  opts.retry_after_ms = env_u64("LPMD_RETRY_AFTER_MS", opts.retry_after_ms);
  opts.memo_bytes = env_u64("LPMD_MEMO_BYTES", opts.memo_bytes);
  opts.job_timeout_ms = env_u64("LPMD_JOB_TIMEOUT_MS", opts.job_timeout_ms);
  opts.max_retries =
      static_cast<unsigned>(env_u64("LPMD_MAX_RETRIES", opts.max_retries));
  opts.idle_timeout_ms =
      env_u64("LPMD_IDLE_TIMEOUT_MS", opts.idle_timeout_ms);
  return opts;
}

Server::Server(Options opts)
    : opts_(std::move(opts)),
      queue_(AdmissionQueue::Options{opts_.queue_max, opts_.per_client_max,
                                     opts_.degrade_watermark,
                                     opts_.degrade_backend,
                                     opts_.retry_after_ms}),
      memo_(opts_.memo_bytes),
      conns_accepted_(obs::MetricsRegistry::global().counter(
          "srv.connections.accepted")),
      tcp_conns_accepted_(obs::MetricsRegistry::global().counter(
          "srv.tcp.connections.accepted")),
      conns_reaped_(
          obs::MetricsRegistry::global().counter("srv.connections.reaped")),
      frames_received_(
          obs::MetricsRegistry::global().counter("srv.frames.received")),
      frames_sent_(obs::MetricsRegistry::global().counter("srv.frames.sent")),
      jobs_completed_(
          obs::MetricsRegistry::global().counter("srv.jobs.completed")),
      jobs_failed_(obs::MetricsRegistry::global().counter("srv.jobs.failed")),
      jobs_deadline_expired_(obs::MetricsRegistry::global().counter(
          "srv.jobs.deadline_expired")),
      jobs_recovered_(
          obs::MetricsRegistry::global().counter("srv.jobs.recovered")),
      tcp_port_(obs::MetricsRegistry::global().gauge("srv.tcp.port")),
      queue_wait_ms_(obs::MetricsRegistry::global().histogram(
          "srv.job.queue_wait_ms", obs::MetricsRegistry::latency_ms_bounds())),
      service_ms_(obs::MetricsRegistry::global().histogram(
          "srv.job.service_ms", obs::MetricsRegistry::latency_ms_bounds())) {
  util::require(opts_.workers > 0, "Server: workers must be > 0");
  // Analytic backends must exist before any degraded or rdh/fa job runs.
  model::register_analytic_executors();
  util::require(
      exp::ExperimentEngine::has_backend_executor(opts_.degrade_backend),
      "Server: degrade_backend is not a registered backend");

  engine_ = std::make_unique<exp::ExperimentEngine>(
      exp::ExperimentEngine::Options::builder()
          // Serial engine = executor threads are the pool; see server.hpp.
          .threads(1)
          .cache(false)  // the MemoStore is the one server cache
          .max_retries(opts_.max_retries)
          .retry_backoff_base_ms(5)
          .job_timeout_ms(opts_.job_timeout_ms)
          .policy(exp::FailurePolicy::kCollect)
          .fault_plan(exp::FaultPlan::from_env())
          .build());
}

Server::~Server() { stop(); }

void Server::start() {
  if (running_.exchange(true)) return;
  stop_requested_.store(false);

  if (!opts_.journal_path.empty()) {
    journal_ = JobJournal::open(opts_.journal_path);
    for (const RecoveredJob& rec : journal_->recovered()) {
      const std::size_t slash = rec.key.find('/');
      if (slash == std::string::npos) continue;
      if (rec.done) {
        std::lock_guard<std::mutex> lock(jobs_mutex_);
        JobState state;
        state.phase = JobPhase::kDone;
        state.degraded = rec.degraded;
        state.frames = rec.frames;
        jobs_[rec.key] = std::move(state);
        continue;
      }
      try {
        QueuedJob job;
        job.client = rec.key.substr(0, slash);
        job.id = rec.key.substr(slash + 1);
        job.key = rec.key;
        job.spec = JobSpec::decode(util::FlatJson::parse(rec.spec_json));
        job.spec.validate();
        job.degraded = rec.degraded;
        job.deadline = Clock::time_point::max();  // survived a crash; run it
        job.accepted_at = Clock::now();
        {
          std::lock_guard<std::mutex> lock(jobs_mutex_);
          JobState state;
          state.degraded = rec.degraded;
          jobs_[rec.key] = std::move(state);
        }
        queue_.requeue(std::move(job));
        ++recovered_pending_;
        jobs_recovered_.inc();
      } catch (const util::LpmError& e) {
        util::log_warn() << "lpmd: dropping unrecoverable journal entry '"
                         << rec.key << "': " << e.what();
      }
    }
    if (recovered_pending_ > 0) {
      util::log_info() << "lpmd: re-enqueued " << recovered_pending_
                       << " in-flight job(s) from " << opts_.journal_path;
    }
  }

  listen_endpoint_ = Endpoint::parse(opts_.endpoint);
  listener_ = listen_endpoint(listen_endpoint_);
  if (listen_endpoint_.kind == Endpoint::Kind::kTcp) {
    // Resolve an ephemeral ":0" request to the port the kernel picked.
    listen_endpoint_.port = bound_tcp_port(listener_);
    tcp_port_.set(listen_endpoint_.port);
  }
  bound_endpoint_ = listen_endpoint_.to_string();
  listener_thread_ = std::thread([this] { listener_loop(); });
  for (unsigned i = 0; i < opts_.workers; ++i) {
    executors_.emplace_back([this] { executor_loop(); });
  }
}

void Server::serve() {
  start();
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  stop();
}

void Server::stop() {
  if (!running_.exchange(false)) return;
  stop_requested_.store(true);
  queue_.close();
  listener_.shutdown_both();
  if (listener_thread_.joinable()) listener_thread_.join();
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (auto& [thread, conn] : readers_) conn->fd.shutdown_both();
  }
  // Reader threads observe the shutdown (poll wakes with kClosed) and exit.
  std::vector<std::pair<std::thread, ConnPtr>> readers;
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    readers.swap(readers_);
    clients_.clear();
  }
  for (auto& [thread, conn] : readers) {
    if (thread.joinable()) thread.join();
  }
  for (std::thread& t : executors_) {
    if (t.joinable()) t.join();
  }
  executors_.clear();
  if (listen_endpoint_.kind == Endpoint::Kind::kUnix &&
      !listen_endpoint_.path.empty()) {
    ::unlink(listen_endpoint_.path.c_str());
  }
}

void Server::listener_loop() {
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    std::optional<Fd> accepted;
    try {
      accepted = accept_socket(listener_, 100);
    } catch (const util::IoError&) {
      break;  // listener shut down under us (stop())
    }
    if (accepted) {
      auto conn = std::make_shared<Connection>();
      conn->fd = std::move(*accepted);
      conn->last_activity.store(now_rep(), std::memory_order_relaxed);
      conns_accepted_.inc();
      if (listen_endpoint_.kind == Endpoint::Kind::kTcp) {
        tcp_conns_accepted_.inc();
      }
      std::lock_guard<std::mutex> lock(conns_mutex_);
      readers_.emplace_back(std::thread([this, conn] { reader_loop(conn); }),
                            conn);
    }
    reap_idle_connections();
  }
}

void Server::reader_loop(ConnPtr conn) {
  std::string payload;
  while (!stop_requested_.load(std::memory_order_relaxed) &&
         !conn->dead.load(std::memory_order_relaxed)) {
    const IoStatus status = read_frame(conn->fd, payload, 500);
    if (status == IoStatus::kClosed) break;
    if (status == IoStatus::kTimeout) continue;  // idle check is the reaper's
    conn->last_activity.store(now_rep(), std::memory_order_relaxed);
    frames_received_.inc();
    bool keep = false;
    try {
      keep = handle_frame(conn, payload);
    } catch (const std::exception& e) {
      // A handler bug must never take the server down with the connection.
      util::log_warn() << "lpmd: dropping connection after handler error: "
                       << e.what();
    }
    if (!keep) break;
  }
  conn->dead.store(true, std::memory_order_relaxed);
  conn->fd.shutdown_both();
  std::lock_guard<std::mutex> lock(conns_mutex_);
  const auto it = clients_.find(conn->client);
  if (it != clients_.end() && it->second == conn) clients_.erase(it);
}

void Server::reap_idle_connections() {
  const auto idle_budget = std::chrono::milliseconds(opts_.idle_timeout_ms);
  std::vector<std::thread> finished;
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (auto& [thread, conn] : readers_) {
      if (conn->dead.load(std::memory_order_relaxed)) continue;
      const auto last = Clock::time_point(
          Clock::duration(conn->last_activity.load(std::memory_order_relaxed)));
      if (Clock::now() - last > idle_budget) {
        conn->dead.store(true, std::memory_order_relaxed);
        conn->fd.shutdown_both();  // reader wakes and exits
        conns_reaped_.inc();
      }
    }
    // Collect reader threads whose connections have wound down.
    for (auto it = readers_.begin(); it != readers_.end();) {
      if (it->second->dead.load(std::memory_order_relaxed) &&
          it->first.joinable()) {
        finished.push_back(std::move(it->first));
        it = readers_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (std::thread& t : finished) t.join();
}

bool Server::handle_frame(const ConnPtr& conn, const std::string& payload) {
  util::FlatJson frame;
  try {
    frame = util::FlatJson::parse(payload);
  } catch (const util::LpmError& e) {
    send_frame(conn, error_frame("", "config",
                                 std::string("bad frame: ") + e.what()));
    return true;
  }
  const std::string op = frame.get_string("op").value_or("");

  if (op == "hello") {
    if (!conn->client.empty()) {
      // One hello per connection — same rule the shard router enforces,
      // so clients cannot tell the two apart.
      send_frame(conn, error_frame("", "config",
                                   "hello: connection already established"));
      return false;
    }
    // An absent proto field means 1 (the pre-negotiation wire). Older is
    // fine — the protocol only grows — but a *newer* proto means the peer
    // may send fields we would silently drop, so refuse it typed.
    const double proto = frame.get_number("proto").value_or(1);
    if (proto > kProtocolVersion) {
      send_frame(conn,
                 error_frame("", "unsupported_proto",
                             "server speaks proto " +
                                 std::to_string(kProtocolVersion) +
                                 "; client announced a newer one"));
      return false;
    }
    const std::string client = frame.get_string("client").value_or("");
    if (!valid_name(client)) {
      send_frame(conn, error_frame("", "config",
                                   "hello: client name must be "
                                   "[A-Za-z0-9._-]{1,64}"));
      return false;
    }
    conn->client = client;
    {
      std::lock_guard<std::mutex> lock(conns_mutex_);
      const auto it = clients_.find(client);
      if (it != clients_.end() && it->second != conn) {
        // A reconnect supersedes the old link (likely half-dead).
        it->second->dead.store(true, std::memory_order_relaxed);
        it->second->fd.shutdown_both();
      }
      clients_[client] = conn;
    }
    JsonWriter out;
    out.str("op", "hello_ok")
        .num_u64("proto", kProtocolVersion)
        .num_u64("recovered", recovered_pending_);
    send_frame(conn, out.finish());
    return true;
  }

  if (conn->client.empty()) {
    send_frame(conn, error_frame("", "config", "hello required first"));
    return false;
  }

  if (op == "submit") {
    handle_submit(conn, frame);
    return true;
  }
  if (op == "attach") {
    handle_attach(conn, frame);
    return true;
  }
  if (op == "ping") {
    JsonWriter out;
    out.str("op", "pong");
    send_frame(conn, out.finish());
    return true;
  }
  if (op == "stats") {
    JsonWriter out;
    out.str("op", "stats")
        .num_u64("queue_depth", queue_.depth())
        .num_u64("memo_entries", memo_.size())
        .num_u64("memo_bytes", memo_.bytes())
        .num_u64("simulations_executed", engine_->simulations_executed())
        .num_u64("jobs_failed_engine", engine_->jobs_failed());
    send_frame(conn, out.finish());
    return true;
  }
  if (op == "shutdown") {
    JsonWriter out;
    out.str("op", "shutdown_ok");
    send_frame(conn, out.finish());
    stop_requested_.store(true, std::memory_order_relaxed);
    return false;
  }
  send_frame(conn, error_frame("", "config", "unknown op '" + op + "'"));
  return true;
}

void Server::handle_submit(const ConnPtr& conn, const util::FlatJson& frame) {
  const std::string id = frame.get_string("id").value_or("");
  if (!valid_name(id)) {
    send_frame(conn, error_frame(id, "config",
                                 "submit: id must be [A-Za-z0-9._-]{1,64}"));
    return;
  }
  const std::string key = conn->client + "/" + id;

  // Idempotent resubmit: a client that lost our ack (or our results) can
  // safely send the same id again.
  {
    std::unique_lock<std::mutex> lock(jobs_mutex_);
    const auto it = jobs_.find(key);
    if (it != jobs_.end()) {
      if (it->second.phase == JobPhase::kDone) {
        lock.unlock();
        replay_done_job(conn, key);
      } else {
        JsonWriter out;
        out.str("op", "ack")
            .str("id", id)
            .str("status", "pending")
            .boolean("degraded", it->second.degraded);
        send_frame(conn, out.finish());
      }
      return;
    }
  }

  QueuedJob job;
  job.client = conn->client;
  job.id = id;
  job.key = key;
  try {
    job.spec = JobSpec::decode(frame);
    job.spec.validate();
  } catch (const util::LpmError& e) {
    send_frame(conn, error_frame(id, error_code_name(e.code()), e.what()));
    return;
  }
  job.accepted_at = Clock::now();
  job.deadline = job.spec.deadline_ms == 0
                     ? Clock::time_point::max()
                     : job.accepted_at +
                           std::chrono::milliseconds(job.spec.deadline_ms);

  // The on-admit hook runs under the queue lock: the accept record and the
  // job-state entry are durable before the job is poppable, so an executor
  // (or a crash) can never outrun the journal.
  const AdmissionVerdict verdict = queue_.offer(
      std::move(job), [this](const QueuedJob& admitted, AdmissionVerdict v) {
        {
          std::lock_guard<std::mutex> lock(jobs_mutex_);
          JobState state;
          state.degraded = admitted.degraded;
          jobs_[admitted.key] = std::move(state);
        }
        if (journal_) {
          journal_->record_accept(admitted.key, admitted.degraded,
                                  spec_json_line(admitted.spec));
        }
        (void)v;
      });

  switch (verdict) {
    case AdmissionVerdict::kAccept:
    case AdmissionVerdict::kDegrade: {
      JsonWriter out;
      out.str("op", "ack")
          .str("id", id)
          .str("status", "queued")
          .boolean("degraded", verdict == AdmissionVerdict::kDegrade);
      send_frame(conn, out.finish());
      return;
    }
    case AdmissionVerdict::kRetryAfter: {
      JsonWriter out;
      out.str("op", "retry_after")
          .str("id", id)
          .num_u64("retry_after_ms", queue_.retry_after_hint_ms());
      send_frame(conn, out.finish());
      return;
    }
    case AdmissionVerdict::kShed: {
      JsonWriter out;
      out.str("op", "error")
          .str("id", id)
          .str("code", "overload")
          .str("message", "queue full; resubmit after the hint")
          .num_u64("retry_after_ms", queue_.retry_after_hint_ms());
      send_frame(conn, out.finish());
      return;
    }
  }
}

void Server::handle_attach(const ConnPtr& conn, const util::FlatJson& frame) {
  const std::string id = frame.get_string("id").value_or("");
  const std::string key = conn->client + "/" + id;
  bool degraded = false;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    const auto it = jobs_.find(key);
    if (it == jobs_.end()) {
      send_frame(conn, error_frame(id, "unknown_job",
                                   "no such job for this client"));
      return;
    }
    if (it->second.phase != JobPhase::kDone) {
      degraded = it->second.degraded;
      JsonWriter out;
      out.str("op", "ack")
          .str("id", id)
          .str("status", "pending")
          .boolean("degraded", degraded);
      send_frame(conn, out.finish());
      return;
    }
  }
  replay_done_job(conn, key);
}

void Server::replay_done_job(const ConnPtr& conn, const std::string& key) {
  std::vector<std::string> frames;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    const auto it = jobs_.find(key);
    if (it == jobs_.end() || it->second.phase != JobPhase::kDone) return;
    if (it->second.delivered_conn.lock() == conn) {
      // The completion push to this very connection is already in flight
      // (or arrived); replaying now would hand the client a duplicate.
      return;
    }
    it->second.delivered_conn = conn;
    frames = it->second.frames;
  }
  for (const std::string& f : frames) {
    if (conn->dead.load(std::memory_order_relaxed)) break;
    send_frame(conn, f);
  }
  if (conn->dead.load(std::memory_order_relaxed)) {
    // Delivery died mid-replay: clear the token so the client's next
    // attach (on a fresh connection) replays from the start.
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    const auto it = jobs_.find(key);
    if (it != jobs_.end() && it->second.delivered_conn.lock() == conn) {
      it->second.delivered_conn.reset();
    }
  }
}

void Server::executor_loop() {
  while (true) {
    std::optional<QueuedJob> job = queue_.pop(std::chrono::milliseconds(200));
    if (!job) {
      if (stop_requested_.load(std::memory_order_relaxed)) return;
      continue;
    }
    queue_wait_ms_.observe(ms_since(job->accepted_at));
    if (Clock::now() > job->deadline) {
      jobs_deadline_expired_.inc();
      finish_job(job->key, job->client,
                 {error_frame(job->id, "timeout",
                              "deadline expired before execution")},
                 /*failed=*/true);
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(jobs_mutex_);
      jobs_[job->key].phase = JobPhase::kRunning;
    }
    execute_job(std::move(*job));
  }
}

std::string Server::outcome_fragment(const exp::SimJob& job,
                                     const exp::SimJobOutcome& outcome) {
  const std::uint64_t fp = job.fingerprint();
  if (auto cached = memo_.get(fp)) return *cached;
  const exp::ResultRecord rec =
      exp::ResultRecord::make(job, *outcome.result, outcome.from_cache);
  JsonWriter out;
  out.boolean("ok", true)
      .str("fingerprint", rec.fingerprint)
      .str("backend", rec.backend)
      .num_u64("cycles", rec.cycles)
      .num_u64("cores", rec.cores)
      .num_u64("instructions", rec.instructions)
      .num("ipc", rec.ipc)
      .num("mr1", rec.mr1)
      .num("mr2", rec.mr2)
      .num("camat1", rec.camat1)
      .num("camat2", rec.camat2)
      .num("cpi_exe", rec.cpi_exe)
      .num("duration_ms", rec.duration_ms);
  memo_.put(fp, out.body());
  return out.body();
}

void Server::execute_job(QueuedJob job) {
  const Clock::time_point started = Clock::now();
  std::vector<std::string> frames;
  bool failed = false;
  try {
    if (job.spec.kind == "walk") {
      const model::TraceSpec trace =
          model::TraceSpec::spec(job.spec.workload, job.spec.length,
                                 job.spec.seed);
      core::LpmAlgorithmConfig cfg;
      cfg.max_iterations = 24;
      const ScreenedWalkReport report = run_lpm_walk_screened(
          job.spec.machine_config(), trace.workloads.at(0),
          core::KnobLevels::standard(), core::ArchKnobs::config_a(), cfg,
          opts_.degrade_backend == "fa" ? model::kFaBackend
                                        : model::kRdhBackend,
          engine_.get());
      JsonWriter out;
      out.str("op", "done")
          .str("id", job.id)
          .boolean("degraded", false)
          .str("final_config", report.final_config.label())
          .boolean("converged", report.confirm.converged)
          .boolean("exhausted", report.confirm.exhausted)
          .num_u64("confirm_steps", report.confirm.steps.size())
          .num_u64("screen_configs", report.screen_configs)
          .num_u64("confirm_configs", report.confirm_configs);
      frames.push_back(out.finish());
    } else {
      const std::vector<exp::SimJob> points = job.spec.expand(job.key);
      // Memo pass first: only misses reach the engine, as one kCollect
      // batch so a failed point never cancels its siblings.
      std::vector<std::optional<std::string>> fragments(points.size());
      std::vector<exp::SimJob> missing;
      std::vector<std::size_t> missing_index;
      for (std::size_t i = 0; i < points.size(); ++i) {
        fragments[i] = memo_.get(points[i].fingerprint());
        if (!fragments[i]) {
          missing.push_back(points[i]);
          missing_index.push_back(i);
        }
      }
      std::vector<exp::SimJobOutcome> outcomes;
      if (!missing.empty()) {
        outcomes = engine_->run_batch_outcomes(
            missing, {exp::FailurePolicy::kCollect, false});
      }
      std::vector<std::string> errors(points.size());
      for (std::size_t m = 0; m < outcomes.size(); ++m) {
        const std::size_t i = missing_index[m];
        if (outcomes[m].ok()) {
          fragments[i] = outcome_fragment(missing[m], outcomes[m]);
        } else {
          errors[i] = std::string(error_code_name(outcomes[m].error)) + ": " +
                      outcomes[m].error_message;
        }
      }

      if (job.spec.kind == "simulate") {
        if (fragments[0]) {
          JsonWriter out;
          out.str("op", "done")
              .str("id", job.id)
              .boolean("degraded", job.degraded)
              .raw_body(*fragments[0]);
          frames.push_back(out.finish());
        } else {
          const std::string& msg = errors[0];
          const std::size_t colon = msg.find(':');
          frames.push_back(error_frame(
              job.id, colon == std::string::npos ? "sim" : msg.substr(0, colon),
              colon == std::string::npos ? msg : msg.substr(colon + 2)));
          failed = true;
        }
      } else {  // sweep: one point frame per value, then one done frame
        std::size_t ok_points = 0;
        for (std::size_t i = 0; i < points.size(); ++i) {
          JsonWriter out;
          out.str("op", "point")
              .str("id", job.id)
              .num_u64("seq", i)
              .num_u64("of", points.size())
              .boolean("degraded", job.degraded);
          if (fragments[i]) {
            out.raw_body(*fragments[i]);
            ++ok_points;
          } else {
            out.boolean("ok", false).str("error", errors[i]);
          }
          frames.push_back(out.finish());
        }
        JsonWriter out;
        out.str("op", "done")
            .str("id", job.id)
            .boolean("degraded", job.degraded)
            .num_u64("points", points.size())
            .num_u64("points_ok", ok_points);
        frames.push_back(out.finish());
        failed = ok_points == 0;
      }
    }
  } catch (const util::LpmError& e) {
    frames.assign(1, error_frame(job.id, error_code_name(e.code()), e.what()));
    failed = true;
  } catch (const std::exception& e) {
    frames.assign(1, error_frame(job.id, "error", e.what()));
    failed = true;
  }
  service_ms_.observe(ms_since(started));
  finish_job(job.key, job.client, std::move(frames), failed);
}

void Server::finish_job(const std::string& key, const std::string& client,
                        std::vector<std::string> frames, bool failed) {
  // Exactly-once ordering: frames → done marker → state flip → delivery.
  if (journal_) {
    for (const std::string& f : frames) journal_->record_result(key, f);
    journal_->record_done(key);
  }
  // Claim the delivery token for the client's current connection in the
  // same critical section that flips the job done, so a racing attach on
  // that connection cannot trigger a second replay (see JobState).
  ConnPtr conn;
  {
    std::lock_guard<std::mutex> conns_lock(conns_mutex_);
    const auto it = clients_.find(client);
    if (it != clients_.end()) conn = it->second;
  }
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    JobState& state = jobs_[key];
    state.phase = JobPhase::kDone;
    state.frames = frames;
    state.delivered_conn = conn;  // empty when the client is away
  }
  (failed ? jobs_failed_ : jobs_completed_).inc();
  if (!conn) return;  // away; results wait for attach
  for (const std::string& f : frames) {
    if (conn->dead.load(std::memory_order_relaxed)) break;
    send_frame(conn, f);
  }
  if (conn->dead.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    const auto it = jobs_.find(key);
    if (it != jobs_.end() && it->second.delivered_conn.lock() == conn) {
      it->second.delivered_conn.reset();
    }
  }
}

void Server::send_frame(const ConnPtr& conn, const std::string& payload) {
  if (conn->dead.load(std::memory_order_relaxed)) return;
  IoStatus status = IoStatus::kClosed;
  {
    std::lock_guard<std::mutex> lock(conn->write_mutex);
    status = write_frame(conn->fd, payload, opts_.io_timeout_ms);
  }
  if (status == IoStatus::kOk) {
    frames_sent_.inc();
    return;
  }
  // A peer that cannot drain a frame within the budget forfeits the
  // connection; its results stay recorded for attach after it reconnects.
  conn->dead.store(true, std::memory_order_relaxed);
  conn->fd.shutdown_both();
  if (status == IoStatus::kTimeout) conns_reaped_.inc();
}

}  // namespace lpm::srv
