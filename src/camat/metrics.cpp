#include "camat/metrics.hpp"

#include <sstream>

#include "obs/metrics.hpp"

namespace lpm::camat {

namespace {
[[nodiscard]] double ratio(std::uint64_t num, std::uint64_t den) {
  return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}
}  // namespace

double CamatMetrics::H() const { return ratio(hit_phase_access_cycles, accesses); }

double CamatMetrics::CH() const { return ratio(hit_access_cycles, hit_cycles); }

double CamatMetrics::pMR() const { return ratio(pure_misses, accesses); }

double CamatMetrics::pAMP() const { return ratio(pure_access_cycles, pure_misses); }

double CamatMetrics::CM() const { return ratio(pure_access_cycles, pure_miss_cycles); }

double CamatMetrics::MR() const { return ratio(misses, accesses); }

double CamatMetrics::AMP() const { return ratio(total_miss_latency, misses); }

double CamatMetrics::Cm() const { return ratio(miss_access_cycles, miss_cycles); }

double CamatMetrics::apc() const { return ratio(accesses, active_cycles); }

double CamatMetrics::camat() const { return ratio(active_cycles, accesses); }

double CamatMetrics::camat_eq2() const {
  return lpm::camat::camat_eq2(H(), CH(), pMR(), pAMP(), CM());
}

double CamatMetrics::amat() const { return amat_eq1(H(), MR(), AMP()); }

double CamatMetrics::eta1() const {
  const double amp = AMP();
  const double cm_pure = CM();
  if (amp <= 0.0 || cm_pure <= 0.0) return 0.0;
  return (pAMP() / amp) * (Cm() / cm_pure);
}

CamatMetrics CamatMetrics::minus(const CamatMetrics& earlier) const {
  CamatMetrics d;
  d.accesses = accesses - earlier.accesses;
  d.hits = hits - earlier.hits;
  d.misses = misses - earlier.misses;
  d.pure_misses = pure_misses - earlier.pure_misses;
  d.active_cycles = active_cycles - earlier.active_cycles;
  d.hit_cycles = hit_cycles - earlier.hit_cycles;
  d.miss_cycles = miss_cycles - earlier.miss_cycles;
  d.pure_miss_cycles = pure_miss_cycles - earlier.pure_miss_cycles;
  d.hit_phase_access_cycles = hit_phase_access_cycles - earlier.hit_phase_access_cycles;
  d.miss_access_cycles = miss_access_cycles - earlier.miss_access_cycles;
  d.pure_access_cycles = pure_access_cycles - earlier.pure_access_cycles;
  d.hit_access_cycles = hit_access_cycles - earlier.hit_access_cycles;
  d.total_miss_latency = total_miss_latency - earlier.total_miss_latency;
  return d;
}

std::string CamatMetrics::summary() const {
  std::ostringstream os;
  os << "accesses=" << accesses << " C-AMAT=" << camat() << " AMAT=" << amat()
     << " H=" << H() << " CH=" << CH() << " pMR=" << pMR() << " pAMP=" << pAMP()
     << " CM=" << CM() << " MR=" << MR() << " AMP=" << AMP() << " Cm=" << Cm()
     << " eta1=" << eta1();
  return os.str();
}

void CamatMetrics::publish(obs::MetricsRegistry& registry,
                           const std::string& level) const {
  registry.counter("sim.camat.pure_misses." + level).add(pure_misses);
  // Concurrency terms are ratios, not counts: one histogram sample per
  // window keeps distributions comparable across runs of any length. Empty
  // windows (no hit/miss activity) carry no concurrency information.
  const auto bounds = obs::MetricsRegistry::concurrency_bounds();
  if (hit_cycles > 0) {
    registry.histogram("sim.camat.hit_concurrency." + level, bounds)
        .observe(CH());
  }
  if (pure_miss_cycles > 0) {
    registry.histogram("sim.camat.pure_miss_concurrency." + level, bounds)
        .observe(CM());
  }
}

double amat_eq1(double H, double MR, double AMP) { return H + MR * AMP; }

double camat_eq2(double H, double CH, double pMR, double pAMP, double CM) {
  const double hit_part = CH > 0.0 ? H / CH : 0.0;
  const double miss_part = CM > 0.0 ? pMR * pAMP / CM : 0.0;
  return hit_part + miss_part;
}

double camat_recursion_eq4(double H1, double CH1, double pMR1, double eta1,
                           double camat2) {
  const double hit_part = CH1 > 0.0 ? H1 / CH1 : 0.0;
  return hit_part + pMR1 * eta1 * camat2;
}

}  // namespace lpm::camat
