// What-if analysis over the five C-AMAT parameters (paper §II: "the five
// parameters in C-AMAT present five dimensions for memory system
// optimization"). Given a measured parameter set, predict C-AMAT and data
// stall under hypothetical improvements - the quantitative guidance LPM
// gives before any hardware is touched.
#pragma once

#include "camat/metrics.hpp"

namespace lpm::camat {

/// Multiplicative adjustments to the five C-AMAT parameters. 1.0 = leave
/// as measured. Concurrency knobs (C_H, C_M) scale up to improve; latency
/// and rate knobs (H, pMR, pAMP) scale down to improve.
struct WhatIf {
  double h_scale = 1.0;
  double ch_scale = 1.0;
  double pmr_scale = 1.0;
  double pamp_scale = 1.0;
  double cm_scale = 1.0;

  /// Named single-dimension scenarios.
  [[nodiscard]] static WhatIf more_hit_concurrency(double factor);   // C_H *= f
  [[nodiscard]] static WhatIf more_miss_concurrency(double factor);  // C_M *= f
  [[nodiscard]] static WhatIf fewer_pure_misses(double factor);      // pMR *= f
  [[nodiscard]] static WhatIf shorter_penalty(double factor);        // pAMP *= f
  [[nodiscard]] static WhatIf faster_hits(double factor);            // H *= f

  void validate() const;  ///< throws util::LpmError on non-positive scales
};

/// Eq. 2 with the adjusted parameters.
[[nodiscard]] double predict_camat(const CamatMetrics& measured, const WhatIf& w);

/// Eq. 7 with the adjusted C-AMAT (overlap ratio and fmem held fixed).
[[nodiscard]] double predict_stall_per_instr(const CamatMetrics& measured,
                                             const WhatIf& w, double fmem,
                                             double overlap_ratio);

/// Sensitivity: relative C-AMAT reduction from improving each dimension by
/// `factor` alone (factor > 1; concurrency scaled up by factor, H/pMR/pAMP
/// scaled down by 1/factor). Returns the five gains in parameter order
/// {H, C_H, pMR, pAMP, C_M}; the largest entry is the dimension the model
/// recommends attacking first.
struct SensitivityReport {
  double h_gain = 0.0;
  double ch_gain = 0.0;
  double pmr_gain = 0.0;
  double pamp_gain = 0.0;
  double cm_gain = 0.0;

  /// Name of the most profitable dimension.
  [[nodiscard]] const char* best() const;
};
[[nodiscard]] SensitivityReport sensitivity(const CamatMetrics& measured,
                                            double factor = 2.0);

}  // namespace lpm::camat
