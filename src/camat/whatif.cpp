#include "camat/whatif.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace lpm::camat {

WhatIf WhatIf::more_hit_concurrency(double factor) {
  WhatIf w;
  w.ch_scale = factor;
  return w;
}
WhatIf WhatIf::more_miss_concurrency(double factor) {
  WhatIf w;
  w.cm_scale = factor;
  return w;
}
WhatIf WhatIf::fewer_pure_misses(double factor) {
  WhatIf w;
  w.pmr_scale = factor;
  return w;
}
WhatIf WhatIf::shorter_penalty(double factor) {
  WhatIf w;
  w.pamp_scale = factor;
  return w;
}
WhatIf WhatIf::faster_hits(double factor) {
  WhatIf w;
  w.h_scale = factor;
  return w;
}

void WhatIf::validate() const {
  util::require(h_scale > 0 && ch_scale > 0 && pmr_scale > 0 &&
                    pamp_scale > 0 && cm_scale > 0,
                "WhatIf: scales must be positive");
}

double predict_camat(const CamatMetrics& m, const WhatIf& w) {
  w.validate();
  return camat_eq2(m.H() * w.h_scale, m.CH() * w.ch_scale,
                   m.pMR() * w.pmr_scale, m.pAMP() * w.pamp_scale,
                   m.CM() * w.cm_scale);
}

double predict_stall_per_instr(const CamatMetrics& m, const WhatIf& w,
                               double fmem, double overlap_ratio) {
  return fmem * predict_camat(m, w) * (1.0 - overlap_ratio);
}

const char* SensitivityReport::best() const {
  const double m = std::max({h_gain, ch_gain, pmr_gain, pamp_gain, cm_gain});
  if (m == ch_gain) return "C_H";
  if (m == cm_gain) return "C_M";
  if (m == pmr_gain) return "pMR";
  if (m == pamp_gain) return "pAMP";
  return "H";
}

SensitivityReport sensitivity(const CamatMetrics& m, double factor) {
  util::require(factor > 1.0, "sensitivity: factor must exceed 1");
  const double base = m.camat_eq2();
  SensitivityReport r;
  if (base <= 0.0) return r;
  const auto gain = [&](const WhatIf& w) {
    return (base - predict_camat(m, w)) / base;
  };
  r.h_gain = gain(WhatIf::faster_hits(1.0 / factor));
  r.ch_gain = gain(WhatIf::more_hit_concurrency(factor));
  r.pmr_gain = gain(WhatIf::fewer_pure_misses(1.0 / factor));
  r.pamp_gain = gain(WhatIf::shorter_penalty(1.0 / factor));
  r.cm_gain = gain(WhatIf::more_miss_concurrency(factor));
  return r;
}

}  // namespace lpm::camat
