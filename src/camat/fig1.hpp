// Replays the paper's Fig. 1 five-access scenario through the Analyzer.
//
// The timeline (reconstructed from the paper's arithmetic):
//   accesses A1..A5, each with a 3-cycle hit phase;
//   A1,A2 hit (cycles 1-3); A3,A4 lookup cycles 3-5 and miss;
//   A5 hit (cycles 4-6); A4's single miss cycle (6) overlaps A5's hit;
//   A3's miss cycles are 6,7,8 - cycle 6 overlaps A5's hit, 7-8 are pure.
// Expected: C-AMAT = 1.6, AMAT = 3.8, C_H = 5/2, C_M = 1, pAMP = 2,
// pMR = 1/5, hit phases (2,4,3,1) lasting (2,1,2,1) cycles.
#pragma once

#include "camat/analyzer.hpp"
#include "camat/metrics.hpp"

namespace lpm::camat {

/// Drives `analyzer` with the Fig. 1 event sequence and returns its metrics.
CamatMetrics replay_fig1(Analyzer& analyzer);

/// Convenience: replay into a fresh analyzer.
[[nodiscard]] CamatMetrics fig1_metrics();

}  // namespace lpm::camat
