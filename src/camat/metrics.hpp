// Value types for C-AMAT / AMAT metrics (paper §II).
#pragma once

#include <cstdint>
#include <string>

namespace lpm::obs {
class MetricsRegistry;
}

namespace lpm::camat {

/// The measured C-AMAT parameter set of one memory layer over one
/// measurement window, plus the conventional AMAT quantities needed for
/// eta (Eq. 4) and the LPM model.
struct CamatMetrics {
  // --- raw counters ---
  std::uint64_t accesses = 0;      ///< demand accesses observed
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;        ///< conventional misses
  std::uint64_t pure_misses = 0;   ///< misses with >= 1 pure-miss cycle
  std::uint64_t active_cycles = 0;     ///< cycles with any hit or miss activity
  std::uint64_t hit_cycles = 0;        ///< cycles with >= 1 access in hit phase
  std::uint64_t miss_cycles = 0;       ///< cycles with >= 1 outstanding miss
  std::uint64_t pure_miss_cycles = 0;  ///< miss cycles with zero hit activity
  std::uint64_t hit_phase_access_cycles = 0;   ///< sum of per-access hit-phase lengths
  std::uint64_t miss_access_cycles = 0;        ///< sum over cycles of outstanding count
  std::uint64_t pure_access_cycles = 0;        ///< sum of per-access pure-miss cycles
  std::uint64_t hit_access_cycles = 0;         ///< sum over cycles of hit-phase count
  std::uint64_t total_miss_latency = 0;        ///< sum of (fill - miss_start)

  // --- the five C-AMAT parameters (Eq. 2) ---
  [[nodiscard]] double H() const;     ///< mean hit-phase length per access
  [[nodiscard]] double CH() const;    ///< hit concurrency
  [[nodiscard]] double pMR() const;   ///< pure miss rate
  [[nodiscard]] double pAMP() const;  ///< mean pure-miss cycles per pure miss
  [[nodiscard]] double CM() const;    ///< pure miss concurrency

  // --- conventional quantities ---
  [[nodiscard]] double MR() const;    ///< miss rate
  [[nodiscard]] double AMP() const;   ///< average miss penalty
  [[nodiscard]] double Cm() const;    ///< conventional miss concurrency

  // --- composites ---
  [[nodiscard]] double apc() const;       ///< accesses per memory-active cycle (Eq. 3)
  [[nodiscard]] double camat() const;     ///< 1/APC = active cycles per access
  [[nodiscard]] double camat_eq2() const; ///< H/CH + pMR * pAMP/CM
  [[nodiscard]] double amat() const;      ///< H + MR * AMP (Eq. 1)
  [[nodiscard]] double eta1() const;      ///< (pAMP/AMP) * (Cm/CM) (Eq. 4)

  /// Counter-wise difference (this - earlier); used for interval snapshots.
  [[nodiscard]] CamatMetrics minus(const CamatMetrics& earlier) const;

  /// Exact counter-wise equality (differential testing compares whole
  /// metric blocks between the optimized simulator and check::RefSystem).
  friend bool operator==(const CamatMetrics&, const CamatMetrics&) = default;

  /// One-line summary for logs and benches.
  [[nodiscard]] std::string summary() const;

  /// Bulk-publishes this window into `registry`: adds pure_misses to
  /// sim.camat.pure_misses.<level> and samples the hit / pure-miss
  /// concurrency (CH, CM — the terms feeding Eq. 2) into the
  /// sim.camat.{hit,pure_miss}_concurrency.<level> histograms. Called once
  /// per run epilogue, never per cycle. Thread-safe.
  void publish(obs::MetricsRegistry& registry, const std::string& level) const;
};

/// Closed-form helpers, usable without a measurement (model-side math).
[[nodiscard]] double amat_eq1(double H, double MR, double AMP);
[[nodiscard]] double camat_eq2(double H, double CH, double pMR, double pAMP, double CM);
/// Eq. 4 right-hand side: C-AMAT1 from the L2 C-AMAT.
[[nodiscard]] double camat_recursion_eq4(double H1, double CH1, double pMR1,
                                         double eta1, double camat2);

}  // namespace lpm::camat
