#include "camat/analyzer.hpp"

#include <algorithm>
#include <cassert>

#include "util/error.hpp"

namespace lpm::camat {

void Analyzer::on_cycle_activity(Cycle cycle, std::uint32_t hit_active) {
  // Guard against double sampling of the same cycle (programming error in a
  // caller); monotonicity is a debug invariant.
  assert(last_sampled_cycle_ == kNoCycle || cycle > last_sampled_cycle_);
  last_sampled_cycle_ = cycle;

  const auto outstanding = static_cast<std::uint32_t>(outstanding_.size());
  const bool hit_act = hit_active > 0;
  const bool miss_act = outstanding > 0;

  if (hit_act || miss_act) ++m_.active_cycles;

  if (hit_act) {
    ++m_.hit_cycles;
    m_.hit_access_cycles += hit_active;
    if (hit_active != prev_hit_concurrency_) ++hit_phases_;
  }
  if (miss_act) {
    ++m_.miss_cycles;
    m_.miss_access_cycles += outstanding;
  }

  const bool pure = miss_act && !hit_act;
  if (pure) {
    ++m_.pure_miss_cycles;
    m_.pure_access_cycles += outstanding;
    for (auto& rec : outstanding_) ++rec.pure_cycles;
    if (outstanding != prev_pure_concurrency_) ++pure_miss_phases_;
  }
  prev_hit_concurrency_ = hit_act ? hit_active : 0;
  prev_pure_concurrency_ = pure ? outstanding : 0;
}

void Analyzer::on_access(RequestId id, Cycle start, bool /*is_write*/) {
  ++m_.accesses;
  in_lookup_.push_back(AccessRec{id, start});
}

void Analyzer::on_hit(RequestId id, Cycle done) {
  ++m_.hits;
  const auto it = std::find_if(in_lookup_.begin(), in_lookup_.end(),
                               [&](const AccessRec& r) { return r.id == id; });
  util::require(it != in_lookup_.end(), "Analyzer: on_hit for unknown access");
  m_.hit_phase_access_cycles += done - it->start;
  in_lookup_.erase(it);
}

void Analyzer::on_miss(RequestId id, Cycle start) {
  ++m_.misses;
  const auto it = std::find_if(in_lookup_.begin(), in_lookup_.end(),
                               [&](const AccessRec& r) { return r.id == id; });
  util::require(it != in_lookup_.end(), "Analyzer: on_miss for unknown access");
  m_.hit_phase_access_cycles += start - it->start;
  const Cycle access_start = it->start;
  in_lookup_.erase(it);
  outstanding_.push_back(MissRec{id, start, 0, access_start});
}

void Analyzer::on_miss_done(RequestId id, Cycle done) {
  const auto it = std::find_if(outstanding_.begin(), outstanding_.end(),
                               [&](const MissRec& r) { return r.id == id; });
  util::require(it != outstanding_.end(), "Analyzer: on_miss_done for unknown miss");
  m_.total_miss_latency += done - it->start;
  if (it->pure_cycles > 0) ++m_.pure_misses;
  outstanding_.erase(it);
}

CamatMetrics Analyzer::interval_delta() {
  const CamatMetrics delta = m_.minus(last_snapshot_);
  last_snapshot_ = m_;
  return delta;
}

void Analyzer::reset_counters() {
  m_ = CamatMetrics{};
  last_snapshot_ = CamatMetrics{};
  for (auto& rec : outstanding_) rec.pure_cycles = 0;
  hit_phases_ = 0;
  pure_miss_phases_ = 0;
  prev_hit_concurrency_ = 0;
  prev_pure_concurrency_ = 0;
}

}  // namespace lpm::camat
