#include "camat/fig1.hpp"

namespace lpm::camat {

CamatMetrics replay_fig1(Analyzer& a) {
  // Event schedule per cycle boundary: completions first, then starts, then
  // the activity sample for the cycle (matching how the cache drives the
  // probe: tick(c+1) samples cycle c after all cycle-c mutations).
  //
  //   cycle:        1  2  3  4  5  6  7  8
  //   hit_active:   2  2  4  3  3  1  0  0
  //
  // A1: lookup 1-3 hit; A2: lookup 1-3 hit; A3: lookup 3-5, miss 6-8;
  // A4: lookup 3-5, miss 6; A5: lookup 4-6 hit.
  constexpr RequestId A1 = 1, A2 = 2, A3 = 3, A4 = 4, A5 = 5;

  // cycle 1
  a.on_access(A1, 1, false);
  a.on_access(A2, 1, false);
  a.on_cycle_activity(1, 2);
  // cycle 2
  a.on_cycle_activity(2, 2);
  // cycle 3
  a.on_access(A3, 3, false);
  a.on_access(A4, 3, false);
  a.on_cycle_activity(3, 4);
  // cycle 4: A1, A2 completed their lookups at the cycle-3/4 boundary
  a.on_hit(A1, 4);
  a.on_hit(A2, 4);
  a.on_access(A5, 4, false);
  a.on_cycle_activity(4, 3);
  // cycle 5
  a.on_cycle_activity(5, 3);
  // cycle 6: A3/A4 lookups resolved as misses at the 5/6 boundary
  a.on_miss(A3, 6);
  a.on_miss(A4, 6);
  a.on_cycle_activity(6, 1);
  // cycle 7: A5 hit completes; A4's data arrived (1 miss cycle)
  a.on_hit(A5, 7);
  a.on_miss_done(A4, 7);
  a.on_cycle_activity(7, 0);
  // cycle 8
  a.on_cycle_activity(8, 0);
  // boundary 8/9: A3's data arrives (miss cycles 6,7,8)
  a.on_miss_done(A3, 9);

  return a.metrics();
}

CamatMetrics fig1_metrics() {
  Analyzer a("fig1");
  return replay_fig1(a);
}

}  // namespace lpm::camat
