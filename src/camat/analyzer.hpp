// The C-AMAT analyzer (paper Fig. 4): software realization of the Hit
// Concurrency Detector (HCD) and Miss Concurrency Detector (MCD).
//
// Attached to a cache (or DRAM) via the mem::AccessProbe interface, it
// observes per-cycle hit activity and per-access miss begin/end events, and
// maintains exactly the lightweight counters the paper's detecting system
// needs: hit phases for C_H, pure-miss phases for C_M, per-miss pure-cycle
// counts for pMR/pAMP, and the conventional Cm/AMP for eta.
#pragma once

#include <cstdint>
#include <vector>

#include "camat/metrics.hpp"
#include "mem/probe.hpp"
#include "util/types.hpp"

namespace lpm::camat {

class Analyzer final : public mem::AccessProbe {
 public:
  explicit Analyzer(std::string level_name = "L1")
      : name_(std::move(level_name)) {}

  // --- mem::AccessProbe ---
  void on_cycle_activity(Cycle cycle, std::uint32_t hit_active) override;
  void on_access(RequestId id, Cycle start, bool is_write) override;
  void on_hit(RequestId id, Cycle done) override;
  void on_miss(RequestId id, Cycle start) override;
  void on_miss_done(RequestId id, Cycle done) override;

  /// Cumulative metrics since construction / last reset().
  [[nodiscard]] const CamatMetrics& metrics() const { return m_; }

  /// Metrics accumulated since the previous call (interval measurement);
  /// the first call returns everything so far.
  CamatMetrics interval_delta();

  /// Clears all counters (outstanding misses keep being tracked so that
  /// in-flight accesses complete consistently).
  void reset_counters();

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t outstanding_misses() const { return outstanding_.size(); }

  /// Number of distinct hit phases (maximal runs of hit-active cycles) and
  /// pure-miss phases observed; exposed for Fig.-1-style accounting.
  [[nodiscard]] std::uint64_t hit_phases() const { return hit_phases_; }
  [[nodiscard]] std::uint64_t pure_miss_phases() const { return pure_miss_phases_; }

 private:
  struct MissRec {
    RequestId id = kNoRequest;
    Cycle start = 0;
    std::uint64_t pure_cycles = 0;
    Cycle access_start = 0;  ///< when the lookup began (for hit-phase length)
  };
  struct AccessRec {
    RequestId id = kNoRequest;
    Cycle start = 0;
  };

  std::string name_;
  CamatMetrics m_;
  CamatMetrics last_snapshot_;
  std::vector<MissRec> outstanding_;
  std::vector<AccessRec> in_lookup_;
  // A "phase" (Fig. 1) is a maximal run of cycles with the same non-zero
  // concurrency; track the previous cycle's concurrency to detect edges.
  std::uint32_t prev_hit_concurrency_ = 0;
  std::uint32_t prev_pure_concurrency_ = 0;
  std::uint64_t hit_phases_ = 0;
  std::uint64_t pure_miss_phases_ = 0;
  Cycle last_sampled_cycle_ = kNoCycle;
};

}  // namespace lpm::camat
