#include "model/measurement.hpp"

#include <limits>

#include "util/error.hpp"

namespace lpm::model {

AppMeasurement AppMeasurement::from_run(const sim::SystemResult& run,
                                        const sim::CpiExeResult& calib,
                                        std::size_t core_idx,
                                        std::string app_name) {
  util::require(core_idx < run.cores.size(), "AppMeasurement: bad core index");
  const cpu::CoreStats& cs = run.cores[core_idx];
  AppMeasurement m;
  m.app = std::move(app_name);
  m.cpi_exe = calib.cpi_exe;
  m.fmem = cs.fmem();
  m.overlap_ratio = cs.overlap_ratio();
  m.l1 = run.l1[core_idx];
  m.mr1 = run.mr1(core_idx);
  m.measured_stall_per_instr = cs.stall_per_instr();
  m.measured_cpi = cs.cpi();
  m.instructions = cs.instructions;

  if (run.has_private_l2()) {
    // Three cache levels: L1 -> private L2 -> shared LLC -> memory.
    m.three_cache_levels = true;
    m.l2 = run.l2_private[core_idx];
    m.mr2 = run.l2_private_cache[core_idx].miss_rate();
    m.l3 = run.l2;  // the shared cache is the LLC
    m.mr3 = run.l2_cache.miss_rate();
    m.mm = run.dram;
    // The private L2's upstream misses are this core's own (private chain).
    m.l1_misses_total = run.l1_cache[core_idx].misses;
    for (const auto& l2p : run.l2_private_cache) m.l2_misses_total += l2p.misses;
    m.llc_misses_total = run.l2_cache.misses;
  } else {
    m.l2 = run.l2;
    m.mr2 = run.mr2();
    m.l3 = run.dram;
    for (const auto& l1c : run.l1_cache) m.l1_misses_total += l1c.misses;
    m.l2_misses_total = run.l2_cache.misses;
  }
  return m;
}

double AppMeasurement::camat2_per_miss() const {
  if (l1_misses_total == 0) return l2.camat();
  return static_cast<double>(l2.active_cycles) /
         static_cast<double>(l1_misses_total);
}

double AppMeasurement::camat3_per_miss() const {
  if (l2_misses_total == 0) return l3.camat();
  return static_cast<double>(l3.active_cycles) /
         static_cast<double>(l2_misses_total);
}

double AppMeasurement::camat4_per_miss() const {
  if (!three_cache_levels) return 0.0;
  if (llc_misses_total == 0) return mm.camat();
  return static_cast<double>(mm.active_cycles) /
         static_cast<double>(llc_misses_total);
}

LpmrSet compute_lpmrs(const AppMeasurement& m) {
  util::require(m.cpi_exe > 0.0, "compute_lpmrs: cpi_exe must be positive");
  LpmrSet r;
  r.lpmr1 = m.l1.camat() * m.fmem / m.cpi_exe;                            // Eq. 9
  r.lpmr2 = m.camat2_per_miss() * m.fmem * m.mr1 / m.cpi_exe;             // Eq. 10
  r.lpmr3 = m.camat3_per_miss() * m.fmem * m.mr1 * m.mr2 / m.cpi_exe;     // Eq. 11
  if (m.three_cache_levels) {
    // One level deeper, same recurrence: the request rate reaching memory
    // is attenuated by every miss ratio above it.
    r.lpmr4 = m.camat4_per_miss() * m.fmem * m.mr1 * m.mr2 * m.mr3 / m.cpi_exe;
  }
  return r;
}

double eta_combined(const AppMeasurement& m) {
  if (m.mr1 <= 0.0) return 0.0;
  return m.l1.eta1() * m.l1.pMR() / m.mr1;
}

double stall_eq7(const AppMeasurement& m) {
  return m.fmem * m.l1.camat() * (1.0 - m.overlap_ratio);
}

double stall_eq12(const AppMeasurement& m) {
  return m.cpi_exe * (1.0 - m.overlap_ratio) * compute_lpmrs(m).lpmr1;
}

double stall_eq13(const AppMeasurement& m) {
  const double ch1 = m.l1.CH();
  const double hit_term = ch1 > 0.0 ? m.l1.H() * m.fmem / ch1 : 0.0;
  return (hit_term + m.cpi_exe * eta_combined(m) * compute_lpmrs(m).lpmr2) *
         (1.0 - m.overlap_ratio);
}

double threshold_t1(double delta_percent, double overlap_ratio) {
  util::require(delta_percent > 0.0, "threshold_t1: delta must be positive");
  const double denom = 1.0 - overlap_ratio;
  if (denom <= 0.0) return std::numeric_limits<double>::infinity();
  return (delta_percent / 100.0) / denom;
}

double threshold_t2(double delta_percent, const AppMeasurement& m) {
  const double eta = eta_combined(m);
  if (eta <= 0.0) return std::numeric_limits<double>::infinity();
  const double t1 = threshold_t1(delta_percent, m.overlap_ratio);
  const double ch1 = m.l1.CH();
  const double hit_term =
      ch1 > 0.0 && m.cpi_exe > 0.0 ? m.l1.H() * m.fmem / (ch1 * m.cpi_exe) : 0.0;
  return (t1 - hit_term) / eta;
}

bool meets_stall_target(const AppMeasurement& m, double delta_percent) {
  return m.measured_stall_per_instr <= (delta_percent / 100.0) * m.cpi_exe;
}

}  // namespace lpm::model
