#include "model/trace_spec.hpp"

#include "trace/lpm2.hpp"
#include "trace/spec_like.hpp"
#include "util/error.hpp"

namespace lpm::model {

TraceSpec TraceSpec::spec(const std::string& name, std::uint64_t length,
                          std::uint64_t seed) {
  for (const auto b : trace::all_spec_benchmarks()) {
    if (trace::spec_name(b) == name) {
      return profile(trace::spec_profile(b, length, seed));
    }
  }
  throw util::ConfigError("TraceSpec: unknown workload '" + name +
                          "'; try 403.gcc, 429.mcf, ...");
}

TraceSpec TraceSpec::profile(trace::WorkloadProfile workload) {
  TraceSpec spec;
  spec.workloads.push_back(std::move(workload));
  return spec;
}

TraceSpec TraceSpec::trace_file(const std::string& path, std::string name) {
  return profile(trace::trace_file_profile(path, std::move(name)));
}

TraceSpec TraceSpec::profiles(std::vector<trace::WorkloadProfile> w) {
  TraceSpec spec;
  spec.workloads = std::move(w);
  return spec;
}

std::vector<trace::WorkloadProfile> TraceSpec::expand(
    std::uint32_t num_cores) const {
  util::require(!workloads.empty(), "TraceSpec: no workload given");
  if (workloads.size() == 1 && num_cores > 1) {
    return std::vector<trace::WorkloadProfile>(num_cores, workloads.front());
  }
  util::require(workloads.size() == num_cores,
                "TraceSpec: workload count must be 1 or match num_cores");
  return workloads;
}

}  // namespace lpm::model
