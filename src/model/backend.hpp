// The ModelBackend seam: one interface for "evaluate a MachineConfig on a
// TraceSpec", with interchangeable fidelities behind it.
//
//  * CycleSimBackend routes through the experiment engine's cycle-accurate
//    sim::System path — slow, authoritative.
//  * AnalyticBackend ("rdh", "fa") predicts the same LayerEstimates from a
//    one-off reuse-distance profile of the trace (src/model/analytic.hpp)
//    in microseconds per config — fast, approximate.
//
// Every backend funnels through exp::ExperimentEngine as a backend-tagged
// SimJob, so memoization, batching, retries, sinks and journals apply to
// analytic evaluations exactly as they do to simulations, and the memo
// cache keeps the fidelities apart (the backend is part of the job
// fingerprint). Consumers that only need numbers read LayerEstimates;
// consumers that need raw counters keep the underlying SimJobResult via
// LayerEstimates::result.
//
// When is which fidelity trustworthy? See DESIGN.md §"Model backends" and
// the quantified error bounds in src/check/fidelity.hpp.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "exp/experiment_engine.hpp"
#include "model/measurement.hpp"
#include "model/trace_spec.hpp"
#include "sim/machine_config.hpp"

namespace lpm::model {

/// Names of the analytic backends implemented in src/model/analytic.hpp.
inline constexpr const char* kRdhBackend = "rdh";
inline constexpr const char* kFaBackend = "fa";

enum class Fidelity {
  kCycleAccurate,  ///< ticked every cycle through sim::System
  kAnalytic,       ///< closed-form prediction from a trace profile
};

[[nodiscard]] const char* to_string(Fidelity f);

/// What one evaluation of (machine, spec) estimates, at any fidelity: the
/// per-level C-AMAT picture, the LPM ratios and stall terms, and enough
/// hardware signals for the concurrency diagnosis. This is the currency of
/// the design-space walk — it never reaches into sim::SystemResult.
struct LayerEstimates {
  /// One memory layer of core 0's chain, L1 outward.
  struct Level {
    std::string name;  ///< "l1", "l2p", "l2", "dram"
    double mr = 0.0;
    double pmr = 0.0;
    double camat = 0.0;           ///< active cycles per access of this level
    double camat_per_miss = 0.0;  ///< per upstream miss (Eqs. 4/10/11)
  };
  /// Concurrency-diagnosis inputs (exact on cycle runs, estimated on
  /// analytic ones).
  struct HwSignals {
    std::uint64_t l1_rejections = 0;
    std::uint64_t l1_mshr_wait_cycles = 0;
    std::uint64_t l1_misses = 0;
  };

  std::string backend = exp::kCycleBackend;
  Fidelity fidelity = Fidelity::kCycleAccurate;
  /// Wall clock of the producing execution (cache hits report the
  /// original run's cost).
  double cost_ms = 0.0;
  std::uint64_t fingerprint = 0;

  std::vector<AppMeasurement> apps;  ///< per core; empty if !calibrate
  LpmrSet lpmr;                      ///< of app(0); zeros if !calibrate
  double stall_per_instr_eq12 = 0.0;
  double stall_per_instr_eq13 = 0.0;
  std::vector<Level> levels;
  HwSignals hw;
  /// The producing result; never null. Escape hatch for consumers that
  /// need raw counters (benches, the oracle).
  exp::SimResultPtr result;

  /// The measurement of core `idx`; throws if calibration was disabled.
  [[nodiscard]] const AppMeasurement& app(std::size_t idx = 0) const;

  /// Derives the estimate view from an engine result.
  [[nodiscard]] static LayerEstimates from_result(const exp::SimJob& job,
                                                  exp::SimResultPtr result);
};

/// The seam. Implementations must be deterministic in (machine, spec).
class ModelBackend {
 public:
  virtual ~ModelBackend() = default;
  [[nodiscard]] virtual const std::string& name() const = 0;
  [[nodiscard]] virtual Fidelity fidelity() const = 0;
  /// Blocking; cached via the engine. Throws the job's typed error.
  [[nodiscard]] virtual LayerEstimates evaluate(
      const sim::MachineConfig& machine, const TraceSpec& spec) = 0;
};

/// Shared implementation: route a backend-tagged SimJob through an
/// ExperimentEngine (nullptr = the process-wide shared() engine).
class EngineBackend : public ModelBackend {
 public:
  EngineBackend(std::string name, Fidelity fidelity,
                exp::ExperimentEngine* engine);

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] Fidelity fidelity() const override { return fidelity_; }
  [[nodiscard]] LayerEstimates evaluate(const sim::MachineConfig& machine,
                                        const TraceSpec& spec) override;

  /// The tagged job evaluate() submits; exposed so batch drivers can
  /// submit many points through one engine call.
  [[nodiscard]] exp::SimJob make_job(const sim::MachineConfig& machine,
                                     const TraceSpec& spec) const;
  [[nodiscard]] exp::ExperimentEngine& engine() const;

 private:
  std::string name_;
  Fidelity fidelity_;
  exp::ExperimentEngine* engine_;  ///< non-owning; nullptr = shared()
};

/// The existing cycle path behind the seam: sim::System + measure_cpi_exe.
class CycleSimBackend final : public EngineBackend {
 public:
  explicit CycleSimBackend(exp::ExperimentEngine* engine = nullptr);
};

/// An analytic fast path ("rdh" or "fa"); constructing one registers the
/// analytic executors with the engine (see src/model/analytic.hpp).
class AnalyticBackend final : public EngineBackend {
 public:
  explicit AnalyticBackend(std::string name,
                           exp::ExperimentEngine* engine = nullptr);
};

/// All backend names make_backend accepts: {"cycle", "rdh", "fa"}.
[[nodiscard]] const std::vector<std::string>& backend_names();

/// Factory by name; throws util::ConfigError for an unknown name.
[[nodiscard]] std::unique_ptr<ModelBackend> make_backend(
    const std::string& name, exp::ExperimentEngine* engine = nullptr);

}  // namespace lpm::model
