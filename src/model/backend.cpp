#include "model/backend.hpp"

#include <utility>

#include "model/analytic.hpp"
#include "util/error.hpp"

namespace lpm::model {

const char* to_string(Fidelity f) {
  switch (f) {
    case Fidelity::kCycleAccurate: return "cycle-accurate";
    case Fidelity::kAnalytic: return "analytic";
  }
  return "?";
}

const AppMeasurement& LayerEstimates::app(std::size_t idx) const {
  util::require(idx < apps.size(),
                "LayerEstimates: no such app measurement (was the spec "
                "evaluated with calibrate = false?)");
  return apps[idx];
}

LayerEstimates LayerEstimates::from_result(const exp::SimJob& job,
                                           exp::SimResultPtr result) {
  util::require(result != nullptr, "LayerEstimates: null result");
  const sim::SystemResult& run = result->run;
  LayerEstimates est;
  est.backend = result->backend;
  est.fidelity = result->backend == exp::kCycleBackend
                     ? Fidelity::kCycleAccurate
                     : Fidelity::kAnalytic;
  est.cost_ms = result->duration_ms;
  est.fingerprint = result->fingerprint;

  if (job.calibrate && !result->calib.empty()) {
    est.apps.reserve(run.cores.size());
    for (std::size_t c = 0; c < run.cores.size(); ++c) {
      const std::string app_name =
          c < job.workloads.size() ? job.workloads[c].name : "";
      est.apps.push_back(AppMeasurement::from_run(run, result->calib.at(c), c,
                                                  app_name));
    }
    const AppMeasurement& m = est.apps.front();
    est.lpmr = compute_lpmrs(m);
    est.stall_per_instr_eq12 = stall_eq12(m);
    est.stall_per_instr_eq13 = stall_eq13(m);
  }

  // The per-level summary is derivable from run counters alone, so it is
  // present even without calibration.
  if (!run.l1.empty()) {
    std::uint64_t l1_misses = 0;
    for (const auto& c : run.l1_cache) l1_misses += c.misses;
    Level l1;
    l1.name = "l1";
    l1.mr = run.mr1(0);
    l1.pmr = run.l1.front().pMR();
    l1.camat = run.l1.front().camat();
    l1.camat_per_miss = l1.camat;
    est.levels.push_back(l1);

    std::uint64_t upstream = run.l1_cache.front().misses;
    if (run.has_private_l2()) {
      Level l2p;
      l2p.name = "l2p";
      l2p.mr = run.l2_private_cache.front().miss_rate();
      l2p.pmr = run.l2_private.front().pMR();
      l2p.camat = run.l2_private.front().camat();
      l2p.camat_per_miss =
          upstream > 0
              ? static_cast<double>(run.l2_private.front().active_cycles) /
                    static_cast<double>(upstream)
              : l2p.camat;
      est.levels.push_back(l2p);
      upstream = 0;
      for (const auto& c : run.l2_private_cache) upstream += c.misses;
    } else {
      upstream = l1_misses;
    }

    Level l2;
    l2.name = "l2";
    l2.mr = run.l2_cache.miss_rate();
    l2.pmr = run.l2.pMR();
    l2.camat = run.l2.camat();
    l2.camat_per_miss =
        upstream > 0 ? static_cast<double>(run.l2.active_cycles) /
                           static_cast<double>(upstream)
                     : l2.camat;
    est.levels.push_back(l2);

    Level dram;
    dram.name = "dram";
    dram.pmr = run.dram.pMR();
    dram.camat = run.dram.camat();
    const std::uint64_t llc_misses = run.l2_cache.misses;
    dram.camat_per_miss =
        llc_misses > 0 ? static_cast<double>(run.dram.active_cycles) /
                             static_cast<double>(llc_misses)
                       : dram.camat;
    est.levels.push_back(dram);

    est.hw.l1_misses = l1_misses;
    est.hw.l1_rejections = 0;
    for (const auto& core : run.cores) est.hw.l1_rejections += core.l1_rejections;
    for (const auto& c : run.l1_cache) {
      est.hw.l1_mshr_wait_cycles += c.mshr_full_waits;
    }
  }

  est.result = std::move(result);
  return est;
}

EngineBackend::EngineBackend(std::string name, Fidelity fidelity,
                             exp::ExperimentEngine* engine)
    : name_(std::move(name)), fidelity_(fidelity), engine_(engine) {}

exp::ExperimentEngine& EngineBackend::engine() const {
  return engine_ != nullptr ? *engine_ : exp::ExperimentEngine::shared();
}

exp::SimJob EngineBackend::make_job(const sim::MachineConfig& machine,
                                    const TraceSpec& spec) const {
  exp::SimJob job;
  job.machine = machine;
  job.workloads = spec.expand(machine.num_cores);
  job.calibrate = spec.calibrate;
  job.tag = spec.tag;
  job.backend = name_;
  return job;
}

LayerEstimates EngineBackend::evaluate(const sim::MachineConfig& machine,
                                       const TraceSpec& spec) {
  const exp::SimJob job = make_job(machine, spec);
  return LayerEstimates::from_result(job, engine().run(job));
}

CycleSimBackend::CycleSimBackend(exp::ExperimentEngine* engine)
    : EngineBackend(exp::kCycleBackend, Fidelity::kCycleAccurate, engine) {}

AnalyticBackend::AnalyticBackend(std::string name,
                                 exp::ExperimentEngine* engine)
    : EngineBackend(std::move(name), Fidelity::kAnalytic, engine) {
  register_analytic_executors();
  util::require(exp::ExperimentEngine::has_backend_executor(this->name()),
                "AnalyticBackend: unknown analytic backend '" + this->name() +
                    "' (expected rdh or fa)");
}

const std::vector<std::string>& backend_names() {
  static const std::vector<std::string> names = {exp::kCycleBackend,
                                                 kRdhBackend, kFaBackend};
  return names;
}

std::unique_ptr<ModelBackend> make_backend(const std::string& name,
                                           exp::ExperimentEngine* engine) {
  if (name == exp::kCycleBackend) {
    return std::make_unique<CycleSimBackend>(engine);
  }
  if (name == kRdhBackend || name == kFaBackend) {
    return std::make_unique<AnalyticBackend>(name, engine);
  }
  throw util::ConfigError("make_backend: unknown backend '" + name +
                          "'; expected cycle, rdh or fa");
}

}  // namespace lpm::model
