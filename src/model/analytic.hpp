// Analytic cache-model backends: predict a full SimJobResult without
// ticking a cycle.
//
// Both backends start from one ReuseProfile — an exact LRU stack-distance
// histogram of the workload's trace, built in a single O(N log N) profiling
// pass and cached process-wide, so a design-space sweep pays the trace
// replay once and every config evaluation afterwards is closed-form:
//
//  * "fa"  — fully-associative stack-distance model (after Gysi et al.,
//    arXiv 2001.01653): misses(C) = cold + #{accesses with stack distance
//    >= C blocks}. Exact for fully-associative LRU; an optimistic bound
//    for set-associative arrays.
//  * "rdh" — reuse-distance-histogram model with a binomial set-mapping
//    correction (after Ling et al., arXiv 1907.05068): an access at stack
//    distance D misses a (S sets, A ways) cache with probability
//    P[Binom(D, 1/S) >= A]. Captures conflict misses the FA model cannot.
//
// The miss predictions are then lifted to full C-AMAT parameter sets per
// layer (H/CH/pMR/pAMP/CM, Eq. 2) using Little's-law concurrency estimates,
// and synthesized into counter blocks that satisfy the Eq. 2/3 identities
// *by construction* (check::check_metric_identities passes on analytic
// results). CPIexe still comes from the real perfect-cache calibration —
// it depends only on the core + L1 latency, so it is cached and shared
// across every cache configuration of a sweep.
//
// Known approximations (quantified by src/check/fidelity.hpp): lower-level
// caches see globally-measured stack distances (inclusive-hierarchy
// assumption); prefetching is a coverage-based miss-elimination factor;
// concurrency/overlap are heuristic estimates; shared caches on multicore
// machines are modelled as per-core capacity slices. Block-size effects
// are measured at 64-byte granularity.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "exp/experiment_engine.hpp"
#include "model/backend.hpp"
#include "sim/machine_config.hpp"
#include "sim/system.hpp"
#include "trace/workload_profile.hpp"

namespace lpm::model {

/// Exact LRU stack-distance histogram of one workload's trace, at 64-byte
/// block granularity, plus the sequential-coverage side channel used for
/// the prefetch correction. Immutable once built; shared across configs.
///
/// Accesses are grouped into *bursts*: a leader plus the same-block
/// accesses that follow while the leader's potential fill could still be
/// outstanding. The simulator's cache counts every access to a block with
/// a fill in flight as a (coalesced) miss, so a burst shares its leader's
/// hit/miss outcome, while the MSHR sends one fill downstream per missing
/// burst. How long a fill stays outstanding depends on the machine (an
/// L2-fed fill spans a few memory accesses, a DRAM-fed one spans dozens),
/// so followers are recorded by their gap-from-leader class and the
/// effective coalescing window is chosen per configuration at evaluation
/// time: `hist` counts burst leaders (downstream fills), `followers[c]`
/// counts accesses at leader-gap class c (the demand MR accounting).
struct ReuseProfile {
  static constexpr std::uint64_t kBlockBytes = 64;
  /// Distances >= this land in the overflow bucket (4 MiB of 64 B blocks —
  /// larger than every cache in the design space).
  static constexpr std::uint64_t kMaxTrackedDistance = 1u << 16;
  /// An access is "covered" (a next-line prefetcher would likely have
  /// fetched its block) when the preceding block was accessed at most this
  /// many memory accesses ago. Kept tight: a streamer's prefetch is only
  /// useful when it trails the stream closely — a predecessor touched long
  /// ago means the prefetched line was evicted before use (zipf workloads
  /// touch predecessors "recently" by chance without being streams).
  static constexpr std::uint64_t kCoverWindow = 256;
  /// Follower gap classes: class c holds same-block accesses whose gap
  /// from the burst leader is in (kBurstClassLo[c], kBurstClassHi[c]]
  /// memory accesses. Gaps past the last bound start a new burst.
  static constexpr std::size_t kNumBurstClasses = 4;
  static constexpr std::uint64_t kBurstClassLo[kNumBurstClasses] = {0, 4, 16,
                                                                    64};
  static constexpr std::uint64_t kBurstClassHi[kNumBurstClasses] = {4, 16, 64,
                                                                    256};
  /// The widest coalescing window any configuration can see.
  static constexpr std::uint64_t kMaxBurstWindow =
      kBurstClassHi[kNumBurstClasses - 1];

  std::uint64_t micro_ops = 0;
  std::uint64_t mem_ops = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t distinct_blocks = 0;
  std::uint64_t cold = 0;          ///< first-touch burst leaders (compulsory)
  std::uint64_t cold_covered = 0;
  std::vector<std::uint64_t> hist;     ///< burst leaders at distance d
  std::vector<std::uint64_t> covered;  ///< covered subset of hist[d]
  /// Suffix sums over (hist + overflow): suffix[d] = leaders with distance
  /// >= d; suffix[kMaxTrackedDistance] = overflow bucket.
  std::vector<std::uint64_t> suffix;
  std::vector<std::uint64_t> suffix_covered;
  /// Follower counts per gap class, indexed like hist/suffix by the burst
  /// leader's distance bucket; cold-leader bursts are tallied separately.
  std::array<std::vector<std::uint64_t>, kNumBurstClasses> followers;
  std::array<std::vector<std::uint64_t>, kNumBurstClasses> followers_covered;
  std::array<std::vector<std::uint64_t>, kNumBurstClasses> suffix_followers;
  std::array<std::vector<std::uint64_t>, kNumBurstClasses>
      suffix_followers_covered;
  std::array<std::uint64_t, kNumBurstClasses> cold_followers{};
  std::array<std::uint64_t, kNumBurstClasses> cold_followers_covered{};

  [[nodiscard]] double fmem() const {
    return micro_ops == 0 ? 0.0
                          : static_cast<double>(mem_ops) /
                                static_cast<double>(micro_ops);
  }
};

/// One trace replay: last-access map + Fenwick tree over access positions
/// gives exact LRU stack distances in O(N log N).
[[nodiscard]] ReuseProfile build_reuse_profile(const trace::WorkloadProfile& wl);

/// What a closed-form cache model predicts for one level.
struct MissEstimate {
  /// Misses as the demand MR counts them: every access of a missing burst
  /// inside the coalescing window, coalesced repeats included.
  double demand = 0.0;
  /// Unique block fetches sent downstream (one per missing burst) — the
  /// next level's access count.
  double fills = 0.0;
};

/// Expected misses of a fully-associative LRU cache of `capacity_blocks`
/// 64-byte blocks. `prefetch_alpha` in [0,1] removes that fraction of the
/// sequentially-covered missing bursts (0 = no prefetcher);
/// `burst_window` is the coalescing window in memory accesses (how long a
/// fill of this configuration stays outstanding — followers within it
/// share the leader's miss).
[[nodiscard]] MissEstimate fa_misses(
    const ReuseProfile& p, std::uint64_t capacity_blocks,
    double prefetch_alpha,
    double burst_window = ReuseProfile::kMaxBurstWindow);

/// Expected misses of a (sets, associativity) LRU cache under uniform
/// set mapping (binomial correction); same prefetch/burst handling.
[[nodiscard]] MissEstimate rdh_misses(
    const ReuseProfile& p, std::uint64_t sets, std::uint32_t associativity,
    double prefetch_alpha,
    double burst_window = ReuseProfile::kMaxBurstWindow);

/// Process-wide cache of reuse profiles (keyed by workload fingerprint)
/// and perfect-cache CPIexe calibrations (keyed by the calibration-relevant
/// subset of the machine: core config + L1 hit latency/ports + workload).
/// Both are the expensive parts of an analytic evaluation; everything
/// downstream is closed-form. Thread-safe.
class ProfileCache {
 public:
  static ProfileCache& global();

  [[nodiscard]] std::shared_ptr<const ReuseProfile> reuse(
      const trace::WorkloadProfile& wl);
  [[nodiscard]] std::shared_ptr<const sim::CpiExeResult> calibration(
      const sim::MachineConfig& machine, const trace::WorkloadProfile& wl);

  [[nodiscard]] std::uint64_t profile_builds() const;
  [[nodiscard]] std::uint64_t calibration_runs() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::shared_ptr<const ReuseProfile>>
      profiles_;
  std::unordered_map<std::uint64_t, std::shared_ptr<const sim::CpiExeResult>>
      calibrations_;
  std::uint64_t profile_builds_ = 0;
  std::uint64_t calibration_runs_ = 0;
};

/// Evaluates one backend-tagged job ("rdh" or "fa") analytically and
/// returns a fully-populated result whose counters satisfy the Eq. 2/3
/// identities exactly. Deterministic; microseconds per call once the
/// workload's profile and calibration are cached.
[[nodiscard]] exp::SimJobResult evaluate_analytic(const exp::SimJob& job);

/// Registers the "rdh" and "fa" executors with the experiment engine.
/// Idempotent and thread-safe; called by every AnalyticBackend
/// construction and by consumers that submit tagged jobs directly.
void register_analytic_executors();

}  // namespace lpm::model
