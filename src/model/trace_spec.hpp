// TraceSpec: what to run on a machine. Lives in the model layer (not the
// facade) so every ModelBackend — cycle-accurate or analytic — shares one
// description of "the workload side of an experiment point"; src/lpm.hpp
// re-exports it under the lpm:: name consumers already use.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/workload_profile.hpp"

namespace lpm::model {

/// What to run on the machine: one workload per core (a single entry is
/// replicated across all cores), plus whether to also run the perfect-cache
/// CPIexe calibration every LPM computation needs.
struct TraceSpec {
  std::vector<trace::WorkloadProfile> workloads;
  /// Run sim::measure_cpi_exe per workload so the report carries
  /// AppMeasurements and LPMRs; disable for raw-throughput runs.
  bool calibrate = true;
  /// Free-form label carried into engine sinks (not part of the cache key).
  std::string tag;

  /// A synthetic SPEC CPU2006 analogue by name ("403.gcc", "429.mcf", ...).
  /// Throws util::ConfigError for an unknown name.
  [[nodiscard]] static TraceSpec spec(const std::string& name,
                                      std::uint64_t length = 100'000,
                                      std::uint64_t seed = 1);
  /// An explicit workload profile.
  [[nodiscard]] static TraceSpec profile(trace::WorkloadProfile workload);
  /// A recorded trace file (LPM2 or legacy LPMT): probes the header and
  /// builds a file-backed profile whose identity is the stream's content
  /// checksum, not the path. Throws util::IoError on a missing or corrupt
  /// file. Replay is replicated across cores like any single-entry spec.
  [[nodiscard]] static TraceSpec trace_file(const std::string& path,
                                            std::string name = "");
  /// One profile per core.
  [[nodiscard]] static TraceSpec profiles(std::vector<trace::WorkloadProfile> w);

  /// The per-core workload list for a machine with `num_cores` cores
  /// (replicates a single entry; otherwise sizes must match).
  [[nodiscard]] std::vector<trace::WorkloadProfile> expand(
      std::uint32_t num_cores) const;
};

}  // namespace lpm::model
