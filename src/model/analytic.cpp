#include "model/analytic.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/metrics.hpp"
#include "trace/spec_like.hpp"
#include "trace/synthetic.hpp"
#include "util/error.hpp"
#include "util/fingerprint.hpp"

namespace lpm::model {

namespace {

// Heuristic constants of the concurrency/overlap estimates. They are not
// free-floating magic: the fidelity harness (src/check/fidelity.hpp) pins
// the analytic-vs-cycle error they produce, so retuning them is visible.
// A covered access only becomes a hit when its prefetch completed before
// the demand arrived — a late prefetch coalesces with the demand miss
// (prefetch_coalesced) and still counts as one. kPrefetchAlpha is the cap
// when the streamer fully keeps ahead; the effective alpha scales it by
// (prefetch lead time) / (downstream fill latency), so DRAM-fed streams
// see little miss elimination while L2-fed ones see most of the cap.
constexpr double kPrefetchAlpha = 0.93;   ///< covered misses a prefetcher removes
constexpr double kOverlapBase = 0.30;     ///< comp/mem overlap floor
constexpr double kOverlapIlp = 0.45;      ///< overlap gained from independent work
constexpr double kPurityBeta = 0.60;      ///< how strongly overlap purifies misses
constexpr double kRowHitRandom = 0.15;    ///< DRAM row-hit prob of random traffic
constexpr double kConflictDamp = 0.5;     ///< binomial conflict damping below FA capacity
constexpr double kHitBurst = 1.4;         ///< clustered-issue hit-concurrency boost
constexpr int kCamatFixedPointIters = 6;  ///< Little's-law CPI fixed point

double clampd(double v, double lo, double hi) {
  return std::min(hi, std::max(lo, v));
}

std::uint64_t to_count(double v) {
  return v <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(v));
}

/// Fenwick tree over access positions; prefix_sum(i) counts marked
/// positions <= i. Marked positions are each block's latest access, so the
/// count strictly between two accesses of one block is its stack distance.
class Fenwick {
 public:
  explicit Fenwick(std::size_t n) : tree_(n + 1, 0) {}

  void add(std::size_t i, int delta) {
    for (++i; i < tree_.size(); i += i & (~i + 1)) {
      tree_[i] = static_cast<std::uint32_t>(
          static_cast<std::int64_t>(tree_[i]) + delta);
    }
  }

  [[nodiscard]] std::uint64_t prefix(std::size_t i) const {
    std::uint64_t s = 0;
    for (++i; i > 0; i -= i & (~i + 1)) s += tree_[i];
    return s;
  }

 private:
  std::vector<std::uint32_t> tree_;
};

/// Miss probability of an access at stack distance d in an (S, A) cache,
/// for every d up to kMaxTrackedDistance: P[Binom(d, 1/S) >= A], computed
/// by the truncated pmf recursion. Cached per (S, A) — a design-space walk
/// revisits few geometries.
class MissProbTable {
 public:
  static std::shared_ptr<const std::vector<double>> get(std::uint64_t sets,
                                                        std::uint32_t assoc) {
    static std::mutex mutex;
    static std::unordered_map<std::uint64_t,
                              std::shared_ptr<const std::vector<double>>>
        tables;
    const std::uint64_t key = sets * 131ull + assoc;
    {
      const std::lock_guard<std::mutex> lock(mutex);
      if (const auto it = tables.find(key); it != tables.end()) {
        return it->second;
      }
    }
    auto table = std::make_shared<std::vector<double>>(build(sets, assoc));
    const std::lock_guard<std::mutex> lock(mutex);
    return tables.emplace(key, std::move(table)).first->second;
  }

 private:
  static std::vector<double> build(std::uint64_t sets, std::uint32_t assoc) {
    const std::size_t n = ReuseProfile::kMaxTrackedDistance + 1;
    std::vector<double> miss(n, 1.0);
    const double q = 1.0 / static_cast<double>(sets);
    // pmf[k] = P[Binom(d, q) = k] for k < assoc; the mass escaping past
    // assoc-1 is exactly the miss probability.
    std::vector<double> pmf(assoc, 0.0);
    pmf[0] = 1.0;
    double survive = 1.0;
    for (std::size_t d = 0; d < n; ++d) {
      miss[d] = 1.0 - survive;
      if (survive < 1e-12) {
        std::fill(miss.begin() + static_cast<std::ptrdiff_t>(d), miss.end(),
                  1.0);
        break;
      }
      for (std::size_t k = assoc; k-- > 0;) {
        const double from_below = k > 0 ? pmf[k - 1] * q : 0.0;
        pmf[k] = pmf[k] * (1.0 - q) + from_below;
      }
      survive = 0.0;
      for (const double v : pmf) survive += v;
    }
    return miss;
  }
};

}  // namespace

ReuseProfile build_reuse_profile(const trace::WorkloadProfile& wl) {
  ReuseProfile p;
  p.hist.assign(ReuseProfile::kMaxTrackedDistance, 0);
  p.covered.assign(ReuseProfile::kMaxTrackedDistance, 0);
  for (std::size_t c = 0; c < ReuseProfile::kNumBurstClasses; ++c) {
    p.followers[c].assign(ReuseProfile::kMaxTrackedDistance + 1, 0);
    p.followers_covered[c].assign(ReuseProfile::kMaxTrackedDistance + 1, 0);
  }

  const trace::TraceSourcePtr trace_ptr = trace::make_trace(wl);
  trace::TraceSource& trace = *trace_ptr;
  Fenwick marked(wl.length + 1);
  // Per-block state: position of its latest access, plus which histogram
  // bucket the block's current burst leader landed in (so followers can
  // add their weight to the same bucket).
  constexpr std::uint32_t kColdBucket = 0xFFFFFFFFu;
  constexpr std::uint32_t kOverflowBucket =
      static_cast<std::uint32_t>(ReuseProfile::kMaxTrackedDistance);
  struct BlockState {
    std::uint64_t last_pos = 0;
    std::uint64_t leader_pos = 0;
    std::uint32_t bucket = kColdBucket;
    bool leader_covered = false;
  };
  std::unordered_map<Addr, BlockState> blocks;
  blocks.reserve(4096);

  std::vector<trace::MicroOp> chunk(4096);
  std::uint64_t mem_idx = 0;
  std::uint64_t overflow = 0;
  std::uint64_t overflow_covered = 0;

  auto add_follower = [&](std::uint64_t gap, std::uint32_t bucket,
                          bool leader_covered) {
    std::size_t cls = 0;
    while (gap > ReuseProfile::kBurstClassHi[cls]) ++cls;
    // Cold-leader bursts are tallied separately; overflow leaders share the
    // kMaxTrackedDistance slot of the per-distance arrays.
    if (bucket == kColdBucket) {
      ++p.cold_followers[cls];
      if (leader_covered) ++p.cold_followers_covered[cls];
    } else {
      ++p.followers[cls][bucket];
      if (leader_covered) ++p.followers_covered[cls][bucket];
    }
  };

  for (;;) {
    const std::size_t got = trace.fill(chunk.data(), chunk.size());
    if (got == 0) break;
    for (std::size_t i = 0; i < got; ++i) {
      const trace::MicroOp& op = chunk[i];
      ++p.micro_ops;
      if (!trace::is_memory(op.type)) continue;
      ++p.mem_ops;
      if (op.type == trace::OpType::kLoad) {
        ++p.loads;
      } else {
        ++p.stores;
      }
      const Addr block = op.addr / ReuseProfile::kBlockBytes;
      bool is_covered = false;
      if (block > 0) {
        if (const auto it = blocks.find(block - 1); it != blocks.end()) {
          is_covered = mem_idx - it->second.last_pos <= ReuseProfile::kCoverWindow;
        }
      }
      if (const auto it = blocks.find(block); it != blocks.end()) {
        BlockState& st = it->second;
        const std::uint64_t prev = st.last_pos;
        const std::uint64_t gap = mem_idx - st.leader_pos;
        if (gap <= ReuseProfile::kMaxBurstWindow) {
          // Follower: may ride the burst leader's outstanding fill.
          // Membership is measured from the leader — once the fill's window
          // has passed, the block is resident and reuse starts a new burst.
          add_follower(gap, st.bucket, st.leader_covered);
        } else {
          // New burst leader: distinct blocks touched strictly between the
          // two accesses decide its hit/miss.
          const std::uint64_t d = marked.prefix(mem_idx) - marked.prefix(prev);
          if (d < ReuseProfile::kMaxTrackedDistance) {
            ++p.hist[d];
            if (is_covered) ++p.covered[d];
            st.bucket = static_cast<std::uint32_t>(d);
          } else {
            ++overflow;
            if (is_covered) ++overflow_covered;
            st.bucket = kOverflowBucket;
          }
          st.leader_pos = mem_idx;
          st.leader_covered = is_covered;
        }
        marked.add(prev, -1);
        st.last_pos = mem_idx;
      } else {
        ++p.cold;
        if (is_covered) ++p.cold_covered;
        ++p.distinct_blocks;
        blocks.emplace(block,
                       BlockState{mem_idx, mem_idx, kColdBucket, is_covered});
      }
      marked.add(mem_idx, +1);
      ++mem_idx;
    }
  }

  p.suffix.assign(ReuseProfile::kMaxTrackedDistance + 1, 0);
  p.suffix_covered.assign(ReuseProfile::kMaxTrackedDistance + 1, 0);
  p.suffix[ReuseProfile::kMaxTrackedDistance] = overflow;
  p.suffix_covered[ReuseProfile::kMaxTrackedDistance] = overflow_covered;
  for (std::size_t c = 0; c < ReuseProfile::kNumBurstClasses; ++c) {
    p.suffix_followers[c].assign(ReuseProfile::kMaxTrackedDistance + 1, 0);
    p.suffix_followers_covered[c].assign(ReuseProfile::kMaxTrackedDistance + 1,
                                         0);
    p.suffix_followers[c][ReuseProfile::kMaxTrackedDistance] =
        p.followers[c][ReuseProfile::kMaxTrackedDistance];
    p.suffix_followers_covered[c][ReuseProfile::kMaxTrackedDistance] =
        p.followers_covered[c][ReuseProfile::kMaxTrackedDistance];
  }
  for (std::size_t d = ReuseProfile::kMaxTrackedDistance; d-- > 0;) {
    p.suffix[d] = p.suffix[d + 1] + p.hist[d];
    p.suffix_covered[d] = p.suffix_covered[d + 1] + p.covered[d];
    for (std::size_t c = 0; c < ReuseProfile::kNumBurstClasses; ++c) {
      p.suffix_followers[c][d] = p.suffix_followers[c][d + 1] + p.followers[c][d];
      p.suffix_followers_covered[c][d] =
          p.suffix_followers_covered[c][d + 1] + p.followers_covered[c][d];
    }
  }
  return p;
}

namespace {

/// Fraction of each follower gap class that falls inside a coalescing
/// window of `w` memory accesses (linear within the class bounds).
std::array<double, ReuseProfile::kNumBurstClasses> burst_fractions(double w) {
  std::array<double, ReuseProfile::kNumBurstClasses> f{};
  for (std::size_t c = 0; c < ReuseProfile::kNumBurstClasses; ++c) {
    const double lo = static_cast<double>(ReuseProfile::kBurstClassLo[c]);
    const double hi = static_cast<double>(ReuseProfile::kBurstClassHi[c]);
    f[c] = clampd((w - lo) / (hi - lo), 0.0, 1.0);
  }
  return f;
}

}  // namespace

MissEstimate fa_misses(const ReuseProfile& p, std::uint64_t capacity_blocks,
                       double prefetch_alpha, double burst_window) {
  const std::uint64_t c =
      std::min<std::uint64_t>(std::max<std::uint64_t>(capacity_blocks, 1),
                              ReuseProfile::kMaxTrackedDistance);
  const auto frac = burst_fractions(burst_window);
  MissEstimate e;
  const double fills = static_cast<double>(p.cold + p.suffix[c]);
  const double fills_cov =
      static_cast<double>(p.cold_covered + p.suffix_covered[c]);
  double foll = 0.0;
  double foll_cov = 0.0;
  for (std::size_t cl = 0; cl < ReuseProfile::kNumBurstClasses; ++cl) {
    foll += frac[cl] * static_cast<double>(p.cold_followers[cl] +
                                           p.suffix_followers[cl][c]);
    foll_cov += frac[cl] * static_cast<double>(
                               p.cold_followers_covered[cl] +
                               p.suffix_followers_covered[cl][c]);
  }
  e.fills = std::max(0.0, fills - prefetch_alpha * fills_cov);
  e.demand =
      std::max(0.0, fills + foll - prefetch_alpha * (fills_cov + foll_cov));
  return e;
}

MissEstimate rdh_misses(const ReuseProfile& p, std::uint64_t sets,
                        std::uint32_t associativity, double prefetch_alpha,
                        double burst_window) {
  util::require(sets >= 1 && associativity >= 1,
                "rdh_misses: bad cache geometry");
  if (sets == 1) {
    // Degenerate to the exact fully-associative answer.
    return fa_misses(p, associativity, prefetch_alpha, burst_window);
  }
  const auto table = MissProbTable::get(sets, associativity);
  const std::vector<double>& miss_prob = *table;
  const auto frac = burst_fractions(burst_window);
  const std::uint64_t capacity =
      sets * static_cast<std::uint64_t>(associativity);

  MissEstimate e;
  double foll_cold = 0.0;
  double foll_cold_cov = 0.0;
  for (std::size_t cl = 0; cl < ReuseProfile::kNumBurstClasses; ++cl) {
    foll_cold += frac[cl] * static_cast<double>(p.cold_followers[cl]);
    foll_cold_cov +=
        frac[cl] * static_cast<double>(p.cold_followers_covered[cl]);
  }
  e.fills = static_cast<double>(p.cold) -
            prefetch_alpha * static_cast<double>(p.cold_covered);
  e.demand = static_cast<double>(p.cold) + foll_cold -
             prefetch_alpha *
                 (static_cast<double>(p.cold_covered) + foll_cold_cov);

  auto followers_at = [&](std::size_t d, double& f, double& f_cov) {
    for (std::size_t cl = 0; cl < ReuseProfile::kNumBurstClasses; ++cl) {
      f += frac[cl] * static_cast<double>(p.followers[cl][d]);
      f_cov += frac[cl] * static_cast<double>(p.followers_covered[cl][d]);
    }
  };
  auto suffix_followers_at = [&](std::size_t d, double& f, double& f_cov) {
    for (std::size_t cl = 0; cl < ReuseProfile::kNumBurstClasses; ++cl) {
      f += frac[cl] * static_cast<double>(p.suffix_followers[cl][d]);
      f_cov +=
          frac[cl] * static_cast<double>(p.suffix_followers_covered[cl][d]);
    }
  };
  auto add_tail = [&](std::size_t d) {
    double f = 0.0, f_cov = 0.0;
    suffix_followers_at(d, f, f_cov);
    e.fills += static_cast<double>(p.suffix[d]) -
               prefetch_alpha * static_cast<double>(p.suffix_covered[d]);
    e.demand +=
        static_cast<double>(p.suffix[d]) + f -
        prefetch_alpha * (static_cast<double>(p.suffix_covered[d]) + f_cov);
  };
  // Once P[miss] saturates at 1, the remaining tail is just the suffix sum.
  for (std::size_t d = 0; d < ReuseProfile::kMaxTrackedDistance; ++d) {
    const double pm = miss_prob[d];
    if (pm >= 1.0 - 1e-12) {
      add_tail(d);
      e.fills = std::max(0.0, e.fills);
      e.demand = std::max(0.0, e.demand);
      return e;
    }
    double f = 0.0, f_cov = 0.0;
    followers_at(d, f, f_cov);
    if (p.hist[d] == 0 && f == 0.0) continue;
    // Below FA capacity the binomial (random-mapping) model overpredicts:
    // real address streams index sets far more uniformly than random, so
    // only a damped fraction of the predicted conflicts materialize.
    const double pm_eff =
        d < capacity ? kConflictDamp * pm : pm;
    e.fills += pm_eff * (static_cast<double>(p.hist[d]) -
                         prefetch_alpha * static_cast<double>(p.covered[d]));
    e.demand +=
        pm_eff * (static_cast<double>(p.hist[d]) + f -
                  prefetch_alpha * (static_cast<double>(p.covered[d]) + f_cov));
  }
  add_tail(ReuseProfile::kMaxTrackedDistance);
  e.fills = std::max(0.0, e.fills);
  e.demand = std::max(0.0, e.demand);
  return e;
}

// --- profile / calibration cache -------------------------------------------

ProfileCache& ProfileCache::global() {
  static ProfileCache cache;
  return cache;
}

std::shared_ptr<const ReuseProfile> ProfileCache::reuse(
    const trace::WorkloadProfile& wl) {
  const std::uint64_t key = util::fingerprint(wl);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = profiles_.find(key); it != profiles_.end()) {
      obs::MetricsRegistry::global()
          .counter("model.backend.profile_cache_hits")
          .inc();
      return it->second;
    }
  }
  // Build outside the lock: profiles of different workloads build in
  // parallel; a rare duplicate build of the same workload is benign (both
  // results are identical and the map keeps the first).
  auto built = std::make_shared<const ReuseProfile>(build_reuse_profile(wl));
  obs::MetricsRegistry::global().counter("model.backend.profile_builds").inc();
  const std::lock_guard<std::mutex> lock(mutex_);
  ++profile_builds_;
  return profiles_.emplace(key, std::move(built)).first->second;
}

std::shared_ptr<const sim::CpiExeResult> ProfileCache::calibration(
    const sim::MachineConfig& machine, const trace::WorkloadProfile& wl) {
  // CPIexe depends on the core and the L1's hit latency / port count only
  // (measure_cpi_exe runs against a perfect memory): one calibration is
  // shared by every cache geometry of a sweep.
  util::Fingerprint f;
  f.mix("AnalyticCalib/v1");
  f.mix_u64(util::fingerprint(machine.core));
  f.mix(machine.l1.hit_latency);
  f.mix(machine.l1.ports);
  f.mix_u64(util::fingerprint(wl));
  const std::uint64_t key = f.value();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = calibrations_.find(key); it != calibrations_.end()) {
      obs::MetricsRegistry::global()
          .counter("model.backend.calibration_cache_hits")
          .inc();
      return it->second;
    }
  }
  const trace::TraceSourcePtr calib_trace = trace::make_trace(wl);
  auto calib = std::make_shared<const sim::CpiExeResult>(
      sim::measure_cpi_exe(machine, *calib_trace, nullptr));
  obs::MetricsRegistry::global().counter("model.backend.calibrations").inc();
  const std::lock_guard<std::mutex> lock(mutex_);
  ++calibration_runs_;
  return calibrations_.emplace(key, std::move(calib)).first->second;
}

std::uint64_t ProfileCache::profile_builds() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return profile_builds_;
}

std::uint64_t ProfileCache::calibration_runs() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return calibration_runs_;
}

// --- analytic evaluation ----------------------------------------------------

namespace {

/// Closed-form miss prediction for one cache level under one backend.
MissEstimate level_misses(const std::string& backend, const ReuseProfile& p,
                          const mem::CacheConfig& c, std::uint32_t share,
                          double alpha, double burst_window) {
  if (backend == kFaBackend) {
    const std::uint64_t cap =
        std::max<std::uint64_t>(1, c.size_bytes / c.block_bytes / share);
    return fa_misses(p, cap, alpha, burst_window);
  }
  const std::uint64_t sets = std::max<std::uint64_t>(1, c.num_sets() / share);
  return rdh_misses(p, sets, c.associativity, alpha, burst_window);
}

/// Synthesizes a counter block whose derived parameters reproduce the
/// intended (H, CH, MR, purity, CM) and whose Eq. 2 / Eq. 3 identities
/// hold exactly (active := hit + pure-miss cycles; hit_access_cycles :=
/// hit_phase_access_cycles; Cm := CM).
camat::CamatMetrics synth_level(std::uint64_t accesses, double H, double CH,
                                double MR, double purity, double CM,
                                double camat_down_per_miss) {
  camat::CamatMetrics m;
  m.accesses = accesses;
  if (accesses == 0) return m;
  const double a = static_cast<double>(accesses);
  m.misses = std::min<std::uint64_t>(accesses, to_count(MR * a));
  m.hits = accesses - m.misses;
  m.hit_phase_access_cycles = std::max<std::uint64_t>(1, to_count(a * H));
  m.hit_access_cycles = m.hit_phase_access_cycles;
  m.hit_cycles = std::max<std::uint64_t>(
      1, to_count(static_cast<double>(m.hit_phase_access_cycles) / CH));
  if (m.misses > 0) {
    const double amp = std::max(1.0, CM * camat_down_per_miss);
    m.total_miss_latency =
        std::max<std::uint64_t>(m.misses, to_count(static_cast<double>(m.misses) * amp));
    m.miss_access_cycles = m.total_miss_latency;
    m.miss_cycles = std::max<std::uint64_t>(
        1, to_count(static_cast<double>(m.miss_access_cycles) / CM));
    m.pure_misses = std::min<std::uint64_t>(
        m.misses, to_count(purity * static_cast<double>(m.misses)));
    if (m.pure_misses > 0) {
      m.pure_access_cycles = std::max<std::uint64_t>(
          m.pure_misses,
          to_count(static_cast<double>(m.pure_misses) * purity * amp));
      m.pure_miss_cycles = std::min<std::uint64_t>(
          m.miss_cycles,
          std::max<std::uint64_t>(
              1, to_count(static_cast<double>(m.pure_access_cycles) / CM)));
    }
  }
  m.active_cycles = m.hit_cycles + m.pure_miss_cycles;
  return m;
}

mem::CacheStats synth_cache_stats(std::uint64_t accesses, std::uint64_t misses,
                                  std::vector<std::uint64_t> per_core_accesses,
                                  std::vector<std::uint64_t> per_core_misses,
                                  std::uint64_t mshr_wait_cycles) {
  mem::CacheStats s;
  s.accesses = accesses;
  s.misses = misses;
  s.hits = accesses - misses;
  s.fills = misses;
  s.mshr_full_waits = mshr_wait_cycles;
  s.core_accesses = std::move(per_core_accesses);
  s.core_misses = std::move(per_core_misses);
  return s;
}

/// Everything the per-core chain computation produces.
struct CoreChain {
  // Demand traffic / demand misses per level (L1 outward).
  std::uint64_t a1 = 0, m1 = 0;
  std::uint64_t a2p = 0, m2p = 0;  ///< private L2 (three-level only)
  std::uint64_t a2 = 0, m2 = 0;    ///< shared L2 / LLC
  std::uint64_t a3 = 0;            ///< DRAM accesses
  camat::CamatMetrics l1, l2p, l2, dram;
  cpu::CoreStats stats;
  double mshr_pressure_cycles = 0.0;
};

struct LevelShape {
  double H = 1.0;
  double CH = 1.0;
  double purity = 1.0;
  double CM = 1.0;
};

CoreChain evaluate_core(const exp::SimJob& job, const trace::WorkloadProfile& wl,
                        const ReuseProfile& p, const sim::CpiExeResult& calib) {
  const sim::MachineConfig& mc = job.machine;
  const std::uint32_t cores = std::max(1u, mc.num_cores);
  CoreChain out;

  // --- fill traffic, top-down (no prefetch correction) ---------------------
  // Downstream traffic is unique fills (the MSHR dedups the burst), and
  // prefetch-eliminated demand misses are still fetched from below. Below
  // L1 the burst is already coalesced: every level sees the unique fill
  // stream, so fills-based estimates drive both misses and traffic.
  constexpr double kAnyWindow = ReuseProfile::kMaxBurstWindow;
  out.a1 = p.mem_ops;
  const double m1_traffic =
      level_misses(job.backend, p, mc.l1, 1, 0.0, kAnyWindow).fills;
  double upstream_traffic = std::max(m1_traffic, 1.0);
  double upstream_misses = m1_traffic;
  if (mc.use_private_l2) {
    out.a2p = to_count(upstream_traffic);
    const double m2p = std::min(
        upstream_misses,
        level_misses(job.backend, p, mc.private_l2, 1, 0.0, kAnyWindow).fills);
    out.m2p = std::min<std::uint64_t>(out.a2p, to_count(m2p));
    upstream_traffic = std::max(m2p, 0.0);
    upstream_misses = m2p;
  }
  out.a2 = to_count(std::max(upstream_traffic, 0.0));
  const double m2 = std::min(
      upstream_misses,
      level_misses(job.backend, p, mc.l2, cores, 0.0, kAnyWindow).fills);
  out.m2 = std::min<std::uint64_t>(out.a2, to_count(m2));
  out.a3 = out.m2;

  // DRAM service latency per access: row-hit probability from the
  // workload's spatial locality (streams walk open rows).
  const double seq = clampd(wl.seq_fraction, 0.0, 1.0);
  const double blocks_per_row = std::max(
      1.0, static_cast<double>(mc.dram.row_bytes) /
               static_cast<double>(ReuseProfile::kBlockBytes));
  const double row_hit =
      clampd(seq * (1.0 - 1.0 / blocks_per_row) + (1.0 - seq) * kRowHitRandom,
             0.0, 0.95);
  const double dram_service =
      static_cast<double>(mc.dram.frontend_latency + mc.dram.t_cl +
                          mc.dram.t_burst) +
      (1.0 - row_hit) * static_cast<double>(mc.dram.t_rcd + mc.dram.t_rp);

  // --- demand misses with the prefetch correction --------------------------
  // Where do L1 fills come from, and how long do they stay outstanding?
  const double next_hit_latency = static_cast<double>(
      mc.use_private_l2 ? mc.private_l2.hit_latency : mc.l2.hit_latency);
  const double dram_frac = clampd(
      static_cast<double>(out.a3) / std::max(1.0, m1_traffic), 0.0, 1.0);
  const double fill_latency = std::max(
      1.0, (1.0 - dram_frac) * next_hit_latency + dram_frac * dram_service);
  // The coalescing window (memory accesses issued while one fill is
  // outstanding) and the streamer's usable lead time both depend on the
  // achieved CPI — which depends on C-AMAT1, which depends on the demand
  // misses. The fixed point below re-estimates all three per iteration:
  // memory-bound workloads stall, which slows the issue rate and shrinks
  // the window toward what the simulator actually coalesces.
  const double leaders =
      std::max(1.0, static_cast<double>(p.cold + p.suffix[0]));
  const double mean_burst =
      static_cast<double>(p.mem_ops) / leaders;  // accesses per block

  // --- concurrency / latency shapes ----------------------------------------
  const double chase = clampd(wl.pointer_chase_fraction, 0.0, 1.0);
  const double dep = clampd(wl.alu_dep_fraction, 0.0, 1.0);
  const double fmem = p.fmem();
  // Independent in-flight misses the core can sustain (LSQ window scaled
  // by the fraction of loads that are not serially dependent).
  const double core_mlp = std::max(
      1.0, 1.0 + (1.0 - chase) *
                     (0.5 * static_cast<double>(mc.core.lsq_size) - 1.0));
  const double overlap =
      clampd(kOverlapBase + kOverlapIlp * (1.0 - chase) * (1.0 - 0.5 * dep) -
                 0.25 * fmem,
             0.05, 0.95);
  const double purity = clampd(1.0 - kPurityBeta * overlap, 0.15, 1.0);

  // Miss concurrency narrows down the hierarchy: each level's MSHR file
  // caps it, DRAM banks cap the bottom.
  double conc = core_mlp;
  conc = std::min(conc, static_cast<double>(std::max(1u, mc.l1.mshr_entries)));
  const double cm1 = std::max(1.0, conc);
  if (mc.use_private_l2) {
    conc = std::min(conc,
                    static_cast<double>(std::max(1u, mc.private_l2.mshr_entries)));
  }
  const double cm2p = std::max(1.0, conc);
  conc = std::min(conc, static_cast<double>(std::max(1u, mc.l2.mshr_entries)));
  const double cm2 = std::max(1.0, conc);
  conc = std::min(conc, static_cast<double>(std::max(1u, mc.dram.banks)));
  const double cm_dram = std::max(1.0, conc);

  const double instr = std::max<double>(1.0, static_cast<double>(p.micro_ops));
  double mr1 = 0.0;

  // --- Little's-law fixed point for the hit concurrencies ------------------
  // Access rate per cycle needs the CPI, which needs C-AMAT1, which needs
  // CH: iterate the closed-form chain a few times from CPIexe.
  LevelShape l1s, l2ps, l2s;
  double camat1 = static_cast<double>(mc.l1.hit_latency);
  double cpi = std::max(0.1, calib.cpi_exe);
  double dram_sojourn = dram_service;
  double mshr_over = 1.0;
  for (int iter = 0; iter < kCamatFixedPointIters; ++iter) {
    // Demand misses at the current CPI estimate: the issue rate while a
    // fill is outstanding sets the coalescing window, and the streamer
    // eliminates a covered missing burst only when its prefetch completes
    // before the stream reaches the block (lead = degree x cycles the
    // core spends per block, need = the fill latency).
    const double mem_rate = std::max(0.05, fmem) / cpi;
    const double burst_window =
        clampd(fill_latency * mem_rate, 1.0, ReuseProfile::kMaxBurstWindow);
    // Demand-fill MSHR occupancy (Little's law): oversubscription both
    // starves the prefetcher and serializes misses behind a full file.
    const double fill_rate = m1_traffic / instr / cpi;  // fills per cycle
    const double mshr_util =
        fill_rate * fill_latency /
        static_cast<double>(std::max(1u, mc.l1.mshr_entries));
    double alpha1 = 0.0;
    if (mc.l1.prefetch_degree > 0 && m1_traffic > 0.0) {
      const double cycles_per_block = mean_burst / mem_rate;
      const double lead =
          static_cast<double>(mc.l1.prefetch_degree) * cycles_per_block;
      // A prefetch needs a free MSHR entry: when demand fills already keep
      // the file near-full (DRAM-bound streams), the streamer is starved
      // and the simulator eliminates almost nothing. Quadratic in the
      // utilization: a half-full file still has a free entry most cycles.
      const double mshr_free = clampd(1.0 - mshr_util * mshr_util, 0.0, 1.0);
      alpha1 = kPrefetchAlpha * std::min(1.0, lead / fill_latency) * mshr_free;
    }
    const MissEstimate m1_est =
        level_misses(job.backend, p, mc.l1, 1, alpha1, burst_window);
    out.m1 = std::min<std::uint64_t>(out.a1, to_count(m1_est.demand));
    mr1 = static_cast<double>(out.m1) /
          std::max(1.0, static_cast<double>(out.a1));

    auto hit_conc = [&](double accesses, const mem::CacheConfig& c) {
      const double rate = accesses / instr / cpi;  // accesses per cycle
      const double h = static_cast<double>(c.hit_latency);
      // kHitBurst > 1: a superscalar front end issues memory ops in
      // clumps, so the concurrency *while hits are in flight* exceeds the
      // time-averaged Little's-law value.
      return clampd(rate * h * kHitBurst, 1.0,
                    std::max(1.0, static_cast<double>(c.ports) * h));
    };
    l1s = {static_cast<double>(mc.l1.hit_latency),
           hit_conc(static_cast<double>(out.a1), mc.l1), purity, cm1};
    if (mc.use_private_l2) {
      l2ps = {static_cast<double>(mc.private_l2.hit_latency),
              hit_conc(static_cast<double>(out.a2p), mc.private_l2), purity,
              cm2p};
    }
    l2s = {static_cast<double>(mc.l2.hit_latency),
           hit_conc(static_cast<double>(out.a2), mc.l2), purity, cm2};

    // DRAM queueing: at high bank utilization the sojourn time inflates
    // past the raw service time (M/D/1 mean wait = rho*s / (2(1-rho))).
    const double dram_rate = static_cast<double>(out.a3) / instr / cpi;
    const double rho = clampd(
        dram_rate * dram_service /
            static_cast<double>(std::max(1u, mc.dram.banks)),
        0.0, 0.95);
    dram_sojourn = dram_service * (1.0 + rho / (2.0 * (1.0 - rho)));
    const double camat_dram = dram_sojourn / cm_dram;
    // Per-miss C-AMAT of each downstream level (active / upstream misses).
    const double dram_active = static_cast<double>(out.a3) * camat_dram;
    const double camat_dram_pm =
        dram_active / std::max(1.0, static_cast<double>(out.m2));
    const double camat2 =
        l2s.H / l2s.CH +
        purity * purity *
            (static_cast<double>(out.m2) /
             std::max(1.0, static_cast<double>(out.a2))) *
            camat_dram_pm;
    double camat_up_pm = static_cast<double>(out.a2) * camat2 /
                         std::max(1.0, static_cast<double>(
                                           mc.use_private_l2 ? out.m2p : out.m1));
    if (mc.use_private_l2) {
      const double camat2p =
          l2ps.H / l2ps.CH +
          purity * purity *
              (static_cast<double>(out.m2p) /
               std::max(1.0, static_cast<double>(out.a2p))) *
              camat_up_pm;
      camat_up_pm = static_cast<double>(out.a2p) * camat2p /
                    std::max(1.0, static_cast<double>(out.m1));
    }
    // A demand-fill rate past the MSHR file's capacity serializes misses
    // behind it: each waits out the backlog before it can even allocate.
    mshr_over = std::max(1.0, mshr_util);
    camat1 = l1s.H / l1s.CH + purity * purity * mr1 * camat_up_pm * mshr_over;
    // Damped update: the window->misses->CPI feedback is two-way, and an
    // undamped step can oscillate between the stalled and unstalled rates.
    const double cpi_next =
        std::max(0.1, calib.cpi_exe + fmem * camat1 * (1.0 - overlap));
    cpi = 0.5 * (cpi + cpi_next);
  }

  // --- counter synthesis, bottom-up ----------------------------------------
  out.dram = synth_level(out.a3, dram_sojourn, cm_dram, 0.0, 1.0, 1.0, 0.0);
  const double dram_pm = static_cast<double>(out.dram.active_cycles) /
                         std::max(1.0, static_cast<double>(out.m2));
  out.l2 = synth_level(out.a2, l2s.H, l2s.CH,
                       static_cast<double>(out.m2) /
                           std::max(1.0, static_cast<double>(out.a2)),
                       purity, cm2, dram_pm);
  double up_pm = static_cast<double>(out.l2.active_cycles) /
                 std::max(1.0, static_cast<double>(
                                   mc.use_private_l2 ? out.m2p : out.m1));
  if (mc.use_private_l2) {
    out.l2p = synth_level(out.a2p, l2ps.H, l2ps.CH,
                          static_cast<double>(out.m2p) /
                              std::max(1.0, static_cast<double>(out.a2p)),
                          purity, cm2p, up_pm);
    up_pm = static_cast<double>(out.l2p.active_cycles) /
            std::max(1.0, static_cast<double>(out.m1));
  }
  // The MSHR-full backlog is part of what the L1 counters measure as miss
  // time, so the synthesized per-miss AMP carries the same inflation.
  out.l1 = synth_level(out.a1, l1s.H, l1s.CH, mr1, purity, cm1,
                       up_pm * mshr_over);

  // --- core stats consistent with Eq. 5 / Eq. 7 ----------------------------
  cpu::CoreStats& cs = out.stats;
  cs.instructions = p.micro_ops;
  cs.mem_ops = p.mem_ops;
  cs.loads = p.loads;
  cs.stores = p.stores;
  cs.mem_active_cycles = out.l1.active_cycles;
  cs.overlap_cycles = std::min<std::uint64_t>(
      cs.mem_active_cycles,
      to_count(overlap * static_cast<double>(cs.mem_active_cycles)));
  cs.data_stall_cycles = cs.mem_active_cycles - cs.overlap_cycles;
  const std::uint64_t exe_cycles =
      std::max<std::uint64_t>(1, to_count(calib.cpi_exe * instr));
  cs.cycles = exe_cycles + cs.data_stall_cycles;
  cs.commit_cycles = exe_cycles;
  cs.head_mem_stall_cycles = cs.data_stall_cycles;
  cs.l1_rejections = 0;

  // MSHR-pressure signal for the concurrency diagnosis: how many wanted
  // in-flight misses the L1 MSHR file turns away, scaled to miss cycles.
  const double want = std::max(
      1.0, 1.0 + (1.0 - chase) *
                     (0.5 * static_cast<double>(mc.core.lsq_size) - 1.0));
  const double have = static_cast<double>(std::max(1u, mc.l1.mshr_entries));
  if (want > have) {
    out.mshr_pressure_cycles = (want - have) / want *
                               static_cast<double>(out.l1.miss_cycles);
  }
  return out;
}

exp::SimJobResult execute_analytic(const exp::SimJob& job,
                                   const sim::RunGuard* guard) {
  if (guard != nullptr && guard->cancel.load(std::memory_order_relaxed)) {
    throw util::TimeoutError("analytic evaluation cancelled (job '" +
                             job.tag + "')");
  }
  return evaluate_analytic(job);
}

}  // namespace

exp::SimJobResult evaluate_analytic(const exp::SimJob& job) {
  util::require(job.backend == kRdhBackend || job.backend == kFaBackend,
                "evaluate_analytic: backend must be rdh or fa, got '" +
                    job.backend + "'");
  register_analytic_executors();
  job.validate();

  exp::SimJobResult out;
  out.backend = job.backend;
  sim::SystemResult& run = out.run;
  run.completed = true;

  const std::uint32_t cores = std::max(1u, job.machine.num_cores);
  ProfileCache& cache = ProfileCache::global();

  std::uint64_t l2_acc = 0, l2_miss = 0, dram_acc = 0;
  std::vector<std::uint64_t> l2_core_acc, l2_core_miss;
  std::uint64_t l2_active_agg = 0;
  camat::CamatMetrics l2_agg, dram_agg;

  for (std::uint32_t c = 0; c < cores; ++c) {
    const trace::WorkloadProfile& wl = job.workloads.at(c);
    const auto profile = cache.reuse(wl);
    // CPIexe comes from the real perfect-cache calibration (cached across
    // cache geometries); the cache behaviour itself never ticks a cycle.
    const auto calib = cache.calibration(job.machine, wl);
    const CoreChain chain = evaluate_core(job, wl, *profile, *calib);

    run.cores.push_back(chain.stats);
    run.l1.push_back(chain.l1);
    run.l1_cache.push_back(synth_cache_stats(
        chain.a1, chain.m1, {chain.a1}, {chain.m1},
        to_count(chain.mshr_pressure_cycles)));
    if (job.machine.use_private_l2) {
      run.l2_private.push_back(chain.l2p);
      run.l2_private_cache.push_back(
          synth_cache_stats(chain.a2p, chain.m2p, {chain.a2p}, {chain.m2p}, 0));
    }
    l2_acc += chain.a2;
    l2_miss += chain.m2;
    dram_acc += chain.a3;
    l2_core_acc.push_back(chain.a2);
    l2_core_miss.push_back(chain.m2);
    l2_active_agg += chain.l2.active_cycles;

    // Aggregate the shared levels counter-wise (per-core slices modelled
    // independently; see header caveats for the multicore approximation).
    auto add = [](camat::CamatMetrics& agg, const camat::CamatMetrics& m) {
      agg.accesses += m.accesses;
      agg.hits += m.hits;
      agg.misses += m.misses;
      agg.pure_misses += m.pure_misses;
      agg.active_cycles += m.active_cycles;
      agg.hit_cycles += m.hit_cycles;
      agg.miss_cycles += m.miss_cycles;
      agg.pure_miss_cycles += m.pure_miss_cycles;
      agg.hit_phase_access_cycles += m.hit_phase_access_cycles;
      agg.miss_access_cycles += m.miss_access_cycles;
      agg.pure_access_cycles += m.pure_access_cycles;
      agg.hit_access_cycles += m.hit_access_cycles;
      agg.total_miss_latency += m.total_miss_latency;
    };
    add(l2_agg, chain.l2);
    add(dram_agg, chain.dram);

    if (job.calibrate) out.calib.push_back(*calib);
  }

  run.l2 = l2_agg;
  run.dram = dram_agg;
  run.l2_cache =
      synth_cache_stats(l2_acc, l2_miss, std::move(l2_core_acc),
                        std::move(l2_core_miss), 0);
  run.dram_stats.reads = dram_acc;
  run.dram_stats.busy_cycles = dram_agg.active_cycles;
  run.dram_stats.total_read_latency = dram_agg.hit_phase_access_cycles;
  for (const auto& cs : run.cores) {
    run.cycles = std::max<Cycle>(run.cycles, cs.cycles);
  }
  (void)l2_active_agg;
  return out;
}

void register_analytic_executors() {
  static const bool registered = [] {
    exp::ExperimentEngine::register_backend_executor(kRdhBackend,
                                                     &execute_analytic);
    exp::ExperimentEngine::register_backend_executor(kFaBackend,
                                                     &execute_analytic);
    return true;
  }();
  (void)registered;
}

}  // namespace lpm::model
