// The LPM model (paper §III): layered performance matching ratios, the
// data-stall-time formulas (Eqs. 7, 12, 13) and the optimization thresholds
// (Eqs. 14, 15).
#pragma once

#include <cstddef>
#include <string>

#include "camat/metrics.hpp"
#include "sim/system.hpp"

namespace lpm::model {

/// Everything the LPM math needs about one application's execution on one
/// machine: its compute intensity, memory intensity, overlap behaviour, and
/// the measured per-layer C-AMAT metrics.
struct AppMeasurement {
  std::string app;
  double cpi_exe = 1.0;        ///< perfect-cache cycles per instruction
  double fmem = 0.0;           ///< memory ops per instruction
  double overlap_ratio = 0.0;  ///< Eq. 8
  camat::CamatMetrics l1;
  camat::CamatMetrics l2;
  camat::CamatMetrics l3;      ///< main-memory layer
  double mr1 = 0.0;            ///< L1 demand miss rate
  double mr2 = 0.0;            ///< L2 demand miss rate
  /// Deeper hierarchies ("the extension to additional cache levels is
  /// straightforward"): with a private L2, `l2` is that cache, `l3` the
  /// shared LLC, `mm` main memory, and a fourth matching ratio appears.
  bool three_cache_levels = false;
  camat::CamatMetrics mm;      ///< main memory when three cache levels exist
  double mr3 = 0.0;            ///< LLC demand miss rate (three-level only)
  double measured_stall_per_instr = 0.0;  ///< from the core's cycle counters
  double measured_cpi = 0.0;
  std::uint64_t instructions = 0;
  /// Total upstream misses feeding each shared layer. MSHR coalescing means
  /// the L2 sees fewer *fills* than the L1 has misses, but in the paper's
  /// accounting every L1 miss "occurs on L2" (one cache line is the common
  /// reply for numerous requests, SIII). The per-miss C-AMAT of a layer is
  /// therefore its active cycles divided by the upstream miss count.
  std::uint64_t l1_misses_total = 0;  ///< across all cores feeding the L2
  std::uint64_t l2_misses_total = 0;
  std::uint64_t llc_misses_total = 0;  ///< feeding main memory (three-level)

  /// C-AMAT2 per L1 miss (the quantity Eqs. 4/10/13 expect). Falls back to
  /// the per-fill value when the miss count is unavailable.
  [[nodiscard]] double camat2_per_miss() const;
  /// C-AMAT3 per L2 miss (Eq. 11).
  [[nodiscard]] double camat3_per_miss() const;
  /// C-AMAT of main memory per LLC miss (three-level machines).
  [[nodiscard]] double camat4_per_miss() const;

  /// Builds the measurement for core `core_idx` of a run, pairing it with
  /// its perfect-cache calibration.
  [[nodiscard]] static AppMeasurement from_run(const sim::SystemResult& run,
                                               const sim::CpiExeResult& calib,
                                               std::size_t core_idx,
                                               std::string app_name = "");
};

/// The layered performance matching ratios (Eqs. 9-11; lpmr4 extends the
/// same recurrence one level deeper and is 0 on two-level machines).
struct LpmrSet {
  double lpmr1 = 0.0;  ///< (ALU&FPU, L1)
  double lpmr2 = 0.0;  ///< (L1, next level)
  double lpmr3 = 0.0;  ///< (L2, next level)
  double lpmr4 = 0.0;  ///< (LLC, MM) on three-level machines

  friend bool operator==(const LpmrSet&, const LpmrSet&) = default;
};

[[nodiscard]] LpmrSet compute_lpmrs(const AppMeasurement& m);

/// eta (Eq. 13's damping factor) = eta1 * pMR1 / MR1.
[[nodiscard]] double eta_combined(const AppMeasurement& m);

/// Eq. 7: stall/instr = fmem * C-AMAT1 * (1 - overlapRatio).
[[nodiscard]] double stall_eq7(const AppMeasurement& m);
/// Eq. 12: stall/instr = CPIexe * (1 - overlap) * LPMR1.
[[nodiscard]] double stall_eq12(const AppMeasurement& m);
/// Eq. 13: stall/instr = (H1*fmem/CH1 + CPIexe*eta*LPMR2) * (1 - overlap).
[[nodiscard]] double stall_eq13(const AppMeasurement& m);

/// Eq. 14 threshold: T1 = (delta/100) / (1 - overlap).
[[nodiscard]] double threshold_t1(double delta_percent, double overlap_ratio);
/// Eq. 15 threshold: T2 = (1/eta) * (T1 - H1*fmem / (CH1*CPIexe)).
[[nodiscard]] double threshold_t2(double delta_percent, const AppMeasurement& m);

/// Whether the run's stall time meets the delta% target:
/// stall/instr <= (delta/100) * CPIexe.
[[nodiscard]] bool meets_stall_target(const AppMeasurement& m, double delta_percent);

/// Fine-grained (1%) and coarse-grained (10%) targets from §IV.
inline constexpr double kFineGrainedDelta = 1.0;
inline constexpr double kCoarseGrainedDelta = 10.0;

}  // namespace lpm::model
