// Property fuzzer: seeded random machines + synthetic traces, each case run
// through (a) the differential oracle (optimized sim::System vs RefSystem,
// exact SystemResult equality) and (b) the paper's model identities:
//
//   Eq. 3   C-AMAT = 1/APC (and the Eq. 2 parameter decomposition)
//   Eq. 4   the layer recursion, within documented tolerance
//   Eq. 7/12/13  stall-time formulas agree with each other and the core's
//                measured stall within documented tolerance
//   Eq. 14/15    threshold structure: T1 scales linearly in delta, T2 is
//                monotone in delta, and the Fig. 3 case selection is stable
//                under granularity (a run Done at 1% is never sent back to
//                Optimize at 10%)
//
// Each case additionally round-trips its op lists through the LPM2 on-disk
// format (record to a temp file, replay through MmapTrace, compare op by
// op), so the recorded-trace path is fuzzed with the same seeds as the
// simulators — a codec or replay bug surfaces as a "trace-roundtrip"
// failure, not as silent divergence three layers later.
//
// Divergences are delta-debugged to a minimal repro and written as replay
// JSON (see replay.hpp / tools/lpm_replay). Seed, case count, and the
// round-trip check come from LPM_CHECK_SEED / LPM_CHECK_CASES /
// LPM_CHECK_ROUNDTRIP so CI can vary coverage without a rebuild.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/diff.hpp"
#include "check/replay.hpp"
#include "core/lpm_model.hpp"
#include "trace/workload_profile.hpp"

namespace lpm::check {

struct FuzzConfig {
  std::uint64_t seed = 20260805;  ///< master seed; case i uses seed + i
  std::uint64_t cases = 200;
  std::uint64_t trace_len = 1500;  ///< micro-ops per core
  /// Directory for minimized divergence repros ("lpm-repro-<seed>.json");
  /// empty = don't write artifacts.
  std::string artifact_dir;
  bool check_properties = true;  ///< model identities on top of the diff
  bool minimize = true;          ///< delta-debug divergent cases
  /// Record each case's ops to a temporary LPM2 file and replay them back
  /// through MmapTrace (alternating delivery modes per seed); any op-level
  /// difference or typed error is a "trace-roundtrip" failure.
  bool check_trace_roundtrip = true;

  /// Applies LPM_CHECK_SEED / LPM_CHECK_CASES / LPM_CHECK_ARTIFACTS /
  /// LPM_CHECK_ROUNDTRIP over the defaults. Malformed numbers throw
  /// util::ConfigError.
  [[nodiscard]] static FuzzConfig from_env();
};

struct FuzzFailure {
  std::uint64_t case_seed = 0;
  std::string kind;    ///< "divergence", "property", or "trace-roundtrip"
  std::string detail;  ///< first differing counter / violated identity
  std::string replay_path;  ///< written artifact (divergences only; may be empty)
};

struct FuzzSummary {
  std::uint64_t cases_run = 0;
  std::uint64_t divergences = 0;
  std::uint64_t property_failures = 0;
  std::uint64_t roundtrip_failures = 0;  ///< LPM2 record/replay mismatches
  std::uint64_t simulator_pairs = 0;  ///< optimized+reference executions (incl. minimization)
  std::vector<FuzzFailure> failures;

  [[nodiscard]] bool ok() const { return failures.empty(); }
};

/// Checks the per-run counter identities (Eq. 3 exact inverse, Eq. 2
/// decomposition, active = hit + pure-miss partition, conservation of
/// accesses) on every layer of a result. Returns the first violation as
/// "layer: what", empty when all hold.
[[nodiscard]] std::string check_metric_identities(const sim::SystemResult& r);

/// Checks the model-side properties (Eqs. 4/7/12/13 agreement, Eq. 14/15
/// threshold structure, Fig. 3 granularity stability) on one core's
/// measurement. Returns the first violation, empty when all hold.
[[nodiscard]] std::string check_model_properties(const core::AppMeasurement& m);

/// Checks the analytic-backend properties on one (machine, workload) pair:
/// the "rdh" and "fa" evaluations must synthesize counters that satisfy the
/// Eq. 2/3 identities exactly (check_metric_identities), and the underlying
/// closed-form miss curves must be monotone — misses (demand and fills)
/// never increase when the cache grows, and fills never exceed demand.
/// Returns the first violation, empty when all hold.
[[nodiscard]] std::string check_analytic_properties(
    const sim::MachineConfig& machine, const trace::WorkloadProfile& wl);

class Fuzzer {
 public:
  explicit Fuzzer(FuzzConfig cfg = {}) : cfg_(std::move(cfg)) {}

  /// Deterministically generates case `case_seed` (machine + traces); the
  /// same seed always yields the same ReplayCase, independent of cfg.
  [[nodiscard]] ReplayCase generate(std::uint64_t case_seed) const;

  /// Runs cfg.cases cases (seeds cfg.seed .. cfg.seed + cases - 1).
  [[nodiscard]] FuzzSummary run();

  [[nodiscard]] const FuzzConfig& config() const { return cfg_; }

 private:
  FuzzConfig cfg_;
};

}  // namespace lpm::check
