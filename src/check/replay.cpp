#include "check/replay.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "trace/synthetic.hpp"
#include "util/error.hpp"
#include "util/flat_json.hpp"

namespace lpm::check {

namespace {

constexpr const char* kFormatTag = "lpm-replay-v1";

void append_kv(std::string& out, const std::string& key, const std::string& raw,
               bool quote) {
  out += "  \"";
  out += key;
  out += "\": ";
  if (quote) out += '"';
  out += raw;
  if (quote) out += '"';
  out += ",\n";
}

void put_num(std::string& out, const std::string& key, std::uint64_t v) {
  append_kv(out, key, std::to_string(v), /*quote=*/false);
}

// 64-bit values that may exceed 2^53 travel as strings (FlatJson numbers
// are doubles).
void put_u64(std::string& out, const std::string& key, std::uint64_t v) {
  append_kv(out, key, std::to_string(v), /*quote=*/true);
}

void put_str(std::string& out, const std::string& key, const std::string& v) {
  // Replay values are [a-z0-9.,:;_-] only; no escaping needed beyond quotes.
  append_kv(out, key, v, /*quote=*/true);
}

void put_cache(std::string& out, const std::string& p,
               const mem::CacheConfig& c) {
  put_num(out, p + ".size_bytes", c.size_bytes);
  put_num(out, p + ".block_bytes", c.block_bytes);
  put_num(out, p + ".associativity", c.associativity);
  put_num(out, p + ".hit_latency", c.hit_latency);
  put_num(out, p + ".ports", c.ports);
  put_num(out, p + ".banks", c.banks);
  put_num(out, p + ".interleave_bytes", c.interleave_bytes);
  put_num(out, p + ".mshr_entries", c.mshr_entries);
  put_num(out, p + ".mshr_targets", c.mshr_targets);
  put_num(out, p + ".writeback_capacity", c.writeback_capacity);
  put_num(out, p + ".prefetch_degree", c.prefetch_degree);
  put_num(out, p + ".prefetch_accuracy_window", c.prefetch_accuracy_window);
  put_num(out, p + ".mshr_quota_per_core", c.mshr_quota_per_core);
  put_str(out, p + ".replacement", mem::to_string(c.replacement));
  put_u64(out, p + ".seed", c.seed);
}

std::uint64_t get_num(const util::FlatJson& j, const std::string& key) {
  const auto v = j.get_number(key);
  util::require(v.has_value(), "replay: missing number key " + key);
  return static_cast<std::uint64_t>(*v);
}

std::uint64_t get_u64(const util::FlatJson& j, const std::string& key) {
  const auto v = j.get_string(key);
  util::require(v.has_value(), "replay: missing key " + key);
  try {
    return std::stoull(*v);
  } catch (const std::exception&) {
    throw util::LpmError("replay: bad 64-bit value for " + key);
  }
}

mem::CacheConfig get_cache(const util::FlatJson& j, const std::string& p) {
  mem::CacheConfig c;
  c.size_bytes = get_num(j, p + ".size_bytes");
  c.block_bytes = static_cast<std::uint32_t>(get_num(j, p + ".block_bytes"));
  c.associativity = static_cast<std::uint32_t>(get_num(j, p + ".associativity"));
  c.hit_latency = static_cast<std::uint32_t>(get_num(j, p + ".hit_latency"));
  c.ports = static_cast<std::uint32_t>(get_num(j, p + ".ports"));
  c.banks = static_cast<std::uint32_t>(get_num(j, p + ".banks"));
  c.interleave_bytes = get_num(j, p + ".interleave_bytes");
  c.mshr_entries = static_cast<std::uint32_t>(get_num(j, p + ".mshr_entries"));
  c.mshr_targets = static_cast<std::uint32_t>(get_num(j, p + ".mshr_targets"));
  c.writeback_capacity =
      static_cast<std::uint32_t>(get_num(j, p + ".writeback_capacity"));
  c.prefetch_degree =
      static_cast<std::uint32_t>(get_num(j, p + ".prefetch_degree"));
  c.prefetch_accuracy_window =
      static_cast<std::uint32_t>(get_num(j, p + ".prefetch_accuracy_window"));
  c.mshr_quota_per_core =
      static_cast<std::uint32_t>(get_num(j, p + ".mshr_quota_per_core"));
  const auto repl = j.get_string(p + ".replacement");
  util::require(repl.has_value(), "replay: missing key " + p + ".replacement");
  c.replacement = mem::replacement_from_string(*repl);
  c.seed = get_u64(j, p + ".seed");
  return c;
}

}  // namespace

std::vector<trace::TraceSourcePtr> ReplayCase::make_traces() const {
  std::vector<trace::TraceSourcePtr> traces;
  traces.reserve(ops.size());
  for (std::size_t c = 0; c < ops.size(); ++c) {
    traces.push_back(std::make_unique<trace::VectorTrace>(
        "replay." + std::to_string(c), ops[c]));
  }
  return traces;
}

std::string encode_ops(const std::vector<trace::MicroOp>& ops) {
  std::string out;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const trace::MicroOp& op = ops[i];
    if (i != 0) out += ';';
    switch (op.type) {
      case trace::OpType::kAlu: out += 'a'; break;
      case trace::OpType::kLoad: out += 'l'; break;
      case trace::OpType::kStore: out += 's'; break;
    }
    std::ostringstream hex;
    hex << std::hex << op.addr;
    out += hex.str();
    out += ':';
    out += std::to_string(op.dep_dist);
    out += ':';
    out += std::to_string(op.dep_dist2);
    out += ':';
    out += std::to_string(static_cast<unsigned>(op.exec_latency));
  }
  return out;
}

std::vector<trace::MicroOp> decode_ops(const std::string& text) {
  std::vector<trace::MicroOp> ops;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find(';', pos);
    if (end == std::string::npos) end = text.size();
    const std::string tok = text.substr(pos, end - pos);
    pos = end + 1;
    util::require(tok.size() >= 2, "replay: truncated op token");
    trace::MicroOp op;
    switch (tok[0]) {
      case 'a': op.type = trace::OpType::kAlu; break;
      case 'l': op.type = trace::OpType::kLoad; break;
      case 's': op.type = trace::OpType::kStore; break;
      default: throw util::LpmError("replay: unknown op type in token " + tok);
    }
    std::uint64_t addr = 0;
    std::uint64_t dep = 0;
    std::uint64_t dep2 = 0;
    std::uint64_t lat = 1;
    const int got = std::sscanf(tok.c_str() + 1, "%lx:%lu:%lu:%lu", &addr,
                                &dep, &dep2, &lat);
    util::require(got == 4, "replay: malformed op token " + tok);
    op.addr = addr;
    op.dep_dist = static_cast<std::uint32_t>(dep);
    op.dep_dist2 = static_cast<std::uint32_t>(dep2);
    op.exec_latency = static_cast<std::uint8_t>(lat);
    ops.push_back(op);
  }
  return ops;
}

std::string replay_to_json(const ReplayCase& c) {
  const sim::MachineConfig& m = c.machine;
  std::string out = "{\n";
  put_str(out, "format", kFormatTag);
  put_num(out, "num_cores", m.num_cores);
  put_u64(out, "max_cycles", m.max_cycles);
  append_kv(out, "use_private_l2", m.use_private_l2 ? "true" : "false",
            /*quote=*/false);
  if (!m.l1_size_per_core.empty()) {
    std::string sizes;
    for (std::size_t i = 0; i < m.l1_size_per_core.size(); ++i) {
      if (i != 0) sizes += ',';
      sizes += std::to_string(m.l1_size_per_core[i]);
    }
    put_str(out, "l1_size_per_core", sizes);
  }
  put_num(out, "core.issue_width", m.core.issue_width);
  put_num(out, "core.dispatch_width", m.core.dispatch_width);
  put_num(out, "core.commit_width", m.core.commit_width);
  put_num(out, "core.iw_size", m.core.iw_size);
  put_num(out, "core.rob_size", m.core.rob_size);
  put_num(out, "core.lsq_size", m.core.lsq_size);
  put_cache(out, "l1", m.l1);
  put_cache(out, "l2", m.l2);
  if (m.use_private_l2) put_cache(out, "private_l2", m.private_l2);
  put_num(out, "dram.banks", m.dram.banks);
  put_num(out, "dram.row_bytes", m.dram.row_bytes);
  put_num(out, "dram.interleave_bytes", m.dram.interleave_bytes);
  put_num(out, "dram.t_rcd", m.dram.t_rcd);
  put_num(out, "dram.t_cl", m.dram.t_cl);
  put_num(out, "dram.t_rp", m.dram.t_rp);
  put_num(out, "dram.t_burst", m.dram.t_burst);
  put_num(out, "dram.frontend_latency", m.dram.frontend_latency);
  put_num(out, "dram.queue_capacity", m.dram.queue_capacity);
  put_num(out, "dram.max_issue_per_cycle", m.dram.max_issue_per_cycle);
  put_num(out, "dram.starvation_threshold", m.dram.starvation_threshold);
  for (std::size_t cidx = 0; cidx < c.ops.size(); ++cidx) {
    put_str(out, "ops." + std::to_string(cidx), encode_ops(c.ops[cidx]));
  }
  // Replace the trailing ",\n" with the closing brace.
  out.erase(out.size() - 2);
  out += "\n}\n";
  return out;
}

ReplayCase replay_from_json(const std::string& text) {
  const util::FlatJson j = util::FlatJson::parse(text);
  const auto format = j.get_string("format");
  util::require(format.has_value() && *format == kFormatTag,
                "replay: not an lpm-replay-v1 file");

  ReplayCase c;
  sim::MachineConfig& m = c.machine;
  m.num_cores = static_cast<std::uint32_t>(get_num(j, "num_cores"));
  m.max_cycles = get_u64(j, "max_cycles");
  const auto priv = j.get_bool("use_private_l2");
  util::require(priv.has_value(), "replay: missing use_private_l2");
  m.use_private_l2 = *priv;
  if (const auto sizes = j.get_string("l1_size_per_core")) {
    std::size_t pos = 0;
    while (pos < sizes->size()) {
      std::size_t end = sizes->find(',', pos);
      if (end == std::string::npos) end = sizes->size();
      m.l1_size_per_core.push_back(
          std::stoull(sizes->substr(pos, end - pos)));
      pos = end + 1;
    }
  }
  m.core.issue_width = static_cast<std::uint32_t>(get_num(j, "core.issue_width"));
  m.core.dispatch_width =
      static_cast<std::uint32_t>(get_num(j, "core.dispatch_width"));
  m.core.commit_width =
      static_cast<std::uint32_t>(get_num(j, "core.commit_width"));
  m.core.iw_size = static_cast<std::uint32_t>(get_num(j, "core.iw_size"));
  m.core.rob_size = static_cast<std::uint32_t>(get_num(j, "core.rob_size"));
  m.core.lsq_size = static_cast<std::uint32_t>(get_num(j, "core.lsq_size"));
  m.l1 = get_cache(j, "l1");
  m.l2 = get_cache(j, "l2");
  if (m.use_private_l2) m.private_l2 = get_cache(j, "private_l2");
  m.dram.banks = static_cast<std::uint32_t>(get_num(j, "dram.banks"));
  m.dram.row_bytes = get_num(j, "dram.row_bytes");
  m.dram.interleave_bytes = get_num(j, "dram.interleave_bytes");
  m.dram.t_rcd = static_cast<std::uint32_t>(get_num(j, "dram.t_rcd"));
  m.dram.t_cl = static_cast<std::uint32_t>(get_num(j, "dram.t_cl"));
  m.dram.t_rp = static_cast<std::uint32_t>(get_num(j, "dram.t_rp"));
  m.dram.t_burst = static_cast<std::uint32_t>(get_num(j, "dram.t_burst"));
  m.dram.frontend_latency =
      static_cast<std::uint32_t>(get_num(j, "dram.frontend_latency"));
  m.dram.queue_capacity =
      static_cast<std::uint32_t>(get_num(j, "dram.queue_capacity"));
  m.dram.max_issue_per_cycle =
      static_cast<std::uint32_t>(get_num(j, "dram.max_issue_per_cycle"));
  m.dram.starvation_threshold =
      static_cast<std::uint32_t>(get_num(j, "dram.starvation_threshold"));

  for (std::uint32_t cidx = 0; cidx < m.num_cores; ++cidx) {
    const auto ops = j.get_string("ops." + std::to_string(cidx));
    util::require(ops.has_value(),
                  "replay: missing ops." + std::to_string(cidx));
    c.ops.push_back(decode_ops(*ops));
  }
  m.validate();
  return c;
}

void save_replay(const ReplayCase& c, const std::string& path) {
  std::ofstream out(path);
  util::require(out.good(), "replay: cannot open " + path + " for writing");
  out << replay_to_json(c);
  util::require(out.good(), "replay: write to " + path + " failed");
}

ReplayCase load_replay(const std::string& path) {
  std::ifstream in(path);
  util::require(in.good(), "replay: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return replay_from_json(buf.str());
}

}  // namespace lpm::check
