// Reference re-implementation of the C-AMAT detecting system (HCD/MCD).
//
// Part of the differential oracle (see DESIGN.md "Differential validation"):
// a deliberately slow, allocation-naive probe that must produce counters
// exactly equal to camat::Analyzer's. It shares only the AccessProbe
// interface and the CamatMetrics value type (the comparison currency) with
// the optimized implementation; all bookkeeping is independent — ordered
// maps instead of scan-and-erase vectors, and a sample every cycle instead
// of the analyzer-side idle skip the optimized cache performs.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "camat/metrics.hpp"
#include "mem/probe.hpp"
#include "util/types.hpp"

namespace lpm::check {

class RefAnalyzer final : public mem::AccessProbe {
 public:
  explicit RefAnalyzer(std::string level_name = "ref")
      : name_(std::move(level_name)) {}

  // --- mem::AccessProbe ---
  void on_cycle_activity(Cycle cycle, std::uint32_t hit_active) override;
  void on_access(RequestId id, Cycle start, bool is_write) override;
  void on_hit(RequestId id, Cycle done) override;
  void on_miss(RequestId id, Cycle start) override;
  void on_miss_done(RequestId id, Cycle done) override;

  [[nodiscard]] const camat::CamatMetrics& metrics() const { return m_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t outstanding_misses() const {
    return outstanding_.size();
  }

 private:
  struct Miss {
    Cycle start = 0;
    std::uint64_t pure_cycles = 0;
  };

  std::string name_;
  camat::CamatMetrics m_;
  std::map<RequestId, Cycle> in_lookup_;   // id -> lookup start
  std::map<RequestId, Miss> outstanding_;  // id -> outstanding miss
  Cycle last_sampled_ = kNoCycle;
};

}  // namespace lpm::check
