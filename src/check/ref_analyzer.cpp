#include "check/ref_analyzer.hpp"

#include "util/error.hpp"

namespace lpm::check {

void RefAnalyzer::on_cycle_activity(Cycle cycle, std::uint32_t hit_active) {
  // The probe contract (mem/probe.hpp) promises strictly increasing sample
  // cycles; the reference enforces it rather than asserting.
  util::require(last_sampled_ == kNoCycle || cycle > last_sampled_,
                name_ + ": non-monotonic activity sample");
  last_sampled_ = cycle;

  const auto miss_active = static_cast<std::uint32_t>(outstanding_.size());
  if (hit_active > 0 || miss_active > 0) ++m_.active_cycles;
  if (hit_active > 0) {
    ++m_.hit_cycles;
    m_.hit_access_cycles += hit_active;
  }
  if (miss_active > 0) {
    ++m_.miss_cycles;
    m_.miss_access_cycles += miss_active;
  }
  if (miss_active > 0 && hit_active == 0) {
    ++m_.pure_miss_cycles;
    m_.pure_access_cycles += miss_active;
    for (auto& [id, miss] : outstanding_) ++miss.pure_cycles;
  }
}

void RefAnalyzer::on_access(RequestId id, Cycle start, bool /*is_write*/) {
  ++m_.accesses;
  util::require(in_lookup_.emplace(id, start).second,
                name_ + ": duplicate access id");
}

void RefAnalyzer::on_hit(RequestId id, Cycle done) {
  ++m_.hits;
  const auto it = in_lookup_.find(id);
  util::require(it != in_lookup_.end(), name_ + ": hit for unknown access");
  m_.hit_phase_access_cycles += done - it->second;
  in_lookup_.erase(it);
}

void RefAnalyzer::on_miss(RequestId id, Cycle start) {
  ++m_.misses;
  const auto it = in_lookup_.find(id);
  util::require(it != in_lookup_.end(), name_ + ": miss for unknown access");
  m_.hit_phase_access_cycles += start - it->second;
  in_lookup_.erase(it);
  util::require(outstanding_.emplace(id, Miss{start, 0}).second,
                name_ + ": duplicate outstanding miss");
}

void RefAnalyzer::on_miss_done(RequestId id, Cycle done) {
  const auto it = outstanding_.find(id);
  util::require(it != outstanding_.end(), name_ + ": done for unknown miss");
  m_.total_miss_latency += done - it->second.start;
  if (it->second.pure_cycles > 0) ++m_.pure_misses;
  outstanding_.erase(it);
}

}  // namespace lpm::check
