#include "check/ref_system.hpp"

#include <string>

#include "util/error.hpp"

namespace lpm::check {

RefSystem::RefSystem(sim::MachineConfig cfg,
                     std::vector<trace::TraceSourcePtr> traces)
    : cfg_(std::move(cfg)), traces_(std::move(traces)) {
  cfg_.validate();
  util::require(traces_.size() == cfg_.num_cores,
                "RefSystem: need exactly one trace per core");
  for (const auto& t : traces_) {
    util::require(t != nullptr, "RefSystem: null trace");
  }

  // Topology, id spaces and per-instance seeds must mirror sim::System
  // exactly: fill-request ids and random-replacement streams are part of
  // the observable behaviour being compared.
  dram_ = std::make_unique<mem::Dram>(cfg_.dram);
  dram_analyzer_ = std::make_unique<RefAnalyzer>("DRAM");
  dram_->set_probe(dram_analyzer_.get());

  mem::CacheConfig l2cfg = cfg_.l2;
  l2cfg.num_cores = cfg_.num_cores;
  l2_ = std::make_unique<RefCache>(l2cfg, dram_.get(), /*id_space=*/1000);
  l2_analyzer_ = std::make_unique<RefAnalyzer>("L2");
  l2_->set_probe(l2_analyzer_.get());

  for (std::uint32_t c = 0; c < cfg_.num_cores; ++c) {
    mem::MemoryLevel* below_l1 = l2_.get();
    if (cfg_.use_private_l2) {
      mem::CacheConfig l2pcfg = cfg_.private_l2;
      l2pcfg.name = "L2p." + std::to_string(c);
      l2pcfg.num_cores = cfg_.num_cores;
      l2pcfg.seed = cfg_.private_l2.seed + 17 * c;
      auto l2p =
          std::make_unique<RefCache>(l2pcfg, l2_.get(), /*id_space=*/500 + c);
      auto l2p_analyzer = std::make_unique<RefAnalyzer>(l2pcfg.name);
      l2p->set_probe(l2p_analyzer.get());
      below_l1 = l2p.get();
      private_l2s_.push_back(std::move(l2p));
      private_l2_analyzers_.push_back(std::move(l2p_analyzer));
    }

    mem::CacheConfig l1cfg = cfg_.l1;
    l1cfg.name = "L1." + std::to_string(c);
    if (!cfg_.l1_size_per_core.empty()) {
      l1cfg.size_bytes = cfg_.l1_size_per_core[c];
    }
    l1cfg.num_cores = cfg_.num_cores;
    l1cfg.seed = cfg_.l1.seed + c;
    auto l1 = std::make_unique<RefCache>(l1cfg, below_l1, /*id_space=*/100 + c);
    auto analyzer = std::make_unique<RefAnalyzer>(l1cfg.name);
    l1->set_probe(analyzer.get());

    cpu::CoreConfig core_cfg = cfg_.core;
    core_cfg.id = c;
    core_cfg.name = "core" + std::to_string(c);
    auto core = std::make_unique<cpu::OooCore>(core_cfg, traces_[c].get(),
                                               l1.get(), /*id_space=*/1 + c);
    l1s_.push_back(std::move(l1));
    l1_analyzers_.push_back(std::move(analyzer));
    cores_.push_back(std::move(core));
  }
}

bool RefSystem::finished() const {
  for (const auto& core : cores_) {
    if (!core->finished()) return false;
  }
  for (const auto& l2p : private_l2s_) {
    if (l2p->busy()) return false;
  }
  return !dram_->busy() && !l2_->busy();
}

bool RefSystem::step() {
  if (finished()) return false;
  dram_->tick(now_);
  l2_->tick(now_);
  for (auto& l2p : private_l2s_) l2p->tick(now_);
  for (auto& l1 : l1s_) l1->tick(now_);
  for (auto& core : cores_) core->tick(now_);
  ++now_;
  return true;
}

sim::SystemResult RefSystem::run() {
  while (now_ < cfg_.max_cycles) {
    if (!step()) break;
  }
  if (!finalized_ && now_ > 0) {
    const Cycle last = now_ - 1;
    dram_->finalize(last);
    l2_->finalize(last);
    for (auto& l2p : private_l2s_) l2p->finalize(last);
    for (auto& l1 : l1s_) l1->finalize(last);
    finalized_ = true;
  }
  return collect();
}

sim::SystemResult RefSystem::collect() const {
  sim::SystemResult r;
  r.completed = finished();
  r.cycles = now_;
  for (std::uint32_t c = 0; c < cfg_.num_cores; ++c) {
    r.cores.push_back(cores_[c]->stats());
    r.l1.push_back(l1_analyzers_[c]->metrics());
    r.l1_cache.push_back(l1s_[c]->stats());
    if (cfg_.use_private_l2) {
      r.l2_private.push_back(private_l2_analyzers_[c]->metrics());
      r.l2_private_cache.push_back(private_l2s_[c]->stats());
    }
  }
  r.l2 = l2_analyzer_->metrics();
  r.dram = dram_analyzer_->metrics();
  r.l2_cache = l2_->stats();
  r.dram_stats = dram_->stats();
  return r;
}

}  // namespace lpm::check
