#include "check/ref_cache.hpp"

#include "util/error.hpp"

namespace lpm::check {

// --- RefReplacement ---------------------------------------------------------

RefReplacement::RefReplacement(mem::ReplacementPolicy policy, std::uint32_t ways)
    : policy_(policy), ways_(ways) {
  util::require(ways >= 1, "RefReplacement: ways must be >= 1");
  last_use_.assign(ways, 0);
  fill_seq_.assign(ways, 0);
  if (policy_ == mem::ReplacementPolicy::kPlru && tree_plru_usable()) {
    plru_bits_.assign(ways - 1, 0);
  }
  if (policy_ == mem::ReplacementPolicy::kSrrip) {
    rrpv_.assign(ways, 3);
  }
}

bool RefReplacement::tree_plru_usable() const {
  return ways_ >= 2 && (ways_ & (ways_ - 1)) == 0;
}

void RefReplacement::touch(std::uint32_t way, std::uint64_t tick) {
  util::require(way < ways_, "RefReplacement::touch: bad way");
  last_use_[way] = tick;
  if (policy_ == mem::ReplacementPolicy::kPlru && tree_plru_usable()) {
    // Walk the tree from the root, flipping each node to point away from
    // the touched way (bit value 1 selects the right half as cold).
    std::uint32_t node = 0;
    std::uint32_t lo = 0;
    std::uint32_t hi = ways_;
    while (hi - lo > 1) {
      const std::uint32_t mid = lo + (hi - lo) / 2;
      if (way >= mid) {
        plru_bits_[node] = 0;
        node = 2 * node + 2;
        lo = mid;
      } else {
        plru_bits_[node] = 1;
        node = 2 * node + 1;
        hi = mid;
      }
    }
  }
  if (policy_ == mem::ReplacementPolicy::kSrrip) rrpv_[way] = 0;
}

void RefReplacement::fill(std::uint32_t way, std::uint64_t tick) {
  util::require(way < ways_, "RefReplacement::fill: bad way");
  fill_seq_[way] = tick;
  touch(way, tick);
  if (policy_ == mem::ReplacementPolicy::kSrrip) {
    rrpv_[way] = 2;  // inserted with a long re-reference prediction
  }
}

std::uint32_t RefReplacement::oldest(
    const std::vector<std::uint64_t>& when) const {
  // First-minimum scan (ties break toward the lowest way index).
  std::uint32_t best = 0;
  for (std::uint32_t w = 1; w < ways_; ++w) {
    if (when[w] < when[best]) best = w;
  }
  return best;
}

std::uint32_t RefReplacement::victim(util::Rng& rng) {
  switch (policy_) {
    case mem::ReplacementPolicy::kRandom:
      return static_cast<std::uint32_t>(rng.next_below(ways_));
    case mem::ReplacementPolicy::kFifo:
      return oldest(fill_seq_);
    case mem::ReplacementPolicy::kSrrip:
      // Age every line until some way predicts distant re-reference; the
      // aging is kept (it is state, not a scratch computation).
      for (;;) {
        for (std::uint32_t w = 0; w < ways_; ++w) {
          if (rrpv_[w] >= 3) return w;
        }
        for (auto& r : rrpv_) ++r;
      }
    case mem::ReplacementPolicy::kPlru:
      if (tree_plru_usable()) {
        std::uint32_t node = 0;
        std::uint32_t lo = 0;
        std::uint32_t hi = ways_;
        while (hi - lo > 1) {
          const std::uint32_t mid = lo + (hi - lo) / 2;
          if (plru_bits_[node] == 1) {
            node = 2 * node + 2;
            lo = mid;
          } else {
            node = 2 * node + 1;
            hi = mid;
          }
        }
        return lo;
      }
      [[fallthrough]];  // non-power-of-two associativity degrades to LRU
    case mem::ReplacementPolicy::kLru:
      return oldest(last_use_);
  }
  return 0;
}

// --- RefMshr ----------------------------------------------------------------

std::uint32_t RefMshr::in_use() const {
  std::uint32_t n = 0;
  for (const auto& e : entries_) {
    if (e.valid) ++n;
  }
  return n;
}

std::uint32_t RefMshr::in_use_by(CoreId core) const {
  std::uint32_t n = 0;
  for (const auto& e : entries_) {
    if (e.valid && e.core == core) ++n;
  }
  return n;
}

int RefMshr::find(Addr block_addr) const {
  for (std::uint32_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].valid && entries_[i].block_addr == block_addr) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

std::uint32_t RefMshr::allocate(Addr block_addr, CoreId core, bool is_prefetch) {
  util::require(find(block_addr) < 0, "RefMshr: duplicate entry for block");
  for (std::uint32_t i = 0; i < entries_.size(); ++i) {
    if (!entries_[i].valid) {
      entries_[i] = Entry{};
      entries_[i].valid = true;
      entries_[i].block_addr = block_addr;
      entries_[i].core = core;
      entries_[i].is_prefetch = is_prefetch;
      return i;
    }
  }
  throw util::LpmError("RefMshr: allocate without a free entry");
}

std::vector<mem::MshrTarget> RefMshr::release(std::uint32_t idx) {
  util::require(entries_.at(idx).valid, "RefMshr: release of invalid entry");
  std::vector<mem::MshrTarget> out = std::move(entries_[idx].targets);
  entries_[idx] = Entry{};
  return out;
}

// --- RefCache ---------------------------------------------------------------

RefCache::RefCache(mem::CacheConfig cfg, mem::MemoryLevel* below,
                   std::uint64_t id_space)
    : cfg_(std::move(cfg)),
      below_(below),
      mshr_(cfg_.mshr_entries, cfg_.mshr_targets),
      rng_(cfg_.seed),
      next_fill_id_(id_space << 40) {
  cfg_.validate();
  util::require(below_ != nullptr, cfg_.name + ": lower level must exist");
  sets_.reserve(cfg_.num_sets());
  for (std::uint64_t s = 0; s < cfg_.num_sets(); ++s) {
    sets_.push_back(SetState{
        std::vector<Line>(cfg_.associativity),
        RefReplacement(cfg_.replacement, cfg_.associativity)});
  }
  bank_accepts_.assign(cfg_.banks, 0);
  stats_.core_accesses.assign(cfg_.num_cores, 0);
  stats_.core_misses.assign(cfg_.num_cores, 0);
  effective_prefetch_degree_ = cfg_.prefetch_degree;
  // Same replay-queue admission bound as the optimized cache: it shapes
  // which demand requests are even accepted, so it is contract, not tuning.
  mshr_wait_cap_ = static_cast<std::size_t>(cfg_.mshr_entries) * 2 + 8;
}

int RefCache::find_way(std::uint64_t set, Addr blk) const {
  const auto& lines = sets_[set].lines;
  for (std::uint32_t w = 0; w < cfg_.associativity; ++w) {
    if (lines[w].valid && lines[w].tag == blk) return static_cast<int>(w);
  }
  return -1;
}

bool RefCache::contains_block(Addr blk) const {
  return find_way(set_index(blk), block_addr(blk)) >= 0;
}

std::uint32_t RefCache::demand_in_pipeline() const {
  std::uint32_t n = 0;
  for (const auto& lk : pipeline_) {
    if (!lk.is_writeback) ++n;
  }
  return n;
}

bool RefCache::try_access(const mem::MemRequest& req) {
  const Cycle now = accept_cycle_;
  const bool is_writeback =
      req.kind == mem::AccessKind::kWrite && req.reply_to == nullptr;

  if (accepted_this_cycle_ >= cfg_.ports) {
    ++stats_.rejected_ports;
    return false;
  }
  const std::uint32_t bank = bank_of(req.addr);
  if (bank_accepts_[bank] >= cfg_.per_bank_limit()) {
    ++stats_.rejected_bank;
    return false;
  }
  if (!is_writeback && mshr_wait_.size() >= mshr_wait_cap_) {
    ++stats_.rejected_backlog;
    return false;
  }

  ++accepted_this_cycle_;
  ++bank_accepts_[bank];
  pipeline_.push_back(Lookup{req, now + cfg_.hit_latency, is_writeback});

  if (!is_writeback) {
    ++stats_.accesses;
    if (req.core < cfg_.num_cores) ++stats_.core_accesses[req.core];
    if (probe_ != nullptr) {
      probe_->on_access(req.id, now, req.kind == mem::AccessKind::kWrite);
    }
  }
  return true;
}

void RefCache::on_response(const mem::MemResponse& rsp) {
  fill_q_.push_back(rsp);
}

void RefCache::sample_activity(Cycle cycle) {
  // The reference samples every single cycle; the optimized cache's
  // quiesce skip must be invisible in the resulting metrics.
  if (probe_ != nullptr) probe_->on_cycle_activity(cycle, demand_in_pipeline());
}

void RefCache::tick(Cycle now) {
  // Same cycle phases as the optimized cache, executed naively.
  // (1) Sample the previous cycle once all its mutations have landed.
  if (now > 0) sample_activity(now - 1);

  // (2) Reset per-cycle acceptance accounting.
  accept_cycle_ = now;
  accepted_this_cycle_ = 0;
  for (auto& b : bank_accepts_) b = 0;

  // (3) Install fills: deferred installs first (FIFO fairness), then fresh
  // responses from the level below.
  for (std::size_t i = deferred_fill_blocks_.size(); i > 0; --i) {
    const Addr blk = deferred_fill_blocks_.front();
    deferred_fill_blocks_.pop_front();
    if (!try_install_fill(blk, now)) {
      // The optimized cache's ring has no push-front: a still-blocked block
      // rotates to the back before the loop gives up for this cycle.
      deferred_fill_blocks_.push_back(blk);
      break;
    }
  }
  while (!fill_q_.empty()) {
    const mem::MemResponse rsp = fill_q_.front();
    fill_q_.pop_front();
    const Addr blk = block_addr(rsp.addr);
    if (!try_install_fill(blk, now)) {
      ++stats_.deferred_fills;
      deferred_fill_blocks_.push_back(blk);
    }
  }

  // (4) Retry misses waiting for MSHR resources.
  for (std::size_t i = mshr_wait_.size(); i > 0; --i) {
    const WaitingMiss wm = mshr_wait_.front();
    mshr_wait_.pop_front();
    if (!try_handle_miss(wm.req, wm.miss_start, now)) {
      mshr_wait_.push_back(wm);
      ++stats_.mshr_full_waits;
    }
  }

  // (5) Complete lookups whose pipeline latency elapsed.
  while (!pipeline_.empty() && pipeline_.front().ready <= now) {
    const Lookup entry = pipeline_.front();
    pipeline_.pop_front();
    complete_lookup(entry, now);
  }

  // (6) Prefetch candidates become MSHR entries, then unissued fills go
  // downstream.
  launch_prefetches(now);
  issue_pending_fills(now);

  // (7) Drain the writeback buffer.
  drain_writebacks();
}

void RefCache::adapt_prefetch_degree() {
  if (pf_window_issued_ < cfg_.prefetch_accuracy_window) return;
  const double accuracy = static_cast<double>(pf_window_useful_) /
                          static_cast<double>(pf_window_issued_);
  if (accuracy < 0.15) {
    effective_prefetch_degree_ = 1;
  } else if (accuracy < 0.40) {
    effective_prefetch_degree_ =
        cfg_.prefetch_degree / 2 > 1 ? cfg_.prefetch_degree / 2 : 1;
  } else {
    effective_prefetch_degree_ = cfg_.prefetch_degree;
  }
  pf_window_issued_ = 0;
  pf_window_useful_ = 0;
}

void RefCache::schedule_prefetches(Addr demand_block, CoreId core) {
  if (effective_prefetch_degree_ == 0) return;
  const std::size_t cap = static_cast<std::size_t>(cfg_.prefetch_degree) * 8;
  for (std::uint32_t i = 1; i <= effective_prefetch_degree_; ++i) {
    while (prefetch_q_.size() >= cap) prefetch_q_.pop_front();
    prefetch_q_.push_back(PrefetchCandidate{
        demand_block + static_cast<Addr>(i) * cfg_.block_bytes, core});
  }
}

void RefCache::launch_prefetches(Cycle /*now*/) {
  while (!prefetch_q_.empty()) {
    // One MSHR entry stays reserved for demand misses.
    if (mshr_.in_use() + 1 >= mshr_.capacity()) break;
    const PrefetchCandidate cand = prefetch_q_.front();
    prefetch_q_.pop_front();
    if (contains_block(cand.block) || mshr_.find(cand.block) >= 0) continue;
    if (cfg_.mshr_quota_per_core > 0 && cand.core != kNoCore &&
        mshr_.in_use_by(cand.core) >= cfg_.mshr_quota_per_core) {
      continue;
    }
    mshr_.allocate(cand.block, cand.core, /*is_prefetch=*/true);
    ++stats_.prefetches_issued;
    ++pf_window_issued_;
    adapt_prefetch_degree();
  }
}

void RefCache::complete_lookup(const Lookup& entry, Cycle now) {
  const mem::MemRequest& req = entry.req;
  const std::uint64_t set = set_index(req.addr);
  const int way = find_way(set, block_addr(req.addr));

  if (entry.is_writeback) {
    if (way >= 0) {
      Line& line = sets_[set].lines[static_cast<std::uint32_t>(way)];
      line.dirty = true;
      sets_[set].repl.touch(static_cast<std::uint32_t>(way), ++repl_tick_);
      ++stats_.writeback_hits;
    } else {
      mem::MemRequest fwd = req;
      fwd.addr = block_addr(req.addr);
      writeback_q_.push_back(fwd);
      ++stats_.writeback_forwards;
    }
    return;
  }

  if (way >= 0) {
    Line& line = sets_[set].lines[static_cast<std::uint32_t>(way)];
    ++stats_.hits;
    if (line.prefetched) {
      ++stats_.prefetch_hits;
      note_prefetch_useful();
      line.prefetched = false;
      schedule_prefetches(block_addr(req.addr), req.core);
    }
    if (req.kind == mem::AccessKind::kWrite) line.dirty = true;
    sets_[set].repl.touch(static_cast<std::uint32_t>(way), ++repl_tick_);
    if (probe_ != nullptr) probe_->on_hit(req.id, now);
    if (req.reply_to != nullptr) {
      req.reply_to->on_response(mem::MemResponse{req.id, req.core, req.addr, now});
    }
    return;
  }

  ++stats_.misses;
  if (req.core < cfg_.num_cores) ++stats_.core_misses[req.core];
  if (probe_ != nullptr) probe_->on_miss(req.id, now);
  if (!try_handle_miss(req, now, now)) {
    mshr_wait_.push_back(WaitingMiss{req, now});
  }
  schedule_prefetches(block_addr(req.addr), req.core);
}

bool RefCache::try_handle_miss(const mem::MemRequest& req, Cycle miss_start,
                               Cycle /*now*/) {
  const Addr blk = block_addr(req.addr);
  const mem::MshrTarget target{req.id, req.core, req.kind, req.reply_to,
                               miss_start};

  const int idx = mshr_.find(blk);
  if (idx >= 0) {
    const auto uidx = static_cast<std::uint32_t>(idx);
    if (!mshr_.can_add_target(uidx)) return false;
    if (mshr_.entry(uidx).is_prefetch) {
      ++stats_.prefetch_coalesced;
      note_prefetch_useful();
    }
    mshr_.entry(uidx).targets.push_back(target);
    ++stats_.mshr_coalesced;
    return true;
  }
  if (!mshr_.can_allocate()) return false;
  if (cfg_.mshr_quota_per_core > 0 && req.core != kNoCore &&
      mshr_.in_use_by(req.core) >= cfg_.mshr_quota_per_core) {
    ++stats_.quota_waits;
    return false;
  }
  const std::uint32_t fresh =
      mshr_.allocate(blk, req.core, /*is_prefetch=*/false);
  mshr_.entry(fresh).targets.push_back(target);
  return true;
}

void RefCache::issue_pending_fills(Cycle now) {
  // Fill-request ids advance on every *attempt*, accepted or not — part of
  // the observable contract (downstream levels see the same id stream).
  for (std::uint32_t idx = 0; idx < mshr_.capacity(); ++idx) {
    RefMshr::Entry& e = mshr_.entry(idx);
    if (!e.valid || e.issued) continue;
    mem::MemRequest fill;
    fill.id = next_fill_id_++;
    fill.core = e.targets.empty() ? e.core : e.targets.front().core;
    fill.addr = e.block_addr;
    fill.kind = mem::AccessKind::kRead;
    fill.created = now;
    fill.reply_to = this;
    if (below_->try_access(fill)) e.issued = true;
  }
}

bool RefCache::try_install_fill(Addr blk, Cycle now) {
  const int idx = mshr_.find(blk);
  util::require(idx >= 0, "RefCache: fill for unknown block");

  const std::uint64_t set = set_index(blk);
  auto& lines = sets_[set].lines;

  // Prefer the first invalid way; otherwise ask the policy for a victim.
  std::uint32_t way = cfg_.associativity;
  for (std::uint32_t w = 0; w < cfg_.associativity; ++w) {
    if (!lines[w].valid) {
      way = w;
      break;
    }
  }
  if (way == cfg_.associativity) {
    way = sets_[set].repl.victim(rng_);
    if (lines[way].dirty) {
      if (writeback_q_.size() >= cfg_.writeback_capacity) {
        return false;  // cannot evict this cycle; defer the install
      }
      mem::MemRequest wb;
      wb.id = next_fill_id_++;
      wb.core = kNoCore;
      wb.addr = lines[way].tag;
      wb.kind = mem::AccessKind::kWrite;
      wb.created = now;
      wb.reply_to = nullptr;
      writeback_q_.push_back(wb);
      ++stats_.writebacks;
    }
    ++stats_.evictions;
  }

  const auto uidx = static_cast<std::uint32_t>(idx);
  const bool pure_prefetch =
      mshr_.entry(uidx).is_prefetch && mshr_.entry(uidx).targets.empty();
  lines[way].valid = true;
  lines[way].tag = blk;
  lines[way].dirty = false;
  lines[way].prefetched = pure_prefetch;
  sets_[set].repl.fill(way, ++repl_tick_);
  ++stats_.fills;

  const std::vector<mem::MshrTarget> targets = mshr_.release(uidx);
  for (const mem::MshrTarget& t : targets) {
    if (t.kind == mem::AccessKind::kWrite) lines[way].dirty = true;
    if (probe_ != nullptr) probe_->on_miss_done(t.id, now);
    if (t.reply_to != nullptr) {
      t.reply_to->on_response(mem::MemResponse{t.id, t.core, blk, now});
    }
  }
  return true;
}

void RefCache::drain_writebacks() {
  while (!writeback_q_.empty()) {
    if (!below_->try_access(writeback_q_.front())) break;
    writeback_q_.pop_front();
  }
}

void RefCache::finalize(Cycle end_cycle) { sample_activity(end_cycle); }

bool RefCache::busy() const {
  return !pipeline_.empty() || mshr_.in_use() > 0 || !mshr_wait_.empty() ||
         !writeback_q_.empty() || !fill_q_.empty() ||
         !deferred_fill_blocks_.empty();
}

}  // namespace lpm::check
