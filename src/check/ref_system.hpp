// Reference system: the oracle counterpart of sim::System.
//
// Wires RefCache + RefAnalyzer into the same topology sim::System builds
// (per-core L1s, optional private L2s, shared L2/LLC, DRAM) with identical
// id spaces, seeds and tick order, and collects the same sim::SystemResult.
// Differential testing runs both systems on one trace and requires
// result-wise equality (SystemResult::operator==).
//
// Two components are shared with the optimized system rather than
// re-implemented: cpu::OooCore (both systems must consume the identical
// core model — and the core reaches a RefCache only through the virtual
// MemoryLevel path, so the diff also validates the devirtualized L1 fast
// path against the vtable path) and mem::Dram (the DRAM timing model was
// not restructured by the throughput work; re-deriving it would test
// nothing the cache/analyzer diff does not already cover).
#pragma once

#include <memory>
#include <vector>

#include "check/ref_analyzer.hpp"
#include "check/ref_cache.hpp"
#include "cpu/ooo_core.hpp"
#include "mem/dram.hpp"
#include "sim/machine_config.hpp"
#include "sim/system.hpp"
#include "trace/trace_source.hpp"

namespace lpm::check {

class RefSystem {
 public:
  RefSystem(sim::MachineConfig cfg, std::vector<trace::TraceSourcePtr> traces);
  RefSystem(const RefSystem&) = delete;
  RefSystem& operator=(const RefSystem&) = delete;

  /// Runs to completion or cfg.max_cycles and returns the collected result.
  sim::SystemResult run();

  [[nodiscard]] bool finished() const;
  bool step();
  [[nodiscard]] Cycle now() const { return now_; }
  [[nodiscard]] sim::SystemResult collect() const;

 private:
  sim::MachineConfig cfg_;
  std::vector<trace::TraceSourcePtr> traces_;
  std::unique_ptr<mem::Dram> dram_;
  std::unique_ptr<RefAnalyzer> dram_analyzer_;
  std::unique_ptr<RefCache> l2_;
  std::unique_ptr<RefAnalyzer> l2_analyzer_;
  std::vector<std::unique_ptr<RefCache>> private_l2s_;
  std::vector<std::unique_ptr<RefAnalyzer>> private_l2_analyzers_;
  std::vector<std::unique_ptr<RefCache>> l1s_;
  std::vector<std::unique_ptr<RefAnalyzer>> l1_analyzers_;
  std::vector<std::unique_ptr<cpu::OooCore>> cores_;
  Cycle now_ = 0;
  bool finalized_ = false;
};

}  // namespace lpm::check
