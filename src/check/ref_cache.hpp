// Reference re-implementation of the non-blocking cache (mem::Cache).
//
// This is the oracle half of the differential harness: a scalar,
// allocation-naive cache that must produce *bit-identical* CacheStats and
// probe event streams to the optimized implementation for any trace. It
// deliberately avoids every PR-4 optimization the real cache carries:
//
//   * line metadata is an array-of-structs (one Line{valid,tag,dirty,
//     prefetched} per way) instead of the split tag/flag SoA arrays;
//   * every queue is a std::deque instead of a preallocated ring pool;
//   * per-cycle state (demand lookups in flight, unissued MSHR entries) is
//     recomputed by scanning instead of being tracked incrementally;
//   * the probe is sampled every cycle — no idle-skip, no quiesce latch;
//   * there is no devirtualized fast path: cores reach this cache through
//     the MemoryLevel vtable only.
//
// It shares with the optimized cache only the things that define the
// *contract* rather than the machinery: the config/stats value types, the
// request/response plumbing, the MshrTarget record, and util::Rng (the
// random-replacement stream must be the same stream to be comparable).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "mem/cache.hpp"
#include "mem/probe.hpp"
#include "mem/request.hpp"
#include "util/rng.hpp"

namespace lpm::check {

/// Scalar re-derivation of the replacement policies in mem/replacement.cpp.
/// Victim selection is non-const so SRRIP's persistent aging is explicit
/// instead of hiding behind a mutable member.
class RefReplacement {
 public:
  RefReplacement(mem::ReplacementPolicy policy, std::uint32_t ways);

  void touch(std::uint32_t way, std::uint64_t tick);
  void fill(std::uint32_t way, std::uint64_t tick);
  [[nodiscard]] std::uint32_t victim(util::Rng& rng);

 private:
  [[nodiscard]] bool tree_plru_usable() const;
  [[nodiscard]] std::uint32_t oldest(const std::vector<std::uint64_t>& when) const;

  mem::ReplacementPolicy policy_;
  std::uint32_t ways_;
  std::vector<std::uint64_t> last_use_;
  std::vector<std::uint64_t> fill_seq_;
  std::vector<std::uint8_t> plru_bits_;
  std::vector<std::uint8_t> rrpv_;
};

/// Naive MSHR file: a plain vector of entries, first-free allocation,
/// linear find — re-derived from the MSHR contract, not from MshrFile.
class RefMshr {
 public:
  struct Entry {
    bool valid = false;
    bool issued = false;
    bool is_prefetch = false;
    Addr block_addr = 0;
    CoreId core = kNoCore;
    std::vector<mem::MshrTarget> targets;
  };

  RefMshr(std::uint32_t entries, std::uint32_t max_targets)
      : entries_(entries), max_targets_(max_targets) {}

  [[nodiscard]] std::uint32_t capacity() const {
    return static_cast<std::uint32_t>(entries_.size());
  }
  [[nodiscard]] std::uint32_t in_use() const;
  [[nodiscard]] std::uint32_t in_use_by(CoreId core) const;
  [[nodiscard]] bool can_allocate() const { return in_use() < capacity(); }
  [[nodiscard]] int find(Addr block_addr) const;  ///< -1 when absent
  [[nodiscard]] bool can_add_target(std::uint32_t idx) const {
    return entries_[idx].valid && entries_[idx].targets.size() < max_targets_;
  }

  std::uint32_t allocate(Addr block_addr, CoreId core, bool is_prefetch);
  [[nodiscard]] Entry& entry(std::uint32_t idx) { return entries_[idx]; }
  /// Frees the entry and returns its targets in arrival order.
  std::vector<mem::MshrTarget> release(std::uint32_t idx);

 private:
  std::vector<Entry> entries_;
  std::uint32_t max_targets_;
};

class RefCache final : public mem::MemoryLevel, public mem::ResponseSink {
 public:
  RefCache(mem::CacheConfig cfg, mem::MemoryLevel* below,
           std::uint64_t id_space = 1);

  void set_probe(mem::AccessProbe* probe) { probe_ = probe; }

  bool try_access(const mem::MemRequest& req) override;
  void tick(Cycle now) override;
  void finalize(Cycle end_cycle) override;
  [[nodiscard]] bool busy() const override;
  void on_response(const mem::MemResponse& rsp) override;

  [[nodiscard]] const mem::CacheStats& stats() const { return stats_; }
  [[nodiscard]] const mem::CacheConfig& config() const { return cfg_; }

 private:
  struct Line {
    bool valid = false;
    Addr tag = 0;
    bool dirty = false;
    bool prefetched = false;
  };
  struct SetState {
    std::vector<Line> lines;
    RefReplacement repl;
  };
  struct Lookup {
    mem::MemRequest req;
    Cycle ready = 0;
    bool is_writeback = false;
  };
  struct WaitingMiss {
    mem::MemRequest req;
    Cycle miss_start = 0;
  };
  struct PrefetchCandidate {
    Addr block = 0;
    CoreId core = kNoCore;
  };

  [[nodiscard]] Addr block_addr(Addr addr) const {
    return addr & ~static_cast<Addr>(cfg_.block_bytes - 1);
  }
  [[nodiscard]] std::uint64_t set_index(Addr addr) const {
    return (addr / cfg_.block_bytes) & (cfg_.num_sets() - 1);
  }
  [[nodiscard]] std::uint32_t bank_of(Addr addr) const {
    return static_cast<std::uint32_t>((addr / cfg_.interleave_bytes) &
                                      (cfg_.banks - 1));
  }
  [[nodiscard]] int find_way(std::uint64_t set, Addr blk) const;
  [[nodiscard]] bool contains_block(Addr blk) const;
  [[nodiscard]] std::uint32_t demand_in_pipeline() const;

  void sample_activity(Cycle cycle);
  void complete_lookup(const Lookup& entry, Cycle now);
  bool try_handle_miss(const mem::MemRequest& req, Cycle miss_start, Cycle now);
  bool try_install_fill(Addr blk, Cycle now);
  void issue_pending_fills(Cycle now);
  void drain_writebacks();
  void schedule_prefetches(Addr demand_block, CoreId core);
  void launch_prefetches(Cycle now);
  void note_prefetch_useful() { ++pf_window_useful_; }
  void adapt_prefetch_degree();

  mem::CacheConfig cfg_;
  mem::MemoryLevel* below_;
  mem::AccessProbe* probe_ = nullptr;

  std::vector<SetState> sets_;
  RefMshr mshr_;
  util::Rng rng_;

  std::deque<Lookup> pipeline_;
  std::deque<WaitingMiss> mshr_wait_;
  std::deque<mem::MemRequest> writeback_q_;
  std::deque<mem::MemResponse> fill_q_;
  std::deque<Addr> deferred_fill_blocks_;
  std::deque<PrefetchCandidate> prefetch_q_;

  std::uint32_t effective_prefetch_degree_ = 0;
  std::uint64_t pf_window_issued_ = 0;
  std::uint64_t pf_window_useful_ = 0;

  Cycle accept_cycle_ = kNoCycle;
  std::uint32_t accepted_this_cycle_ = 0;
  std::vector<std::uint32_t> bank_accepts_;
  std::uint64_t repl_tick_ = 0;
  RequestId next_fill_id_;
  std::size_t mshr_wait_cap_;

  mem::CacheStats stats_;
};

}  // namespace lpm::check
