// Fidelity-error harness: quantifies how far the analytic model backends
// ("rdh", "fa") are from the cycle-accurate simulator, per workload profile.
//
// For every one of the 16 SPEC-analogue profiles and every L1 size in the
// sweep, the harness evaluates the same (machine, workload) point with the
// cycle backend and with each analytic backend, then reports the relative
// error of the two quantities the LPM walk actually steers by: the L1 miss
// rate (MR1) and the L1 C-AMAT. The aggregate worst-case errors are pinned
// by tests/check/fidelity_test.cpp — retuning the analytic heuristics is
// visible as a bound change, never as silent drift — and
// tools/lpm_fidelity_report emits the full report as JSON for CI artifacts.
//
// Error metric: |analytic - cycle| / max(|cycle|, floor). The floors keep
// near-zero denominators (an MR of 1e-4, say) from turning an absolutely
// tiny deviation into a huge relative one; they are part of the reported
// contract, not a fudge: an analytic MR within kMrErrorFloor of the cycle
// MR is "as good as exact" for screening purposes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/experiment_engine.hpp"

namespace lpm::check {

/// Absolute floors for the relative-error denominators (see header
/// comment): errors are measured against max(|cycle value|, floor).
inline constexpr double kMrErrorFloor = 0.01;
inline constexpr double kCamatErrorFloor = 0.25;

/// |predicted - measured| / max(|measured|, floor).
[[nodiscard]] double relative_error(double predicted, double measured,
                                    double floor);

struct FidelityConfig {
  std::uint64_t trace_length = 20'000;
  std::uint64_t seed = 1;
  /// Analytic backends to compare against the cycle backend.
  std::vector<std::string> backends = {"rdh", "fa"};
  /// L1 sizes swept per profile; the machine is otherwise
  /// sim::MachineConfig::single_core_default().
  std::vector<std::uint64_t> l1_sizes = {16 * 1024, 32 * 1024, 64 * 1024};
  /// nullptr = the process-wide shared engine (cycle runs then land in the
  /// same memo cache every other consumer uses).
  exp::ExperimentEngine* engine = nullptr;
};

/// One (profile, L1 size, backend) comparison.
struct FidelityPoint {
  std::string benchmark;
  std::string backend;
  std::uint64_t l1_size_bytes = 0;
  double mr1_cycle = 0.0;
  double mr1_analytic = 0.0;
  double mr1_rel_error = 0.0;
  double camat1_cycle = 0.0;
  double camat1_analytic = 0.0;
  double camat1_rel_error = 0.0;
};

/// Per (profile, backend) aggregation over the L1 sweep.
struct ProfileSummary {
  std::string benchmark;
  std::string backend;
  double mean_mr1_rel_error = 0.0;
  double max_mr1_rel_error = 0.0;
  double mean_camat1_rel_error = 0.0;
  double max_camat1_rel_error = 0.0;
};

struct FidelityReport {
  std::vector<FidelityPoint> points;
  std::vector<ProfileSummary> profiles;
  /// Worst relative errors across every point of every backend — what the
  /// committed test bounds pin.
  double worst_mr1_rel_error = 0.0;
  double worst_camat1_rel_error = 0.0;
  /// Error percentiles over all points (p50/p90/max), per metric.
  double p50_mr1_rel_error = 0.0;
  double p90_mr1_rel_error = 0.0;
  double p50_camat1_rel_error = 0.0;
  double p90_camat1_rel_error = 0.0;

  /// Machine-readable report (the CI artifact format).
  [[nodiscard]] std::string to_json() const;
  /// Human-readable per-profile table (the EXPERIMENTS.md format).
  [[nodiscard]] std::string table() const;
};

/// Runs the full sweep: 16 profiles x l1_sizes x (cycle + each analytic
/// backend), all submitted as one concurrent engine batch. Throws the
/// first cycle-run failure (the analytic error is undefined without its
/// reference).
[[nodiscard]] FidelityReport run_fidelity_harness(const FidelityConfig& cfg = {});

}  // namespace lpm::check
