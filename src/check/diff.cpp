#include "check/diff.hpp"

#include <algorithm>
#include <sstream>
#include <utility>
#include <vector>

#include "check/ref_system.hpp"

namespace lpm::check {
namespace {

// Appends "prefix.field: optimized=a reference=b" for the first differing
// field and returns true; the describers below all short-circuit on the
// first difference so the report names exactly one counter.
template <typename T>
bool diff_field(std::ostringstream& out, const std::string& prefix,
                const char* field, const T& opt, const T& ref) {
  if (opt == ref) return false;
  out << prefix << "." << field << ": optimized=" << opt
      << " reference=" << ref;
  return true;
}

bool diff_metrics(std::ostringstream& out, const std::string& prefix,
                  const camat::CamatMetrics& o, const camat::CamatMetrics& r) {
  return diff_field(out, prefix, "accesses", o.accesses, r.accesses) ||
         diff_field(out, prefix, "hits", o.hits, r.hits) ||
         diff_field(out, prefix, "misses", o.misses, r.misses) ||
         diff_field(out, prefix, "pure_misses", o.pure_misses,
                    r.pure_misses) ||
         diff_field(out, prefix, "active_cycles", o.active_cycles,
                    r.active_cycles) ||
         diff_field(out, prefix, "hit_cycles", o.hit_cycles, r.hit_cycles) ||
         diff_field(out, prefix, "miss_cycles", o.miss_cycles,
                    r.miss_cycles) ||
         diff_field(out, prefix, "pure_miss_cycles", o.pure_miss_cycles,
                    r.pure_miss_cycles) ||
         diff_field(out, prefix, "hit_phase_access_cycles",
                    o.hit_phase_access_cycles, r.hit_phase_access_cycles) ||
         diff_field(out, prefix, "miss_access_cycles", o.miss_access_cycles,
                    r.miss_access_cycles) ||
         diff_field(out, prefix, "pure_access_cycles", o.pure_access_cycles,
                    r.pure_access_cycles) ||
         diff_field(out, prefix, "hit_access_cycles", o.hit_access_cycles,
                    r.hit_access_cycles) ||
         diff_field(out, prefix, "total_miss_latency", o.total_miss_latency,
                    r.total_miss_latency);
}

bool diff_cache(std::ostringstream& out, const std::string& prefix,
                const mem::CacheStats& o, const mem::CacheStats& r) {
  if (diff_field(out, prefix, "accesses", o.accesses, r.accesses) ||
      diff_field(out, prefix, "hits", o.hits, r.hits) ||
      diff_field(out, prefix, "misses", o.misses, r.misses) ||
      diff_field(out, prefix, "mshr_coalesced", o.mshr_coalesced,
                 r.mshr_coalesced) ||
      diff_field(out, prefix, "rejected_ports", o.rejected_ports,
                 r.rejected_ports) ||
      diff_field(out, prefix, "rejected_bank", o.rejected_bank,
                 r.rejected_bank) ||
      diff_field(out, prefix, "rejected_backlog", o.rejected_backlog,
                 r.rejected_backlog) ||
      diff_field(out, prefix, "mshr_full_waits", o.mshr_full_waits,
                 r.mshr_full_waits) ||
      diff_field(out, prefix, "writebacks", o.writebacks, r.writebacks) ||
      diff_field(out, prefix, "writeback_hits", o.writeback_hits,
                 r.writeback_hits) ||
      diff_field(out, prefix, "writeback_forwards", o.writeback_forwards,
                 r.writeback_forwards) ||
      diff_field(out, prefix, "fills", o.fills, r.fills) ||
      diff_field(out, prefix, "evictions", o.evictions, r.evictions) ||
      diff_field(out, prefix, "deferred_fills", o.deferred_fills,
                 r.deferred_fills) ||
      diff_field(out, prefix, "prefetches_issued", o.prefetches_issued,
                 r.prefetches_issued) ||
      diff_field(out, prefix, "prefetch_hits", o.prefetch_hits,
                 r.prefetch_hits) ||
      diff_field(out, prefix, "prefetch_coalesced", o.prefetch_coalesced,
                 r.prefetch_coalesced) ||
      diff_field(out, prefix, "quota_waits", o.quota_waits, r.quota_waits)) {
    return true;
  }
  if (o.core_accesses != r.core_accesses) {
    out << prefix << ".core_accesses differ";
    return true;
  }
  if (o.core_misses != r.core_misses) {
    out << prefix << ".core_misses differ";
    return true;
  }
  return false;
}

bool diff_core(std::ostringstream& out, const std::string& prefix,
               const cpu::CoreStats& o, const cpu::CoreStats& r) {
  return diff_field(out, prefix, "instructions", o.instructions,
                    r.instructions) ||
         diff_field(out, prefix, "mem_ops", o.mem_ops, r.mem_ops) ||
         diff_field(out, prefix, "loads", o.loads, r.loads) ||
         diff_field(out, prefix, "stores", o.stores, r.stores) ||
         diff_field(out, prefix, "cycles", o.cycles, r.cycles) ||
         diff_field(out, prefix, "commit_cycles", o.commit_cycles,
                    r.commit_cycles) ||
         diff_field(out, prefix, "mem_active_cycles", o.mem_active_cycles,
                    r.mem_active_cycles) ||
         diff_field(out, prefix, "overlap_cycles", o.overlap_cycles,
                    r.overlap_cycles) ||
         diff_field(out, prefix, "data_stall_cycles", o.data_stall_cycles,
                    r.data_stall_cycles) ||
         diff_field(out, prefix, "head_mem_stall_cycles",
                    o.head_mem_stall_cycles, r.head_mem_stall_cycles) ||
         diff_field(out, prefix, "l1_rejections", o.l1_rejections,
                    r.l1_rejections);
}

bool diff_dram(std::ostringstream& out, const std::string& prefix,
               const mem::DramStats& o, const mem::DramStats& r) {
  return diff_field(out, prefix, "reads", o.reads, r.reads) ||
         diff_field(out, prefix, "writes", o.writes, r.writes) ||
         diff_field(out, prefix, "row_hits", o.row_hits, r.row_hits) ||
         diff_field(out, prefix, "row_misses", o.row_misses, r.row_misses) ||
         diff_field(out, prefix, "row_conflicts", o.row_conflicts,
                    r.row_conflicts) ||
         diff_field(out, prefix, "rejected_full", o.rejected_full,
                    r.rejected_full) ||
         diff_field(out, prefix, "busy_cycles", o.busy_cycles,
                    r.busy_cycles) ||
         diff_field(out, prefix, "total_read_latency", o.total_read_latency,
                    r.total_read_latency);
}

std::string idx(const char* base, std::size_t i) {
  return std::string(base) + "[" + std::to_string(i) + "]";
}

}  // namespace

sim::SystemResult run_optimized(const ReplayCase& c) {
  sim::System system(c.machine, c.make_traces());
  return system.run();
}

sim::SystemResult run_reference(const ReplayCase& c) {
  RefSystem system(c.machine, c.make_traces());
  return system.run();
}

std::string describe_divergence(const sim::SystemResult& opt,
                                const sim::SystemResult& ref) {
  std::ostringstream out;
  if (diff_field(out, "result", "completed", opt.completed, ref.completed) ||
      diff_field(out, "result", "cycles", opt.cycles, ref.cycles)) {
    return out.str();
  }
  if (diff_field(out, "result", "cores.size", opt.cores.size(),
                 ref.cores.size()) ||
      diff_field(out, "result", "l1.size", opt.l1.size(), ref.l1.size()) ||
      diff_field(out, "result", "l2_private.size", opt.l2_private.size(),
                 ref.l2_private.size())) {
    return out.str();
  }
  for (std::size_t i = 0; i < opt.cores.size(); ++i) {
    if (diff_core(out, idx("cores", i), opt.cores[i], ref.cores[i])) {
      return out.str();
    }
  }
  for (std::size_t i = 0; i < opt.l1.size(); ++i) {
    if (diff_metrics(out, idx("l1", i), opt.l1[i], ref.l1[i])) {
      return out.str();
    }
  }
  for (std::size_t i = 0; i < opt.l1_cache.size(); ++i) {
    if (diff_cache(out, idx("l1_cache", i), opt.l1_cache[i],
                   ref.l1_cache[i])) {
      return out.str();
    }
  }
  for (std::size_t i = 0; i < opt.l2_private.size(); ++i) {
    if (diff_metrics(out, idx("l2_private", i), opt.l2_private[i],
                     ref.l2_private[i])) {
      return out.str();
    }
  }
  for (std::size_t i = 0; i < opt.l2_private_cache.size(); ++i) {
    if (diff_cache(out, idx("l2_private_cache", i), opt.l2_private_cache[i],
                   ref.l2_private_cache[i])) {
      return out.str();
    }
  }
  if (diff_metrics(out, "l2", opt.l2, ref.l2) ||
      diff_metrics(out, "dram", opt.dram, ref.dram) ||
      diff_cache(out, "l2_cache", opt.l2_cache, ref.l2_cache) ||
      diff_dram(out, "dram_stats", opt.dram_stats, ref.dram_stats)) {
    return out.str();
  }
  // operator== disagrees with the describers only if a field was added to
  // one of the stats structs without updating this file.
  if (!(opt == ref)) return "results differ in a field unknown to diff.cpp";
  return {};
}

bool DiffRunner::diverges(const ReplayCase& c, std::string* why) {
  sim::SystemResult opt = run_optimized(c);
  if (opts_.inject_optimized) opts_.inject_optimized(opt);
  const sim::SystemResult ref = run_reference(c);
  std::string d = describe_divergence(opt, ref);
  if (why != nullptr) *why = d;
  return !d.empty();
}

std::vector<trace::MicroOp> DiffRunner::ddmin_core(const ReplayCase& base,
                                                   std::size_t core,
                                                   std::uint64_t* trials,
                                                   std::size_t budget) const {
  // Classic ddmin over one core's op list. Any subsequence of a trace is a
  // valid trace (dependence ids index *earlier retired ops modulo window*,
  // so dropping ops only re-aims dependencies — still well-formed), which
  // makes unguarded subset removal sound. A candidate is only accepted if
  // the divergence check actually ran and failed; once the trial budget is
  // exhausted every candidate is treated as non-reproducing, so we never
  // commit an untested reduction.
  DiffRunner probe(DiffOptions{opts_.inject_optimized, /*minimize=*/false,
                               opts_.max_trials});
  auto reproduces = [&](const std::vector<trace::MicroOp>& candidate) {
    if (*trials >= budget) return false;
    ++*trials;
    ReplayCase c = base;
    c.ops[core] = candidate;
    return probe.diverges(c);
  };

  std::vector<trace::MicroOp> ops = base.ops[core];
  std::size_t n = 2;
  while (ops.size() >= 2) {
    const std::size_t chunk = std::max<std::size_t>(1, ops.size() / n);
    bool reduced = false;
    // Pass 1: try each chunk alone.
    for (std::size_t start = 0; start < ops.size(); start += chunk) {
      const std::size_t end = std::min(ops.size(), start + chunk);
      std::vector<trace::MicroOp> subset(ops.begin() + start,
                                         ops.begin() + end);
      if (subset.size() < ops.size() && reproduces(subset)) {
        ops = std::move(subset);
        n = 2;
        reduced = true;
        break;
      }
    }
    if (reduced) continue;
    // Pass 2: try removing each chunk (complement).
    for (std::size_t start = 0; start < ops.size(); start += chunk) {
      const std::size_t end = std::min(ops.size(), start + chunk);
      std::vector<trace::MicroOp> complement(ops.begin(), ops.begin() + start);
      complement.insert(complement.end(), ops.begin() + end, ops.end());
      if (complement.size() < ops.size() && reproduces(complement)) {
        ops = std::move(complement);
        n = std::max<std::size_t>(2, n - 1);
        reduced = true;
        break;
      }
    }
    if (reduced) continue;
    if (chunk == 1) break;  // granularity exhausted: locally minimal
    n = std::min(ops.size(), n * 2);
  }
  return ops;
}

DiffReport DiffRunner::run(const ReplayCase& c) {
  DiffReport report;
  report.minimized = c;
  ++report.trials;
  if (!diverges(c, &report.divergence)) return report;
  report.diverged = true;
  if (!opts_.minimize) return report;

  // Minimize core-by-core: shrink core 0's trace while holding the others,
  // then core 1 against the already-shrunk core 0, and so on.
  for (std::size_t core = 0; core < report.minimized.ops.size(); ++core) {
    report.minimized.ops[core] =
        ddmin_core(report.minimized, core, &report.trials, opts_.max_trials);
  }
  return report;
}

}  // namespace lpm::check
