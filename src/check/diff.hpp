// Differential runner: executes the optimized sim::System and the
// reference RefSystem on the same replay case and demands exact
// counter-for-counter equality of the two SystemResults.
//
// On divergence it delta-debugs (ddmin) each core's micro-op list down to a
// locally minimal trace that still reproduces the divergence — removing any
// single remaining chunk makes it vanish — ready to be written as a replay
// file (see replay.hpp) and attached to a bug report.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "check/replay.hpp"
#include "sim/system.hpp"

namespace lpm::check {

/// Runs the optimized simulator on a replay case.
[[nodiscard]] sim::SystemResult run_optimized(const ReplayCase& c);

/// Runs the reference model on a replay case.
[[nodiscard]] sim::SystemResult run_reference(const ReplayCase& c);

/// Human-readable description of the first differing counter between two
/// results ("l1_cache[0].misses: optimized=12 reference=11"); empty when
/// the results are identical.
[[nodiscard]] std::string describe_divergence(const sim::SystemResult& opt,
                                              const sim::SystemResult& ref);

struct DiffOptions {
  /// Fault-injection hook applied to the optimized result before
  /// comparison. Used by the harness's own tests to prove the oracle
  /// catches (and minimizes) a seeded counter bug; leave empty otherwise.
  std::function<void(sim::SystemResult&)> inject_optimized;
  /// Delta-debug a divergent trace down to a minimal repro.
  bool minimize = true;
  /// Budget on simulator-pair executions spent minimizing.
  std::size_t max_trials = 600;
};

struct DiffReport {
  bool diverged = false;
  std::string divergence;  ///< first differing counter (of the full case)
  /// The minimal reproducing case (equals the input case when minimization
  /// is disabled, the budget ran out immediately, or there is no divergence).
  ReplayCase minimized;
  std::uint64_t trials = 0;  ///< simulator-pair executions performed
};

class DiffRunner {
 public:
  explicit DiffRunner(DiffOptions opts = {}) : opts_(std::move(opts)) {}

  /// Runs both simulators; on divergence, minimizes (when enabled).
  [[nodiscard]] DiffReport run(const ReplayCase& c);

  /// Single comparison, no minimization. `why` (optional) receives the
  /// first differing counter.
  [[nodiscard]] bool diverges(const ReplayCase& c, std::string* why = nullptr);

 private:
  [[nodiscard]] std::vector<trace::MicroOp> ddmin_core(
      const ReplayCase& base, std::size_t core, std::uint64_t* trials,
      std::size_t budget) const;

  DiffOptions opts_;
};

}  // namespace lpm::check
