// Replay cases: a (MachineConfig, per-core micro-op lists) pair that can be
// serialized to a flat JSON file and re-run bit-identically later.
//
// This is the exchange format of the differential harness: when the fuzzer
// finds a divergence it delta-debugs the trace down to a minimal repro and
// writes it as a replay file; `tools/lpm_replay` re-executes such a file
// against both the optimized and the reference simulator. The file is one
// flat JSON object (util::FlatJson-parseable — no nested containers):
// machine knobs appear as dotted scalar keys ("l1.mshr_entries": 4) and
// each core's trace as one compact op string ("ops.0": "l40:0:0:1;a0:1:0:2").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/machine_config.hpp"
#include "trace/instruction.hpp"
#include "trace/trace_source.hpp"

namespace lpm::check {

struct ReplayCase {
  sim::MachineConfig machine;
  std::vector<std::vector<trace::MicroOp>> ops;  ///< one list per core

  /// Fresh VectorTrace sources replaying `ops`, one per core.
  [[nodiscard]] std::vector<trace::TraceSourcePtr> make_traces() const;
};

/// Serializes to one flat JSON object (lossless for every field the
/// simulators read; 64-bit seeds/cycle budgets are encoded as strings so
/// they survive the double-typed JSON number path).
[[nodiscard]] std::string replay_to_json(const ReplayCase& c);

/// Inverse of replay_to_json. Throws util::LpmError on malformed input.
[[nodiscard]] ReplayCase replay_from_json(const std::string& text);

/// One op list <-> the compact string form used for the "ops.N" values:
/// per op `<t><addr-hex>:<dep>:<dep2>:<lat>` with t in {a,l,s}, joined by
/// ';'. Exposed for tests.
[[nodiscard]] std::string encode_ops(const std::vector<trace::MicroOp>& ops);
[[nodiscard]] std::vector<trace::MicroOp> decode_ops(const std::string& text);

/// File convenience wrappers (throw util::LpmError on I/O failure).
void save_replay(const ReplayCase& c, const std::string& path);
[[nodiscard]] ReplayCase load_replay(const std::string& path);

}  // namespace lpm::check
