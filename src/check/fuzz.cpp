#include "check/fuzz.hpp"

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "core/lpm_algorithm.hpp"
#include "model/analytic.hpp"
#include "trace/lpm2.hpp"
#include "trace/mmap_trace.hpp"
#include "trace/synthetic.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace lpm::check {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw, &end, 10);
  util::require(end != raw && *end == '\0',
                std::string(name) + ": expected an unsigned integer, got \"" +
                    raw + "\"");
  return v;
}

// --- random machine synthesis ----------------------------------------------

mem::CacheConfig random_l1(util::Rng& rng, std::uint32_t block) {
  mem::CacheConfig c;
  c.name = "L1";
  c.block_bytes = block;
  c.interleave_bytes = block;
  c.associativity = static_cast<std::uint32_t>(1u << rng.next_below(3));  // 1/2/4
  const std::uint64_t sets = 1ull << rng.next_in(2, 5);                   // 4..32
  c.size_bytes = sets * c.associativity * block;
  c.hit_latency = static_cast<std::uint32_t>(rng.next_in(1, 3));
  c.ports = static_cast<std::uint32_t>(rng.next_in(1, 2));
  c.banks = static_cast<std::uint32_t>(1u << rng.next_below(2));  // 1/2
  c.mshr_entries = static_cast<std::uint32_t>(rng.next_in(2, 8));
  c.mshr_targets = static_cast<std::uint32_t>(rng.next_in(2, 8));
  c.writeback_capacity = static_cast<std::uint32_t>(rng.next_in(1, 8));
  c.prefetch_degree =
      rng.next_bool(0.6) ? 0 : static_cast<std::uint32_t>(rng.next_in(1, 2));
  c.prefetch_accuracy_window = static_cast<std::uint32_t>(rng.next_in(16, 64));
  c.mshr_quota_per_core =
      rng.next_bool(0.8) ? 0 : static_cast<std::uint32_t>(rng.next_in(1, 2));
  c.replacement = static_cast<mem::ReplacementPolicy>(rng.next_below(5));
  c.seed = rng.next_below(1ull << 30);
  return c;
}

mem::CacheConfig random_l2(util::Rng& rng, std::uint32_t block,
                           const char* name) {
  mem::CacheConfig c = random_l1(rng, block);
  c.name = name;
  const std::uint64_t sets = 1ull << rng.next_in(4, 7);  // 16..128
  c.size_bytes = sets * c.associativity * block;
  c.hit_latency = static_cast<std::uint32_t>(rng.next_in(4, 10));
  c.mshr_entries = static_cast<std::uint32_t>(rng.next_in(4, 16));
  return c;
}

mem::DramConfig random_dram(util::Rng& rng) {
  mem::DramConfig d;
  d.banks = static_cast<std::uint32_t>(1u << rng.next_in(1, 3));  // 2/4/8
  d.row_bytes = 1ull << rng.next_in(9, 11);                       // 512..2048
  d.interleave_bytes = 64;
  d.t_rcd = static_cast<std::uint32_t>(rng.next_in(4, 15));
  d.t_cl = static_cast<std::uint32_t>(rng.next_in(4, 15));
  d.t_rp = static_cast<std::uint32_t>(rng.next_in(4, 15));
  d.t_burst = static_cast<std::uint32_t>(rng.next_in(2, 6));
  d.frontend_latency = static_cast<std::uint32_t>(rng.next_in(5, 20));
  d.queue_capacity = static_cast<std::uint32_t>(rng.next_in(8, 32));
  d.max_issue_per_cycle = static_cast<std::uint32_t>(rng.next_in(1, 2));
  d.starvation_threshold = static_cast<std::uint32_t>(rng.next_in(50, 200));
  return d;
}

cpu::CoreConfig random_core(util::Rng& rng) {
  cpu::CoreConfig c;
  c.issue_width = static_cast<std::uint32_t>(rng.next_in(1, 4));
  c.dispatch_width = static_cast<std::uint32_t>(rng.next_in(1, 4));
  c.commit_width = static_cast<std::uint32_t>(rng.next_in(1, 4));
  c.iw_size = static_cast<std::uint32_t>(rng.next_in(8, 32));
  c.rob_size = std::max(c.iw_size, static_cast<std::uint32_t>(rng.next_in(16, 64)));
  c.lsq_size = static_cast<std::uint32_t>(rng.next_in(4, 16));
  return c;
}

/// A random parametric workload for the analytic-backend property checks
/// (the ops-vector cases above bypass the profile-based analytic path).
trace::WorkloadProfile random_workload(std::uint64_t seed, std::uint64_t len) {
  util::Rng rng(seed * 0xc2b2ae3d27d4eb4fULL + 17);
  trace::WorkloadProfile wl;
  wl.name = "analytic-fuzz-" + std::to_string(seed);
  wl.length = len;
  wl.seed = rng.next_below(1u << 30);
  wl.fmem = 0.2 + 0.5 * rng.next_double();
  wl.store_fraction = 0.1 + 0.3 * rng.next_double();
  wl.working_set_bytes = 1ull << rng.next_in(12, 20);
  wl.zipf_skew = rng.next_double();
  wl.seq_fraction = rng.next_double() * 0.9;
  wl.num_streams = static_cast<std::uint32_t>(rng.next_in(1, 8));
  wl.stride_bytes = 1ull << rng.next_in(2, 6);
  wl.pointer_chase_fraction =
      rng.next_bool(0.5) ? 0.0 : 0.3 * rng.next_double();
  wl.alu_dep_fraction = rng.next_double();
  wl.validate();
  return wl;
}

std::vector<trace::MicroOp> random_ops(util::Rng& rng, std::uint64_t len,
                                       std::uint32_t block) {
  // Working set small enough (relative to the tiny fuzzed caches) that hits,
  // misses, coalescing and evictions all occur; a sequential-run component
  // gives the next-line prefetcher something to latch onto.
  const std::uint64_t ws_blocks = 1ull << rng.next_in(3, 10);  // 8..1024
  const double fmem = 0.2 + 0.5 * rng.next_double();
  const double seq = rng.next_double() * 0.8;
  const double store_frac = 0.1 + 0.3 * rng.next_double();

  std::vector<trace::MicroOp> ops;
  ops.reserve(len);
  Addr prev_block = 0;
  for (std::uint64_t i = 0; i < len; ++i) {
    trace::MicroOp op;
    if (rng.next_bool(fmem)) {
      op.type = rng.next_bool(store_frac) ? trace::OpType::kStore
                                          : trace::OpType::kLoad;
      const Addr blk = rng.next_bool(seq) ? prev_block + 1
                                          : rng.next_below(ws_blocks);
      prev_block = blk;
      op.addr = blk * block + rng.next_below(block);
    } else {
      op.type = trace::OpType::kAlu;
      op.exec_latency = static_cast<std::uint8_t>(rng.next_in(1, 4));
    }
    if (rng.next_bool(0.3)) {
      op.dep_dist = static_cast<std::uint32_t>(rng.next_in(1, 8));
    }
    if (rng.next_bool(0.1)) {
      op.dep_dist2 = static_cast<std::uint32_t>(rng.next_in(1, 8));
    }
    ops.push_back(op);
  }
  return ops;
}

/// Records each core's ops to a temp LPM2 file and replays them through
/// MmapTrace, alternating the delivery mode by seed with a chunk small
/// enough that the pipelined replay cycles its slots. Returns the first
/// mismatch / typed error as a message, empty when every core round-trips
/// bit-identically.
std::string check_trace_roundtrip_case(const ReplayCase& c,
                                       std::uint64_t case_seed) {
  namespace fs = std::filesystem;
  const fs::path path =
      fs::temp_directory_path() /
      ("lpm-fuzz-roundtrip-" + std::to_string(::getpid()) + "-" +
       std::to_string(case_seed) + ".lpm2");
  std::string verdict;
  for (std::size_t core = 0; core < c.ops.size() && verdict.empty(); ++core) {
    const std::string where = "core " + std::to_string(core) + ": ";
    try {
      trace::VectorTrace source("roundtrip", c.ops[core]);
      const std::uint64_t recorded =
          trace::record_trace_v2(source, path.string());
      trace::MmapTrace replay(
          path.string(), "roundtrip",
          trace::MmapTraceOptions{.pipeline = (case_seed & 1) != 0,
                                  .chunk_ops = 256});
      if (replay.checksum() != recorded) {
        verdict = where + "header checksum differs from the recorded stream";
        break;
      }
      const std::vector<trace::MicroOp> ops =
          trace::materialize(replay, c.ops[core].size() + 1);
      if (ops != c.ops[core]) {
        verdict = where + "replayed stream differs from the recorded ops (" +
                  std::to_string(ops.size()) + " vs " +
                  std::to_string(c.ops[core].size()) + ")";
      }
    } catch (const util::LpmError& e) {
      verdict = where + e.what();
    }
  }
  std::error_code ec;
  fs::remove(path, ec);
  return verdict;
}

// --- property helpers -------------------------------------------------------

bool near(double a, double b, double tol) { return std::fabs(a - b) <= tol; }

std::string fail(const std::string& what, double lhs, double rhs) {
  std::ostringstream out;
  out << what << " (lhs=" << lhs << " rhs=" << rhs << ")";
  return out.str();
}

/// Eq. 3 + Eq. 2 + the counter partitions on one layer's metrics.
std::string check_layer(const std::string& layer,
                        const camat::CamatMetrics& m, bool completed) {
  // Accesses are counted at acceptance, hits/misses when the lookup
  // resolves: the partition is an inequality while lookups are in flight
  // and only closes to equality on a drained (completed) run.
  if (completed ? (m.hits + m.misses != m.accesses)
                : (m.hits + m.misses > m.accesses)) {
    return layer + ": hits + misses != accesses";
  }
  if (m.active_cycles != m.hit_cycles + m.pure_miss_cycles) {
    return layer + ": active_cycles != hit_cycles + pure_miss_cycles";
  }
  if (m.pure_misses > m.misses) return layer + ": pure_misses > misses";
  if (m.pure_miss_cycles > m.miss_cycles) {
    return layer + ": pure_miss_cycles > miss_cycles";
  }
  if (completed && m.hit_access_cycles != m.hit_phase_access_cycles) {
    // Both count access x hit-phase-cycle pairs, one summed per cycle and
    // one per access; they only disagree while lookups are still in flight.
    return layer + ": hit_access_cycles != hit_phase_access_cycles";
  }
  if (m.accesses > 0 && m.active_cycles > 0) {
    const double prod = m.camat() * m.apc();
    if (!near(prod, 1.0, 1e-12)) {
      return fail(layer + ": Eq.3 violated, camat * apc != 1", prod, 1.0);
    }
    if (completed && !near(m.camat_eq2(), m.camat(), 1e-9 * m.camat())) {
      return fail(layer + ": Eq.2 decomposition != measured C-AMAT",
                  m.camat_eq2(), m.camat());
    }
  }
  return {};
}

std::string check_cache_stats(const std::string& layer,
                              const mem::CacheStats& s, bool completed) {
  if (completed ? (s.hits + s.misses != s.accesses)
                : (s.hits + s.misses > s.accesses)) {
    return layer + ": cache hits + misses != accesses";
  }
  std::uint64_t core_acc = 0;
  std::uint64_t core_miss = 0;
  for (const auto v : s.core_accesses) core_acc += v;
  for (const auto v : s.core_misses) core_miss += v;
  if (core_acc != s.accesses) {
    return layer + ": per-core accesses don't sum to total";
  }
  if (completed ? (core_miss != s.misses) : (core_miss > s.misses)) {
    return layer + ": per-core misses don't sum to total";
  }
  return {};
}

}  // namespace

FuzzConfig FuzzConfig::from_env() {
  FuzzConfig cfg;
  cfg.seed = env_u64("LPM_CHECK_SEED", cfg.seed);
  cfg.cases = env_u64("LPM_CHECK_CASES", cfg.cases);
  cfg.check_trace_roundtrip =
      env_u64("LPM_CHECK_ROUNDTRIP", cfg.check_trace_roundtrip ? 1 : 0) != 0;
  if (const char* dir = std::getenv("LPM_CHECK_ARTIFACTS");
      dir != nullptr && *dir != '\0') {
    cfg.artifact_dir = dir;
  }
  return cfg;
}

std::string check_metric_identities(const sim::SystemResult& r) {
  for (std::size_t i = 0; i < r.l1.size(); ++i) {
    const std::string layer = "l1[" + std::to_string(i) + "]";
    if (auto v = check_layer(layer, r.l1[i], r.completed); !v.empty()) return v;
    if (auto v = check_cache_stats(layer, r.l1_cache[i], r.completed); !v.empty()) return v;
  }
  for (std::size_t i = 0; i < r.l2_private.size(); ++i) {
    const std::string layer = "l2_private[" + std::to_string(i) + "]";
    if (auto v = check_layer(layer, r.l2_private[i], r.completed); !v.empty()) {
      return v;
    }
    if (auto v = check_cache_stats(layer, r.l2_private_cache[i], r.completed); !v.empty()) {
      return v;
    }
  }
  if (auto v = check_layer("l2", r.l2, r.completed); !v.empty()) return v;
  if (auto v = check_cache_stats("l2", r.l2_cache, r.completed); !v.empty()) return v;
  if (auto v = check_layer("dram", r.dram, r.completed); !v.empty()) return v;
  return {};
}

std::string check_model_properties(const core::AppMeasurement& m) {
  if (m.instructions == 0 || m.l1.accesses == 0) return {};

  // Eq. 12 is Eq. 7 rewritten through LPMR1: algebraically identical.
  const double e7 = core::stall_eq7(m);
  const double e12 = core::stall_eq12(m);
  if (!near(e12, e7, 1e-9 + 1e-9 * e7)) {
    return fail("Eq.12 != Eq.7", e12, e7);
  }

  // Eq. 7 vs the core's measured stall. Looser than the curated-workload
  // invariants test (0.2%): fuzzed machines include single-entry LSQs and
  // saturated write buffers, where store retirement decouples the core's
  // mem-active window from the L1's active window by a few cycles.
  const double measured = m.measured_stall_per_instr;
  const double tol =
      1e-6 + 0.05 * measured + 16.0 / static_cast<double>(m.instructions);
  if (!near(e7, measured, tol)) {
    return fail("Eq.7 disagrees with measured stall/instr", e7, measured);
  }

  // Eqs. 13 and 4 carry genuine model error (the recursion assumes L2
  // residency equals L1 outstanding time). On the curated workloads the
  // tests hold them to 35%; fuzzed machines are adversarial (single-entry
  // write buffers, 4-set caches at 90% miss rate), so here they get an
  // order-of-magnitude sanity band — enough to catch a broken eta or LPMR2,
  // not an accuracy claim.
  if (m.l1.pure_misses > 0 && m.l1_misses_total >= 50) {
    const double e13 = core::stall_eq13(m);
    if (e13 < 0.0 || (e7 > 1e-9 && (e13 < e7 / 8.0 || e13 > e7 * 8.0))) {
      return fail("Eq.13 outside sanity band of Eq.7", e13, e7);
    }
    // Eq. 4: C-AMAT1 from the L2's per-miss C-AMAT.
    const double rhs = camat::camat_recursion_eq4(
        m.l1.H(), m.l1.CH(), m.l1.pMR(), m.l1.eta1(), m.camat2_per_miss());
    const double lhs = m.l1.camat();
    if (rhs <= 0.0 || rhs < lhs / 8.0 || rhs > lhs * 8.0) {
      return fail("Eq.4 recursion outside sanity band", rhs, lhs);
    }
  }

  // Eq. 14: T1 = (delta/100)/(1-overlap) is linear in delta.
  if (m.overlap_ratio < 1.0) {
    const double t1_fine = core::threshold_t1(core::kFineGrainedDelta,
                                              m.overlap_ratio);
    const double t1_coarse = core::threshold_t1(core::kCoarseGrainedDelta,
                                                m.overlap_ratio);
    if (!near(t1_coarse, 10.0 * t1_fine, 1e-12 * t1_coarse)) {
      return fail("Eq.14 T1 not linear in delta", t1_coarse, 10.0 * t1_fine);
    }

    // Eq. 15: a larger stall budget never tightens the L2 threshold.
    const double t2_fine = core::threshold_t2(core::kFineGrainedDelta, m);
    const double t2_coarse = core::threshold_t2(core::kCoarseGrainedDelta, m);
    if (std::isfinite(t2_fine) && std::isfinite(t2_coarse) &&
        t2_coarse < t2_fine - 1e-9 * std::fabs(t2_fine)) {
      return fail("Eq.15 T2 decreased with delta", t2_coarse, t2_fine);
    }

    // Fig. 3 granularity stability: a machine the fine-grained (1%) walk
    // does not send to Optimize is never sent to Optimize by the coarse
    // (10%) walk, and a run meeting the 1% stall target meets the 10% one.
    const auto lpmr = core::compute_lpmrs(m);
    auto observe = [&](double delta) {
      core::LpmObservation obs;
      obs.lpmr = lpmr;
      obs.t1 = core::threshold_t1(delta, m.overlap_ratio);
      obs.t2 = core::threshold_t2(delta, m);
      obs.stall_per_instr = measured;
      obs.cpi_exe = m.cpi_exe;
      obs.overlap_ratio = m.overlap_ratio;
      return obs;
    };
    auto is_optimize = [](core::LpmAction a) {
      return a == core::LpmAction::kOptimizeBoth ||
             a == core::LpmAction::kOptimizeL1;
    };
    const core::LpmAlgorithm fine(
        core::LpmAlgorithmConfig{.delta_percent = core::kFineGrainedDelta});
    const core::LpmAlgorithm coarse(
        core::LpmAlgorithmConfig{.delta_percent = core::kCoarseGrainedDelta});
    const auto fine_action = fine.classify(observe(core::kFineGrainedDelta));
    const auto coarse_action =
        coarse.classify(observe(core::kCoarseGrainedDelta));
    if (!is_optimize(fine_action) && is_optimize(coarse_action)) {
      return "Fig.3 case selection unstable under granularity: fine=" +
             std::string(core::to_string(fine_action)) +
             " coarse=" + std::string(core::to_string(coarse_action));
    }
  }
  if (core::meets_stall_target(m, core::kFineGrainedDelta) &&
      !core::meets_stall_target(m, core::kCoarseGrainedDelta)) {
    return "stall target met at 1% but not at 10%";
  }
  return {};
}

std::string check_analytic_properties(const sim::MachineConfig& machine,
                                      const trace::WorkloadProfile& wl) {
  // SimJob::solo runs one core; drop any multicore per-core L1 partition
  // the fuzzed machine may carry so the solo machine still validates.
  sim::MachineConfig solo_machine = machine;
  solo_machine.l1_size_per_core.clear();
  // (a) The synthesized counter blocks must satisfy the same Eq. 2/3
  // identities the cycle simulator's counters do — by construction.
  for (const char* backend : {model::kRdhBackend, model::kFaBackend}) {
    exp::SimJob job =
        exp::SimJob::solo(solo_machine, wl, /*calibrate=*/false,
                          std::string("analytic-fuzz-") + backend);
    job.backend = backend;
    const exp::SimJobResult res = model::evaluate_analytic(job);
    if (std::string v = check_metric_identities(res.run); !v.empty()) {
      return std::string(backend) + ": " + v;
    }
  }

  // (b) Monotone miss curves: under LRU stack semantics, growing the cache
  // never adds misses — for the demand count and the downstream fills, in
  // both closed forms, at a fixed coalescing window and no prefetching.
  const auto profile = model::ProfileCache::global().reuse(wl);
  constexpr double kWindow = 16.0;
  const double eps = 1e-9 * static_cast<double>(profile->mem_ops) + 1e-9;
  model::MissEstimate prev_fa{1e300, 1e300};
  model::MissEstimate prev_rdh{1e300, 1e300};
  for (std::uint64_t blocks = 16; blocks <= (1ull << 14); blocks *= 2) {
    const model::MissEstimate fa =
        model::fa_misses(*profile, blocks, 0.0, kWindow);
    const model::MissEstimate rdh =
        model::rdh_misses(*profile, blocks / 8, 8, 0.0, kWindow);
    if (fa.fills > fa.demand + eps) {
      return fail("fa fills exceed demand misses", fa.fills, fa.demand);
    }
    if (rdh.fills > rdh.demand + eps) {
      return fail("rdh fills exceed demand misses", rdh.fills, rdh.demand);
    }
    if (fa.demand > prev_fa.demand + eps || fa.fills > prev_fa.fills + eps) {
      return fail("fa misses increased with capacity " +
                      std::to_string(blocks) + " blocks",
                  fa.demand, prev_fa.demand);
    }
    if (rdh.demand > prev_rdh.demand + eps ||
        rdh.fills > prev_rdh.fills + eps) {
      return fail("rdh misses increased with capacity " +
                      std::to_string(blocks) + " blocks",
                  rdh.demand, prev_rdh.demand);
    }
    prev_fa = fa;
    prev_rdh = rdh;
  }
  return {};
}

ReplayCase Fuzzer::generate(std::uint64_t case_seed) const {
  util::Rng rng(case_seed * 0x9e3779b97f4a7c15ULL + 1);

  // One block size for the whole hierarchy: fill replies travel upward as
  // the *lower* level's block-aligned address, so mixed block sizes would
  // break MSHR matching by design, not by bug.
  const std::uint32_t block = rng.next_bool(0.5) ? 32 : 64;

  sim::MachineConfig m;
  m.num_cores = rng.next_bool(0.55) ? 1
                : rng.next_bool(0.8) ? 2
                                     : 3;
  m.core = random_core(rng);
  m.l1 = random_l1(rng, block);
  m.l2 = random_l2(rng, block, "L2");
  m.dram = random_dram(rng);
  if (rng.next_bool(0.25)) {
    m.use_private_l2 = true;
    m.private_l2 = random_l2(rng, block, "L2p");
  }
  if (m.num_cores > 1 && rng.next_bool(0.15)) {
    for (std::uint32_t c = 0; c < m.num_cores; ++c) {
      const std::uint64_t sets = 1ull << rng.next_in(2, 5);
      m.l1_size_per_core.push_back(sets * m.l1.associativity * block);
    }
  }
  m.max_cycles = 4'000'000;
  m.validate();

  ReplayCase c;
  c.machine = std::move(m);
  for (std::uint32_t core = 0; core < c.machine.num_cores; ++core) {
    c.ops.push_back(random_ops(rng, cfg_.trace_len, block));
  }
  return c;
}

FuzzSummary Fuzzer::run() {
  FuzzSummary summary;
  if (!cfg_.artifact_dir.empty()) {
    std::filesystem::create_directories(cfg_.artifact_dir);
  }
  for (std::uint64_t i = 0; i < cfg_.cases; ++i) {
    const std::uint64_t case_seed = cfg_.seed + i;
    const ReplayCase c = generate(case_seed);
    ++summary.cases_run;

    if (cfg_.check_trace_roundtrip) {
      if (std::string v = check_trace_roundtrip_case(c, case_seed); !v.empty()) {
        ++summary.roundtrip_failures;
        summary.failures.push_back(
            FuzzFailure{case_seed, "trace-roundtrip", std::move(v), ""});
        continue;  // the on-disk path is broken; sim results prove nothing
      }
    }

    const sim::SystemResult opt = run_optimized(c);
    const sim::SystemResult ref = run_reference(c);
    ++summary.simulator_pairs;
    if (const std::string d = describe_divergence(opt, ref); !d.empty()) {
      ++summary.divergences;
      FuzzFailure failure;
      failure.case_seed = case_seed;
      failure.kind = "divergence";
      failure.detail = d;
      if (cfg_.minimize) {
        DiffRunner minimizer(DiffOptions{{}, /*minimize=*/true});
        const DiffReport report = minimizer.run(c);
        summary.simulator_pairs += report.trials;
        if (!cfg_.artifact_dir.empty()) {
          failure.replay_path = cfg_.artifact_dir + "/lpm-repro-" +
                                std::to_string(case_seed) + ".json";
          save_replay(report.minimized, failure.replay_path);
        }
      } else if (!cfg_.artifact_dir.empty()) {
        failure.replay_path = cfg_.artifact_dir + "/lpm-repro-" +
                              std::to_string(case_seed) + ".json";
        save_replay(c, failure.replay_path);
      }
      summary.failures.push_back(std::move(failure));
      continue;  // a divergent case's metrics prove nothing further
    }

    if (!cfg_.check_properties) continue;
    std::string violation = check_metric_identities(opt);
    if (violation.empty() && opt.completed) {
      // Model properties need the perfect-cache calibration of each core.
      for (std::size_t core = 0; core < c.ops.size(); ++core) {
        trace::VectorTrace calib_trace("calib", c.ops[core]);
        const sim::CpiExeResult calib =
            sim::measure_cpi_exe(c.machine, calib_trace);
        const auto m = core::AppMeasurement::from_run(opt, calib, core);
        violation = check_model_properties(m);
        if (!violation.empty()) {
          violation = "core " + std::to_string(core) + ": " + violation;
          break;
        }
      }
    }
    if (violation.empty() && opt.completed) {
      // Analytic-backend properties on a deterministic workload pool (a
      // ReuseProfile is ~10 MB, so cases share 8 cached workloads rather
      // than profiling a fresh one each).
      const trace::WorkloadProfile wl =
          random_workload(cfg_.seed + (i & 7), cfg_.trace_len);
      violation = check_analytic_properties(c.machine, wl);
    }
    if (!violation.empty()) {
      ++summary.property_failures;
      summary.failures.push_back(
          FuzzFailure{case_seed, "property", violation, ""});
    }
  }
  return summary;
}

}  // namespace lpm::check
