#include "check/fidelity.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "model/analytic.hpp"
#include "trace/spec_like.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace lpm::check {

double relative_error(double predicted, double measured, double floor) {
  return std::abs(predicted - measured) / std::max(std::abs(measured), floor);
}

namespace {

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double idx = p * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

struct Extract {
  double mr1 = 0.0;
  double camat1 = 0.0;
};

Extract extract(const sim::SystemResult& run) {
  Extract e;
  e.mr1 = run.mr1(0);
  if (!run.l1.empty()) e.camat1 = run.l1.front().camat();
  return e;
}

}  // namespace

FidelityReport run_fidelity_harness(const FidelityConfig& cfg) {
  util::require(!cfg.backends.empty(), "fidelity: no analytic backends given");
  util::require(!cfg.l1_sizes.empty(), "fidelity: no L1 sizes given");
  model::register_analytic_executors();

  exp::ExperimentEngine& engine =
      cfg.engine != nullptr ? *cfg.engine : exp::ExperimentEngine::shared();

  // One flat batch over profiles x sizes x (cycle + analytic backends):
  // the engine overlaps the cycle runs while the analytic evaluations
  // finish in microseconds.
  struct Key {
    std::size_t bench;
    std::size_t size;
    std::string backend;  // empty = cycle reference
  };
  std::vector<Key> keys;
  std::vector<exp::SimJob> jobs;
  const auto& benchmarks = trace::all_spec_benchmarks();
  for (std::size_t b = 0; b < benchmarks.size(); ++b) {
    const trace::WorkloadProfile wl =
        trace::spec_profile(benchmarks[b], cfg.trace_length, cfg.seed);
    for (std::size_t s = 0; s < cfg.l1_sizes.size(); ++s) {
      sim::MachineConfig machine = sim::MachineConfig::single_core_default();
      machine.l1.size_bytes = cfg.l1_sizes[s];
      const std::string tag =
          trace::spec_name(benchmarks[b]) + " | l1=" +
          std::to_string(cfg.l1_sizes[s] / 1024) + "KiB";
      exp::SimJob cycle =
          exp::SimJob::solo(machine, wl, /*calibrate=*/false, tag);
      keys.push_back({b, s, ""});
      jobs.push_back(cycle);
      for (const std::string& backend : cfg.backends) {
        exp::SimJob analytic = cycle;
        analytic.backend = backend;
        analytic.tag = tag + " | " + backend;
        keys.push_back({b, s, backend});
        jobs.push_back(std::move(analytic));
      }
    }
  }

  // Fail fast: a missing cycle reference (or a broken analytic executor)
  // invalidates the whole comparison.
  const std::vector<exp::SimResultPtr> results = engine.run_batch(jobs);

  std::map<std::pair<std::size_t, std::size_t>, Extract> cycle_ref;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (keys[i].backend.empty()) {
      util::require(results[i]->run.completed, "fidelity: cycle run '" +
                                                   jobs[i].tag +
                                                   "' hit max_cycles");
      cycle_ref[{keys[i].bench, keys[i].size}] = extract(results[i]->run);
    }
  }

  FidelityReport report;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (keys[i].backend.empty()) continue;
    const Extract cycle = cycle_ref.at({keys[i].bench, keys[i].size});
    const Extract analytic = extract(results[i]->run);
    FidelityPoint p;
    p.benchmark = trace::spec_name(benchmarks[keys[i].bench]);
    p.backend = keys[i].backend;
    p.l1_size_bytes = cfg.l1_sizes[keys[i].size];
    p.mr1_cycle = cycle.mr1;
    p.mr1_analytic = analytic.mr1;
    p.mr1_rel_error = relative_error(analytic.mr1, cycle.mr1, kMrErrorFloor);
    p.camat1_cycle = cycle.camat1;
    p.camat1_analytic = analytic.camat1;
    p.camat1_rel_error =
        relative_error(analytic.camat1, cycle.camat1, kCamatErrorFloor);
    report.points.push_back(std::move(p));
  }

  // Per (profile, backend) aggregation, in point order.
  std::vector<double> all_mr, all_camat;
  for (const std::string& backend : cfg.backends) {
    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
      ProfileSummary s;
      s.benchmark = trace::spec_name(benchmarks[b]);
      s.backend = backend;
      std::size_t n = 0;
      for (const FidelityPoint& p : report.points) {
        if (p.benchmark != s.benchmark || p.backend != backend) continue;
        ++n;
        s.mean_mr1_rel_error += p.mr1_rel_error;
        s.mean_camat1_rel_error += p.camat1_rel_error;
        s.max_mr1_rel_error = std::max(s.max_mr1_rel_error, p.mr1_rel_error);
        s.max_camat1_rel_error =
            std::max(s.max_camat1_rel_error, p.camat1_rel_error);
      }
      if (n > 0) {
        s.mean_mr1_rel_error /= static_cast<double>(n);
        s.mean_camat1_rel_error /= static_cast<double>(n);
      }
      report.profiles.push_back(std::move(s));
    }
  }
  for (const FidelityPoint& p : report.points) {
    all_mr.push_back(p.mr1_rel_error);
    all_camat.push_back(p.camat1_rel_error);
    report.worst_mr1_rel_error =
        std::max(report.worst_mr1_rel_error, p.mr1_rel_error);
    report.worst_camat1_rel_error =
        std::max(report.worst_camat1_rel_error, p.camat1_rel_error);
  }
  report.p50_mr1_rel_error = percentile(all_mr, 0.50);
  report.p90_mr1_rel_error = percentile(all_mr, 0.90);
  report.p50_camat1_rel_error = percentile(all_camat, 0.50);
  report.p90_camat1_rel_error = percentile(all_camat, 0.90);
  return report;
}

std::string FidelityReport::to_json() const {
  std::ostringstream os;
  os << "{\n  \"worst_mr1_rel_error\": " << util::fmt(worst_mr1_rel_error, 6)
     << ",\n  \"worst_camat1_rel_error\": "
     << util::fmt(worst_camat1_rel_error, 6)
     << ",\n  \"p50_mr1_rel_error\": " << util::fmt(p50_mr1_rel_error, 6)
     << ",\n  \"p90_mr1_rel_error\": " << util::fmt(p90_mr1_rel_error, 6)
     << ",\n  \"p50_camat1_rel_error\": " << util::fmt(p50_camat1_rel_error, 6)
     << ",\n  \"p90_camat1_rel_error\": " << util::fmt(p90_camat1_rel_error, 6)
     << ",\n  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const FidelityPoint& p = points[i];
    os << "    {\"benchmark\": \"" << p.benchmark << "\", \"backend\": \""
       << p.backend << "\", \"l1_size_bytes\": " << p.l1_size_bytes
       << ", \"mr1_cycle\": " << util::fmt(p.mr1_cycle, 6)
       << ", \"mr1_analytic\": " << util::fmt(p.mr1_analytic, 6)
       << ", \"mr1_rel_error\": " << util::fmt(p.mr1_rel_error, 6)
       << ", \"camat1_cycle\": " << util::fmt(p.camat1_cycle, 6)
       << ", \"camat1_analytic\": " << util::fmt(p.camat1_analytic, 6)
       << ", \"camat1_rel_error\": " << util::fmt(p.camat1_rel_error, 6)
       << "}" << (i + 1 < points.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

std::string FidelityReport::table() const {
  util::AsciiTable t({"profile", "backend", "MR1 err (mean)", "MR1 err (max)",
                      "C-AMAT1 err (mean)", "C-AMAT1 err (max)"});
  for (const ProfileSummary& s : profiles) {
    t.add_row({s.benchmark, s.backend, util::fmt(s.mean_mr1_rel_error, 3),
               util::fmt(s.max_mr1_rel_error, 3),
               util::fmt(s.mean_camat1_rel_error, 3),
               util::fmt(s.max_camat1_rel_error, 3)});
  }
  return t.to_string();
}

}  // namespace lpm::check
