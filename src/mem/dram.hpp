// Banked DRAM with row-buffer state machines and an FR-FCFS controller.
//
// This stands in for the DRAMSim2 module the paper attaches to gem5: it
// produces the *variable, contention-dependent* miss penalties (row hits vs
// row conflicts, bank queueing) that make pAMP diverge from AMP and give
// pure-miss behaviour its texture. Timing parameters are expressed in CPU
// cycles.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mem/probe.hpp"
#include "mem/request.hpp"
#include "util/rng.hpp"

namespace lpm::mem {

struct DramConfig {
  std::string name = "DRAM";
  std::uint32_t banks = 8;
  std::uint64_t row_bytes = 2048;      ///< row-buffer size
  std::uint64_t interleave_bytes = 64; ///< bank interleaving granularity
  std::uint32_t t_rcd = 12;   ///< activate -> column command
  std::uint32_t t_cl = 12;    ///< column command -> first data
  std::uint32_t t_rp = 12;    ///< precharge
  std::uint32_t t_burst = 4;  ///< data transfer occupancy
  std::uint32_t frontend_latency = 18;  ///< controller + bus crossing
  std::uint32_t queue_capacity = 32;
  std::uint32_t max_issue_per_cycle = 1;  ///< command bandwidth
  /// FR-FCFS age cap: a request waiting longer than this is served FCFS
  /// ahead of younger row hits (prevents row-hit streams from starving
  /// conflicting requests).
  std::uint32_t starvation_threshold = 200;

  void validate() const;
};

struct DramStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;    ///< bank idle, row closed
  std::uint64_t row_conflicts = 0; ///< wrong row open
  std::uint64_t rejected_full = 0;
  std::uint64_t busy_cycles = 0;   ///< cycles with >= 1 request in flight
  std::uint64_t total_read_latency = 0;  ///< accept -> data, summed over reads

  /// Exact counter-wise equality (differential testing).
  friend bool operator==(const DramStats&, const DramStats&) = default;
};

/// The bottom of the hierarchy. As the last level, every access is "hit
/// activity" for C-AMAT purposes: the attached probe sees each request's
/// whole residency (queue + service) as its hit phase, so C-AMAT3 = 1/APC3
/// reflects DRAM concurrency and latency directly.
class Dram final : public MemoryLevel {
 public:
  explicit Dram(DramConfig cfg);

  void set_probe(AccessProbe* probe) { probe_ = probe; }

  bool try_access(const MemRequest& req) override;
  void tick(Cycle now) override;
  void finalize(Cycle end_cycle) override;
  [[nodiscard]] bool busy() const override;

  [[nodiscard]] const DramStats& stats() const { return stats_; }
  [[nodiscard]] const DramConfig& config() const { return cfg_; }

 private:
  struct Bank {
    bool row_open = false;
    std::uint64_t open_row = 0;
    Cycle busy_until = 0;
  };
  struct Pending {
    MemRequest req;
    Cycle accepted = 0;
    bool in_service = false;
    Cycle done_at = kNoCycle;
  };

  [[nodiscard]] std::uint32_t bank_of(Addr addr) const;
  [[nodiscard]] std::uint64_t row_of(Addr addr) const;
  void sample_activity(Cycle cycle);
  void issue_commands(Cycle now);
  void complete_finished(Cycle now);

  DramConfig cfg_;
  AccessProbe* probe_ = nullptr;  // non-owning
  std::vector<Bank> banks_;
  // Bounded by queue_capacity and scanned in age order by FR-FCFS; a
  // reserved vector keeps it allocation-free and cache-contiguous.
  std::vector<Pending> queue_;
  Cycle accept_cycle_ = 0;
  std::uint32_t demand_in_queue_ = 0;  // queued requests with a reply sink
  bool probe_quiesced_ = false;  // probe already saw a zero-demand cycle
  DramStats stats_;
};

}  // namespace lpm::mem
