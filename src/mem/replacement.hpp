// Cache replacement policies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/types.hpp"

namespace lpm::mem {

enum class ReplacementPolicy : std::uint8_t {
  kLru,     ///< least recently used (exact, per-set timestamps)
  kFifo,    ///< first in, first out (insertion order)
  kRandom,  ///< uniform random victim
  kPlru,    ///< tree pseudo-LRU (power-of-two associativity; else falls back to LRU)
  kSrrip,   ///< static RRIP (2-bit re-reference prediction): scan-resistant
            ///< "selective replacement" (paper SVII future work)
};

[[nodiscard]] const char* to_string(ReplacementPolicy p);

/// Parses "lru" / "fifo" / "random" / "plru" (throws util::LpmError).
[[nodiscard]] ReplacementPolicy replacement_from_string(const std::string& s);

/// Per-set replacement state; the cache owns one per set. The policy only
/// sees way indices and touch/fill events, never tags.
class ReplacementState {
 public:
  ReplacementState(ReplacementPolicy policy, std::uint32_t ways);

  /// Records a use of `way` (hit or fill).
  void touch(std::uint32_t way, std::uint64_t tick);

  /// Records that `way` was (re)filled.
  void fill(std::uint32_t way, std::uint64_t tick);

  /// Chooses the victim way among valid ways (the cache prefers invalid ways
  /// before asking).
  [[nodiscard]] std::uint32_t victim(util::Rng& rng) const;

 private:
  ReplacementPolicy policy_;
  std::uint32_t ways_;
  std::vector<std::uint64_t> last_use_;   // LRU timestamps
  std::vector<std::uint64_t> fill_seq_;   // FIFO order
  std::vector<std::uint8_t> plru_bits_;   // tree bits, size ways-1
  mutable std::vector<std::uint8_t> rrpv_;  // SRRIP 2-bit predictions
  [[nodiscard]] bool plru_applicable() const;
  void plru_touch(std::uint32_t way);
  [[nodiscard]] std::uint32_t plru_victim() const;
  [[nodiscard]] std::uint32_t srrip_victim() const;
};

}  // namespace lpm::mem
